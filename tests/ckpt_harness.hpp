// A miniature checkpointed application used to exercise the protocols:
// every iteration rewrites the whole protected buffer (HPL-like full
// memory footprint) with a pattern that is a pure function of
// (seed, rank, iteration), then commits. After any failure/restart the
// harness restores and continues, and the caller verifies the final
// pattern — so a wrong epoch, a torn checkpoint, or a bad rebuild all
// surface as data mismatches.
//
// The harness drives the library the way applications do: through
// ckpt::Session. CommitMode::kAsync runs the asynchronous pipeline — the
// loop keeps mutating data() while the worker encodes the staged copy —
// so the same consistency checks cover both commit paths.
#pragma once

#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>

#include "ckpt/incremental.hpp"
#include "ckpt/session.hpp"
#include "mpi/comm.hpp"
#include "util/rng.hpp"

namespace skt::testing {

struct CkptAppConfig {
  ckpt::Strategy strategy = ckpt::Strategy::kSelf;
  int group_size = 4;          ///< must divide world size
  std::size_t data_bytes = 4096;
  enc::CodecKind codec = enc::CodecKind::kXor;
  int parity_degree = 1;       ///< self-checkpoint only
  int iterations = 5;
  std::uint64_t seed = 2017;
  storage::Vault* vault = nullptr;  ///< BLCR / level 2 only (any implementation)
  storage::DeviceProfile device;    ///< BLCR / level 2 only
  ckpt::CommitMode mode = ckpt::CommitMode::kSync;
  /// > 0 wraps the strategy in a multi-level session (level-2 disk flush
  /// every N commits).
  int level2_every = 0;
  /// > 0: after the initial full fill, every iteration rewrites only the
  /// first `hot_bytes` of data() and annotates the write through
  /// Session::mark_dirty, so commits run the partially-dirty staging and
  /// delta-encode paths. The cold remainder keeps its iteration-0 pattern
  /// and is verified against it — a protocol that forgets to carry clean
  /// stripes (in S, B, or the parity delta) fails the data check.
  std::size_t hot_bytes = 0;
  /// > 0 starts the Session's background scrubber at this cadence.
  double scrub_interval = 0;
  /// Inject a silent bit flip into a sealed, mirror-backed checkpoint
  /// region after the iteration-2 commit and require the scrubber to
  /// detect AND repair it (throws otherwise, failing the job). Needs
  /// scrub_interval > 0.
  bool scrub_bitflip = false;
  /// Multi-tenant operation: open the Session against this StoreService
  /// under `tenant` (both or neither; see ckpt/store_service.hpp).
  ckpt::StoreService* service = nullptr;
  std::string tenant;
};

struct LoopState {
  std::uint64_t iteration = 0;
};

inline void fill_pattern(std::span<std::byte> data, std::uint64_t seed, int rank,
                         std::uint64_t iteration) {
  std::span<double> lanes{reinterpret_cast<double*>(data.data()), data.size() / sizeof(double)};
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    lanes[i] = util::element_value(seed + iteration, static_cast<std::uint64_t>(rank), i);
  }
}

/// Verify data against the harness pattern. `hot_bytes` == 0 (or >= size):
/// the whole buffer carries `iteration`'s pattern. Otherwise only the hot
/// prefix does, and the cold remainder must still hold iteration 0's.
inline bool matches_pattern(std::span<const std::byte> data, std::uint64_t seed, int rank,
                            std::uint64_t iteration, double tolerance,
                            std::size_t hot_bytes = 0) {
  std::span<const double> lanes{reinterpret_cast<const double*>(data.data()),
                                data.size() / sizeof(double)};
  const std::size_t hot_lanes = hot_bytes == 0
                                    ? lanes.size()
                                    : std::min(hot_bytes / sizeof(double), lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const std::uint64_t it = iteration == 0 || i < hot_lanes ? iteration : 0;
    const double expect = util::element_value(seed + it, static_cast<std::uint64_t>(rank), i);
    if (std::abs(lanes[i] - expect) > tolerance * (std::abs(expect) + 1.0)) return false;
  }
  return true;
}

/// The rank body. Throws (aborting the job) on any consistency violation so
/// the test's final success assertion catches protocol bugs.
inline void checkpointed_app(mpi::Comm& world, const CkptAppConfig& config) {
  ckpt::Session session = ckpt::SessionBuilder{}
                              .strategy(config.strategy)
                              .group_size(config.group_size)
                              .data_bytes(config.data_bytes)
                              .user_bytes(sizeof(LoopState))
                              .codec(config.codec)
                              .parity_degree(config.parity_degree)
                              .key_prefix("test")
                              .vault(config.vault)
                              .device(config.device)
                              .mode(config.mode)
                              .level2_flush_every(config.level2_every)
                              .scrub_interval(config.scrub_interval)
                              .service(config.service)
                              .tenant(config.tenant)
                              .build(world);

  // Partial-write mode: hot prefix rewritten (and annotated) per iteration,
  // cold remainder written once. Clamped so 0 and "everything" coincide.
  const std::size_t hot =
      config.hot_bytes == 0 || config.hot_bytes >= config.data_bytes ? 0 : config.hot_bytes;

  auto* state = reinterpret_cast<LoopState*>(session.user_state().data());
  if (session.open() == ckpt::OpenOutcome::kRestored) {
    // The restored data must match the pattern of the restored iteration —
    // commit runs once per iteration, so epoch and iteration move together.
    const double tol = config.codec == enc::CodecKind::kXor ? 0.0 : 1e-9;
    if (!matches_pattern(session.data(), config.seed, world.rank(), state->iteration, tol,
                         hot)) {
      throw std::runtime_error("restored data does not match iteration " +
                               std::to_string(state->iteration));
    }
    const ckpt::RestoreStats rs = session.last_restore().value();
    if (rs.epoch != state->iteration) {
      throw std::runtime_error("restored epoch " + std::to_string(rs.epoch) +
                               " disagrees with iteration counter " +
                               std::to_string(state->iteration));
    }
  } else {
    state->iteration = 0;
    fill_pattern(session.data(), config.seed, world.rank(), 0);
    // The initial full fill must be declared too: once the app starts
    // annotating (partial mode), an unmarked cold region would never reach
    // the first checkpoint.
    if (hot != 0) session.mark_all_dirty();
  }

  const bool async = config.mode == ckpt::CommitMode::kAsync;
  while (state->iteration < static_cast<std::uint64_t>(config.iterations)) {
    world.failpoint("app.work");
    const std::uint64_t next = state->iteration + 1;
    if (hot != 0) {
      // Rewrite only the hot prefix and declare it — every strategy's
      // commit then copies/encodes just the covering stripes.
      fill_pattern(session.data().subspan(0, hot), config.seed, world.rank(), next);
      session.mark_dirty(0, hot);
    } else {
      fill_pattern(session.data(), config.seed, world.rank(), next);
      // Full rewrite: everything is dirty. Required annotation for the
      // incremental strategy (unmarked means clean there); a no-op
      // degradation for the others, whose un-annotated trackers already
      // report all-dirty. (Sparse-update coverage for incremental lives in
      // test_incremental.cpp, which marks real ranges.)
      session.mark_all_dirty();
    }
    state->iteration = next;
    try {
      if (async) {
        // The ticket is deliberately dropped: the next commit_async() (or
        // the drain below) provides the backpressure. The loop immediately
        // continues mutating data() while the worker runs — that overlap
        // is exactly what the staged pipeline must tolerate.
        session.commit_async();
      } else {
        session.commit();
      }
    } catch (const ckpt::Unrecoverable& e) {
      throw std::runtime_error(std::string("unrecoverable during commit: ") + e.what());
    }
    if (config.scrub_bitflip && state->iteration == 2 && session.scrubber() != nullptr) {
      // Silent-data-corruption drill: flip one bit of a sealed, mirror-
      // backed checksum region between commits. The scrubber must notice
      // the CRC mismatch against its seal-time baseline and repair the
      // chunk from the byte-identical twin while the loop keeps running.
      if (async) session.drain();  // quiesce the worker before touching sealed buffers
      session.scrubber()->scrub_now();  // baseline this epoch
      const ckpt::ScrubStats before = session.scrubber()->stats();
      {
        // Flip under the commit-exclusion lock so the cadence thread never
        // observes a torn write (it may be scanning concurrently).
        std::lock_guard<std::mutex> lock(session.scrubber()->commit_exclusion());
        for (ckpt::ScrubRegion& region : session.unsafe_protocol().scrub_view()) {
          if (region.mirror.empty()) continue;
          region.bytes[region.bytes.size() / 2] ^= std::byte{0x10};
          break;
        }
      }
      const ckpt::ScrubStats after_now = session.scrubber()->scrub_now();
      (void)after_now;
      const ckpt::ScrubStats after = session.scrubber()->stats();
      if (after.corruption_detected <= before.corruption_detected) {
        throw std::runtime_error("scrubber missed the injected bit flip");
      }
      if (after.repaired <= before.repaired || after.unrepaired > before.unrepaired) {
        throw std::runtime_error("scrubber failed to repair the injected bit flip");
      }
    }
  }
  if (async) session.drain();

  world.failpoint("app.done");
  const double tol = config.codec == enc::CodecKind::kXor ? 0.0 : 1e-9;
  if (!matches_pattern(session.data(), config.seed, world.rank(),
                       static_cast<std::uint64_t>(config.iterations), tol, hot)) {
    throw std::runtime_error("final data mismatch");
  }
}

}  // namespace skt::testing
