// A miniature checkpointed application used to exercise the protocols:
// every iteration rewrites the whole protected buffer (HPL-like full
// memory footprint) with a pattern that is a pure function of
// (seed, rank, iteration), then commits. After any failure/restart the
// harness restores and continues, and the caller verifies the final
// pattern — so a wrong epoch, a torn checkpoint, or a bad rebuild all
// surface as data mismatches.
#pragma once

#include <cstring>
#include <stdexcept>
#include <string>

#include "ckpt/factory.hpp"
#include "ckpt/protocol.hpp"
#include "mpi/comm.hpp"
#include "util/rng.hpp"

namespace skt::testing {

struct CkptAppConfig {
  ckpt::Strategy strategy = ckpt::Strategy::kSelf;
  int group_size = 4;          ///< must divide world size
  std::size_t data_bytes = 4096;
  enc::CodecKind codec = enc::CodecKind::kXor;
  int parity_degree = 1;       ///< self-checkpoint only
  int iterations = 5;
  std::uint64_t seed = 2017;
  storage::SnapshotVault* vault = nullptr;  ///< BLCR only
  storage::DeviceProfile device;            ///< BLCR only
};

struct LoopState {
  std::uint64_t iteration = 0;
};

inline void fill_pattern(std::span<std::byte> data, std::uint64_t seed, int rank,
                         std::uint64_t iteration) {
  std::span<double> lanes{reinterpret_cast<double*>(data.data()), data.size() / sizeof(double)};
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    lanes[i] = util::element_value(seed + iteration, static_cast<std::uint64_t>(rank), i);
  }
}

inline bool matches_pattern(std::span<const std::byte> data, std::uint64_t seed, int rank,
                            std::uint64_t iteration, double tolerance) {
  std::span<const double> lanes{reinterpret_cast<const double*>(data.data()),
                                data.size() / sizeof(double)};
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const double expect =
        util::element_value(seed + iteration, static_cast<std::uint64_t>(rank), i);
    if (std::abs(lanes[i] - expect) > tolerance * (std::abs(expect) + 1.0)) return false;
  }
  return true;
}

/// The rank body. Throws (aborting the job) on any consistency violation so
/// the test's final success assertion catches protocol bugs.
inline void checkpointed_app(mpi::Comm& world, const CkptAppConfig& config) {
  if (world.size() % config.group_size != 0) {
    throw std::invalid_argument("checkpointed_app: group size must divide world size");
  }
  mpi::Comm group = world.split(world.rank() / config.group_size, world.rank());
  ckpt::CommCtx ctx{world, group};

  ckpt::FactoryParams params;
  params.key_prefix = "test";
  params.data_bytes = config.data_bytes;
  params.user_bytes = sizeof(LoopState);
  params.codec = config.codec;
  params.parity_degree = config.parity_degree;
  params.vault = config.vault;
  params.device = config.device;
  auto protocol = ckpt::make_protocol(config.strategy, params);

  const bool restored = protocol->open(ctx);
  auto* state = reinterpret_cast<LoopState*>(protocol->user_state().data());
  if (restored) {
    const ckpt::RestoreStats rs = protocol->restore(ctx);
    // The restored data must match the pattern of the restored iteration —
    // commit runs once per iteration, so epoch and iteration move together.
    const double tol = config.codec == enc::CodecKind::kXor ? 0.0 : 1e-9;
    if (!matches_pattern(protocol->data(), config.seed, world.rank(), state->iteration, tol)) {
      throw std::runtime_error("restored data does not match iteration " +
                               std::to_string(state->iteration));
    }
    if (rs.epoch != state->iteration) {
      throw std::runtime_error("restored epoch " + std::to_string(rs.epoch) +
                               " disagrees with iteration counter " +
                               std::to_string(state->iteration));
    }
  } else {
    state->iteration = 0;
    fill_pattern(protocol->data(), config.seed, world.rank(), 0);
  }

  while (state->iteration < static_cast<std::uint64_t>(config.iterations)) {
    world.failpoint("app.work");
    const std::uint64_t next = state->iteration + 1;
    fill_pattern(protocol->data(), config.seed, world.rank(), next);
    state->iteration = next;
    try {
      protocol->commit(ctx);
    } catch (const ckpt::Unrecoverable& e) {
      throw std::runtime_error(std::string("unrecoverable during commit: ") + e.what());
    }
  }

  world.failpoint("app.done");
  const double tol = config.codec == enc::CodecKind::kXor ? 0.0 : 1e-9;
  if (!matches_pattern(protocol->data(), config.seed, world.rank(),
                       static_cast<std::uint64_t>(config.iterations), tol)) {
    throw std::runtime_error("final data mismatch");
  }
}

}  // namespace skt::testing
