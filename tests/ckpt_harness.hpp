// A miniature checkpointed application used to exercise the protocols:
// every iteration rewrites the whole protected buffer (HPL-like full
// memory footprint) with a pattern that is a pure function of
// (seed, rank, iteration), then commits. After any failure/restart the
// harness restores and continues, and the caller verifies the final
// pattern — so a wrong epoch, a torn checkpoint, or a bad rebuild all
// surface as data mismatches.
//
// The harness drives the library the way applications do: through
// ckpt::Session. CommitMode::kAsync runs the asynchronous pipeline — the
// loop keeps mutating data() while the worker encodes the staged copy —
// so the same consistency checks cover both commit paths.
#pragma once

#include <cstring>
#include <stdexcept>
#include <string>

#include "ckpt/incremental.hpp"
#include "ckpt/session.hpp"
#include "mpi/comm.hpp"
#include "util/rng.hpp"

namespace skt::testing {

struct CkptAppConfig {
  ckpt::Strategy strategy = ckpt::Strategy::kSelf;
  int group_size = 4;          ///< must divide world size
  std::size_t data_bytes = 4096;
  enc::CodecKind codec = enc::CodecKind::kXor;
  int parity_degree = 1;       ///< self-checkpoint only
  int iterations = 5;
  std::uint64_t seed = 2017;
  storage::SnapshotVault* vault = nullptr;  ///< BLCR / level 2 only
  storage::DeviceProfile device;            ///< BLCR / level 2 only
  ckpt::CommitMode mode = ckpt::CommitMode::kSync;
  /// > 0 wraps the strategy in a multi-level session (level-2 disk flush
  /// every N commits).
  int level2_every = 0;
};

struct LoopState {
  std::uint64_t iteration = 0;
};

inline void fill_pattern(std::span<std::byte> data, std::uint64_t seed, int rank,
                         std::uint64_t iteration) {
  std::span<double> lanes{reinterpret_cast<double*>(data.data()), data.size() / sizeof(double)};
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    lanes[i] = util::element_value(seed + iteration, static_cast<std::uint64_t>(rank), i);
  }
}

inline bool matches_pattern(std::span<const std::byte> data, std::uint64_t seed, int rank,
                            std::uint64_t iteration, double tolerance) {
  std::span<const double> lanes{reinterpret_cast<const double*>(data.data()),
                                data.size() / sizeof(double)};
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const double expect =
        util::element_value(seed + iteration, static_cast<std::uint64_t>(rank), i);
    if (std::abs(lanes[i] - expect) > tolerance * (std::abs(expect) + 1.0)) return false;
  }
  return true;
}

/// The rank body. Throws (aborting the job) on any consistency violation so
/// the test's final success assertion catches protocol bugs.
inline void checkpointed_app(mpi::Comm& world, const CkptAppConfig& config) {
  ckpt::Session session = ckpt::SessionBuilder{}
                              .strategy(config.strategy)
                              .group_size(config.group_size)
                              .data_bytes(config.data_bytes)
                              .user_bytes(sizeof(LoopState))
                              .codec(config.codec)
                              .parity_degree(config.parity_degree)
                              .key_prefix("test")
                              .vault(config.vault)
                              .device(config.device)
                              .mode(config.mode)
                              .level2_flush_every(config.level2_every)
                              .build(world);

  auto* state = reinterpret_cast<LoopState*>(session.user_state().data());
  if (session.open() == ckpt::OpenOutcome::kRestored) {
    // The restored data must match the pattern of the restored iteration —
    // commit runs once per iteration, so epoch and iteration move together.
    const double tol = config.codec == enc::CodecKind::kXor ? 0.0 : 1e-9;
    if (!matches_pattern(session.data(), config.seed, world.rank(), state->iteration, tol)) {
      throw std::runtime_error("restored data does not match iteration " +
                               std::to_string(state->iteration));
    }
    const ckpt::RestoreStats rs = session.last_restore().value();
    if (rs.epoch != state->iteration) {
      throw std::runtime_error("restored epoch " + std::to_string(rs.epoch) +
                               " disagrees with iteration counter " +
                               std::to_string(state->iteration));
    }
  } else {
    state->iteration = 0;
    fill_pattern(session.data(), config.seed, world.rank(), 0);
  }

  const bool async = config.mode == ckpt::CommitMode::kAsync;
  while (state->iteration < static_cast<std::uint64_t>(config.iterations)) {
    world.failpoint("app.work");
    const std::uint64_t next = state->iteration + 1;
    fill_pattern(session.data(), config.seed, world.rank(), next);
    // The harness rewrites the full buffer, so the incremental strategy's
    // dirty contract means: everything is dirty. (Sparse-update coverage
    // lives in test_incremental.cpp, which marks real ranges.)
    if (auto* incr = dynamic_cast<ckpt::IncrementalSelfCheckpoint*>(&session.protocol())) {
      incr->mark_all_dirty();
    }
    state->iteration = next;
    try {
      if (async) {
        // The ticket is deliberately dropped: the next commit_async() (or
        // the drain below) provides the backpressure. The loop immediately
        // continues mutating data() while the worker runs — that overlap
        // is exactly what the staged pipeline must tolerate.
        session.commit_async();
      } else {
        session.commit();
      }
    } catch (const ckpt::Unrecoverable& e) {
      throw std::runtime_error(std::string("unrecoverable during commit: ") + e.what());
    }
  }
  if (async) session.drain();

  world.failpoint("app.done");
  const double tol = config.codec == enc::CodecKind::kXor ? 0.0 : 1e-9;
  if (!matches_pattern(session.data(), config.seed, world.rank(),
                       static_cast<std::uint64_t>(config.iterations), tol)) {
    throw std::runtime_error("final data mismatch");
  }
}

}  // namespace skt::testing
