#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "util/format.hpp"
#include "util/json_writer.hpp"
#include "util/log.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace skt::util {
namespace {

TEST(Format, PlainPlaceholders) {
  EXPECT_EQ(format("a {} b {} c", 1, 2), "a 1 b 2 c");
  EXPECT_EQ(format("{}", "hello"), "hello");
  EXPECT_EQ(format("{}", true), "true");
  EXPECT_EQ(format("{}", 3.5), "3.5");
}

TEST(Format, Specs) {
  EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(format("{:8.3f}", 1.5), "   1.500");
  EXPECT_EQ(format("{:d}", 42), "42");
  EXPECT_EQ(format("{:x}", 255), "ff");
  EXPECT_EQ(format("{:.1%}", 0.4567), "45.7%");
}

TEST(Format, EscapedBraces) {
  EXPECT_EQ(format("{{}}"), "{}");
  EXPECT_EQ(format("{{{}}}", 7), "{7}");
}

TEST(Format, ArgumentCountMismatchThrows) {
  EXPECT_THROW(format("{} {}", 1), std::invalid_argument);
  EXPECT_THROW(format("{}", 1, 2), std::invalid_argument);
}

TEST(Format, BadSpecThrows) { EXPECT_THROW(format("{:q}", 1), std::invalid_argument); }

TEST(Stats, Summarize) {
  const std::vector<double> xs{1, 2, 3, 4};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.1180339887, 1e-9);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, LinearFitExact) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{1, 3, 5, 7};  // y = 2x + 1
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> sorted{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.5), 25.0);   // halfway between ranks 1 and 2
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.25), 17.5);  // rank 0.75: 10 + 0.75 * 10
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{7.0}, 0.99), 7.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Stats, QuantilesP50P90P99) {
  std::vector<double> sorted(100);
  for (int i = 0; i < 100; ++i) sorted[static_cast<std::size_t>(i)] = i + 1.0;
  const Quantiles q = quantiles(sorted);
  EXPECT_NEAR(q.p50, 50.5, 1e-9);
  EXPECT_NEAR(q.p90, 90.1, 1e-9);
  EXPECT_NEAR(q.p99, 99.01, 1e-9);
  const Quantiles empty = quantiles({});
  EXPECT_EQ(empty.p50, 0.0);
  EXPECT_EQ(empty.p99, 0.0);
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, NestsObjectsAndArrays) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "demo \"quoted\"");
  w.field("count", static_cast<std::int64_t>(-3));
  w.field("ok", true);
  w.key("histogram");
  w.begin_object();
  w.field("p50", 1.5);
  w.key("buckets");
  w.begin_array();
  w.value(static_cast<std::uint64_t>(1));
  w.value(static_cast<std::uint64_t>(2));
  w.end_array();
  w.end_object();
  w.end_object();
  ASSERT_TRUE(w.complete());
  const std::string& doc = w.str();
  EXPECT_NE(doc.find("\"name\": \"demo \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(doc.find("\"count\": -3"), std::string::npos);
  EXPECT_NE(doc.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(doc.find("\"p50\": 1.5"), std::string::npos);
  // Array elements are comma-separated inside brackets.
  const auto open = doc.find('[');
  const auto close = doc.find(']');
  ASSERT_NE(open, std::string::npos);
  ASSERT_NE(close, std::string::npos);
  EXPECT_NE(doc.find(',', open), std::string::npos);
  EXPECT_LT(doc.find(',', open), close);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_object();
  w.field("inf", std::numeric_limits<double>::infinity());
  w.end_object();
  EXPECT_NE(w.str().find("\"inf\": null"), std::string::npos);
}

TEST(JsonWriter, WriteJsonFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "skt_json_writer_test.json";
  ASSERT_TRUE(write_json_file(path, std::string_view("{\"k\": 1}")));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "{\"k\": 1}\n");  // trailing newline appended
}

TEST(Log, JsonSinkFlagLatchesFromEnv) {
  ::setenv("SKT_LOG_JSON", "1", 1);
  if (!log_json_enabled()) GTEST_SKIP() << "sink flag latched before this test set the env";
  // Exercise the compact one-record-per-line serialization path.
  set_thread_label("test");
  SKT_LOG_INFO("json sink smoke {}", 1);
  set_thread_label("");
}

TEST(Stats, LinearFitRejectsDegenerate) {
  const std::vector<double> xs{1, 1};
  const std::vector<double> ys{2, 3};
  EXPECT_THROW(fit_linear(xs, ys), std::invalid_argument);
  EXPECT_THROW(fit_linear(std::vector<double>{1}, std::vector<double>{1}),
               std::invalid_argument);
}

TEST(Rng, ElementValueIsDeterministicAndCentered) {
  EXPECT_EQ(element_value(7, 3, 4), element_value(7, 3, 4));
  EXPECT_NE(element_value(7, 3, 4), element_value(7, 4, 3));
  EXPECT_NE(element_value(7, 3, 4), element_value(8, 3, 4));
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double v = element_value(1, static_cast<std::uint64_t>(i), 0);
    EXPECT_GE(v, -0.5);
    EXPECT_LT(v, 0.5);
    sum += v;
  }
  EXPECT_LT(std::abs(sum / 1000.0), 0.05);  // roughly centered
}

TEST(Rng, XoshiroReproducible) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Xoshiro256 c(43);
  EXPECT_NE(Xoshiro256(42).next(), c.next());
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  EXPECT_THROW(t.add_row({"a", "b"}), std::invalid_argument);
}

TEST(Table, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3ull << 30), "3.00 GiB");
}

TEST(Table, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.5), "500.0 ms");
  EXPECT_EQ(format_seconds(2.0), "2.00 s");
  EXPECT_EQ(format_seconds(2e-5), "20.0 us");
}

TEST(Options, ParsesForms) {
  // Note: a bare "--flag" followed by a non-option word would consume it as
  // the flag's value, so flags go last or use the = form.
  const char* argv[] = {"prog", "--a", "1", "--b=2", "pos", "--flag"};
  Options o(6, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("a", 0), 1);
  EXPECT_EQ(o.get_int("b", 0), 2);
  EXPECT_TRUE(o.get_bool("flag", false));
  EXPECT_FALSE(o.get_bool("absent", false));
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "pos");
  EXPECT_EQ(o.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(o.get_double("a", 0.0), 1.0);
}

}  // namespace
}  // namespace skt::util
