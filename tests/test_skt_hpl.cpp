// SKT-HPL end-to-end: fault-free runs under every strategy, power-off
// recovery through the launcher, and checkpoint bookkeeping.
#include <gtest/gtest.h>

#include "hpl/skt_hpl.hpp"
#include "mpi/launcher.hpp"
#include "storage/device.hpp"
#include "storage/snapshot_vault.hpp"
#include "testing.hpp"

namespace skt::hpl {
namespace {

using skt::testing::MiniCluster;

SktHplConfig small_config() {
  SktHplConfig config;
  config.hpl.n = 96;
  config.hpl.nb = 16;
  config.hpl.grid_p = 2;
  config.hpl.grid_q = 2;
  config.group_size = 4;
  config.ckpt_every_panels = 2;
  return config;
}

TEST(SktHpl, FaultFreeSelfCheckpointRun) {
  MiniCluster mc(4, 0);
  SktHplResult out;
  const auto result = mc.run(4, [&](mpi::Comm& world) {
    const SktHplResult r = run_skt_hpl(world, small_config());
    if (world.rank() == 0) out = r;
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_TRUE(out.hpl.residual.pass) << out.hpl.residual.scaled;
  EXPECT_FALSE(out.restored);
  EXPECT_EQ(out.checkpoints, 3);  // after panels 2, 4 and 6 (of 6)
  EXPECT_GT(out.ckpt_bytes, 0u);
  EXPECT_GT(out.checksum_bytes, 0u);
  EXPECT_LT(out.checksum_bytes, out.ckpt_bytes);
}

TEST(SktHpl, StrategyNoneMatchesPlainHpl) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [&](mpi::Comm& world) {
    SktHplConfig config = small_config();
    config.strategy = ckpt::Strategy::kNone;
    const SktHplResult r = run_skt_hpl(world, config);
    EXPECT_TRUE(r.hpl.residual.pass);
    EXPECT_EQ(r.checkpoints, 0);
    EXPECT_EQ(r.memory_bytes, 0u);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

class SktHplStrategies : public ::testing::TestWithParam<ckpt::Strategy> {};

TEST_P(SktHplStrategies, PowerOffDuringEliminationRecovers) {
  MiniCluster mc(4, 2);
  storage::SnapshotVault vault;
  SktHplConfig config = small_config();
  config.strategy = GetParam();
  config.vault = &vault;
  config.device = storage::ssd_profile();

  sim::FailureInjector injector;
  // Kill rank 2 partway through elimination, after at least one commit
  // ("hpl.panel" fires once per panel; panel 3 follows the panel-2 commit).
  injector.add_rule({.point = "hpl.panel", .world_rank = 2, .hit = 4, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 2});
  bool restored_seen = false;
  bool verified = false;
  const auto result = launcher.run(4, [&](mpi::Comm& world) {
    const SktHplResult r = run_skt_hpl(world, config);
    if (world.rank() == 0) {
      restored_seen = r.restored;
      verified = r.hpl.residual.pass;
    }
  });
  ASSERT_TRUE(result.success) << result.failure;
  EXPECT_EQ(result.restarts, 1);
  EXPECT_TRUE(restored_seen);
  EXPECT_TRUE(verified);
  // The dead node's ranks moved to a spare.
  EXPECT_GE(result.final_ranklist[2], 4);
}

INSTANTIATE_TEST_SUITE_P(Strategies, SktHplStrategies,
                         ::testing::Values(ckpt::Strategy::kSelf, ckpt::Strategy::kDouble,
                                           ckpt::Strategy::kBlcr),
                         [](const auto& info) {
                           std::string s(ckpt::to_string(info.param));
                           const auto dash = s.find('-');
                           return dash == std::string::npos ? s : s.substr(0, dash);
                         });

TEST(SktHpl, PowerOffDuringCheckpointFlushRecovers) {
  // CASE 2 of Fig. 4 end-to-end: node dies mid-flush; the A-side
  // (work + D) recovers and HPL still verifies.
  MiniCluster mc(4, 2);
  SktHplConfig config = small_config();

  sim::FailureInjector injector;
  injector.add_rule({.point = "ckpt.mid_flush", .world_rank = 1, .hit = 2, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 2});
  bool verified = false;
  const auto result = launcher.run(4, [&](mpi::Comm& world) {
    const SktHplResult r = run_skt_hpl(world, config);
    if (world.rank() == 0) verified = r.hpl.residual.pass;
  });
  ASSERT_TRUE(result.success) << result.failure;
  EXPECT_TRUE(verified);
  EXPECT_GT(result.times.count("recover"), 0u);
}

TEST(SktHpl, TwoRanksPerNodeGroupsStayOnDistinctNodes) {
  // 8 ranks on 4 nodes, groups of 4: the planner must not co-locate two
  // group members on one node, and the run must survive a node loss that
  // kills TWO ranks (each in a different group).
  MiniCluster mc(4, 2);
  SktHplConfig config;
  config.hpl.n = 96;
  config.hpl.nb = 16;
  config.hpl.grid_p = 2;
  config.hpl.grid_q = 4;
  config.group_size = 4;
  config.ckpt_every_panels = 2;

  sim::FailureInjector injector;
  injector.add_rule({.point = "hpl.panel", .world_rank = 3, .hit = 4, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector,
                            {.max_restarts = 2, .ranks_per_node = 2});
  bool verified = false;
  const auto result = launcher.run(8, [&](mpi::Comm& world) {
    const SktHplResult r = run_skt_hpl(world, config);
    if (world.rank() == 0) verified = r.hpl.residual.pass;
  });
  ASSERT_TRUE(result.success) << result.failure;
  EXPECT_TRUE(verified);
}

TEST(SktHpl, RejectsBadGroupSize) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [&](mpi::Comm& world) {
    SktHplConfig config = small_config();
    config.group_size = 3;  // does not divide 4
    EXPECT_THROW(run_skt_hpl(world, config), std::invalid_argument);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

}  // namespace
}  // namespace skt::hpl
