// Randomized failure-schedule fuzzing: derive kill schedules (which rank,
// which failpoint, which visit) from a seed and assert the self-checkpoint
// stack either completes with bit-correct data or fails for a legitimate
// reason (spares exhausted / more simultaneous losses than the code
// tolerates). Deterministic per seed, so any failing seed replays exactly.
#include <gtest/gtest.h>

#include <array>

#include "ckpt_harness.hpp"
#include "mpi/launcher.hpp"
#include "storage/device.hpp"
#include "storage/sharded_vault.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace skt::ckpt {
namespace {

using skt::testing::CkptAppConfig;
using skt::testing::checkpointed_app;

constexpr std::array<const char*, 8> kPoints{
    "app.work",     "ckpt.begin",   "ckpt.copy_a2", "ckpt.encode_begin",
    "ckpt.encode_done", "ckpt.sealed", "ckpt.mid_flush", "ckpt.flushed"};

class FailureFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureFuzz, RandomScheduleSelfCheckpoint) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed);

  const int world = 8;
  const int group_size = rng.next_below(2) == 0 ? 4 : 8;
  const int spares = 3;
  const int kills = 1 + static_cast<int>(rng.next_below(3));  // 1..3 failures

  skt::testing::MiniCluster mc(world, spares);
  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.group_size = group_size;
  config.iterations = 6;
  config.data_bytes = 1024 + rng.next_below(4096) / 8 * 8;
  config.seed = seed;

  sim::FailureInjector injector;
  for (int k = 0; k < kills; ++k) {
    injector.add_rule({
        .point = kPoints[rng.next_below(kPoints.size())],
        .world_rank = static_cast<int>(rng.next_below(world)),
        .hit = 2 + static_cast<int>(rng.next_below(4)),
        .repeat = false,
    });
  }

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = kills + 2});
  const auto result = launcher.run(world, [&](mpi::Comm& w) { checkpointed_app(w, config); });

  if (result.success) {
    // checkpointed_app verified the final pattern internally; nothing
    // survives a wrong restore silently.
    SUCCEED();
  } else {
    // Only two legitimate failure modes exist for this configuration.
    const bool spares_out = result.failure.find("spare pool exhausted") != std::string::npos;
    const bool too_many = result.failure.find("max restarts") != std::string::npos ||
                          result.failure.find("members lost in one group") != std::string::npos;
    EXPECT_TRUE(spares_out || too_many)
        << "seed " << seed << " failed unexpectedly: " << result.failure;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureFuzz,
                         ::testing::Range<std::uint64_t>(1000, 1040),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

class FailureFuzzDual : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureFuzzDual, RandomScheduleDualParity) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed * 2654435761ull);

  const int world = 8;
  skt::testing::MiniCluster mc(world, 4);
  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.parity_degree = 2;
  config.group_size = 8;
  config.iterations = 6;
  config.data_bytes = 2048;
  config.seed = seed;

  sim::FailureInjector injector;
  const int kills = 2 + static_cast<int>(rng.next_below(2));  // 2..3 failures
  for (int k = 0; k < kills; ++k) {
    injector.add_rule({
        .point = kPoints[rng.next_below(kPoints.size())],
        .world_rank = static_cast<int>(rng.next_below(world)),
        .hit = 2 + static_cast<int>(rng.next_below(3)),
        .repeat = false,
    });
  }

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = kills + 2});
  const auto result = launcher.run(world, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  if (!result.success) {
    const bool legitimate =
        result.failure.find("spare pool exhausted") != std::string::npos ||
        result.failure.find("max restarts") != std::string::npos ||
        result.failure.find("members lost in one group") != std::string::npos;
    EXPECT_TRUE(legitimate) << "seed " << seed << ": " << result.failure;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureFuzzDual,
                         ::testing::Range<std::uint64_t>(2000, 2020),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

// Correlated-kill fuzzing against RS(k, m) groups: one rule takes out a
// random SET of ranks (sometimes a whole rack) in a single instant. Sets
// of size <= m must be absorbed in one recovery cycle; anything else must
// fail for a diagnosed reason — never restore corrupt data (the harness
// verifies the final pattern bit-for-bit on success).
class FailureFuzzCorrelated : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureFuzzCorrelated, RandomCorrelatedKillSetsAgainstRSGroups) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed ^ 0x5bf0'3635'dead'beefull);

  const int world = 8;
  const int parity = 2 + static_cast<int>(rng.next_below(2));       // RS(8,2) or RS(8,3)
  const int nodes_per_rack = 2 + static_cast<int>(rng.next_below(3));  // 2..4
  skt::testing::MiniCluster mc(world, 6, {}, nodes_per_rack);

  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.parity_degree = parity;
  config.group_size = 8;
  config.iterations = 6;
  config.data_bytes = 1024 + rng.next_below(4096) / 8 * 8;
  config.seed = seed;

  // One correlated rule: a victim set of 1..m+1 distinct ranks, or the
  // trigger's whole rack, dying at a random protocol step.
  sim::FailureInjector injector;
  sim::FailureRule rule;
  rule.point = kPoints[rng.next_below(kPoints.size())];
  rule.hit = 2 + static_cast<int>(rng.next_below(3));
  const int trigger = static_cast<int>(rng.next_below(world));
  rule.world_rank = trigger;
  rule.victim_world_rank = trigger;
  if (rng.next_below(4) == 0) {
    rule.kill_rack = true;
  } else {
    const int extras = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(parity) + 1));
    for (int k = 0; k < extras; ++k) {
      rule.extra_victims.push_back(static_cast<int>(rng.next_below(world)));
    }
  }
  injector.add_rule(rule);

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 3});
  const auto result = launcher.run(world, [&](mpi::Comm& w) { checkpointed_app(w, config); });

  if (!result.success) {
    bool legitimate = result.failure.find("spare pool exhausted") != std::string::npos ||
                      result.failure.find("max restarts") != std::string::npos;
    for (const telemetry::Postmortem& pm : result.postmortems) {
      if (pm.reason.find("members lost in one group") != std::string::npos) legitimate = true;
    }
    EXPECT_TRUE(legitimate) << "seed " << seed << ": " << result.failure;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureFuzzCorrelated,
                         ::testing::Range<std::uint64_t>(3000, 3024),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

// Random kill schedules against a MULTI-LEVEL session whose level-2 tier
// is a ShardedVault over the job's own nodes: every node loss also takes
// a vault shard with it, the launcher wipes the dead shards and re-homes
// their extents onto the spares, and the restarted job may have to restore
// straight out of the resharded tier (two losses in one group defeat the
// degree-1 code, so level 1 is no help). Success means the harness proved
// the restored state bit-identical; failure must name a diagnosed limit —
// including the two honest disk-tier verdicts for schedules that strike
// before the first flush or take both copies of an extent in one instant.
class FailureFuzzShardedVault : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureFuzzShardedVault, RandomScheduleMultiLevelOverShardedVault) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed ^ 0x9e37'79b9'7f4a'7c15ull);

  const int world = 8;
  skt::testing::MiniCluster mc(world, 4);
  storage::ShardedVault vault(
      {.nodes = {0, 1, 2, 3, 4, 5, 6, 7},
       .extent_bytes = 128 + rng.next_below(8) * 64});

  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.group_size = 4;
  config.iterations = 6;
  config.data_bytes = 1024 + rng.next_below(4096) / 8 * 8;
  config.seed = seed;
  config.vault = &vault;
  config.device = storage::ssd_profile();
  config.level2_every = 2;
  config.mode = rng.next_below(2) == 0 ? CommitMode::kSync : CommitMode::kAsync;

  constexpr std::array<const char*, 4> kSyncPoints{"app.work", "ckpt.begin",
                                                   "ckpt.mid_flush", "ckpt.l2_flush"};
  constexpr std::array<const char*, 4> kAsyncPoints{"app.work", "ckpt.async_stage",
                                                    "ckpt.async_mid_flush",
                                                    "ckpt.async_l2_flush"};
  const bool async = config.mode == CommitMode::kAsync;

  sim::FailureInjector injector;
  const int kills = 1 + static_cast<int>(rng.next_below(2));  // 1..2 rules
  for (int k = 0; k < kills; ++k) {
    sim::FailureRule rule;
    rule.point = async ? kAsyncPoints[rng.next_below(kAsyncPoints.size())]
                       : kSyncPoints[rng.next_below(kSyncPoints.size())];
    rule.world_rank = static_cast<int>(rng.next_below(world));
    rule.hit = 2 + static_cast<int>(rng.next_below(3));
    rule.victim_world_rank = rule.world_rank;
    // A third of the rules take out a second shard host in the same
    // instant — sometimes an adjacent placement slot, which legitimately
    // loses both copies of some extents.
    if (rng.next_below(3) == 0) {
      rule.extra_victims.push_back(static_cast<int>(rng.next_below(world)));
    }
    injector.add_rule(rule);
  }

  mpi::JobLauncher launcher(mc.cluster, &injector,
                            {.max_restarts = kills + 2,
                             .ranks_per_node = 1,
                             .sharded_vault = &vault});
  const auto result = launcher.run(world, [&](mpi::Comm& w) { checkpointed_app(w, config); });

  if (result.success) {
    SUCCEED();  // bit-identical final pattern verified inside the harness
  } else {
    bool legitimate = result.failure.find("spare pool exhausted") != std::string::npos ||
                      result.failure.find("max restarts") != std::string::npos ||
                      result.failure.find("members lost in one group") != std::string::npos ||
                      result.failure.find("no complete disk generation") != std::string::npos ||
                      result.failure.find("disk image corrupt") != std::string::npos;
    for (const telemetry::Postmortem& pm : result.postmortems) {
      if (pm.reason.find("members lost in one group") != std::string::npos ||
          pm.reason.find("no complete disk generation") != std::string::npos ||
          pm.reason.find("disk image corrupt") != std::string::npos) {
        legitimate = true;
      }
    }
    EXPECT_TRUE(legitimate) << "seed " << seed << ": " << result.failure;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureFuzzShardedVault,
                         ::testing::Range<std::uint64_t>(4000, 4016),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

}  // namespace
}  // namespace skt::ckpt
