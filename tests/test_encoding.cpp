#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "encoding/codec.hpp"
#include "encoding/gf256.hpp"
#include "encoding/group_codec.hpp"
#include "encoding/reed_solomon.hpp"
#include "encoding/stripes.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace skt::enc {
namespace {

using skt::testing::MiniCluster;

std::vector<std::byte> random_bytes(std::size_t size, std::uint64_t seed) {
  std::vector<std::byte> out(size);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < size; i += 8) {
    const std::uint64_t v = rng.next();
    std::memcpy(out.data() + i, &v, std::min<std::size_t>(8, size - i));
  }
  return out;
}

// ---------------------------------------------------------------- codec ---

TEST(Codec, XorAccumulateIsSelfInverse) {
  auto a = random_bytes(64, 1);
  const auto original = a;
  const auto b = random_bytes(64, 2);
  accumulate(CodecKind::kXor, a, b);
  EXPECT_NE(a, original);
  retract(CodecKind::kXor, a, b);
  EXPECT_EQ(a, original);
}

TEST(Codec, SumAccumulateRetract) {
  std::vector<double> av{1.0, 2.0, 3.0};
  std::vector<double> bv{0.5, 0.25, -1.0};
  auto a = std::as_writable_bytes(std::span<double>(av));
  const auto b = std::as_bytes(std::span<const double>(bv));
  accumulate(CodecKind::kSum, a, b);
  EXPECT_DOUBLE_EQ(av[0], 1.5);
  retract(CodecKind::kSum, a, b);
  EXPECT_DOUBLE_EQ(av[0], 1.0);
  EXPECT_DOUBLE_EQ(av[2], 3.0);
}

TEST(Codec, RejectsMisalignedOrMismatched) {
  std::vector<std::byte> a(16);
  std::vector<std::byte> b(8);
  EXPECT_THROW(accumulate(CodecKind::kXor, a, b), std::invalid_argument);
  std::vector<std::byte> c(12);
  std::vector<std::byte> d(12);
  EXPECT_THROW(accumulate(CodecKind::kXor, c, d), std::invalid_argument);
}

TEST(Codec, EqualsXorExactSumTolerant) {
  auto a = random_bytes(32, 3);
  auto b = a;
  EXPECT_TRUE(equals(CodecKind::kXor, a, b));
  b[0] ^= std::byte{1};
  EXPECT_FALSE(equals(CodecKind::kXor, a, b));

  std::vector<double> xv{1.0, 2.0};
  std::vector<double> yv{1.0 + 1e-13, 2.0};
  EXPECT_TRUE(equals(CodecKind::kSum, std::as_bytes(std::span<const double>(xv)),
                     std::as_bytes(std::span<const double>(yv))));
  yv[0] = 1.1;
  EXPECT_FALSE(equals(CodecKind::kSum, std::as_bytes(std::span<const double>(xv)),
                      std::as_bytes(std::span<const double>(yv))));
}

// -------------------------------------------------------------- stripes ---

TEST(Stripes, LayoutSizes) {
  const StripeLayout layout(1000, 5);  // 4 stripes of ceil(1000/4)=250 -> 256 padded? 250->256
  EXPECT_EQ(layout.stripe_bytes() % kLane, 0u);
  EXPECT_GE(layout.stripe_bytes() * 4, 1000u);
  EXPECT_EQ(layout.padded_bytes(), layout.stripe_bytes() * 4);
}

TEST(Stripes, StripeIndexSkipsOwnFamily) {
  const StripeLayout layout(64, 4);
  EXPECT_EQ(layout.stripe_index(2, 0), 0u);
  EXPECT_EQ(layout.stripe_index(2, 1), 1u);
  EXPECT_EQ(layout.stripe_index(2, 3), 2u);
  EXPECT_THROW((void)layout.stripe_index(2, 2), std::invalid_argument);
  EXPECT_THROW((void)layout.stripe_index(2, 9), std::out_of_range);
}

TEST(Stripes, ViewsPartitionTheBuffer) {
  const StripeLayout layout(64, 3);
  std::vector<std::byte> buf(layout.padded_bytes());
  const auto s0 = layout.stripe(std::span<std::byte>(buf), 1, 0);
  const auto s2 = layout.stripe(std::span<std::byte>(buf), 1, 2);
  EXPECT_EQ(s0.data(), buf.data());
  EXPECT_EQ(s2.data(), buf.data() + layout.stripe_bytes());
  EXPECT_THROW((void)layout.stripe(std::span<std::byte>(buf).subspan(1), 1, 0),
               std::invalid_argument);
}

TEST(Stripes, RejectsTinyGroups) { EXPECT_THROW(StripeLayout(64, 1), std::invalid_argument); }

// ---------------------------------------------------------------- gf256 ---

TEST(Gf256, FieldAxiomsSpotChecks) {
  using namespace gf256;
  EXPECT_EQ(mul(0, 77), 0);
  EXPECT_EQ(mul(1, 77), 77);
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(ua, inv(ua)), 1) << a;
  }
  // Commutativity + associativity samples.
  for (int a = 1; a < 256; a += 37) {
    for (int b = 1; b < 256; b += 29) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(mul(ua, ub), mul(ub, ua));
      EXPECT_EQ(mul(mul(ua, ub), 7), mul(ua, mul(ub, 7)));
    }
  }
  EXPECT_EQ(div(mul(12, 9), 9), 12);
  EXPECT_EQ(pow(2, 0), 1);
  EXPECT_EQ(pow(2, 1), 2);
  EXPECT_EQ(pow(2, 8), mul(pow(2, 4), pow(2, 4)));
  EXPECT_THROW((void)inv(0), std::domain_error);
  EXPECT_THROW((void)div(1, 0), std::domain_error);
}

TEST(Gf256, SolveLinearSystem) {
  // 2x2 system with known solution.
  std::vector<std::uint8_t> m{1, 2, 3, 4};
  const std::uint8_t x0 = 5;
  const std::uint8_t x1 = 9;
  std::vector<std::uint8_t> rhs{
      static_cast<std::uint8_t>(gf256::mul(1, x0) ^ gf256::mul(2, x1)),
      static_cast<std::uint8_t>(gf256::mul(3, x0) ^ gf256::mul(4, x1))};
  ASSERT_TRUE(gf256::solve(m, rhs, 2));
  EXPECT_EQ(rhs[0], x0);
  EXPECT_EQ(rhs[1], x1);
}

TEST(Gf256, SolveDetectsSingular) {
  std::vector<std::uint8_t> m{1, 2, 1, 2};  // rank 1
  std::vector<std::uint8_t> rhs{3, 3};
  EXPECT_FALSE(gf256::solve(m, rhs, 2));
}

// --------------------------------------------------------- reed-solomon ---

class ReedSolomonErasures : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReedSolomonErasures, AnyErasurePatternUpToMRecovers) {
  const auto [k, m] = GetParam();
  const std::size_t shard_size = 96;
  const ReedSolomon rs(k, m);

  std::vector<std::vector<std::uint8_t>> shards(static_cast<std::size_t>(k + m));
  std::vector<std::span<const std::uint8_t>> data_views;
  std::vector<std::span<std::uint8_t>> parity_views;
  util::Xoshiro256 rng(static_cast<std::uint64_t>(k * 100 + m));
  for (int i = 0; i < k; ++i) {
    auto& shard = shards[static_cast<std::size_t>(i)];
    shard.resize(shard_size);
    for (auto& b : shard) b = static_cast<std::uint8_t>(rng.next());
    data_views.emplace_back(shard);
  }
  for (int j = 0; j < m; ++j) {
    shards[static_cast<std::size_t>(k + j)].resize(shard_size);
    parity_views.emplace_back(shards[static_cast<std::size_t>(k + j)]);
  }
  rs.encode(data_views, parity_views);
  const auto golden = shards;

  // Exhaustively erase every subset of size 1..m (k+m is small here).
  const int total = k + m;
  for (int mask = 1; mask < (1 << total); ++mask) {
    if (__builtin_popcount(static_cast<unsigned>(mask)) > m) continue;
    auto work = golden;
    std::vector<bool> present(static_cast<std::size_t>(total), true);
    std::vector<std::span<std::uint8_t>> views;
    for (int i = 0; i < total; ++i) {
      if (mask & (1 << i)) {
        std::fill(work[static_cast<std::size_t>(i)].begin(),
                  work[static_cast<std::size_t>(i)].end(), std::uint8_t{0xEE});
        present[static_cast<std::size_t>(i)] = false;
      }
      views.emplace_back(work[static_cast<std::size_t>(i)]);
    }
    ASSERT_TRUE(rs.reconstruct(views, present)) << "mask " << mask;
    for (int i = 0; i < total; ++i) {
      ASSERT_EQ(work[static_cast<std::size_t>(i)], golden[static_cast<std::size_t>(i)])
          << "shard " << i << " mask " << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReedSolomonErasures,
                         ::testing::Values(std::make_tuple(2, 1), std::make_tuple(3, 2),
                                           std::make_tuple(4, 2), std::make_tuple(5, 3),
                                           std::make_tuple(7, 3)));

TEST(ReedSolomon, TooManyErasuresRejected) {
  const ReedSolomon rs(3, 2);
  std::vector<std::vector<std::uint8_t>> shards(5, std::vector<std::uint8_t>(8));
  std::vector<std::span<std::uint8_t>> views(shards.begin(), shards.end());
  const std::vector<bool> present{false, false, false, true, true};
  EXPECT_FALSE(rs.reconstruct(views, present));
}

TEST(ReedSolomon, RejectsBadShapes) {
  EXPECT_THROW(ReedSolomon(0, 1), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(1, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
}

// ---------------------------------------------------------- group codec ---

class GroupCodecParam
    : public ::testing::TestWithParam<std::tuple<CodecKind, int /*group size*/>> {};

TEST_P(GroupCodecParam, EncodeThenRebuildEveryMember) {
  const auto [kind, group_size] = GetParam();
  const std::size_t data_bytes = 1000;  // deliberately not stripe-aligned
  MiniCluster mc(group_size, 0);

  for (int victim = 0; victim < group_size; ++victim) {
    const auto result = mc.run(group_size, [&, victim](mpi::Comm& world) {
      const GroupCodec codec(kind, data_bytes, world.size());
      std::vector<std::byte> data(codec.padded_bytes(), std::byte{0});
      std::vector<std::byte> checksum(codec.checksum_bytes());
      // Distinct per-rank content; SUM codec needs doubles, so fill the
      // buffer with valid doubles.
      std::span<double> lanes{reinterpret_cast<double*>(data.data()),
                              data.size() / sizeof(double)};
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        lanes[i] = util::element_value(99, static_cast<std::uint64_t>(world.rank()), i);
      }
      const std::vector<std::byte> golden_data = data;

      codec.encode(world, data, checksum);
      const std::vector<std::byte> golden_checksum = checksum;
      EXPECT_TRUE(codec.verify(world, data, checksum));

      if (world.rank() == victim) {
        std::fill(data.begin(), data.end(), std::byte{0xAB});
        std::fill(checksum.begin(), checksum.end(), std::byte{0xCD});
      }
      codec.rebuild(world, victim, data, checksum);

      const double tol = kind == CodecKind::kXor ? 0.0 : 1e-9;
      EXPECT_TRUE(equals(kind, data, golden_data, tol == 0.0 ? 1e-30 : tol));
      if (kind == CodecKind::kXor) {
        EXPECT_EQ(data, golden_data);
        EXPECT_EQ(checksum, golden_checksum);
      }
      EXPECT_TRUE(codec.verify(world, data, checksum));
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, GroupCodecParam,
    ::testing::Combine(::testing::Values(CodecKind::kXor, CodecKind::kSum),
                       ::testing::Values(2, 3, 4, 8)));

// Property: the reduce-scatter encode agrees with the N-sequential-reduce
// baseline on random payloads across group sizes. XOR must be bit-identical;
// SUM combines in a different order, so it is tolerance-equal.
class EncodeEquivalence
    : public ::testing::TestWithParam<std::tuple<CodecKind, int /*group size*/>> {};

TEST_P(EncodeEquivalence, ScatterEncodeMatchesReferenceEncode) {
  const auto [kind, group_size] = GetParam();
  const std::size_t data_bytes = 4096 + 72;  // not stripe-aligned
  MiniCluster mc(group_size, 0);
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    const auto result = mc.run(group_size, [&, trial](mpi::Comm& world) {
      const GroupCodec codec(kind, data_bytes, world.size());
      std::vector<std::byte> data(codec.padded_bytes(), std::byte{0});
      std::span<double> lanes{reinterpret_cast<double*>(data.data()),
                              data.size() / sizeof(double)};
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        lanes[i] = util::element_value(7 + trial, static_cast<std::uint64_t>(world.rank()), i);
      }
      std::vector<std::byte> fast(codec.checksum_bytes());
      std::vector<std::byte> reference(codec.checksum_bytes());
      codec.encode(world, data, fast);
      codec.encode_reference(world, data, reference);
      if (kind == CodecKind::kXor) {
        EXPECT_EQ(fast, reference);
      } else {
        EXPECT_TRUE(equals(kind, fast, reference, 1e-9));
      }
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, EncodeEquivalence,
    ::testing::Combine(::testing::Values(CodecKind::kXor, CodecKind::kSum),
                       ::testing::Values(2, 3, 4, 5, 8, 16)));

TEST(GroupCodec, VerifyDetectsCorruption) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    const GroupCodec codec(CodecKind::kXor, 256, world.size());
    std::vector<std::byte> data(codec.padded_bytes(), std::byte(world.rank() + 1));
    std::vector<std::byte> checksum(codec.checksum_bytes());
    codec.encode(world, data, checksum);
    ASSERT_TRUE(codec.verify(world, data, checksum));
    if (world.rank() == 2) data[5] ^= std::byte{0x40};
    EXPECT_FALSE(codec.verify(world, data, checksum));
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(GroupCodec, ChecksumIsStripeFraction) {
  const GroupCodec codec(CodecKind::kXor, 1 << 20, 16);
  // Checksum ~= M / (N-1); padding adds at most one lane per stripe.
  EXPECT_NEAR(static_cast<double>(codec.checksum_bytes()),
              static_cast<double>(1 << 20) / 15.0, kLane + 1);
}

TEST(GroupCodec, MismatchedCommSizeThrows) {
  MiniCluster mc(3, 0);
  const auto result = mc.run(3, [](mpi::Comm& world) {
    const GroupCodec codec(CodecKind::kXor, 128, 4);  // wrong group size
    std::vector<std::byte> data(codec.padded_bytes());
    std::vector<std::byte> checksum(codec.checksum_bytes());
    EXPECT_THROW(codec.encode(world, data, checksum), std::invalid_argument);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

}  // namespace
}  // namespace skt::enc
