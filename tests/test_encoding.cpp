#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "encoding/codec.hpp"
#include "encoding/dual_parity.hpp"
#include "encoding/erasure_coder.hpp"
#include "encoding/gf256.hpp"
#include "encoding/group_codec.hpp"
#include "encoding/reed_solomon.hpp"
#include "encoding/rs_group.hpp"
#include "encoding/stripes.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace skt::enc {
namespace {

using skt::testing::MiniCluster;

std::vector<std::byte> random_bytes(std::size_t size, std::uint64_t seed) {
  std::vector<std::byte> out(size);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < size; i += 8) {
    const std::uint64_t v = rng.next();
    std::memcpy(out.data() + i, &v, std::min<std::size_t>(8, size - i));
  }
  return out;
}

// ---------------------------------------------------------------- codec ---

TEST(Codec, XorAccumulateIsSelfInverse) {
  auto a = random_bytes(64, 1);
  const auto original = a;
  const auto b = random_bytes(64, 2);
  accumulate(CodecKind::kXor, a, b);
  EXPECT_NE(a, original);
  retract(CodecKind::kXor, a, b);
  EXPECT_EQ(a, original);
}

TEST(Codec, SumAccumulateRetract) {
  std::vector<double> av{1.0, 2.0, 3.0};
  std::vector<double> bv{0.5, 0.25, -1.0};
  auto a = std::as_writable_bytes(std::span<double>(av));
  const auto b = std::as_bytes(std::span<const double>(bv));
  accumulate(CodecKind::kSum, a, b);
  EXPECT_DOUBLE_EQ(av[0], 1.5);
  retract(CodecKind::kSum, a, b);
  EXPECT_DOUBLE_EQ(av[0], 1.0);
  EXPECT_DOUBLE_EQ(av[2], 3.0);
}

TEST(Codec, RejectsMisalignedOrMismatched) {
  std::vector<std::byte> a(16);
  std::vector<std::byte> b(8);
  EXPECT_THROW(accumulate(CodecKind::kXor, a, b), std::invalid_argument);
  std::vector<std::byte> c(12);
  std::vector<std::byte> d(12);
  EXPECT_THROW(accumulate(CodecKind::kXor, c, d), std::invalid_argument);
}

TEST(Codec, EqualsXorExactSumTolerant) {
  auto a = random_bytes(32, 3);
  auto b = a;
  EXPECT_TRUE(equals(CodecKind::kXor, a, b));
  b[0] ^= std::byte{1};
  EXPECT_FALSE(equals(CodecKind::kXor, a, b));

  std::vector<double> xv{1.0, 2.0};
  std::vector<double> yv{1.0 + 1e-13, 2.0};
  EXPECT_TRUE(equals(CodecKind::kSum, std::as_bytes(std::span<const double>(xv)),
                     std::as_bytes(std::span<const double>(yv))));
  yv[0] = 1.1;
  EXPECT_FALSE(equals(CodecKind::kSum, std::as_bytes(std::span<const double>(xv)),
                      std::as_bytes(std::span<const double>(yv))));
}

// -------------------------------------------------------------- stripes ---

TEST(Stripes, LayoutSizes) {
  const StripeLayout layout(1000, 5);  // 4 stripes of ceil(1000/4)=250 -> 256 padded? 250->256
  EXPECT_EQ(layout.stripe_bytes() % kLane, 0u);
  EXPECT_GE(layout.stripe_bytes() * 4, 1000u);
  EXPECT_EQ(layout.padded_bytes(), layout.stripe_bytes() * 4);
}

TEST(Stripes, StripeIndexSkipsOwnFamily) {
  const StripeLayout layout(64, 4);
  EXPECT_EQ(layout.stripe_index(2, 0), 0u);
  EXPECT_EQ(layout.stripe_index(2, 1), 1u);
  EXPECT_EQ(layout.stripe_index(2, 3), 2u);
  EXPECT_THROW((void)layout.stripe_index(2, 2), std::invalid_argument);
  EXPECT_THROW((void)layout.stripe_index(2, 9), std::out_of_range);
}

TEST(Stripes, ViewsPartitionTheBuffer) {
  const StripeLayout layout(64, 3);
  std::vector<std::byte> buf(layout.padded_bytes());
  const auto s0 = layout.stripe(std::span<std::byte>(buf), 1, 0);
  const auto s2 = layout.stripe(std::span<std::byte>(buf), 1, 2);
  EXPECT_EQ(s0.data(), buf.data());
  EXPECT_EQ(s2.data(), buf.data() + layout.stripe_bytes());
  EXPECT_THROW((void)layout.stripe(std::span<std::byte>(buf).subspan(1), 1, 0),
               std::invalid_argument);
}

TEST(Stripes, RejectsTinyGroups) { EXPECT_THROW(StripeLayout(64, 1), std::invalid_argument); }

// ---------------------------------------------------------------- gf256 ---

TEST(Gf256, FieldAxiomsSpotChecks) {
  using namespace gf256;
  EXPECT_EQ(mul(0, 77), 0);
  EXPECT_EQ(mul(1, 77), 77);
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(ua, inv(ua)), 1) << a;
  }
  // Commutativity + associativity samples.
  for (int a = 1; a < 256; a += 37) {
    for (int b = 1; b < 256; b += 29) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(mul(ua, ub), mul(ub, ua));
      EXPECT_EQ(mul(mul(ua, ub), 7), mul(ua, mul(ub, 7)));
    }
  }
  EXPECT_EQ(div(mul(12, 9), 9), 12);
  EXPECT_EQ(pow(2, 0), 1);
  EXPECT_EQ(pow(2, 1), 2);
  EXPECT_EQ(pow(2, 8), mul(pow(2, 4), pow(2, 4)));
  EXPECT_THROW((void)inv(0), std::domain_error);
  EXPECT_THROW((void)div(1, 0), std::domain_error);
}

TEST(Gf256, SolveLinearSystem) {
  // 2x2 system with known solution.
  std::vector<std::uint8_t> m{1, 2, 3, 4};
  const std::uint8_t x0 = 5;
  const std::uint8_t x1 = 9;
  std::vector<std::uint8_t> rhs{
      static_cast<std::uint8_t>(gf256::mul(1, x0) ^ gf256::mul(2, x1)),
      static_cast<std::uint8_t>(gf256::mul(3, x0) ^ gf256::mul(4, x1))};
  ASSERT_TRUE(gf256::solve(m, rhs, 2));
  EXPECT_EQ(rhs[0], x0);
  EXPECT_EQ(rhs[1], x1);
}

TEST(Gf256, SolveDetectsSingular) {
  std::vector<std::uint8_t> m{1, 2, 1, 2};  // rank 1
  std::vector<std::uint8_t> rhs{3, 3};
  EXPECT_FALSE(gf256::solve(m, rhs, 2));
}

// --------------------------------------------------------- reed-solomon ---

class ReedSolomonErasures : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReedSolomonErasures, AnyErasurePatternUpToMRecovers) {
  const auto [k, m] = GetParam();
  const std::size_t shard_size = 96;
  const ReedSolomon rs(k, m);

  std::vector<std::vector<std::uint8_t>> shards(static_cast<std::size_t>(k + m));
  std::vector<std::span<const std::uint8_t>> data_views;
  std::vector<std::span<std::uint8_t>> parity_views;
  util::Xoshiro256 rng(static_cast<std::uint64_t>(k * 100 + m));
  for (int i = 0; i < k; ++i) {
    auto& shard = shards[static_cast<std::size_t>(i)];
    shard.resize(shard_size);
    for (auto& b : shard) b = static_cast<std::uint8_t>(rng.next());
    data_views.emplace_back(shard);
  }
  for (int j = 0; j < m; ++j) {
    shards[static_cast<std::size_t>(k + j)].resize(shard_size);
    parity_views.emplace_back(shards[static_cast<std::size_t>(k + j)]);
  }
  rs.encode(data_views, parity_views);
  const auto golden = shards;

  // Exhaustively erase every subset of size 1..m (k+m is small here).
  const int total = k + m;
  for (int mask = 1; mask < (1 << total); ++mask) {
    if (__builtin_popcount(static_cast<unsigned>(mask)) > m) continue;
    auto work = golden;
    std::vector<bool> present(static_cast<std::size_t>(total), true);
    std::vector<std::span<std::uint8_t>> views;
    for (int i = 0; i < total; ++i) {
      if (mask & (1 << i)) {
        std::fill(work[static_cast<std::size_t>(i)].begin(),
                  work[static_cast<std::size_t>(i)].end(), std::uint8_t{0xEE});
        present[static_cast<std::size_t>(i)] = false;
      }
      views.emplace_back(work[static_cast<std::size_t>(i)]);
    }
    ASSERT_TRUE(rs.reconstruct(views, present)) << "mask " << mask;
    for (int i = 0; i < total; ++i) {
      ASSERT_EQ(work[static_cast<std::size_t>(i)], golden[static_cast<std::size_t>(i)])
          << "shard " << i << " mask " << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReedSolomonErasures,
                         ::testing::Values(std::make_tuple(2, 1), std::make_tuple(3, 2),
                                           std::make_tuple(4, 2), std::make_tuple(5, 3),
                                           std::make_tuple(7, 3)));

TEST(ReedSolomon, TooManyErasuresRejected) {
  const ReedSolomon rs(3, 2);
  std::vector<std::vector<std::uint8_t>> shards(5, std::vector<std::uint8_t>(8));
  std::vector<std::span<std::uint8_t>> views(shards.begin(), shards.end());
  const std::vector<bool> present{false, false, false, true, true};
  EXPECT_FALSE(rs.reconstruct(views, present));
}

TEST(ReedSolomon, RejectsBadShapes) {
  EXPECT_THROW(ReedSolomon(0, 1), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(1, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
}

// ---------------------------------------------------------- group codec ---

class GroupCodecParam
    : public ::testing::TestWithParam<std::tuple<CodecKind, int /*group size*/>> {};

TEST_P(GroupCodecParam, EncodeThenRebuildEveryMember) {
  const auto [kind, group_size] = GetParam();
  const std::size_t data_bytes = 1000;  // deliberately not stripe-aligned
  MiniCluster mc(group_size, 0);

  for (int victim = 0; victim < group_size; ++victim) {
    const auto result = mc.run(group_size, [&, victim](mpi::Comm& world) {
      const GroupCodec codec(kind, data_bytes, world.size());
      std::vector<std::byte> data(codec.padded_bytes(), std::byte{0});
      std::vector<std::byte> checksum(codec.checksum_bytes());
      // Distinct per-rank content; SUM codec needs doubles, so fill the
      // buffer with valid doubles.
      std::span<double> lanes{reinterpret_cast<double*>(data.data()),
                              data.size() / sizeof(double)};
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        lanes[i] = util::element_value(99, static_cast<std::uint64_t>(world.rank()), i);
      }
      const std::vector<std::byte> golden_data = data;

      codec.encode(world, data, checksum);
      const std::vector<std::byte> golden_checksum = checksum;
      EXPECT_TRUE(codec.verify(world, data, checksum));

      if (world.rank() == victim) {
        std::fill(data.begin(), data.end(), std::byte{0xAB});
        std::fill(checksum.begin(), checksum.end(), std::byte{0xCD});
      }
      codec.rebuild(world, victim, data, checksum);

      const double tol = kind == CodecKind::kXor ? 0.0 : 1e-9;
      EXPECT_TRUE(equals(kind, data, golden_data, tol == 0.0 ? 1e-30 : tol));
      if (kind == CodecKind::kXor) {
        EXPECT_EQ(data, golden_data);
        EXPECT_EQ(checksum, golden_checksum);
      }
      EXPECT_TRUE(codec.verify(world, data, checksum));
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, GroupCodecParam,
    ::testing::Combine(::testing::Values(CodecKind::kXor, CodecKind::kSum),
                       ::testing::Values(2, 3, 4, 8)));

// Property: the reduce-scatter encode agrees with the N-sequential-reduce
// baseline on random payloads across group sizes. XOR must be bit-identical;
// SUM combines in a different order, so it is tolerance-equal.
class EncodeEquivalence
    : public ::testing::TestWithParam<std::tuple<CodecKind, int /*group size*/>> {};

TEST_P(EncodeEquivalence, ScatterEncodeMatchesReferenceEncode) {
  const auto [kind, group_size] = GetParam();
  const std::size_t data_bytes = 4096 + 72;  // not stripe-aligned
  MiniCluster mc(group_size, 0);
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    const auto result = mc.run(group_size, [&, trial](mpi::Comm& world) {
      const GroupCodec codec(kind, data_bytes, world.size());
      std::vector<std::byte> data(codec.padded_bytes(), std::byte{0});
      std::span<double> lanes{reinterpret_cast<double*>(data.data()),
                              data.size() / sizeof(double)};
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        lanes[i] = util::element_value(7 + trial, static_cast<std::uint64_t>(world.rank()), i);
      }
      std::vector<std::byte> fast(codec.checksum_bytes());
      std::vector<std::byte> reference(codec.checksum_bytes());
      codec.encode(world, data, fast);
      codec.encode_reference(world, data, reference);
      if (kind == CodecKind::kXor) {
        EXPECT_EQ(fast, reference);
      } else {
        EXPECT_TRUE(equals(kind, fast, reference, 1e-9));
      }
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, EncodeEquivalence,
    ::testing::Combine(::testing::Values(CodecKind::kXor, CodecKind::kSum),
                       ::testing::Values(2, 3, 4, 5, 8, 16)));

TEST(GroupCodec, VerifyDetectsCorruption) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    const GroupCodec codec(CodecKind::kXor, 256, world.size());
    std::vector<std::byte> data(codec.padded_bytes(), std::byte(world.rank() + 1));
    std::vector<std::byte> checksum(codec.checksum_bytes());
    codec.encode(world, data, checksum);
    ASSERT_TRUE(codec.verify(world, data, checksum));
    if (world.rank() == 2) data[5] ^= std::byte{0x40};
    EXPECT_FALSE(codec.verify(world, data, checksum));
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(GroupCodec, ChecksumIsStripeFraction) {
  const GroupCodec codec(CodecKind::kXor, 1 << 20, 16);
  // Checksum ~= M / (N-1); padding adds at most one lane per stripe.
  EXPECT_NEAR(static_cast<double>(codec.checksum_bytes()),
              static_cast<double>(1 << 20) / 15.0, kLane + 1);
}

// ------------------------------------------------------- RS(k, m) group ---

/// Every subset of <= m members, erased simultaneously, must rebuild to
/// the exact pre-loss bytes (data AND parity) from the k survivors.
class RSGroupErasures
    : public ::testing::TestWithParam<std::tuple<int /*group size*/, int /*parity m*/>> {};

TEST_P(RSGroupErasures, EveryLossPatternUpToMRebuildsExactly) {
  const auto [group_size, parity] = GetParam();
  const std::size_t data_bytes = 700;  // deliberately not stripe-aligned
  MiniCluster mc(group_size, 0);

  // Enumerate loss masks of size 1..m over the group.
  for (int mask = 1; mask < (1 << group_size); ++mask) {
    if (__builtin_popcount(static_cast<unsigned>(mask)) > parity) continue;
    std::vector<int> lost;
    for (int p = 0; p < group_size; ++p) {
      if (mask & (1 << p)) lost.push_back(p);
    }
    const auto result = mc.run(group_size, [&](mpi::Comm& world) {
      const RSGroupCodec codec(data_bytes, world.size(), parity);
      std::vector<std::byte> data(codec.padded_bytes(), std::byte{0});
      std::vector<std::byte> parity_buf(codec.parity_bytes());
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(
            util::element_value(31, static_cast<std::uint64_t>(world.rank()), i) * 255.0);
      }
      const std::vector<std::byte> golden_data = data;
      codec.encode(world, data, parity_buf);
      const std::vector<std::byte> golden_parity = parity_buf;
      EXPECT_TRUE(codec.verify(world, data, parity_buf));

      const bool me_lost = (mask & (1 << world.rank())) != 0;
      if (me_lost) {
        std::fill(data.begin(), data.end(), std::byte{0xAB});
        std::fill(parity_buf.begin(), parity_buf.end(), std::byte{0xCD});
      }
      codec.rebuild(world, lost, data, parity_buf);
      EXPECT_EQ(data, golden_data) << "mask " << mask << " rank " << world.rank();
      EXPECT_EQ(parity_buf, golden_parity) << "mask " << mask << " rank " << world.rank();
      EXPECT_TRUE(codec.verify(world, data, parity_buf));
    });
    ASSERT_TRUE(result.completed) << result.abort_reason << " mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RSGroupErasures,
                         ::testing::Values(std::make_tuple(4, 2), std::make_tuple(5, 2),
                                           std::make_tuple(6, 2), std::make_tuple(5, 3),
                                           std::make_tuple(6, 3), std::make_tuple(6, 4),
                                           std::make_tuple(4, 1)));

TEST(RSGroup, WideGroupRecoversThreeConcurrentLosses) {
  // RS(8, 3): the issue's wide-stripe shape. Exhaustive masks would be
  // slow at N=11, so spot-check worst-case patterns: adjacent members
  // (shared families), spread members, and parity-heavy picks.
  const int n = 11;
  MiniCluster mc(n, 0);
  const std::vector<std::vector<int>> patterns{
      {0, 1, 2}, {0, 5, 10}, {3, 4, 5}, {8, 9, 10}, {0, 1, 10}, {2, 6, 7}};
  for (const auto& lost : patterns) {
    const auto result = mc.run(n, [&](mpi::Comm& world) {
      const RSGroupCodec codec(9000, world.size(), 3);
      std::vector<std::byte> data(codec.padded_bytes());
      std::vector<std::byte> parity(codec.parity_bytes());
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>((i * 131 + static_cast<std::size_t>(world.rank()) * 7) & 0xFF);
      }
      const auto golden_data = data;
      codec.encode(world, data, parity);
      const auto golden_parity = parity;
      if (std::find(lost.begin(), lost.end(), world.rank()) != lost.end()) {
        std::fill(data.begin(), data.end(), std::byte{0xEE});
        std::fill(parity.begin(), parity.end(), std::byte{0xEE});
      }
      codec.rebuild(world, lost, data, parity);
      EXPECT_EQ(data, golden_data);
      EXPECT_EQ(parity, golden_parity);
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
}

TEST(RSGroup, MoreThanMErasuresThrow) {
  MiniCluster mc(5, 0);
  const auto result = mc.run(5, [](mpi::Comm& world) {
    const RSGroupCodec codec(512, world.size(), 2);
    std::vector<std::byte> data(codec.padded_bytes());
    std::vector<std::byte> parity(codec.parity_bytes());
    const std::vector<int> three{0, 1, 2};
    EXPECT_THROW(codec.rebuild(world, three, data, parity), std::invalid_argument);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(RSGroup, RejectsBadShapes) {
  EXPECT_THROW(RSGroupCodec(64, 3, 2), std::invalid_argument);  // N < m + 2
  EXPECT_THROW(RSGroupCodec(64, 4, 0), std::invalid_argument);
  EXPECT_THROW(RSGroupCodec(64, 2, 1), std::invalid_argument);
}

TEST(RSGroup, LayoutPartitionsFamilies) {
  const RSGroupCodec codec(1024, 7, 3);
  for (int p = 0; p < 7; ++p) {
    int stripes = 0;
    for (int f = 0; f < 7; ++f) {
      // p contributes to f exactly when it owns none of f's parity rows.
      bool owns = false;
      for (int row = 0; row < 3; ++row) owns |= codec.parity_owner(row, f) == p;
      EXPECT_EQ(codec.contributes(p, f), !owns);
      if (codec.contributes(p, f)) {
        EXPECT_EQ(codec.stripe_index(p, f), static_cast<std::size_t>(stripes));
        ++stripes;
      }
    }
    EXPECT_EQ(stripes, 4);  // k = N - m
  }
  // Contributor indices within a family are a bijection onto 0..k-1.
  for (int f = 0; f < 7; ++f) {
    std::vector<bool> seen(4, false);
    for (int p = 0; p < 7; ++p) {
      if (!codec.contributes(p, f)) continue;
      const int idx = codec.contributor_index(p, f);
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, 4);
      EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
      seen[static_cast<std::size_t>(idx)] = true;
    }
  }
}

/// RS with m=2 must be bit-identical to the hand-rolled RAID-6 codec:
/// same family layout, same Cauchy rows, same reduce-scatter schedule.
TEST(RSGroup, ParityTwoMatchesDualParityBitExactly) {
  for (const int n : {4, 5, 8}) {
    MiniCluster mc(n, 0);
    const auto result = mc.run(n, [](mpi::Comm& world) {
      const std::size_t data_bytes = 2048 + 24;
      const RSGroupCodec rs(data_bytes, world.size(), 2);
      const DualParityGroupCodec dual(data_bytes, world.size());
      ASSERT_EQ(rs.padded_bytes(), dual.padded_bytes());
      ASSERT_EQ(rs.parity_bytes(), dual.parity_bytes());
      std::vector<std::byte> data(rs.padded_bytes());
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>((i * 29 + static_cast<std::size_t>(world.rank())) & 0xFF);
      }
      std::vector<std::byte> p_rs(rs.parity_bytes());
      std::vector<std::byte> p_dual(dual.parity_bytes());
      rs.encode(world, data, p_rs);
      dual.encode(world, data, p_dual);
      EXPECT_EQ(p_rs, p_dual);

      // Delta path too: dirty one stripe and re-encode both ways.
      std::vector<std::byte> next = data;
      if (world.rank() == 0) next[3] ^= std::byte{0x5A};
      std::vector<std::uint8_t> dirty(rs.padded_bytes() / rs.stripe_bytes(), 0);
      if (world.rank() == 0) dirty[0] = 1;
      std::vector<std::byte> d_rs(rs.parity_bytes());
      std::vector<std::byte> d_dual(dual.parity_bytes());
      rs.encode_delta(world, data, next, p_rs, d_rs, dirty);
      dual.encode_delta(world, data, next, p_dual, d_dual, dirty);
      EXPECT_EQ(d_rs, d_dual);
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
}

/// Delta re-encode must agree with a from-scratch encode for arbitrary
/// dirty patterns (here: every rank dirties a different stripe).
TEST(RSGroup, EncodeDeltaMatchesFullEncode) {
  const int n = 6;
  MiniCluster mc(n, 0);
  const auto result = mc.run(n, [](mpi::Comm& world) {
    const RSGroupCodec codec(3000, world.size(), 3);
    const std::size_t stripes = codec.padded_bytes() / codec.stripe_bytes();
    std::vector<std::byte> base(codec.padded_bytes());
    for (std::size_t i = 0; i < base.size(); ++i) {
      base[i] = static_cast<std::byte>((i + static_cast<std::size_t>(world.rank()) * 97) & 0xFF);
    }
    std::vector<std::byte> old_parity(codec.parity_bytes());
    codec.encode(world, base, old_parity);

    std::vector<std::byte> next = base;
    std::vector<std::uint8_t> dirty(stripes, 0);
    const std::size_t victim = static_cast<std::size_t>(world.rank()) % stripes;
    if (world.rank() % 2 == 0) {
      next[victim * codec.stripe_bytes() + 1] ^= std::byte{0x77};
      dirty[victim] = 1;
    }
    std::vector<std::byte> delta_parity(codec.parity_bytes());
    codec.encode_delta(world, base, next, old_parity, delta_parity, dirty);
    std::vector<std::byte> full_parity(codec.parity_bytes());
    codec.encode(world, next, full_parity);
    EXPECT_EQ(delta_parity, full_parity);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

// -------------------------------------------------------- erasure coder ---

/// Satellite guarantee: the single-parity adapter must fail loudly when
/// handed more erasures than the code supports — never quietly rebuild
/// missing.front() from garbage survivors.
TEST(ErasureCoder, SingleParityRefusesMultiEraseLoudly) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    const auto coder = make_coder(1, CodecKind::kXor, 512, world.size());
    std::vector<std::byte> data(coder->padded_bytes());
    std::vector<std::byte> redundancy(coder->redundancy_bytes());
    const std::vector<int> two{0, 1};
    try {
      coder->rebuild(world, two, data, redundancy);
      FAIL() << "rebuild with 2 erasures must throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("refusing"), std::string::npos);
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(ErasureCoder, MakeCoderRoutesByParityDegree) {
  EXPECT_EQ(make_coder(1, CodecKind::kXor, 1024, 6)->max_failures(), 1);
  EXPECT_EQ(make_coder(2, CodecKind::kXor, 1024, 6)->max_failures(), 2);
  EXPECT_EQ(make_coder(3, CodecKind::kXor, 1024, 6)->max_failures(), 3);
  EXPECT_THROW(make_coder(0, CodecKind::kXor, 1024, 6), std::invalid_argument);
  // Degree 5 needs a group of >= 7.
  EXPECT_THROW(make_coder(5, CodecKind::kXor, 1024, 6), std::invalid_argument);
}

TEST(GroupCodec, MismatchedCommSizeThrows) {
  MiniCluster mc(3, 0);
  const auto result = mc.run(3, [](mpi::Comm& world) {
    const GroupCodec codec(CodecKind::kXor, 128, 4);  // wrong group size
    std::vector<std::byte> data(codec.padded_bytes());
    std::vector<std::byte> checksum(codec.checksum_bytes());
    EXPECT_THROW(codec.encode(world, data, checksum), std::invalid_argument);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

}  // namespace
}  // namespace skt::enc
