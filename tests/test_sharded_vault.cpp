#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "storage/placement.hpp"
#include "storage/sharded_vault.hpp"

namespace skt::storage {
namespace {

std::vector<std::byte> pattern_blob(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> blob(n);
  for (std::size_t i = 0; i < n; ++i) {
    blob[i] = static_cast<std::byte>((i * 131 + seed * 17) & 0xff);
  }
  return blob;
}

ShardedVaultConfig small_config(std::vector<int> nodes, std::size_t extent = 64) {
  ShardedVaultConfig config;
  config.nodes = std::move(nodes);
  config.extent_bytes = extent;
  return config;
}

TEST(PlacementMap, AnchorIsDeterministicArgmax) {
  const PlacementMap map({0, 1, 2, 3});
  for (const std::string key : {"a", "skt.r0.L2.img.e7", "ns/t/skt.manifest"}) {
    const std::size_t anchor = map.anchor_slot(key);
    std::uint64_t best = 0;
    std::size_t best_slot = 0;
    for (std::size_t slot = 0; slot < map.size(); ++slot) {
      const std::uint64_t s = PlacementMap::score(key, map.nodes()[slot]);
      if (s > best) {
        best = s;
        best_slot = slot;
      }
    }
    EXPECT_EQ(anchor, best_slot) << key;
    // Same inputs, same answer — placement must be a pure function.
    EXPECT_EQ(map.anchor_slot(key), anchor) << key;
  }
}

TEST(PlacementMap, ExtentsStripeRoundRobinWithDistinctSuccessor) {
  const PlacementMap map({10, 20, 30, 40});
  const std::size_t anchor = map.anchor_slot("blob");
  for (std::size_t e = 0; e < 8; ++e) {
    const Placement p = map.place("blob", e);
    EXPECT_EQ(p.primary, map.nodes()[(anchor + e) % 4]);
    EXPECT_EQ(p.successor, map.nodes()[(anchor + e + 1) % 4]);
    EXPECT_NE(p.primary, p.successor);
  }
}

TEST(PlacementMap, SingleShardSuccessorCollapsesToPrimary) {
  const PlacementMap map({5});
  const Placement p = map.place("k", 3);
  EXPECT_EQ(p.primary, 5);
  EXPECT_EQ(p.successor, 5);
}

TEST(PlacementMap, ReplaceKeepsSurvivorSlotsStable) {
  PlacementMap map({0, 1, 2, 3});
  const std::vector<int> before = map.nodes();
  const std::uint64_t v0 = map.version();
  map.replace(2, 9);
  EXPECT_EQ(map.version(), v0 + 1);
  ASSERT_EQ(map.size(), 4u);
  // Only slot 2 changed; the others keep their occupants AND their order,
  // so (anchor + e) % N striping stays valid for every surviving extent.
  for (std::size_t slot = 0; slot < 4; ++slot) {
    EXPECT_EQ(map.nodes()[slot], slot == 2 ? 9 : before[slot]);
  }
  // HRW scores of survivors are untouched: a key anchored at a surviving
  // node either keeps its anchor or is captured by the NEW node (slot 2);
  // it never migrates between two surviving slots.
  const PlacementMap old({0, 1, 2, 3});
  int captured = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (old.nodes()[old.anchor_slot(key)] == 2) continue;
    const std::size_t now = map.anchor_slot(key);
    EXPECT_TRUE(now == old.anchor_slot(key) || now == 2) << key;
    if (now == 2) ++captured;
  }
  // The joining node must capture some keys (~1/N for balance) but far
  // from all of them.
  EXPECT_GT(captured, 0);
  EXPECT_LT(captured, 100);
}

TEST(PlacementMap, ReplaceValidates) {
  PlacementMap map({0, 1});
  EXPECT_THROW(map.replace(7, 9), std::invalid_argument);   // 7 holds no slot
  EXPECT_THROW(map.replace(0, 1), std::invalid_argument);   // 1 already placed
  EXPECT_THROW(PlacementMap({}), std::invalid_argument);    // empty
  EXPECT_THROW(PlacementMap({3, 3}), std::invalid_argument);  // duplicate
}

TEST(ShardedVault, RoundTripsOddSizesAcrossExtentBoundaries) {
  ShardedVault vault(small_config({0, 1, 2, 3}, 64));
  // 0, 1, just-below/at/above one extent, several extents + ragged tail.
  for (const std::size_t n : {0u, 1u, 63u, 64u, 65u, 256u, 1000u}) {
    const auto blob = pattern_blob(n, static_cast<unsigned>(n));
    const std::string key = "blob" + std::to_string(n);
    vault.put(key, blob);
    EXPECT_TRUE(vault.exists(key));
    const auto back = vault.get(key);
    ASSERT_TRUE(back.has_value()) << n;
    EXPECT_EQ(*back, blob) << n;
  }
  EXPECT_EQ(vault.bytes_in_use(), 0u + 1 + 63 + 64 + 65 + 256 + 1000);
}

TEST(ShardedVault, LargeBlobEngagesEveryShard) {
  ShardedVault vault(small_config({0, 1, 2, 3}, 64));
  vault.put("big", pattern_blob(64 * 16));  // 16 extents over 4 shards
  for (const int node : {0, 1, 2, 3}) {
    EXPECT_GT(vault.shard_bytes(node), 0u) << "shard " << node << " idle";
  }
}

TEST(ShardedVault, ReplicationDoublesPhysicalNotLogicalBytes) {
  ShardedVault vault(small_config({0, 1, 2}, 64));
  vault.put("k", pattern_blob(640));
  EXPECT_EQ(vault.bytes_in_use(), 640u);
  std::size_t physical = 0;
  for (const int node : {0, 1, 2}) physical += vault.shard_bytes(node);
  EXPECT_EQ(physical, 2 * 640u);  // primary + successor copy of every extent
}

TEST(ShardedVault, PutReplacesAtomicallyWithoutOrphanExtents) {
  ShardedVault vault(small_config({0, 1}, 64));
  vault.put("k", pattern_blob(640, 1));
  vault.put("k", pattern_blob(100, 2));  // shrink: old tail extents must go
  const auto back = vault.get("k");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pattern_blob(100, 2));
  std::size_t physical = 0;
  for (const int node : {0, 1}) physical += vault.shard_bytes(node);
  EXPECT_EQ(physical, 2 * 100u);
}

TEST(ShardedVault, ReplaceNodeRehomesFromSurvivingReplicas) {
  ShardedVault vault(small_config({0, 1, 2, 3}, 64));
  std::vector<std::pair<std::string, std::vector<std::byte>>> blobs;
  for (int i = 0; i < 12; ++i) {
    blobs.emplace_back("blob" + std::to_string(i),
                       pattern_blob(64 * 5 + static_cast<std::size_t>(i), i + 1u));
    vault.put(blobs.back().first, blobs.back().second);
  }
  const std::uint64_t v0 = vault.placement_version();

  // Node 2 dies; spare node 9 takes its slot. The dead shard's contents
  // are gone — everything must be recovered from replicas.
  vault.replace_node(2, 9);

  EXPECT_FALSE(vault.has_shard(2));
  EXPECT_TRUE(vault.has_shard(9));
  EXPECT_GT(vault.placement_version(), v0);
  const ShardedVaultStats stats = vault.stats();
  EXPECT_EQ(stats.rebalances, 1u);
  EXPECT_GT(stats.extents_rehomed, 0u);
  EXPECT_EQ(stats.extents_lost, 0u);  // single loss: replica invariant holds
  EXPECT_GT(vault.shard_bytes(9), 0u);  // the spare now carries its share

  for (const auto& [key, blob] : blobs) {
    EXPECT_TRUE(vault.exists(key)) << key;
    const auto back = vault.get(key);
    ASSERT_TRUE(back.has_value()) << key;
    EXPECT_EQ(*back, blob) << key;
  }
  // Post-reshard reads are served from placement again, and the replica
  // invariant is re-established: physical is back to 2x logical.
  std::size_t physical = 0;
  for (const int node : vault.shard_nodes()) physical += vault.shard_bytes(node);
  EXPECT_EQ(physical, 2 * vault.bytes_in_use());
}

TEST(ShardedVault, SurvivesSequentialLossOfEveryOriginalShard) {
  ShardedVault vault(small_config({0, 1, 2, 3}, 64));
  const auto blob = pattern_blob(64 * 9 + 17);
  vault.put("k", blob);
  // One loss at a time with a reshard in between — the replica invariant
  // is restored after each, so data survives losing all original nodes.
  vault.replace_node(0, 10);
  vault.replace_node(1, 11);
  vault.replace_node(2, 12);
  vault.replace_node(3, 13);
  EXPECT_EQ(vault.stats().extents_lost, 0u);
  const auto back = vault.get("k");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blob);
}

TEST(ShardedVault, ReplaceNodeWithoutShardIsNoOp) {
  ShardedVault vault(small_config({0, 1}, 64));
  vault.put("k", pattern_blob(100));
  const std::uint64_t v0 = vault.placement_version();
  vault.replace_node(7, 8);  // node 7 never hosted a shard
  EXPECT_EQ(vault.placement_version(), v0);
  EXPECT_EQ(vault.stats().rebalances, 0u);
  EXPECT_TRUE(vault.exists("k"));
}

TEST(ShardedVault, PrefixAccountingSpansShards) {
  ShardedVault vault(small_config({0, 1, 2}, 64));
  vault.put("ns/a/x", pattern_blob(200, 1));
  vault.put("ns/a/y", pattern_blob(300, 2));
  vault.put("ns/b/x", pattern_blob(500, 3));
  EXPECT_EQ(vault.bytes_under("ns/a/"), 500u);
  EXPECT_EQ(vault.bytes_under("ns/"), 1000u);
  EXPECT_EQ(vault.bytes_under("nope"), 0u);
  EXPECT_EQ(vault.remove_prefix("ns/a/"), 2u);
  EXPECT_FALSE(vault.exists("ns/a/x"));
  EXPECT_TRUE(vault.exists("ns/b/x"));
  EXPECT_EQ(vault.bytes_in_use(), 500u);
  // Extents of the removed tenant are gone from every shard: physical is
  // exactly the survivor's replicated footprint.
  std::size_t physical = 0;
  for (const int node : {0, 1, 2}) physical += vault.shard_bytes(node);
  EXPECT_EQ(physical, 2 * 500u);
}

TEST(ShardedVault, WriteSecondsScalesWithShardCount) {
  const std::size_t bytes = 256u << 20;  // large enough to swamp latency
  ShardedVault one(small_config({0}, 256 * 1024));
  ShardedVault four(small_config({0, 1, 2, 3}, 256 * 1024));
  const double t1 = one.write_seconds("k", bytes).value();
  const double t4 = four.write_seconds("k", bytes).value();
  // The bench gate requires >= 2x aggregate bandwidth at 4 shards; the
  // model gives ~4x for latency-dominated-free transfers.
  EXPECT_GE(t1 / t4, 2.0);
  EXPECT_LT(t1 / t4, 4.5);
  EXPECT_TRUE(one.read_seconds("k", bytes).has_value());
}

TEST(ShardedVault, ExtentKeysCannotCollideAcrossBlobNames) {
  // "k" extent 12 vs "k1" extent 2: a naive "k" + index scheme would
  // collide ("k12"); the separator keeps them distinct.
  EXPECT_NE(ShardedVault::extent_key("k", 12), ShardedVault::extent_key("k1", 2));
}

TEST(ShardedVault, ConcurrentPutGetRemoveAreLinearizable) {
  ShardedVault vault(small_config({0, 1, 2, 3}, 64));
  constexpr int kThreads = 8;
  constexpr int kOps = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&vault, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "k" + std::to_string(t % 4);
        const auto blob = pattern_blob(64 * 3 + 7, static_cast<unsigned>(t));
        vault.put(key, blob);
        const auto back = vault.get(key);
        // Another thread may have replaced it, but never torn it: the
        // extents of one get() all come from the same put().
        if (back.has_value()) {
          ASSERT_EQ(back->size(), blob.size());
          const auto first = (*back)[0];
          bool consistent = false;
          for (int w = 0; w < kThreads; ++w) {
            if (first == pattern_blob(1, static_cast<unsigned>(w))[0] &&
                *back == pattern_blob(64 * 3 + 7, static_cast<unsigned>(w))) {
              consistent = true;
              break;
            }
          }
          ASSERT_TRUE(consistent) << "torn read";
        }
        if (i % 10 == 9) vault.remove(key);
      }
    });
  }
  for (auto& th : threads) th.join();
  vault.clear();
  EXPECT_EQ(vault.bytes_in_use(), 0u);
}

}  // namespace
}  // namespace skt::storage
