#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/interval.hpp"

namespace skt::model {
namespace {

TEST(Interval, YoungFormula) {
  EXPECT_DOUBLE_EQ(young_interval(8.0, 3600.0), std::sqrt(2.0 * 8.0 * 3600.0));
  EXPECT_THROW((void)young_interval(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)young_interval(1.0, -1.0), std::invalid_argument);
}

TEST(Interval, DalyRefinesYoung) {
  const double c = 16.0;
  const double m = 4.0 * 3600.0;
  const double y = young_interval(c, m);
  const double d = daly_interval(c, m);
  // Daly's correction is small for C << M and shifts the optimum by ~C.
  EXPECT_NEAR(d, y, 0.05 * y + c);
  // Degenerate regime: very long checkpoints clamp to the MTBF.
  EXPECT_DOUBLE_EQ(daly_interval(10.0 * m, m), m);
}

TEST(Interval, ExpectedRuntimeBasicShape) {
  const double work = 10 * 3600.0;
  const double c = 16.0;
  const double r = 120.0;
  const double m = 6 * 3600.0;
  // Too-frequent checkpoints pay overhead; too-rare ones pay rework: the
  // curve is U-shaped around the analytic optimum.
  const double opt = optimal_interval_numeric(work, c, r, m);
  const double at_opt = expected_runtime(work, opt, c, r, m);
  EXPECT_GT(expected_runtime(work, opt / 8, c, r, m), at_opt);
  EXPECT_GT(expected_runtime(work, opt * 8, c, r, m), at_opt);
  // The whole curve dominates the failure-free lower bound.
  EXPECT_GT(at_opt, work);
}

TEST(Interval, NumericOptimumMatchesDaly) {
  for (const double c : {2.0, 16.0, 60.0}) {
    for (const double m : {1800.0, 3600.0 * 6, 3600.0 * 24}) {
      const double numeric = optimal_interval_numeric(1e6, c, 100.0, m);
      const double daly = daly_interval(c, m);
      EXPECT_NEAR(numeric, daly, 0.15 * daly + c) << "C=" << c << " M=" << m;
    }
  }
}

TEST(Interval, SimulationIsDeterministicPerSeed) {
  const SimulatedRun a = simulate_run(3600, 300, 10, 60, 1800, 42);
  const SimulatedRun b = simulate_run(3600, 300, 10, 60, 1800, 42);
  EXPECT_DOUBLE_EQ(a.completion_s, b.completion_s);
  EXPECT_EQ(a.failures, b.failures);
  const SimulatedRun c = simulate_run(3600, 300, 10, 60, 1800, 43);
  EXPECT_NE(a.completion_s, c.completion_s);
}

TEST(Interval, NoFailuresMeansPureOverhead) {
  // Enormous MTBF: completion = work + (#checkpoints) * cost.
  const SimulatedRun run = simulate_run(1000.0, 100.0, 5.0, 60.0, 1e12, 7);
  EXPECT_EQ(run.failures, 0);
  EXPECT_EQ(run.checkpoints, 9);  // the final segment commits nothing
  EXPECT_NEAR(run.completion_s, 1000.0 + 9 * 5.0, 1e-9);
}

TEST(Interval, SimulationMeanTracksDalyExpectation) {
  const double work = 4000.0;
  const double c = 10.0;
  const double r = 30.0;
  const double m = 900.0;
  for (const double tau : {120.0, 300.0, 1200.0}) {
    const double analytic = expected_runtime(work, tau, c, r, m);
    const double simulated = simulate_mean(work, tau, c, r, m, 400);
    // Daly's model double-counts slightly differently than the event
    // simulation (segment redo vs partial rework); 20% agreement over a
    // 3x interval range is the meaningful check.
    EXPECT_NEAR(simulated / analytic, 1.0, 0.2) << "tau=" << tau;
  }
}

TEST(Interval, SimulatedOptimumNearAnalyticOptimum) {
  const double work = 4000.0;
  const double c = 10.0;
  const double r = 30.0;
  const double m = 900.0;
  const double daly = daly_interval(c, m);
  // Sweep intervals; the best simulated interval should bracket Daly's.
  double best_tau = 0.0;
  double best = 1e300;
  for (double tau = 40.0; tau <= 1600.0; tau *= 1.5) {
    const double mean = simulate_mean(work, tau, c, r, m, 300);
    if (mean < best) {
      best = mean;
      best_tau = tau;
    }
  }
  EXPECT_GT(best_tau, daly / 3.0);
  EXPECT_LT(best_tau, daly * 3.0);
}

}  // namespace
}  // namespace skt::model
