// Tests for the paper's extension points: dual-parity (RAID-6-style)
// group encoding tolerating TWO node losses per group, and the multi-level
// checkpoint framework that backs the in-memory level with a disk level.
#include <gtest/gtest.h>

#include <cstring>

#include "ckpt/multilevel.hpp"
#include "encoding/dual_parity.hpp"
#include "mpi/launcher.hpp"
#include "storage/device.hpp"
#include "storage/snapshot_vault.hpp"
#include "ckpt_harness.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace skt {
namespace {

using skt::testing::MiniCluster;

// ------------------------------------------------------- dual parity ---

void fill_member_data(std::span<std::byte> data, int rank, std::uint64_t seed) {
  util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(rank) * 1315423911ull);
  for (std::size_t i = 0; i + 8 <= data.size(); i += 8) {
    const std::uint64_t v = rng.next();
    std::memcpy(data.data() + i, &v, 8);
  }
}

TEST(DualParity, LayoutInvariants) {
  const enc::DualParityGroupCodec codec(1000, 6);
  EXPECT_EQ(codec.padded_bytes(), codec.stripe_bytes() * 4);
  EXPECT_EQ(codec.parity_bytes(), codec.stripe_bytes() * 2);
  for (int f = 0; f < 6; ++f) {
    int contributors = 0;
    for (int p = 0; p < 6; ++p) {
      if (codec.contributes(p, f)) {
        ++contributors;
        // stripe and contributor indices are dense and in range
        EXPECT_LT(codec.stripe_index(p, f), 4u);
        EXPECT_GE(codec.contributor_index(p, f), 0);
        EXPECT_LT(codec.contributor_index(p, f), 4);
      }
    }
    EXPECT_EQ(contributors, 4);  // N - 2
    EXPECT_FALSE(codec.contributes(f, f));
    EXPECT_FALSE(codec.contributes((f + 1) % 6, f));
  }
  // Every member fills each of its N-2 stripe slots exactly once.
  for (int p = 0; p < 6; ++p) {
    std::vector<bool> used(4, false);
    for (int f = 0; f < 6; ++f) {
      if (!codec.contributes(p, f)) continue;
      const std::size_t idx = codec.stripe_index(p, f);
      EXPECT_FALSE(used[idx]);
      used[idx] = true;
    }
    for (bool u : used) EXPECT_TRUE(u);
  }
  EXPECT_THROW(enc::DualParityGroupCodec(64, 3), std::invalid_argument);
}

class DualParityErasures : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DualParityErasures, AnyPairOfLossesRecovers) {
  const auto [group_size, victim_a, victim_b] = GetParam();
  const std::size_t data_bytes = 1111;  // deliberately unaligned
  MiniCluster mc(group_size, 0);
  const auto result = mc.run(group_size, [&, ga = victim_a, gb = victim_b](mpi::Comm& world) {
    const enc::DualParityGroupCodec codec(data_bytes, world.size());
    std::vector<std::byte> data(codec.padded_bytes(), std::byte{0});
    std::vector<std::byte> parity(codec.parity_bytes());
    fill_member_data(data, world.rank(), 42);
    const auto golden_data = data;

    codec.encode(world, data, parity);
    const auto golden_parity = parity;
    ASSERT_TRUE(codec.verify(world, data, parity));

    std::vector<int> failed{ga};
    if (gb >= 0) failed.push_back(gb);
    if (std::find(failed.begin(), failed.end(), world.rank()) != failed.end()) {
      std::fill(data.begin(), data.end(), std::byte{0xEE});
      std::fill(parity.begin(), parity.end(), std::byte{0xEE});
    }
    codec.rebuild(world, failed, data, parity);

    EXPECT_EQ(data, golden_data) << "rank " << world.rank();
    EXPECT_EQ(parity, golden_parity) << "rank " << world.rank();
    EXPECT_TRUE(codec.verify(world, data, parity));
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, DualParityErasures,
    ::testing::Values(std::make_tuple(4, 1, -1),   // single loss
                      std::make_tuple(4, 0, 1),    // adjacent pair (P+Q owners overlap)
                      std::make_tuple(4, 0, 2),
                      std::make_tuple(4, 1, 3),    // wrap-around adjacency
                      std::make_tuple(5, 0, 4),
                      std::make_tuple(6, 2, 5),
                      std::make_tuple(6, 0, 3)));

TEST(DualParity, ExhaustivePairsGroupOf5) {
  const int n = 5;
  const std::size_t data_bytes = 640;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      MiniCluster mc(n, 0);
      const auto result = mc.run(n, [&, a = a, b = b](mpi::Comm& world) {
        const enc::DualParityGroupCodec codec(data_bytes, n);
        std::vector<std::byte> data(codec.padded_bytes());
        std::vector<std::byte> parity(codec.parity_bytes());
        fill_member_data(data, world.rank(), 7);
        const auto golden = data;
        codec.encode(world, data, parity);
        if (world.rank() == a || world.rank() == b) {
          std::fill(data.begin(), data.end(), std::byte{0});
          std::fill(parity.begin(), parity.end(), std::byte{0});
        }
        const std::vector<int> failed{a, b};
        codec.rebuild(world, failed, data, parity);
        ASSERT_EQ(data, golden);
        ASSERT_TRUE(codec.verify(world, data, parity));
      });
      ASSERT_TRUE(result.completed) << "pair " << a << "," << b << ": "
                                    << result.abort_reason;
    }
  }
}

TEST(DualParity, ThreeLossesRejected) {
  MiniCluster mc(5, 0);
  const auto result = mc.run(5, [&](mpi::Comm& world) {
    const enc::DualParityGroupCodec codec(256, 5);
    std::vector<std::byte> data(codec.padded_bytes());
    std::vector<std::byte> parity(codec.parity_bytes());
    const std::vector<int> failed{0, 1, 2};
    EXPECT_THROW(codec.rebuild(world, failed, data, parity), std::invalid_argument);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

// -------------------------------------------------------- multi-level ---

ckpt::MultiLevelCheckpoint::Params ml_params(storage::SnapshotVault* vault,
                                             std::size_t data_bytes = 2048) {
  ckpt::MultiLevelCheckpoint::Params params;
  params.key_prefix = "ml";
  params.data_bytes = data_bytes;
  params.user_bytes = 16;
  params.flush_every = 2;
  params.vault = vault;
  params.device = storage::pfs_profile();
  return params;
}

TEST(MultiLevel, FlushesEveryKCommitsAndKeepsTwoGenerations) {
  MiniCluster mc(4, 0);
  storage::SnapshotVault vault;
  const auto result = mc.run(4, [&](mpi::Comm& world) {
    ckpt::MultiLevelCheckpoint protocol(ml_params(&vault));
    ckpt::CommCtx ctx{world, world};
    EXPECT_FALSE(protocol.open(ctx));
    for (int i = 0; i < 6; ++i) protocol.commit(ctx);
    EXPECT_EQ(protocol.flushes(), 3);        // commits 2, 4, 6
    EXPECT_EQ(protocol.disk_epoch(), 6u);
    EXPECT_EQ(protocol.committed_epoch(), 6u);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
  // Two generations retained per rank (epochs 4 and 6) plus manifests.
  EXPECT_TRUE(vault.exists("ml.r0.L2.img.e6"));
  EXPECT_TRUE(vault.exists("ml.r0.L2.img.e4"));
  EXPECT_FALSE(vault.exists("ml.r0.L2.img.e2"));  // GC'd
}

TEST(MultiLevel, SingleFailureUsesFastInMemoryLevel) {
  MiniCluster mc(4, 2);
  storage::SnapshotVault vault;
  sim::FailureInjector injector;
  injector.add_rule({.point = "app.work", .world_rank = 1, .hit = 3, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 2});
  bool used_disk = true;
  const auto result = launcher.run(4, [&](mpi::Comm& world) {
    ckpt::MultiLevelCheckpoint protocol(ml_params(&vault));
    ckpt::CommCtx ctx{world, world};
    const bool restored = protocol.open(ctx);
    auto* iter = reinterpret_cast<std::uint64_t*>(protocol.user_state().data());
    if (restored) {
      protocol.restore(ctx);
      if (world.rank() == 0) used_disk = protocol.last_restore_used_disk();
    } else {
      *iter = 0;
      skt::testing::fill_pattern(protocol.data(), 5, world.rank(), 0);
    }
    while (*iter < 4) {
      world.failpoint("app.work");
      const std::uint64_t next = *iter + 1;
      skt::testing::fill_pattern(protocol.data(), 5, world.rank(), next);
      *iter = next;
      protocol.commit(ctx);
    }
    if (!skt::testing::matches_pattern(protocol.data(), 5, world.rank(), 4, 0.0)) {
      throw std::runtime_error("final data mismatch");
    }
  });
  ASSERT_TRUE(result.success) << result.failure;
  EXPECT_FALSE(used_disk);  // level 1 was sufficient for a single loss
}

TEST(MultiLevel, DoubleFailureFallsBackToDiskLevel) {
  // Two members of the SAME group die: the single-erasure in-memory level
  // cannot recover, the disk level can — the composition the paper points
  // at for "a higher degree of fault tolerance".
  MiniCluster mc(4, 4);
  storage::SnapshotVault vault;
  sim::FailureInjector injector;
  // First failure mid-compute; second failure during the restore of the
  // first restart, before the group is re-encoded.
  injector.add_rule({.point = "app.work", .world_rank = 1, .hit = 3, .repeat = false});
  injector.add_rule({.point = "ckpt.restore", .world_rank = 2, .hit = 1, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 4});
  bool used_disk = false;
  std::uint64_t restored_epoch = 0;
  const auto result = launcher.run(4, [&](mpi::Comm& world) {
    ckpt::MultiLevelCheckpoint protocol(ml_params(&vault));
    ckpt::CommCtx ctx{world, world};
    const bool restored = protocol.open(ctx);
    auto* iter = reinterpret_cast<std::uint64_t*>(protocol.user_state().data());
    if (restored) {
      const ckpt::RestoreStats rs = protocol.restore(ctx);
      if (world.rank() == 0 && protocol.last_restore_used_disk()) {
        used_disk = true;
        restored_epoch = rs.epoch;
      }
      if (!skt::testing::matches_pattern(protocol.data(), 5, world.rank(), *iter, 0.0)) {
        throw std::runtime_error("restored data mismatch at iteration " +
                                 std::to_string(*iter));
      }
    } else {
      *iter = 0;
      skt::testing::fill_pattern(protocol.data(), 5, world.rank(), 0);
    }
    while (*iter < 5) {
      world.failpoint("app.work");
      const std::uint64_t next = *iter + 1;
      skt::testing::fill_pattern(protocol.data(), 5, world.rank(), next);
      *iter = next;
      protocol.commit(ctx);
    }
  });
  ASSERT_TRUE(result.success) << result.failure;
  EXPECT_TRUE(used_disk);
  EXPECT_GE(restored_epoch, 2u);  // a flushed generation, not a fresh start
}

TEST(MultiLevel, RejectsBadConfigs) {
  storage::SnapshotVault vault;
  auto params = ml_params(&vault);
  params.vault = nullptr;
  EXPECT_THROW(ckpt::MultiLevelCheckpoint{params}, std::invalid_argument);
  params = ml_params(&vault);
  params.level1 = ckpt::Strategy::kBlcr;
  EXPECT_THROW(ckpt::MultiLevelCheckpoint{params}, std::invalid_argument);
}

}  // namespace
}  // namespace skt
