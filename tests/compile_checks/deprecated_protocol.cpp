// Compile-fail guard for the Session::protocol() -> unsafe_protocol()
// rename: this translation unit calls the deprecated spelling and is built
// with -Werror=deprecated-declarations, so it MUST fail to compile. ctest
// runs the build of this target with WILL_FAIL — a future change that
// silently un-deprecates (or removes the attribute from) protocol() turns
// this into a passing compile and fails the suite.
//
// The file is NOT part of any normal build (EXCLUDE_FROM_ALL); it only
// compiles when the guard test drives it.
#include "ckpt/session.hpp"

namespace skt::ckpt {

CheckpointProtocol& touch_deprecated_accessor(Session& session) {
  return session.protocol();  // deprecated: must trip -Werror
}

}  // namespace skt::ckpt
