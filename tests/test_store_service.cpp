// StoreService contract: tenant registration, quota/admission control,
// cross-tenant isolation under failure, fair-share commit dispatch, and
// teardown with tenants still holding leases.
//
// The isolation and fair-share scenarios drive the service the way jobs
// do — through ckpt::Session over simulated clusters — so they cover the
// whole stack: namespaced keys, owner-tagged segments, lease lifetime
// tied to Session teardown, and the commit turnstile under real
// collective commit traffic from concurrent jobs.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "ckpt_harness.hpp"
#include "mpi/launcher.hpp"
#include "testing.hpp"

namespace skt::ckpt {
namespace {

using skt::testing::CkptAppConfig;
using skt::testing::MiniCluster;
using skt::testing::checkpointed_app;

/// FNV-1a over every (key, bytes) pair `owner` holds anywhere in the
/// cluster. segments_of() is key-ordered per node and nodes are visited in
/// id order, so equal content ⇒ equal digest.
std::uint64_t owner_digest(sim::Cluster& cluster, const std::string& owner,
                           std::size_t* segment_count = nullptr) {
  std::uint64_t h = 1469598103934665603ull;
  std::size_t count = 0;
  for (int n = 0; n < cluster.total_nodes(); ++n) {
    for (const auto& [key, seg] : cluster.node(n).store().segments_of(owner)) {
      ++count;
      for (const char c : key) {
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      }
      for (const std::byte b : seg->bytes()) {
        h = (h ^ std::to_integer<unsigned char>(b)) * 1099511628211ull;
      }
    }
  }
  if (segment_count != nullptr) *segment_count = count;
  return h;
}

TEST(StoreService, TenantRegistrationValidation) {
  StoreService service;
  EXPECT_EQ(service.tenant_count(), 0);
  service.register_tenant({.name = "hpl-a", .quota_bytes = 1 << 20});
  EXPECT_TRUE(service.has_tenant("hpl-a"));
  EXPECT_EQ(service.tenant_count(), 1);
  EXPECT_EQ(StoreService::namespace_prefix("hpl-a"), "ns/hpl-a/");

  const auto field_of = [&](const TenantConfig& config) -> std::string {
    try {
      service.register_tenant(config);
    } catch (const ConfigError& e) {
      return e.field();
    }
    return "<no error>";
  };
  EXPECT_EQ(field_of({.name = ""}), "tenant");
  EXPECT_EQ(field_of({.name = "hpl-a"}), "tenant");  // duplicate

  try {
    StoreService bad({.max_concurrent_commits = 0});
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.field(), "max_concurrent_commits");
  }
}

// Whole-job leases: the first rank reserves per_rank × expected_ranks
// atomically, later ranks join for free, and release() gives the bytes
// back rank by rank (remainder freed by the last one out).
TEST(StoreService, AdmitReserveJoinRelease) {
  StoreService service({.capacity_bytes = 1 << 20});
  service.register_tenant({.name = "a", .quota_bytes = 10000});

  const std::uint64_t lease = service.admit("a", 3000, 2);
  EXPECT_EQ(service.tenant_bytes("a"), 6000u);
  EXPECT_EQ(service.bytes_in_use(), 6000u);
  const std::uint64_t joined = service.admit("a", 3000, 2);  // rank 2 joins
  EXPECT_EQ(joined, lease);
  EXPECT_EQ(service.bytes_in_use(), 6000u);  // no double reservation
  EXPECT_EQ(service.tenant_stats("a").open_sessions, 2);

  service.release(lease);
  EXPECT_EQ(service.bytes_in_use(), 3000u);
  service.release(joined);
  EXPECT_EQ(service.bytes_in_use(), 0u);
  EXPECT_EQ(service.tenant_stats("a").open_sessions, 0);

  // Over the tenant quota: loud, immediate, nothing reserved.
  try {
    (void)service.admit("a", 6000, 2);
    FAIL() << "expected QuotaExceeded";
  } catch (const QuotaExceeded& e) {
    EXPECT_EQ(e.tenant(), "a");
    EXPECT_EQ(e.requested_bytes(), 12000u);
    EXPECT_EQ(e.limit_bytes(), 10000u);
  }
  EXPECT_EQ(service.bytes_in_use(), 0u);
  EXPECT_THROW((void)service.admit("ghost", 1, 1), ConfigError);  // unknown tenant
}

// Session::open() admits BEFORE the protocol allocates: an over-quota
// tenant gets QuotaExceeded on every rank and leaves zero segments (and
// zero reserved bytes) behind.
TEST(StoreService, OverQuotaOpenRejectedBeforeAllocation) {
  StoreService service;
  service.register_tenant({.name = "q", .quota_bytes = 1024});  // < any estimate
  MiniCluster mc(2, 0);
  std::atomic<int> rejected{0};
  const auto result = mc.run(2, [&](mpi::Comm& world) {
    Session session = SessionBuilder{}
                          .strategy(Strategy::kSelf)
                          .key_prefix("app")
                          .data_bytes(4096)
                          .group_size(2)
                          .service(&service)
                          .tenant("q")
                          .build(world);
    try {
      (void)session.open();
    } catch (const QuotaExceeded& e) {
      EXPECT_EQ(e.tenant(), "q");
      rejected.fetch_add(1);
    }
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(rejected.load(), 2);
  EXPECT_EQ(service.bytes_in_use(), 0u);
  std::size_t segments = 0;
  (void)owner_digest(mc.cluster, StoreService::namespace_prefix("q"), &segments);
  EXPECT_EQ(segments, 0u) << "rejected open must not allocate segments";
}

// Two tenants on one cluster + one service: tenant A's node kill, spare
// replacement, and group rebuild must leave tenant B's stripes
// bit-identical — the owner-tag isolation the namespaces promise.
TEST(StoreService, TenantKillAndRestoreLeavesOtherTenantBitIdentical) {
  MiniCluster mc(8, 2);
  StoreService service;
  service.register_tenant({.name = "a"});
  service.register_tenant({.name = "b"});

  CkptAppConfig app_b;
  app_b.seed = 7;
  app_b.iterations = 3;
  app_b.service = &service;
  app_b.tenant = "b";
  {
    // Tenant B lives on nodes 4..7; its segments outlive the job (SHM).
    mpi::JobLauncher launcher(mc.cluster, nullptr, {.max_restarts = 0, .first_node = 4});
    const auto run_b =
        launcher.run(4, [&](mpi::Comm& world) { checkpointed_app(world, app_b); });
    ASSERT_TRUE(run_b.success) << run_b.failure;
  }
  std::size_t b_segments = 0;
  const std::uint64_t b_before =
      owner_digest(mc.cluster, StoreService::namespace_prefix("b"), &b_segments);
  ASSERT_GT(b_segments, 0u);

  // Tenant A on nodes 0..3 loses a node mid-flush and recovers from the
  // group's checksums (replacement node from the shared spare pool).
  CkptAppConfig app_a;
  app_a.seed = 11;
  app_a.iterations = 4;
  app_a.service = &service;
  app_a.tenant = "a";
  sim::FailureInjector injector;
  injector.add_rule({.point = "ckpt.mid_flush", .world_rank = 1, .hit = 2, .repeat = false});
  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 2, .first_node = 0});
  const auto run_a =
      launcher.run(4, [&](mpi::Comm& world) { checkpointed_app(world, app_a); });
  ASSERT_TRUE(run_a.success) << run_a.failure;
  EXPECT_GE(run_a.restarts, 1);

  std::size_t b_segments_after = 0;
  const std::uint64_t b_after =
      owner_digest(mc.cluster, StoreService::namespace_prefix("b"), &b_segments_after);
  EXPECT_EQ(b_segments_after, b_segments);
  EXPECT_EQ(b_after, b_before) << "tenant A's recovery disturbed tenant B's stripes";
  EXPECT_EQ(service.bytes_in_use(), 0u);  // all leases released at teardown
}

// Three jobs hammer commit_async through one width-1 turnstile: everyone
// finishes (no cross-tenant deadlock), bytes balance, and the per-tenant
// commit-slowdown spread stays within the fairness gate.
TEST(StoreService, FairShareDispatchAcrossConcurrentAsyncTenants) {
  StoreService service({.max_concurrent_commits = 1});
  const std::array<const char*, 3> tenants = {"t0", "t1", "t2"};
  for (const char* name : tenants) service.register_tenant({.name = name});

  constexpr int kIterations = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> jobs;
  std::vector<std::unique_ptr<MiniCluster>> clusters;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    clusters.push_back(std::make_unique<MiniCluster>(2, 0));
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    jobs.emplace_back([&, i] {
      CkptAppConfig app;
      app.group_size = 2;
      app.data_bytes = 8192;
      app.iterations = kIterations;
      app.seed = 100 + i;
      app.mode = CommitMode::kAsync;
      app.service = &service;
      app.tenant = tenants[i];
      const auto result = clusters[i]->run(
          2, [&](mpi::Comm& world) { checkpointed_app(world, app); });
      if (!result.completed) failures.fetch_add(1);
    });
  }
  for (std::thread& t : jobs) t.join();
  ASSERT_EQ(failures.load(), 0);

  for (const char* name : tenants) {
    const TenantStats stats = service.tenant_stats(name);
    EXPECT_EQ(stats.commits, static_cast<std::uint64_t>(kIterations) * 2)
        << name << ": every rank-epoch must pass the gate exactly once";
    EXPECT_GT(stats.committed_bytes, 0u);
    EXPECT_EQ(stats.open_sessions, 0);
  }
  EXPECT_GE(service.fairness_ratio(), 0.5);
  EXPECT_EQ(service.bytes_in_use(), 0u);
}

// Teardown with tenants still holding leases and an open queued: the
// destructor fails the queued admission loudly (AdmissionTimeout) and
// waits the blocked thread out of the service before dying — it must
// neither hang on the unreleased lease nor free state under the waiter.
TEST(StoreService, DestructorFailsQueuedAdmissionsAndDrainsWaiters) {
  auto service = std::make_unique<StoreService>(StoreServiceConfig{
      .capacity_bytes = 1 << 20, .admission_timeout_s = 60.0});
  service->register_tenant({.name = "a"});
  service->register_tenant({.name = "b"});
  (void)service->admit("a", 1 << 20, 1);  // fills capacity; never released

  std::atomic<bool> timed_out{false};
  std::atomic<bool> wrong_error{false};
  std::thread queued([&] {
    try {
      (void)service->admit("b", 1 << 20, 1);  // queues behind a's lease
      wrong_error = true;
    } catch (const AdmissionTimeout&) {
      timed_out = true;
    } catch (...) {
      wrong_error = true;
    }
  });
  // Let the open reach the admission queue, then tear the service down.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.reset();
  queued.join();
  EXPECT_TRUE(timed_out.load());
  EXPECT_FALSE(wrong_error.load());
}

}  // namespace
}  // namespace skt::ckpt
