// Unit tests for the HPL substrate's local pieces: BLAS kernels against
// naive references and block-cyclic index arithmetic properties.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hpl/blas.hpp"
#include "hpl/block_cyclic.hpp"
#include "util/rng.hpp"

namespace skt::hpl {
namespace {

std::vector<double> random_matrix(std::int64_t m, std::int64_t n, std::uint64_t seed) {
  std::vector<double> a(static_cast<std::size_t>(m * n));
  util::Xoshiro256 rng(seed);
  for (auto& v : a) v = rng.next_centered();
  return a;
}

TEST(Blas, GemmMinusMatchesNaive) {
  const std::int64_t m = 37, n = 29, k = 23;
  const auto a = random_matrix(m, k, 1);
  const auto b = random_matrix(k, n, 2);
  auto c = random_matrix(m, n, 3);
  auto ref = c;

  blas::gemm_minus(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += a[static_cast<std::size_t>(i * k + kk)] * b[static_cast<std::size_t>(kk * n + j)];
      }
      ref[static_cast<std::size_t>(i * n + j)] -= acc;
    }
  }
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-12);
}

TEST(Blas, GemmMinusStridedC) {
  // C wider than n exercises the ldc path.
  const std::int64_t m = 8, n = 5, k = 6, ldc = 11;
  const auto a = random_matrix(m, k, 4);
  const auto b = random_matrix(k, n, 5);
  auto c = random_matrix(m, ldc, 6);
  const auto before = c;
  blas::gemm_minus(m, n, k, a.data(), k, b.data(), n, c.data(), ldc);
  // Columns n..ldc untouched.
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = n; j < ldc; ++j) {
      EXPECT_EQ(c[static_cast<std::size_t>(i * ldc + j)],
                before[static_cast<std::size_t>(i * ldc + j)]);
    }
  }
}

TEST(Blas, TrsmLowerUnitSolves) {
  const std::int64_t m = 16, n = 9;
  auto l = random_matrix(m, m, 7);
  // Make it unit lower triangular (upper part is ignored by the kernel but
  // zero it in the reference multiply).
  for (std::int64_t i = 0; i < m; ++i) {
    l[static_cast<std::size_t>(i * m + i)] = 1.0;
    for (std::int64_t j = i + 1; j < m; ++j) l[static_cast<std::size_t>(i * m + j)] = 0.0;
  }
  const auto x_true = random_matrix(m, n, 8);
  // b = L * x
  std::vector<double> b(static_cast<std::size_t>(m * n), 0.0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t kk = 0; kk <= i; ++kk) {
        acc += l[static_cast<std::size_t>(i * m + kk)] * x_true[static_cast<std::size_t>(kk * n + j)];
      }
      b[static_cast<std::size_t>(i * n + j)] = acc;
    }
  }
  blas::trsm_lower_unit(m, n, l.data(), m, b.data(), n);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(b[i], x_true[i], 1e-10);
}

TEST(Blas, TrsvUpperSolves) {
  const std::int64_t m = 12;
  auto u = random_matrix(m, m, 9);
  for (std::int64_t i = 0; i < m; ++i) {
    u[static_cast<std::size_t>(i * m + i)] += 4.0;  // well-conditioned diagonal
    for (std::int64_t j = 0; j < i; ++j) u[static_cast<std::size_t>(i * m + j)] = 0.0;
  }
  const auto x_true = random_matrix(m, 1, 10);
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = i; j < m; ++j) {
      y[static_cast<std::size_t>(i)] +=
          u[static_cast<std::size_t>(i * m + j)] * x_true[static_cast<std::size_t>(j)];
    }
  }
  blas::trsv_upper(m, u.data(), m, y.data());
  for (std::int64_t i = 0; i < m; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 1e-10);
  }
}

TEST(Blas, GemvIamaxSwapScal) {
  const std::int64_t m = 6, n = 4;
  const auto a = random_matrix(m, n, 11);
  const auto x = random_matrix(n, 1, 12);
  std::vector<double> y(static_cast<std::size_t>(m), 1.0);
  auto ref = y;
  blas::gemv_minus(m, n, a.data(), n, x.data(), y.data());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      ref[static_cast<std::size_t>(i)] -=
          a[static_cast<std::size_t>(i * n + j)] * x[static_cast<std::size_t>(j)];
    }
  }
  for (std::int64_t i = 0; i < m; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)], 1e-12);
  }

  const double v[] = {0.1, -3.5, 2.0, 3.5};
  EXPECT_EQ(blas::iamax(4, v), 1);  // first of the tied |3.5|
  EXPECT_EQ(blas::iamax(0, v), -1);

  double r1[] = {1, 2, 3};
  double r2[] = {4, 5, 6};
  blas::swap_rows(3, r1, r2);
  EXPECT_EQ(r1[0], 4);
  EXPECT_EQ(r2[2], 3);

  double s[] = {2, 4};
  blas::scal(2, 0.5, s);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], 2);
}

// ----------------------------------------------------------- block-cyclic

class BlockCyclicProps
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, int>> {};

TEST_P(BlockCyclicProps, RoundTripAndCounts) {
  const auto [n, nb, nprocs] = GetParam();
  const BlockCyclicDim dim(n, nb, nprocs);

  // Every global index maps to exactly one (owner, local) and back.
  std::int64_t total = 0;
  for (int p = 0; p < nprocs; ++p) total += dim.count(p);
  EXPECT_EQ(total, n);

  for (std::int64_t g = 0; g < n; ++g) {
    const int p = dim.owner(g);
    const std::int64_t l = dim.local(g);
    EXPECT_LT(l, dim.count(p));
    EXPECT_EQ(dim.global(p, l), g);
  }
  // local -> global is strictly increasing per process.
  for (int p = 0; p < nprocs; ++p) {
    for (std::int64_t l = 1; l < dim.count(p); ++l) {
      EXPECT_GT(dim.global(p, l), dim.global(p, l - 1));
    }
  }
}

TEST_P(BlockCyclicProps, LowerBoundConsistent) {
  const auto [n, nb, nprocs] = GetParam();
  const BlockCyclicDim dim(n, nb, nprocs);
  for (int p = 0; p < nprocs; ++p) {
    for (std::int64_t g = 0; g <= n; ++g) {
      const std::int64_t lb = dim.local_lower_bound(p, g);
      // Reference: first local index whose global is >= g.
      std::int64_t ref = dim.count(p);
      for (std::int64_t l = 0; l < dim.count(p); ++l) {
        if (dim.global(p, l) >= g) {
          ref = l;
          break;
        }
      }
      ASSERT_EQ(lb, ref) << "n=" << n << " nb=" << nb << " P=" << nprocs << " p=" << p
                         << " g=" << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BlockCyclicProps,
                         ::testing::Values(std::make_tuple(64, 8, 4),
                                           std::make_tuple(100, 7, 3),
                                           std::make_tuple(13, 5, 2),
                                           std::make_tuple(1, 4, 3),
                                           std::make_tuple(0, 4, 2),
                                           std::make_tuple(31, 32, 2),
                                           std::make_tuple(96, 16, 1)));

TEST(BlockCyclic, RejectsBadParameters) {
  EXPECT_THROW(BlockCyclicDim(-1, 4, 2), std::invalid_argument);
  EXPECT_THROW(BlockCyclicDim(4, 0, 2), std::invalid_argument);
  EXPECT_THROW(BlockCyclicDim(4, 4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace skt::hpl
