#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "mpi/mailbox.hpp"

namespace skt::mpi {
namespace {

Message make(int src, Tag tag, std::uint64_t comm, std::uint8_t payload) {
  Message m;
  m.src_world = src;
  m.tag = tag;
  m.comm_id = comm;
  m.payload = {static_cast<std::byte>(payload)};
  return m;
}

TEST(Mailbox, MatchesOnSourceTagAndComm) {
  Mailbox box;
  std::atomic<bool> aborted{false};
  box.push(make(1, 5, 0, 10));
  box.push(make(2, 5, 0, 20));
  box.push(make(1, 6, 0, 30));
  box.push(make(1, 5, 9, 40));

  const auto m = box.pop(1, 5, 9, aborted);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], std::byte{40});
  EXPECT_EQ(box.pending(), 3u);
}

TEST(Mailbox, FifoWithinMatchClass) {
  Mailbox box;
  std::atomic<bool> aborted{false};
  box.push(make(3, 7, 0, 1));
  box.push(make(3, 7, 0, 2));
  box.push(make(3, 7, 0, 3));
  EXPECT_EQ(box.pop(3, 7, 0, aborted)->payload[0], std::byte{1});
  EXPECT_EQ(box.pop(3, 7, 0, aborted)->payload[0], std::byte{2});
  EXPECT_EQ(box.pop(3, 7, 0, aborted)->payload[0], std::byte{3});
}

TEST(Mailbox, BlocksUntilPush) {
  Mailbox box;
  std::atomic<bool> aborted{false};
  std::atomic<bool> got{false};
  std::thread receiver([&] {
    const auto m = box.pop(0, 1, 0, aborted);
    got = m.has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  box.push(make(0, 1, 0, 99));
  receiver.join();
  EXPECT_TRUE(got.load());
}

TEST(Mailbox, AbortWakesBlockedReceiver) {
  Mailbox box;
  std::atomic<bool> aborted{false};
  std::atomic<bool> returned_empty{false};
  std::thread receiver([&] {
    const auto m = box.pop(0, 1, 0, aborted);
    returned_empty = !m.has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  aborted.store(true);
  box.interrupt();
  receiver.join();
  EXPECT_TRUE(returned_empty.load());
}

TEST(Mailbox, AbortedPopStillDrainsMatches) {
  // Abort only matters when no match exists; queued matches deliver.
  Mailbox box;
  std::atomic<bool> aborted{true};
  box.push(make(4, 2, 0, 5));
  const auto m = box.pop(4, 2, 0, aborted);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], std::byte{5});
  EXPECT_FALSE(box.pop(4, 2, 0, aborted).has_value());
}

TEST(Mailbox, ManyProducersOneConsumer) {
  Mailbox box;
  std::atomic<bool> aborted{false};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.push(make(p, 1, 0, static_cast<std::uint8_t>(i & 0xff)));
      }
    });
  }
  // Per-source FIFO must hold even under concurrency.
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      const auto m = box.pop(p, 1, 0, aborted);
      ASSERT_TRUE(m.has_value());
      ASSERT_EQ(m->payload[0], static_cast<std::byte>(i & 0xff)) << "src " << p;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(box.pending(), 0u);
}

}  // namespace
}  // namespace skt::mpi
