// Incremental self-checkpoint: dirty tracking cuts commit cost while the
// recovery matrix stays identical to the plain self-checkpoint.
#include <gtest/gtest.h>

#include <cstring>

#include "ckpt/factory.hpp"
#include "ckpt/incremental.hpp"
#include "ckpt/session.hpp"
#include "mpi/launcher.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace skt::ckpt {
namespace {

using skt::testing::MiniCluster;

void fill_region(std::span<std::byte> data, std::uint64_t seed, int rank, std::uint64_t tag) {
  util::Xoshiro256 rng(seed ^ (static_cast<std::uint64_t>(rank) << 32) ^ tag);
  for (std::size_t i = 0; i + 8 <= data.size(); i += 8) {
    const std::uint64_t v = rng.next();
    std::memcpy(data.data() + i, &v, 8);
  }
}

TEST(Incremental, CleanCommitEncodesNoFamilies) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    IncrementalSelfCheckpoint proto({.key_prefix = "i0", .data_bytes = 4096});
    CommCtx ctx{world, world};
    proto.open(ctx);
    fill_region(proto.data(), 1, world.rank(), 0);
    const CommitStats full = proto.commit(ctx);  // first commit: everything
    EXPECT_GE(full.checkpoint_bytes, proto.data().size());
    EXPECT_EQ(proto.last_encoded_families(), world.size());  // all families dirty

    // No data changes: only the A2 tail stripe is re-encoded.
    const CommitStats clean = proto.commit(ctx);
    EXPECT_LE(proto.last_encoded_families(), 2);
    EXPECT_LT(clean.checkpoint_bytes, full.checkpoint_bytes);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Incremental, DirtyBytesTrackStripeGranularity) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    IncrementalSelfCheckpoint proto({.key_prefix = "i1", .data_bytes = 3000});
    CommCtx ctx{world, world};
    proto.open(ctx);
    fill_region(proto.data(), 2, world.rank(), 0);
    proto.commit(ctx);
    EXPECT_EQ(proto.dirty_bytes(), 0u);

    proto.data()[100] ^= std::byte{1};
    proto.mark_dirty(100, 1);
    EXPECT_GT(proto.dirty_bytes(), 0u);
    EXPECT_LE(proto.dirty_bytes(), 2048u);  // one stripe
    EXPECT_THROW(proto.mark_dirty(2999, 10), std::out_of_range);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Incremental, SparseUpdatesRecoverBitExact) {
  // The crux: after several sparse, properly-marked updates, a node loss
  // must restore the exact data — proving the incremental checksum update
  // D = C xor diff is equivalent to a full re-encode.
  MiniCluster mc(4, 2);
  sim::FailureInjector injector;
  injector.add_rule({.point = "incr.work", .world_rank = 2, .hit = 4, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 2});
  const auto result = launcher.run(4, [&](mpi::Comm& world) {
    IncrementalSelfCheckpoint proto({.key_prefix = "i2", .data_bytes = 8192});
    CommCtx ctx{world, world};
    const bool restored = proto.open(ctx);
    auto* iter = reinterpret_cast<std::uint64_t*>(proto.user_state().data());
    if (restored) {
      proto.restore(ctx);
    } else {
      *iter = 0;
      fill_region(proto.data(), 3, world.rank(), 0);
    }
    while (*iter < 6) {
      world.failpoint("incr.work");
      const std::uint64_t next = *iter + 1;
      // Sparse update: rewrite one 512-byte window per iteration.
      const std::size_t offset = (next * 1337) % (8192 - 512);
      fill_region(proto.data().subspan(offset, 512), 3, world.rank(), next);
      proto.mark_dirty(offset, 512);
      *iter = next;
      proto.commit(ctx);
    }
    // Independent full verification: replay the update schedule into a
    // scratch buffer and compare byte-for-byte.
    std::vector<std::byte> expect(8192);
    fill_region(expect, 3, world.rank(), 0);
    for (std::uint64_t it = 1; it <= 6; ++it) {
      const std::size_t offset = (it * 1337) % (8192 - 512);
      fill_region(std::span<std::byte>(expect).subspan(offset, 512), 3, world.rank(), it);
    }
    if (std::memcmp(expect.data(), proto.data().data(), expect.size()) != 0) {
      throw std::runtime_error("incremental state diverged");
    }
  });
  ASSERT_TRUE(result.success) << result.failure;
  EXPECT_EQ(result.restarts, 1);
}

TEST(Incremental, KillDuringIncrementalFlushRecovers) {
  // CASE 2 with a partially-flushed incremental checkpoint: (work, D)
  // must still restore, exercising the incremental D's correctness.
  MiniCluster mc(4, 2);
  sim::FailureInjector injector;
  injector.add_rule({.point = "ckpt.mid_flush", .world_rank = 1, .hit = 3, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 2});
  const auto result = launcher.run(4, [&](mpi::Comm& world) {
    IncrementalSelfCheckpoint proto({.key_prefix = "i3", .data_bytes = 4096});
    CommCtx ctx{world, world};
    const bool restored = proto.open(ctx);
    auto* iter = reinterpret_cast<std::uint64_t*>(proto.user_state().data());
    if (restored) {
      proto.restore(ctx);
    } else {
      *iter = 0;
      fill_region(proto.data(), 4, world.rank(), 0);
    }
    while (*iter < 5) {
      const std::uint64_t next = *iter + 1;
      fill_region(proto.data().subspan(0, 1024), 4, world.rank(), next);
      proto.mark_dirty(0, 1024);
      *iter = next;
      proto.commit(ctx);
    }
  });
  ASSERT_TRUE(result.success) << result.failure;
}

TEST(Incremental, AsyncSparseUpdatesRecoverBitExact) {
  // The sparse-update crux through the Session async pipeline: dirty
  // stripes are staged, the worker patches D in the background, and a
  // node killed inside the async encode window must still restore
  // bit-exact data. mark_dirty is reached through the unsafe_protocol()
  // escape hatch — dirty tracking is strategy-specific, not Session API.
  MiniCluster mc(4, 2);
  sim::FailureInjector injector;
  injector.add_rule(
      {.point = "ckpt.async_encode_begin", .world_rank = 2, .hit = 4, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 2});
  const auto result = launcher.run(4, [&](mpi::Comm& world) {
    Session session = SessionBuilder{}
                          .strategy(Strategy::kSelfIncremental)
                          .key_prefix("i5")
                          .data_bytes(8192)
                          .mode(CommitMode::kAsync)
                          .build(world);
    auto& proto = dynamic_cast<IncrementalSelfCheckpoint&>(session.unsafe_protocol());
    const bool restored = session.open() == OpenOutcome::kRestored;
    auto* iter = reinterpret_cast<std::uint64_t*>(session.user_state().data());
    if (!restored) {
      *iter = 0;
      fill_region(session.data(), 5, world.rank(), 0);
    }
    while (*iter < 6) {
      const std::uint64_t next = *iter + 1;
      const std::size_t offset = (next * 1337) % (8192 - 512);
      fill_region(session.data().subspan(offset, 512), 5, world.rank(), next);
      proto.mark_dirty(offset, 512);
      *iter = next;
      session.commit_async();
    }
    session.drain();
    std::vector<std::byte> expect(8192);
    fill_region(expect, 5, world.rank(), 0);
    for (std::uint64_t it = 1; it <= 6; ++it) {
      const std::size_t offset = (it * 1337) % (8192 - 512);
      fill_region(std::span<std::byte>(expect).subspan(offset, 512), 5, world.rank(), it);
    }
    if (std::memcmp(expect.data(), session.data().data(), expect.size()) != 0) {
      throw std::runtime_error("incremental async state diverged");
    }
  });
  ASSERT_TRUE(result.success) << result.failure;
  EXPECT_EQ(result.restarts, 1);
}

TEST(Incremental, UnmarkedChangesAreTheContract) {
  // Changing data WITHOUT mark_dirty leaves the checkpoint stale — the
  // documented contract. The next commit must not pick it up. (Group size
  // 4 gives three stripes per rank, so byte 0 sits in a different stripe
  // than the always-dirty A2 tail.)
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    IncrementalSelfCheckpoint proto({.key_prefix = "i4", .data_bytes = 3000});
    CommCtx ctx{world, world};
    proto.open(ctx);
    std::memset(proto.data().data(), 0x11, proto.data().size());
    proto.commit(ctx);

    proto.data()[0] = std::byte{0x99};  // NOT marked
    proto.commit(ctx);
    // The committed B still holds the old byte.
    const auto b = world.store().attach("i4.r" + std::to_string(world.world_rank()) +
                                        ".incr.B");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->bytes()[0], std::byte{0x11});
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Incremental, FactoryBuildsIt) {
  FactoryParams params;
  params.data_bytes = 128;
  const auto proto = make_protocol(Strategy::kSelfIncremental, params);
  EXPECT_EQ(proto->strategy(), Strategy::kSelf);  // reports the self family
  EXPECT_DOUBLE_EQ(available_fraction(Strategy::kSelfIncremental, 16),
                   available_fraction(Strategy::kSelf, 16));
}

}  // namespace
}  // namespace skt::ckpt
