// Minimal JSON reader for test assertions — parses the documents the
// telemetry layer emits (RunReports, Chrome traces, postmortems, monitor
// feed lines) into a navigable tree, throwing std::runtime_error with a
// byte offset on any malformation. Strictness IS the point: these tests
// exist to prove the emitters produce well-formed JSON, so the parser
// accepts RFC 8259 and nothing looser (no trailing commas, no NaN/Inf
// literals, no unquoted keys).
//
// Deliberately test-only: the library side writes JSON (util::JsonWriter)
// but never needs to read it back, so this stays out of src/.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace skt::testing::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) != 0;
  }

  /// Object member access; throws when absent or not an object.
  [[nodiscard]] const Value& at(const std::string& key) const {
    if (kind != Kind::kObject) throw std::runtime_error("json: not an object");
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("json: missing key '" + key + "'");
    return it->second;
  }

  [[nodiscard]] const Value& at(std::size_t index) const {
    if (kind != Kind::kArray) throw std::runtime_error("json: not an array");
    if (index >= array.size()) throw std::runtime_error("json: index out of range");
    return array[index];
  }

  [[nodiscard]] std::size_t size() const {
    return kind == Kind::kArray ? array.size() : object.size();
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return {};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control byte in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Tests only need codepoint preservation for ASCII; encode the
          // rest as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("bad number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad fraction");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return v;
  }
};

/// Parse one document; throws std::runtime_error on malformed input.
inline Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace skt::testing::json
