#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mpi/grid.hpp"
#include "testing.hpp"

namespace skt::mpi {
namespace {

using skt::testing::MiniCluster;

TEST(Comm, PointToPointRoundTrip) {
  MiniCluster mc(2);
  const auto result = mc.run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const std::vector<double> payload{1.5, 2.5, 3.5};
      world.send<double>(1, 7, payload);
      const auto back = world.recv_value<int>(1, 8);
      EXPECT_EQ(back, 99);
    } else {
      std::vector<double> in(3);
      world.recv<double>(0, 7, in);
      EXPECT_EQ(in[2], 3.5);
      world.send_value<int>(0, 8, 99);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Comm, MessagesWithSameTagArriveInOrder) {
  MiniCluster mc(2);
  const auto result = mc.run(2, [](Comm& world) {
    if (world.rank() == 0) {
      for (int i = 0; i < 50; ++i) world.send_value<int>(1, 3, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(world.recv_value<int>(0, 3), i);
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Comm, RecvSizeMismatchAborts) {
  MiniCluster mc(2);
  const auto result = mc.run(2, [](Comm& world) {
    if (world.rank() == 0) {
      world.send_value<int>(1, 1, 5);
    } else {
      std::vector<double> wrong(4);
      world.recv<double>(0, 1, wrong);  // throws logic_error -> job abort
    }
  });
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("mismatch"), std::string::npos);
}

TEST(Comm, BarrierSynchronizesAllRanks) {
  MiniCluster mc(4, 0);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  const auto result = mc.run(4, [&](Comm& world) {
    before.fetch_add(1);
    world.barrier();
    if (before.load() != 4) violated = true;
  });
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(violated.load());
}

TEST(Comm, BcastFromEveryRoot) {
  MiniCluster mc(5, 0);
  const auto result = mc.run(5, [](Comm& world) {
    for (int root = 0; root < world.size(); ++root) {
      std::vector<std::uint64_t> data(17, 0);
      if (world.rank() == root) {
        for (std::size_t i = 0; i < data.size(); ++i) data[i] = 100u * root + i;
      }
      world.bcast<std::uint64_t>(root, data);
      for (std::size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(data[i], 100u * static_cast<unsigned>(root) + i);
      }
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Comm, ReduceSumAndXorAllRoots) {
  MiniCluster mc(6, 0);
  const auto result = mc.run(6, [](Comm& world) {
    const int n = world.size();
    for (int root = 0; root < n; ++root) {
      // SUM over doubles
      std::vector<double> in(8, static_cast<double>(world.rank() + 1));
      std::vector<double> out(8, -1.0);
      world.reduce<double>(root, in, out, Sum{});
      if (world.rank() == root) {
        const double expect = n * (n + 1) / 2.0;
        for (double v : out) ASSERT_DOUBLE_EQ(v, expect);
      }
      // XOR over uint64
      std::vector<std::uint64_t> xin(4, 1ull << world.rank());
      std::vector<std::uint64_t> xout(4, 0);
      world.reduce<std::uint64_t>(root, xin, xout, BXor{});
      if (world.rank() == root) {
        for (auto v : xout) ASSERT_EQ(v, (1ull << n) - 1);
      }
    }
  });
  EXPECT_TRUE(result.completed);
}

TEST(Comm, AllreduceMaxLocAgreesEverywhere) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](Comm& world) {
    // Values 3, 1, 7, 7: max is 7, tie between indices 2 and 3 -> 2 wins.
    const double values[] = {3, 1, 7, 7};
    const ValueLoc mine{values[world.rank()], world.rank()};
    const ValueLoc best = world.allreduce_value<ValueLoc>(mine, MaxLoc{});
    EXPECT_DOUBLE_EQ(best.value, 7.0);
    EXPECT_EQ(best.index, 2);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Comm, GatherScatterAllgather) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](Comm& world) {
    const int me = world.rank();
    const int n = world.size();

    const std::vector<int> mine{me * 10, me * 10 + 1};
    const std::vector<int> gathered = world.gather<int>(1, mine);
    if (me == 1) {
      ASSERT_EQ(gathered.size(), 8u);
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(2 * r)], r * 10);
        EXPECT_EQ(gathered[static_cast<std::size_t>(2 * r + 1)], r * 10 + 1);
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }

    const std::vector<int> all = world.allgather<int>(mine);
    ASSERT_EQ(all.size(), 8u);
    EXPECT_EQ(all[6], 30);

    std::vector<int> chunk(2, -1);
    std::vector<int> root_data;
    if (me == 2) {
      root_data.resize(static_cast<std::size_t>(2 * n));
      std::iota(root_data.begin(), root_data.end(), 0);
    }
    world.scatter<int>(2, root_data, chunk);
    EXPECT_EQ(chunk[0], 2 * me);
    EXPECT_EQ(chunk[1], 2 * me + 1);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Comm, SplitByParity) {
  MiniCluster mc(6, 0);
  const auto result = mc.run(6, [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), world.rank() / 2);
    // Collectives work inside the split comm and don't cross parities.
    const int sum = sub.allreduce_value<int>(world.rank(), Sum{});
    if (world.rank() % 2 == 0) {
      EXPECT_EQ(sum, 0 + 2 + 4);
    } else {
      EXPECT_EQ(sum, 1 + 3 + 5);
    }
    // World rank translation survives the split.
    EXPECT_EQ(sub.translate(0), world.rank() % 2);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Grid, RowColCommunicators) {
  MiniCluster mc(6, 0);
  const auto result = mc.run(6, [](Comm& world) {
    Grid grid(world, 2, 3);
    EXPECT_EQ(grid.prow(), world.rank() / 3);
    EXPECT_EQ(grid.pcol(), world.rank() % 3);
    EXPECT_EQ(grid.row().size(), 3);
    EXPECT_EQ(grid.col().size(), 2);
    EXPECT_EQ(grid.row().rank(), grid.pcol());
    EXPECT_EQ(grid.col().rank(), grid.prow());
    // Row reduce: sum of pcol values within my process row.
    const int sum = grid.row().allreduce_value<int>(grid.pcol(), Sum{});
    EXPECT_EQ(sum, 0 + 1 + 2);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Grid, RejectsBadShape) {
  MiniCluster mc(6, 0);
  const auto result = mc.run(6, [](Comm& world) {
    EXPECT_THROW(Grid(world, 2, 2), std::invalid_argument);
  });
  EXPECT_TRUE(result.completed);
}

TEST(Runtime, NodeFailureAbortsBlockedReceivers) {
  MiniCluster mc(3, 0);
  sim::FailureInjector injector;
  injector.add_rule({.point = "die", .world_rank = 2, .hit = 1, .repeat = false});
  const auto result = mc.run(
      3,
      [](Comm& world) {
        if (world.rank() == 2) {
          world.failpoint("die");  // powers off node 2, throws
          FAIL() << "must not reach";
        } else {
          // Blocks forever waiting on rank 2 -> must be woken by the abort.
          (void)world.recv_value<int>(2, 1);
          FAIL() << "must not receive";
        }
      },
      &injector);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("node 2"), std::string::npos);
  EXPECT_FALSE(mc.cluster.node(2).alive());
  EXPECT_TRUE(mc.cluster.node(0).alive());
}

TEST(Runtime, RefusesLaunchOntoDeadNode) {
  MiniCluster mc(2, 0);
  mc.cluster.power_off(1, "pre-broken");
  const auto result = mc.run(2, [](Comm&) {});
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("launch failed"), std::string::npos);
}

TEST(Runtime, AppExceptionAbortsJobWithReason) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](Comm& world) {
    if (world.rank() == 1) throw std::runtime_error("boom");
    world.barrier();  // must be interrupted
  });
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("boom"), std::string::npos);
}

TEST(Runtime, RecordTimeKeepsMaxAcrossRanks) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](Comm& world) {
    world.record_time("phase", world.rank() == 0 ? 1.0 : 3.0);
  });
  ASSERT_TRUE(result.completed);
  EXPECT_DOUBLE_EQ(result.times.at("phase"), 3.0);
}

TEST(Runtime, VirtualChargeAggregatesAsMax) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](Comm& world) {
    world.charge_virtual(world.rank() == 0 ? 2.0 : 5.0);
    EXPECT_GT(world.virtual_seconds(), 0.0);
  });
  ASSERT_TRUE(result.completed);
  EXPECT_NEAR(result.virtual_s, 5.0, 1e-9);
}

TEST(Runtime, NetworkModelChargesMessageCosts) {
  sim::NodeProfile profile;
  profile.nic_bandwidth_Bps = 1.0e6;  // 1 MB/s so costs are visible
  profile.nic_latency_s = 1.0e-3;
  profile.ranks_per_port = 1;
  sim::Cluster cluster({.num_nodes = 2, .spare_nodes = 0, .nodes_per_rack = 4,
                        .profile = profile});
  mpi::Runtime rt(cluster, {0, 1}, nullptr, {.model_network = true});
  const auto result = rt.run([](Comm& world) {
    std::vector<std::byte> megabyte(1 << 20);
    if (world.rank() == 0) {
      world.send_bytes(1, 1, megabyte);
    } else {
      world.recv_bytes(0, 1, megabyte);
    }
  });
  ASSERT_TRUE(result.completed);
  // ~1 s transfer charged on both ends; max across ranks ~= 1.05 s.
  EXPECT_GT(result.virtual_s, 0.9);
  EXPECT_LT(result.virtual_s, 1.5);
}

TEST(Launcher, RestartsAfterFailureUsingSpare) {
  MiniCluster mc(3, 2);
  sim::FailureInjector injector;
  injector.add_rule({.point = "work", .world_rank = 1, .hit = 1, .repeat = false});
  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 2, .ranks_per_node = 1,
                                                    .detect_delay_s = 1.5});
  std::atomic<int> attempts{0};
  const auto result = launcher.run(3, [&](Comm& world) {
    if (world.rank() == 0) attempts.fetch_add(1);
    world.failpoint("work");
    world.barrier();
  });
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.restarts, 1);
  EXPECT_EQ(attempts.load(), 2);
  ASSERT_EQ(result.cycles.size(), 1u);
  EXPECT_DOUBLE_EQ(result.cycles[0].detect_s, 1.5);
  // Rank 1 moved off the dead node onto a spare (>= 3).
  EXPECT_GE(result.final_ranklist[1], 3);
  EXPECT_EQ(result.final_ranklist[0], 0);
  EXPECT_GE(result.total_virtual_s, 1.5);
}

TEST(Launcher, FailsWhenSparesExhausted) {
  MiniCluster mc(2, 0);
  sim::FailureInjector injector;
  injector.add_rule({.point = "work", .world_rank = 0, .hit = 1, .repeat = false});
  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 3});
  const auto result = launcher.run(2, [](Comm& world) {
    world.failpoint("work");
    world.barrier();
  });
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.failure.find("spare pool exhausted"), std::string::npos);
}

TEST(Launcher, MaxRestartsBoundsDeterministicCrashLoop) {
  MiniCluster mc(2, 8);
  sim::FailureInjector injector;
  injector.add_rule({.point = "work", .world_rank = -1, .hit = 1, .repeat = true});
  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 2});
  const auto result = launcher.run(2, [](Comm& world) {
    world.failpoint("work");
    world.barrier();
  });
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.failure.find("max restarts"), std::string::npos);
}

TEST(Launcher, RanksPerNodePacking) {
  MiniCluster mc(2, 0);
  mpi::JobLauncher launcher(mc.cluster, nullptr, {.max_restarts = 0, .ranks_per_node = 2});
  const auto result = launcher.run(4, [](Comm& world) {
    EXPECT_EQ(world.node_id_of(0), world.node_id_of(1));
    EXPECT_NE(world.node_id_of(0), world.node_id_of(2));
    world.barrier();
  });
  EXPECT_TRUE(result.success);
}

}  // namespace
}  // namespace skt::mpi
