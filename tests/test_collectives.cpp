// Cross-checks for the bandwidth-optimal collectives: chunked binomial
// reduce, ring reduce-scatter, ring allreduce, and the zero-copy send path
// they are built on. Every result is compared against a locally computed
// expectation from deterministic per-rank payloads, across comm sizes
// 1..17 (non-powers-of-two included) and every root.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "testing.hpp"
#include "util/rng.hpp"

namespace skt::mpi {
namespace {

using skt::testing::MiniCluster;

// Deterministic payload of rank r: every rank can regenerate every other
// rank's contribution and compute the expected reduction locally.
std::vector<std::uint64_t> payload_u64(int rank, std::size_t count, std::uint64_t salt) {
  std::vector<std::uint64_t> v(count);
  std::uint64_t state = salt ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rank + 1));
  for (auto& x : v) x = state = util::splitmix64(state);
  return v;
}

std::vector<double> payload_f64(int rank, std::size_t count, std::uint64_t salt) {
  const std::vector<std::uint64_t> bits = payload_u64(rank, count, salt);
  std::vector<double> v(count);
  for (std::size_t i = 0; i < count; ++i) {
    v[i] = static_cast<double>(bits[i] % 4096) / 64.0 - 32.0;
  }
  return v;
}

template <typename T, typename Op>
std::vector<T> expected_reduction(int n, std::size_t count, std::uint64_t salt, Op op) {
  std::vector<T> acc;
  for (int r = 0; r < n; ++r) {
    std::vector<T> contrib;
    if constexpr (std::is_same_v<T, std::uint64_t>) {
      contrib = payload_u64(r, count, salt);
    } else {
      contrib = payload_f64(r, count, salt);
    }
    if (r == 0) {
      acc = std::move(contrib);
    } else {
      for (std::size_t i = 0; i < count; ++i) acc[i] = op(acc[i], contrib[i]);
    }
  }
  return acc;
}

// Awkward sizes on purpose: not a multiple of the chunk, forcing a partial
// trailing segment through the pipelined paths.
constexpr std::size_t kCount = 203;
constexpr std::size_t kSmallChunk = 96;  // bytes -> 12 u64 lanes, forces chunking

TEST(Collectives, PipelinedReduceMatchesLocalAllRootsAllSizes) {
  for (int n = 1; n <= 17; ++n) {
    MiniCluster mc(n, 0);
    const auto result = mc.run(n, [n](Comm& world) {
      for (int root = 0; root < n; ++root) {
        const std::vector<std::uint64_t> in = payload_u64(world.rank(), kCount, 11);
        std::vector<std::uint64_t> out(world.rank() == root ? kCount : 0);
        world.reduce<std::uint64_t>(root, in, out, BXor{}, kSmallChunk);
        if (world.rank() == root) {
          const auto want = expected_reduction<std::uint64_t>(n, kCount, 11, BXor{});
          EXPECT_EQ(out, want) << "n=" << n << " root=" << root;
        }
      }
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
}

TEST(Collectives, PipelinedReduceSumInPlaceAtRoot) {
  constexpr int kN = 7;
  MiniCluster mc(kN, 0);
  const auto result = mc.run(kN, [](Comm& world) {
    std::vector<double> buf = payload_f64(world.rank(), kCount, 23);
    // In-place: out aliases in on every rank (non-roots just keep their
    // input unchanged conceptually; only the root's buffer is defined).
    world.reduce<double>(3, buf, buf, Sum{}, kSmallChunk);
    if (world.rank() == 3) {
      const auto want = expected_reduction<double>(kN, kCount, 23, Sum{});
      for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_NEAR(buf[i], want[i], 1e-9) << "i=" << i;
      }
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Collectives, ReduceScatterMatchesLocalAllSizes) {
  for (int n = 1; n <= 17; ++n) {
    MiniCluster mc(n, 0);
    const auto result = mc.run(n, [n](Comm& world) {
      // Contribution layout: block b goes to rank b; rank r's full input is
      // n blocks of kCount lanes, all derived from (rank, block) so the
      // expected result is computable anywhere.
      std::vector<std::uint64_t> in(static_cast<std::size_t>(n) * kCount);
      for (int b = 0; b < n; ++b) {
        const auto block =
            payload_u64(world.rank(), kCount, 1000 + static_cast<std::uint64_t>(b));
        std::copy(block.begin(), block.end(), in.begin() + b * static_cast<long>(kCount));
      }
      std::vector<std::uint64_t> out(kCount);
      world.reduce_scatter<std::uint64_t>(in, out, BXor{}, kSmallChunk);
      const auto want = expected_reduction<std::uint64_t>(
          n, kCount, 1000 + static_cast<std::uint64_t>(world.rank()), BXor{});
      EXPECT_EQ(out, want) << "n=" << n << " rank=" << world.rank();
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
}

TEST(Collectives, ReduceScatterBlocksAcceptsScatteredSpans) {
  constexpr int kN = 5;
  MiniCluster mc(kN, 0);
  const auto result = mc.run(kN, [](Comm& world) {
    // Blocks live in separate allocations (the codec's stripe layout).
    std::vector<std::vector<std::uint64_t>> storage;
    std::vector<std::span<const std::uint64_t>> blocks;
    for (int b = 0; b < kN; ++b) {
      storage.push_back(
          payload_u64(world.rank(), kCount, 2000 + static_cast<std::uint64_t>(b)));
      blocks.emplace_back(storage.back());
    }
    std::vector<std::uint64_t> out(kCount);
    world.reduce_scatter_blocks<std::uint64_t>(blocks, out, BXor{}, kSmallChunk);
    const auto want = expected_reduction<std::uint64_t>(
        kN, kCount, 2000 + static_cast<std::uint64_t>(world.rank()), BXor{});
    EXPECT_EQ(out, want);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Collectives, RingAllreduceMatchesBinomialAllSizes) {
  for (int n = 1; n <= 17; ++n) {
    MiniCluster mc(n, 0);
    const auto result = mc.run(n, [n](Comm& world) {
      const std::size_t count = static_cast<std::size_t>(n) * 13;  // divisible by n
      const std::vector<std::uint64_t> in = payload_u64(world.rank(), count, 42);
      std::vector<std::uint64_t> ring(count);
      world.allreduce_ring<std::uint64_t>(in, ring, BXor{}, kSmallChunk);
      std::vector<std::uint64_t> binomial(count);
      world.reduce<std::uint64_t>(0, in, binomial, BXor{});
      world.bcast<std::uint64_t>(0, binomial);
      EXPECT_EQ(ring, binomial) << "n=" << n << " rank=" << world.rank();
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
}

TEST(Collectives, RingAllreduceInPlaceAndSumTolerance) {
  constexpr int kN = 6;
  MiniCluster mc(kN, 0);
  const auto result = mc.run(kN, [](Comm& world) {
    const std::size_t count = kN * 19;
    std::vector<double> buf = payload_f64(world.rank(), count, 77);
    world.allreduce_ring<double>(buf, buf, Sum{}, kSmallChunk);  // in-place
    const auto want = expected_reduction<double>(kN, count, 77, Sum{});
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_NEAR(buf[i], want[i], 1e-9) << "i=" << i;
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Collectives, AllreduceDispatchesRingForLargePayloads) {
  constexpr int kN = 4;
  MiniCluster mc(kN, 0);
  const auto result = mc.run(kN, [](Comm& world) {
    // >= kRingMinBytes and divisible by the comm size -> ring path.
    const std::size_t count = 8192;  // 64 KiB of u64
    const std::vector<std::uint64_t> in = payload_u64(world.rank(), count, 5);
    std::vector<std::uint64_t> out(count);
    world.allreduce<std::uint64_t>(in, out, BXor{});
    const auto want = expected_reduction<std::uint64_t>(kN, count, 5, BXor{});
    EXPECT_EQ(out, want);
    // Small payloads keep the binomial tree and must agree too.
    const std::uint64_t v = world.allreduce_value<std::uint64_t>(
        static_cast<std::uint64_t>(world.rank()) + 1, Max{});
    EXPECT_EQ(v, 4u);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Collectives, NodeFailureUnwindsRanksBlockedMidCollective) {
  constexpr int kN = 8;
  MiniCluster mc(kN, 0);
  sim::FailureInjector injector;
  injector.add_rule({.point = "mid.collective", .world_rank = 5, .hit = 1, .repeat = false});
  const auto result = mc.run(
      kN,
      [](Comm& world) {
        const std::vector<std::uint64_t> in = payload_u64(world.rank(), kCount, 9);
        std::vector<std::uint64_t> out(kCount);
        // Rank 5 dies between the first collective and the second; everyone
        // else ends up blocked inside the ring and must unwind via
        // JobAborted instead of hanging.
        world.reduce_scatter<std::uint64_t>(
            std::span<const std::uint64_t>(in).subspan(0, kN * 8),
            std::span<std::uint64_t>(out).subspan(0, 8), BXor{});
        world.failpoint("mid.collective");
        world.allreduce_ring<std::uint64_t>(
            std::span<const std::uint64_t>(in).subspan(0, kN * 8),
            std::span<std::uint64_t>(out).subspan(0, kN * 8), BXor{}, kSmallChunk);
        world.barrier();
      },
      &injector);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("mid.collective"), std::string::npos);
}

// --- zero-copy messaging ---------------------------------------------------

TEST(ZeroCopy, MoveSendDeliversPayloadWithoutMailboxCopies) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::byte> buf(4096);
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::byte>(i & 0xff);
      world.send_bytes(1, 7, std::move(buf));
      // Moved-from: valid but unspecified; our mailbox takes the allocation.
      EXPECT_TRUE(buf.empty());  // NOLINT(bugprone-use-after-move)
    } else {
      const std::vector<std::byte> got = world.recv_take(0, 7, 4096);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], static_cast<std::byte>(i & 0xff)) << "i=" << i;
      }
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
  // The move-send / take-receive pair never copies through the mailbox
  // layer, while wire accounting still sees the payload once.
  EXPECT_EQ(result.copied_bytes, 0u);
  EXPECT_EQ(result.wire_bytes, 4096u);
  EXPECT_EQ(result.wire_messages, 1u);
}

TEST(ZeroCopy, CopySendAndCopyRecvAreCounted) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const std::vector<std::byte> buf(1024, std::byte{0x5a});
      world.send_bytes(1, 7, std::span<const std::byte>(buf));  // copy in
      EXPECT_EQ(buf.size(), 1024u);                             // untouched
    } else {
      std::vector<std::byte> out(1024);
      world.recv_bytes(0, 7, out);  // copy out
      EXPECT_EQ(out[100], std::byte{0x5a});
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.copied_bytes, 2048u);  // once on send, once on receive
  EXPECT_EQ(result.wire_bytes, 1024u);
}

TEST(ZeroCopy, TypedRvalueSendMovesByteVectors) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::byte> buf(512, std::byte{0x7});
      world.send<std::byte>(1, 3, std::move(buf));
    } else {
      std::vector<std::byte> out(512);
      world.recv<std::byte>(0, 3, out);
      EXPECT_EQ(out[0], std::byte{0x7});
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(result.copied_bytes, 512u);  // receive copies; the send did not
}

TEST(ZeroCopy, RecvTakeSizeMismatchAborts) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](Comm& world) {
    if (world.rank() == 0) {
      world.send_value<int>(1, 1, 5);
    } else {
      (void)world.recv_take(0, 1, 999);  // throws logic_error -> job abort
    }
  });
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.abort_reason.find("mismatch"), std::string::npos);
}

}  // namespace
}  // namespace skt::mpi
