// ckpt::Session API contract: open semantics (fresh vs restored), the
// async pipeline's bounded staleness and snapshot isolation, destructor
// drain, and misuse errors.
//
// The async stress test at the bottom doubles as the TSan workload (see
// scripts/check.sh): the rank thread mutates data() while the worker
// encodes the staged copy, which is exactly the overlap the staging
// design must make race-free.
#include <gtest/gtest.h>

#include <stdexcept>

#include "ckpt_harness.hpp"
#include "storage/device.hpp"
#include "testing.hpp"

namespace skt::ckpt {
namespace {

using skt::testing::MiniCluster;
using skt::testing::fill_pattern;
using skt::testing::matches_pattern;

constexpr std::size_t kBytes = 2048;
constexpr std::uint64_t kSeed = 42;

Session make_session(mpi::Comm& world, CommitMode mode, const char* key = "s") {
  return SessionBuilder{}
      .strategy(Strategy::kSelf)
      .key_prefix(key)
      .data_bytes(kBytes)
      .user_bytes(16)
      .mode(mode)
      .build(world);
}

TEST(Session, FreshOpenThenCommitAdvancesEpoch) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    Session session = make_session(world, CommitMode::kSync);
    EXPECT_EQ(session.open(), OpenOutcome::kFresh);
    EXPECT_FALSE(session.last_restore().has_value());
    EXPECT_EQ(session.committed_epoch(), 0u);
    EXPECT_EQ(session.strategy(), Strategy::kSelf);
    EXPECT_EQ(session.mode(), CommitMode::kSync);
    fill_pattern(session.data(), kSeed, world.rank(), 1);
    const CommitStats stats = session.commit();
    EXPECT_EQ(stats.epoch, 1u);
    EXPECT_EQ(session.committed_epoch(), 1u);
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

// A second Session over the same keys (same job, protocol state lives in
// the node-local store) opens as kRestored and performs the restore
// itself — the caller never sequences open/restore by hand.
TEST(Session, ReopenRestoresNewestEpoch) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    {
      Session first = make_session(world, CommitMode::kSync);
      ASSERT_EQ(first.open(), OpenOutcome::kFresh);
      for (std::uint64_t e = 1; e <= 2; ++e) {
        fill_pattern(first.data(), kSeed, world.rank(), e);
        first.commit();
      }
    }
    Session second = make_session(world, CommitMode::kSync);
    EXPECT_EQ(second.open(), OpenOutcome::kRestored);
    ASSERT_TRUE(second.last_restore().has_value());
    EXPECT_EQ(second.last_restore()->epoch, 2u);
    EXPECT_TRUE(matches_pattern(second.data(), kSeed, world.rank(), 2, 0.0));
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

// Snapshot isolation: once commit_async() returns, later mutations of
// data() must not leak into the committed epoch — the worker encodes the
// sealed staging copy, not the live buffer.
TEST(Session, AsyncCommitIsIsolatedFromLaterMutations) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    {
      Session session = make_session(world, CommitMode::kAsync, "iso");
      ASSERT_EQ(session.open(), OpenOutcome::kFresh);
      fill_pattern(session.data(), kSeed, world.rank(), 1);
      CommitTicket ticket = session.commit_async();
      // Scribble over the live buffer while the worker may still encode.
      std::memset(session.data().data(), 0xEE, session.data().size());
      const CommitStats stats = ticket.wait();
      EXPECT_EQ(stats.epoch, 1u);
      EXPECT_GE(ticket.stage_seconds(), 0.0);
    }
    Session reopened = make_session(world, CommitMode::kAsync, "iso");
    EXPECT_EQ(reopened.open(), OpenOutcome::kRestored);
    EXPECT_EQ(reopened.last_restore()->epoch, 1u);
    EXPECT_TRUE(matches_pattern(reopened.data(), kSeed, world.rank(), 1, 0.0));
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

// Bounded staleness: a second commit_async() blocks until the previous
// epoch has fully landed, so the first ticket polls done the moment the
// second call returns.
TEST(Session, SecondCommitAsyncAppliesBackpressure) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    Session session = make_session(world, CommitMode::kAsync, "bp");
    ASSERT_EQ(session.open(), OpenOutcome::kFresh);
    fill_pattern(session.data(), kSeed, world.rank(), 1);
    CommitTicket first = session.commit_async();
    fill_pattern(session.data(), kSeed, world.rank(), 2);
    CommitTicket second = session.commit_async();
    EXPECT_TRUE(first.poll());
    EXPECT_EQ(first.wait().epoch, 1u);
    EXPECT_EQ(second.wait().epoch, 2u);
    // wait() is idempotent.
    EXPECT_EQ(second.wait().epoch, 2u);
    session.drain();
    EXPECT_EQ(session.committed_epoch(), 2u);
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

// A mixed commit() in async mode drains the in-flight epoch first.
TEST(Session, SyncCommitDrainsInFlightEpoch) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    Session session = make_session(world, CommitMode::kAsync, "mix");
    ASSERT_EQ(session.open(), OpenOutcome::kFresh);
    fill_pattern(session.data(), kSeed, world.rank(), 1);
    session.commit_async();
    fill_pattern(session.data(), kSeed, world.rank(), 2);
    const CommitStats stats = session.commit();
    EXPECT_EQ(stats.epoch, 2u);
    EXPECT_EQ(session.committed_epoch(), 2u);
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

// The destructor drains: the epoch in flight when the Session goes out of
// scope is durably committed, as a reopen proves.
TEST(Session, DestructorDrainsInFlightCommit) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    {
      Session session = make_session(world, CommitMode::kAsync, "dtor");
      ASSERT_EQ(session.open(), OpenOutcome::kFresh);
      fill_pattern(session.data(), kSeed, world.rank(), 1);
      session.commit_async();  // ticket dropped; destructor must drain
    }
    Session reopened = make_session(world, CommitMode::kAsync, "dtor");
    EXPECT_EQ(reopened.open(), OpenOutcome::kRestored);
    EXPECT_EQ(reopened.last_restore()->epoch, 1u);
    EXPECT_TRUE(matches_pattern(reopened.data(), kSeed, world.rank(), 1, 0.0));
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST(Session, MisuseThrows) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](mpi::Comm& world) {
    Session session = make_session(world, CommitMode::kSync);
    EXPECT_THROW((void)session.commit(), std::logic_error);  // before open()
    EXPECT_EQ(session.open(), OpenOutcome::kFresh);
    EXPECT_THROW((void)session.open(), std::logic_error);          // twice
    EXPECT_THROW((void)session.commit_async(), std::logic_error);  // sync mode
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

// Builder misconfiguration surfaces as typed ConfigError carrying the
// offending field name (still an invalid_argument for legacy catchers).
TEST(Session, GroupSizeMustDivideWorld) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    try {
      (void)SessionBuilder{}
          .strategy(Strategy::kSelf)
          .key_prefix("bad")
          .data_bytes(kBytes)
          .group_size(3)
          .build(world);
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      EXPECT_EQ(e.field(), "group_size");
    }
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST(Session, ConfigErrorsNameTheOffendingField) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    const auto field_of = [&](SessionBuilder builder) -> std::string {
      try {
        (void)builder.build(world);
      } catch (const ConfigError& e) {
        return e.field();
      }
      return "<no error>";
    };
    EXPECT_EQ(field_of(SessionBuilder{}.strategy(Strategy::kSelf).key_prefix("z")),
              "data_bytes");
    EXPECT_EQ(field_of(SessionBuilder{}
                           .strategy(Strategy::kSelf)
                           .key_prefix("z")
                           .data_bytes(kBytes)
                           .group_size(-2)),
              "group_size");
    EXPECT_EQ(field_of(SessionBuilder{}
                           .strategy(Strategy::kSelf)
                           .key_prefix("z")
                           .data_bytes(kBytes)
                           .parity_degree(0)),
              "parity_degree");
    EXPECT_EQ(field_of(SessionBuilder{}
                           .strategy(Strategy::kBlcr)
                           .key_prefix("z")
                           .data_bytes(kBytes)),
              "vault");
    // Tenancy knobs come in pairs: a tenant without a service (and vice
    // versa) is a configuration bug, not a silent single-tenant fallback.
    EXPECT_EQ(field_of(SessionBuilder{}
                           .strategy(Strategy::kSelf)
                           .key_prefix("z")
                           .data_bytes(kBytes)
                           .tenant("hpl-a")),
              "service");
    StoreService service;
    EXPECT_EQ(field_of(SessionBuilder{}
                           .strategy(Strategy::kSelf)
                           .key_prefix("z")
                           .data_bytes(kBytes)
                           .service(&service)),
              "tenant");
    EXPECT_EQ(field_of(SessionBuilder{}
                           .strategy(Strategy::kSelf)
                           .key_prefix("z")
                           .data_bytes(kBytes)
                           .service(&service)
                           .tenant("never-registered")),
              "tenant");
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

// TSan workload: sustained overlap between the rank thread (mutating
// data(), staging) and the worker (encoding the staged copy, flushing,
// running collectives on its dup()'d comms). Any missing synchronization
// between the two threads shows up here under -fsanitize=thread.
TEST(SessionAsyncStress, OverlappedCommitLoop) {
  MiniCluster mc(8, 0);
  const auto result = mc.run(8, [](mpi::Comm& world) {
    Session session = SessionBuilder{}
                          .strategy(Strategy::kSelf)
                          .key_prefix("stress")
                          .data_bytes(8192)
                          .user_bytes(16)
                          .group_size(4)
                          .mode(CommitMode::kAsync)
                          .build(world);
    ASSERT_EQ(session.open(), OpenOutcome::kFresh);
    constexpr std::uint64_t kEpochs = 16;
    for (std::uint64_t e = 1; e <= kEpochs; ++e) {
      fill_pattern(session.data(), kSeed, world.rank(), e);
      session.commit_async();
    }
    session.drain();
    EXPECT_EQ(session.committed_epoch(), kEpochs);
    EXPECT_TRUE(matches_pattern(session.data(), kSeed, world.rank(), kEpochs, 0.0));
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

}  // namespace
}  // namespace skt::ckpt
