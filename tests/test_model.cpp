#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/efficiency.hpp"
#include "model/systems.hpp"
#include "model/top500.hpp"

namespace skt::model {
namespace {

TEST(EfficiencyModel, FitRecoversKnownParameters) {
  // Synthesize samples from E(N) = N / (aN + b).
  const double a = 1.18, b = 4200.0;
  std::vector<double> sizes{2000, 5000, 10000, 20000, 50000};
  std::vector<double> effs;
  for (double n : sizes) effs.push_back(n / (a * n + b));
  const EfficiencyModel model = fit_efficiency(sizes, effs);
  EXPECT_NEAR(model.a, a, 1e-9);
  EXPECT_NEAR(model.b, b, 1e-6);
  EXPECT_NEAR(model.r2, 1.0, 1e-12);
}

TEST(EfficiencyModel, EfficiencyIncreasesWithProblemSize) {
  const EfficiencyModel m{1.1, 3000.0, 1.0};
  EXPECT_LT(m.efficiency(1000), m.efficiency(10000));
  EXPECT_LT(m.efficiency(10000), m.efficiency(100000));
  // Asymptote 1/a, never reached.
  EXPECT_LT(m.efficiency(1e12), 1.0 / 1.1);
}

TEST(EfficiencyModel, ProblemSizeForInvertsEfficiency) {
  const EfficiencyModel m{1.1, 3000.0, 1.0};
  const double n = m.problem_size_for(0.8);
  EXPECT_NEAR(m.efficiency(n), 0.8, 1e-12);
  EXPECT_TRUE(std::isinf(m.problem_size_for(0.95)));  // above asymptote 1/1.1
  EXPECT_THROW((void)m.problem_size_for(0.0), std::invalid_argument);
}

TEST(EfficiencyModel, FitRejectsBadInputs) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)fit_efficiency(one, one), std::invalid_argument);
  const std::vector<double> sizes{100, 200};
  const std::vector<double> negative{0.5, -0.1};
  EXPECT_THROW((void)fit_efficiency(sizes, negative), std::invalid_argument);
}

TEST(Eq8, LowerBoundBehaviour) {
  // k = 1 is the identity.
  EXPECT_NEAR(efficiency_lower_bound(0.8, 1.0), 0.8, 1e-12);
  // Less memory -> lower efficiency, monotone in k.
  EXPECT_LT(efficiency_lower_bound(0.8, 1.0 / 3.0), efficiency_lower_bound(0.8, 0.5));
  EXPECT_LT(efficiency_lower_bound(0.8, 0.5), 0.8);
  // The a -> 1 form is a LOWER bound: a > 1 gives higher efficiency
  // (that is the ">" step in the paper's Eq. 8 derivation).
  EXPECT_GT(efficiency_at_fraction(0.8, 0.5, 1.3), efficiency_lower_bound(0.8, 0.5));
  EXPECT_THROW((void)efficiency_at_fraction(0.8, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)efficiency_at_fraction(1.5, 0.5, 1.0), std::invalid_argument);
}

TEST(Eq8, PaperAverageImprovementHalfVsThird) {
  // Section 4: top-10 systems improve ~11.96% on average going from 1/3 to
  // 1/2 of memory. Reproduce the average relative improvement with the
  // same lower-bound model; allow a loose band since the paper's exact
  // fitting inputs are unpublished.
  double total_gain = 0.0;
  for (const auto& sys : top10_nov2016()) {
    const double half = efficiency_lower_bound(sys.efficiency(), 0.5);
    const double third = efficiency_lower_bound(sys.efficiency(), 1.0 / 3.0);
    total_gain += (half - third) / third;
  }
  const double avg_gain = total_gain / 10.0;
  EXPECT_GT(avg_gain, 0.08);
  EXPECT_LT(avg_gain, 0.16);
}

TEST(Top500, DataSanity) {
  const auto& systems = top10_nov2016();
  EXPECT_EQ(systems[0].name, "TaihuLight");
  EXPECT_EQ(systems[1].name, "Tianhe-2");
  for (const auto& sys : systems) {
    EXPECT_GT(sys.rmax_tflops, 0.0);
    EXPECT_GT(sys.rpeak_tflops, sys.rmax_tflops);
    EXPECT_GT(sys.efficiency(), 0.4);
    EXPECT_LT(sys.efficiency(), 1.0);
  }
  // K computer has the best efficiency of the ten.
  for (const auto& sys : systems) {
    EXPECT_LE(sys.efficiency(), systems[6].efficiency() + 1e-12);
  }
}

TEST(Systems, Table2Profiles) {
  const SystemProfile t1 = tianhe1a();
  const SystemProfile t2 = tianhe2();
  EXPECT_DOUBLE_EQ(t1.node.peak_gflops, 140.0);
  EXPECT_DOUBLE_EQ(t2.node.peak_gflops, 422.0);
  EXPECT_EQ(t1.node.memory_bytes, 48ull << 30);
  EXPECT_EQ(t2.node.memory_bytes, 64ull << 30);
  // Memory per core: 4 GB/core vs ~2.67 GB/core (the paper quotes 2.4 with
  // some reserved); Tianhe-1A has more per core.
  EXPECT_GT(static_cast<double>(t1.node.memory_bytes) / t1.cores_per_node,
            static_cast<double>(t2.node.memory_bytes) / t2.cores_per_node);
  // Per-process NIC share is higher on Tianhe-1A (the Fig. 13 inversion).
  EXPECT_GT(t1.node.nic_bandwidth_Bps / t1.node.ranks_per_port,
            t2.node.nic_bandwidth_Bps / t2.node.ranks_per_port);

  const SystemProfile small = scaled(t2, 1u << 20);
  EXPECT_EQ(small.node.memory_bytes, 1u << 20);
  EXPECT_EQ(small.node.ranks_per_port, 24);
}

}  // namespace
}  // namespace skt::model
