#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "sim/accelerator.hpp"
#include "sim/cluster.hpp"
#include "sim/failure.hpp"
#include "sim/persistent_store.hpp"

namespace skt::sim {
namespace {

/// Boolean view of FailureInjector::should_kill for the trigger tests.
bool fired(FailureInjector& injector, std::string_view point, int rank) {
  return injector.should_kill(point, rank).has_value();
}

TEST(PersistentStore, CreateAttachRoundTrip) {
  PersistentStore store;
  auto seg = store.create("k", 64);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->size(), 64u);
  seg->bytes()[0] = std::byte{42};

  auto again = store.attach("k");
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->bytes()[0], std::byte{42});
  EXPECT_EQ(seg.get(), again.get());  // same segment, shmget semantics
}

TEST(PersistentStore, CreateExistingSameSizeAttaches) {
  PersistentStore store;
  auto a = store.create("k", 64);
  auto b = store.create("k", 64);
  EXPECT_EQ(a.get(), b.get());
}

TEST(PersistentStore, CreateExistingDifferentSizeThrows) {
  PersistentStore store;
  store.create("k", 64);
  EXPECT_THROW(store.create("k", 128), std::invalid_argument);
}

TEST(PersistentStore, CreateExistingDifferentOwnerThrowsLoudly) {
  PersistentStore store;
  store.create("k", 64, "ns/a/");
  // Same namespace re-attaches; a foreign namespace is refused even at the
  // same size — silent cross-tenant sharing would corrupt both.
  EXPECT_NE(store.create("k", 64, "ns/a/"), nullptr);
  EXPECT_THROW(store.create("k", 64, "ns/b/"), std::invalid_argument);
  EXPECT_THROW(store.create("k", 64), std::invalid_argument);  // unowned vs owned
  EXPECT_EQ(store.owner_of("k").value(), "ns/a/");
}

TEST(PersistentStore, OwnerAccountingAndEnumeration) {
  PersistentStore store;
  store.create("ns/a/x", 16, "ns/a/");
  store.create("ns/a/y", 24, "ns/a/");
  store.create("ns/b/x", 8, "ns/b/");
  EXPECT_EQ(store.owner_bytes("ns/a/"), 40u);
  EXPECT_EQ(store.owner_bytes("ns/b/"), 8u);
  const auto mine = store.segments_of("ns/a/");
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0].first, "ns/a/x");  // key-ordered snapshot
  EXPECT_EQ(mine[1].first, "ns/a/y");
}

TEST(PersistentStore, AttachUnknownReturnsNull) {
  PersistentStore store;
  EXPECT_EQ(store.attach("nope"), nullptr);
}

TEST(PersistentStore, RemoveAndClearAndAccounting) {
  PersistentStore store;
  store.create("a", 16);
  store.create("b", 24);
  EXPECT_EQ(store.bytes_in_use(), 40u);
  EXPECT_EQ(store.segment_count(), 2u);
  store.remove("a");
  EXPECT_FALSE(store.exists("a"));
  EXPECT_EQ(store.bytes_in_use(), 24u);
  store.clear();
  EXPECT_EQ(store.segment_count(), 0u);
}

TEST(PersistentStore, HolderSurvivesClear) {
  PersistentStore store;
  auto seg = store.create("k", 8);
  seg->bytes()[0] = std::byte{7};
  store.clear();
  // The orphaned buffer stays writable for the holder (no UAF for a rank
  // that dies mid-write), but the store no longer knows the key.
  seg->bytes()[1] = std::byte{8};
  EXPECT_EQ(store.attach("k"), nullptr);
}

TEST(Node, PowerOffWipesStoreAndCountsBoots) {
  Node node(0, 0, NodeProfile{});
  node.store().create("x", 8);
  EXPECT_TRUE(node.alive());
  node.power_off();
  EXPECT_FALSE(node.alive());
  EXPECT_EQ(node.store().segment_count(), 0u);
  EXPECT_EQ(node.boot_generation(), 1u);
  node.power_off();  // idempotent
  EXPECT_EQ(node.boot_generation(), 1u);
  node.reboot();
  EXPECT_TRUE(node.alive());
}

TEST(Cluster, SparePoolAndPrimaries) {
  Cluster cluster({.num_nodes = 4, .spare_nodes = 2, .nodes_per_rack = 2, .profile = {}});
  EXPECT_EQ(cluster.total_nodes(), 6);
  EXPECT_EQ(cluster.primary_nodes().size(), 4u);
  EXPECT_EQ(cluster.spares_remaining(), 2);
  const auto s1 = cluster.take_spare();
  ASSERT_TRUE(s1.has_value());
  EXPECT_GE(*s1, 4);
  EXPECT_EQ(cluster.spares_remaining(), 1);
  (void)cluster.take_spare();
  EXPECT_FALSE(cluster.take_spare().has_value());
}

TEST(Cluster, RackAssignment) {
  Cluster cluster({.num_nodes = 4, .spare_nodes = 0, .nodes_per_rack = 2, .profile = {}});
  EXPECT_EQ(cluster.node(0).rack(), 0);
  EXPECT_EQ(cluster.node(1).rack(), 0);
  EXPECT_EQ(cluster.node(2).rack(), 1);
  EXPECT_EQ(cluster.node(3).rack(), 1);
}

TEST(Cluster, PowerOffFiresAbortHookOnce) {
  Cluster cluster({.num_nodes = 2, .spare_nodes = 0, .nodes_per_rack = 4, .profile = {}});
  int called = 0;
  int dead_node = -1;
  std::string reason;
  const int token = cluster.attach_job([&](int node_id, const std::string& r) {
    ++called;
    dead_node = node_id;
    reason = r;
  });
  cluster.power_off(1, "test");
  cluster.power_off(1, "again");  // dead already: no second abort
  EXPECT_EQ(called, 1);
  EXPECT_EQ(dead_node, 1);
  EXPECT_NE(reason.find("node 1"), std::string::npos);
  cluster.detach_job(token);
  EXPECT_FALSE(cluster.node(1).alive());
}

TEST(Cluster, MultipleJobHooksEachSeeTheFailure) {
  Cluster cluster({.num_nodes = 3, .spare_nodes = 0, .nodes_per_rack = 4, .profile = {}});
  std::vector<int> a_nodes;
  std::vector<int> b_nodes;
  const int token_a =
      cluster.attach_job([&](int node_id, const std::string&) { a_nodes.push_back(node_id); });
  const int token_b =
      cluster.attach_job([&](int node_id, const std::string&) { b_nodes.push_back(node_id); });
  cluster.power_off(2, "shared failure");
  EXPECT_EQ(a_nodes, std::vector<int>{2});
  EXPECT_EQ(b_nodes, std::vector<int>{2});
  cluster.detach_job(token_a);
  cluster.power_off(0, "only b attached");
  EXPECT_EQ(a_nodes.size(), 1u);
  EXPECT_EQ(b_nodes, (std::vector<int>{2, 0}));
  cluster.detach_job(token_b);
}

TEST(Cluster, RejectsBadConfig) {
  EXPECT_THROW(Cluster({.num_nodes = 0, .spare_nodes = 0, .nodes_per_rack = 1, .profile = {}}),
               std::invalid_argument);
  EXPECT_THROW(Cluster({.num_nodes = 1, .spare_nodes = -1, .nodes_per_rack = 1, .profile = {}}),
               std::invalid_argument);
}

TEST(FailureInjector, TriggersOnNthHitForMatchingRank) {
  FailureInjector injector;
  injector.add_rule({.point = "p", .world_rank = 2, .hit = 3, .repeat = false});
  EXPECT_FALSE(fired(injector, "p", 2));
  EXPECT_FALSE(fired(injector, "p", 1));  // wrong rank, not counted
  EXPECT_FALSE(fired(injector, "q", 2));  // wrong point
  EXPECT_FALSE(fired(injector, "p", 2));
  EXPECT_TRUE(fired(injector, "p", 2));
  EXPECT_FALSE(fired(injector, "p", 2));  // one-shot
  EXPECT_EQ(injector.triggered_count(), 1u);
}

TEST(FailureInjector, AnyRankAndRepeat) {
  FailureInjector injector;
  injector.add_rule({.point = "p", .world_rank = -1, .hit = 1, .repeat = true});
  EXPECT_TRUE(fired(injector, "p", 0));
  EXPECT_TRUE(fired(injector, "p", 5));
  EXPECT_EQ(injector.triggered_count(), 2u);
  injector.clear();
  EXPECT_FALSE(fired(injector, "p", 0));
}

TEST(Accelerator, UploadDownloadRoundTrip) {
  Accelerator device(64);
  std::vector<std::byte> host(64);
  for (std::size_t i = 0; i < host.size(); ++i) host[i] = static_cast<std::byte>(i);
  const double up = device.upload(host);
  EXPECT_GT(up, 0.0);
  std::vector<std::byte> back(64, std::byte{0});
  const double down = device.download(back);
  EXPECT_GT(down, 0.0);
  EXPECT_EQ(back, host);
  // Kernels mutate device memory in place and downloads observe it.
  device.memory()[3] = std::byte{0xAA};
  device.download(back);
  EXPECT_EQ(back[3], std::byte{0xAA});
}

TEST(Accelerator, PartialTransfersAndBounds) {
  Accelerator device(32);
  std::vector<std::byte> chunk(8, std::byte{7});
  device.upload(chunk, 16);
  std::vector<std::byte> out(8);
  device.download(out, 16);
  EXPECT_EQ(out, chunk);
  EXPECT_THROW(device.upload(chunk, 28), std::out_of_range);
  EXPECT_THROW(device.download(out, 30), std::out_of_range);
}

TEST(Accelerator, TransferTimeScalesWithSize) {
  Accelerator device(2u << 20);
  std::vector<std::byte> small(1 << 10);
  std::vector<std::byte> big(1 << 20);
  EXPECT_LT(device.upload(small), device.upload(big));
}

TEST(TimedFailure, FiresAfterDelay) {
  Cluster cluster({.num_nodes = 2, .spare_nodes = 0, .nodes_per_rack = 4, .profile = {}});
  TimedFailure failure(cluster, 1, 0.02, "timed");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(failure.fired());
  EXPECT_FALSE(cluster.node(1).alive());
}

TEST(TimedFailure, CancelPreventsFiring) {
  Cluster cluster({.num_nodes = 2, .spare_nodes = 0, .nodes_per_rack = 4, .profile = {}});
  {
    TimedFailure failure(cluster, 1, 5.0, "never");
    failure.cancel();
  }
  EXPECT_TRUE(cluster.node(1).alive());
}

}  // namespace
}  // namespace skt::sim
