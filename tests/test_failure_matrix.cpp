// The recovery matrix: kill a node at EVERY stage of every strategy's
// commit state machine (and mid-compute, and during restore) and assert
// the outcome the paper's Figures 2-4 predict:
//
//   self-checkpoint  — recovers from every single-node failure
//   double           — recovers from every single-node failure
//   single           — recovers outside the update window, is
//                      *unrecoverable* inside it (CASE 2 of Fig. 2)
//   blcr             — recovers everywhere (disk survives power-off)
//
// Verification is end-to-end: the relaunched application must finish with
// bit-correct data (see ckpt_harness.hpp).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "ckpt_harness.hpp"
#include "mpi/launcher.hpp"
#include "storage/device.hpp"
#include "storage/sharded_vault.hpp"
#include "storage/snapshot_vault.hpp"
#include "testing.hpp"

namespace skt::ckpt {
namespace {

using skt::testing::CkptAppConfig;
using skt::testing::checkpointed_app;

/// Every recoverable kill must leave a complete forensic record: one
/// postmortem naming the lost rank and the newest committed epoch, and —
/// for the in-memory strategies, where the replacement decodes its image
/// from the group — the rebuilt stripe set and the surviving peers it was
/// rebuilt from. (BLCR restores from disk: no peer rebuild to report.)
void expect_postmortem(const mpi::LaunchResult& result, Strategy strategy, int group_size) {
  ASSERT_EQ(result.postmortems.size(), 1u);
  const telemetry::Postmortem& pm = result.postmortems.front();
  EXPECT_EQ(pm.lost_ranks, std::vector<int>{1});
  EXPECT_GE(pm.lost_epoch, 1u);
  EXPECT_TRUE(pm.recovered);
  EXPECT_GE(pm.restored_epoch, 1u);
  EXPECT_FALSE(pm.committed_epochs.empty());
  EXPECT_EQ(pm.geometry.group_size, group_size);
  if (strategy == Strategy::kBlcr) return;
  ASSERT_FALSE(pm.rebuilds.empty());
  const telemetry::RebuildInfo& rb = pm.rebuilds.front();
  EXPECT_EQ(rb.rank, 1);
  EXPECT_GT(rb.stripe_count, 0u);
  EXPECT_EQ(rb.peers.size(), static_cast<std::size_t>(group_size - 1));
}

struct Case {
  Strategy strategy;
  const char* failpoint;
  bool recoverable;
  /// Rank whose failpoint visit triggers the kill. -1 = the victim itself.
  /// At exact step boundaries recoverability can depend on how far the
  /// SURVIVORS got, so the unrecoverable single-checkpoint cases use a
  /// survivor (rank 0) as the trigger: when rank 0 stands at
  /// ckpt.mid_update, rank 0 itself has provably entered the update
  /// window, which pins the outcome.
  int trigger = -1;
};

std::string case_name(const ::testing::TestParamInfo<std::tuple<Case, int, enc::CodecKind>>& i) {
  const auto& [c, group, codec] = i.param;
  std::string point = c.failpoint;
  for (char& ch : point) {
    if (ch == '.') ch = '_';
  }
  std::string strategy(to_string(c.strategy));
  if (const auto dash = strategy.find('-'); dash != std::string::npos) {
    strategy = strategy.substr(0, dash);
  }
  return strategy + "_" + point + "_g" + std::to_string(group) + "_" +
         std::string(enc::to_string(codec));
}

class FailureMatrix
    : public ::testing::TestWithParam<std::tuple<Case, int /*group*/, enc::CodecKind>> {};

TEST_P(FailureMatrix, KillDuringProtocolStep) {
  const auto& [c, group_size, codec] = GetParam();
  const int world = 2 * group_size;  // two groups: cross-group epoch agreement is exercised
  skt::testing::MiniCluster mc(world, 2);

  storage::SnapshotVault vault;
  CkptAppConfig config;
  config.strategy = c.strategy;
  config.group_size = group_size;
  config.codec = codec;
  config.iterations = 4;
  config.data_bytes = 2048;
  config.vault = &vault;
  config.device = storage::ssd_profile();

  sim::FailureInjector injector;
  // Kill rank 1 (a member of group 0) on the SECOND visit to the failpoint
  // so at least one full checkpoint exists before the failure. "app.done"
  // is visited once per run, so it fires on the first visit.
  const int hit = std::string(c.failpoint) == "app.done" ? 1 : 2;
  const int trigger = c.trigger < 0 ? 1 : c.trigger;
  injector.add_rule({.point = c.failpoint,
                     .world_rank = trigger,
                     .hit = hit,
                     .repeat = false,
                     .victim_world_rank = 1});

  mpi::JobLauncher launcher(mc.cluster, &injector,
                            {.max_restarts = 3, .ranks_per_node = 1});
  const auto result = launcher.run(world, [&](mpi::Comm& w) { checkpointed_app(w, config); });

  EXPECT_EQ(injector.triggered_count(), 1u) << "failpoint never fired: " << c.failpoint;
  if (c.recoverable) {
    EXPECT_TRUE(result.success) << result.failure;
    EXPECT_EQ(result.restarts, 1);
    // The dead node was replaced by a spare.
    EXPECT_GE(result.final_ranklist[1], world);
    EXPECT_GT(result.times.count("recover"), 0u);
    expect_postmortem(result, c.strategy, group_size);
  } else {
    EXPECT_FALSE(result.success);
    EXPECT_FALSE(result.postmortems.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SelfCheckpoint, FailureMatrix,
    ::testing::Combine(
        ::testing::Values(Case{Strategy::kSelf, "app.work", true},
                          Case{Strategy::kSelf, "ckpt.begin", true},
                          Case{Strategy::kSelf, "ckpt.copy_a2", true},
                          Case{Strategy::kSelf, "ckpt.encode_begin", true},
                          Case{Strategy::kSelf, "ckpt.encode_done", true},
                          Case{Strategy::kSelf, "ckpt.sealed", true},
                          Case{Strategy::kSelf, "ckpt.mid_flush", true},
                          Case{Strategy::kSelf, "ckpt.flushed", true},
                          Case{Strategy::kSelf, "app.done", true}),
        ::testing::Values(2, 4), ::testing::Values(enc::CodecKind::kXor)),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    SelfCheckpointSumCodec, FailureMatrix,
    ::testing::Combine(::testing::Values(Case{Strategy::kSelf, "ckpt.mid_flush", true},
                                         Case{Strategy::kSelf, "ckpt.encode_done", true}),
                       ::testing::Values(4), ::testing::Values(enc::CodecKind::kSum)),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    DoubleCheckpoint, FailureMatrix,
    ::testing::Combine(
        ::testing::Values(Case{Strategy::kDouble, "app.work", true},
                          Case{Strategy::kDouble, "ckpt.begin", true},
                          Case{Strategy::kDouble, "ckpt.mid_update", true},
                          Case{Strategy::kDouble, "ckpt.encode_done", true},
                          Case{Strategy::kDouble, "ckpt.flushed", true}),
        ::testing::Values(2, 4), ::testing::Values(enc::CodecKind::kXor)),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    SingleCheckpoint, FailureMatrix,
    ::testing::Combine(
        ::testing::Values(
            // Outside the update window: recoverable (CASE 1 of Fig. 2).
            Case{Strategy::kSingle, "app.work", true},
            Case{Strategy::kSingle, "ckpt.begin", true},
            // Inside the update window: (B, C) inconsistent (CASE 2).
            // Survivor-triggered (rank 0 is provably mid-update when the
            // victim dies) to pin the interleaving.
            Case{Strategy::kSingle, "ckpt.mid_update", false, 0},
            Case{Strategy::kSingle, "ckpt.encode_done", false, 0}),
        ::testing::Values(4), ::testing::Values(enc::CodecKind::kXor)),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    Blcr, FailureMatrix,
    ::testing::Combine(::testing::Values(Case{Strategy::kBlcr, "app.work", true},
                                         Case{Strategy::kBlcr, "ckpt.mid_update", true},
                                         Case{Strategy::kBlcr, "ckpt.flushed", true}),
                       ::testing::Values(2), ::testing::Values(enc::CodecKind::kXor)),
    case_name);

// The same sweep through the ASYNCHRONOUS pipeline: the kill lands inside
// the background worker's ckpt.async_* window (or the rank thread's
// ckpt.async_stage), while the application loop is already mutating the
// next iteration's data. Recovery must still converge on a globally
// consistent epoch — the staged copy S is what the group encoded, so a
// CASE-2 rebuild reads (S, D), never the torn live buffer.
struct AsyncCase {
  Strategy strategy;
  const char* failpoint;
  bool recoverable = true;
  /// See Case::trigger; -1 = the victim itself.
  int trigger = -1;
  /// > 0: wrap in a multi-level session flushing to disk every N commits.
  int level2_every = 0;
  /// > 0: partial-dirty mode — the app rewrites/annotates only this many
  /// bytes per iteration, so the kill lands inside a commit_staged whose
  /// staging and parity delta covered a strict subset of the stripes.
  std::size_t hot_bytes = 0;
};

std::string async_case_name(
    const ::testing::TestParamInfo<std::tuple<AsyncCase, int>>& i) {
  const auto& [c, group] = i.param;
  std::string point = c.failpoint;
  for (char& ch : point) {
    if (ch == '.') ch = '_';
  }
  std::string strategy(to_string(c.strategy));
  if (const auto dash = strategy.find('-'); dash != std::string::npos) {
    strategy = strategy.substr(0, dash);
  }
  if (c.strategy == Strategy::kSelfIncremental) strategy = "incr";
  if (c.level2_every > 0) strategy += "_l2";
  if (c.hot_bytes > 0) strategy += "_pd";
  return strategy + "_" + point + "_g" + std::to_string(group);
}

class AsyncFailureMatrix
    : public ::testing::TestWithParam<std::tuple<AsyncCase, int /*group*/>> {};

TEST_P(AsyncFailureMatrix, KillDuringAsyncPipelineStep) {
  const auto& [c, group_size] = GetParam();
  const int world = 2 * group_size;
  skt::testing::MiniCluster mc(world, 2);

  storage::SnapshotVault vault;
  CkptAppConfig config;
  config.strategy = c.strategy;
  config.group_size = group_size;
  config.iterations = 4;
  config.data_bytes = 2048;
  config.vault = &vault;
  config.device = storage::ssd_profile();
  config.mode = CommitMode::kAsync;
  config.level2_every = c.level2_every;
  config.hot_bytes = c.hot_bytes;

  sim::FailureInjector injector;
  const int trigger = c.trigger < 0 ? 1 : c.trigger;
  injector.add_rule({.point = c.failpoint,
                     .world_rank = trigger,
                     .hit = 2,
                     .repeat = false,
                     .victim_world_rank = 1});

  mpi::JobLauncher launcher(mc.cluster, &injector,
                            {.max_restarts = 3, .ranks_per_node = 1});
  const auto result = launcher.run(world, [&](mpi::Comm& w) { checkpointed_app(w, config); });

  EXPECT_EQ(injector.triggered_count(), 1u) << "failpoint never fired: " << c.failpoint;
  if (c.recoverable) {
    EXPECT_TRUE(result.success) << result.failure;
    EXPECT_EQ(result.restarts, 1);
    EXPECT_GE(result.final_ranklist[1], world);
    EXPECT_GT(result.times.count("recover"), 0u);
    expect_postmortem(result, c.strategy, group_size);
  } else {
    EXPECT_FALSE(result.success);
    EXPECT_FALSE(result.postmortems.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SelfAsync, AsyncFailureMatrix,
    ::testing::Combine(
        ::testing::Values(AsyncCase{Strategy::kSelf, "ckpt.async_stage", true},
                          AsyncCase{Strategy::kSelf, "ckpt.async_begin", true},
                          AsyncCase{Strategy::kSelf, "ckpt.async_encode_begin", true},
                          AsyncCase{Strategy::kSelf, "ckpt.async_encode_done", true},
                          AsyncCase{Strategy::kSelf, "ckpt.async_sealed", true},
                          AsyncCase{Strategy::kSelf, "ckpt.async_mid_flush", true},
                          AsyncCase{Strategy::kSelf, "ckpt.async_flushed", true}),
        ::testing::Values(2, 4)),
    async_case_name);

INSTANTIATE_TEST_SUITE_P(
    IncrementalAsync, AsyncFailureMatrix,
    ::testing::Combine(
        ::testing::Values(AsyncCase{Strategy::kSelfIncremental, "ckpt.async_stage", true},
                          AsyncCase{Strategy::kSelfIncremental, "ckpt.async_encode_done", true},
                          AsyncCase{Strategy::kSelfIncremental, "ckpt.async_mid_flush", true},
                          AsyncCase{Strategy::kSelfIncremental, "ckpt.async_flushed", true}),
        ::testing::Values(4)),
    async_case_name);

INSTANTIATE_TEST_SUITE_P(
    DoubleAsync, AsyncFailureMatrix,
    ::testing::Combine(
        ::testing::Values(AsyncCase{Strategy::kDouble, "ckpt.async_begin", true},
                          AsyncCase{Strategy::kDouble, "ckpt.async_mid_update", true},
                          AsyncCase{Strategy::kDouble, "ckpt.async_encode_done", true},
                          AsyncCase{Strategy::kDouble, "ckpt.async_flushed", true}),
        ::testing::Values(4)),
    async_case_name);

INSTANTIATE_TEST_SUITE_P(
    SingleAsync, AsyncFailureMatrix,
    ::testing::Combine(
        ::testing::Values(
            // The update-window semantics survive the move to the worker:
            // outside the window recoverable, inside it unrecoverable
            // (survivor-triggered, as in the sync matrix).
            AsyncCase{Strategy::kSingle, "ckpt.async_begin", true},
            AsyncCase{Strategy::kSingle, "ckpt.async_mid_update", false, 0},
            AsyncCase{Strategy::kSingle, "ckpt.async_encode_done", false, 0}),
        ::testing::Values(4)),
    async_case_name);

INSTANTIATE_TEST_SUITE_P(
    BlcrAsync, AsyncFailureMatrix,
    ::testing::Combine(
        ::testing::Values(AsyncCase{Strategy::kBlcr, "ckpt.async_begin", true},
                          AsyncCase{Strategy::kBlcr, "ckpt.async_mid_update", true},
                          AsyncCase{Strategy::kBlcr, "ckpt.async_flushed", true}),
        ::testing::Values(2)),
    async_case_name);

// Partially-dirty staging under failure: the app annotates a 512-byte hot
// prefix (of 2048), so the staged copy S refreshed only the hot stripes
// and the worker's encode was a clean-majority delta fold when the victim
// died mid commit_staged. Recovery reads (S, D) — the cold stripes of S
// (carried, not recopied) and the delta-updated parity must still agree
// bit-for-bit, and the rebuilt rank's cold region must reproduce the
// iteration-0 pattern end-to-end.
INSTANTIATE_TEST_SUITE_P(
    PartialDirtyAsync, AsyncFailureMatrix,
    ::testing::Combine(
        ::testing::Values(
            AsyncCase{Strategy::kSelf, "ckpt.async_stage", true, -1, 0, 512},
            AsyncCase{Strategy::kSelf, "ckpt.async_encode_done", true, -1, 0, 512},
            AsyncCase{Strategy::kSelf, "ckpt.async_mid_flush", true, -1, 0, 512},
            AsyncCase{Strategy::kSelfIncremental, "ckpt.async_encode_done", true, -1, 0, 512},
            AsyncCase{Strategy::kSelfIncremental, "ckpt.async_mid_flush", true, -1, 0, 512},
            AsyncCase{Strategy::kDouble, "ckpt.async_mid_update", true, -1, 0, 512},
            AsyncCase{Strategy::kDouble, "ckpt.async_encode_done", true, -1, 0, 512}),
        ::testing::Values(4)),
    async_case_name);

INSTANTIATE_TEST_SUITE_P(
    MultiLevelAsync, AsyncFailureMatrix,
    ::testing::Combine(
        ::testing::Values(
            AsyncCase{Strategy::kSelf, "ckpt.async_sealed", true, -1, 2},
            AsyncCase{Strategy::kSelf, "ckpt.async_l2_flush", true, -1, 2}),
        ::testing::Values(4)),
    async_case_name);

// Dual-parity self-checkpoint (the RAID-6-style extension): TWO nodes of
// the SAME group die in the same instant, at every protocol step, and the
// degree-2 code still recovers end-to-end.
class DualParityMatrix : public ::testing::TestWithParam<const char*> {};

TEST_P(DualParityMatrix, SimultaneousDoubleKillRecovers) {
  const char* point = GetParam();
  skt::testing::MiniCluster mc(5, 3);
  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.parity_degree = 2;
  config.group_size = 5;
  config.iterations = 4;
  config.data_bytes = 2000;

  sim::FailureInjector injector;
  // Both rules fire at the same failpoint visit; whichever rank arrives
  // first kills its node, the other dies at the same point of the same
  // commit — two blank members of one group on restart.
  injector.add_rule({.point = point, .world_rank = 1, .hit = 2, .repeat = false});
  injector.add_rule({.point = point, .world_rank = 3, .hit = 2, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 4});
  const auto result = launcher.run(5, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  EXPECT_TRUE(result.success) << result.failure;
  EXPECT_GE(injector.triggered_count(), 1u);
  // Both victims may die in one cycle or across two (the second rank can
  // be pre-empted before reaching the failpoint); either way <= 2 cycles.
  EXPECT_LE(result.restarts, 2);
  // One postmortem per incident, every one naming its victims.
  ASSERT_EQ(result.postmortems.size(), static_cast<std::size_t>(result.restarts));
  for (const telemetry::Postmortem& pm : result.postmortems) {
    EXPECT_FALSE(pm.lost_ranks.empty());
    EXPECT_TRUE(pm.recovered);
  }
}

INSTANTIATE_TEST_SUITE_P(Points, DualParityMatrix,
                         ::testing::Values("app.work", "ckpt.copy_a2", "ckpt.encode_done",
                                           "ckpt.sealed", "ckpt.mid_flush", "ckpt.flushed"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

// Correlated failures: SEVERAL members of one group die in the SAME
// instant (shared PDU, blown breaker — one FailureRule with
// extra_victims), at a protocol step of choice. RS(k, m) groups must
// absorb up to m such deaths in a single recovery cycle; m + 1 must abort
// cleanly with the group-loss diagnosis, never restore corrupt data.
struct CorrelatedCase {
  const char* name;
  Strategy strategy;
  const char* failpoint;
  int group_size;
  int parity;
  std::vector<int> victims;  ///< world ranks, ascending, all in group 0
  bool recoverable;
  CommitMode mode = CommitMode::kSync;
};

class CorrelatedKillMatrix : public ::testing::TestWithParam<CorrelatedCase> {};

TEST_P(CorrelatedKillMatrix, ConcurrentGroupDeathsInOneInstant) {
  const CorrelatedCase& c = GetParam();
  const int world = 2 * c.group_size;  // a second group keeps cross-group epoch agreement honest
  skt::testing::MiniCluster mc(world, c.group_size);

  CkptAppConfig config;
  config.strategy = c.strategy;
  config.group_size = c.group_size;
  config.parity_degree = c.parity;
  config.iterations = 4;
  config.data_bytes = 2048;
  config.mode = c.mode;

  sim::FailureInjector injector;
  injector.add_rule(
      {.point = c.failpoint,
       .world_rank = c.victims.front(),
       .hit = 2,
       .repeat = false,
       .victim_world_rank = c.victims.front(),
       .extra_victims = {c.victims.begin() + 1, c.victims.end()}});

  mpi::JobLauncher launcher(mc.cluster, &injector,
                            {.max_restarts = 3, .ranks_per_node = 1});
  const auto result = launcher.run(world, [&](mpi::Comm& w) { checkpointed_app(w, config); });

  EXPECT_EQ(injector.triggered_count(), 1u) << "failpoint never fired: " << c.failpoint;
  if (c.recoverable) {
    EXPECT_TRUE(result.success) << result.failure;
    // ONE recovery cycle absorbs the whole correlated loss.
    EXPECT_EQ(result.restarts, 1);
    ASSERT_EQ(result.postmortems.size(), 1u);
    const telemetry::Postmortem& pm = result.postmortems.front();
    EXPECT_EQ(pm.lost_ranks, c.victims);
    EXPECT_TRUE(pm.recovered);
    EXPECT_EQ(pm.geometry.parity_count, c.parity);
    // One rebuild record per lost member, each naming the full
    // concurrently-lost set it was decoded around.
    ASSERT_EQ(pm.rebuilds.size(), c.victims.size());
    for (const telemetry::RebuildInfo& rb : pm.rebuilds) {
      EXPECT_EQ(rb.concurrent_lost, c.victims);
      EXPECT_GT(rb.stripe_count, 0u);
    }
  } else {
    EXPECT_FALSE(result.success);
    // The m+1 overload is DIAGNOSED — a clean abort naming the group
    // overload in the incident record — never a silent mis-restore.
    bool diagnosed = false;
    for (const telemetry::Postmortem& pm : result.postmortems) {
      if (pm.reason.find("members lost in one group") != std::string::npos) diagnosed = true;
    }
    EXPECT_TRUE(diagnosed) << result.failure;
    EXPECT_FALSE(result.postmortems.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CorrelatedKillMatrix,
    ::testing::Values(
        // RS(4, 2): two concurrent deaths in one group, swept over the
        // commit state machine.
        CorrelatedCase{"rs4p2_work", Strategy::kSelf, "app.work", 4, 2, {1, 2}, true},
        CorrelatedCase{"rs4p2_sealed", Strategy::kSelf, "ckpt.sealed", 4, 2, {1, 2}, true},
        CorrelatedCase{"rs4p2_mid_flush", Strategy::kSelf, "ckpt.mid_flush", 4, 2, {1, 2},
                       true},
        CorrelatedCase{
            "rs4p2_encode_done", Strategy::kSelf, "ckpt.encode_done", 4, 2, {0, 3}, true},
        // RS(8, 3): three concurrent deaths, adjacent and spread picks.
        CorrelatedCase{
            "rs8p3_sealed", Strategy::kSelf, "ckpt.sealed", 8, 3, {1, 2, 3}, true},
        CorrelatedCase{
            "rs8p3_mid_flush", Strategy::kSelf, "ckpt.mid_flush", 8, 3, {1, 4, 6}, true},
        // The other group-coded strategies ride the same substrate.
        CorrelatedCase{
            "double_rs4p2", Strategy::kDouble, "ckpt.flushed", 4, 2, {1, 2}, true},
        CorrelatedCase{"incr_rs4p2_async", Strategy::kSelfIncremental,
                       "ckpt.async_encode_done", 4, 2, {1, 2}, true,
                       CommitMode::kAsync},
        // Negative rows: m + 1 concurrent deaths exceed the code.
        CorrelatedCase{
            "rs4p2_three_dead", Strategy::kSelf, "ckpt.sealed", 4, 2, {1, 2, 3}, false},
        CorrelatedCase{"rs8p3_four_dead", Strategy::kSelf, "ckpt.mid_flush", 8, 3,
                       {1, 2, 5, 7}, false}),
    [](const auto& info) { return std::string(info.param.name); });

// Whole-rack power loss: with two nodes per rack, rank 1's rack failure
// takes nodes {0, 1} — two members of group 0 — in one instant. RS(4, 2)
// absorbs the rack.
TEST(CorrelatedKillExtra, WholeRackFailureRecovered) {
  skt::testing::MiniCluster mc(8, 4, {}, /*nodes_per_rack=*/2);
  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.group_size = 4;
  config.parity_degree = 2;
  config.iterations = 4;
  config.data_bytes = 2048;

  sim::FailureInjector injector;
  injector.add_rule(
      {.point = "ckpt.sealed", .world_rank = 1, .hit = 2, .repeat = false, .kill_rack = true});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 3});
  const auto result = launcher.run(8, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  EXPECT_TRUE(result.success) << result.failure;
  EXPECT_EQ(result.restarts, 1);
  ASSERT_EQ(result.postmortems.size(), 1u);
  EXPECT_EQ(result.postmortems.front().lost_ranks, (std::vector<int>{0, 1}));
}

// ...and a rack loss of m + 1 members is diagnosed, not mis-restored:
// three nodes per rack puts {0, 1, 2} of a 4-member RS(4, 2) group on one
// PDU.
TEST(CorrelatedKillExtra, WholeRackBeyondParityAbortsCleanly) {
  skt::testing::MiniCluster mc(8, 4, {}, /*nodes_per_rack=*/3);
  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.group_size = 4;
  config.parity_degree = 2;
  config.iterations = 4;

  sim::FailureInjector injector;
  injector.add_rule(
      {.point = "ckpt.sealed", .world_rank = 1, .hit = 2, .repeat = false, .kill_rack = true});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 3});
  const auto result = launcher.run(8, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  EXPECT_FALSE(result.success);
  bool diagnosed = false;
  for (const telemetry::Postmortem& pm : result.postmortems) {
    if (pm.reason.find("members lost in one group") != std::string::npos) diagnosed = true;
  }
  EXPECT_TRUE(diagnosed) << result.failure;
}

// Scrub-under-fire: the background scrubber is live (and mid-run repairs
// an injected silent bit flip — the harness fails the job if it doesn't)
// while a correlated two-death kill lands. The repair must neither mask
// nor corrupt the recovery, and the scrub.* counters must surface in the
// incident's postmortem.
class ScrubUnderFire : public ::testing::TestWithParam<const char*> {};

TEST_P(ScrubUnderFire, RepairsBitFlipThenSurvivesCorrelatedKill) {
  skt::testing::MiniCluster mc(8, 4);
  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.group_size = 4;
  config.parity_degree = 2;
  config.iterations = 5;
  config.data_bytes = 2048;
  config.scrub_interval = 0.0005;
  config.scrub_bitflip = true;

  sim::FailureInjector injector;
  // Fires on the FOURTH visit, after the iteration-2 bit-flip drill.
  injector.add_rule({.point = GetParam(),
                     .world_rank = 1,
                     .hit = 4,
                     .repeat = false,
                     .victim_world_rank = 1,
                     .extra_victims = {2}});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 3});
  const auto result = launcher.run(8, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  EXPECT_TRUE(result.success) << result.failure;
  EXPECT_EQ(result.restarts, 1);
  ASSERT_EQ(result.postmortems.size(), 1u);
  const telemetry::Postmortem& pm = result.postmortems.front();
  EXPECT_EQ(pm.lost_ranks, (std::vector<int>{1, 2}));
  EXPECT_TRUE(pm.recovered);
  // The incident record carries the scrub evidence: passes ran, the flip
  // was caught, and every detection was repaired (mirror-backed region).
  EXPECT_GE(pm.scrub_passes, 1u);
  EXPECT_GE(pm.scrub_corruption_detected, 1u);
  EXPECT_GE(pm.scrub_repaired, 1u);
}

INSTANTIATE_TEST_SUITE_P(Points, ScrubUnderFire,
                         ::testing::Values("ckpt.sealed", "ckpt.mid_flush", "app.work"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

// The kill matrix through a NAMESPACED session: the same mid-commit node
// loss, but the job runs as a StoreService tenant, so every segment key
// the recovery walks is "ns/<tenant>/"-prefixed and owner-tagged, and the
// replacement rank's rebuild must re-create its stripes under the SAME
// namespace (a collision or a bare key would fail loudly).
class TenantFailureMatrix : public ::testing::TestWithParam<const char*> {};

TEST_P(TenantFailureMatrix, KillDuringCommitOfTenantSession) {
  skt::testing::MiniCluster mc(4, 2);
  StoreService service({.capacity_bytes = 64u << 20});
  service.register_tenant({.name = "matrix", .quota_bytes = 32u << 20});

  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.group_size = 4;
  config.iterations = 4;
  config.data_bytes = 2048;
  config.service = &service;
  config.tenant = "matrix";
  if (std::string(GetParam()).find("async") != std::string::npos) {
    config.mode = CommitMode::kAsync;
  }

  sim::FailureInjector injector;
  injector.add_rule({.point = GetParam(), .world_rank = 1, .hit = 2, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 3});
  const auto result = launcher.run(4, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  EXPECT_TRUE(result.success) << result.failure;
  EXPECT_EQ(result.restarts, 1);
  // Every surviving stripe belongs to the tenant's namespace, and the
  // whole-job lease was handed back on teardown.
  const std::string ns = StoreService::namespace_prefix("matrix");
  std::size_t tenant_segments = 0;
  for (int n = 0; n < mc.cluster.total_nodes(); ++n) {
    tenant_segments += mc.cluster.node(n).store().segments_of(ns).size();
    EXPECT_EQ(mc.cluster.node(n).store().segments_of(ns).size() == 0
                  ? 0u
                  : mc.cluster.node(n).store().segment_count(),
              mc.cluster.node(n).store().segments_of(ns).size())
        << "node " << n << " holds segments outside the tenant namespace";
  }
  EXPECT_GT(tenant_segments, 0u);
  EXPECT_EQ(service.bytes_in_use(), 0u);
  EXPECT_GE(service.tenant_stats("matrix").commits, 4u);
}

INSTANTIATE_TEST_SUITE_P(Points, TenantFailureMatrix,
                         ::testing::Values("ckpt.mid_flush", "ckpt.sealed",
                                           "ckpt.async_mid_flush"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

// Two failures in ONE group exceed the single-erasure code: unrecoverable
// for self-checkpoint...
TEST(FailureMatrixExtra, TwoFailuresInOneGroupUnrecoverable) {
  skt::testing::MiniCluster mc(4, 4);
  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.group_size = 4;
  config.iterations = 4;

  sim::FailureInjector injector;
  // Both failures hit before the next commit completes, so the rebuilt
  // checkpoint never exists: rank 1 dies at iteration 2's commit, and the
  // restarted run kills rank 2 immediately during restore.
  injector.add_rule({.point = "ckpt.begin", .world_rank = 1, .hit = 2, .repeat = false});
  injector.add_rule({.point = "ckpt.restore", .world_rank = 2, .hit = 1, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 4});
  const auto result = launcher.run(4, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  EXPECT_FALSE(result.success);
}

// ...but two failures in DIFFERENT groups are fine (each group rebuilds
// its own member).
TEST(FailureMatrixExtra, TwoFailuresInDifferentGroupsRecover) {
  skt::testing::MiniCluster mc(8, 4);
  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.group_size = 4;  // groups {0..3} and {4..7}
  config.iterations = 4;

  sim::FailureInjector injector;
  injector.add_rule({.point = "ckpt.begin", .world_rank = 1, .hit = 2, .repeat = false});
  injector.add_rule({.point = "ckpt.restore", .world_rank = 6, .hit = 1, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 4});
  const auto result = launcher.run(8, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  EXPECT_TRUE(result.success) << result.failure;
  EXPECT_EQ(result.restarts, 2);
}

// The SHARDED durable tier under fire: the level-2 vault is spread across
// the job's own nodes (one shard each), so a node loss takes a shard of
// everyone's disk images with it. Two members of group 0 — both shard
// hosts, on non-adjacent placement slots so every extent keeps a replica
// on a surviving shard — die together mid-L2-flush. Parity 1 cannot
// absorb two losses, so the restart MUST restore out of the vault, and
// the dead shards' extents are only reachable because the launcher wiped
// the dead shards, swapped in spares, and re-homed every extent from the
// surviving replica copies before relaunch. A second correlated kill at
// the end of the relaunched run then forces ANOTHER vault restore, this
// time served entirely by the resharded tier — the harness's final
// verification proves the restored state is bit-identical.
struct ShardedVaultCase {
  const char* failpoint;  // "ckpt.l2_flush" (sync) / "ckpt.async_l2_flush" (async)
  CommitMode mode;
};

class ShardedVaultFailureMatrix : public ::testing::TestWithParam<ShardedVaultCase> {};

TEST_P(ShardedVaultFailureMatrix, ShardNodeDiesDuringL2FlushThenReshardServesRestore) {
  const ShardedVaultCase c = GetParam();
  const int world = 8;
  skt::testing::MiniCluster mc(world, 4);

  storage::ShardedVault vault(
      {.nodes = {0, 1, 2, 3, 4, 5, 6, 7}, .extent_bytes = 256});
  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.group_size = 4;  // groups {0..3} and {4..7}
  config.parity_degree = 1;
  config.iterations = 6;
  config.data_bytes = 2048;
  config.vault = &vault;
  config.device = storage::ssd_profile();
  config.mode = c.mode;
  config.level2_every = 2;  // L2 flushes after commits 2, 4, 6

  sim::FailureInjector injector;
  // Incident 1: ranks 1 and 3 (nodes 1 and 3 — shard slots 1 and 3, whose
  // replica successors 2 and 4 both survive) die on the SECOND L2 flush,
  // so epoch 2 is safely on the vault and the kill lands mid-epoch-4.
  injector.add_rule({.point = c.failpoint,
                     .world_rank = 1,
                     .hit = 2,
                     .repeat = false,
                     .victim_world_rank = 1,
                     .extra_victims = {3}});
  // Incident 2: "app.done" is reached only by a COMPLETED run, so this
  // fires exactly once the resharded job finished its loop. Two losses in
  // group 1 again exceed parity 1, forcing the final restart to restore
  // epoch 6 from the vault — every extent it reads lives where the
  // post-reshard placement map says.
  injector.add_rule({.point = "app.done",
                     .world_rank = 5,
                     .hit = 1,
                     .repeat = false,
                     .victim_world_rank = 5,
                     .extra_victims = {7}});

  mpi::JobLauncher launcher(
      mc.cluster, &injector,
      {.max_restarts = 3, .ranks_per_node = 1, .sharded_vault = &vault});
  const auto result = launcher.run(world, [&](mpi::Comm& w) { checkpointed_app(w, config); });

  EXPECT_EQ(injector.triggered_count(), 2u);
  EXPECT_TRUE(result.success) << result.failure;
  EXPECT_EQ(result.restarts, 2);
  ASSERT_EQ(result.postmortems.size(), 2u);
  EXPECT_EQ(result.postmortems[0].lost_ranks, (std::vector<int>{1, 3}));
  EXPECT_EQ(result.postmortems[1].lost_ranks, (std::vector<int>{5, 7}));
  EXPECT_TRUE(result.postmortems[0].recovered);
  EXPECT_TRUE(result.postmortems[1].recovered);
  // Every dead shard host was swapped for a spare that took its slot.
  for (const int dead : {1, 3, 5, 7}) {
    EXPECT_FALSE(vault.has_shard(dead)) << "node " << dead;
    EXPECT_GE(result.final_ranklist[static_cast<std::size_t>(dead)], world);
  }
  EXPECT_EQ(vault.shard_count(), 8u);
  const storage::ShardedVaultStats vs = vault.stats();
  EXPECT_GE(vs.rebalances, 4u);  // one replace_node per dead shard host
  EXPECT_GT(vs.extents_rehomed, 0u);
  EXPECT_EQ(vs.extents_lost, 0u) << "replica invariant violated during reshard";
}

INSTANTIATE_TEST_SUITE_P(
    Points, ShardedVaultFailureMatrix,
    ::testing::Values(ShardedVaultCase{"ckpt.l2_flush", CommitMode::kSync},
                      ShardedVaultCase{"ckpt.async_l2_flush", CommitMode::kAsync}),
    [](const auto& info) {
      std::string name = info.param.failpoint;
      for (char& ch : name) {
        if (ch == '.') ch = '_';
      }
      return name;
    });

// Repeated failures across different epochs: the system survives as many
// sequential single failures as there are spares.
TEST(FailureMatrixExtra, ThreeSequentialFailures) {
  skt::testing::MiniCluster mc(4, 3);
  CkptAppConfig config;
  config.strategy = Strategy::kSelf;
  config.group_size = 4;
  config.iterations = 6;

  sim::FailureInjector injector;
  injector.add_rule({.point = "ckpt.mid_flush", .world_rank = 0, .hit = 2, .repeat = false});
  injector.add_rule({.point = "ckpt.encode_done", .world_rank = 2, .hit = 4, .repeat = false});
  injector.add_rule({.point = "app.work", .world_rank = 3, .hit = 6, .repeat = false});

  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 5});
  const auto result = launcher.run(4, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  EXPECT_TRUE(result.success) << result.failure;
  EXPECT_EQ(result.restarts, 3);
  // Three incidents, three postmortems, each naming its own victim.
  ASSERT_EQ(result.postmortems.size(), 3u);
  EXPECT_EQ(result.postmortems[0].lost_ranks, std::vector<int>{0});
  EXPECT_EQ(result.postmortems[1].lost_ranks, std::vector<int>{2});
  EXPECT_EQ(result.postmortems[2].lost_ranks, std::vector<int>{3});
  for (const telemetry::Postmortem& pm : result.postmortems) {
    EXPECT_TRUE(pm.recovered);
    EXPECT_FALSE(pm.rebuilds.empty());
  }
}

}  // namespace
}  // namespace skt::ckpt
