// Property tests for the vectorized kernel layer: every kernel must be
// BIT-IDENTICAL across dispatch tiers (the AVX2 lane is an optimization,
// never a semantic change), at every size and alignment a codec can throw
// at it — sub-lane tails, exact lanes, odd offsets into oversized
// allocations. Plus the DirtyTracker unit contract and the
// encode_delta == encode equivalence the dirty-stripe commits rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "ckpt/dirty_tracker.hpp"
#include "encoding/dual_parity.hpp"
#include "encoding/gf256.hpp"
#include "encoding/group_codec.hpp"
#include "encoding/kernels.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace skt::enc {
namespace {

using skt::testing::MiniCluster;

std::vector<std::byte> random_bytes(std::size_t size, std::uint64_t seed) {
  std::vector<std::byte> out(size);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < size; i += 8) {
    const std::uint64_t v = rng.next();
    std::memcpy(out.data() + i, &v, std::min<std::size_t>(8, size - i));
  }
  return out;
}

/// Pins a dispatch tier for one scope; restores the previous tier on exit.
struct TierGuard {
  explicit TierGuard(kernels::Tier t) : prev(kernels::force_tier(t)) {}
  ~TierGuard() { kernels::force_tier(prev); }
  kernels::Tier prev;
};

bool avx2_available() {
  const TierGuard guard(kernels::Tier::kAvx2);
  return kernels::active_tier() == kernels::Tier::kAvx2;
}

// Sizes crossing every code path: sub-lane, one lane (32B vectors, 64B
// unrolled blocks), multi-lane, and ragged tails past each.
constexpr std::size_t kSizes[] = {1,  2,  3,  7,  8,  15, 16,  31,  32,  33,
                                  63, 64, 65, 95, 96, 97, 255, 256, 1037};
constexpr std::size_t kOffsets[] = {0, 1, 3, 17};  // misalign inside a big buffer

class KernelTierEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!avx2_available()) {
      GTEST_SKIP() << "AVX2 tier not compiled in or not supported on this CPU";
    }
  }
};

TEST_F(KernelTierEquivalence, XorAcc) {
  for (const std::size_t size : kSizes) {
    for (const std::size_t off : kOffsets) {
      const auto acc0 = random_bytes(size + off, 1000 + size);
      const auto in = random_bytes(size + off, 2000 + size);
      auto scalar = acc0;
      auto simd = acc0;
      {
        const TierGuard g(kernels::Tier::kScalar);
        kernels::xor_acc(std::span(scalar).subspan(off), std::span<const std::byte>(in).subspan(off));
      }
      {
        const TierGuard g(kernels::Tier::kAvx2);
        kernels::xor_acc(std::span(simd).subspan(off), std::span<const std::byte>(in).subspan(off));
      }
      ASSERT_EQ(scalar, simd) << "size=" << size << " off=" << off;
      // Sanity against the definition, not just cross-tier agreement.
      for (std::size_t i = off; i < size + off; ++i) {
        ASSERT_EQ(scalar[i], acc0[i] ^ in[i]) << "size=" << size << " i=" << i;
      }
    }
  }
}

TEST_F(KernelTierEquivalence, XorDelta) {
  for (const std::size_t size : kSizes) {
    for (const std::size_t off : kOffsets) {
      const auto a = random_bytes(size + off, 3000 + size);
      const auto b = random_bytes(size + off, 4000 + size);
      std::vector<std::byte> scalar(size + off), simd(size + off);
      {
        const TierGuard g(kernels::Tier::kScalar);
        kernels::xor_delta(std::span(scalar).subspan(off),
                           std::span<const std::byte>(a).subspan(off),
                           std::span<const std::byte>(b).subspan(off));
      }
      {
        const TierGuard g(kernels::Tier::kAvx2);
        kernels::xor_delta(std::span(simd).subspan(off),
                           std::span<const std::byte>(a).subspan(off),
                           std::span<const std::byte>(b).subspan(off));
      }
      ASSERT_EQ(scalar, simd) << "size=" << size << " off=" << off;
    }
  }
}

TEST_F(KernelTierEquivalence, XorDeltaAliasingOut) {
  // The staging path computes diffs in place: out aliases a (and, for
  // symmetry, b). Both tiers must tolerate it.
  for (const std::size_t size : {std::size_t{31}, std::size_t{64}, std::size_t{97}}) {
    const auto a0 = random_bytes(size, 71);
    const auto b = random_bytes(size, 72);
    for (const kernels::Tier tier : {kernels::Tier::kScalar, kernels::Tier::kAvx2}) {
      const TierGuard g(tier);
      auto out_a = a0;  // out == a
      kernels::xor_delta(out_a, out_a, b);
      auto out_b = b;  // out == b
      kernels::xor_delta(out_b, a0, out_b);
      for (std::size_t i = 0; i < size; ++i) {
        ASSERT_EQ(out_a[i], a0[i] ^ b[i]) << "tier=" << to_string(tier) << " i=" << i;
        ASSERT_EQ(out_b[i], a0[i] ^ b[i]) << "tier=" << to_string(tier) << " i=" << i;
      }
    }
  }
}

TEST_F(KernelTierEquivalence, SumAccAndSub) {
  // Element-wise adds happen in the same order in both tiers, so the
  // comparison is exact, not tolerance-based.
  constexpr std::size_t kCounts[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 130};
  for (const std::size_t n : kCounts) {
    util::Xoshiro256 rng(500 + n);
    std::vector<double> acc0(n), in(n);
    for (std::size_t i = 0; i < n; ++i) {
      acc0[i] = static_cast<double>(static_cast<std::int64_t>(rng.next() >> 16)) * 1e-5;
      in[i] = static_cast<double>(static_cast<std::int64_t>(rng.next() >> 16)) * 1e-7;
    }
    auto s_acc = acc0;
    auto v_acc = acc0;
    {
      const TierGuard g(kernels::Tier::kScalar);
      kernels::sum_acc(s_acc, in);
      kernels::sum_sub(s_acc, in);
      kernels::sum_acc(s_acc, in);
    }
    {
      const TierGuard g(kernels::Tier::kAvx2);
      kernels::sum_acc(v_acc, in);
      kernels::sum_sub(v_acc, in);
      kernels::sum_acc(v_acc, in);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(s_acc[i], v_acc[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(KernelTierEquivalence, Gf256MulAcc) {
  const std::uint8_t coeffs[] = {0, 1, 2, 3, 0x1d, 0x53, 0x80, 0xfe, 0xff};
  for (const std::uint8_t coeff : coeffs) {
    for (const std::size_t size : kSizes) {
      for (const std::size_t off : {std::size_t{0}, std::size_t{5}}) {
        const auto out0 = random_bytes(size + off, 6000 + size + coeff);
        const auto in = random_bytes(size + off, 7000 + size + coeff);
        auto scalar = out0;
        auto simd = out0;
        const auto u8 = [](std::vector<std::byte>& v, std::size_t skip) {
          return std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(v.data()) + skip,
                                         v.size() - skip);
        };
        const auto cu8 = [](const std::vector<std::byte>& v, std::size_t skip) {
          return std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(v.data()) + skip, v.size() - skip);
        };
        {
          const TierGuard g(kernels::Tier::kScalar);
          kernels::gf256_mul_acc(u8(scalar, off), cu8(in, off), coeff);
        }
        {
          const TierGuard g(kernels::Tier::kAvx2);
          kernels::gf256_mul_acc(u8(simd, off), cu8(in, off), coeff);
        }
        ASSERT_EQ(scalar, simd) << "coeff=" << int(coeff) << " size=" << size << " off=" << off;
        // And against the field-arithmetic reference.
        for (std::size_t i = off; i < size + off; ++i) {
          const auto expect = static_cast<std::uint8_t>(
              std::to_integer<std::uint8_t>(out0[i]) ^
              gf256::mul(coeff, std::to_integer<std::uint8_t>(in[i])));
          ASSERT_EQ(std::to_integer<std::uint8_t>(scalar[i]), expect)
              << "coeff=" << int(coeff) << " i=" << i;
        }
      }
    }
  }
}

TEST(Kernels, ForceTierReturnsPrevious) {
  const kernels::Tier original = kernels::active_tier();
  const kernels::Tier prev = kernels::force_tier(kernels::Tier::kScalar);
  EXPECT_EQ(prev, original);
  EXPECT_EQ(kernels::active_tier(), kernels::Tier::kScalar);
  kernels::force_tier(original);
  EXPECT_EQ(kernels::active_tier(), original);
}

TEST(Kernels, ScalarTierAlwaysAvailable) {
  const TierGuard g(kernels::Tier::kScalar);
  EXPECT_EQ(kernels::active_tier(), kernels::Tier::kScalar);
  std::vector<std::byte> a(17, std::byte{0x5a});
  const std::vector<std::byte> b(17, std::byte{0xa5});
  kernels::xor_acc(a, b);
  EXPECT_TRUE(std::all_of(a.begin(), a.end(), [](std::byte v) { return v == std::byte{0xff}; }));
}

}  // namespace
}  // namespace skt::enc

// ----------------------------------------------------------------------
// DirtyTracker: the shared annotation contract every protocol now builds
// its staging and delta-encode decisions on.
namespace skt::ckpt {
namespace {

TEST(DirtyTracker, UnannotatedReportsAllDirty) {
  DirtyTracker t;
  t.reset(/*data=*/1000, /*user=*/64, /*stripe=*/256, /*count=*/5);
  EXPECT_FALSE(t.annotated());
  const auto eff = t.effective();
  EXPECT_EQ(eff.size(), 5u);
  EXPECT_TRUE(std::all_of(eff.begin(), eff.end(), [](std::uint8_t f) { return f == 1; }));
  EXPECT_EQ(t.dirty_stripes(), 5u);
  EXPECT_DOUBLE_EQ(t.dirty_fraction(), 1.0);
  // Raw flags stay zero — the fallback lives in effective(), not flags().
  EXPECT_TRUE(std::all_of(t.flags().begin(), t.flags().end(),
                          [](std::uint8_t f) { return f == 0; }));
}

TEST(DirtyTracker, MarkFlagsExactlyTheCoveredStripes) {
  DirtyTracker t;
  t.reset(1000, 64, 256, 5);
  t.mark(300, 10);  // inside stripe 1
  EXPECT_TRUE(t.annotated());
  const auto eff = t.effective();
  EXPECT_EQ(eff, (std::vector<std::uint8_t>{0, 1, 0, 0, 0}));
  t.mark(255, 2);  // straddles stripes 0 and 1
  EXPECT_EQ(t.effective(), (std::vector<std::uint8_t>{1, 1, 0, 0, 0}));
  EXPECT_EQ(t.dirty_stripes(), 2u);
  EXPECT_EQ(t.dirty_bytes(), 512u);
  EXPECT_DOUBLE_EQ(t.dirty_fraction(), 2.0 / 5.0);
}

TEST(DirtyTracker, MarkBoundsAreLoud) {
  DirtyTracker t;
  t.reset(1000, 64, 256, 5);
  EXPECT_THROW(t.mark(1000, 1), std::out_of_range);
  EXPECT_THROW(t.mark(995, 10), std::out_of_range);
  t.mark(999, 0);  // len == 0 is a no-op, not an annotation
  EXPECT_FALSE(t.annotated());
  t.mark(999, 1);  // last valid byte
  EXPECT_TRUE(t.annotated());
}

TEST(DirtyTracker, ResetRejectsUncoveredImage) {
  // The loud-coverage invariant that replaced the incremental tracker's
  // silent tail clamp: geometry that cannot hold data + user is an error
  // at reset() time, so no mark can ever fall off the end.
  DirtyTracker t;
  EXPECT_THROW(t.reset(1000, 64, 256, 4), std::invalid_argument);  // 1024 < 1064
  EXPECT_THROW(t.reset(1, 1, 0, 4), std::invalid_argument);
  EXPECT_THROW(t.reset(1, 1, 256, 0), std::invalid_argument);
  t.reset(1000, 24, 256, 4);  // exactly covered
  EXPECT_NO_THROW(t.mark(999, 1));
  EXPECT_NO_THROW(t.mark_user_tail());
}

TEST(DirtyTracker, UserTailMarksButPreservesAnnotationState) {
  DirtyTracker t;
  t.reset(1000, 64, 256, 5);
  t.mark_user_tail();
  // Tail marking is a protocol invariant, not an application opt-in: the
  // tracker must stay in all-dirty fallback mode.
  EXPECT_FALSE(t.annotated());
  EXPECT_EQ(t.dirty_stripes(), 5u);
  t.mark(0, 1);
  t.mark_user_tail();
  EXPECT_TRUE(t.annotated());
  // Tail [1000, 1064) lives in stripes 3 and 4.
  EXPECT_EQ(t.effective(), (std::vector<std::uint8_t>{1, 0, 0, 1, 1}));
}

TEST(DirtyTracker, ClearDropsFlagsAndAnnotation) {
  DirtyTracker t;
  t.reset(1000, 64, 256, 5);
  t.mark_all();
  EXPECT_TRUE(t.annotated());
  t.clear();
  EXPECT_FALSE(t.annotated());
  EXPECT_DOUBLE_EQ(t.dirty_fraction(), 1.0);  // back to the safe fallback
}

TEST(DirtyTracker, ShadowDetectClassifiesChangedStripes) {
  DirtyTracker t;
  t.reset(1000, 24, 256, 4);
  std::vector<std::byte> image(1024, std::byte{7});
  t.capture_shadow(image);
  EXPECT_TRUE(t.has_shadow());

  image[600] = std::byte{8};  // stripe 2
  t.detect(image);
  EXPECT_TRUE(t.annotated());
  EXPECT_EQ(t.effective(), (std::vector<std::uint8_t>{0, 0, 1, 0}));

  // detect() re-captured, so an unchanged image is all-clean next round.
  t.clear();
  t.detect(image);
  EXPECT_EQ(t.dirty_stripes(), 0u);
}

TEST(DirtyTracker, ShadowTreatsMissingTailAsZeros) {
  DirtyTracker t;
  t.reset(1000, 24, 256, 4);
  // Capture from the unpadded view; the padded stripes hash as zeros.
  std::vector<std::byte> image(1000, std::byte{0});
  t.capture_shadow(image);
  std::vector<std::byte> padded(1024, std::byte{0});
  t.detect(padded);
  EXPECT_EQ(t.dirty_stripes(), 0u);
}

}  // namespace
}  // namespace skt::ckpt

// ----------------------------------------------------------------------
// encode_delta == encode: the bit-identity the dirty-stripe commit path
// stakes checkpoint correctness on, for both the XOR group codec and the
// GF(2^8) dual-parity code, on both sides of the half-dirty fallback.
namespace skt::enc {
namespace {

TEST(EncodeDelta, GroupCodecMatchesFullEncode) {
  const int group_size = 4;
  const std::size_t data_bytes = 1000;
  MiniCluster mc(group_size, 0);
  const auto result = mc.run(group_size, [&](mpi::Comm& world) {
    const GroupCodec codec(CodecKind::kXor, data_bytes, world.size());
    const std::size_t stripe = codec.layout().stripe_bytes();
    const std::size_t stripes = codec.padded_bytes() / stripe;

    const auto base = random_bytes(codec.padded_bytes(), 10 + world.rank());
    std::vector<std::byte> old_check(codec.checksum_bytes());
    codec.encode(world, base, old_check);

    // Sparse case: one rank dirties one stripe -> the per-family delta
    // path (2 * 1 < 4 families).
    auto next = base;
    std::vector<std::uint8_t> dirty(stripes, 0);
    if (world.rank() == 1) {
      next[stripe / 2] ^= std::byte{0x3c};
      dirty[0] = 1;  // local stripe 0 holds that byte
    }
    std::vector<std::byte> reference(codec.checksum_bytes());
    codec.encode(world, next, reference);

    std::vector<std::byte> delta = old_check;
    codec.encode_delta(world, base, next, delta, delta, dirty);  // in place
    EXPECT_EQ(delta, reference);

    // Fallback case: everything dirty -> full reduce-scatter re-encode.
    auto next2 = random_bytes(codec.padded_bytes(), 90 + world.rank());
    std::vector<std::byte> reference2(codec.checksum_bytes());
    codec.encode(world, next2, reference2);
    std::vector<std::byte> delta2 = reference;  // old checksum of `next`
    const std::vector<std::uint8_t> all_dirty(stripes, 1);
    codec.encode_delta(world, next, next2, delta2, delta2, all_dirty);
    EXPECT_EQ(delta2, reference2);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(EncodeDelta, GroupCodecDistinctOutputBuffer) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [&](mpi::Comm& world) {
    const GroupCodec codec(CodecKind::kXor, 2048, world.size());
    const std::size_t stripe = codec.layout().stripe_bytes();
    const auto base = random_bytes(codec.padded_bytes(), 40 + world.rank());
    std::vector<std::byte> old_check(codec.checksum_bytes());
    codec.encode(world, base, old_check);

    auto next = base;
    std::vector<std::uint8_t> dirty(codec.padded_bytes() / stripe, 0);
    if (world.rank() == 1) {
      next[2 * stripe] ^= std::byte{0x80};  // local stripe 2 -> family 3
      dirty[2] = 1;
    }

    std::vector<std::byte> reference(codec.checksum_bytes());
    codec.encode(world, next, reference);
    std::vector<std::byte> out(codec.checksum_bytes());
    codec.encode_delta(world, base, next, old_check, out, dirty);
    EXPECT_EQ(out, reference);
    // The delta actually changed parity — on family 3's owner.
    if (world.rank() == 3) {
      EXPECT_NE(old_check, reference);
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(EncodeDelta, DualParityMatchesFullEncode) {
  const int group_size = 5;
  const std::size_t data_bytes = 2000;
  MiniCluster mc(group_size, 0);
  const auto result = mc.run(group_size, [&](mpi::Comm& world) {
    const DualParityGroupCodec codec(data_bytes, world.size());
    const std::size_t stripe = codec.stripe_bytes();
    const std::size_t stripes = codec.padded_bytes() / stripe;

    const auto base = random_bytes(codec.padded_bytes(), 300 + world.rank());
    std::vector<std::byte> old_parity(codec.parity_bytes());
    codec.encode(world, base, old_parity);

    // Sparse: one dirty stripe on one member -> GF-weighted delta fold.
    auto next = base;
    std::vector<std::uint8_t> dirty(stripes, 0);
    if (world.rank() == 2) {
      next[stripe + 7] ^= std::byte{0x55};
      dirty[1] = 1;
    }
    std::vector<std::byte> reference(codec.parity_bytes());
    codec.encode(world, next, reference);
    std::vector<std::byte> delta = old_parity;
    codec.encode_delta(world, base, next, delta, delta, dirty);
    EXPECT_EQ(delta, reference);

    // Fallback: all stripes dirty on every member.
    auto next2 = random_bytes(codec.padded_bytes(), 700 + world.rank());
    std::vector<std::byte> reference2(codec.parity_bytes());
    codec.encode(world, next2, reference2);
    std::vector<std::byte> delta2 = reference;
    const std::vector<std::uint8_t> all_dirty(stripes, 1);
    codec.encode_delta(world, next, next2, delta2, delta2, all_dirty);
    EXPECT_EQ(delta2, reference2);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

}  // namespace
}  // namespace skt::enc
