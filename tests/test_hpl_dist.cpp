// Distributed LU / back-substitution / verification, checked against a
// serial reference factorization for a sweep of (N, nb, P, Q) shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hpl/abft.hpp"
#include "hpl/dist_matrix.hpp"
#include "hpl/driver.hpp"
#include "hpl/lu.hpp"
#include "testing.hpp"
#include "util/rng.hpp"

namespace skt::hpl {
namespace {

using skt::testing::MiniCluster;

/// Serial reference: solve [A|b] by Gaussian elimination with partial
/// pivoting; returns x.
std::vector<double> reference_solve(std::int64_t n, std::uint64_t seed) {
  std::vector<double> a(static_cast<std::size_t>(n * (n + 1)));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= n; ++j) {
      a[static_cast<std::size_t>(i * (n + 1) + j)] = util::element_value(
          seed, static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(j));
    }
  }
  const std::int64_t ld = n + 1;
  for (std::int64_t k = 0; k < n; ++k) {
    std::int64_t piv = k;
    for (std::int64_t i = k + 1; i < n; ++i) {
      if (std::abs(a[static_cast<std::size_t>(i * ld + k)]) >
          std::abs(a[static_cast<std::size_t>(piv * ld + k)])) {
        piv = i;
      }
    }
    if (piv != k) {
      for (std::int64_t j = 0; j <= n; ++j) {
        std::swap(a[static_cast<std::size_t>(k * ld + j)],
                  a[static_cast<std::size_t>(piv * ld + j)]);
      }
    }
    const double pivot = a[static_cast<std::size_t>(k * ld + k)];
    for (std::int64_t i = k + 1; i < n; ++i) {
      const double l = a[static_cast<std::size_t>(i * ld + k)] / pivot;
      for (std::int64_t j = k; j <= n; ++j) {
        a[static_cast<std::size_t>(i * ld + j)] -= l * a[static_cast<std::size_t>(k * ld + j)];
      }
    }
  }
  std::vector<double> x(static_cast<std::size_t>(n));
  for (std::int64_t i = n - 1; i >= 0; --i) {
    double acc = a[static_cast<std::size_t>(i * ld + n)];
    for (std::int64_t j = i + 1; j < n; ++j) {
      acc -= a[static_cast<std::size_t>(i * ld + j)] * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = acc / a[static_cast<std::size_t>(i * ld + i)];
  }
  return x;
}

class LuShapes
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, int, int>> {};

TEST_P(LuShapes, SolvesAgainstSerialReference) {
  const auto [n, nb, P, Q] = GetParam();
  const std::uint64_t seed = 77;
  const std::vector<double> x_ref = reference_solve(n, seed);

  MiniCluster mc(P * Q, 0);
  const auto result = mc.run(P * Q, [&, n = n, nb = nb, P = P, Q = Q](mpi::Comm& world) {
    mpi::Grid grid(world, P, Q);
    const std::int64_t elems = DistMatrix::max_local_elements(n, n + 1, nb, P, Q);
    std::vector<double> storage(static_cast<std::size_t>(elems));
    DistMatrix a(grid, n, n + 1, nb, storage);
    generate(a, seed);
    lu_factorize(grid, a, n, 0);
    const std::vector<double> x = back_substitute(world, grid, a, n);
    ASSERT_EQ(x.size(), static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(x[static_cast<std::size_t>(i)], x_ref[static_cast<std::size_t>(i)], 1e-7)
          << "i=" << i;
    }
    const Residual res = verify(world, a, n, seed, x);
    EXPECT_TRUE(res.pass) << "scaled residual " << res.scaled;
    EXPECT_LT(res.scaled, 16.0);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LuShapes,
    ::testing::Values(std::make_tuple(64, 8, 2, 2),    // aligned
                      std::make_tuple(60, 8, 2, 2),    // ragged last block
                      std::make_tuple(65, 16, 2, 3),   // rectangular grid
                      std::make_tuple(48, 4, 3, 2),    // more rows than cols
                      std::make_tuple(33, 32, 2, 2),   // nb > n/2
                      std::make_tuple(96, 8, 1, 4),    // single process row
                      std::make_tuple(96, 8, 4, 1),    // single process column
                      std::make_tuple(50, 8, 1, 1)));  // serial grid

TEST(Lu, PanelHookFiresPerPanelAndCanAbort) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [&](mpi::Comm& world) {
    mpi::Grid grid(world, 2, 2);
    const std::int64_t n = 64, nb = 8;
    const std::int64_t elems = DistMatrix::max_local_elements(n, n + 1, nb, 2, 2);
    std::vector<double> storage(static_cast<std::size_t>(elems));
    DistMatrix a(grid, n, n + 1, nb, storage);
    generate(a, 5);
    int hooks = 0;
    lu_factorize(grid, a, n, 0, [&](std::int64_t) { return ++hooks < 3; });
    EXPECT_EQ(hooks, 3);  // aborted after the third panel
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Lu, RestartFromMidPanelMatchesFullRun) {
  // Factor to completion in one go; separately factor to panel 4, stop,
  // then resume from panel 4 — the final solutions must agree, which is
  // exactly what SKT-HPL's checkpoint/restore depends on.
  const std::int64_t n = 64, nb = 8;
  const std::uint64_t seed = 9;
  std::vector<double> x_full;
  {
    MiniCluster mc(4, 0);
    const auto result = mc.run(4, [&](mpi::Comm& world) {
      mpi::Grid grid(world, 2, 2);
      const std::int64_t elems = DistMatrix::max_local_elements(n, n + 1, nb, 2, 2);
      std::vector<double> storage(static_cast<std::size_t>(elems));
      DistMatrix a(grid, n, n + 1, nb, storage);
      generate(a, seed);
      lu_factorize(grid, a, n, 0);
      const auto x = back_substitute(world, grid, a, n);
      if (world.rank() == 0) x_full = x;
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
  {
    MiniCluster mc(4, 0);
    const auto result = mc.run(4, [&](mpi::Comm& world) {
      mpi::Grid grid(world, 2, 2);
      const std::int64_t elems = DistMatrix::max_local_elements(n, n + 1, nb, 2, 2);
      std::vector<double> storage(static_cast<std::size_t>(elems));
      DistMatrix a(grid, n, n + 1, nb, storage);
      generate(a, seed);
      lu_factorize(grid, a, n, 0, [&](std::int64_t next) { return next < 4; });
      lu_factorize(grid, a, n, 4);  // resume
      const auto x = back_substitute(world, grid, a, n);
      for (std::size_t i = 0; i < x.size(); ++i) {
        ASSERT_EQ(x[i], x_full[i]) << i;  // bit-identical: same op order
      }
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
}

TEST(Lu, RingPanelBcastIsBitIdenticalToBinomial) {
  // Both panel broadcast algorithms deliver the same bytes, so the whole
  // factorization must agree bit-for-bit.
  const std::int64_t n = 80, nb = 16;
  const std::uint64_t seed = 33;
  std::vector<double> x_tree;
  for (const PanelBcast algo : {PanelBcast::kBinomial, PanelBcast::kRing}) {
    MiniCluster mc(6, 0);
    const auto result = mc.run(6, [&](mpi::Comm& world) {
      mpi::Grid grid(world, 2, 3);
      const std::int64_t elems = DistMatrix::max_local_elements(n, n + 1, nb, 2, 3);
      std::vector<double> storage(static_cast<std::size_t>(elems));
      DistMatrix a(grid, n, n + 1, nb, storage);
      generate(a, seed);
      lu_factorize(grid, a, n, 0, {}, nullptr, algo);
      const auto x = back_substitute(world, grid, a, n);
      if (world.rank() == 0) {
        if (algo == PanelBcast::kBinomial) {
          x_tree = x;
        } else {
          ASSERT_EQ(x.size(), x_tree.size());
          for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(x[i], x_tree[i]) << i;
        }
      }
    });
    ASSERT_TRUE(result.completed) << result.abort_reason;
  }
}

TEST(Lu, PivotValuesGiveDeterminantMagnitude) {
  // |det(A)| = product of |U(j,j)| — checks the replicated pivot-value
  // collection against a serial elimination.
  const std::int64_t n = 24, nb = 4;
  const std::uint64_t seed = 21;
  // Serial reference determinant magnitude via the same generator.
  double ref_logdet = 0.0;
  {
    std::vector<double> m(static_cast<std::size_t>(n * n));
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        m[static_cast<std::size_t>(i * n + j)] = util::element_value(
            seed, static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(j));
      }
    }
    for (std::int64_t k = 0; k < n; ++k) {
      std::int64_t piv = k;
      for (std::int64_t i = k + 1; i < n; ++i) {
        if (std::abs(m[static_cast<std::size_t>(i * n + k)]) >
            std::abs(m[static_cast<std::size_t>(piv * n + k)])) {
          piv = i;
        }
      }
      for (std::int64_t j = 0; j < n; ++j) {
        std::swap(m[static_cast<std::size_t>(k * n + j)],
                  m[static_cast<std::size_t>(piv * n + j)]);
      }
      const double p = m[static_cast<std::size_t>(k * n + k)];
      ref_logdet += std::log(std::abs(p));
      for (std::int64_t i = k + 1; i < n; ++i) {
        const double l = m[static_cast<std::size_t>(i * n + k)] / p;
        for (std::int64_t j = k; j < n; ++j) {
          m[static_cast<std::size_t>(i * n + j)] -= l * m[static_cast<std::size_t>(k * n + j)];
        }
      }
    }
  }
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [&](mpi::Comm& world) {
    mpi::Grid grid(world, 2, 2);
    const std::int64_t elems = DistMatrix::max_local_elements(n, n + 1, nb, 2, 2);
    std::vector<double> storage(static_cast<std::size_t>(elems));
    DistMatrix a(grid, n, n + 1, nb, storage);
    generate(a, seed);
    std::vector<double> pivots;
    lu_factorize(grid, a, n, 0, {}, &pivots);
    ASSERT_EQ(pivots.size(), static_cast<std::size_t>(n));
    double logdet = 0.0;
    for (double p : pivots) {
      ASSERT_NE(p, 0.0);
      logdet += std::log(std::abs(p));
    }
    EXPECT_NEAR(logdet, ref_logdet, 1e-8);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Lu, MaxProblemSizeFitsBudget) {
  const std::size_t budget = 4u << 20;  // 4 MiB per rank
  const std::int64_t n = max_problem_size(budget, 16, 2, 2);
  EXPECT_GT(n, 0);
  EXPECT_EQ(n % 16, 0);
  EXPECT_LE(
      static_cast<std::size_t>(DistMatrix::max_local_elements(n, n + 1, 16, 2, 2)) * 8,
      budget);
  // One more block row would not fit.
  const std::int64_t n2 = n + 16;
  EXPECT_GT(static_cast<std::size_t>(DistMatrix::max_local_elements(n2, n2 + 1, 16, 2, 2)) * 8,
            budget);
}

TEST(Hpl, DriverRunsAndVerifies) {
  MiniCluster mc(4, 0);
  HplResult out;
  const auto result = mc.run(4, [&](mpi::Comm& world) {
    HplConfig config;
    config.n = 96;
    config.nb = 16;
    config.grid_p = 2;
    config.grid_q = 2;
    const HplResult r = run_hpl(world, config);
    if (world.rank() == 0) out = r;
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_TRUE(out.residual.pass) << out.residual.scaled;
  EXPECT_GT(out.gflops, 0.0);
}

TEST(Abft, ChecksumsHoldThroughFactorization) {
  MiniCluster mc(4, 0);
  AbftResult out;
  const auto result = mc.run(4, [&](mpi::Comm& world) {
    AbftConfig config;
    config.hpl.n = 96;
    config.hpl.nb = 16;
    config.hpl.grid_p = 2;
    config.hpl.grid_q = 2;
    config.verify_every_panels = 2;
    const AbftResult r = run_abft_hpl(world, config);
    if (world.rank() == 0) out = r;
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_TRUE(out.checksum_ok);
  EXPECT_EQ(out.checks, 3);  // panels 2, 4, 6 of 6 total -> next_panel 2,4,6
  EXPECT_TRUE(out.hpl.residual.pass) << out.hpl.residual.scaled;
}

TEST(Abft, DetectsInjectedCorruption) {
  MiniCluster mc(4, 0);
  bool detected = false;
  const auto result = mc.run(4, [&](mpi::Comm& world) {
    mpi::Grid grid(world, 2, 2);
    const std::int64_t n = 64, nb = 8;
    const std::int64_t ncols = n + 2;
    const std::int64_t elems = DistMatrix::max_local_elements(n, ncols, nb, 2, 2);
    std::vector<double> storage(static_cast<std::size_t>(elems));
    DistMatrix a(grid, n, ncols, nb, storage);
    // Use the abft driver but corrupt one trailing element mid-run via the
    // hook: simplest path is to run the driver twice; here we corrupt
    // through a custom factorization instead.
    for (std::int64_t li = 0; li < a.lrows(); ++li) {
      const auto gi = static_cast<std::uint64_t>(a.rows().global(a.prow(), li));
      for (std::int64_t lj = 0; lj < a.lcols(); ++lj) {
        const std::int64_t gj = a.cols().global(a.pcol(), lj);
        if (gj <= n) {
          a.at(li, lj) = util::element_value(3, gi, static_cast<std::uint64_t>(gj));
        } else {
          double acc = 0;
          for (std::int64_t j = 0; j <= n; ++j) {
            acc += util::element_value(3, gi, static_cast<std::uint64_t>(j));
          }
          a.at(li, lj) = acc;
        }
      }
    }
    // Corrupt one element of the trailing matrix on rank 0 (silent data
    // corruption model).
    if (world.rank() == 0 && a.lrows() > 2 && a.lcols() > 2) {
      a.at(a.lrows() - 1, a.lcols() - 2) += 1000.0;
    }
    AbftConfig config;
    config.hpl.n = n;
    config.hpl.nb = nb;
    // Run one panel then verify manually via run_abft-style check: easiest
    // is to reuse verify() on a bogus solution... instead run the driver's
    // internal check through run_abft_hpl on a fresh matrix is covered
    // above; here assert the invariant check itself fails.
    lu_factorize(grid, a, n, 0, [&](std::int64_t next) { return next < 1; });
    // After one panel the corrupted element breaks the row-sum invariant.
    // (Reaching into the internal checker through the public driver isn't
    // possible, so recompute the invariant here: for active rows the
    // eliminated columns are mathematically zero, so sum j0..n only.)
    const std::int64_t j0 = nb;
    const int qs = a.cols().owner(n + 1);
    std::vector<double> partial(static_cast<std::size_t>(a.lrows()), 0.0);
    for (std::int64_t li = a.rows().local_lower_bound(grid.prow(), j0); li < a.lrows(); ++li) {
      double acc = 0;
      for (std::int64_t lj = 0; lj < a.lcols(); ++lj) {
        const std::int64_t gj = a.cols().global(grid.pcol(), lj);
        if (gj < j0 || gj >= n + 1) continue;
        acc += a.at(li, lj);
      }
      partial[static_cast<std::size_t>(li)] = acc;
    }
    std::vector<double> sums(partial.size());
    grid.row().reduce<double>(qs, partial, sums, mpi::Sum{});
    if (grid.pcol() == qs) {
      const std::int64_t lcS = a.cols().local(n + 1);
      for (std::int64_t li = a.rows().local_lower_bound(grid.prow(), j0); li < a.lrows();
           ++li) {
        if (std::abs(a.at(li, lcS) - sums[static_cast<std::size_t>(li)]) > 1.0) {
          detected = true;
        }
      }
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_TRUE(detected);
}

}  // namespace
}  // namespace skt::hpl
