#include <gtest/gtest.h>

#include "ckpt/grouping.hpp"
#include "ckpt/plan.hpp"
#include "testing.hpp"

namespace skt::ckpt {
namespace {

TEST(Plan, AvailableFractionMatchesPaperEquations) {
  // Eq. 2: self = (N-1)/2N
  EXPECT_DOUBLE_EQ(available_fraction(Strategy::kSelf, 2), 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(available_fraction(Strategy::kSelf, 16), 15.0 / 32.0);
  // Eq. 3: double = (N-1)/(3N-1)
  EXPECT_DOUBLE_EQ(available_fraction(Strategy::kDouble, 16), 15.0 / 47.0);
  // Eq. 4: single = (N-1)/(2N-1)
  EXPECT_DOUBLE_EQ(available_fraction(Strategy::kSingle, 16), 15.0 / 31.0);
  // Disk/none strategies keep all memory.
  EXPECT_DOUBLE_EQ(available_fraction(Strategy::kNone, 1), 1.0);
  EXPECT_DOUBLE_EQ(available_fraction(Strategy::kBlcr, 1), 1.0);
}

TEST(Plan, PaperHeadlineNumbers) {
  // Section 3.3: "The available memory of a group with 16 processes is 47%".
  EXPECT_NEAR(available_fraction(Strategy::kSelf, 16), 0.47, 0.005);
  // Upper bound of 50% as N grows.
  EXPECT_LT(available_fraction(Strategy::kSelf, 1024), 0.5);
  EXPECT_GT(available_fraction(Strategy::kSelf, 1024), 0.499);
  // Double checkpoint stays below 1/3.
  EXPECT_LT(available_fraction(Strategy::kDouble, 1024), 1.0 / 3.0);
}

TEST(Plan, OrderingSelfBetweenSingleAndDouble) {
  for (int n : {2, 3, 4, 8, 16, 32}) {
    const double single = available_fraction(Strategy::kSingle, n);
    const double self = available_fraction(Strategy::kSelf, n);
    const double dbl = available_fraction(Strategy::kDouble, n);
    EXPECT_GT(single, self) << n;
    EXPECT_GT(self, dbl) << n;
  }
}

TEST(Plan, PlanMemoryFitsCapacity) {
  const std::size_t capacity = 1ull << 30;
  for (auto strategy : {Strategy::kSingle, Strategy::kDouble, Strategy::kSelf}) {
    for (int n : {2, 4, 8, 16}) {
      const MemoryPlan plan = plan_memory(strategy, capacity, n);
      EXPECT_LE(plan.total_bytes(), capacity + 64) << to_string(strategy) << " N=" << n;
      EXPECT_NEAR(plan.fraction(), available_fraction(strategy, n), 1e-6);
      EXPECT_EQ(plan.app_bytes % 8, 0u);
    }
  }
}

TEST(Plan, Table1SelfTotalsIsTwoMNOverNMinus1) {
  const MemoryPlan plan = plan_memory(Strategy::kSelf, 1ull << 30, 8);
  const double m = static_cast<double>(plan.app_bytes);
  EXPECT_NEAR(static_cast<double>(plan.total_bytes()), 2.0 * m * 8 / 7.0, 16.0);
}

TEST(Plan, DualParityFraction) {
  // U = (N-2)/2N: two parity stripes per side instead of one.
  EXPECT_DOUBLE_EQ(available_fraction_dual(4), 0.25);
  EXPECT_DOUBLE_EQ(available_fraction_dual(16), 14.0 / 32.0);
  // Costs a little memory versus single parity, buys a second failure.
  for (int n : {4, 8, 16, 32}) {
    EXPECT_LT(available_fraction_dual(n), available_fraction(Strategy::kSelf, n)) << n;
    // ...but still beats the double-checkpoint baseline from N >= 5.
    if (n >= 5) {
      EXPECT_GT(available_fraction_dual(n), available_fraction(Strategy::kDouble, n));
    }
  }
  EXPECT_THROW((void)available_fraction_dual(3), std::invalid_argument);
}

TEST(Plan, RejectsDegenerateGroups) {
  EXPECT_THROW((void)available_fraction(Strategy::kSelf, 1), std::invalid_argument);
  EXPECT_THROW((void)plan_memory(Strategy::kDouble, 1024, 0), std::invalid_argument);
}

TEST(Grouping, NeighborSatisfiesDistinctNodes) {
  // 8 ranks, 2 per node (4 nodes), group size 2.
  const std::vector<int> nodes{0, 0, 1, 1, 2, 2, 3, 3};
  const std::vector<int> racks{0, 0, 0, 0, 1, 1, 1, 1};
  const GroupAssignment a = plan_groups(8, 2, nodes, racks, Mapping::kNeighbor);
  EXPECT_EQ(a.num_groups, 4);
  EXPECT_TRUE(distinct_nodes(a, nodes));
}

TEST(Grouping, SpreadSpansMoreRacks) {
  // 8 ranks on 8 nodes across 2 racks; groups of 4.
  const std::vector<int> nodes{0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<int> racks{0, 0, 0, 0, 1, 1, 1, 1};
  const GroupAssignment neighbor = plan_groups(8, 4, nodes, racks, Mapping::kNeighbor);
  const GroupAssignment spread = plan_groups(8, 4, nodes, racks, Mapping::kSpread);
  EXPECT_TRUE(distinct_nodes(neighbor, nodes));
  EXPECT_TRUE(distinct_nodes(spread, nodes));
  // Neighbor keeps each group in one rack; spread spans both.
  EXPECT_EQ(racks_spanned(neighbor, 0, racks), 1);
  EXPECT_EQ(racks_spanned(spread, 0, racks), 2);
}

TEST(Grouping, ImpossibleConstraintThrows) {
  // Group of 4 but only 2 distinct nodes.
  const std::vector<int> nodes{0, 0, 1, 1};
  const std::vector<int> racks{0, 0, 0, 0};
  EXPECT_THROW(plan_groups(4, 4, nodes, racks, Mapping::kNeighbor), std::invalid_argument);
}

TEST(Grouping, SizeValidation) {
  const std::vector<int> nodes{0, 1, 2};
  const std::vector<int> racks{0, 0, 0};
  EXPECT_THROW(plan_groups(3, 2, nodes, racks, Mapping::kNeighbor), std::invalid_argument);
  EXPECT_THROW(plan_groups(4, 2, nodes, racks, Mapping::kNeighbor), std::invalid_argument);
}

TEST(Grouping, MakeGroupCommSplitsByColor) {
  skt::testing::MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    std::vector<int> nodes(4);
    std::vector<int> racks(4);
    for (int r = 0; r < 4; ++r) {
      nodes[static_cast<std::size_t>(r)] = world.node_id_of(r);
      racks[static_cast<std::size_t>(r)] = 0;
    }
    const GroupAssignment a = plan_groups(4, 2, nodes, racks, Mapping::kNeighbor);
    mpi::Comm group = make_group_comm(world, a);
    EXPECT_EQ(group.size(), 2);
    const int sum = group.allreduce_value<int>(1, mpi::Sum{});
    EXPECT_EQ(sum, 2);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

}  // namespace
}  // namespace skt::ckpt
