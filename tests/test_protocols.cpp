// Fault-free behaviour of every checkpoint strategy, plus memory
// accounting and epoch bookkeeping.
#include <gtest/gtest.h>

#include "ckpt_harness.hpp"
#include "ckpt/blcr_checkpoint.hpp"
#include "ckpt/double_checkpoint.hpp"
#include "ckpt/factory.hpp"
#include "ckpt/self_checkpoint.hpp"
#include "ckpt/single_checkpoint.hpp"
#include "storage/device.hpp"
#include "storage/snapshot_vault.hpp"
#include "testing.hpp"

namespace skt::ckpt {
namespace {

using skt::testing::CkptAppConfig;
using skt::testing::checkpointed_app;
using skt::testing::MiniCluster;

class AllStrategies : public ::testing::TestWithParam<Strategy> {};

TEST_P(AllStrategies, FaultFreeRunCompletes) {
  const Strategy strategy = GetParam();
  MiniCluster mc(4, 0);
  storage::SnapshotVault vault;
  CkptAppConfig config;
  config.strategy = strategy;
  config.group_size = 4;
  config.iterations = 3;
  config.vault = &vault;
  config.device = storage::ssd_profile();
  const auto result = mc.run(4, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST_P(AllStrategies, AsyncFaultFreeRunCompletes) {
  const Strategy strategy = GetParam();
  MiniCluster mc(4, 0);
  storage::SnapshotVault vault;
  CkptAppConfig config;
  config.strategy = strategy;
  config.group_size = 4;
  config.iterations = 4;
  config.vault = &vault;
  config.device = storage::ssd_profile();
  config.mode = CommitMode::kAsync;
  const auto result = mc.run(4, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST_P(AllStrategies, SumCodecFaultFreeRun) {
  const Strategy strategy = GetParam();
  if (strategy == Strategy::kBlcr) GTEST_SKIP() << "BLCR does not encode";
  MiniCluster mc(4, 0);
  CkptAppConfig config;
  config.strategy = strategy;
  config.codec = enc::CodecKind::kSum;
  config.iterations = 2;
  const auto result = mc.run(4, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

INSTANTIATE_TEST_SUITE_P(Strategies, AllStrategies,
                         ::testing::Values(Strategy::kSingle, Strategy::kDouble,
                                           Strategy::kSelf, Strategy::kBlcr),
                         [](const auto& info) {
                           return std::string(to_string(info.param)).substr(0, 4) == "blcr"
                                      ? "blcr"
                                      : std::string(to_string(info.param))
                                            .substr(0, std::string(to_string(info.param))
                                                           .find('-'));
                         });

TEST(SelfCheckpoint, EpochAdvancesPerCommit) {
  MiniCluster mc(3, 0);
  const auto result = mc.run(3, [](mpi::Comm& world) {
    SelfCheckpoint proto({.key_prefix = "e", .data_bytes = 512, .user_bytes = 16,
                          .codec = enc::CodecKind::kXor});
    CommCtx ctx{world, world};
    EXPECT_FALSE(proto.open(ctx));
    EXPECT_EQ(proto.committed_epoch(), 0u);
    proto.commit(ctx);
    EXPECT_EQ(proto.committed_epoch(), 1u);
    const CommitStats stats = proto.commit(ctx);
    EXPECT_EQ(stats.epoch, 2u);
    EXPECT_EQ(proto.committed_epoch(), 2u);
    EXPECT_GT(stats.checkpoint_bytes, 512u);
    EXPECT_GT(stats.checksum_bytes, 0u);
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST(SelfCheckpoint, MemoryFootprintMatchesTable1) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    const std::size_t m = 3000;
    SelfCheckpoint proto({.key_prefix = "m", .data_bytes = m, .user_bytes = 8,
                          .codec = enc::CodecKind::kXor});
    CommCtx ctx{world, world};
    proto.open(ctx);
    // Total ~= 2 M N / (N-1): work + B (each ~M) + C + D (each ~M/(N-1)).
    const double expect = 2.0 * static_cast<double>(m) * 4.0 / 3.0;
    EXPECT_NEAR(static_cast<double>(proto.memory_bytes()), expect, 200.0);
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST(SelfCheckpoint, DataLivesInSharedMemory) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](mpi::Comm& world) {
    SelfCheckpoint proto({.key_prefix = "shm", .data_bytes = 256, .user_bytes = 8,
                          .codec = enc::CodecKind::kXor});
    CommCtx ctx{world, world};
    const std::size_t before = world.store().bytes_in_use();
    proto.open(ctx);
    // work + B + C + D + header all live in the node store.
    EXPECT_GT(world.store().bytes_in_use(), before + 2 * 256);
    // data() points into a store segment (writes are visible through it).
    proto.data()[0] = std::byte{0x5A};
    const auto seg = world.store().attach("shm.r" + std::to_string(world.world_rank()) +
                                          ".self.work");
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->bytes()[0], std::byte{0x5A});
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST(SelfCheckpoint, RestoreWithoutCommitIsUnrecoverable) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](mpi::Comm& world) {
    SelfCheckpoint proto({.key_prefix = "u", .data_bytes = 128, .user_bytes = 8,
                          .codec = enc::CodecKind::kXor});
    CommCtx ctx{world, world};
    EXPECT_FALSE(proto.open(ctx));
    EXPECT_THROW(proto.restore(ctx), Unrecoverable);
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST(SelfCheckpoint, RejectsUnopenedUse) {
  SelfCheckpoint proto({.key_prefix = "x", .data_bytes = 64, .user_bytes = 8,
                        .codec = enc::CodecKind::kXor});
  EXPECT_THROW((void)proto.data(), std::logic_error);
  EXPECT_THROW((void)SelfCheckpoint({.key_prefix = "x", .data_bytes = 0, .user_bytes = 8,
                                     .codec = enc::CodecKind::kXor}),
               std::invalid_argument);
}

TEST(DoubleCheckpoint, AlternatesPairs) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](mpi::Comm& world) {
    DoubleCheckpoint proto({.key_prefix = "alt", .data_bytes = 256, .user_bytes = 8,
                            .codec = enc::CodecKind::kXor});
    CommCtx ctx{world, world};
    proto.open(ctx);
    proto.data()[0] = std::byte{1};
    proto.commit(ctx);  // epoch 1 -> pair 1
    proto.data()[0] = std::byte{2};
    proto.commit(ctx);  // epoch 2 -> pair 0
    const std::string base = "alt.r" + std::to_string(world.world_rank()) + ".double.";
    const auto pair0 = world.store().attach(base + "B0");
    const auto pair1 = world.store().attach(base + "B1");
    ASSERT_NE(pair0, nullptr);
    ASSERT_NE(pair1, nullptr);
    EXPECT_EQ(pair1->bytes()[0], std::byte{1});  // epoch 1
    EXPECT_EQ(pair0->bytes()[0], std::byte{2});  // epoch 2
    EXPECT_EQ(proto.committed_epoch(), 2u);
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST(DoubleCheckpoint, FootprintHasTwoFullCopies) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    const std::size_t m = 3000;
    DoubleCheckpoint proto({.key_prefix = "f2", .data_bytes = m, .user_bytes = 8,
                            .codec = enc::CodecKind::kXor});
    CommCtx ctx{world, world};
    proto.open(ctx);
    // M (app) + 2M (pairs) + 2M/(N-1) (checksums)
    const double expect = static_cast<double>(m) * (3.0 + 2.0 / 3.0);
    EXPECT_NEAR(static_cast<double>(proto.memory_bytes()), expect, 300.0);
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST(BlcrCheckpoint, WritesChargeDeviceTime) {
  MiniCluster mc(2, 0);
  storage::SnapshotVault vault;
  const auto result = mc.run(2, [&](mpi::Comm& world) {
    BlcrCheckpoint proto({.key_prefix = "b", .data_bytes = 1 << 20, .user_bytes = 8,
                          .vault = &vault, .device = storage::hdd_profile()});
    CommCtx ctx{world, world};
    EXPECT_FALSE(proto.open(ctx));
    const CommitStats stats = proto.commit(ctx);
    // 1 MiB at 160 MB/s ~= 6.5 ms of virtual device time.
    EXPECT_GT(stats.device_s, 1e-3);
    EXPECT_GT(world.virtual_seconds(), 1e-3);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_GT(vault.bytes_in_use(), (1u << 20));
}

TEST(BlcrCheckpoint, KeepsTwoGenerations) {
  MiniCluster mc(1, 0);
  storage::SnapshotVault vault;
  const auto result = mc.run(1, [&](mpi::Comm& world) {
    BlcrCheckpoint proto({.key_prefix = "gen", .data_bytes = 64, .user_bytes = 8,
                          .vault = &vault, .device = storage::ssd_profile()});
    CommCtx ctx{world, world};
    proto.open(ctx);
    for (int i = 0; i < 3; ++i) proto.commit(ctx);
    EXPECT_FALSE(vault.exists("gen.r0.blcr.img.e1"));  // GC'd
    EXPECT_TRUE(vault.exists("gen.r0.blcr.img.e2"));
    EXPECT_TRUE(vault.exists("gen.r0.blcr.img.e3"));
  });
  EXPECT_TRUE(result.completed) << result.abort_reason;
}

TEST(Factory, BuildsEveryStrategyAndRejectsNone) {
  storage::SnapshotVault vault;
  FactoryParams params;
  params.data_bytes = 64;
  params.vault = &vault;
  params.device = storage::ssd_profile();
  for (auto s : {Strategy::kSingle, Strategy::kDouble, Strategy::kSelf, Strategy::kBlcr}) {
    const auto proto = make_protocol(s, params);
    EXPECT_EQ(proto->strategy(), s);
  }
  EXPECT_THROW(make_protocol(Strategy::kNone, params), std::invalid_argument);
}

TEST(Device, ProfilesOrderSensibly) {
  const storage::Device hdd(storage::hdd_profile());
  const storage::Device ssd(storage::ssd_profile());
  const storage::Device ram(storage::ramfs_profile());
  const std::size_t gb = 1u << 30;
  EXPECT_GT(hdd.write_seconds(gb), ssd.write_seconds(gb));
  EXPECT_GT(ssd.write_seconds(gb), ram.write_seconds(gb));
  // Sharing divides bandwidth.
  const storage::Device shared(storage::hdd_profile(4));
  EXPECT_NEAR(shared.write_seconds(gb), 4 * hdd.write_seconds(gb), 0.1);
}

}  // namespace
}  // namespace skt::ckpt
