// The monitoring subsystem: HealthBoard phi-accrual suspicion, the
// forensics Recorder's note/query lifecycle, the live Aggregator's derived
// rates and watchdogs (driven deterministically through tick()), and the
// launcher-assembled postmortem pipeline end-to-end — including the
// POSTMORTEM_*.json document, validated with a real JSON parser.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt_harness.hpp"
#include "json_reader.hpp"
#include "mpi/launcher.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/forensics.hpp"
#include "telemetry/health.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "testing.hpp"

namespace skt::telemetry {
namespace {

using skt::testing::CkptAppConfig;
using skt::testing::checkpointed_app;
using skt::testing::MiniCluster;

/// Every test starts with empty metrics/tracer/board/recorder and leaves
/// the process defaults (telemetry off, board off and clean) behind.
class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    metrics().reset_values();
    Tracer::instance().clear();
    health().reset();
    health().set_enabled(false);
    health().set_floor_interval_us(10.0);
    forensics::recorder().clear();
  }
  void TearDown() override {
    set_enabled(false);
    health().set_enabled(false);
    health().reset();
    health().set_floor_interval_us(10.0);
    forensics::recorder().clear();
  }
};

// ---------------------------------------------------------------- health --

TEST_F(MonitorTest, HealthBoardSuspicionGrowsWithSilence) {
  health().set_enabled(true);
  for (int i = 0; i < 8; ++i) health().heartbeat(0);
  EXPECT_EQ(health().total_beats(), 8u);

  const double now_us = Tracer::instance().now_us();
  const RankHealth rh = health().sample(0, now_us);
  EXPECT_EQ(rh.beats, 8u);
  EXPECT_GE(rh.mean_interval_us, 0.0);

  // phi is monotone in elapsed silence: a rank an hour overdue is more
  // suspect than one a millisecond overdue.
  const double soon = health().phi(0, rh.last_beat_us + 1e3);
  const double late = health().phi(0, rh.last_beat_us + 1e6);
  EXPECT_LT(soon, late);
  EXPECT_GT(late, HealthBoard::kDefaultPhiThreshold);

  // A rank that never beat is immediately suspect (+inf).
  EXPECT_TRUE(std::isinf(health().phi(5, now_us)));

  // Disabled board: heartbeat() is a no-op.
  health().set_enabled(false);
  health().heartbeat(1);
  EXPECT_EQ(health().total_beats(), 8u);
}

TEST_F(MonitorTest, HealthBoardKeepsFirstDeathStamp) {
  EXPECT_FALSE(health().death_time_us(3).has_value());
  health().note_death(3);
  const double first = health().death_time_us(3).value();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  health().note_death(3);  // duplicate observer firing must not move it
  EXPECT_EQ(health().death_time_us(3).value(), first);
}

// ------------------------------------------------------------- forensics --

TEST_F(MonitorTest, RecorderNoteLifecycle) {
  forensics::Recorder& rec = forensics::recorder();
  rec.begin_job();

  GroupGeometry geo;
  geo.strategy = "self-checkpoint";
  geo.group_size = 4;
  geo.members = {0, 1, 2, 3};
  geo.nodes = {0, 1, 2, 3};
  geo.stripe_count = 3;
  geo.stripe_bytes = 1024;
  rec.note_geometry(1, geo);
  ASSERT_TRUE(rec.geometry_of(1).has_value());
  EXPECT_EQ(rec.geometry_of(1)->stripe_count, 3u);
  EXPECT_FALSE(rec.geometry_of(2).has_value());

  // Async pipelines can report epochs out of order; the newest wins.
  rec.note_commit(1, {2, 512, 0.25});
  rec.note_commit(1, {1, 2048, 1.0});
  ASSERT_TRUE(rec.last_commit(1).has_value());
  EXPECT_EQ(rec.last_commit(1)->epoch, 2u);
  EXPECT_EQ(rec.last_commit(1)->dirty_bytes, 512u);
  rec.note_commit(0, {3, 128, 0.1});
  const auto epochs = rec.committed_epochs();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs.at(0), 3u);
  EXPECT_EQ(epochs.at(1), 2u);

  // The marker isolates one relaunch's restore notes.
  const std::uint64_t marker = rec.restore_marker();
  rec.note_restore({1, 2, true, 0.01});
  rec.note_restore({0, 2, false, 0.0});
  EXPECT_EQ(rec.restores_since(marker).size(), 2u);
  EXPECT_TRUE(rec.restores_since(rec.restore_marker()).empty());

  // begin_job drops notes; the postmortem history is append-only.
  Postmortem pm;
  pm.name = "unit";
  rec.add_postmortem(pm);
  rec.begin_job();
  EXPECT_FALSE(rec.geometry_of(1).has_value());
  EXPECT_FALSE(rec.last_commit(1).has_value());
  EXPECT_TRUE(rec.restores_since(0).empty());
  ASSERT_EQ(rec.postmortems().size(), 1u);
  EXPECT_EQ(rec.postmortems().front().name, "unit");
  rec.clear();
  EXPECT_TRUE(rec.postmortems().empty());
}

TEST_F(MonitorTest, PostmortemJsonMatchesSchema) {
  Postmortem pm;
  pm.name = "unit";
  pm.incident = 1;
  pm.attempt = 2;
  pm.reason = "node 3 powered off";
  pm.lost_ranks = {3};
  pm.lost_nodes = {3};
  pm.lost_epoch = 7;
  pm.committed_epochs = {{0, 7}, {3, 6}};
  pm.recovered = true;
  pm.restored_epoch = 7;
  pm.geometry.strategy = "self-checkpoint";
  pm.geometry.group_size = 4;
  pm.geometry.parity_count = 2;
  pm.geometry.members = {0, 1, 2, 3};
  pm.geometry.nodes = {0, 1, 2, 3};
  pm.geometry.stripe_count = 3;
  pm.rebuilds.push_back({3, 7, 0.02, 0, 3, 1024, {0, 1, 2}, {3}});
  pm.timeline = {{"detect", 0.001}, {"replace", 0.0}, {"restart", 0.0}, {"restore", 0.02}};
  pm.detect_latency_s = 0.001;
  pm.detect_phi = 4.5;
  pm.scrub_passes = 12;
  pm.scrub_corruption_detected = 1;
  pm.scrub_repaired = 1;

  const auto doc = testing::json::parse(pm.json());
  EXPECT_EQ(doc.at("schema").string, "skt-postmortem-v2");
  EXPECT_EQ(doc.at("name").string, "unit");
  EXPECT_EQ(doc.at("incident").number, 1.0);
  EXPECT_EQ(doc.at("lost_ranks").at(0).number, 3.0);
  EXPECT_EQ(doc.at("lost_epoch").number, 7.0);
  EXPECT_EQ(doc.at("committed_epochs").at("3").number, 6.0);
  EXPECT_TRUE(doc.at("recovered").boolean);
  EXPECT_EQ(doc.at("geometry").at("members").size(), 4u);
  EXPECT_EQ(doc.at("geometry").at("parity_count").number, 2.0);
  const auto& rb = doc.at("rebuilds").at(0);
  EXPECT_EQ(rb.at("rank").number, 3.0);
  EXPECT_EQ(rb.at("stripes").at("count").number, 3.0);
  EXPECT_EQ(rb.at("peers").size(), 3u);
  EXPECT_EQ(rb.at("concurrent_lost").at(0).number, 3.0);
  ASSERT_EQ(doc.at("timeline").size(), 4u);
  EXPECT_EQ(doc.at("timeline").at(0).at("phase").string, "detect");
  EXPECT_EQ(doc.at("detect_latency_s").number, 0.001);
  EXPECT_EQ(doc.at("scrub").at("passes").number, 12.0);
  EXPECT_EQ(doc.at("scrub").at("repaired").number, 1.0);
}

// ------------------------------------------------------------ aggregator --

TEST_F(MonitorTest, AggregatorDerivesRatesAndPublishesGauges) {
  Histogram& dirty = metrics().histogram("ckpt.dirty_fraction");
  dirty.record(0.25);
  dirty.record(0.25);
  dirty.record(0.25);

  AggregatorConfig cfg;
  cfg.stall_phi = 0.0;  // board is off; silence the watchdog
  Aggregator agg(cfg);
  agg.tick();  // tick 1 establishes the baseline snapshot
  metrics().counter("ckpt.commits").add(10);
  metrics().counter("mpi.wire_bytes").add(1 << 20);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));  // dt > 0
  agg.tick();

  EXPECT_EQ(agg.ticks(), 2u);
  const MonitorSample s = agg.last_sample();
  EXPECT_EQ(s.tick, 2u);
  EXPECT_GT(s.commit_hz, 0.0);
  EXPECT_GT(s.wire_bps, 0.0);
  EXPECT_EQ(s.failure_hz, 0.0);
  EXPECT_NEAR(s.dirty_fraction, 0.25, 1e-6);

  const auto snap = metrics().snapshot();
  EXPECT_EQ(snap.counters.at("monitor.ticks"), 2u);
  EXPECT_GT(snap.gauges.at("monitor.commit_hz"), 0.0);
  EXPECT_GT(snap.gauges.at("monitor.wire_bytes_per_s"), 0.0);
  EXPECT_TRUE(agg.anomalies().empty());
}

TEST_F(MonitorTest, AggregatorStallWatchdogIsEdgeTriggered) {
  health().set_enabled(true);
  // A generous floor interval keeps the first tick calm: suspicion needs
  // ~7 ms of silence to cross the threshold, then the sleep provides 30.
  health().set_floor_interval_us(1000.0);
  for (int i = 0; i < 6; ++i) health().heartbeat(0);

  AggregatorConfig cfg;
  cfg.stall_phi = 3.0;
  Aggregator agg(cfg);
  agg.tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  agg.tick();
  agg.tick();  // still stalled: edge-trigger must not fire again

  int stalled = 0;
  for (const Anomaly& a : agg.anomalies()) {
    if (a.kind == "stalled_rank" && a.rank == 0) ++stalled;
  }
  EXPECT_EQ(stalled, 1);
  EXPECT_GT(agg.last_sample().max_phi, cfg.stall_phi);
}

TEST_F(MonitorTest, AggregatorRegressionWatchdogLatchesOnce) {
  Histogram& commit_s = metrics().histogram("ckpt.commit_s");
  for (int i = 0; i < 5; ++i) commit_s.record(0.01);

  AggregatorConfig cfg;
  cfg.stall_phi = 0.0;
  cfg.commit_p99_baseline_s = 0.001;
  cfg.regression_factor = 2.0;
  Aggregator agg(cfg);
  agg.tick();
  agg.tick();

  int regressions = 0;
  for (const Anomaly& a : agg.anomalies()) {
    if (a.kind == "commit_p99_regression") ++regressions;
  }
  EXPECT_EQ(regressions, 1);
  EXPECT_EQ(metrics().snapshot().counters.at("monitor.anomalies"), 1u);
}

TEST_F(MonitorTest, AggregatorFeedLinesAreParseableJson) {
  const std::string path = "monitor_test_feed.jsonl";
  std::remove(path.c_str());
  {
    AggregatorConfig cfg;
    cfg.stall_phi = 0.0;
    cfg.feed_path = path;
    Aggregator agg(cfg);
    agg.tick();
    metrics().counter("ckpt.commits").add(3);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    agg.tick();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    testing::json::Value v;
    ASSERT_NO_THROW(v = testing::json::parse(line)) << "feed line: " << line;
    EXPECT_EQ(v.at("tick").number, static_cast<double>(lines));
    EXPECT_TRUE(v.at("anomalies").is_array());
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

// -------------------------------------------------- launcher postmortems --

// The full pipeline of the kill scenario: heartbeat-driven detection with a
// measured latency, an incident postmortem naming the lost rank, epoch,
// and rebuilt stripe set, and a schema-valid POSTMORTEM_*.json on disk.
TEST_F(MonitorTest, LauncherAssemblesPostmortemWithMeasuredDetection) {
  const std::string pm_path = "POSTMORTEM_monitor_test.json";
  std::remove(pm_path.c_str());

  MiniCluster mc(4, 2);
  CkptAppConfig config;
  config.strategy = ckpt::Strategy::kSelf;
  config.group_size = 4;
  config.iterations = 4;

  sim::FailureInjector injector;
  injector.add_rule({.point = "ckpt.mid_flush", .world_rank = 1, .hit = 2, .repeat = false});
  mpi::LauncherConfig lc{.max_restarts = 3, .ranks_per_node = 1};
  lc.health.enabled = true;
  lc.postmortem_name = "monitor_test";
  mpi::JobLauncher launcher(mc.cluster, &injector, lc);
  const auto result = launcher.run(4, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  ASSERT_TRUE(result.success) << result.failure;
  ASSERT_EQ(result.restarts, 1);

  // One incident, fully assembled.
  ASSERT_EQ(result.postmortems.size(), 1u);
  const Postmortem& pm = result.postmortems.front();
  EXPECT_EQ(pm.lost_ranks, std::vector<int>{1});
  EXPECT_EQ(pm.lost_nodes, std::vector<int>{1});
  EXPECT_GE(pm.lost_epoch, 1u);
  EXPECT_TRUE(pm.recovered);
  EXPECT_GE(pm.restored_epoch, 1u);
  EXPECT_EQ(pm.geometry.group_size, 4);
  EXPECT_EQ(pm.geometry.members, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_EQ(pm.rebuilds.size(), 1u);
  EXPECT_EQ(pm.rebuilds.front().rank, 1);
  EXPECT_GT(pm.rebuilds.front().stripe_count, 0u);
  EXPECT_EQ(pm.rebuilds.front().peers, (std::vector<int>{0, 2, 3}));

  // Fig. 10 phases in wall order, with restore appended by the relaunch.
  ASSERT_EQ(pm.timeline.size(), 4u);
  EXPECT_EQ(pm.timeline[0].phase, "detect");
  EXPECT_EQ(pm.timeline[1].phase, "replace");
  EXPECT_EQ(pm.timeline[2].phase, "restart");
  EXPECT_EQ(pm.timeline[3].phase, "restore");

  // Detection was measured, not assumed: a real latency and a crossing
  // suspicion score, mirrored into the histogram and the cycle record.
  EXPECT_GE(pm.detect_latency_s, 0.0);
  EXPECT_GE(pm.detect_phi, HealthBoard::kDefaultPhiThreshold);
  ASSERT_EQ(result.cycles.size(), 1u);
  EXPECT_GE(result.cycles.front().detect_latency_s, 0.0);
  EXPECT_EQ(result.cycles.front().lost_ranks, std::vector<int>{1});
  const auto snap = metrics().snapshot();
  EXPECT_EQ(snap.counters.at("launcher.failures"), 1u);
  ASSERT_TRUE(snap.histograms.count("launcher.detect_latency_s"));
  EXPECT_EQ(snap.histograms.at("launcher.detect_latency_s").count, 1u);

  // The on-disk document parses and carries the same facts.
  std::ifstream in(pm_path);
  ASSERT_TRUE(in.good()) << pm_path << " was not written";
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto doc = testing::json::parse(text);
  EXPECT_EQ(doc.at("schema").string, "skt-postmortem-v2");
  EXPECT_EQ(doc.at("name").string, "monitor_test");
  EXPECT_EQ(doc.at("lost_ranks").at(0).number, 1.0);
  EXPECT_GE(doc.at("lost_epoch").number, 1.0);
  EXPECT_TRUE(doc.at("recovered").boolean);
  EXPECT_EQ(doc.at("rebuilds").at(0).at("rank").number, 1.0);
  EXPECT_GT(doc.at("rebuilds").at(0).at("stripes").at("count").number, 0.0);
  std::remove(pm_path.c_str());

  // The recorder's history got the same record.
  EXPECT_EQ(forensics::recorder().postmortems().size(), 1u);
}

// Health monitoring off: the launcher still assembles the postmortem from
// the always-on recorder notes, but detection latency stays unmeasured.
TEST_F(MonitorTest, PostmortemWithoutHealthMonitoring) {
  MiniCluster mc(4, 2);
  CkptAppConfig config;
  config.strategy = ckpt::Strategy::kSelf;
  config.group_size = 4;
  config.iterations = 4;

  sim::FailureInjector injector;
  injector.add_rule({.point = "ckpt.sealed", .world_rank = 2, .hit = 2, .repeat = false});
  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 3, .ranks_per_node = 1});
  const auto result = launcher.run(4, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  ASSERT_TRUE(result.success) << result.failure;

  ASSERT_EQ(result.postmortems.size(), 1u);
  const Postmortem& pm = result.postmortems.front();
  EXPECT_EQ(pm.lost_ranks, std::vector<int>{2});
  EXPECT_TRUE(pm.recovered);
  ASSERT_EQ(pm.rebuilds.size(), 1u);
  EXPECT_EQ(pm.rebuilds.front().rank, 2);
  EXPECT_EQ(pm.detect_latency_s, -1.0);
  EXPECT_EQ(result.cycles.front().detect_latency_s, -1.0);
}

}  // namespace
}  // namespace skt::telemetry
