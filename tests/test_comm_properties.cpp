// Property-style sweeps over the SimMPI collectives: random payloads,
// every root, varying rank counts and message sizes, nested splits, and
// interleaved collectives on overlapping communicators — the traffic
// patterns the encoding and HPL layers generate.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "testing.hpp"
#include "util/rng.hpp"

namespace skt::mpi {
namespace {

using skt::testing::MiniCluster;

class CollectiveSweep
    : public ::testing::TestWithParam<std::tuple<int /*ranks*/, int /*elements*/>> {};

TEST_P(CollectiveSweep, BcastDeliversExactPayloadFromEveryRoot) {
  const auto [ranks, elements] = GetParam();
  MiniCluster mc(ranks, 0);
  const auto result = mc.run(ranks, [elements = elements](Comm& world) {
    for (int root = 0; root < world.size(); ++root) {
      std::vector<std::uint64_t> data(static_cast<std::size_t>(elements));
      if (world.rank() == root) {
        util::Xoshiro256 rng(static_cast<std::uint64_t>(root) * 7919 + 13);
        for (auto& v : data) v = rng.next();
      }
      world.bcast<std::uint64_t>(root, data);
      util::Xoshiro256 rng(static_cast<std::uint64_t>(root) * 7919 + 13);
      for (const auto v : data) ASSERT_EQ(v, rng.next());
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST_P(CollectiveSweep, ReduceMatchesLocalFold) {
  const auto [ranks, elements] = GetParam();
  MiniCluster mc(ranks, 0);
  const auto result = mc.run(ranks, [elements = elements, ranks = ranks](Comm& world) {
    std::vector<std::uint64_t> mine(static_cast<std::size_t>(elements));
    util::Xoshiro256 rng(static_cast<std::uint64_t>(world.rank()) * 104729 + 1);
    for (auto& v : mine) v = rng.next();

    // Expected XOR fold over all ranks, computed locally.
    std::vector<std::uint64_t> expect(static_cast<std::size_t>(elements), 0);
    for (int r = 0; r < ranks; ++r) {
      util::Xoshiro256 rr(static_cast<std::uint64_t>(r) * 104729 + 1);
      for (auto& v : expect) v ^= rr.next();
    }

    for (int root = 0; root < world.size(); ++root) {
      std::vector<std::uint64_t> out(mine.size());
      world.reduce<std::uint64_t>(root, mine, out, BXor{});
      if (world.rank() == root) {
        ASSERT_EQ(out, expect) << "root " << root;
      }
    }
    std::vector<std::uint64_t> all(mine.size());
    world.allreduce<std::uint64_t>(mine, all, BXor{});
    ASSERT_EQ(all, expect);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

INSTANTIATE_TEST_SUITE_P(Shapes, CollectiveSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 16),
                                            ::testing::Values(1, 17, 1024)));

TEST(CommProperties, SplitOfSplitKeepsTranslationChain) {
  MiniCluster mc(12, 0);
  const auto result = mc.run(12, [](Comm& world) {
    // First split: thirds. Second split: parity within each third.
    Comm third = world.split(world.rank() / 4, world.rank());
    Comm pair = third.split(third.rank() % 2, third.rank());
    EXPECT_EQ(third.size(), 4);
    EXPECT_EQ(pair.size(), 2);
    // translate() composes back to world ranks.
    const int peer_world = pair.translate(1 - pair.rank());
    EXPECT_EQ(peer_world % 4 % 2, world.rank() % 4 % 2);
    EXPECT_EQ(peer_world / 4, world.rank() / 4);
    // Collectives on the innermost comm behave.
    const int sum = pair.allreduce_value<int>(world.rank(), Sum{});
    EXPECT_EQ(sum, world.rank() + peer_world);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(CommProperties, InterleavedCollectivesOnOverlappingComms) {
  // Row/col style: every rank alternates collectives on two different
  // sub-communicators plus the world — the HPL elimination pattern. Tag
  // sequencing must keep the streams separate.
  MiniCluster mc(12, 0);
  const auto result = mc.run(12, [](Comm& world) {
    Comm row = world.split(world.rank() / 4, world.rank());
    Comm col = world.split(100 + world.rank() % 4, world.rank());
    for (int i = 0; i < 10; ++i) {
      const int row_sum = row.allreduce_value<int>(world.rank() + i, Sum{});
      const int col_sum = col.allreduce_value<int>(world.rank() + i, Sum{});
      world.barrier();
      int expect_row = 0;
      const int row_base = world.rank() / 4 * 4;
      for (int k = 0; k < 4; ++k) expect_row += row_base + k + i;
      int expect_col = 0;
      for (int k = 0; k < 3; ++k) expect_col += world.rank() % 4 + 4 * k + i;
      ASSERT_EQ(row_sum, expect_row) << i;
      ASSERT_EQ(col_sum, expect_col) << i;
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(CommProperties, GatherScatterRoundTripRandomSizes) {
  MiniCluster mc(6, 0);
  const auto result = mc.run(6, [](Comm& world) {
    for (const int chunk : {1, 5, 64}) {
      std::vector<double> mine(static_cast<std::size_t>(chunk));
      for (int i = 0; i < chunk; ++i) {
        mine[static_cast<std::size_t>(i)] = world.rank() * 1000.0 + i;
      }
      const std::vector<double> all = world.gather<double>(3, mine);
      std::vector<double> back(static_cast<std::size_t>(chunk), -1.0);
      world.scatter<double>(3, all, back);
      // gather then scatter is the identity on each rank's chunk.
      ASSERT_EQ(back, mine) << "chunk " << chunk;
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(CommProperties, MaxLocAgreesWithSerialScan) {
  MiniCluster mc(9, 0);
  const auto result = mc.run(9, [](Comm& world) {
    util::Xoshiro256 rng(777);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<double> values(9);
      for (auto& v : values) v = rng.next_centered();
      const ValueLoc mine{values[static_cast<std::size_t>(world.rank())], world.rank()};
      const ValueLoc best = world.allreduce_value<ValueLoc>(mine, MaxLoc{});
      // serial reference
      ValueLoc expect{values[0], 0};
      for (int r = 1; r < 9; ++r) {
        expect = MaxLoc{}(expect, ValueLoc{values[static_cast<std::size_t>(r)], r});
      }
      ASSERT_EQ(best.index, expect.index) << trial;
      ASSERT_DOUBLE_EQ(best.value, expect.value);
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(CommProperties, PipelineBcastMatchesBinomialForAllRootsAndChunks) {
  MiniCluster mc(6, 0);
  const auto result = mc.run(6, [](Comm& world) {
    for (int root = 0; root < world.size(); ++root) {
      for (const std::size_t chunk : {8u, 64u, 4096u, 1u << 20}) {
        std::vector<std::uint64_t> via_pipeline(301);
        std::vector<std::uint64_t> via_tree(301);
        if (world.rank() == root) {
          util::Xoshiro256 rng(static_cast<std::uint64_t>(root) * 31 + chunk);
          for (std::size_t i = 0; i < via_pipeline.size(); ++i) {
            via_pipeline[i] = rng.next();
            via_tree[i] = via_pipeline[i];
          }
        }
        world.bcast_pipeline<std::uint64_t>(root, via_pipeline, chunk);
        world.bcast<std::uint64_t>(root, via_tree);
        ASSERT_EQ(via_pipeline, via_tree) << "root " << root << " chunk " << chunk;
      }
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(CommProperties, PipelineBcastEdgeCases) {
  MiniCluster mc(2, 0);
  const auto result = mc.run(2, [](Comm& world) {
    std::vector<std::byte> empty;
    world.bcast_pipeline(0, std::span<std::byte>(empty));  // no-op, no hang
    std::vector<std::uint64_t> one{world.rank() == 1 ? 42u : 0u};
    world.bcast_pipeline<std::uint64_t>(1, one, 3);  // chunk smaller than element
    EXPECT_EQ(one[0], 42u);
    std::vector<std::byte> buf(8);
    EXPECT_THROW(world.bcast_pipeline(0, std::span<std::byte>(buf), 0),
                 std::invalid_argument);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(CommProperties, InterRackLatencyHigherThanIntraRack) {
  sim::NodeProfile profile;
  profile.nic_bandwidth_Bps = 1e9;
  profile.nic_latency_s = 1e-3;
  profile.inter_rack_latency_s = 5e-3;
  // 4 nodes, 2 per rack: ranks 0,1 share rack 0; rank 2 is in rack 1.
  sim::Cluster cluster(
      {.num_nodes = 4, .spare_nodes = 0, .nodes_per_rack = 2, .profile = profile});
  mpi::Runtime rt(cluster, {0, 1, 2, 3}, nullptr, {.model_network = true});
  double intra = 0.0;
  double inter = 0.0;
  const auto result = rt.run([&](Comm& world) {
    const std::vector<std::byte> byte_payload(8);
    if (world.rank() == 0) {
      const double v0 = world.virtual_seconds();
      world.send_bytes(1, 1, byte_payload);  // same rack
      const double v1 = world.virtual_seconds();
      world.send_bytes(2, 2, byte_payload);  // other rack
      const double v2 = world.virtual_seconds();
      intra = v1 - v0;
      inter = v2 - v1;
    }
    if (world.rank() == 1) world.recv_any(0, 1);
    if (world.rank() == 2) world.recv_any(0, 2);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_NEAR(intra, 1e-3, 1e-4);
  EXPECT_NEAR(inter, 5e-3, 1e-4);
}

}  // namespace
}  // namespace skt::mpi
