// The background scrubber: silent bit flips in sealed checkpoint buffers
// must be DETECTED (CRC32C against the seal-time baseline) and, for
// mirror-backed regions, REPAIRED in place from the byte-identical twin —
// all between commits, without ever delaying one. These tests drive
// Session-owned scrubbers over live protocols inside the simulator.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "ckpt/scrubber.hpp"
#include "ckpt/session.hpp"
#include "ckpt_harness.hpp"
#include "telemetry/metrics.hpp"
#include "testing.hpp"

namespace skt::ckpt {
namespace {

using skt::testing::fill_pattern;

/// A session whose cadence thread is parked far in the future, so every
/// pass in the test is an explicit, deterministic scrub_now().
Session manual_scrub_session(mpi::Comm& world, Strategy strategy, int parity,
                             CommitMode mode = CommitMode::kSync) {
  return SessionBuilder{}
      .strategy(strategy)
      .group_size(world.size())
      .data_bytes(4096)
      .parity_degree(parity)
      .key_prefix("scrub")
      .mode(mode)
      .scrub_interval(3600.0)
      .build(world);
}

ScrubRegion first_mirrored(std::vector<ScrubRegion> view) {
  for (ScrubRegion& r : view) {
    if (!r.mirror.empty()) return r;
  }
  throw std::logic_error("no mirror-backed scrub region");
}

TEST(Scrubber, DetectsAndRepairsBitFlipFromMirror) {
  skt::testing::MiniCluster mc(4);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    Session session = manual_scrub_session(world, Strategy::kSelf, 2);
    ASSERT_EQ(session.open(), OpenOutcome::kFresh);
    fill_pattern(session.data(), 7, world.rank(), 1);
    session.commit();

    ASSERT_NE(session.scrubber(), nullptr);
    session.scrubber()->scrub_now();  // baseline pass for this epoch

    ScrubRegion region = first_mirrored(session.unsafe_protocol().scrub_view());
    const std::byte original = region.bytes[5];
    region.bytes[5] ^= std::byte{0x40};

    const ScrubStats pass = session.scrubber()->scrub_now();
    EXPECT_GT(pass.chunks_verified, 0u);
    EXPECT_EQ(pass.corruption_detected, 1u);
    EXPECT_EQ(pass.repaired, 1u);
    EXPECT_EQ(pass.unrepaired, 0u);
    EXPECT_EQ(region.bytes[5], original);  // byte restored from the twin

    // The repaired buffer verifies clean on the next pass.
    const ScrubStats clean = session.scrubber()->scrub_now();
    EXPECT_EQ(clean.corruption_detected, 0u);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Scrubber, UnmirroredCorruptionIsCountedNotRepaired) {
  skt::testing::MiniCluster mc(4);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    Session session = manual_scrub_session(world, Strategy::kSelf, 1);
    ASSERT_EQ(session.open(), OpenOutcome::kFresh);
    fill_pattern(session.data(), 11, world.rank(), 1);
    session.commit();
    session.scrubber()->scrub_now();

    // "B" (the full checkpoint copy) has no quiescent twin: detection
    // without repair is the honest outcome.
    std::vector<ScrubRegion> view = session.unsafe_protocol().scrub_view();
    ASSERT_FALSE(view.empty());
    ASSERT_TRUE(view.front().mirror.empty()) << view.front().name;
    view.front().bytes[9] ^= std::byte{0x01};

    const ScrubStats pass = session.scrubber()->scrub_now();
    EXPECT_EQ(pass.corruption_detected, 1u);
    EXPECT_EQ(pass.repaired, 0u);
    EXPECT_EQ(pass.unrepaired, 1u);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Scrubber, RebaselinesAfterEveryCommitWithoutFalsePositives) {
  skt::testing::MiniCluster mc(4);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    Session session = manual_scrub_session(world, Strategy::kSelf, 2);
    ASSERT_EQ(session.open(), OpenOutcome::kFresh);
    std::uint64_t detected = 0;
    for (std::uint64_t it = 1; it <= 4; ++it) {
      // A legitimate full rewrite + commit must never read as corruption:
      // the epoch change makes the next pass recapture baselines.
      fill_pattern(session.data(), 13, world.rank(), it);
      session.commit();
      detected += session.scrubber()->scrub_now().corruption_detected;  // baseline
      detected += session.scrubber()->scrub_now().corruption_detected;  // verify
    }
    EXPECT_EQ(detected, 0u);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Scrubber, DoubleFlipHittingBothTwinsIsNotMisrepaired) {
  skt::testing::MiniCluster mc(4);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    Session session = manual_scrub_session(world, Strategy::kSelf, 2);
    ASSERT_EQ(session.open(), OpenOutcome::kFresh);
    fill_pattern(session.data(), 17, world.rank(), 1);
    session.commit();
    session.scrubber()->scrub_now();

    // Corrupt the SAME chunk of both twins: neither side can vouch for
    // the other, so "repairing" one from the other would launder garbage.
    ScrubRegion region = first_mirrored(session.unsafe_protocol().scrub_view());
    region.bytes[2] ^= std::byte{0x08};
    region.mirror[2] ^= std::byte{0x80};

    const ScrubStats pass = session.scrubber()->scrub_now();
    EXPECT_EQ(pass.corruption_detected, 2u);  // once per twin region
    EXPECT_EQ(pass.repaired, 0u);
    EXPECT_EQ(pass.unrepaired, 2u);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Scrubber, BackgroundCadenceThreadRepairsWhileRankIdles) {
  skt::testing::MiniCluster mc(4);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    Session session = SessionBuilder{}
                          .strategy(Strategy::kSelf)
                          .group_size(world.size())
                          .data_bytes(4096)
                          .parity_degree(2)
                          .key_prefix("scrub_bg")
                          .scrub_interval(0.0002)
                          .build(world);
    ASSERT_EQ(session.open(), OpenOutcome::kFresh);
    fill_pattern(session.data(), 19, world.rank(), 1);
    session.commit();

    // Let the cadence thread take its baseline, then flip a byte and wait
    // for the BACKGROUND pass (no scrub_now) to repair it.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (session.scrubber()->stats().passes == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(session.scrubber()->stats().passes, 0u) << "cadence thread never ticked";

    // Flip (and later re-read) under the commit-exclusion lock — the same
    // handshake commits use — so the cadence thread never sees a torn
    // write.
    ScrubRegion region = first_mirrored(session.unsafe_protocol().scrub_view());
    std::byte original;
    {
      std::lock_guard<std::mutex> lock(session.scrubber()->commit_exclusion());
      original = region.bytes[64];
      region.bytes[64] ^= std::byte{0x20};
    }
    while (session.scrubber()->stats().repaired == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const ScrubStats stats = session.scrubber()->stats();
    EXPECT_GE(stats.corruption_detected, 1u);
    EXPECT_GE(stats.repaired, 1u);
    EXPECT_EQ(stats.unrepaired, 0u);
    {
      std::lock_guard<std::mutex> lock(session.scrubber()->commit_exclusion());
      EXPECT_EQ(region.bytes[64], original);
    }
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

TEST(Scrubber, AsyncCommitsAndCadenceScrubberCoexistCleanly) {
  // The commit-exclusion handshake under load: a fast cadence scrubber
  // racing an async commit pipeline must neither delay commits, tear
  // reads (TSan lane), nor report phantom corruption.
  skt::testing::MiniCluster mc(4);
  const std::uint64_t unrepaired_before =
      telemetry::metrics().counter("scrub.unrepaired").value();
  const std::uint64_t detected_before =
      telemetry::metrics().counter("scrub.corruption_detected").value();
  const auto result = mc.run(4, [](mpi::Comm& world) {
    skt::testing::CkptAppConfig config;
    config.strategy = Strategy::kSelf;
    config.group_size = world.size();
    config.parity_degree = 2;
    config.iterations = 8;
    config.data_bytes = 4096;
    config.mode = CommitMode::kAsync;
    config.scrub_interval = 0.0001;
    skt::testing::checkpointed_app(world, config);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
  EXPECT_EQ(telemetry::metrics().counter("scrub.corruption_detected").value(),
            detected_before)
      << "phantom corruption under async commits";
  EXPECT_EQ(telemetry::metrics().counter("scrub.unrepaired").value(), unrepaired_before);
}

TEST(Scrubber, DoubleCheckpointRegionsAreScrubbableButUnmirrored) {
  skt::testing::MiniCluster mc(4);
  const auto result = mc.run(4, [](mpi::Comm& world) {
    Session session = manual_scrub_session(world, Strategy::kDouble, 2);
    ASSERT_EQ(session.open(), OpenOutcome::kFresh);
    fill_pattern(session.data(), 23, world.rank(), 1);
    session.commit();
    // Double-checkpoint's buffer pairs hold DIFFERENT epochs, so no region
    // may advertise a mirror (a cross-epoch "repair" would corrupt).
    for (const ScrubRegion& r : session.unsafe_protocol().scrub_view()) {
      EXPECT_TRUE(r.mirror.empty()) << r.name;
    }
    session.scrubber()->scrub_now();  // baseline
    const ScrubStats pass = session.scrubber()->scrub_now();
    EXPECT_GT(pass.chunks_verified, 0u);
    EXPECT_EQ(pass.corruption_detected, 0u);
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;
}

}  // namespace
}  // namespace skt::ckpt
