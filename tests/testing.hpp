// Shared helpers for tests: one-line job execution over a fresh cluster.
#pragma once

#include <functional>
#include <memory>

#include "mpi/comm.hpp"
#include "mpi/launcher.hpp"
#include "mpi/runtime.hpp"
#include "sim/cluster.hpp"

namespace skt::testing {

struct MiniCluster {
  explicit MiniCluster(int nodes, int spares = 2, sim::NodeProfile profile = {},
                       int nodes_per_rack = 4)
      : cluster({.num_nodes = nodes,
                 .spare_nodes = spares,
                 .nodes_per_rack = nodes_per_rack,
                 .profile = profile}) {}

  /// Run fn as an nranks job, one rank per node. Asserts completion is up
  /// to the caller (returns the JobResult).
  mpi::JobResult run(int nranks, const std::function<void(mpi::Comm&)>& fn,
                     sim::FailureInjector* injector = nullptr) {
    std::vector<int> ranklist(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) ranklist[static_cast<std::size_t>(r)] = r;
    mpi::Runtime rt(cluster, ranklist, injector);
    return rt.run(fn);
  }

  sim::Cluster cluster;
};

}  // namespace skt::testing
