// Telemetry layer: metrics aggregation across rank threads, span ring
// semantics (wrap-around, survival of a killed node's spans), failpoint
// instants in the exported Chrome trace, and RunReport JSON shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ckpt_harness.hpp"
#include "json_reader.hpp"
#include "mpi/launcher.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "testing.hpp"

namespace skt::telemetry {
namespace {

using skt::testing::CkptAppConfig;
using skt::testing::checkpointed_app;
using skt::testing::MiniCluster;

/// Every test starts from an enabled, empty registry and tracer and leaves
/// telemetry off again (the process default other suites expect).
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    metrics().reset_values();
    Tracer::instance().clear();
  }
  void TearDown() override { set_enabled(false); }
};

TEST_F(TelemetryTest, CountersAggregateAcrossRanks) {
  MiniCluster mc(4, 0);
  const auto result = mc.run(4, [](mpi::Comm& w) {
    // Each rank contributes rank+1; the process-wide registry IS the
    // job-wide aggregate because ranks are threads.
    metrics().counter("test.rank_sum").add(static_cast<std::uint64_t>(w.rank()) + 1);
    w.barrier();
  });
  ASSERT_TRUE(result.completed) << result.abort_reason;

  const auto snap = metrics().snapshot();
  ASSERT_TRUE(snap.counters.count("test.rank_sum"));
  EXPECT_EQ(snap.counters.at("test.rank_sum"), 1u + 2u + 3u + 4u);
  // The runtime's own wire accounting rode along (the barrier exchanged
  // messages).
  ASSERT_TRUE(snap.counters.count("mpi.wire_messages"));
  EXPECT_GT(snap.counters.at("mpi.wire_messages"), 0u);
}

TEST_F(TelemetryTest, HistogramSummarizesQuantiles) {
  Histogram& h = metrics().histogram("test.latency");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));

  const HistogramSummary s = h.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.quantiles.p50, 50.5, 1.0);
  EXPECT_NEAR(s.quantiles.p90, 90.1, 1.0);
  EXPECT_NEAR(s.quantiles.p99, 99.0, 1.0);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t b : s.buckets) bucketed += b;
  EXPECT_EQ(bucketed, 100u);
}

TEST_F(TelemetryTest, HistogramIsNoopWhileDisabled) {
  Histogram& h = metrics().histogram("test.gated");
  set_enabled(false);
  h.record(1.0);
  EXPECT_EQ(h.summarize().count, 0u);
  set_enabled(true);
  h.record(1.0);
  EXPECT_EQ(h.summarize().count, 1u);
}

TEST_F(TelemetryTest, SpanRingWrapsAndCountsDropped) {
  SpanRecord rec;
  std::strncpy(rec.name, "test.flood", sizeof(rec.name) - 1);
  rec.rank = 7;
  const std::uint64_t extra = 10;
  for (std::uint64_t i = 0; i < Tracer::kRingCapacity + extra; ++i) {
    rec.t0_us = static_cast<double>(i);
    Tracer::instance().push(rec);
  }
  EXPECT_EQ(Tracer::instance().total_dropped(), extra);
  const auto records = Tracer::instance().collect();
  ASSERT_EQ(records.size(), Tracer::kRingCapacity);
  // Oldest entries were overwritten; the survivors are the newest ones.
  EXPECT_DOUBLE_EQ(records.front().t0_us, static_cast<double>(extra));
}

TEST_F(TelemetryTest, NestedSpansRecordParent) {
  {
    SKT_SPAN("test.outer");
    SKT_SPAN("test.inner");
  }
  const auto records = Tracer::instance().collect();
  ASSERT_EQ(records.size(), 2u);
  // Inner closes first but starts later; collect() sorts by start time.
  EXPECT_STREQ(records[0].name, "test.outer");
  EXPECT_STREQ(records[1].name, "test.inner");
  EXPECT_STREQ(records[1].parent, "test.outer");
  EXPECT_EQ(records[1].depth, 1u);
  EXPECT_STREQ(records[0].parent, "");
}

TEST_F(TelemetryTest, DisabledSpanRecordsNothing) {
  set_enabled(false);
  {
    SKT_SPAN("test.invisible");
  }
  EXPECT_TRUE(Tracer::instance().collect().empty());
}

// The headline scenario: a node is powered off mid-flush (CASE 2). The
// spans its rank recorded before dying must survive in the tracer — the
// rings belong to the process-wide Tracer, not to the dead thread — and
// the exported trace must show the failpoint hit, the launcher recovery
// cycle, and the restore.
TEST_F(TelemetryTest, SpansSurviveKilledNodeAndTraceShowsRecovery) {
  MiniCluster mc(4, 2);
  CkptAppConfig config;
  config.strategy = ckpt::Strategy::kSelf;
  config.group_size = 4;
  config.iterations = 4;

  sim::FailureInjector injector;
  injector.add_rule({.point = "ckpt.mid_flush", .world_rank = 1, .hit = 2, .repeat = false});
  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 3, .ranks_per_node = 1});
  const auto result = launcher.run(4, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  ASSERT_TRUE(result.success) << result.failure;
  ASSERT_EQ(injector.triggered_count(), 1u);

  bool saw_fail = false;
  bool saw_restore = false;
  bool saw_replace = false;
  std::set<int> commit_ranks;
  for (const auto& rec : Tracer::instance().collect()) {
    if (std::strcmp(rec.name, "fail:ckpt.mid_flush") == 0 && rec.instant()) {
      saw_fail = true;
      EXPECT_EQ(rec.rank, 1);  // recorded on the victim's row before the kill
    }
    if (std::strcmp(rec.name, "ckpt.restore") == 0) saw_restore = true;
    if (std::strcmp(rec.name, "launcher.replace") == 0) saw_replace = true;
    if (std::strcmp(rec.name, "ckpt.commit") == 0) commit_ranks.insert(rec.rank);
  }
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_restore);
  EXPECT_TRUE(saw_replace);
  // Every rank's commit spans are present — including the killed rank's
  // pre-kill commit (epoch 1 completed before the hit-2 kill).
  EXPECT_EQ(commit_ranks, (std::set<int>{0, 1, 2, 3}));

  const auto snap = metrics().snapshot();
  EXPECT_GT(snap.counters.at("ckpt.commits"), 0u);
  EXPECT_GT(snap.counters.at("ckpt.restores"), 0u);

  // The Chrome export carries the same evidence as named events.
  const std::string json = Tracer::instance().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("fail:ckpt.mid_flush"), std::string::npos);
  EXPECT_NE(json.find("ckpt.restore"), std::string::npos);
  EXPECT_NE(json.find("launcher.replace"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

// Chrome-trace export well-formedness, checked with a real JSON parser
// rather than substring probes: the document parses, complete ("X") spans
// on one row nest properly (no partial overlap — what chrome://tracing
// renders as a broken flame graph), and failpoint instants carry the
// victim's rank row and the epoch that was being committed.
TEST_F(TelemetryTest, ChromeTraceExportIsWellFormedJson) {
  MiniCluster mc(4, 2);
  CkptAppConfig config;
  config.strategy = ckpt::Strategy::kSelf;
  config.group_size = 4;
  config.iterations = 4;

  sim::FailureInjector injector;
  injector.add_rule({.point = "ckpt.mid_flush", .world_rank = 1, .hit = 2, .repeat = false});
  mpi::JobLauncher launcher(mc.cluster, &injector, {.max_restarts = 3, .ranks_per_node = 1});
  const auto result = launcher.run(4, [&](mpi::Comm& w) { checkpointed_app(w, config); });
  ASSERT_TRUE(result.success) << result.failure;

  const std::string text = Tracer::instance().chrome_trace_json();
  testing::json::Value doc;
  ASSERT_NO_THROW(doc = testing::json::parse(text)) << "export is not valid JSON";
  ASSERT_TRUE(doc.has("traceEvents"));
  const auto& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);

  struct SpanEvt {
    double ts, dur;
    std::string name;
  };
  std::map<std::int64_t, std::vector<SpanEvt>> spans_by_tid;
  bool saw_fail_instant = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events.at(i);
    ASSERT_TRUE(e.has("name") && e.has("ph") && e.has("pid") && e.has("tid"));
    const std::string ph = e.at("ph").string;
    if (ph == "X") {
      ASSERT_TRUE(e.has("ts") && e.has("dur"));
      EXPECT_GE(e.at("dur").number, 0.0);
      spans_by_tid[static_cast<std::int64_t>(e.at("tid").number)].push_back(
          {e.at("ts").number, e.at("dur").number, e.at("name").string});
    } else if (ph == "i" && e.at("name").string == "fail:ckpt.mid_flush") {
      saw_fail_instant = true;
      // Right rank: the instant sits on the victim's row. Right epoch: the
      // kill landed inside the commit of epoch 2 (hit 2 of a per-iteration
      // commit cadence), which the protocol stamps at commit entry.
      EXPECT_EQ(static_cast<int>(e.at("tid").number), 1);
      ASSERT_TRUE(e.at("args").has("epoch"));
      EXPECT_EQ(static_cast<std::uint64_t>(e.at("args").at("epoch").number), 2u);
    }
  }
  EXPECT_TRUE(saw_fail_instant);

  // Nesting balance per row: any two complete spans are either disjoint or
  // one fully contains the other. Partial overlap means a begin/end pair
  // crossed — a malformed flame graph.
  for (auto& [tid, spans] : spans_by_tid) {
    std::sort(spans.begin(), spans.end(),
              [](const SpanEvt& a, const SpanEvt& b) { return a.ts < b.ts; });
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const double a_end = spans[i].ts + spans[i].dur;
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        if (spans[j].ts >= a_end) break;  // disjoint from here on (sorted)
        EXPECT_LE(spans[j].ts + spans[j].dur, a_end + 1e-6)
            << "row " << tid << ": span '" << spans[j].name
            << "' partially overlaps '" << spans[i].name << "'";
      }
    }
  }
}

// The report's drop accounting: flooding one rank's ring past capacity
// must show up both in the total and in the per-rank breakdown.
TEST_F(TelemetryTest, RunReportCarriesPerRankDropCounts) {
  SpanRecord rec;
  std::strncpy(rec.name, "test.flood", sizeof(rec.name) - 1);
  rec.rank = 3;
  const std::uint64_t extra = 17;
  for (std::uint64_t i = 0; i < Tracer::kRingCapacity + extra; ++i) {
    rec.t0_us = static_cast<double>(i);
    Tracer::instance().push(rec);
  }
  const auto by_rank = Tracer::instance().dropped_by_rank();
  ASSERT_EQ(by_rank.size(), 1u);
  EXPECT_EQ(by_rank.at(3), extra);

  const auto doc = testing::json::parse(RunReport("drops").json());
  EXPECT_EQ(static_cast<std::uint64_t>(doc.at("trace_spans_dropped").number), extra);
  EXPECT_EQ(static_cast<std::uint64_t>(doc.at("trace_dropped_by_rank").at("3").number),
            extra);
}

TEST_F(TelemetryTest, RunReportCarriesScalarsAndMetrics) {
  metrics().counter("test.bytes").add(42);
  Histogram& h = metrics().histogram("test.phase_s");
  h.record(2.0);
  h.record(4.0);

  RunReport report("unit");
  report.set("n", static_cast<std::int64_t>(384));
  report.set("residual", 1.5e-9);
  report.set("passed", true);
  report.set("strategy", "self-checkpoint");
  report.set("n", static_cast<std::int64_t>(512));  // overwrite in place

  const std::string json = report.json();
  EXPECT_NE(json.find("\"report\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 512"), std::string::npos);
  EXPECT_EQ(json.find("\"n\": 384"), std::string::npos);
  EXPECT_NE(json.find("\"passed\": true"), std::string::npos);
  EXPECT_NE(json.find("self-checkpoint"), std::string::npos);
  EXPECT_NE(json.find("\"test.bytes\": 42"), std::string::npos);
  EXPECT_NE(json.find("test.phase_s"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);

  RunReport bare("bare");
  bare.set_include_metrics(false);
  EXPECT_EQ(bare.json().find("test.bytes"), std::string::npos);
}

}  // namespace
}  // namespace skt::telemetry
