#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "storage/device.hpp"
#include "storage/snapshot_vault.hpp"

namespace skt::storage {
namespace {

TEST(Device, TransferTimesScaleLinearly) {
  const Device ssd(ssd_profile());
  const double t1 = ssd.write_seconds(100 << 20);
  const double t2 = ssd.write_seconds(200 << 20);
  // Latency is tiny against 100 MiB transfers; the ratio is ~2.
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
  EXPECT_LT(ssd.read_seconds(100 << 20), t1);  // reads faster than writes
}

TEST(Device, LatencyDominatesSmallTransfers) {
  const Device hdd(hdd_profile());
  const double tiny = hdd.write_seconds(16);
  EXPECT_GT(tiny, hdd.profile().latency_s * 0.99);
  EXPECT_LT(tiny, hdd.profile().latency_s * 1.5);
}

TEST(Device, SharersDivideBandwidth) {
  const Device solo(ssd_profile(1));
  const Device shared(ssd_profile(8));
  const std::size_t size = 1u << 30;
  EXPECT_NEAR(shared.write_seconds(size) / solo.write_seconds(size), 8.0, 0.1);
}

TEST(Device, ZeroBandwidthProfileRejectsIO) {
  const Device null_device(DeviceProfile{});
  EXPECT_THROW((void)null_device.write_seconds(1), std::logic_error);
}

TEST(Device, ProfilePresetsAreOrdered) {
  // ramfs > pfs > ssd > hdd on sequential writes.
  EXPECT_GT(ramfs_profile().write_bandwidth_Bps, pfs_profile().write_bandwidth_Bps);
  EXPECT_GT(pfs_profile().write_bandwidth_Bps, ssd_profile().write_bandwidth_Bps);
  EXPECT_GT(ssd_profile().write_bandwidth_Bps, hdd_profile().write_bandwidth_Bps);
}

TEST(SnapshotVault, PutGetRemove) {
  SnapshotVault vault;
  const std::vector<std::byte> blob{std::byte{1}, std::byte{2}, std::byte{3}};
  vault.put("a", blob);
  EXPECT_TRUE(vault.exists("a"));
  const auto back = vault.get("a");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blob);
  EXPECT_EQ(vault.bytes_in_use(), 3u);

  vault.remove("a");
  EXPECT_FALSE(vault.exists("a"));
  EXPECT_FALSE(vault.get("a").has_value());
}

TEST(SnapshotVault, PutReplacesAtomically) {
  SnapshotVault vault;
  vault.put("k", std::vector<std::byte>(10, std::byte{1}));
  vault.put("k", std::vector<std::byte>(4, std::byte{2}));
  const auto back = vault.get("k");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 4u);
  EXPECT_EQ((*back)[0], std::byte{2});
  EXPECT_EQ(vault.bytes_in_use(), 4u);
}

TEST(SnapshotVault, GetReturnsCopyNotView) {
  SnapshotVault vault;
  vault.put("k", std::vector<std::byte>(4, std::byte{7}));
  auto copy = vault.get("k");
  ASSERT_TRUE(copy.has_value());
  (*copy)[0] = std::byte{9};
  EXPECT_EQ((*vault.get("k"))[0], std::byte{7});
}

TEST(SnapshotVault, BytesUnderEmptyPrefixCountsEverything) {
  SnapshotVault vault;
  vault.put("a", std::vector<std::byte>(3, std::byte{1}));
  vault.put("b/c", std::vector<std::byte>(5, std::byte{2}));
  // The empty prefix matches every key: bytes_under("") == bytes_in_use().
  EXPECT_EQ(vault.bytes_under(""), vault.bytes_in_use());
  EXPECT_EQ(vault.bytes_under(""), 8u);
}

TEST(SnapshotVault, BytesUnderPrefixEqualToFullKey) {
  SnapshotVault vault;
  vault.put("ns/t/img", std::vector<std::byte>(7, std::byte{1}));
  // A prefix equal to a complete key matches that key (closed interval).
  EXPECT_EQ(vault.bytes_under("ns/t/img"), 7u);
  // ...and longer prefixes match nothing.
  EXPECT_EQ(vault.bytes_under("ns/t/img0"), 0u);
}

TEST(SnapshotVault, OverlappingPrefixesStayDistinct) {
  SnapshotVault vault;
  vault.put("ns/a", std::vector<std::byte>(1, std::byte{1}));
  vault.put("ns/ab", std::vector<std::byte>(2, std::byte{2}));
  vault.put("ns/ab/x", std::vector<std::byte>(4, std::byte{3}));
  vault.put("ns/b", std::vector<std::byte>(8, std::byte{4}));
  // "ns/a" is a string prefix of "ns/ab": both count under "ns/a"...
  EXPECT_EQ(vault.bytes_under("ns/a"), 1u + 2 + 4);
  // ...but "ns/ab" must not pull in the shorter sibling.
  EXPECT_EQ(vault.bytes_under("ns/ab"), 2u + 4);
  // remove_prefix has the same matching rule.
  EXPECT_EQ(vault.remove_prefix("ns/ab"), 2u);
  EXPECT_TRUE(vault.exists("ns/a"));
  EXPECT_FALSE(vault.exists("ns/ab"));
  EXPECT_FALSE(vault.exists("ns/ab/x"));
  EXPECT_TRUE(vault.exists("ns/b"));
  EXPECT_EQ(vault.bytes_in_use(), 1u + 8);
}

TEST(SnapshotVault, RemovePrefixEmptyPrefixClearsAll) {
  SnapshotVault vault;
  vault.put("a", std::vector<std::byte>(1, std::byte{1}));
  vault.put("b", std::vector<std::byte>(1, std::byte{1}));
  EXPECT_EQ(vault.remove_prefix(""), 2u);
  EXPECT_EQ(vault.bytes_in_use(), 0u);
  EXPECT_EQ(vault.remove_prefix(""), 0u);  // idempotent on empty vault
}

TEST(SnapshotVault, RemovePrefixWhileReading) {
  // Thread-safety of prefix eviction against concurrent readers/writers —
  // run under TSan in the check.sh vault lane. Readers must see each blob
  // whole (never torn) even while remove_prefix sweeps the same namespace.
  SnapshotVault vault;
  constexpr int kBlobs = 16;
  for (int i = 0; i < kBlobs; ++i) {
    vault.put("ns/t/" + std::to_string(i), std::vector<std::byte>(256, std::byte{5}));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&vault] {
      for (int pass = 0; pass < 50; ++pass) {
        for (int i = 0; i < kBlobs; ++i) {
          const auto blob = vault.get("ns/t/" + std::to_string(i));
          if (!blob.has_value()) continue;  // evicted — fine
          ASSERT_EQ(blob->size(), 256u);
          for (const std::byte b : *blob) ASSERT_EQ(b, std::byte{5});
        }
        (void)vault.bytes_under("ns/t/");
      }
    });
  }
  threads.emplace_back([&vault] {
    for (int pass = 0; pass < 25; ++pass) {
      (void)vault.remove_prefix("ns/t/");
      for (int i = 0; i < kBlobs; ++i) {
        vault.put("ns/t/" + std::to_string(i), std::vector<std::byte>(256, std::byte{5}));
      }
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(vault.bytes_in_use(), kBlobs * 256u);
}

TEST(SnapshotVault, ConcurrentWritersAndReaders) {
  SnapshotVault vault;
  constexpr int kThreads = 8;
  constexpr int kOps = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&vault, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "k" + std::to_string(t % 4);
        vault.put(key, std::vector<std::byte>(64, static_cast<std::byte>(t)));
        const auto blob = vault.get(key);
        // Another thread may have replaced it, but it is never torn.
        if (blob.has_value()) {
          ASSERT_EQ(blob->size(), 64u);
          for (std::size_t j = 1; j < blob->size(); ++j) {
            ASSERT_EQ((*blob)[j], (*blob)[0]);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  vault.clear();
  EXPECT_EQ(vault.bytes_in_use(), 0u);
}

}  // namespace
}  // namespace skt::storage
