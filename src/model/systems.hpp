// Node configurations of Table 2 (Tianhe-1A and Tianhe-2), expressed as
// simulator node profiles plus the scale-down knobs the bench harnesses
// use: hardware ratios are preserved (memory per core, NIC sharing), while
// absolute memory is shrunk so runs complete on a workstation.
#pragma once

#include <cstddef>
#include <string_view>

#include "sim/node.hpp"

namespace skt::model {

struct SystemProfile {
  std::string_view name;
  sim::NodeProfile node;
  int cores_per_node = 0;
  /// Fraction of observed full-memory HPL efficiency reported in the paper
  /// (86.38% Tianhe-1A, 84.94% Tianhe-2) — used as shape references.
  double reported_efficiency = 0.0;
};

/// Table 2, Tianhe-1A: 2x Xeon X5670 (12 cores), 140 GFLOPS, 48 GB,
/// 6.9 GB/s point-to-point, one network port per 12 processes.
[[nodiscard]] SystemProfile tianhe1a();

/// Table 2, Tianhe-2: 2x Xeon E5-2692v2 (24 cores), 422 GFLOPS, 64 GB,
/// 7.1 GB/s point-to-point, one network port per 24 processes.
[[nodiscard]] SystemProfile tianhe2();

/// Copy of a system profile with per-node memory replaced by
/// `memory_bytes` (the bench-scale shrink; all ratios kept).
[[nodiscard]] SystemProfile scaled(const SystemProfile& profile, std::size_t memory_bytes);

}  // namespace skt::model
