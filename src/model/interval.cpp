#include "model/interval.hpp"

#include <cmath>
#include <string>
#include <stdexcept>

#include "util/rng.hpp"

namespace skt::model {
namespace {

void check_positive(double v, const char* what) {
  if (!(v > 0.0)) throw std::invalid_argument(std::string("interval model: ") + what +
                                              " must be positive");
}

/// Exponential variate with mean `mtbf`.
double exp_sample(util::Xoshiro256& rng, double mtbf) {
  // Avoid log(0).
  double u = rng.next_double();
  if (u <= 0.0) u = 1e-18;
  return -mtbf * std::log(1.0 - u * (1.0 - 1e-12));
}

}  // namespace

double young_interval(double ckpt_cost_s, double mtbf_s) {
  check_positive(ckpt_cost_s, "checkpoint cost");
  check_positive(mtbf_s, "MTBF");
  return std::sqrt(2.0 * ckpt_cost_s * mtbf_s);
}

double daly_interval(double ckpt_cost_s, double mtbf_s) {
  check_positive(ckpt_cost_s, "checkpoint cost");
  check_positive(mtbf_s, "MTBF");
  if (ckpt_cost_s >= 2.0 * mtbf_s) return mtbf_s;
  const double ratio = ckpt_cost_s / (2.0 * mtbf_s);
  return std::sqrt(2.0 * ckpt_cost_s * mtbf_s) *
             (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
         ckpt_cost_s;
}

double expected_runtime(double work_s, double interval_s, double ckpt_cost_s,
                        double restart_cost_s, double mtbf_s) {
  check_positive(work_s, "work");
  check_positive(interval_s, "interval");
  check_positive(mtbf_s, "MTBF");
  if (ckpt_cost_s < 0 || restart_cost_s < 0) {
    throw std::invalid_argument("interval model: costs must be non-negative");
  }
  const double m = mtbf_s;
  return m * std::exp(restart_cost_s / m) *
         (std::exp((interval_s + ckpt_cost_s) / m) - 1.0) * (work_s / interval_s);
}

double optimal_interval_numeric(double work_s, double ckpt_cost_s, double restart_cost_s,
                                double mtbf_s) {
  double lo = std::max(ckpt_cost_s, 1e-6);
  double hi = work_s;
  if (hi <= lo) return lo;
  constexpr double kPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double x1 = b - kPhi * (b - a);
  double x2 = a + kPhi * (b - a);
  double f1 = expected_runtime(work_s, x1, ckpt_cost_s, restart_cost_s, mtbf_s);
  double f2 = expected_runtime(work_s, x2, ckpt_cost_s, restart_cost_s, mtbf_s);
  for (int i = 0; i < 200 && (b - a) > 1e-9 * hi; ++i) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kPhi * (b - a);
      f1 = expected_runtime(work_s, x1, ckpt_cost_s, restart_cost_s, mtbf_s);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kPhi * (b - a);
      f2 = expected_runtime(work_s, x2, ckpt_cost_s, restart_cost_s, mtbf_s);
    }
  }
  return 0.5 * (a + b);
}

SimulatedRun simulate_run(double work_s, double interval_s, double ckpt_cost_s,
                          double restart_cost_s, double mtbf_s, std::uint64_t seed) {
  check_positive(work_s, "work");
  check_positive(interval_s, "interval");
  check_positive(mtbf_s, "MTBF");
  util::Xoshiro256 rng(seed);
  SimulatedRun run;
  double clock = 0.0;
  double done = 0.0;         // useful work committed (at last checkpoint)
  double next_failure = exp_sample(rng, mtbf_s);

  // Advance through a segment of length `span` (work, checkpoint write or
  // restart); returns false and rolls the caller back when a failure lands
  // inside it.
  const auto advance = [&](double span) {
    if (clock + span <= next_failure) {
      clock += span;
      return true;
    }
    clock = next_failure;              // failure strikes mid-segment
    clock += restart_cost_s;           // detect + restart + recover
    next_failure = clock + exp_sample(rng, mtbf_s);
    ++run.failures;
    return false;
  };

  while (done < work_s) {
    const double segment = std::min(interval_s, work_s - done);
    if (!advance(segment)) continue;  // redo the whole segment from `done`
    if (done + segment >= work_s) {
      done = work_s;                  // final segment needs no checkpoint
      break;
    }
    if (!advance(ckpt_cost_s)) continue;  // failed during checkpoint: redo
    done += segment;
    ++run.checkpoints;
  }
  run.completion_s = clock;
  return run;
}

double simulate_mean(double work_s, double interval_s, double ckpt_cost_s,
                     double restart_cost_s, double mtbf_s, int trials, std::uint64_t seed0) {
  if (trials <= 0) throw std::invalid_argument("interval model: trials must be positive");
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    total += simulate_run(work_s, interval_s, ckpt_cost_s, restart_cost_s, mtbf_s,
                          seed0 + static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ull)
                 .completion_s;
  }
  return total / trials;
}

}  // namespace skt::model
