#include "model/systems.hpp"

namespace skt::model {

SystemProfile tianhe1a() {
  SystemProfile p;
  p.name = "Tianhe-1A";
  p.cores_per_node = 12;
  p.reported_efficiency = 0.8638;
  p.node.peak_gflops = 140.0;
  p.node.memory_bytes = 48ull << 30;
  p.node.nic_bandwidth_Bps = 6.9e9;
  p.node.nic_latency_s = 2.0e-6;
  p.node.ranks_per_port = 12;
  return p;
}

SystemProfile tianhe2() {
  SystemProfile p;
  p.name = "Tianhe-2";
  p.cores_per_node = 24;
  p.reported_efficiency = 0.8494;
  p.node.peak_gflops = 422.0;
  p.node.memory_bytes = 64ull << 30;
  p.node.nic_bandwidth_Bps = 7.1e9;
  p.node.nic_latency_s = 2.0e-6;
  p.node.ranks_per_port = 24;
  return p;
}

SystemProfile scaled(const SystemProfile& profile, std::size_t memory_bytes) {
  SystemProfile p = profile;
  p.node.memory_bytes = memory_bytes;
  return p;
}

}  // namespace skt::model
