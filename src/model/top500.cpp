#include "model/top500.hpp"

namespace skt::model {

const std::array<Top500System, 10>& top10_nov2016() {
  static const std::array<Top500System, 10> systems{{
      {"TaihuLight", 93014.6, 125435.9},
      {"Tianhe-2", 33862.7, 54902.4},
      {"Titan", 17590.0, 27112.5},
      {"Sequoia", 17173.2, 20132.7},
      {"Cori", 14014.7, 27880.7},
      {"Oakforest-PACS", 13554.6, 24913.5},
      {"K", 10510.0, 11280.4},
      {"Piz Daint", 9779.0, 15988.0},
      {"Mira", 8586.6, 10066.3},
      {"Trinity", 8100.9, 11078.9},
  }};
  return systems;
}

}  // namespace skt::model
