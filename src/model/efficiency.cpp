#include "model/efficiency.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/stats.hpp"

namespace skt::model {

double EfficiencyModel::problem_size_for(double target_efficiency) const {
  if (target_efficiency <= 0.0) throw std::invalid_argument("target efficiency must be > 0");
  const double denom = 1.0 - a * target_efficiency;
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  return b * target_efficiency / denom;
}

EfficiencyModel fit_efficiency(std::span<const double> sizes,
                               std::span<const double> efficiencies) {
  if (sizes.size() != efficiencies.size() || sizes.size() < 2) {
    throw std::invalid_argument("fit_efficiency: need >= 2 (size, efficiency) samples");
  }
  std::vector<double> inv_n(sizes.size());
  std::vector<double> inv_e(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] <= 0 || efficiencies[i] <= 0) {
      throw std::invalid_argument("fit_efficiency: sizes and efficiencies must be positive");
    }
    inv_n[i] = 1.0 / sizes[i];
    inv_e[i] = 1.0 / efficiencies[i];
  }
  const util::LinearFit fit = util::fit_linear(inv_n, inv_e);
  EfficiencyModel model;
  model.a = fit.intercept;  // 1/E = a + b * (1/N)
  model.b = fit.slope;
  model.r2 = fit.r2;
  return model;
}

double efficiency_at_fraction(double e1, double k, double a) {
  if (k <= 0.0 || k > 1.0) throw std::invalid_argument("k must be in (0, 1]");
  if (e1 <= 0.0 || e1 > 1.0) throw std::invalid_argument("e1 must be in (0, 1]");
  const double sk = std::sqrt(k);
  return sk * e1 / (1.0 - (1.0 - sk) * a * e1);
}

double efficiency_lower_bound(double e1, double k) {
  return efficiency_at_fraction(e1, k, 1.0);
}

}  // namespace skt::model
