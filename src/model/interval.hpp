// Checkpoint-interval optimization — the theory behind the paper's
// "checkpoint per 10 min" methodology (Table 3) and the MTBF argument of
// the introduction.
//
// For exponential failures with MTBF M, checkpoint cost C, restart cost R
// and total useful work W, Daly's expected completion time is
//
//   T(tau) = M * exp(R/M) * (exp((tau + C)/M) - 1) * W / tau
//
// minimized near Young's tau* = sqrt(2 C M) (first order) or Daly's
// higher-order refinement. A seeded discrete-event simulation cross-checks
// the closed forms in tests and in bench/ablation_interval.
#pragma once

#include <cstdint>

namespace skt::model {

/// Young's first-order optimum: sqrt(2 C M). Valid for C << M.
[[nodiscard]] double young_interval(double ckpt_cost_s, double mtbf_s);

/// Daly's higher-order optimum:
///   sqrt(2 C M) * (1 + sqrt(C/(2M))/3 + (C/(2M))/9) - C   for C < 2M,
///   M otherwise.
[[nodiscard]] double daly_interval(double ckpt_cost_s, double mtbf_s);

/// Daly's expected completion time T(tau) (seconds) for total useful work
/// `work_s`, checkpointing every `interval_s` of useful work.
[[nodiscard]] double expected_runtime(double work_s, double interval_s, double ckpt_cost_s,
                                      double restart_cost_s, double mtbf_s);

/// Numeric minimizer of expected_runtime over the interval (golden-section
/// on [ckpt_cost, work]); cross-checks the closed forms.
[[nodiscard]] double optimal_interval_numeric(double work_s, double ckpt_cost_s,
                                              double restart_cost_s, double mtbf_s);

struct SimulatedRun {
  double completion_s = 0.0;  ///< total wall time including rework
  int failures = 0;
  int checkpoints = 0;
};

/// Seeded discrete-event simulation of a checkpointed run under
/// exponentially distributed failures: work advances, a checkpoint is
/// taken every `interval_s` of useful progress, a failure rolls back to
/// the last checkpoint and pays `restart_cost_s`. Failures can also strike
/// during checkpointing and recovery (their time is lost too).
[[nodiscard]] SimulatedRun simulate_run(double work_s, double interval_s, double ckpt_cost_s,
                                        double restart_cost_s, double mtbf_s,
                                        std::uint64_t seed);

/// Mean completion over `trials` seeds.
[[nodiscard]] double simulate_mean(double work_s, double interval_s, double ckpt_cost_s,
                                   double restart_cost_s, double mtbf_s, int trials,
                                   std::uint64_t seed0 = 1);

}  // namespace skt::model
