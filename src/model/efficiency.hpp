// The HPL efficiency model of Section 4:
//
//   E(N) = N / (aN + b),  a > 1                                   (Eq. 5)
//
// which is linear in 1/N after inversion (1/E = a + b/N), so two or more
// (N, E) measurements fit it by ordinary least squares. Equation 8 bounds
// the efficiency when only a fraction k of memory is available:
//
//   e2 = sqrt(k) e1 / (1 - (1 - sqrt(k)) a e1)
//      > sqrt(k) e1 / (1 - (1 - sqrt(k)) e1)      (since a > 1)
#pragma once

#include <cstdint>
#include <span>

namespace skt::model {

struct EfficiencyModel {
  double a = 1.0;
  double b = 0.0;
  double r2 = 0.0;  ///< goodness of the inverse-linear fit

  /// E(N) per Eq. 5.
  [[nodiscard]] double efficiency(double n) const { return n / (a * n + b); }

  /// Problem size that reaches a target efficiency (inverse of Eq. 5);
  /// returns +inf when the target exceeds the asymptote 1/a.
  [[nodiscard]] double problem_size_for(double target_efficiency) const;
};

/// Least-squares fit of Eq. 5 to (problem size, efficiency) samples.
/// Requires at least two samples with distinct sizes.
[[nodiscard]] EfficiencyModel fit_efficiency(std::span<const double> sizes,
                                             std::span<const double> efficiencies);

/// Exact Eq. 8 given the model's `a`: efficiency at memory fraction k
/// relative to full-memory efficiency e1.
[[nodiscard]] double efficiency_at_fraction(double e1, double k, double a);

/// The a -> 1 lower bound of Eq. 8 (what Fig. 8 plots for the TOP500
/// machines, whose `a` is unknown).
[[nodiscard]] double efficiency_lower_bound(double e1, double k);

}  // namespace skt::model
