// The top-10 machines of the November 2016 TOP500 list — the "latest
// list" at the paper's publication, and the x-axis of Fig. 8.
#pragma once

#include <array>
#include <string_view>

namespace skt::model {

struct Top500System {
  std::string_view name;
  double rmax_tflops;   ///< measured HPL performance
  double rpeak_tflops;  ///< theoretical peak
  [[nodiscard]] double efficiency() const { return rmax_tflops / rpeak_tflops; }
};

/// Ranks 1-10, November 2016 (Rmax/Rpeak in TFLOP/s, from the public list).
[[nodiscard]] const std::array<Top500System, 10>& top10_nov2016();

}  // namespace skt::model
