#include "storage/placement.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace skt::storage {

namespace {

void validate_nodes(const std::vector<int>& nodes) {
  if (nodes.empty()) {
    throw std::invalid_argument("PlacementMap: node list must not be empty");
  }
  std::unordered_set<int> seen;
  for (int node : nodes) {
    if (!seen.insert(node).second) {
      throw std::invalid_argument("PlacementMap: duplicate node id " +
                                  std::to_string(node));
    }
  }
}

// splitmix64 finalizer — strong enough avalanche for HRW scoring and fully
// deterministic across platforms (no std::hash, whose result is
// implementation-defined).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

PlacementMap::PlacementMap(std::vector<int> nodes) : nodes_(std::move(nodes)) {
  validate_nodes(nodes_);
}

std::uint64_t PlacementMap::score(std::string_view key, int node) {
  return mix64(fnv1a(key) ^ mix64(static_cast<std::uint64_t>(node)));
}

std::size_t PlacementMap::anchor_slot(std::string_view key) const {
  std::size_t best_slot = 0;
  std::uint64_t best_score = score(key, nodes_[0]);
  for (std::size_t slot = 1; slot < nodes_.size(); ++slot) {
    const std::uint64_t s = score(key, nodes_[slot]);
    if (s > best_score) {
      best_score = s;
      best_slot = slot;
    }
  }
  return best_slot;
}

Placement PlacementMap::place(std::string_view key, std::size_t extent) const {
  const std::size_t n = nodes_.size();
  const std::size_t primary_slot = (anchor_slot(key) + extent) % n;
  const std::size_t successor_slot = (primary_slot + 1) % n;
  return Placement{.primary = nodes_[primary_slot],
                   .successor = nodes_[successor_slot]};
}

void PlacementMap::replace(int dead, int replacement) {
  auto it = std::find(nodes_.begin(), nodes_.end(), dead);
  if (it == nodes_.end()) {
    throw std::invalid_argument("PlacementMap::replace: node " +
                                std::to_string(dead) + " holds no slot");
  }
  if (dead != replacement && contains(replacement)) {
    throw std::invalid_argument("PlacementMap::replace: node " +
                                std::to_string(replacement) +
                                " already holds a slot");
  }
  *it = replacement;
  ++version_;
}

void PlacementMap::rebuild(std::vector<int> nodes) {
  validate_nodes(nodes);
  nodes_ = std::move(nodes);
  ++version_;
}

bool PlacementMap::contains(int node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

}  // namespace skt::storage
