// Durable key→blob store modelling checkpoint files on disk.
//
// Unlike a node's PersistentStore (volatile DRAM, lost on power-off), the
// vault survives node loss: it models disks whose contents remain readable
// after the host dies (the BLCR rows of Table 3 recover this way). Writes
// are transactional per key — a reader never sees a torn snapshot.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "storage/vault.hpp"

namespace skt::storage {

class SnapshotVault final : public Vault {
 public:
  /// Atomically replace the blob stored under `key`.
  void put(const std::string& key, std::span<const std::byte> blob) override;

  /// Copy of the blob, or nullopt if the key is unknown.
  [[nodiscard]] std::optional<std::vector<std::byte>> get(
      const std::string& key) const override;

  [[nodiscard]] bool exists(const std::string& key) const override;

  void remove(const std::string& key) override;
  void clear() override;

  [[nodiscard]] std::size_t bytes_in_use() const override;

  /// Bytes across blobs whose key starts with `prefix` — per-tenant
  /// accounting for namespaced vaults ("ns/<tenant>/...").
  [[nodiscard]] std::size_t bytes_under(const std::string& prefix) const override;

  /// Drop every blob whose key starts with `prefix` (tenant eviction).
  /// Returns the number of blobs removed.
  std::size_t remove_prefix(const std::string& prefix) override;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<std::byte>> blobs_;
};

}  // namespace skt::storage
