// The durable-tier interface every checkpoint consumer programs against.
//
// A Vault is a key→blob store whose contents survive node loss — the
// simulation's "disk". Two implementations exist:
//
//   * SnapshotVault  — one mutex-guarded map: a single logical device
//                      (one mount point, the pre-sharding behaviour).
//   * ShardedVault   — N node-local shards behind a PlacementMap: level-2
//                      flush bandwidth scales with the participating
//                      nodes (sharded_vault.hpp).
//
// Writes are transactional per key on every implementation — a reader
// never sees a torn blob. The optional write_seconds()/read_seconds()
// hooks let an implementation model the VIRTUAL time a transfer costs
// (e.g. parallel extents across shards); nullopt means "no opinion" and
// the caller falls back to its own storage::Device model, which preserves
// the exact pre-interface behaviour for SnapshotVault.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace skt::storage {

class Vault {
 public:
  virtual ~Vault() = default;

  /// Atomically replace the blob stored under `key`.
  virtual void put(const std::string& key, std::span<const std::byte> blob) = 0;

  /// Copy of the blob, or nullopt if the key is unknown (or, for sharded
  /// implementations, an extent lost every replica).
  [[nodiscard]] virtual std::optional<std::vector<std::byte>> get(
      const std::string& key) const = 0;

  [[nodiscard]] virtual bool exists(const std::string& key) const = 0;

  virtual void remove(const std::string& key) = 0;
  virtual void clear() = 0;

  /// Logical bytes across all blobs (replication not counted).
  [[nodiscard]] virtual std::size_t bytes_in_use() const = 0;

  /// Bytes across blobs whose key starts with `prefix` — per-tenant
  /// accounting for namespaced vaults ("ns/<tenant>/...").
  [[nodiscard]] virtual std::size_t bytes_under(const std::string& prefix) const = 0;

  /// Drop every blob whose key starts with `prefix` (tenant eviction).
  /// Returns the number of blobs removed.
  virtual std::size_t remove_prefix(const std::string& prefix) = 0;

  /// Modeled virtual seconds a write/read of `bytes` under `key` costs,
  /// or nullopt when this vault has no device model of its own (the
  /// caller then charges its own storage::Device as before).
  [[nodiscard]] virtual std::optional<double> write_seconds(const std::string& key,
                                                            std::size_t bytes) const {
    (void)key;
    (void)bytes;
    return std::nullopt;
  }
  [[nodiscard]] virtual std::optional<double> read_seconds(const std::string& key,
                                                           std::size_t bytes) const {
    (void)key;
    (void)bytes;
    return std::nullopt;
  }
};

}  // namespace skt::storage
