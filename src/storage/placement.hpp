// PlacementMap — rendezvous-hash (highest-random-weight) placement of
// blob extents onto node-local vault shards.
//
// The map holds an ordered list of SLOTS, each occupied by a live node id.
// A blob's ANCHOR slot is chosen by rendezvous hashing over (blob key,
// node id): every (key, node) pair gets a deterministic score and the
// highest score wins. Extent e of the blob then lands on slot
// (anchor + e) % N with its replica on slot (anchor + e + 1) % N — round-
// robin striping from the anchor, so one large flush engages every shard
// concurrently while small blobs still spread uniformly across shards.
//
// replace(old, new) substitutes the replacement node INTO THE DEAD NODE'S
// SLOT. Slot order is what the striping arithmetic keys on, so keeping it
// stable gives the HRW minimal-disruption property: survivor scores are
// unchanged, so a blob re-anchors only when its winner WAS the dead node
// (forced move) or the replacement's fresh score now wins (it captures
// ~1/N of the keyspace, as any joining node must for balance). No blob
// ever moves between two surviving slots.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace skt::storage {

/// Where one extent lives: the shard written first and the replica shard.
/// successor == primary on a single-shard map (no distinct replica).
struct Placement {
  int primary = -1;
  int successor = -1;
};

class PlacementMap {
 public:
  /// `nodes` — the live node ids hosting shards, one slot each. Must be
  /// non-empty and duplicate-free.
  explicit PlacementMap(std::vector<int> nodes);

  /// Rendezvous score of (key, node); exposed so tests can verify the
  /// argmax rule and the stability of survivor scores across rebuilds.
  [[nodiscard]] static std::uint64_t score(std::string_view key, int node);

  /// Anchor slot index of `key` (the HRW argmax over the current nodes).
  [[nodiscard]] std::size_t anchor_slot(std::string_view key) const;

  /// Shard placement of extent `extent` of blob `key`.
  [[nodiscard]] Placement place(std::string_view key, std::size_t extent) const;

  /// Substitute `replacement` into `dead`'s slot (slot order preserved)
  /// and bump the map version. Throws std::invalid_argument when `dead`
  /// holds no slot or `replacement` already does.
  void replace(int dead, int replacement);

  /// Rebuild from a full node list (same contract as the constructor);
  /// bumps the version. Prefer replace() for single-node swaps — it keeps
  /// every surviving slot stable.
  void rebuild(std::vector<int> nodes);

  [[nodiscard]] const std::vector<int>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] bool contains(int node) const;
  /// Incremented by every replace()/rebuild(); lets consumers detect that
  /// cached placements are stale.
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  std::vector<int> nodes_;
  std::uint64_t version_ = 0;
};

}  // namespace skt::storage
