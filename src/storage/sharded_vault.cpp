#include "storage/sharded_vault.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.hpp"

namespace skt::storage {

ShardedVault::ShardedVault(ShardedVaultConfig config)
    : config_(std::move(config)), placement_(config_.nodes) {
  if (config_.extent_bytes == 0) {
    throw std::invalid_argument("ShardedVault: extent_bytes must be > 0");
  }
  for (int node : config_.nodes) {
    shards_.emplace(node, std::make_unique<Shard>(config_.shard_profile));
  }
  std::lock_guard lock(mutex_);
  refresh_gauges_locked();
}

std::string ShardedVault::extent_key(const std::string& key, std::size_t extent) {
  // '\x1f' (unit separator) cannot appear in well-formed blob keys, so
  // extent keys of "k" never collide with extent keys of "k2" and a shard
  // scan can split shard-key -> (blob key, extent index) unambiguously.
  return key + '\x1f' + "x" + std::to_string(extent);
}

std::size_t ShardedVault::extent_count(std::size_t total_bytes) const {
  if (total_bytes == 0) return 1;  // empty blobs still occupy one (empty) extent
  return (total_bytes + config_.extent_bytes - 1) / config_.extent_bytes;
}

ShardedVault::Shard& ShardedVault::shard(int node) {
  auto it = shards_.find(node);
  if (it == shards_.end()) {
    throw std::out_of_range("ShardedVault: no shard on node " + std::to_string(node));
  }
  return *it->second;
}

const ShardedVault::Shard& ShardedVault::shard(int node) const {
  auto it = shards_.find(node);
  if (it == shards_.end()) {
    throw std::out_of_range("ShardedVault: no shard on node " + std::to_string(node));
  }
  return *it->second;
}

void ShardedVault::put(const std::string& key, std::span<const std::byte> blob) {
  std::lock_guard lock(mutex_);
  // Atomic per-key replace: drop any previous layout first so a shrinking
  // blob leaves no orphan tail extents behind.
  if (auto it = index_.find(key); it != index_.end()) {
    remove_extents_locked(key, it->second.total_bytes);
  }
  const std::size_t extents = extent_count(blob.size());
  const bool replicate = config_.replicate && placement_.size() >= 2;
  for (std::size_t e = 0; e < extents; ++e) {
    const std::size_t off = e * config_.extent_bytes;
    const std::size_t len = std::min(config_.extent_bytes, blob.size() - off);
    const auto piece = blob.subspan(off, len);
    const Placement p = placement_.place(key, e);
    const std::string ekey = extent_key(key, e);
    shard(p.primary).store.put(ekey, piece);
    if (replicate) shard(p.successor).store.put(ekey, piece);
  }
  index_[key] = BlobInfo{.total_bytes = blob.size()};
  ++stats_.puts;
  refresh_gauges_locked();
}

std::optional<std::vector<std::byte>> ShardedVault::fetch_extent_locked(
    const std::string& key, std::size_t extent) const {
  const Placement p = placement_.place(key, extent);
  const std::string ekey = extent_key(key, extent);
  if (auto blob = shard(p.primary).store.get(ekey)) return blob;
  if (p.successor != p.primary) {
    if (auto blob = shard(p.successor).store.get(ekey)) {
      ++stats_.degraded_reads;
      return blob;
    }
  }
  // Last resort: a stray copy on some other shard (e.g. mid-reshard
  // state). Costs a full scan but only runs when both placements missed.
  for (const auto& [node, sh] : shards_) {
    if (node == p.primary || node == p.successor) continue;
    if (auto blob = sh->store.get(ekey)) {
      ++stats_.degraded_reads;
      return blob;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<std::byte>> ShardedVault::get(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  ++stats_.gets;
  std::vector<std::byte> out;
  out.reserve(it->second.total_bytes);
  const std::size_t extents = extent_count(it->second.total_bytes);
  for (std::size_t e = 0; e < extents; ++e) {
    auto piece = fetch_extent_locked(key, e);
    if (!piece) return std::nullopt;  // extent lost on every shard
    out.insert(out.end(), piece->begin(), piece->end());
  }
  if (out.size() != it->second.total_bytes) return std::nullopt;
  return out;
}

bool ShardedVault::exists(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  // Indexed is not enough: every extent must still have >= 1 live copy.
  const std::size_t extents = extent_count(it->second.total_bytes);
  for (std::size_t e = 0; e < extents; ++e) {
    if (!fetch_extent_locked(key, e)) return false;
  }
  return true;
}

void ShardedVault::remove_extents_locked(const std::string& key,
                                         std::size_t total_bytes) {
  const std::size_t extents = extent_count(total_bytes);
  for (std::size_t e = 0; e < extents; ++e) {
    const std::string ekey = extent_key(key, e);
    // Sweep every shard, not just the current placement: copies may sit on
    // off-placement shards after a reshard.
    for (auto& [node, sh] : shards_) sh->store.remove(ekey);
  }
}

void ShardedVault::remove(const std::string& key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  remove_extents_locked(key, it->second.total_bytes);
  index_.erase(it);
  refresh_gauges_locked();
}

void ShardedVault::clear() {
  std::lock_guard lock(mutex_);
  for (auto& [node, sh] : shards_) sh->store.clear();
  index_.clear();
  refresh_gauges_locked();
}

std::size_t ShardedVault::bytes_in_use() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, info] : index_) total += info.total_bytes;
  return total;
}

std::size_t ShardedVault::bytes_under(const std::string& prefix) const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (auto it = index_.lower_bound(prefix); it != index_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second.total_bytes;
  }
  return total;
}

std::size_t ShardedVault::remove_prefix(const std::string& prefix) {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::size_t>> victims;
  for (auto it = index_.lower_bound(prefix); it != index_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    victims.emplace_back(it->first, it->second.total_bytes);
  }
  for (const auto& [key, total_bytes] : victims) {
    remove_extents_locked(key, total_bytes);
    index_.erase(key);
  }
  if (!victims.empty()) refresh_gauges_locked();
  return victims.size();
}

std::optional<double> ShardedVault::write_seconds(const std::string& key,
                                                  std::size_t bytes) const {
  (void)key;
  std::lock_guard lock(mutex_);
  // All shards absorb their primary extents concurrently, so the
  // synchronous cost is one shard writing bytes/N; replica propagation is
  // asynchronous (shard-to-shard, off the caller's clock).
  const std::size_t n = placement_.size();
  const auto& sh = shard(placement_.nodes().front());
  return sh.device.write_seconds((bytes + n - 1) / n);
}

std::optional<double> ShardedVault::read_seconds(const std::string& key,
                                                 std::size_t bytes) const {
  (void)key;
  std::lock_guard lock(mutex_);
  const std::size_t n = placement_.size();
  const auto& sh = shard(placement_.nodes().front());
  return sh.device.read_seconds((bytes + n - 1) / n);
}

std::size_t ShardedVault::shard_count() const {
  std::lock_guard lock(mutex_);
  return shards_.size();
}

bool ShardedVault::has_shard(int node) const {
  std::lock_guard lock(mutex_);
  return shards_.count(node) != 0;
}

std::size_t ShardedVault::shard_bytes(int node) const {
  std::lock_guard lock(mutex_);
  const auto it = shards_.find(node);
  return it == shards_.end() ? 0 : it->second->store.bytes_in_use();
}

std::vector<int> ShardedVault::shard_nodes() const {
  std::lock_guard lock(mutex_);
  return placement_.nodes();
}

std::uint64_t ShardedVault::placement_version() const {
  std::lock_guard lock(mutex_);
  return placement_.version();
}

ShardedVaultStats ShardedVault::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void ShardedVault::wipe_shard(int node) {
  std::lock_guard lock(mutex_);
  const auto it = shards_.find(node);
  if (it == shards_.end()) return;
  it->second->store.clear();
  refresh_gauges_locked();
}

void ShardedVault::replace_node(int dead, int replacement) {
  std::lock_guard lock(mutex_);
  if (!placement_.contains(dead)) return;  // no shard on that node
  if (dead == replacement) return;

  // The dead node's contents died with it; the replacement starts empty
  // in the dead node's SLOT, keeping (anchor + e) % N stable for every
  // blob whose rendezvous anchor survives.
  shards_.erase(dead);
  shards_.emplace(replacement, std::make_unique<Shard>(config_.shard_profile));
  placement_.replace(dead, replacement);
  ++stats_.rebalances;
  telemetry::metrics().gauge("vault.shard." + std::to_string(dead) + ".bytes").set(0.0);

  // Re-home: walk every blob extent and ensure each shard the NEW layout
  // requires actually holds a copy, sourcing from any surviving replica.
  const bool replicate = config_.replicate && placement_.size() >= 2;
  for (const auto& [key, info] : index_) {
    const std::size_t extents = extent_count(info.total_bytes);
    for (std::size_t e = 0; e < extents; ++e) {
      const Placement p = placement_.place(key, e);
      const std::string ekey = extent_key(key, e);
      std::vector<int> wanted{p.primary};
      if (replicate && p.successor != p.primary) wanted.push_back(p.successor);
      std::vector<int> missing;
      for (int node : wanted) {
        if (!shard(node).store.exists(ekey)) missing.push_back(node);
      }
      if (!missing.empty()) {
        std::optional<std::vector<std::byte>> copy;
        for (const auto& [node, sh] : shards_) {
          if (auto blob = sh->store.get(ekey)) {
            copy = std::move(blob);
            break;
          }
        }
        if (!copy) {
          // Both placements were on lost shards — unrecoverable under a
          // double loss; surfaced via stats so tests/forensics can assert.
          stats_.extents_lost += 1;
          continue;
        }
        for (int node : missing) {
          shard(node).store.put(ekey, *copy);
          ++stats_.extents_rehomed;
        }
      }
      // GC stale copies on off-placement shards (a re-anchored blob's old
      // locations), restoring physical == replicas x logical exactly.
      for (auto& [node, sh] : shards_) {
        if (std::find(wanted.begin(), wanted.end(), node) == wanted.end()) {
          sh->store.remove(ekey);
        }
      }
    }
  }
  refresh_gauges_locked();
}

void ShardedVault::refresh_gauges_locked() const {
  auto& reg = telemetry::metrics();
  reg.gauge("vault.shards").set(static_cast<double>(shards_.size()));
  reg.gauge("vault.bytes.logical").set(static_cast<double>([this] {
    std::size_t total = 0;
    for (const auto& [key, info] : index_) total += info.total_bytes;
    return total;
  }()));
  std::size_t physical = 0;
  for (const auto& [node, sh] : shards_) {
    const std::size_t b = sh->store.bytes_in_use();
    physical += b;
    reg.gauge("vault.shard." + std::to_string(node) + ".bytes")
        .set(static_cast<double>(b));
  }
  reg.gauge("vault.bytes.physical").set(static_cast<double>(physical));
  // Modeled aggregate flush bandwidth: every shard streams concurrently.
  const auto& profile = config_.shard_profile;
  const double per_shard =
      profile.write_bandwidth_Bps / std::max(1, profile.sharers);
  reg.gauge("vault.flush_Bps").set(per_shard * static_cast<double>(shards_.size()));
  reg.gauge("vault.rebalances").set(static_cast<double>(stats_.rebalances));
  reg.gauge("vault.extents_rehomed").set(static_cast<double>(stats_.extents_rehomed));
  reg.gauge("vault.degraded_reads").set(static_cast<double>(stats_.degraded_reads));
}

}  // namespace skt::storage
