// ShardedVault — the durable tier spread across N node-local shards.
//
// Each shard is an owned SnapshotVault fronted by a per-shard
// storage::Device model, standing in for the local disk / ramdisk of one
// job node. Blobs are split into fixed-size EXTENTS; extent e of a blob
// goes to the PlacementMap slot (anchor + e) % N with a replica on the
// successor slot (anchor + e + 1) % N, so:
//
//   * one large L2 flush engages every shard concurrently — aggregate
//     flush bandwidth scales with the shard count instead of funnelling
//     through SnapshotVault's single mount point;
//   * a single shard loss never loses durable data — every extent has a
//     second copy on a different shard (replica invariant, N >= 2).
//
// replace_node(dead, replacement) is the reshard protocol the launcher
// drives when it swaps a dead node for a spare: the dead shard's contents
// are gone (they lived on that node), the replacement takes the dead
// node's placement SLOT (striping arithmetic stays stable for every
// surviving extent), and each extent the new layout requires on a shard
// that lacks it is re-homed from a surviving replica.
//
// Virtual-time model: write_seconds()/read_seconds() report the modeled
// cost of a transfer with the extents in flight on all shards at once —
// primary copies move bytes/N through each shard's device while replica
// propagation proceeds shard-to-shard off the synchronous path (the
// caller's clock only waits for the primary copies, as in asynchronous
// replication). Callers use these instead of their own single-device
// model via Vault::write_seconds()'s value_or fallback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "storage/device.hpp"
#include "storage/placement.hpp"
#include "storage/snapshot_vault.hpp"
#include "storage/vault.hpp"

namespace skt::storage {

struct ShardedVaultConfig {
  /// Node ids hosting one shard each (non-empty, duplicate-free).
  std::vector<int> nodes;
  /// Device model of every node-local shard (bandwidth, latency, sharers).
  DeviceProfile shard_profile = ssd_profile();
  /// Blobs are split into extents of this size; the tail extent is short.
  std::size_t extent_bytes = 256 * 1024;
  /// Write each extent to primary + successor shard. Ignored (no distinct
  /// replica exists) when only one shard is configured.
  bool replicate = true;
};

/// Monotonic operation counters, readable at any time (e.g. RunReports).
struct ShardedVaultStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  /// get() served an extent from the successor (or a scan) because the
  /// primary shard lacked it — the degraded-read path after a shard loss.
  std::uint64_t degraded_reads = 0;
  /// replace_node() invocations (placement map rebuilds).
  std::uint64_t rebalances = 0;
  /// Extents copied onto a shard from a surviving replica during reshard.
  std::uint64_t extents_rehomed = 0;
  /// Extents for which no surviving copy existed during reshard — the
  /// owning blob is unrecoverable. Stays 0 while the replica invariant
  /// holds and at most one shard is lost between reshards.
  std::uint64_t extents_lost = 0;
};

class ShardedVault final : public Vault {
 public:
  explicit ShardedVault(ShardedVaultConfig config);

  // ---- Vault interface -------------------------------------------------
  void put(const std::string& key, std::span<const std::byte> blob) override;
  [[nodiscard]] std::optional<std::vector<std::byte>> get(
      const std::string& key) const override;
  [[nodiscard]] bool exists(const std::string& key) const override;
  void remove(const std::string& key) override;
  void clear() override;
  [[nodiscard]] std::size_t bytes_in_use() const override;
  [[nodiscard]] std::size_t bytes_under(const std::string& prefix) const override;
  std::size_t remove_prefix(const std::string& prefix) override;
  [[nodiscard]] std::optional<double> write_seconds(const std::string& key,
                                                    std::size_t bytes) const override;
  [[nodiscard]] std::optional<double> read_seconds(const std::string& key,
                                                   std::size_t bytes) const override;

  // ---- Sharding --------------------------------------------------------
  [[nodiscard]] std::size_t shard_count() const;
  [[nodiscard]] bool has_shard(int node) const;
  /// Physical bytes stored on `node`'s shard, replicas included.
  /// 0 when the node hosts no shard.
  [[nodiscard]] std::size_t shard_bytes(int node) const;
  /// Node ids currently holding slots, in slot order.
  [[nodiscard]] std::vector<int> shard_nodes() const;
  [[nodiscard]] std::uint64_t placement_version() const;

  /// Drop the contents of `node`'s shard without resharding — the moment a
  /// shard node is known dead, its bytes are gone. The launcher wipes ALL
  /// dead shards before the first replace_node of a recovery cycle so a
  /// correlated multi-node loss can never re-home an extent out of another
  /// dead (but not yet replaced) shard. No-op when `node` hosts no shard.
  void wipe_shard(int node);

  /// Reshard after the launcher swapped `dead` for `replacement`: drop the
  /// dead shard (its node's contents are gone), give the replacement the
  /// dead slot, and re-home every extent the new layout requires from
  /// surviving replicas. No-op when `dead` hosts no shard.
  void replace_node(int dead, int replacement);

  [[nodiscard]] ShardedVaultStats stats() const;

  /// The shard key under which extent `extent` of `key` is stored inside
  /// a shard's SnapshotVault — exposed so forensics/tests can identify
  /// extents when inspecting shards directly.
  [[nodiscard]] static std::string extent_key(const std::string& key,
                                              std::size_t extent);

 private:
  struct Shard {
    SnapshotVault store;
    Device device;
    explicit Shard(const DeviceProfile& profile) : device(profile) {}
  };

  struct BlobInfo {
    std::size_t total_bytes = 0;
  };

  [[nodiscard]] std::size_t extent_count(std::size_t total_bytes) const;
  Shard& shard(int node);
  [[nodiscard]] const Shard& shard(int node) const;
  /// Fetch one extent honouring primary → successor → scan fallback;
  /// bumps degraded_reads_ when the primary missed. nullopt = lost.
  [[nodiscard]] std::optional<std::vector<std::byte>> fetch_extent_locked(
      const std::string& key, std::size_t extent) const;
  void remove_extents_locked(const std::string& key, std::size_t total_bytes);
  /// Publish vault.* gauges into the process metrics registry.
  void refresh_gauges_locked() const;

  ShardedVaultConfig config_;
  mutable std::mutex mutex_;
  PlacementMap placement_;
  std::map<int, std::unique_ptr<Shard>> shards_;  // by node id
  std::map<std::string, BlobInfo> index_;         // logical blobs
  mutable ShardedVaultStats stats_;
};

}  // namespace skt::storage
