// Storage device models for the disk-based checkpoint baselines of
// Table 3 (BLCR+HDD, BLCR+SSD) and for multi-level flush policies.
//
// Devices do not store bytes themselves (SnapshotVault does); they model
// the *time* a transfer costs, which is charged to the job's virtual clock
// so benches finish in milliseconds while reporting paper-scale runtimes.
#pragma once

#include <cstddef>
#include <string>

namespace skt::storage {

struct DeviceProfile {
  std::string name = "null";
  double write_bandwidth_Bps = 0.0;  ///< sustained sequential write
  double read_bandwidth_Bps = 0.0;
  double latency_s = 0.0;            ///< per-operation setup cost
  /// Ranks on one node share the device; effective bandwidth divides by
  /// the number of concurrent writers.
  int sharers = 1;
};

/// Commodity 7.2k HDD — calibrated so a 4 GB per-process image across a
/// shared node disk costs ~the 295 s the paper measured for BLCR+HDD.
DeviceProfile hdd_profile(int sharers = 1);

/// SATA SSD — ~112 s for the same image (BLCR+SSD row).
DeviceProfile ssd_profile(int sharers = 1);

/// Node-local RAM filesystem (SCR's fastest level).
DeviceProfile ramfs_profile(int sharers = 1);

/// Parallel file system: high aggregate but heavily shared.
DeviceProfile pfs_profile(int sharers = 1);

class Device {
 public:
  explicit Device(DeviceProfile profile) : profile_(std::move(profile)) {}

  [[nodiscard]] const DeviceProfile& profile() const { return profile_; }

  /// Virtual seconds to write/read `bytes` given the profile's sharing.
  [[nodiscard]] double write_seconds(std::size_t bytes) const;
  [[nodiscard]] double read_seconds(std::size_t bytes) const;

 private:
  DeviceProfile profile_;
};

}  // namespace skt::storage
