#include "storage/device.hpp"

#include <algorithm>
#include <stdexcept>

namespace skt::storage {

DeviceProfile hdd_profile(int sharers) {
  return {.name = "hdd",
          .write_bandwidth_Bps = 160.0e6,
          .read_bandwidth_Bps = 180.0e6,
          .latency_s = 8.0e-3,
          .sharers = sharers};
}

DeviceProfile ssd_profile(int sharers) {
  return {.name = "ssd",
          .write_bandwidth_Bps = 420.0e6,
          .read_bandwidth_Bps = 520.0e6,
          .latency_s = 1.0e-4,
          .sharers = sharers};
}

DeviceProfile ramfs_profile(int sharers) {
  return {.name = "ramfs",
          .write_bandwidth_Bps = 8.0e9,
          .read_bandwidth_Bps = 10.0e9,
          .latency_s = 1.0e-6,
          .sharers = sharers};
}

DeviceProfile pfs_profile(int sharers) {
  return {.name = "pfs",
          .write_bandwidth_Bps = 2.0e9,
          .read_bandwidth_Bps = 2.5e9,
          .latency_s = 2.0e-3,
          .sharers = sharers};
}

namespace {
double transfer_seconds(double bandwidth, double latency, int sharers, std::size_t bytes) {
  if (bandwidth <= 0.0) throw std::logic_error("Device: zero-bandwidth profile used for IO");
  const double effective = bandwidth / std::max(1, sharers);
  return latency + static_cast<double>(bytes) / effective;
}
}  // namespace

double Device::write_seconds(std::size_t bytes) const {
  return transfer_seconds(profile_.write_bandwidth_Bps, profile_.latency_s, profile_.sharers,
                          bytes);
}

double Device::read_seconds(std::size_t bytes) const {
  return transfer_seconds(profile_.read_bandwidth_Bps, profile_.latency_s, profile_.sharers,
                          bytes);
}

}  // namespace skt::storage
