#include "storage/snapshot_vault.hpp"

namespace skt::storage {

void SnapshotVault::put(const std::string& key, std::span<const std::byte> blob) {
  std::vector<std::byte> copy(blob.begin(), blob.end());
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_[key] = std::move(copy);
}

std::optional<std::vector<std::byte>> SnapshotVault::get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blobs_.find(key);
  if (it == blobs_.end()) return std::nullopt;
  return it->second;
}

bool SnapshotVault::exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.contains(key);
}

void SnapshotVault::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_.erase(key);
}

void SnapshotVault::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_.clear();
}

std::size_t SnapshotVault::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, blob] : blobs_) total += blob.size();
  return total;
}

}  // namespace skt::storage
