#include "storage/snapshot_vault.hpp"

namespace skt::storage {

void SnapshotVault::put(const std::string& key, std::span<const std::byte> blob) {
  std::vector<std::byte> copy(blob.begin(), blob.end());
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_[key] = std::move(copy);
}

std::optional<std::vector<std::byte>> SnapshotVault::get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blobs_.find(key);
  if (it == blobs_.end()) return std::nullopt;
  return it->second;
}

bool SnapshotVault::exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.contains(key);
}

void SnapshotVault::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_.erase(key);
}

void SnapshotVault::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_.clear();
}

std::size_t SnapshotVault::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, blob] : blobs_) total += blob.size();
  return total;
}

std::size_t SnapshotVault::bytes_under(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (auto it = blobs_.lower_bound(prefix);
       it != blobs_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
    total += it->second.size();
  }
  return total;
}

std::size_t SnapshotVault::remove_prefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t removed = 0;
  auto it = blobs_.lower_bound(prefix);
  while (it != blobs_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = blobs_.erase(it);
    ++removed;
  }
  return removed;
}

}  // namespace skt::storage
