// Distributed group encoding over a communicator (Sections 2.1-2.2).
//
// encode() computes, for every family f, the checksum of the other
// members' stripes — the paper's round-robin checksum distribution, which
// is exactly a reduce-scatter: one ring collective encodes all N checksum
// families at once, each member emitting its stripes block-wise and
// receiving its own family's finished checksum. The rotating ownership is
// what spreads encoding traffic across the group and avoids the
// single-node hotspot the paper calls out.
//
// rebuild() reconstructs a failed member's entire padded buffer plus its
// checksum stripe from the survivors, with the failed (replacement) member
// contributing identity elements so the same reduce schedule works for
// everyone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "encoding/codec.hpp"
#include "encoding/stripes.hpp"
#include "mpi/comm.hpp"

namespace skt::enc {

class GroupCodec {
 public:
  /// `data_bytes`: protected payload per member (all members must pass the
  /// same value); `group_size` must equal the communicator size at use.
  GroupCodec(CodecKind kind, std::size_t data_bytes, int group_size);

  [[nodiscard]] CodecKind kind() const { return kind_; }
  [[nodiscard]] const StripeLayout& layout() const { return layout_; }
  [[nodiscard]] std::size_t padded_bytes() const { return layout_.padded_bytes(); }
  [[nodiscard]] std::size_t checksum_bytes() const { return layout_.stripe_bytes(); }

  /// Collective over `group`. `data` is this member's padded buffer;
  /// `checksum` (stripe_bytes) receives the checksum of this member's
  /// family. Every member ends up holding one checksum stripe. Implemented
  /// as a single ring reduce-scatter over stripe blocks.
  void encode(mpi::Comm& group, std::span<const std::byte> data,
              std::span<std::byte> checksum) const;

  /// Collective delta re-encode (incremental commits). `base` is the
  /// buffer `old_checksum` was encoded from, `next` the current buffer,
  /// and `dirty` a per-stripe flag vector (group_size-1 entries, indexed
  /// by stripe_index) marking which of THIS member's stripes may differ
  /// between the two. Produces the same `checksum` as encode(next) —
  /// bit-identical for XOR — but only dirty families move bytes on the
  /// wire: family f's owner folds the XOR (or SUM) of the members' stripe
  /// diffs into the old checksum (parity ^= old ^ new). Falls back to the
  /// full reduce-scatter encode when at least half the families are dirty,
  /// where one ring pass beats per-family reduces. The dirty set is
  /// allreduced internally, so members may pass different flags.
  void encode_delta(mpi::Comm& group, std::span<const std::byte> base,
                    std::span<const std::byte> next,
                    std::span<const std::byte> old_checksum, std::span<std::byte> checksum,
                    std::span<const std::uint8_t> dirty) const;

  /// The pre-reduce-scatter baseline: one binomial reduce per family,
  /// rooted round-robin. Same result as encode() (bit-identical for XOR,
  /// tolerance-equal for SUM, whose combine order differs). Kept for the
  /// old-vs-new property tests and the bandwidth benches.
  void encode_reference(mpi::Comm& group, std::span<const std::byte> data,
                        std::span<std::byte> checksum) const;

  /// Collective over `group`: reconstruct member `failed`.
  /// Survivors pass their (intact) data and checksum as inputs; the failed
  /// member passes buffers whose contents are ignored on entry and hold the
  /// rebuilt data + checksum on return.
  void rebuild(mpi::Comm& group, int failed, std::span<std::byte> data,
               std::span<std::byte> checksum) const;

  /// Collective consistency check: re-encode into scratch space and compare
  /// with `checksum` on every member; returns the AND across the group.
  [[nodiscard]] bool verify(mpi::Comm& group, std::span<const std::byte> data,
                            std::span<const std::byte> checksum) const;

 private:
  void check_args(const mpi::Comm& group, std::size_t data_size, std::size_t checksum_size) const;

  CodecKind kind_;
  StripeLayout layout_;
};

}  // namespace skt::enc
