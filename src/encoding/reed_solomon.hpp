// Systematic Reed-Solomon erasure code over GF(2^8) with a Cauchy
// generator matrix, so any k of the k+m shards reconstruct the data —
// the multi-failure upgrade path the paper sketches for its group encoding
// ("more complex encoding methods, such as RAID-6 and Reed-Solomon, to
// tolerate more node failures").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace skt::enc {

class ReedSolomon {
 public:
  /// k data shards + m parity shards; k + m <= 256, k, m >= 1.
  ReedSolomon(int data_shards, int parity_shards);

  [[nodiscard]] int data_shards() const { return k_; }
  [[nodiscard]] int parity_shards() const { return m_; }

  /// Compute all parity shards from the data shards. All shards must have
  /// the same size.
  void encode(std::span<const std::span<const std::uint8_t>> data,
              std::span<const std::span<std::uint8_t>> parity) const;

  /// Rebuild every missing shard in place. `shards` holds k data shards
  /// followed by m parity shards; `present[i]` says whether shards[i] holds
  /// valid content. Returns false when more than m shards are missing.
  bool reconstruct(std::span<const std::span<std::uint8_t>> shards,
                   const std::vector<bool>& present) const;

  /// Generator coefficient for parity row j, data column i.
  [[nodiscard]] std::uint8_t coefficient(int j, int i) const;

 private:
  int k_;
  int m_;
  std::vector<std::uint8_t> cauchy_;  // m x k
};

}  // namespace skt::enc
