// Uniform erasure-coder interface over the single-parity (RAID-5-style,
// Fig. 1) and dual-parity (RAID-6-style) group codecs, so checkpoint
// protocols can be parameterized by fault-tolerance degree.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "encoding/codec.hpp"
#include "encoding/dual_parity.hpp"
#include "encoding/group_codec.hpp"
#include "encoding/rs_group.hpp"

namespace skt::enc {

class ErasureCoder {
 public:
  virtual ~ErasureCoder() = default;

  /// Padded payload buffer size per member.
  [[nodiscard]] virtual std::size_t padded_bytes() const = 0;
  /// Per-member redundancy buffer size (checksum / parity stripes).
  [[nodiscard]] virtual std::size_t redundancy_bytes() const = 0;
  /// Simultaneous member losses the code repairs.
  [[nodiscard]] virtual int max_failures() const = 0;

  /// Stripe geometry: the padded buffer is stripe_count() stripes of
  /// stripe_bytes() each. Dirty tracking is done at this granularity.
  [[nodiscard]] virtual std::size_t stripe_bytes() const = 0;
  [[nodiscard]] std::size_t stripe_count() const { return padded_bytes() / stripe_bytes(); }

  /// Collective: fill this member's redundancy buffer.
  virtual void encode(mpi::Comm& group, std::span<const std::byte> data,
                      std::span<std::byte> redundancy) const = 0;

  /// Collective delta re-encode: update `redundancy` from `old_redundancy`
  /// given that only the stripes flagged in `dirty` (stripe_count()
  /// entries) differ between `base` and `next`. Equivalent to
  /// encode(next); clean families move no bytes. The default ignores the
  /// delta inputs and re-encodes from scratch.
  virtual void encode_delta(mpi::Comm& group, std::span<const std::byte> base,
                            std::span<const std::byte> next,
                            std::span<const std::byte> old_redundancy,
                            std::span<std::byte> redundancy,
                            std::span<const std::uint8_t> dirty) const {
    (void)base;
    (void)old_redundancy;
    (void)dirty;
    encode(group, next, redundancy);
  }
  /// Collective: reconstruct the listed members (size <= max_failures()).
  virtual void rebuild(mpi::Comm& group, std::span<const int> missing,
                       std::span<std::byte> data, std::span<std::byte> redundancy) const = 0;
  /// Collective consistency check.
  [[nodiscard]] virtual bool verify(mpi::Comm& group, std::span<const std::byte> data,
                                    std::span<const std::byte> redundancy) const = 0;
};

/// Single-erasure coder (XOR or SUM), the paper's default.
class SingleParityCoder final : public ErasureCoder {
 public:
  SingleParityCoder(CodecKind kind, std::size_t data_bytes, int group_size)
      : codec_(kind, data_bytes, group_size) {}

  [[nodiscard]] std::size_t padded_bytes() const override { return codec_.padded_bytes(); }
  [[nodiscard]] std::size_t redundancy_bytes() const override {
    return codec_.checksum_bytes();
  }
  [[nodiscard]] int max_failures() const override { return 1; }
  [[nodiscard]] std::size_t stripe_bytes() const override {
    return codec_.layout().stripe_bytes();
  }

  void encode(mpi::Comm& group, std::span<const std::byte> data,
              std::span<std::byte> redundancy) const override {
    codec_.encode(group, data, redundancy);
  }
  void encode_delta(mpi::Comm& group, std::span<const std::byte> base,
                    std::span<const std::byte> next, std::span<const std::byte> old_redundancy,
                    std::span<std::byte> redundancy,
                    std::span<const std::uint8_t> dirty) const override {
    codec_.encode_delta(group, base, next, old_redundancy, redundancy, dirty);
  }
  void rebuild(mpi::Comm& group, std::span<const int> missing, std::span<std::byte> data,
               std::span<std::byte> redundancy) const override {
    if (missing.empty()) return;
    if (missing.size() > 1) {
      // Never fall back to rebuilding missing.front() alone: a single-
      // parity group handed a multi-erasure set would return silently
      // wrong bytes, which is strictly worse than aborting the restore.
      throw std::invalid_argument(
          "SingleParityCoder: " + std::to_string(missing.size()) +
          " concurrent erasures exceed the single-parity budget (max 1); refusing to "
          "rebuild from partial data");
    }
    codec_.rebuild(group, missing.front(), data, redundancy);
  }
  [[nodiscard]] bool verify(mpi::Comm& group, std::span<const std::byte> data,
                            std::span<const std::byte> redundancy) const override {
    return codec_.verify(group, data, redundancy);
  }

 private:
  GroupCodec codec_;
};

/// Dual-erasure coder over GF(2^8).
class DualParityCoder final : public ErasureCoder {
 public:
  DualParityCoder(std::size_t data_bytes, int group_size) : codec_(data_bytes, group_size) {}

  [[nodiscard]] std::size_t padded_bytes() const override { return codec_.padded_bytes(); }
  [[nodiscard]] std::size_t redundancy_bytes() const override {
    return codec_.parity_bytes();
  }
  [[nodiscard]] int max_failures() const override { return 2; }
  [[nodiscard]] std::size_t stripe_bytes() const override { return codec_.stripe_bytes(); }

  void encode(mpi::Comm& group, std::span<const std::byte> data,
              std::span<std::byte> redundancy) const override {
    codec_.encode(group, data, redundancy);
  }
  void encode_delta(mpi::Comm& group, std::span<const std::byte> base,
                    std::span<const std::byte> next, std::span<const std::byte> old_redundancy,
                    std::span<std::byte> redundancy,
                    std::span<const std::uint8_t> dirty) const override {
    codec_.encode_delta(group, base, next, old_redundancy, redundancy, dirty);
  }
  void rebuild(mpi::Comm& group, std::span<const int> missing, std::span<std::byte> data,
               std::span<std::byte> redundancy) const override {
    codec_.rebuild(group, missing, data, redundancy);
  }
  [[nodiscard]] bool verify(mpi::Comm& group, std::span<const std::byte> data,
                            std::span<const std::byte> redundancy) const override {
    return codec_.verify(group, data, redundancy);
  }

 private:
  DualParityGroupCodec codec_;
};

/// General RS(k, m) coder over GF(2^8): m = parity_count simultaneous
/// erasures, k = group_size - m data stripes per member. For m == 2 the
/// outputs are bit-identical to DualParityCoder.
class RSCoder final : public ErasureCoder {
 public:
  RSCoder(std::size_t data_bytes, int group_size, int parity_count)
      : codec_(data_bytes, group_size, parity_count) {}

  [[nodiscard]] std::size_t padded_bytes() const override { return codec_.padded_bytes(); }
  [[nodiscard]] std::size_t redundancy_bytes() const override {
    return codec_.parity_bytes();
  }
  [[nodiscard]] int max_failures() const override { return codec_.parity_count(); }
  [[nodiscard]] std::size_t stripe_bytes() const override { return codec_.stripe_bytes(); }

  void encode(mpi::Comm& group, std::span<const std::byte> data,
              std::span<std::byte> redundancy) const override {
    codec_.encode(group, data, redundancy);
  }
  void encode_delta(mpi::Comm& group, std::span<const std::byte> base,
                    std::span<const std::byte> next, std::span<const std::byte> old_redundancy,
                    std::span<std::byte> redundancy,
                    std::span<const std::uint8_t> dirty) const override {
    codec_.encode_delta(group, base, next, old_redundancy, redundancy, dirty);
  }
  void rebuild(mpi::Comm& group, std::span<const int> missing, std::span<std::byte> data,
               std::span<std::byte> redundancy) const override {
    codec_.rebuild(group, missing, data, redundancy);
  }
  [[nodiscard]] bool verify(mpi::Comm& group, std::span<const std::byte> data,
                            std::span<const std::byte> redundancy) const override {
    return codec_.verify(group, data, redundancy);
  }

 private:
  RSGroupCodec codec_;
};

/// parity_degree 1 -> SingleParityCoder (with `kind`); >= 2 -> RSCoder
/// (always GF/XOR-based; degree 2 is bit-identical to DualParityCoder).
[[nodiscard]] inline std::unique_ptr<ErasureCoder> make_coder(int parity_degree,
                                                              CodecKind kind,
                                                              std::size_t data_bytes,
                                                              int group_size) {
  if (parity_degree == 1) {
    return std::make_unique<SingleParityCoder>(kind, data_bytes, group_size);
  }
  if (parity_degree >= 2) {
    return std::make_unique<RSCoder>(data_bytes, group_size, parity_degree);
  }
  throw std::invalid_argument("make_coder: parity_degree must be >= 1");
}

}  // namespace skt::enc
