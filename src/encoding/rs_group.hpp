// RS(k, m) wide-stripe group encoding — the general multi-erasure upgrade
// of the single-parity (Fig. 1) and dual-parity (RAID-6) group codecs.
//
// Layout, generalizing dual_parity.hpp: a group of N >= m+2 members forms
// N parity families. Family f keeps m parity stripes, one per generator
// row; row j's stripe lives on member (f + j) % N. A member therefore
// owns parity for exactly the m families {(me - j + N) % N : j < m} and
// contributes one data stripe to each of the remaining k = N - m
// families, so its payload splits into k stripes and its parity buffer
// holds m stripes — overhead m/k of the payload, and ANY m member losses
// are recoverable from the k survivors.
//
// Parity rows are rows 0..m-1 of the Cauchy Reed-Solomon generator over
// GF(2^8) (reed_solomon.hpp): every square submatrix of a Cauchy matrix
// is invertible, so any L <= m lost contributors of a family yield an
// L x L solvable system against the L surviving parity rows.
//
// With m == 2 the family layout, coefficients, and wire schedule reduce
// exactly to DualParityGroupCodec; the outputs are bit-identical (a
// property test in test_encoding.cpp holds the two implementations
// together).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "encoding/reed_solomon.hpp"
#include "mpi/comm.hpp"

namespace skt::enc {

class RSGroupCodec {
 public:
  /// `data_bytes` payload per member; `group_size` N >= parity_count + 2;
  /// `parity_count` m >= 1 simultaneous losses to tolerate.
  RSGroupCodec(std::size_t data_bytes, int group_size, int parity_count);

  [[nodiscard]] int group_size() const { return group_size_; }
  [[nodiscard]] int parity_count() const { return parity_count_; }
  [[nodiscard]] std::size_t stripe_bytes() const { return stripe_bytes_; }

  /// Padded payload buffer size: k = N - m stripes.
  [[nodiscard]] std::size_t padded_bytes() const {
    return stripe_bytes_ * static_cast<std::size_t>(group_size_ - parity_count_);
  }

  /// Per-member parity buffer: slot j (of m) holds the row-j parity
  /// stripe of family (rank - j + N) % N.
  [[nodiscard]] std::size_t parity_bytes() const {
    return static_cast<std::size_t>(parity_count_) * stripe_bytes_;
  }

  /// Collective: compute all m parity stripes of every family — one ring
  /// reduce-scatter pass per generator row.
  void encode(mpi::Comm& group, std::span<const std::byte> data,
              std::span<std::byte> parity) const;

  /// Collective delta re-encode: `dirty` flags this member's stripes
  /// (k entries, indexed by stripe_index) that may differ between `base`
  /// and `next`. All m parity rows of each dirty family are updated from
  /// the GF(2^8)-weighted stripe diffs folded into `old_parity`
  /// (P' = P ^ sum c_i * (old_i ^ new_i)); clean families copy through
  /// with no traffic. Result is bit-identical to encode(next). Falls back
  /// to the full m-pass reduce-scatter encode when at least half the
  /// families are dirty. The dirty set is allreduced internally.
  void encode_delta(mpi::Comm& group, std::span<const std::byte> base,
                    std::span<const std::byte> next, std::span<const std::byte> old_parity,
                    std::span<std::byte> parity, std::span<const std::uint8_t> dirty) const;

  /// Collective: reconstruct up to m failed members' data + parity.
  /// Survivors pass intact buffers; failed members' buffer contents are
  /// rebuilt in place. Throws std::invalid_argument for > m failures.
  void rebuild(mpi::Comm& group, std::span<const int> failed, std::span<std::byte> data,
               std::span<std::byte> parity) const;

  /// Collective consistency check (re-encode and compare, AND-reduced).
  [[nodiscard]] bool verify(mpi::Comm& group, std::span<const std::byte> data,
                            std::span<const std::byte> parity) const;

  // --- layout helpers (public for tests) --------------------------------

  /// True when member p contributes a data stripe to family f (i.e. p
  /// owns none of family f's parity rows).
  [[nodiscard]] bool contributes(int p, int f) const;
  /// Index of member p's stripe for family f within its padded buffer.
  [[nodiscard]] std::size_t stripe_index(int p, int f) const;
  /// Contributor order of member p within family f (coefficient index).
  [[nodiscard]] int contributor_index(int p, int f) const;
  /// GF coefficient of contributor p in parity row `row` (0 <= row < m).
  [[nodiscard]] std::uint8_t coefficient(int row, int p, int f) const;
  /// Member holding family f's row-`row` parity stripe.
  [[nodiscard]] int parity_owner(int row, int f) const {
    return (f + row) % group_size_;
  }

 private:
  void check_args(const mpi::Comm& group, std::size_t data_size,
                  std::size_t parity_size) const;
  /// Reduce helper: each member contributes coeff * its stripe of family f
  /// (identity when it is not a contributor); result lands on `root`.
  void reduce_family(mpi::Comm& group, int f, int row, std::span<const std::byte> data,
                     const std::vector<int>& skip, int root,
                     std::span<std::byte> out) const;

  std::size_t data_bytes_;
  int group_size_;
  int parity_count_;
  std::size_t stripe_bytes_;
  ReedSolomon rs_;
};

}  // namespace skt::enc
