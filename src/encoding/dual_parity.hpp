// Dual-parity group encoding — the RAID-6 / Reed-Solomon upgrade the paper
// names for tolerating more than one node failure per group (Section 2.1).
//
// Layout, generalizing Fig. 1: a group of N >= 4 members forms N families.
// Family f's two parity stripes live on members f (row "P") and (f+1) % N
// (row "Q"); every other member contributes one data stripe, so each
// member splits its payload into N-2 stripes and stores exactly two parity
// stripes — parity overhead 2/(N-2) of the payload, and ANY two member
// losses are recoverable.
//
// Parity rows are rows 0 and 1 of the Cauchy Reed-Solomon generator over
// GF(2^8) (reed_solomon.hpp), so the two-erasure solve is a 2x2 system
// with a guaranteed non-zero determinant.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "encoding/reed_solomon.hpp"
#include "encoding/stripes.hpp"
#include "mpi/comm.hpp"

namespace skt::enc {

class DualParityGroupCodec {
 public:
  /// `data_bytes` payload per member; `group_size` N >= 4.
  DualParityGroupCodec(std::size_t data_bytes, int group_size);

  [[nodiscard]] int group_size() const { return group_size_; }
  [[nodiscard]] std::size_t stripe_bytes() const { return stripe_bytes_; }

  /// Padded payload buffer size: (N-2) stripes.
  [[nodiscard]] std::size_t padded_bytes() const {
    return stripe_bytes_ * static_cast<std::size_t>(group_size_ - 2);
  }

  /// Per-member parity buffer: [P stripe of family rank | Q stripe of
  /// family (rank-1+N) % N].
  [[nodiscard]] std::size_t parity_bytes() const { return 2 * stripe_bytes_; }

  /// Collective: compute both parity stripes of every family.
  void encode(mpi::Comm& group, std::span<const std::byte> data,
              std::span<std::byte> parity) const;

  /// Collective delta re-encode: `dirty` flags this member's stripes
  /// (group_size-2 entries, indexed by stripe_index) that may differ
  /// between `base` and `next`. Both parity rows of each dirty family are
  /// updated from the GF(2^8)-weighted stripe diffs folded into
  /// `old_parity` (P' = P ^ sum c_i * (old_i ^ new_i)); clean families
  /// copy through with no traffic. Result is bit-identical to
  /// encode(next). Falls back to the full two-pass reduce-scatter encode
  /// when at least half the families are dirty. The dirty set is
  /// allreduced internally.
  void encode_delta(mpi::Comm& group, std::span<const std::byte> base,
                    std::span<const std::byte> next, std::span<const std::byte> old_parity,
                    std::span<std::byte> parity, std::span<const std::uint8_t> dirty) const;

  /// Collective: reconstruct up to two failed members' data + parity.
  /// Survivors pass intact buffers; failed members' buffer contents are
  /// rebuilt in place. Throws std::invalid_argument for > 2 failures.
  void rebuild(mpi::Comm& group, std::span<const int> failed, std::span<std::byte> data,
               std::span<std::byte> parity) const;

  /// Collective consistency check (re-encode and compare, AND-reduced).
  [[nodiscard]] bool verify(mpi::Comm& group, std::span<const std::byte> data,
                            std::span<const std::byte> parity) const;

  // --- layout helpers (public for tests) --------------------------------

  /// True when member p contributes a data stripe to family f.
  [[nodiscard]] bool contributes(int p, int f) const;
  /// Index of member p's stripe for family f within its padded buffer.
  [[nodiscard]] std::size_t stripe_index(int p, int f) const;
  /// Contributor order of member p within family f (coefficient index).
  [[nodiscard]] int contributor_index(int p, int f) const;
  /// GF coefficient of contributor p in parity row `row` (0 = P, 1 = Q).
  [[nodiscard]] std::uint8_t coefficient(int row, int p, int f) const;

 private:
  void check_args(const mpi::Comm& group, std::size_t data_size,
                  std::size_t parity_size) const;
  /// Reduce helper: each member contributes coeff * its stripe of family f
  /// (identity when it is not a contributor); result lands on `root`.
  void reduce_family(mpi::Comm& group, int f, int row, std::span<const std::byte> data,
                     const std::vector<int>& skip, int root,
                     std::span<std::byte> out) const;

  std::size_t data_bytes_;
  int group_size_;
  std::size_t stripe_bytes_;
  ReedSolomon rs_;
};

}  // namespace skt::enc
