#include "encoding/group_codec.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

namespace skt::enc {
namespace {

/// Typed dispatch of a byte-span reduce onto the communicator. Buffers are
/// lane-padded by StripeLayout, so the uint64/double reinterpretation is
/// size-exact.
void reduce_bytes(mpi::Comm& group, CodecKind kind, int root, std::span<const std::byte> in,
                  std::span<std::byte> out) {
  if (kind == CodecKind::kXor) {
    const std::span<const std::uint64_t> in64{reinterpret_cast<const std::uint64_t*>(in.data()),
                                              in.size() / sizeof(std::uint64_t)};
    const std::span<std::uint64_t> out64{reinterpret_cast<std::uint64_t*>(out.data()),
                                         out.size() / sizeof(std::uint64_t)};
    group.reduce<std::uint64_t>(root, in64, out64, mpi::BXor{});
  } else {
    const std::span<const double> ind{reinterpret_cast<const double*>(in.data()),
                                      in.size() / sizeof(double)};
    const std::span<double> outd{reinterpret_cast<double*>(out.data()),
                                 out.size() / sizeof(double)};
    group.reduce<double>(root, ind, outd, mpi::Sum{});
  }
}

}  // namespace

GroupCodec::GroupCodec(CodecKind kind, std::size_t data_bytes, int group_size)
    : kind_(kind), layout_(data_bytes, group_size) {}

void GroupCodec::check_args(const mpi::Comm& group, std::size_t data_size,
                            std::size_t checksum_size) const {
  if (group.size() != layout_.group_size()) {
    throw std::invalid_argument("GroupCodec: communicator size != group size");
  }
  if (data_size != layout_.padded_bytes()) {
    throw std::invalid_argument("GroupCodec: data buffer must be padded_bytes()");
  }
  if (checksum_size != checksum_bytes()) {
    throw std::invalid_argument("GroupCodec: checksum buffer must be checksum_bytes()");
  }
}

void GroupCodec::encode(mpi::Comm& group, std::span<const std::byte> data,
                        std::span<std::byte> checksum) const {
  check_args(group, data.size(), checksum.size());
  const int n = layout_.group_size();
  const int me = group.rank();
  const std::vector<std::byte> identity(layout_.stripe_bytes(), std::byte{0});
  for (int f = 0; f < n; ++f) {
    const std::span<const std::byte> contribution =
        me == f ? std::span<const std::byte>(identity) : layout_.stripe(data, me, f);
    reduce_bytes(group, kind_, f, contribution,
                 me == f ? checksum : std::span<std::byte>{});
  }
}

void GroupCodec::rebuild(mpi::Comm& group, int failed, std::span<std::byte> data,
                         std::span<std::byte> checksum) const {
  check_args(group, data.size(), checksum.size());
  const int n = layout_.group_size();
  const int me = group.rank();
  if (failed < 0 || failed >= n) throw std::invalid_argument("GroupCodec::rebuild: bad member");

  const std::vector<std::byte> identity(layout_.stripe_bytes(), std::byte{0});
  std::vector<std::byte> scratch(layout_.stripe_bytes());

  // Phase A: for every family f != failed, reconstruct the failed member's
  // stripe: stripe(failed, f) = checksum_f (-) sum of surviving stripes.
  for (int f = 0; f < n; ++f) {
    if (f == failed) continue;
    std::span<const std::byte> contribution;
    if (me == failed) {
      contribution = identity;
    } else if (me == f) {
      contribution = checksum;  // this member holds family f's checksum
    } else {
      const std::span<const std::byte> mine =
          layout_.stripe(std::span<const std::byte>(data), me, f);
      if (kind_ == CodecKind::kXor) {
        contribution = mine;  // XOR is self-inverse
      } else {
        // SUM: contribute the negated stripe so the reduce yields
        // checksum - sum(survivors) directly.
        const std::span<std::byte> neg{scratch.data(), scratch.size()};
        fill_identity(neg);
        retract(kind_, neg, mine);
        contribution = neg;
      }
    }
    reduce_bytes(group, kind_, failed, contribution,
                 me == failed ? layout_.stripe(data, me, f) : std::span<std::byte>{});
  }

  // Phase B: rebuild the failed member's own checksum stripe from the
  // survivors' stripes of family `failed`.
  {
    const std::span<const std::byte> contribution =
        me == failed ? std::span<const std::byte>(identity)
                     : layout_.stripe(std::span<const std::byte>(data), me, failed);
    reduce_bytes(group, kind_, failed, contribution,
                 me == failed ? checksum : std::span<std::byte>{});
  }
}

bool GroupCodec::verify(mpi::Comm& group, std::span<const std::byte> data,
                        std::span<const std::byte> checksum) const {
  check_args(group, data.size(), checksum.size());
  std::vector<std::byte> recomputed(checksum_bytes());
  encode(group, data, recomputed);
  const std::uint8_t ok =
      equals(kind_, std::span<const std::byte>(recomputed), checksum) ? 1 : 0;
  return group.allreduce_value<std::uint8_t>(ok, mpi::Min{}) == 1;
}

}  // namespace skt::enc
