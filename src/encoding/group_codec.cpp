#include "encoding/group_codec.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "encoding/kernels.hpp"
#include "util/aligned.hpp"

namespace skt::enc {
namespace {

/// Typed dispatch of a byte-span reduce onto the communicator. Buffers are
/// lane-padded by StripeLayout, so the uint64/double reinterpretation is
/// size-exact.
void reduce_bytes(mpi::Comm& group, CodecKind kind, int root, std::span<const std::byte> in,
                  std::span<std::byte> out) {
  if (kind == CodecKind::kXor) {
    const std::span<const std::uint64_t> in64{reinterpret_cast<const std::uint64_t*>(in.data()),
                                              in.size() / sizeof(std::uint64_t)};
    const std::span<std::uint64_t> out64{reinterpret_cast<std::uint64_t*>(out.data()),
                                         out.size() / sizeof(std::uint64_t)};
    group.reduce<std::uint64_t>(root, in64, out64, mpi::BXor{});
  } else {
    const std::span<const double> ind{reinterpret_cast<const double*>(in.data()),
                                      in.size() / sizeof(double)};
    const std::span<double> outd{reinterpret_cast<double*>(out.data()),
                                 out.size() / sizeof(double)};
    group.reduce<double>(root, ind, outd, mpi::Sum{});
  }
}

template <typename T>
std::span<const T> as_lanes(std::span<const std::byte> b) {
  return {reinterpret_cast<const T*>(b.data()), b.size() / sizeof(T)};
}

/// One reduce-scatter encodes every family: block f of this member's
/// contribution is its stripe for family f (identity for its own family),
/// and the scatter lands family f's finished checksum exactly on member f.
template <typename T, typename Op>
void encode_scatter(mpi::Comm& group, const StripeLayout& layout,
                    std::span<const std::byte> data, std::span<std::byte> checksum,
                    std::span<const std::byte> identity, Op op) {
  const int n = layout.group_size();
  const int me = group.rank();
  std::vector<std::span<const T>> blocks(static_cast<std::size_t>(n));
  for (int f = 0; f < n; ++f) {
    blocks[static_cast<std::size_t>(f)] =
        as_lanes<T>(f == me ? identity : layout.stripe(data, me, f));
  }
  group.reduce_scatter_blocks<T, Op>(
      blocks, {reinterpret_cast<T*>(checksum.data()), checksum.size() / sizeof(T)}, op);
}

}  // namespace

GroupCodec::GroupCodec(CodecKind kind, std::size_t data_bytes, int group_size)
    : kind_(kind), layout_(data_bytes, group_size) {}

void GroupCodec::check_args(const mpi::Comm& group, std::size_t data_size,
                            std::size_t checksum_size) const {
  if (group.size() != layout_.group_size()) {
    throw std::invalid_argument("GroupCodec: communicator size != group size");
  }
  if (data_size != layout_.padded_bytes()) {
    throw std::invalid_argument("GroupCodec: data buffer must be padded_bytes()");
  }
  if (checksum_size != checksum_bytes()) {
    throw std::invalid_argument("GroupCodec: checksum buffer must be checksum_bytes()");
  }
}

void GroupCodec::encode(mpi::Comm& group, std::span<const std::byte> data,
                        std::span<std::byte> checksum) const {
  check_args(group, data.size(), checksum.size());
  const std::vector<std::byte> identity(layout_.stripe_bytes(), std::byte{0});
  if (kind_ == CodecKind::kXor) {
    encode_scatter<std::uint64_t>(group, layout_, data, checksum, identity, mpi::BXor{});
  } else {
    encode_scatter<double>(group, layout_, data, checksum, identity, mpi::Sum{});
  }
}

void GroupCodec::encode_delta(mpi::Comm& group, std::span<const std::byte> base,
                              std::span<const std::byte> next,
                              std::span<const std::byte> old_checksum,
                              std::span<std::byte> checksum,
                              std::span<const std::uint8_t> dirty) const {
  check_args(group, next.size(), checksum.size());
  if (base.size() != next.size() || old_checksum.size() != checksum.size()) {
    throw std::invalid_argument("GroupCodec::encode_delta: base/old buffer size mismatch");
  }
  const int n = layout_.group_size();
  const int me = group.rank();
  if (dirty.size() != static_cast<std::size_t>(n - 1)) {
    throw std::invalid_argument("GroupCodec::encode_delta: dirty flags must cover all stripes");
  }

  // Agree on which families changed anywhere in the group: family f is
  // dirty when ANY member's stripe for f is flagged.
  std::vector<std::uint8_t> family_dirty(static_cast<std::size_t>(n), 0);
  for (int f = 0; f < n; ++f) {
    if (f != me) family_dirty[static_cast<std::size_t>(f)] = dirty[layout_.stripe_index(me, f)];
  }
  std::vector<std::uint8_t> global_dirty(static_cast<std::size_t>(n));
  group.allreduce<std::uint8_t>(family_dirty, global_dirty, mpi::Max{});
  int dirty_families = 0;
  for (std::uint8_t d : global_dirty) dirty_families += d;

  // Mostly-dirty commits: one bandwidth-optimal reduce-scatter over all
  // families beats per-family binomial reduces once half the group changed.
  if (2 * dirty_families >= n) {
    encode(group, next, checksum);
    return;
  }

  // Seed with the previous checksum, then fold each dirty family's reduced
  // diff into its owner's copy. Clean families need no traffic at all.
  if (checksum.data() != old_checksum.data()) {
    std::memcpy(checksum.data(), old_checksum.data(), checksum.size());
  }
  const std::size_t stripe = layout_.stripe_bytes();
  util::AlignedBytes diff(stripe);
  util::AlignedBytes reduced(stripe);
  for (int f = 0; f < n; ++f) {
    if (!global_dirty[static_cast<std::size_t>(f)]) continue;
    const bool mine_dirty = f != me && dirty[layout_.stripe_index(me, f)] != 0;
    if (mine_dirty) {
      const std::span<const std::byte> b = layout_.stripe(base, me, f);
      const std::span<const std::byte> x = layout_.stripe(next, me, f);
      if (kind_ == CodecKind::kXor) {
        kernels::xor_delta(diff, b, x);
      } else {
        std::memcpy(diff.data(), x.data(), stripe);
        kernels::sum_sub({reinterpret_cast<double*>(diff.data()), stripe / sizeof(double)},
                         {reinterpret_cast<const double*>(b.data()), stripe / sizeof(double)});
      }
    } else {
      std::memset(diff.data(), 0, stripe);
    }
    reduce_bytes(group, kind_, f, diff, f == me ? std::span<std::byte>(reduced)
                                                : std::span<std::byte>{});
    if (f == me) accumulate(kind_, checksum, reduced);
  }
}

void GroupCodec::encode_reference(mpi::Comm& group, std::span<const std::byte> data,
                                  std::span<std::byte> checksum) const {
  check_args(group, data.size(), checksum.size());
  const int n = layout_.group_size();
  const int me = group.rank();
  const std::vector<std::byte> identity(layout_.stripe_bytes(), std::byte{0});
  for (int f = 0; f < n; ++f) {
    const std::span<const std::byte> contribution =
        me == f ? std::span<const std::byte>(identity) : layout_.stripe(data, me, f);
    reduce_bytes(group, kind_, f, contribution,
                 me == f ? checksum : std::span<std::byte>{});
  }
}

void GroupCodec::rebuild(mpi::Comm& group, int failed, std::span<std::byte> data,
                         std::span<std::byte> checksum) const {
  check_args(group, data.size(), checksum.size());
  const int n = layout_.group_size();
  const int me = group.rank();
  if (failed < 0 || failed >= n) throw std::invalid_argument("GroupCodec::rebuild: bad member");

  // Everything the failed member needs — its n-1 data stripes and its own
  // checksum stripe — is a sum rooted at `failed`, so the whole rebuild is
  // ONE pipelined reduce over n stripe blocks instead of n sequential
  // stripe reduces. Block f (f != failed) combines to the failed member's
  // stripe for family f: checksum_f (-) sum of surviving stripes. Block
  // `failed` recomputes its checksum from the survivors' family-`failed`
  // stripes.
  const std::size_t stripe = layout_.stripe_bytes();
  util::AlignedBytes contrib(stripe * static_cast<std::size_t>(n), std::byte{0});
  for (int f = 0; f < n; ++f) {
    const std::span<std::byte> slot(contrib.data() + static_cast<std::size_t>(f) * stripe,
                                    stripe);
    if (f == failed) {
      if (me != failed) {
        const std::span<const std::byte> mine =
            layout_.stripe(std::span<const std::byte>(data), me, failed);
        std::memcpy(slot.data(), mine.data(), stripe);
      }
      continue;
    }
    if (me == failed) continue;  // identity contribution
    if (me == f) {
      std::memcpy(slot.data(), checksum.data(), stripe);  // family f's checksum holder
    } else {
      const std::span<const std::byte> mine =
          layout_.stripe(std::span<const std::byte>(data), me, f);
      if (kind_ == CodecKind::kXor) {
        std::memcpy(slot.data(), mine.data(), stripe);  // XOR is self-inverse
      } else {
        // SUM: contribute the negated stripe so the reduce yields
        // checksum - sum(survivors) directly.
        retract(kind_, slot, mine);
      }
    }
  }

  util::AlignedBytes rebuilt(me == failed ? contrib.size() : 0);
  reduce_bytes(group, kind_, failed, contrib, rebuilt);
  if (me == failed) {
    for (int f = 0; f < n; ++f) {
      const std::span<const std::byte> slot(
          rebuilt.data() + static_cast<std::size_t>(f) * stripe, stripe);
      const std::span<std::byte> dst =
          f == failed ? checksum : layout_.stripe(data, me, f);
      std::memcpy(dst.data(), slot.data(), stripe);
    }
  }
}

bool GroupCodec::verify(mpi::Comm& group, std::span<const std::byte> data,
                        std::span<const std::byte> checksum) const {
  check_args(group, data.size(), checksum.size());
  util::AlignedBytes recomputed(checksum_bytes());
  encode(group, data, recomputed);
  const std::uint8_t ok =
      equals(kind_, std::span<const std::byte>(recomputed), checksum) ? 1 : 0;
  return group.allreduce_value<std::uint8_t>(ok, mpi::Min{}) == 1;
}

}  // namespace skt::enc
