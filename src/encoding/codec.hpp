// Error-correcting codes for in-memory checkpoints (Section 2.1-2.2).
//
// The paper's encoder is a RAID-5-style single-erasure code whose "+" is
// either bitwise XOR over 64-bit lanes (the default: exact and usually
// faster) or numeric addition over doubles. Both are exposed behind one
// local Codec interface; the distributed wrapper lives in group_codec.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace skt::enc {

enum class CodecKind {
  kXor,  ///< bitwise exclusive-or, MPI_BXOR over MPI_LONG_LONG
  kSum,  ///< numeric addition, MPI_SUM over MPI_DOUBLE
};

[[nodiscard]] constexpr std::string_view to_string(CodecKind kind) {
  return kind == CodecKind::kXor ? "xor" : "sum";
}

/// Alignment contract: every buffer handed to these functions must be a
/// multiple of kLane bytes (the stripe layout pads to this).
inline constexpr std::size_t kLane = 8;

/// acc := acc (+) in, element-wise. Sizes must match and be lane-aligned.
void accumulate(CodecKind kind, std::span<std::byte> acc, std::span<const std::byte> in);

/// acc := acc (-) in. For XOR this equals accumulate (self-inverse); for
/// SUM it subtracts. Used when rebuilding a lost stripe from a checksum.
void retract(CodecKind kind, std::span<std::byte> acc, std::span<const std::byte> in);

/// Fill with the identity element of the code (zero for both kinds).
void fill_identity(std::span<std::byte> buf);

/// Exact equality for XOR; tolerance-based for SUM (|a-b| <= tol * |a|+1).
[[nodiscard]] bool equals(CodecKind kind, std::span<const std::byte> a,
                          std::span<const std::byte> b, double tolerance = 1e-9);

}  // namespace skt::enc
