// Vectorized byte-level kernels with one-time runtime CPU dispatch.
//
// Every hot byte loop in the encoding substrate funnels through here:
// XOR accumulate (the codec's "+"), SUM accumulate/subtract over double
// lanes, XOR delta (diff staging), and the GF(2^8) multiply-accumulate
// behind Reed-Solomon and the dual-parity code. Two tiers exist:
//
//   kScalar — memcpy-chunked uint64 loops and the log/exp-table GF loop.
//             Alignment-agnostic, UBSan-clean, always available.
//   kAvx2   — 32-byte-vector loops; GF(2^8) uses the PSHUFB split-nibble
//             technique (two 16-entry nibble product tables per
//             coefficient, product = lo[b&15] ^ hi[b>>4]) so one ymm op
//             multiplies 32 field elements.
//
// The tier is selected ONCE at first use: compiled-in availability
// (-DSKT_SIMD=OFF strips the AVX2 tier) AND cpuid (util::cpu_has_avx2)
// AND the SKT_KERNELS env override ("scalar" forces the fallback).
// force_tier() lets tests and benches pin a tier to prove byte-identical
// outputs and measure the speedup.
//
// All entry points accept ANY size and ANY alignment — tails and
// misaligned spans are handled internally — so callers need no padding
// contract beyond matching span lengths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace skt::enc::kernels {

enum class Tier {
  kScalar = 0,
  kAvx2 = 1,
};

[[nodiscard]] constexpr std::string_view to_string(Tier t) {
  return t == Tier::kAvx2 ? "avx2" : "scalar";
}

/// True when the AVX2 tier was compiled in (SKT_SIMD=ON on an x86 build).
[[nodiscard]] bool simd_compiled();

/// The tier the kernels below currently run on.
[[nodiscard]] Tier active_tier();

/// Pin the dispatch to `t` (clamped to what is compiled in and supported);
/// returns the previously active tier. Test/bench hook — call from a
/// single thread before spawning workers.
Tier force_tier(Tier t);

/// acc[i] ^= in[i]. Sizes must match.
void xor_acc(std::span<std::byte> acc, std::span<const std::byte> in);

/// out[i] = a[i] ^ b[i]. Sizes must match; `out` may alias `a` or `b`.
void xor_delta(std::span<std::byte> out, std::span<const std::byte> a,
               std::span<const std::byte> b);

/// acc[i] += in[i] over double lanes.
void sum_acc(std::span<double> acc, std::span<const double> in);

/// acc[i] -= in[i] over double lanes.
void sum_sub(std::span<double> acc, std::span<const double> in);

/// out[i] ^= coeff * in[i] in GF(2^8) (AES polynomial 0x11b). coeff==0 is
/// a no-op, coeff==1 degrades to xor_acc.
void gf256_mul_acc(std::span<std::uint8_t> out, std::span<const std::uint8_t> in,
                   std::uint8_t coeff);

}  // namespace skt::enc::kernels
