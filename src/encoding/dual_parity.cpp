#include "encoding/dual_parity.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "encoding/codec.hpp"
#include "encoding/gf256.hpp"
#include "encoding/kernels.hpp"
#include "util/aligned.hpp"

namespace skt::enc {
namespace {

constexpr mpi::Tag kTagRebuiltStripe = 9001;

std::span<std::uint8_t> as_u8(std::span<std::byte> s) {
  return {reinterpret_cast<std::uint8_t*>(s.data()), s.size()};
}
std::span<const std::uint8_t> as_u8(std::span<const std::byte> s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

void xor_reduce(mpi::Comm& group, int root, std::span<const std::byte> in,
                std::span<std::byte> out) {
  const std::span<const std::uint64_t> in64{
      reinterpret_cast<const std::uint64_t*>(in.data()), in.size() / sizeof(std::uint64_t)};
  const std::span<std::uint64_t> out64{reinterpret_cast<std::uint64_t*>(out.data()),
                                       out.size() / sizeof(std::uint64_t)};
  group.reduce<std::uint64_t>(root, in64, out64, mpi::BXor{});
}

}  // namespace

DualParityGroupCodec::DualParityGroupCodec(std::size_t data_bytes, int group_size)
    : data_bytes_(data_bytes), group_size_(group_size), rs_(std::max(group_size - 2, 1), 2) {
  if (group_size < 4) {
    throw std::invalid_argument("DualParityGroupCodec: group size must be >= 4");
  }
  const auto stripes = static_cast<std::size_t>(group_size - 2);
  const std::size_t raw = (data_bytes + stripes - 1) / stripes;
  // Stripes are padded to the cache-line / vector-register width so every
  // GF multiply-accumulate in encode and rebuild starts on an aligned
  // boundary (the wider pad is noise next to the payload).
  stripe_bytes_ = (raw + util::kBufferAlign - 1) / util::kBufferAlign * util::kBufferAlign;
  if (stripe_bytes_ == 0) stripe_bytes_ = util::kBufferAlign;
}

bool DualParityGroupCodec::contributes(int p, int f) const {
  return p != f && p != (f + 1) % group_size_;
}

std::size_t DualParityGroupCodec::stripe_index(int p, int f) const {
  if (!contributes(p, f)) {
    throw std::invalid_argument("DualParityGroupCodec: member holds parity for this family");
  }
  // Member p is excluded from families p (its P) and (p-1+N)%N (its Q).
  const int ex1 = p;
  const int ex2 = (p - 1 + group_size_) % group_size_;
  int idx = f;
  if (ex1 < f) --idx;
  if (ex2 < f && ex2 != ex1) --idx;
  return static_cast<std::size_t>(idx);
}

int DualParityGroupCodec::contributor_index(int p, int f) const {
  if (!contributes(p, f)) {
    throw std::invalid_argument("DualParityGroupCodec: not a contributor");
  }
  const int ex1 = f;
  const int ex2 = (f + 1) % group_size_;
  int idx = p;
  if (ex1 < p) --idx;
  if (ex2 < p && ex2 != ex1) --idx;
  return idx;
}

std::uint8_t DualParityGroupCodec::coefficient(int row, int p, int f) const {
  return rs_.coefficient(row, contributor_index(p, f));
}

void DualParityGroupCodec::check_args(const mpi::Comm& group, std::size_t data_size,
                                      std::size_t parity_size) const {
  if (group.size() != group_size_) {
    throw std::invalid_argument("DualParityGroupCodec: communicator size != group size");
  }
  if (data_size != padded_bytes() || parity_size != parity_bytes()) {
    throw std::invalid_argument("DualParityGroupCodec: bad buffer sizes");
  }
}

void DualParityGroupCodec::reduce_family(mpi::Comm& group, int f, int row,
                                         std::span<const std::byte> data,
                                         const std::vector<int>& skip, int root,
                                         std::span<std::byte> out) const {
  const int me = group.rank();
  util::AlignedBytes scratch(stripe_bytes_, std::byte{0});
  if (contributes(me, f) && std::find(skip.begin(), skip.end(), me) == skip.end()) {
    const std::span<const std::byte> mine =
        data.subspan(stripe_index(me, f) * stripe_bytes_, stripe_bytes_);
    gf256::mul_acc(as_u8(std::span<std::byte>(scratch)), as_u8(mine),
                   coefficient(row, me, f));
  }
  xor_reduce(group, root, scratch, out);
}

void DualParityGroupCodec::encode(mpi::Comm& group, std::span<const std::byte> data,
                                  std::span<std::byte> parity) const {
  check_args(group, data.size(), parity.size());
  const int me = group.rank();
  const int n = group_size_;
  // One reduce-scatter per parity row instead of one reduce per (family,
  // row). The scatter delivers block b to rank b, so row P maps family f to
  // block f (owner f) and row Q maps family f to block (f+1)%n (owner
  // (f+1)%n). Each member pre-multiplies its stripes by the row
  // coefficients into a scratch contribution buffer; XOR over GF(2^8)
  // products is exactly the Reed-Solomon sum.
  util::AlignedBytes scratch(static_cast<std::size_t>(n) * stripe_bytes_);
  std::vector<std::span<const std::uint64_t>> blocks(static_cast<std::size_t>(n));
  const auto block_of = [&](int b) {
    return std::span<std::byte>(scratch.data() + static_cast<std::size_t>(b) * stripe_bytes_,
                                stripe_bytes_);
  };
  for (int row = 0; row < 2; ++row) {
    std::memset(scratch.data(), 0, scratch.size());
    for (int f = 0; f < n; ++f) {
      const int b = row == 0 ? f : (f + 1) % n;
      if (contributes(me, f)) {
        const std::span<const std::byte> mine =
            data.subspan(stripe_index(me, f) * stripe_bytes_, stripe_bytes_);
        gf256::mul_acc(as_u8(block_of(b)), as_u8(mine), coefficient(row, me, f));
      }
      blocks[static_cast<std::size_t>(b)] = {
          reinterpret_cast<const std::uint64_t*>(block_of(b).data()),
          stripe_bytes_ / sizeof(std::uint64_t)};
    }
    const std::span<std::byte> out =
        parity.subspan(row == 0 ? 0 : stripe_bytes_, stripe_bytes_);
    group.reduce_scatter_blocks<std::uint64_t, mpi::BXor>(
        blocks,
        {reinterpret_cast<std::uint64_t*>(out.data()), stripe_bytes_ / sizeof(std::uint64_t)},
        mpi::BXor{});
  }
}

void DualParityGroupCodec::encode_delta(mpi::Comm& group, std::span<const std::byte> base,
                                        std::span<const std::byte> next,
                                        std::span<const std::byte> old_parity,
                                        std::span<std::byte> parity,
                                        std::span<const std::uint8_t> dirty) const {
  check_args(group, next.size(), parity.size());
  if (base.size() != next.size() || old_parity.size() != parity.size()) {
    throw std::invalid_argument("DualParityGroupCodec::encode_delta: buffer size mismatch");
  }
  const int n = group_size_;
  const int me = group.rank();
  if (dirty.size() != static_cast<std::size_t>(n - 2)) {
    throw std::invalid_argument(
        "DualParityGroupCodec::encode_delta: dirty flags must cover all stripes");
  }

  std::vector<std::uint8_t> family_dirty(static_cast<std::size_t>(n), 0);
  for (int f = 0; f < n; ++f) {
    if (contributes(me, f)) family_dirty[static_cast<std::size_t>(f)] = dirty[stripe_index(me, f)];
  }
  std::vector<std::uint8_t> global_dirty(static_cast<std::size_t>(n));
  group.allreduce<std::uint8_t>(family_dirty, global_dirty, mpi::Max{});
  int dirty_families = 0;
  for (std::uint8_t d : global_dirty) dirty_families += d;
  if (2 * dirty_families >= n) {
    encode(group, next, parity);
    return;
  }

  if (parity.data() != old_parity.data()) {
    std::memcpy(parity.data(), old_parity.data(), parity.size());
  }
  util::AlignedBytes diff(stripe_bytes_);
  util::AlignedBytes scratch(stripe_bytes_);
  util::AlignedBytes reduced(stripe_bytes_);
  for (int f = 0; f < n; ++f) {
    if (!global_dirty[static_cast<std::size_t>(f)]) continue;
    const bool mine_dirty = contributes(me, f) && dirty[stripe_index(me, f)] != 0;
    if (mine_dirty) {
      kernels::xor_delta(diff, base.subspan(stripe_index(me, f) * stripe_bytes_, stripe_bytes_),
                         next.subspan(stripe_index(me, f) * stripe_bytes_, stripe_bytes_));
    }
    for (int row = 0; row < 2; ++row) {
      const int owner = row == 0 ? f : (f + 1) % n;
      std::memset(scratch.data(), 0, stripe_bytes_);
      if (mine_dirty) {
        kernels::gf256_mul_acc(as_u8(std::span<std::byte>(scratch)),
                               as_u8(std::span<const std::byte>(diff)),
                               coefficient(row, me, f));
      }
      xor_reduce(group, owner, scratch,
                 me == owner ? std::span<std::byte>(reduced) : std::span<std::byte>{});
      if (me == owner) {
        kernels::xor_acc(parity.subspan(row == 0 ? 0 : stripe_bytes_, stripe_bytes_), reduced);
      }
    }
  }
}

void DualParityGroupCodec::rebuild(mpi::Comm& group, std::span<const int> failed,
                                   std::span<std::byte> data,
                                   std::span<std::byte> parity) const {
  check_args(group, data.size(), parity.size());
  if (failed.empty()) return;
  if (failed.size() > 2) {
    throw std::invalid_argument("DualParityGroupCodec: at most two failures recoverable");
  }
  std::vector<int> lost(failed.begin(), failed.end());
  std::sort(lost.begin(), lost.end());
  lost.erase(std::unique(lost.begin(), lost.end()), lost.end());
  for (int m : lost) {
    if (m < 0 || m >= group_size_) {
      throw std::invalid_argument("DualParityGroupCodec: bad member index");
    }
  }

  const int me = group.rank();
  // Syndrome reduces use the parity owners' stored stripes as additional
  // contributions: P xor sum(surviving c0*D) = sum(lost c0*D), etc.
  const auto reduce_syndrome = [&](int f, int row, int root, std::span<std::byte> out) {
    const int owner = row == 0 ? f : (f + 1) % group_size_;
    util::AlignedBytes scratch(stripe_bytes_, std::byte{0});
    if (contributes(me, f) &&
        std::find(lost.begin(), lost.end(), me) == lost.end()) {
      const std::span<const std::byte> mine =
          data.subspan(stripe_index(me, f) * stripe_bytes_, stripe_bytes_);
      gf256::mul_acc(as_u8(std::span<std::byte>(scratch)), as_u8(mine),
                     coefficient(row, me, f));
    } else if (me == owner) {
      const std::size_t slot = row == 0 ? 0 : stripe_bytes_;
      std::memcpy(scratch.data(), parity.data() + slot, stripe_bytes_);
    }
    xor_reduce(group, root, scratch, out);
  };

  for (int f = 0; f < group_size_; ++f) {
    const int p_owner = f;
    const int q_owner = (f + 1) % group_size_;
    const bool lost_p = std::find(lost.begin(), lost.end(), p_owner) != lost.end();
    const bool lost_q = std::find(lost.begin(), lost.end(), q_owner) != lost.end();
    std::vector<int> lost_data;
    for (int m : lost) {
      if (contributes(m, f)) lost_data.push_back(m);
    }

    // Phase A: reconstruct lost data stripes of this family.
    if (lost_data.size() == 1) {
      const int x = lost_data.front();
      // Prefer P unless its owner died with us; exactly one of P/Q can be
      // lost here (the second failure is x itself).
      const int row = lost_p ? 1 : 0;
      std::vector<std::byte> syndrome(me == x ? stripe_bytes_ : 0);
      reduce_syndrome(f, row, x, syndrome);
      if (me == x) {
        // syndrome = c_x * D_x  ->  D_x = syndrome / c_x
        const std::span<std::byte> slot =
            data.subspan(stripe_index(x, f) * stripe_bytes_, stripe_bytes_);
        std::memset(slot.data(), 0, stripe_bytes_);
        gf256::mul_acc(as_u8(slot), as_u8(std::span<const std::byte>(syndrome)),
                       gf256::inv(coefficient(row, x, f)));
      }
    } else if (lost_data.size() == 2) {
      // Both failures are contributors, so both parities survive.
      const int x = lost_data[0];
      const int y = lost_data[1];
      std::vector<std::byte> s1(me == x ? stripe_bytes_ : 0);
      std::vector<std::byte> s2(me == x ? stripe_bytes_ : 0);
      reduce_syndrome(f, 0, x, s1);
      reduce_syndrome(f, 1, x, s2);
      if (me == x) {
        // Solve  c0x Dx ^ c0y Dy = S1 ;  c1x Dx ^ c1y Dy = S2.
        const std::uint8_t c0x = coefficient(0, x, f);
        const std::uint8_t c0y = coefficient(0, y, f);
        const std::uint8_t c1x = coefficient(1, x, f);
        const std::uint8_t c1y = coefficient(1, y, f);
        const std::uint8_t det = gf256::mul(c0x, c1y) ^ gf256::mul(c0y, c1x);
        const std::uint8_t inv_det = gf256::inv(det);  // Cauchy => det != 0
        const std::span<std::byte> slot_x =
            data.subspan(stripe_index(x, f) * stripe_bytes_, stripe_bytes_);
        std::memset(slot_x.data(), 0, stripe_bytes_);
        gf256::mul_acc(as_u8(slot_x), as_u8(std::span<const std::byte>(s1)),
                       gf256::mul(c1y, inv_det));
        gf256::mul_acc(as_u8(slot_x), as_u8(std::span<const std::byte>(s2)),
                       gf256::mul(c0y, inv_det));
        // Dy = (S1 ^ c0x Dx) / c0y
        std::vector<std::byte> dy(stripe_bytes_, std::byte{0});
        gf256::mul_acc(as_u8(std::span<std::byte>(dy)),
                       as_u8(std::span<const std::byte>(s1)), gf256::inv(c0y));
        gf256::mul_acc(as_u8(std::span<std::byte>(dy)),
                       as_u8(std::span<const std::byte>(slot_x)),
                       gf256::mul(c0x, gf256::inv(c0y)));
        group.send<std::byte>(y, kTagRebuiltStripe, dy);
      }
      if (me == y) {
        const std::span<std::byte> slot_y =
            data.subspan(stripe_index(y, f) * stripe_bytes_, stripe_bytes_);
        group.recv<std::byte>(x, kTagRebuiltStripe, slot_y);
      }
    }

    // Phase B: recompute any lost parity stripes from the (now complete)
    // data contributors.
    if (lost_p) {
      reduce_family(group, f, 0, data, {}, p_owner,
                    me == p_owner ? parity.subspan(0, stripe_bytes_)
                                  : std::span<std::byte>{});
    }
    if (lost_q) {
      reduce_family(group, f, 1, data, {}, q_owner,
                    me == q_owner ? parity.subspan(stripe_bytes_, stripe_bytes_)
                                  : std::span<std::byte>{});
    }
  }
}

bool DualParityGroupCodec::verify(mpi::Comm& group, std::span<const std::byte> data,
                                  std::span<const std::byte> parity) const {
  check_args(group, data.size(), parity.size());
  util::AlignedBytes recomputed(parity_bytes());
  // encode() writes only this member's slots; compare locally afterwards.
  encode(group, data, recomputed);
  const std::uint8_t ok =
      std::memcmp(recomputed.data(), parity.data(), parity_bytes()) == 0 ? 1 : 0;
  return group.allreduce_value<std::uint8_t>(ok, mpi::Min{}) == 1;
}

}  // namespace skt::enc
