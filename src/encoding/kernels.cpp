#include "encoding/kernels.hpp"

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>

#include "encoding/gf256.hpp"
#include "util/cpu.hpp"

#if defined(SKT_SIMD_ENABLED) && defined(__x86_64__)
#define SKT_KERNELS_HAVE_AVX2 1
#include <immintrin.h>
#else
#define SKT_KERNELS_HAVE_AVX2 0
#endif

namespace skt::enc::kernels {
namespace {

// ------------------------------------------------------- scalar tier ---
// memcpy-chunked uint64 loops: a single mov per 8 bytes regardless of
// span alignment, and UBSan-clean on the odd-offset spans the dirty-stripe
// paths produce.

void xor_acc_scalar(std::byte* acc, const std::byte* in, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, acc + i, 8);
    std::memcpy(&b, in + i, 8);
    a ^= b;
    std::memcpy(acc + i, &a, 8);
  }
  for (; i < n; ++i) acc[i] ^= in[i];
}

void xor_delta_scalar(std::byte* out, const std::byte* a, const std::byte* b,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t x = 0;
    std::uint64_t y = 0;
    std::memcpy(&x, a + i, 8);
    std::memcpy(&y, b + i, 8);
    x ^= y;
    std::memcpy(out + i, &x, 8);
  }
  for (; i < n; ++i) out[i] = a[i] ^ b[i];
}

void sum_acc_scalar(double* acc, const double* in, std::size_t n) {
  constexpr std::size_t kBlock = 32;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) acc[i + j] += in[i + j];
  }
  for (; i < n; ++i) acc[i] += in[i];
}

void sum_sub_scalar(double* acc, const double* in, std::size_t n) {
  constexpr std::size_t kBlock = 32;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) acc[i + j] -= in[i + j];
  }
  for (; i < n; ++i) acc[i] -= in[i];
}

void gf_mul_acc_scalar(std::uint8_t* out, const std::uint8_t* in, std::size_t n,
                       std::uint8_t coeff) {
  const gf256::detail::Tables& t = gf256::detail::tables();
  const std::uint8_t lc = t.log[coeff];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t v = in[i];
    if (v != 0) out[i] ^= t.exp[static_cast<std::size_t>(t.log[v]) + lc];
  }
}

// --------------------------------------------------------- AVX2 tier ---
#if SKT_KERNELS_HAVE_AVX2

__attribute__((target("avx2"))) void xor_acc_avx2(std::byte* acc, const std::byte* in,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    for (std::size_t j = 0; j < 128; j += 32) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + j));
      const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i + j));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i + j),
                          _mm256_xor_si256(a, b));
    }
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), _mm256_xor_si256(a, b));
  }
  xor_acc_scalar(acc + i, in + i, n - i);
}

__attribute__((target("avx2"))) void xor_delta_avx2(std::byte* out, const std::byte* a,
                                                    const std::byte* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_xor_si256(x, y));
  }
  xor_delta_scalar(out + i, a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void sum_acc_avx2(double* acc, const double* in,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a0 = _mm256_loadu_pd(acc + i);
    const __m256d a1 = _mm256_loadu_pd(acc + i + 4);
    const __m256d b0 = _mm256_loadu_pd(in + i);
    const __m256d b1 = _mm256_loadu_pd(in + i + 4);
    _mm256_storeu_pd(acc + i, _mm256_add_pd(a0, b0));
    _mm256_storeu_pd(acc + i + 4, _mm256_add_pd(a1, b1));
  }
  for (; i < n; ++i) acc[i] += in[i];
}

__attribute__((target("avx2"))) void sum_sub_avx2(double* acc, const double* in,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a0 = _mm256_loadu_pd(acc + i);
    const __m256d a1 = _mm256_loadu_pd(acc + i + 4);
    const __m256d b0 = _mm256_loadu_pd(in + i);
    const __m256d b1 = _mm256_loadu_pd(in + i + 4);
    _mm256_storeu_pd(acc + i, _mm256_sub_pd(a0, b0));
    _mm256_storeu_pd(acc + i + 4, _mm256_sub_pd(a1, b1));
  }
  for (; i < n; ++i) acc[i] -= in[i];
}

/// PSHUFB split-nibble GF(2^8) multiply: for coefficient c, build the two
/// 16-entry product tables lo[x] = c*x and hi[x] = c*(x<<4); then
/// c*b = lo[b & 15] ^ hi[b >> 4] because multiplication distributes over
/// the nibble split b = (b & 15) ^ (b & 0xf0). One VPSHUFB pair multiplies
/// 32 field elements.
__attribute__((target("avx2"))) void gf_mul_acc_avx2(std::uint8_t* out,
                                                     const std::uint8_t* in, std::size_t n,
                                                     std::uint8_t coeff) {
  alignas(16) std::uint8_t lo[16];
  alignas(16) std::uint8_t hi[16];
  for (int x = 0; x < 16; ++x) {
    lo[x] = gf256::mul(coeff, static_cast<std::uint8_t>(x));
    hi[x] = gf256::mul(coeff, static_cast<std::uint8_t>(x << 4));
  }
  const __m256i vlo =
      _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(lo)));
  const __m256i vhi =
      _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(hi)));
  const __m256i nib = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i l = _mm256_and_si256(v, nib);
    const __m256i h = _mm256_and_si256(_mm256_srli_epi64(v, 4), nib);
    const __m256i p =
        _mm256_xor_si256(_mm256_shuffle_epi8(vlo, l), _mm256_shuffle_epi8(vhi, h));
    const __m256i o = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_xor_si256(o, p));
  }
  for (; i < n; ++i) {
    out[i] ^= static_cast<std::uint8_t>(lo[in[i] & 0x0f] ^ hi[in[i] >> 4]);
  }
}

#endif  // SKT_KERNELS_HAVE_AVX2

// ----------------------------------------------------------- dispatch ---

struct Dispatch {
  Tier tier;
  void (*xor_acc)(std::byte*, const std::byte*, std::size_t);
  void (*xor_delta)(std::byte*, const std::byte*, const std::byte*, std::size_t);
  void (*sum_acc)(double*, const double*, std::size_t);
  void (*sum_sub)(double*, const double*, std::size_t);
  void (*gf_mul_acc)(std::uint8_t*, const std::uint8_t*, std::size_t, std::uint8_t);
};

constexpr Dispatch kScalar{Tier::kScalar,    xor_acc_scalar, xor_delta_scalar,
                           sum_acc_scalar,   sum_sub_scalar, gf_mul_acc_scalar};
#if SKT_KERNELS_HAVE_AVX2
constexpr Dispatch kAvx2{Tier::kAvx2,    xor_acc_avx2, xor_delta_avx2,
                         sum_acc_avx2,   sum_sub_avx2, gf_mul_acc_avx2};
#endif

const Dispatch* pick(Tier t) {
#if SKT_KERNELS_HAVE_AVX2
  if (t == Tier::kAvx2 && util::cpu_has_avx2()) return &kAvx2;
#else
  (void)t;
#endif
  return &kScalar;
}

Tier startup_tier() {
  if (util::kernel_override() == "scalar") return Tier::kScalar;
  return Tier::kAvx2;  // pick() clamps to what exists
}

std::atomic<const Dispatch*> g_dispatch{nullptr};

const Dispatch& dispatch() {
  const Dispatch* d = g_dispatch.load(std::memory_order_acquire);
  if (d == nullptr) {
    d = pick(startup_tier());
    g_dispatch.store(d, std::memory_order_release);
  }
  return *d;
}

void check_sizes(std::size_t a, std::size_t b, const char* what) {
  if (a != b) throw std::invalid_argument(std::string(what) + ": size mismatch");
}

}  // namespace

bool simd_compiled() { return SKT_KERNELS_HAVE_AVX2 != 0; }

Tier active_tier() { return dispatch().tier; }

Tier force_tier(Tier t) {
  const Tier prev = dispatch().tier;
  g_dispatch.store(pick(t), std::memory_order_release);
  return prev;
}

void xor_acc(std::span<std::byte> acc, std::span<const std::byte> in) {
  check_sizes(acc.size(), in.size(), "kernels::xor_acc");
  dispatch().xor_acc(acc.data(), in.data(), acc.size());
}

void xor_delta(std::span<std::byte> out, std::span<const std::byte> a,
               std::span<const std::byte> b) {
  check_sizes(out.size(), a.size(), "kernels::xor_delta");
  check_sizes(a.size(), b.size(), "kernels::xor_delta");
  dispatch().xor_delta(out.data(), a.data(), b.data(), out.size());
}

void sum_acc(std::span<double> acc, std::span<const double> in) {
  check_sizes(acc.size(), in.size(), "kernels::sum_acc");
  dispatch().sum_acc(acc.data(), in.data(), acc.size());
}

void sum_sub(std::span<double> acc, std::span<const double> in) {
  check_sizes(acc.size(), in.size(), "kernels::sum_sub");
  dispatch().sum_sub(acc.data(), in.data(), acc.size());
}

void gf256_mul_acc(std::span<std::uint8_t> out, std::span<const std::uint8_t> in,
                   std::uint8_t coeff) {
  check_sizes(out.size(), in.size(), "kernels::gf256_mul_acc");
  if (coeff == 0) return;
  if (coeff == 1) {
    dispatch().xor_acc(reinterpret_cast<std::byte*>(out.data()),
                       reinterpret_cast<const std::byte*>(in.data()), out.size());
    return;
  }
  dispatch().gf_mul_acc(out.data(), in.data(), out.size(), coeff);
}

}  // namespace skt::enc::kernels
