#include "encoding/codec.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "encoding/kernels.hpp"

namespace skt::enc {
namespace {

void check_pair(std::span<const std::byte> a, std::span<const std::byte> b) {
  if (a.size() != b.size()) throw std::invalid_argument("codec: size mismatch");
  if (a.size() % kLane != 0) throw std::invalid_argument("codec: buffers must be lane-aligned");
}

std::span<double> as_doubles(std::span<std::byte> b) {
  return {reinterpret_cast<double*>(b.data()), b.size() / sizeof(double)};
}
std::span<const double> as_doubles(std::span<const std::byte> b) {
  return {reinterpret_cast<const double*>(b.data()), b.size() / sizeof(double)};
}

}  // namespace

void accumulate(CodecKind kind, std::span<std::byte> acc, std::span<const std::byte> in) {
  check_pair(acc, in);
  if (kind == CodecKind::kXor) {
    kernels::xor_acc(acc, in);
  } else {
    kernels::sum_acc(as_doubles(acc), as_doubles(in));
  }
}

void retract(CodecKind kind, std::span<std::byte> acc, std::span<const std::byte> in) {
  check_pair(acc, in);
  if (kind == CodecKind::kXor) {
    kernels::xor_acc(acc, in);
  } else {
    kernels::sum_sub(as_doubles(acc), as_doubles(in));
  }
}

void fill_identity(std::span<std::byte> buf) {
  std::memset(buf.data(), 0, buf.size());
}

bool equals(CodecKind kind, std::span<const std::byte> a, std::span<const std::byte> b,
            double tolerance) {
  check_pair(a, b);
  if (kind == CodecKind::kXor) {
    return std::memcmp(a.data(), b.data(), a.size()) == 0;
  }
  const double* x = reinterpret_cast<const double*>(a.data());
  const double* y = reinterpret_cast<const double*>(b.data());
  const std::size_t n = a.size() / sizeof(double);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(x[i] - y[i]) > tolerance * (std::abs(x[i]) + 1.0)) return false;
  }
  return true;
}

}  // namespace skt::enc
