#include "encoding/codec.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace skt::enc {
namespace {

void check_pair(std::span<const std::byte> a, std::span<const std::byte> b) {
  if (a.size() != b.size()) throw std::invalid_argument("codec: size mismatch");
  if (a.size() % kLane != 0) throw std::invalid_argument("codec: buffers must be lane-aligned");
}

template <typename T, typename F>
void apply_lanes(std::span<std::byte> acc, std::span<const std::byte> in, F combine) {
  const std::size_t n = acc.size() / sizeof(T);
  for (std::size_t i = 0; i < n; ++i) {
    T a;
    T b;
    std::memcpy(&a, acc.data() + i * sizeof(T), sizeof(T));
    std::memcpy(&b, in.data() + i * sizeof(T), sizeof(T));
    a = combine(a, b);
    std::memcpy(acc.data() + i * sizeof(T), &a, sizeof(T));
  }
}

}  // namespace

void accumulate(CodecKind kind, std::span<std::byte> acc, std::span<const std::byte> in) {
  check_pair(acc, in);
  if (kind == CodecKind::kXor) {
    apply_lanes<std::uint64_t>(acc, in, [](std::uint64_t a, std::uint64_t b) { return a ^ b; });
  } else {
    apply_lanes<double>(acc, in, [](double a, double b) { return a + b; });
  }
}

void retract(CodecKind kind, std::span<std::byte> acc, std::span<const std::byte> in) {
  check_pair(acc, in);
  if (kind == CodecKind::kXor) {
    apply_lanes<std::uint64_t>(acc, in, [](std::uint64_t a, std::uint64_t b) { return a ^ b; });
  } else {
    apply_lanes<double>(acc, in, [](double a, double b) { return a - b; });
  }
}

void fill_identity(std::span<std::byte> buf) {
  std::memset(buf.data(), 0, buf.size());
}

bool equals(CodecKind kind, std::span<const std::byte> a, std::span<const std::byte> b,
            double tolerance) {
  check_pair({const_cast<std::byte*>(a.data()), a.size()}, b);
  if (kind == CodecKind::kXor) {
    return std::memcmp(a.data(), b.data(), a.size()) == 0;
  }
  const std::size_t n = a.size() / sizeof(double);
  for (std::size_t i = 0; i < n; ++i) {
    double x;
    double y;
    std::memcpy(&x, a.data() + i * sizeof(double), sizeof(double));
    std::memcpy(&y, b.data() + i * sizeof(double), sizeof(double));
    if (std::abs(x - y) > tolerance * (std::abs(x) + 1.0)) return false;
  }
  return true;
}

}  // namespace skt::enc
