#include "encoding/codec.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace skt::enc {
namespace {

void check_pair(std::span<const std::byte> a, std::span<const std::byte> b) {
  if (a.size() != b.size()) throw std::invalid_argument("codec: size mismatch");
  if (a.size() % kLane != 0) throw std::invalid_argument("codec: buffers must be lane-aligned");
}

/// Block-processed combine over contiguous T lanes. The kLane alignment
/// contract makes the reinterpretation size-exact and 8-byte aligned; the
/// fixed 32-lane inner block is a countable loop the compiler turns into
/// packed XOR / addpd, so the codec runs at memcpy speed instead of one
/// load/store pair per lane.
template <typename T, typename F>
void apply_lanes(std::span<std::byte> acc, std::span<const std::byte> in, F combine) {
  T* a = reinterpret_cast<T*>(acc.data());
  const T* b = reinterpret_cast<const T*>(in.data());
  const std::size_t n = acc.size() / sizeof(T);
  constexpr std::size_t kBlock = 32;
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    for (std::size_t j = 0; j < kBlock; ++j) a[i + j] = combine(a[i + j], b[i + j]);
  }
  for (; i < n; ++i) a[i] = combine(a[i], b[i]);
}

}  // namespace

void accumulate(CodecKind kind, std::span<std::byte> acc, std::span<const std::byte> in) {
  check_pair(acc, in);
  if (kind == CodecKind::kXor) {
    apply_lanes<std::uint64_t>(acc, in, [](std::uint64_t a, std::uint64_t b) { return a ^ b; });
  } else {
    apply_lanes<double>(acc, in, [](double a, double b) { return a + b; });
  }
}

void retract(CodecKind kind, std::span<std::byte> acc, std::span<const std::byte> in) {
  check_pair(acc, in);
  if (kind == CodecKind::kXor) {
    apply_lanes<std::uint64_t>(acc, in, [](std::uint64_t a, std::uint64_t b) { return a ^ b; });
  } else {
    apply_lanes<double>(acc, in, [](double a, double b) { return a - b; });
  }
}

void fill_identity(std::span<std::byte> buf) {
  std::memset(buf.data(), 0, buf.size());
}

bool equals(CodecKind kind, std::span<const std::byte> a, std::span<const std::byte> b,
            double tolerance) {
  check_pair(a, b);
  if (kind == CodecKind::kXor) {
    return std::memcmp(a.data(), b.data(), a.size()) == 0;
  }
  const double* x = reinterpret_cast<const double*>(a.data());
  const double* y = reinterpret_cast<const double*>(b.data());
  const std::size_t n = a.size() / sizeof(double);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(x[i] - y[i]) > tolerance * (std::abs(x[i]) + 1.0)) return false;
  }
  return true;
}

}  // namespace skt::enc
