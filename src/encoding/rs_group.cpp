#include "encoding/rs_group.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "encoding/gf256.hpp"
#include "encoding/kernels.hpp"
#include "util/aligned.hpp"

namespace skt::enc {
namespace {

constexpr mpi::Tag kTagRebuiltStripe = 9002;

std::span<std::uint8_t> as_u8(std::span<std::byte> s) {
  return {reinterpret_cast<std::uint8_t*>(s.data()), s.size()};
}
std::span<const std::uint8_t> as_u8(std::span<const std::byte> s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

void xor_reduce(mpi::Comm& group, int root, std::span<const std::byte> in,
                std::span<std::byte> out) {
  const std::span<const std::uint64_t> in64{
      reinterpret_cast<const std::uint64_t*>(in.data()), in.size() / sizeof(std::uint64_t)};
  const std::span<std::uint64_t> out64{reinterpret_cast<std::uint64_t*>(out.data()),
                                       out.size() / sizeof(std::uint64_t)};
  group.reduce<std::uint64_t>(root, in64, out64, mpi::BXor{});
}

/// In-place Gauss-Jordan inverse of an n x n GF(2^8) matrix. Singular
/// input throws — the callers only ever pass square submatrices of a
/// Cauchy generator, which are invertible by construction.
std::vector<std::uint8_t> gf_invert(std::vector<std::uint8_t> work, std::size_t n) {
  std::vector<std::uint8_t> inv(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) inv[i * n + i] = 1;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && work[pivot * n + col] == 0) ++pivot;
    if (pivot == n) throw std::logic_error("RSGroupCodec: singular rebuild system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work[pivot * n + c], work[col * n + c]);
        std::swap(inv[pivot * n + c], inv[col * n + c]);
      }
    }
    const std::uint8_t piv_inv = gf256::inv(work[col * n + col]);
    for (std::size_t c = 0; c < n; ++c) {
      work[col * n + c] = gf256::mul(work[col * n + c], piv_inv);
      inv[col * n + c] = gf256::mul(inv[col * n + c], piv_inv);
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work[r * n + col];
      if (factor == 0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work[r * n + c] ^= gf256::mul(factor, work[col * n + c]);
        inv[r * n + c] ^= gf256::mul(factor, inv[col * n + c]);
      }
    }
  }
  return inv;
}

}  // namespace

RSGroupCodec::RSGroupCodec(std::size_t data_bytes, int group_size, int parity_count)
    : data_bytes_(data_bytes),
      group_size_(group_size),
      parity_count_(parity_count),
      rs_(std::max(group_size - parity_count, 1), std::max(parity_count, 1)) {
  if (parity_count < 1) {
    throw std::invalid_argument("RSGroupCodec: parity_count must be >= 1");
  }
  if (group_size < parity_count + 2) {
    throw std::invalid_argument("RSGroupCodec: group size must be >= parity_count + 2");
  }
  const auto stripes = static_cast<std::size_t>(group_size - parity_count);
  const std::size_t raw = (data_bytes + stripes - 1) / stripes;
  // Same padding rule as the dual-parity codec: stripes start on the
  // cache-line / vector-register boundary so every GF multiply-accumulate
  // runs aligned.
  stripe_bytes_ = (raw + util::kBufferAlign - 1) / util::kBufferAlign * util::kBufferAlign;
  if (stripe_bytes_ == 0) stripe_bytes_ = util::kBufferAlign;
}

bool RSGroupCodec::contributes(int p, int f) const {
  for (int j = 0; j < parity_count_; ++j) {
    if (p == (f + j) % group_size_) return false;
  }
  return true;
}

std::size_t RSGroupCodec::stripe_index(int p, int f) const {
  if (!contributes(p, f)) {
    throw std::invalid_argument("RSGroupCodec: member holds parity for this family");
  }
  // Member p is excluded from the m families whose parity rows it owns:
  // (p - j + N) % N for j < m.
  int idx = f;
  for (int j = 0; j < parity_count_; ++j) {
    const int ex = (p - j + group_size_) % group_size_;
    if (ex < f) --idx;
  }
  return static_cast<std::size_t>(idx);
}

int RSGroupCodec::contributor_index(int p, int f) const {
  if (!contributes(p, f)) {
    throw std::invalid_argument("RSGroupCodec: not a contributor");
  }
  int idx = p;
  for (int j = 0; j < parity_count_; ++j) {
    const int ex = (f + j) % group_size_;
    if (ex < p) --idx;
  }
  return idx;
}

std::uint8_t RSGroupCodec::coefficient(int row, int p, int f) const {
  return rs_.coefficient(row, contributor_index(p, f));
}

void RSGroupCodec::check_args(const mpi::Comm& group, std::size_t data_size,
                              std::size_t parity_size) const {
  if (group.size() != group_size_) {
    throw std::invalid_argument("RSGroupCodec: communicator size != group size");
  }
  if (data_size != padded_bytes() || parity_size != parity_bytes()) {
    throw std::invalid_argument("RSGroupCodec: bad buffer sizes");
  }
}

void RSGroupCodec::reduce_family(mpi::Comm& group, int f, int row,
                                 std::span<const std::byte> data,
                                 const std::vector<int>& skip, int root,
                                 std::span<std::byte> out) const {
  const int me = group.rank();
  util::AlignedBytes scratch(stripe_bytes_, std::byte{0});
  if (contributes(me, f) && std::find(skip.begin(), skip.end(), me) == skip.end()) {
    const std::span<const std::byte> mine =
        data.subspan(stripe_index(me, f) * stripe_bytes_, stripe_bytes_);
    gf256::mul_acc(as_u8(std::span<std::byte>(scratch)), as_u8(mine),
                   coefficient(row, me, f));
  }
  xor_reduce(group, root, scratch, out);
}

void RSGroupCodec::encode(mpi::Comm& group, std::span<const std::byte> data,
                          std::span<std::byte> parity) const {
  check_args(group, data.size(), parity.size());
  const int me = group.rank();
  const int n = group_size_;
  // One reduce-scatter per parity row instead of one reduce per (family,
  // row). The scatter delivers block b to rank b; row j maps family f to
  // block (f + j) % n — exactly the member holding that parity slot. Each
  // member pre-multiplies its stripes by the row coefficients into a
  // scratch contribution buffer; XOR over GF(2^8) products is exactly the
  // Reed-Solomon sum.
  util::AlignedBytes scratch(static_cast<std::size_t>(n) * stripe_bytes_);
  std::vector<std::span<const std::uint64_t>> blocks(static_cast<std::size_t>(n));
  const auto block_of = [&](int b) {
    return std::span<std::byte>(scratch.data() + static_cast<std::size_t>(b) * stripe_bytes_,
                                stripe_bytes_);
  };
  for (int row = 0; row < parity_count_; ++row) {
    std::memset(scratch.data(), 0, scratch.size());
    for (int f = 0; f < n; ++f) {
      const int b = (f + row) % n;
      if (contributes(me, f)) {
        const std::span<const std::byte> mine =
            data.subspan(stripe_index(me, f) * stripe_bytes_, stripe_bytes_);
        gf256::mul_acc(as_u8(block_of(b)), as_u8(mine), coefficient(row, me, f));
      }
      blocks[static_cast<std::size_t>(b)] = {
          reinterpret_cast<const std::uint64_t*>(block_of(b).data()),
          stripe_bytes_ / sizeof(std::uint64_t)};
    }
    const std::span<std::byte> out =
        parity.subspan(static_cast<std::size_t>(row) * stripe_bytes_, stripe_bytes_);
    group.reduce_scatter_blocks<std::uint64_t, mpi::BXor>(
        blocks,
        {reinterpret_cast<std::uint64_t*>(out.data()), stripe_bytes_ / sizeof(std::uint64_t)},
        mpi::BXor{});
  }
}

void RSGroupCodec::encode_delta(mpi::Comm& group, std::span<const std::byte> base,
                                std::span<const std::byte> next,
                                std::span<const std::byte> old_parity,
                                std::span<std::byte> parity,
                                std::span<const std::uint8_t> dirty) const {
  check_args(group, next.size(), parity.size());
  if (base.size() != next.size() || old_parity.size() != parity.size()) {
    throw std::invalid_argument("RSGroupCodec::encode_delta: buffer size mismatch");
  }
  const int n = group_size_;
  const int me = group.rank();
  if (dirty.size() != static_cast<std::size_t>(n - parity_count_)) {
    throw std::invalid_argument(
        "RSGroupCodec::encode_delta: dirty flags must cover all stripes");
  }

  std::vector<std::uint8_t> family_dirty(static_cast<std::size_t>(n), 0);
  for (int f = 0; f < n; ++f) {
    if (contributes(me, f)) family_dirty[static_cast<std::size_t>(f)] = dirty[stripe_index(me, f)];
  }
  std::vector<std::uint8_t> global_dirty(static_cast<std::size_t>(n));
  group.allreduce<std::uint8_t>(family_dirty, global_dirty, mpi::Max{});
  int dirty_families = 0;
  for (std::uint8_t d : global_dirty) dirty_families += d;
  if (2 * dirty_families >= n) {
    encode(group, next, parity);
    return;
  }

  if (parity.data() != old_parity.data()) {
    std::memcpy(parity.data(), old_parity.data(), parity.size());
  }
  util::AlignedBytes diff(stripe_bytes_);
  util::AlignedBytes scratch(stripe_bytes_);
  util::AlignedBytes reduced(stripe_bytes_);
  for (int f = 0; f < n; ++f) {
    if (!global_dirty[static_cast<std::size_t>(f)]) continue;
    const bool mine_dirty = contributes(me, f) && dirty[stripe_index(me, f)] != 0;
    if (mine_dirty) {
      kernels::xor_delta(diff, base.subspan(stripe_index(me, f) * stripe_bytes_, stripe_bytes_),
                         next.subspan(stripe_index(me, f) * stripe_bytes_, stripe_bytes_));
    }
    for (int row = 0; row < parity_count_; ++row) {
      const int owner = parity_owner(row, f);
      std::memset(scratch.data(), 0, stripe_bytes_);
      if (mine_dirty) {
        kernels::gf256_mul_acc(as_u8(std::span<std::byte>(scratch)),
                               as_u8(std::span<const std::byte>(diff)),
                               coefficient(row, me, f));
      }
      xor_reduce(group, owner, scratch,
                 me == owner ? std::span<std::byte>(reduced) : std::span<std::byte>{});
      if (me == owner) {
        kernels::xor_acc(
            parity.subspan(static_cast<std::size_t>(row) * stripe_bytes_, stripe_bytes_),
            reduced);
      }
    }
  }
}

void RSGroupCodec::rebuild(mpi::Comm& group, std::span<const int> failed,
                           std::span<std::byte> data, std::span<std::byte> parity) const {
  check_args(group, data.size(), parity.size());
  if (failed.empty()) return;
  std::vector<int> lost(failed.begin(), failed.end());
  std::sort(lost.begin(), lost.end());
  lost.erase(std::unique(lost.begin(), lost.end()), lost.end());
  if (static_cast<int>(lost.size()) > parity_count_) {
    throw std::invalid_argument("RSGroupCodec: at most parity_count failures recoverable");
  }
  for (int m : lost) {
    if (m < 0 || m >= group_size_) {
      throw std::invalid_argument("RSGroupCodec: bad member index");
    }
  }

  const int me = group.rank();
  const auto is_lost = [&](int p) {
    return std::find(lost.begin(), lost.end(), p) != lost.end();
  };
  // Syndrome reduces use the parity owners' stored stripes as additional
  // contributions: P_j xor sum(surviving c_j*D) = sum(lost c_j*D).
  const auto reduce_syndrome = [&](int f, int row, int root, std::span<std::byte> out) {
    const int owner = parity_owner(row, f);
    util::AlignedBytes scratch(stripe_bytes_, std::byte{0});
    if (contributes(me, f) && !is_lost(me)) {
      const std::span<const std::byte> mine =
          data.subspan(stripe_index(me, f) * stripe_bytes_, stripe_bytes_);
      gf256::mul_acc(as_u8(std::span<std::byte>(scratch)), as_u8(mine),
                     coefficient(row, me, f));
    } else if (me == owner) {
      std::memcpy(scratch.data(),
                  parity.data() + static_cast<std::size_t>(row) * stripe_bytes_, stripe_bytes_);
    }
    xor_reduce(group, root, scratch, out);
  };

  for (int f = 0; f < group_size_; ++f) {
    // Partition this family's losses: contributors to re-solve vs parity
    // rows to re-reduce. A member is one or the other, never both, so
    // lost contributors + lost rows <= m and enough surviving rows exist.
    std::vector<int> lost_data;
    std::vector<int> lost_rows;
    std::vector<int> live_rows;
    for (int m : lost) {
      if (contributes(m, f)) lost_data.push_back(m);
    }
    for (int row = 0; row < parity_count_; ++row) {
      (is_lost(parity_owner(row, f)) ? lost_rows : live_rows).push_back(row);
    }

    // Phase A: reconstruct lost data stripes of this family by solving an
    // L x L Cauchy subsystem against L surviving parity rows at the first
    // lost contributor, which then ships the other rebuilt stripes out.
    const std::size_t L = lost_data.size();
    if (L > 0) {
      const int x = lost_data.front();
      std::vector<std::vector<std::byte>> syndromes(L);
      for (std::size_t a = 0; a < L; ++a) {
        if (me == x) syndromes[a].resize(stripe_bytes_);
        reduce_syndrome(f, live_rows[a], x, syndromes[a]);
      }
      if (me == x) {
        // A[a][b] = c_{row_a}(x_b); D = A^-1 * S.
        std::vector<std::uint8_t> system(L * L);
        for (std::size_t a = 0; a < L; ++a) {
          for (std::size_t b = 0; b < L; ++b) {
            system[a * L + b] = coefficient(live_rows[a], lost_data[b], f);
          }
        }
        const std::vector<std::uint8_t> inv = gf_invert(std::move(system), L);
        std::vector<std::byte> rebuilt(stripe_bytes_);
        for (std::size_t b = 0; b < L; ++b) {
          std::memset(rebuilt.data(), 0, stripe_bytes_);
          for (std::size_t a = 0; a < L; ++a) {
            gf256::mul_acc(as_u8(std::span<std::byte>(rebuilt)),
                           as_u8(std::span<const std::byte>(syndromes[a])), inv[b * L + a]);
          }
          const int member = lost_data[b];
          if (member == x) {
            std::memcpy(data.data() + stripe_index(x, f) * stripe_bytes_, rebuilt.data(),
                        stripe_bytes_);
          } else {
            group.send<std::byte>(member, kTagRebuiltStripe, rebuilt);
          }
        }
      } else if (is_lost(me) && contributes(me, f)) {
        const std::span<std::byte> slot =
            data.subspan(stripe_index(me, f) * stripe_bytes_, stripe_bytes_);
        group.recv<std::byte>(x, kTagRebuiltStripe, slot);
      }
    }

    // Phase B: recompute any lost parity stripes from the (now complete)
    // data contributors.
    for (const int row : lost_rows) {
      const int owner = parity_owner(row, f);
      reduce_family(group, f, row, data, {}, owner,
                    me == owner
                        ? parity.subspan(static_cast<std::size_t>(row) * stripe_bytes_,
                                         stripe_bytes_)
                        : std::span<std::byte>{});
    }
  }
}

bool RSGroupCodec::verify(mpi::Comm& group, std::span<const std::byte> data,
                          std::span<const std::byte> parity) const {
  check_args(group, data.size(), parity.size());
  util::AlignedBytes recomputed(parity_bytes());
  // encode() writes only this member's slots; compare locally afterwards.
  encode(group, data, recomputed);
  const std::uint8_t ok =
      std::memcmp(recomputed.data(), parity.data(), parity_bytes()) == 0 ? 1 : 0;
  return group.allreduce_value<std::uint8_t>(ok, mpi::Min{}) == 1;
}

}  // namespace skt::enc
