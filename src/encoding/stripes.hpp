// Stripe layout for the group encoding of Figure 1.
//
// A group of N processes forms N "families". Process p contributes one
// data stripe to every family f != p, and stores the checksum of family p.
// Each process therefore splits its M bytes of protected data into N-1
// stripes of ceil(M / (N-1)) bytes (lane-padded) and holds exactly one
// checksum stripe — the paper's "a checksum is only 1/(N-1) of the
// checkpoint size".
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>

#include "encoding/codec.hpp"

namespace skt::enc {

class StripeLayout {
 public:
  /// `data_bytes`: protected payload per process; `group_size`: N >= 2.
  StripeLayout(std::size_t data_bytes, int group_size)
      : data_bytes_(data_bytes), group_size_(group_size) {
    if (group_size < 2) throw std::invalid_argument("StripeLayout: group size must be >= 2");
    const std::size_t stripes = static_cast<std::size_t>(group_size - 1);
    const std::size_t raw = (data_bytes + stripes - 1) / stripes;
    stripe_bytes_ = (raw + kLane - 1) / kLane * kLane;
    if (stripe_bytes_ == 0) stripe_bytes_ = kLane;  // degenerate zero-byte payloads
  }

  [[nodiscard]] std::size_t data_bytes() const { return data_bytes_; }
  [[nodiscard]] int group_size() const { return group_size_; }

  /// Size of one stripe == size of the per-process checksum.
  [[nodiscard]] std::size_t stripe_bytes() const { return stripe_bytes_; }

  /// Padded buffer size a process must allocate for its protected data:
  /// (N-1) stripes. The pad beyond data_bytes() is encoded as zeros.
  [[nodiscard]] std::size_t padded_bytes() const {
    return stripe_bytes_ * static_cast<std::size_t>(group_size_ - 1);
  }

  /// Index of process p's stripe that belongs to family f (f != p).
  [[nodiscard]] std::size_t stripe_index(int p, int f) const {
    if (p == f) throw std::invalid_argument("stripe_index: process holds no data for own family");
    check_member(p);
    check_member(f);
    return static_cast<std::size_t>(f < p ? f : f - 1);
  }

  /// View of process p's stripe for family f within its padded buffer.
  [[nodiscard]] std::span<std::byte> stripe(std::span<std::byte> padded, int p, int f) const {
    check_padded(padded.size());
    return padded.subspan(stripe_index(p, f) * stripe_bytes_, stripe_bytes_);
  }

  [[nodiscard]] std::span<const std::byte> stripe(std::span<const std::byte> padded, int p,
                                                  int f) const {
    check_padded(padded.size());
    return padded.subspan(stripe_index(p, f) * stripe_bytes_, stripe_bytes_);
  }

 private:
  void check_member(int m) const {
    if (m < 0 || m >= group_size_) throw std::out_of_range("StripeLayout: bad member index");
  }
  void check_padded(std::size_t size) const {
    if (size != padded_bytes()) throw std::invalid_argument("StripeLayout: buffer not padded");
  }

  std::size_t data_bytes_;
  int group_size_;
  std::size_t stripe_bytes_;
};

}  // namespace skt::enc
