#include "encoding/gf256.hpp"

#include <stdexcept>

#include "encoding/kernels.hpp"

namespace skt::enc::gf256 {
namespace detail {

namespace {

Tables build_tables() {
  Tables t;
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.log[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(i);
    // multiply x by 3 = x + 2x in GF(2^8)
    std::uint16_t x2 = x << 1;
    if (x2 & 0x100) x2 ^= 0x11b;
    x = static_cast<std::uint16_t>(x2 ^ x);
  }
  for (int i = 255; i < 512; ++i) {
    t.exp[static_cast<std::size_t>(i)] = t.exp[static_cast<std::size_t>(i - 255)];
  }
  return t;
}

}  // namespace

const Tables& tables() {
  static const Tables t = build_tables();
  return t;
}

}  // namespace detail

namespace {
using detail::Tables;
using detail::tables;
}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("gf256::inv(0)");
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("gf256::div by 0");
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t pow(std::uint8_t base, unsigned e) {
  if (e == 0) return 1;
  if (base == 0) return 0;
  const Tables& t = tables();
  const unsigned l = (static_cast<unsigned>(t.log[base]) * e) % 255;
  return t.exp[l];
}

void mul_acc(std::span<std::uint8_t> out, std::span<const std::uint8_t> in, std::uint8_t coeff) {
  // The byte loop lives in the dispatched kernel layer (scalar tier is the
  // old log/exp walk; AVX2 tier is the PSHUFB split-nibble multiply).
  kernels::gf256_mul_acc(out, in, coeff);
}

bool solve(std::span<std::uint8_t> matrix, std::span<std::uint8_t> rhs, int k) {
  if (k <= 0) return false;
  const auto n = static_cast<std::size_t>(k);
  if (matrix.size() != n * n || rhs.size() != n) {
    throw std::invalid_argument("gf256::solve: bad dimensions");
  }
  auto at = [&](std::size_t r, std::size_t c) -> std::uint8_t& { return matrix[r * n + c]; };
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && at(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(at(pivot, c), at(col, c));
      std::swap(rhs[pivot], rhs[col]);
    }
    const std::uint8_t piv_inv = inv(at(col, col));
    for (std::size_t c = 0; c < n; ++c) at(col, c) = mul(at(col, c), piv_inv);
    rhs[col] = mul(rhs[col], piv_inv);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col || at(r, col) == 0) continue;
      const std::uint8_t factor = at(r, col);
      for (std::size_t c = 0; c < n; ++c) at(r, c) ^= mul(factor, at(col, c));
      rhs[r] ^= mul(factor, rhs[col]);
    }
  }
  return true;
}

}  // namespace skt::enc::gf256
