#include "encoding/reed_solomon.hpp"

#include <cstring>
#include <stdexcept>

#include "encoding/gf256.hpp"

namespace skt::enc {

ReedSolomon::ReedSolomon(int data_shards, int parity_shards)
    : k_(data_shards), m_(parity_shards) {
  if (k_ < 1 || m_ < 1 || k_ + m_ > 256) {
    throw std::invalid_argument("ReedSolomon: need 1 <= k, 1 <= m, k+m <= 256");
  }
  // Cauchy matrix c[j][i] = 1 / (x_j + y_i) with x_j = k + j, y_i = i.
  // Addition in GF(2^8) is XOR; (k+j) ^ i != 0 because i < k <= k+j, and
  // every square submatrix of a Cauchy matrix is invertible, which gives
  // the MDS property.
  cauchy_.resize(static_cast<std::size_t>(m_) * static_cast<std::size_t>(k_));
  for (int j = 0; j < m_; ++j) {
    for (int i = 0; i < k_; ++i) {
      const auto x = static_cast<std::uint8_t>(k_ + j);
      const auto y = static_cast<std::uint8_t>(i);
      cauchy_[static_cast<std::size_t>(j) * static_cast<std::size_t>(k_) +
              static_cast<std::size_t>(i)] = gf256::inv(static_cast<std::uint8_t>(x ^ y));
    }
  }
}

std::uint8_t ReedSolomon::coefficient(int j, int i) const {
  if (j < 0 || j >= m_ || i < 0 || i >= k_) throw std::out_of_range("ReedSolomon::coefficient");
  return cauchy_[static_cast<std::size_t>(j) * static_cast<std::size_t>(k_) +
                 static_cast<std::size_t>(i)];
}

void ReedSolomon::encode(std::span<const std::span<const std::uint8_t>> data,
                         std::span<const std::span<std::uint8_t>> parity) const {
  if (static_cast<int>(data.size()) != k_ || static_cast<int>(parity.size()) != m_) {
    throw std::invalid_argument("ReedSolomon::encode: shard count mismatch");
  }
  const std::size_t shard_size = data.empty() ? 0 : data[0].size();
  for (const auto& d : data) {
    if (d.size() != shard_size) throw std::invalid_argument("ReedSolomon: uneven shards");
  }
  for (int j = 0; j < m_; ++j) {
    if (parity[static_cast<std::size_t>(j)].size() != shard_size) {
      throw std::invalid_argument("ReedSolomon: uneven parity shards");
    }
    std::memset(parity[static_cast<std::size_t>(j)].data(), 0, shard_size);
    for (int i = 0; i < k_; ++i) {
      gf256::mul_acc(parity[static_cast<std::size_t>(j)], data[static_cast<std::size_t>(i)],
                     coefficient(j, i));
    }
  }
}

bool ReedSolomon::reconstruct(std::span<const std::span<std::uint8_t>> shards,
                              const std::vector<bool>& present) const {
  const int total = k_ + m_;
  if (static_cast<int>(shards.size()) != total || static_cast<int>(present.size()) != total) {
    throw std::invalid_argument("ReedSolomon::reconstruct: shard count mismatch");
  }
  int available = 0;
  for (bool p : present) available += p ? 1 : 0;
  if (available < k_) return false;
  bool any_missing = false;
  for (bool p : present) any_missing |= !p;
  if (!any_missing) return true;

  const std::size_t shard_size = shards[0].size();
  for (const auto& s : shards) {
    if (s.size() != shard_size) throw std::invalid_argument("ReedSolomon: uneven shards");
  }

  // Pick k available rows of the (k+m) x k matrix [I; C], preferring data
  // rows (identity rows make the solve cheaper and exact).
  std::vector<int> rows;
  rows.reserve(static_cast<std::size_t>(k_));
  for (int i = 0; i < k_ && static_cast<int>(rows.size()) < k_; ++i) {
    if (present[static_cast<std::size_t>(i)]) rows.push_back(i);
  }
  for (int j = 0; j < m_ && static_cast<int>(rows.size()) < k_; ++j) {
    if (present[static_cast<std::size_t>(k_ + j)]) rows.push_back(k_ + j);
  }

  // Build the k x k sub-generator and invert it via k solves against the
  // identity (Gauss-Jordan on an augmented system).
  const auto n = static_cast<std::size_t>(k_);
  std::vector<std::uint8_t> sub(n * n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    const int row = rows[r];
    if (row < k_) {
      sub[r * n + static_cast<std::size_t>(row)] = 1;
    } else {
      for (int i = 0; i < k_; ++i) {
        sub[r * n + static_cast<std::size_t>(i)] = coefficient(row - k_, i);
      }
    }
  }
  // Invert: augment with identity, run Gauss-Jordan.
  std::vector<std::uint8_t> inv(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) inv[i * n + i] = 1;
  {
    std::vector<std::uint8_t> work = sub;
    for (std::size_t col = 0; col < n; ++col) {
      std::size_t pivot = col;
      while (pivot < n && work[pivot * n + col] == 0) ++pivot;
      if (pivot == n) return false;  // cannot happen for a Cauchy system
      if (pivot != col) {
        for (std::size_t c = 0; c < n; ++c) {
          std::swap(work[pivot * n + c], work[col * n + c]);
          std::swap(inv[pivot * n + c], inv[col * n + c]);
        }
      }
      const std::uint8_t piv_inv = gf256::inv(work[col * n + col]);
      for (std::size_t c = 0; c < n; ++c) {
        work[col * n + c] = gf256::mul(work[col * n + c], piv_inv);
        inv[col * n + c] = gf256::mul(inv[col * n + c], piv_inv);
      }
      for (std::size_t r = 0; r < n; ++r) {
        if (r == col) continue;
        const std::uint8_t factor = work[r * n + col];
        if (factor == 0) continue;
        for (std::size_t c = 0; c < n; ++c) {
          work[r * n + c] ^= gf256::mul(factor, work[col * n + c]);
          inv[r * n + c] ^= gf256::mul(factor, inv[col * n + c]);
        }
      }
    }
  }

  // Rebuild missing data shards: data_d = sum_r inv[d][r] * shard(rows[r]).
  for (int d = 0; d < k_; ++d) {
    if (present[static_cast<std::size_t>(d)]) continue;
    auto out = shards[static_cast<std::size_t>(d)];
    std::memset(out.data(), 0, shard_size);
    for (std::size_t r = 0; r < n; ++r) {
      gf256::mul_acc(out,
                     std::span<const std::uint8_t>(shards[static_cast<std::size_t>(rows[r])]),
                     inv[static_cast<std::size_t>(d) * n + r]);
    }
  }

  // Recompute missing parity shards from the (now complete) data shards.
  for (int j = 0; j < m_; ++j) {
    if (present[static_cast<std::size_t>(k_ + j)]) continue;
    auto out = shards[static_cast<std::size_t>(k_ + j)];
    std::memset(out.data(), 0, shard_size);
    for (int i = 0; i < k_; ++i) {
      gf256::mul_acc(out, std::span<const std::uint8_t>(shards[static_cast<std::size_t>(i)]),
                     coefficient(j, i));
    }
  }
  return true;
}

}  // namespace skt::enc
