// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b).
// Backing for the Reed-Solomon code that upgrades the group encoding from
// single-erasure (RAID-5) to multi-erasure tolerance — the paper's
// "more complex encoding methods such as RAID-6 and Reed-Solomon".
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace skt::enc::gf256 {

namespace detail {
/// log/exp tables (generator 3); exp is doubled so mul skips the mod-255
/// reduction. Shared with the kernel layer, which builds its PSHUFB
/// nibble-product tables from them.
struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};
};
const Tables& tables();
}  // namespace detail

/// Multiplication in GF(2^8) via log/exp tables (generator 3).
[[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; a must be non-zero.
[[nodiscard]] std::uint8_t inv(std::uint8_t a);

/// a / b; b must be non-zero.
[[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b);

/// base^e (e >= 0).
[[nodiscard]] std::uint8_t pow(std::uint8_t base, unsigned e);

/// out[i] ^= coeff * in[i] for all i — the inner loop of RS encode/decode.
void mul_acc(std::span<std::uint8_t> out, std::span<const std::uint8_t> in, std::uint8_t coeff);

/// Solve the k-by-k linear system M x = y in GF(2^8) by Gaussian
/// elimination, in place. Returns false if M is singular.
bool solve(std::span<std::uint8_t> matrix, std::span<std::uint8_t> rhs, int k);

}  // namespace skt::enc::gf256
