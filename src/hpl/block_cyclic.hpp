// 2-D block-cyclic index arithmetic (ScaLAPACK's numroc and friends),
// separated from communication so it is unit-testable in isolation.
//
// A global index g belongs to block b = g / nb; block b of a dimension
// distributed over P processes lives on process b % P, at local block
// b / P. Rows and columns are distributed independently.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace skt::hpl {

class BlockCyclicDim {
 public:
  /// `n` global elements in blocks of `nb` over `nprocs` processes.
  BlockCyclicDim(std::int64_t n, std::int64_t nb, int nprocs)
      : n_(n), nb_(nb), nprocs_(nprocs) {
    if (n < 0 || nb <= 0 || nprocs <= 0) {
      throw std::invalid_argument("BlockCyclicDim: bad parameters");
    }
  }

  [[nodiscard]] std::int64_t n() const { return n_; }
  [[nodiscard]] std::int64_t nb() const { return nb_; }
  [[nodiscard]] int nprocs() const { return nprocs_; }

  /// Owning process of global index g.
  [[nodiscard]] int owner(std::int64_t g) const {
    return static_cast<int>((g / nb_) % nprocs_);
  }

  /// Local index of global g on its owner.
  [[nodiscard]] std::int64_t local(std::int64_t g) const {
    return (g / nb_) / nprocs_ * nb_ + g % nb_;
  }

  /// Global index of local index l on process p.
  [[nodiscard]] std::int64_t global(int p, std::int64_t l) const {
    return (l / nb_ * nprocs_ + p) * nb_ + l % nb_;
  }

  /// Number of local elements on process p (ScaLAPACK numroc).
  [[nodiscard]] std::int64_t count(int p) const {
    const std::int64_t full_blocks = n_ / nb_;
    const std::int64_t rem = n_ % nb_;
    std::int64_t c = full_blocks / nprocs_ * nb_;
    const std::int64_t leftover = full_blocks % nprocs_;
    if (p < leftover) {
      c += nb_;
    } else if (p == leftover) {
      c += rem;
    }
    return c;
  }

  /// Smallest local index on process p whose global index is >= g
  /// (== count(p) when no such local element exists). Used to find the
  /// start of the trailing submatrix each panel iteration.
  [[nodiscard]] std::int64_t local_lower_bound(int p, std::int64_t g) const {
    if (g >= n_) return count(p);
    const std::int64_t b = g / nb_;
    const auto bp = static_cast<std::int64_t>(static_cast<std::int64_t>(b) % nprocs_);
    if (bp == p) {
      // g's block is local: start inside it.
      return b / nprocs_ * nb_ + g % nb_;
    }
    // First block owned by p at or after b.
    std::int64_t first = b / nprocs_ * nprocs_ + p;
    if (first < b) first += nprocs_;
    const std::int64_t l = first / nprocs_ * nb_;
    return l > count(p) ? count(p) : l;
  }

 private:
  std::int64_t n_;
  std::int64_t nb_;
  int nprocs_;
};

}  // namespace skt::hpl
