// Plain (non-fault-tolerant) HPL driver: generate, factorize, solve,
// verify, report. This is the "Original HPL" row of Table 3 and the
// baseline every efficiency figure normalizes against.
#pragma once

#include <cstdint>

#include "hpl/lu.hpp"
#include "mpi/comm.hpp"

namespace skt::hpl {

struct HplConfig {
  std::int64_t n = 512;   ///< problem size (matrix is n x (n+1) augmented)
  std::int64_t nb = 32;   ///< block size
  int grid_p = 2;         ///< process grid rows
  int grid_q = 2;         ///< process grid columns
  std::uint64_t seed = 42;
  PanelBcast panel_bcast = PanelBcast::kBinomial;  ///< HPL's BCAST tunable
};

struct HplResult {
  double elapsed_s = 0.0;  ///< factor+solve wall time (rank-local)
  double virtual_s = 0.0;  ///< virtual network charge accrued during the run
  double gflops = 0.0;     ///< hpl_flops(n) / (elapsed_s + virtual_s)
  Residual residual;
};

/// Collective over `world` (size must equal grid_p * grid_q). Storage is a
/// plain heap buffer — full memory available to the application.
HplResult run_hpl(mpi::Comm& world, const HplConfig& config);

/// Problem size whose augmented local blocks fit `app_bytes` per process
/// on a PxQ grid with block size nb (largest n, rounded down to a multiple
/// of nb). This is how "available memory" translates into HPL problem
/// size throughout the paper's evaluation.
[[nodiscard]] std::int64_t max_problem_size(std::size_t app_bytes, std::int64_t nb, int P,
                                            int Q);

/// Measured per-rank dgemm throughput (GFLOP/s) used as the simulated
/// node's achievable peak when reporting HPL efficiency.
[[nodiscard]] double calibrate_peak_gflops(std::int64_t size = 256, int repeats = 3);

}  // namespace skt::hpl
