#include "hpl/driver.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "hpl/blas.hpp"
#include "hpl/dist_matrix.hpp"
#include "util/clock.hpp"

namespace skt::hpl {

HplResult run_hpl(mpi::Comm& world, const HplConfig& config) {
  mpi::Grid grid(world, config.grid_p, config.grid_q);
  const std::int64_t elems = DistMatrix::max_local_elements(
      config.n, config.n + 1, config.nb, config.grid_p, config.grid_q);
  std::vector<double> storage(static_cast<std::size_t>(elems));
  DistMatrix a(grid, config.n, config.n + 1, config.nb, storage);

  generate(a, config.seed);
  world.barrier();

  const double virtual_before = world.virtual_seconds();
  util::WallTimer timer;
  lu_factorize(grid, a, config.n, 0, {}, nullptr, config.panel_bcast);
  const std::vector<double> x = back_substitute(world, grid, a, config.n);
  const double elapsed = timer.seconds();
  const double virtual_delta = world.virtual_seconds() - virtual_before;

  HplResult result;
  result.elapsed_s = elapsed;
  result.virtual_s = virtual_delta;
  result.gflops = hpl_flops(config.n) / (elapsed + virtual_delta) * 1e-9;
  result.residual = verify(world, a, config.n, config.seed, x);
  return result;
}

std::int64_t max_problem_size(std::size_t app_bytes, std::int64_t nb, int P, int Q) {
  // Local doubles per rank ~= n*(n+1) / (P*Q); solve for the largest n and
  // then shrink until the max local block (which exceeds the average by up
  // to one block row/column) actually fits.
  const double ranks = static_cast<double>(P) * static_cast<double>(Q);
  const double budget = static_cast<double>(app_bytes) / sizeof(double);
  auto n = static_cast<std::int64_t>(std::sqrt(budget * ranks));
  n = n / nb * nb;
  while (n > 0 && DistMatrix::max_local_elements(n, n + 1, nb, P, Q) >
                      static_cast<std::int64_t>(budget)) {
    n -= nb;
  }
  return n;
}

double calibrate_peak_gflops(std::int64_t size, int repeats) {
  std::vector<double> a(static_cast<std::size_t>(size * size), 1.000001);
  std::vector<double> b(static_cast<std::size_t>(size * size), 0.999999);
  std::vector<double> c(static_cast<std::size_t>(size * size), 0.0);
  double best = 0.0;
  for (int i = 0; i < repeats; ++i) {
    util::WallTimer timer;
    blas::gemm_minus(size, size, size, a.data(), size, b.data(), size, c.data(), size);
    const double elapsed = timer.seconds();
    const double flops = 2.0 * static_cast<double>(size) * static_cast<double>(size) *
                         static_cast<double>(size);
    best = std::max(best, flops / elapsed * 1e-9);
  }
  return best;
}

}  // namespace skt::hpl
