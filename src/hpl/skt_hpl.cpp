#include "hpl/skt_hpl.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "hpl/dist_matrix.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace skt::hpl {
namespace {

/// A2 — the small user-space state checkpointed alongside the matrix.
struct SktState {
  std::uint64_t magic = 0x534b544850ull;  // "SKTHP"
  std::int64_t next_panel = 0;
  std::int64_t n = 0;
  std::int64_t nb = 0;
  std::uint64_t seed = 0;

  [[nodiscard]] bool valid(const HplConfig& config) const {
    return magic == 0x534b544850ull && n == config.n && nb == config.nb &&
           seed == config.seed;
  }
};

mpi::Comm build_group_comm(mpi::Comm& world, int group_size, ckpt::Mapping mapping) {
  std::vector<int> nodes(static_cast<std::size_t>(world.size()));
  std::vector<int> racks(static_cast<std::size_t>(world.size()));
  for (int r = 0; r < world.size(); ++r) {
    const int node_id = world.node_id_of(r);
    nodes[static_cast<std::size_t>(r)] = node_id;
    racks[static_cast<std::size_t>(r)] = world.runtime().cluster().node(node_id).rack();
  }
  const ckpt::GroupAssignment assignment =
      ckpt::plan_groups(world.size(), group_size, nodes, racks, mapping);
  return ckpt::make_group_comm(world, assignment);
}

}  // namespace

SktHplResult run_skt_hpl(mpi::Comm& world, const SktHplConfig& config) {
  const HplConfig& h = config.hpl;
  SktHplResult result;

  mpi::Grid grid(world, h.grid_p, h.grid_q);
  // Uniform per-rank allocation (group encoding needs equal sizes).
  const std::int64_t elems =
      DistMatrix::max_local_elements(h.n, h.n + 1, h.nb, h.grid_p, h.grid_q);
  const std::size_t data_bytes = static_cast<std::size_t>(elems) * sizeof(double);

  // ---------------------------------------------------------------- none --
  if (config.strategy == ckpt::Strategy::kNone) {
    result.hpl = run_hpl(world, h);
    return result;
  }

  ckpt::Session session =
      ckpt::SessionBuilder{}
          .strategy(config.strategy)
          .key_prefix(config.key_prefix)
          .data_bytes(data_bytes)
          .user_bytes(sizeof(SktState))
          .codec(config.codec)
          .vault(config.vault)
          .device(config.device)
          .group(build_group_comm(world, config.group_size, config.mapping))
          .mode(config.async ? ckpt::CommitMode::kAsync : ckpt::CommitMode::kSync)
          .service(config.service)
          .tenant(config.tenant)
          .build(world);

  const double virtual_before = world.virtual_seconds();
  util::WallTimer timer;

  util::WallTimer open_timer;
  const ckpt::OpenOutcome outcome = session.open();
  auto* state = reinterpret_cast<SktState*>(session.user_state().data());

  // data() is at least data_bytes long; alias it as the local matrix.
  const std::span<double> storage{reinterpret_cast<double*>(session.data().data()),
                                  static_cast<std::size_t>(elems)};
  DistMatrix a(grid, h.n, h.n + 1, h.nb, storage);

  if (outcome == ckpt::OpenOutcome::kRestored) {
    // Restart path (Fig. 9): open() restored data + loop position from the
    // checkpoint, so generation is skipped.
    result.restored = true;
    result.restore_s = open_timer.seconds();
    if (!state->valid(h)) {
      throw std::runtime_error("skt-hpl: restored state does not match this configuration");
    }
    SKT_LOG_INFO("skt-hpl: restored epoch {} -> resuming at panel {}",
                 session.last_restore()->epoch, state->next_panel);
  } else {
    *state = SktState{};
    state->next_panel = 0;
    state->n = h.n;
    state->nb = h.nb;
    state->seed = h.seed;
    generate(a, h.seed);
  }
  world.barrier();

  // Worker-side stats of an async epoch; reaped when its ticket resolves.
  double dirty_fraction_sum = 0.0;
  int absorbed_commits = 0;
  const auto absorb_pipeline = [&result, &dirty_fraction_sum,
                                &absorbed_commits](const ckpt::CommitStats& stats) {
    result.encode_total_s += stats.encode_s;
    result.encode_virtual_total_s += stats.encode_virtual_s;
    result.encode_last_s = stats.encode_s + stats.encode_virtual_s;
    result.ckpt_bytes = stats.checkpoint_bytes;
    result.checksum_bytes = stats.checksum_bytes;
    result.dirty_bytes_last = stats.dirty_bytes;
    result.dirty_bytes_total += stats.dirty_bytes;
    result.dirty_fraction_last = stats.dirty_fraction;
    dirty_fraction_sum += stats.dirty_fraction;
    ++absorbed_commits;
  };

  ckpt::CommitTicket pending;
  const PanelHook hook = [&](std::int64_t next_panel) {
    world.failpoint("hpl.panel");
    if (config.ckpt_every_panels > 0 && next_panel % config.ckpt_every_panels == 0) {
      SKT_SPAN("hpl.commit");
      state->next_panel = next_panel;
      if (config.async) {
        // Reap the previous epoch first: commit_async would block on it
        // anyway (staleness is bounded to one epoch), so the wait here
        // adds no latency but lets us account the worker's time.
        if (pending.valid()) {
          const ckpt::CommitStats done = pending.wait();
          absorb_pipeline(done);
          result.ckpt_worker_total_s += done.total_s();
        }
        pending = session.commit_async();
        ++result.checkpoints;
        // The loop only ever pays the stage copy.
        result.ckpt_stage_total_s += pending.stage_seconds();
        result.ckpt_total_s += pending.stage_seconds();
      } else {
        const ckpt::CommitStats stats = session.commit();
        ++result.checkpoints;
        result.ckpt_total_s += stats.total_s();
        absorb_pipeline(stats);
      }
    }
    return true;
  };

  lu_factorize(grid, a, h.n, state->next_panel, hook, nullptr, h.panel_bcast);
  if (pending.valid()) {
    const ckpt::CommitStats done = pending.wait();
    absorb_pipeline(done);
    result.ckpt_worker_total_s += done.total_s();
  }
  if (result.ckpt_stage_total_s + result.ckpt_worker_total_s > 0.0) {
    result.overlap_fraction = result.ckpt_worker_total_s /
                              (result.ckpt_stage_total_s + result.ckpt_worker_total_s);
  }
  if (absorbed_commits > 0) {
    result.dirty_fraction_mean = dirty_fraction_sum / absorbed_commits;
  }
  const std::vector<double> x = back_substitute(world, grid, a, h.n);
  const double elapsed = timer.seconds();
  const double virtual_delta = world.virtual_seconds() - virtual_before;

  world.failpoint("hpl.done");
  result.hpl.elapsed_s = elapsed;
  result.hpl.virtual_s = virtual_delta;
  result.hpl.gflops = hpl_flops(h.n) / (elapsed + virtual_delta) * 1e-9;
  result.hpl.residual = verify(world, a, h.n, h.seed, x);
  result.memory_bytes = session.memory_bytes();
  return result;
}

}  // namespace skt::hpl
