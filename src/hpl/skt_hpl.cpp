#include "hpl/skt_hpl.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "hpl/dist_matrix.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace skt::hpl {
namespace {

/// A2 — the small user-space state checkpointed alongside the matrix.
struct SktState {
  std::uint64_t magic = 0x534b544850ull;  // "SKTHP"
  std::int64_t next_panel = 0;
  std::int64_t n = 0;
  std::int64_t nb = 0;
  std::uint64_t seed = 0;

  [[nodiscard]] bool valid(const HplConfig& config) const {
    return magic == 0x534b544850ull && n == config.n && nb == config.nb &&
           seed == config.seed;
  }
};

mpi::Comm build_group_comm(mpi::Comm& world, int group_size, ckpt::Mapping mapping) {
  std::vector<int> nodes(static_cast<std::size_t>(world.size()));
  std::vector<int> racks(static_cast<std::size_t>(world.size()));
  for (int r = 0; r < world.size(); ++r) {
    const int node_id = world.node_id_of(r);
    nodes[static_cast<std::size_t>(r)] = node_id;
    racks[static_cast<std::size_t>(r)] = world.runtime().cluster().node(node_id).rack();
  }
  const ckpt::GroupAssignment assignment =
      ckpt::plan_groups(world.size(), group_size, nodes, racks, mapping);
  return ckpt::make_group_comm(world, assignment);
}

}  // namespace

SktHplResult run_skt_hpl(mpi::Comm& world, const SktHplConfig& config) {
  const HplConfig& h = config.hpl;
  SktHplResult result;

  mpi::Grid grid(world, h.grid_p, h.grid_q);
  // Uniform per-rank allocation (group encoding needs equal sizes).
  const std::int64_t elems =
      DistMatrix::max_local_elements(h.n, h.n + 1, h.nb, h.grid_p, h.grid_q);
  const std::size_t data_bytes = static_cast<std::size_t>(elems) * sizeof(double);

  // ---------------------------------------------------------------- none --
  if (config.strategy == ckpt::Strategy::kNone) {
    result.hpl = run_hpl(world, h);
    return result;
  }

  mpi::Comm group = build_group_comm(world, config.group_size, config.mapping);
  ckpt::CommCtx ctx{world, group};

  ckpt::FactoryParams params;
  params.key_prefix = config.key_prefix;
  params.data_bytes = data_bytes;
  params.user_bytes = sizeof(SktState);
  params.codec = config.codec;
  params.vault = config.vault;
  params.device = config.device;
  auto protocol = ckpt::make_protocol(config.strategy, params);

  const bool has_ckpt = protocol->open(ctx);
  auto* state = reinterpret_cast<SktState*>(protocol->user_state().data());

  // data() is at least data_bytes long; alias it as the local matrix.
  const std::span<double> storage{reinterpret_cast<double*>(protocol->data().data()),
                                  static_cast<std::size_t>(elems)};
  DistMatrix a(grid, h.n, h.n + 1, h.nb, storage);

  const double virtual_before = world.virtual_seconds();
  util::WallTimer timer;

  if (has_ckpt) {
    // Restart path (Fig. 9): restore data + loop position from the
    // checkpoint and skip generation.
    util::WallTimer restore_timer;
    SKT_SPAN("hpl.restore");
    const ckpt::RestoreStats rs = protocol->restore(ctx);
    result.restored = true;
    result.restore_s = restore_timer.seconds();
    if (!state->valid(h)) {
      throw std::runtime_error("skt-hpl: restored state does not match this configuration");
    }
    SKT_LOG_INFO("skt-hpl: restored epoch {} -> resuming at panel {}", rs.epoch,
                 state->next_panel);
  } else {
    *state = SktState{};
    state->next_panel = 0;
    state->n = h.n;
    state->nb = h.nb;
    state->seed = h.seed;
    generate(a, h.seed);
  }
  world.barrier();

  const PanelHook hook = [&](std::int64_t next_panel) {
    world.failpoint("hpl.panel");
    if (config.ckpt_every_panels > 0 && next_panel % config.ckpt_every_panels == 0) {
      SKT_SPAN("hpl.commit");
      state->next_panel = next_panel;
      const ckpt::CommitStats stats = protocol->commit(ctx);
      ++result.checkpoints;
      result.ckpt_total_s += stats.total_s();
      result.encode_total_s += stats.encode_s;
      result.encode_virtual_total_s += stats.encode_virtual_s;
      result.encode_last_s = stats.encode_s + stats.encode_virtual_s;
      result.ckpt_bytes = stats.checkpoint_bytes;
      result.checksum_bytes = stats.checksum_bytes;
    }
    return true;
  };

  lu_factorize(grid, a, h.n, state->next_panel, hook, nullptr, h.panel_bcast);
  const std::vector<double> x = back_substitute(world, grid, a, h.n);
  const double elapsed = timer.seconds();
  const double virtual_delta = world.virtual_seconds() - virtual_before;

  world.failpoint("hpl.done");
  result.hpl.elapsed_s = elapsed;
  result.hpl.virtual_s = virtual_delta;
  result.hpl.gflops = hpl_flops(h.n) / (elapsed + virtual_delta) * 1e-9;
  result.hpl.residual = verify(world, a, h.n, h.seed, x);
  result.memory_bytes = protocol->memory_bytes();
  return result;
}

}  // namespace skt::hpl
