#include "hpl/blas.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace skt::hpl::blas {

namespace {
// Cache-blocking tile sizes for gemm_minus: the B tile (kc x nc doubles)
// stays L1/L2-resident across the i loop.
constexpr std::int64_t kKc = 64;
constexpr std::int64_t kNc = 128;
}  // namespace

void gemm_minus(std::int64_t m, std::int64_t n, std::int64_t k, const double* a,
                std::int64_t lda, const double* b, std::int64_t ldb, double* c,
                std::int64_t ldc) {
  for (std::int64_t j0 = 0; j0 < n; j0 += kNc) {
    const std::int64_t jb = std::min(kNc, n - j0);
    for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
      const std::int64_t kb = std::min(kKc, k - k0);
      for (std::int64_t i = 0; i < m; ++i) {
        const double* ai = a + i * lda + k0;
        double* ci = c + i * ldc + j0;
        for (std::int64_t kk = 0; kk < kb; ++kk) {
          const double aik = ai[kk];
          if (aik == 0.0) continue;
          const double* bk = b + (k0 + kk) * ldb + j0;
          std::int64_t j = 0;
          for (; j + 4 <= jb; j += 4) {
            ci[j] -= aik * bk[j];
            ci[j + 1] -= aik * bk[j + 1];
            ci[j + 2] -= aik * bk[j + 2];
            ci[j + 3] -= aik * bk[j + 3];
          }
          for (; j < jb; ++j) ci[j] -= aik * bk[j];
        }
      }
    }
  }
}

void trsm_lower_unit(std::int64_t m, std::int64_t n, const double* l, std::int64_t ldl,
                     double* b, std::int64_t ldb) {
  // Forward substitution row by row: row i of X depends on rows < i.
  for (std::int64_t i = 0; i < m; ++i) {
    double* bi = b + i * ldb;
    for (std::int64_t kk = 0; kk < i; ++kk) {
      const double lik = l[i * ldl + kk];
      if (lik == 0.0) continue;
      const double* bk = b + kk * ldb;
      for (std::int64_t j = 0; j < n; ++j) bi[j] -= lik * bk[j];
    }
    // unit diagonal: no scaling
  }
}

void trsv_upper(std::int64_t m, const double* u, std::int64_t ldu, double* y) {
  for (std::int64_t i = m - 1; i >= 0; --i) {
    double acc = y[i];
    const double* ui = u + i * ldu;
    for (std::int64_t j = i + 1; j < m; ++j) acc -= ui[j] * y[j];
    y[i] = acc / ui[i];
  }
}

void gemv_minus(std::int64_t m, std::int64_t n, const double* a, std::int64_t lda,
                const double* x, double* y) {
  for (std::int64_t i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double acc = 0.0;
    for (std::int64_t j = 0; j < n; ++j) acc += ai[j] * x[j];
    y[i] -= acc;
  }
}

std::int64_t iamax(std::int64_t n, const double* x) {
  if (n <= 0) return -1;
  std::int64_t best = 0;
  double best_val = std::abs(x[0]);
  for (std::int64_t i = 1; i < n; ++i) {
    const double v = std::abs(x[i]);
    if (v > best_val) {
      best_val = v;
      best = i;
    }
  }
  return best;
}

void swap_rows(std::int64_t n, double* a, double* b) {
  for (std::int64_t j = 0; j < n; ++j) std::swap(a[j], b[j]);
}

void scal(std::int64_t n, double alpha, double* x) {
  for (std::int64_t j = 0; j < n; ++j) x[j] *= alpha;
}

}  // namespace skt::hpl::blas
