#include "hpl/abft.hpp"

#include <cmath>
#include <vector>

#include "hpl/dist_matrix.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace skt::hpl {
namespace {

/// Check the row-sum invariant for the active rows (global row >= j0).
///
/// An active row's eliminated columns (j < j0) are mathematically zero —
/// the storage slots hold L multipliers, but the row-operation view of the
/// row is zero there — so the invariant is simply
///     s_i == sum_{j0 <= j <= n} A(i, j).
/// The per-row verdicts are reduced along the process rows to the checksum
/// column's owner, then agreed grid-wide. Returns the global verdict.
bool verify_row_sums(mpi::Grid& grid, DistMatrix& a, std::int64_t n, std::int64_t j0,
                     double tolerance) {
  const std::int64_t scol = n + 1;  // checksum column
  const int qs = a.cols().owner(scol);
  const std::int64_t lcS = a.cols().local(scol);
  const std::int64_t li0 = a.rows().local_lower_bound(a.prow(), j0);

  std::vector<double> partial(static_cast<std::size_t>(a.lrows() - li0), 0.0);
  std::vector<double> scale(partial.size(), 0.0);
  for (std::int64_t li = li0; li < a.lrows(); ++li) {
    double acc = 0.0;
    double mag = 0.0;
    const double* row = a.row_ptr(li);
    for (std::int64_t lj = 0; lj < a.lcols(); ++lj) {
      const std::int64_t gj = a.cols().global(a.pcol(), lj);
      if (gj < j0 || gj >= scol) continue;  // eliminated columns are zero
      acc += row[lj];
      mag += std::abs(row[lj]);
    }
    partial[static_cast<std::size_t>(li - li0)] = acc;
    scale[static_cast<std::size_t>(li - li0)] = mag;
  }
  std::vector<double> sums(partial.size());
  std::vector<double> mags(scale.size());
  grid.row().reduce<double>(qs, partial, sums, mpi::Sum{});
  grid.row().reduce<double>(qs, scale, mags, mpi::Sum{});

  std::uint8_t ok = 1;
  if (grid.pcol() == qs) {
    for (std::int64_t li = li0; li < a.lrows(); ++li) {
      const double expect = a.at(li, lcS);
      const double got = sums[static_cast<std::size_t>(li - li0)];
      const double tol = tolerance * (mags[static_cast<std::size_t>(li - li0)] + 1.0) *
                         static_cast<double>(n);
      if (std::abs(expect - got) > tol) {
        ok = 0;
        break;
      }
    }
  }
  // Everyone must agree; reduce over the full grid (row comm then col comm).
  ok = grid.row().allreduce_value<std::uint8_t>(ok, mpi::Min{});
  ok = grid.col().allreduce_value<std::uint8_t>(ok, mpi::Min{});
  return ok == 1;
}

}  // namespace

AbftResult run_abft_hpl(mpi::Comm& world, const AbftConfig& config) {
  const HplConfig& h = config.hpl;
  mpi::Grid grid(world, h.grid_p, h.grid_q);

  // [A | b | s]: n+2 columns.
  const std::int64_t ncols = h.n + 2;
  const std::int64_t elems =
      DistMatrix::max_local_elements(h.n, ncols, h.nb, h.grid_p, h.grid_q);
  std::vector<double> storage(static_cast<std::size_t>(elems));
  DistMatrix a(grid, h.n, ncols, h.nb, storage);

  // Generate [A | b] from the hashed generator and s as exact row sums.
  for (std::int64_t li = 0; li < a.lrows(); ++li) {
    const auto gi = static_cast<std::uint64_t>(a.rows().global(a.prow(), li));
    double* row = a.row_ptr(li);
    for (std::int64_t lj = 0; lj < a.lcols(); ++lj) {
      const std::int64_t gj = a.cols().global(a.pcol(), lj);
      if (gj <= h.n) {
        row[lj] = util::element_value(h.seed, gi, static_cast<std::uint64_t>(gj));
      } else {
        // s_i: full row sum, recomputed independently of ownership.
        double acc = 0.0;
        for (std::int64_t j = 0; j <= h.n; ++j) {
          acc += util::element_value(h.seed, gi, static_cast<std::uint64_t>(j));
        }
        row[lj] = acc;
      }
    }
  }
  world.barrier();

  AbftResult result;
  const double virtual_before = world.virtual_seconds();
  util::WallTimer timer;

  const PanelHook hook = [&](std::int64_t next_panel) {
    if (config.verify_every_panels > 0 && next_panel % config.verify_every_panels == 0) {
      ++result.checks;
      const std::int64_t j0 = next_panel * h.nb;
      if (!verify_row_sums(grid, a, h.n, std::min(j0, h.n), config.tolerance)) {
        result.checksum_ok = false;
      }
    }
    return true;
  };
  lu_factorize(grid, a, h.n, 0, hook, nullptr, h.panel_bcast);
  const std::vector<double> x = back_substitute(world, grid, a, h.n);
  const double elapsed = timer.seconds();
  const double virtual_delta = world.virtual_seconds() - virtual_before;

  result.hpl.elapsed_s = elapsed;
  result.hpl.virtual_s = virtual_delta;
  result.hpl.gflops = hpl_flops(h.n) / (elapsed + virtual_delta) * 1e-9;
  result.hpl.residual = verify(world, a, h.n, h.seed, x);
  return result;
}

}  // namespace skt::hpl
