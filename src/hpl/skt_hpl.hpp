// SKT-HPL — fault-tolerant HPL over a pluggable checkpoint protocol
// (Section 5 of the paper, workflow of Fig. 9).
//
// The distributed matrix's local block lives inside the protocol's data()
// region — for the self-checkpoint strategy that region IS the SHM-backed
// A1, so the application computes in place and the working set doubles as
// the in-flight checkpoint. Checkpoints are taken at elimination-loop
// panel boundaries; after a restart the driver restores, skips generation,
// and resumes from the recorded panel.
//
// Strategy::kDouble reproduces the SCR-style in-memory baseline,
// Strategy::kBlcr the disk-based one, Strategy::kNone the original HPL.
#pragma once

#include <cstdint>
#include <string>

#include "ckpt/grouping.hpp"
#include "ckpt/session.hpp"
#include "hpl/driver.hpp"
#include "mpi/comm.hpp"

namespace skt::hpl {

struct SktHplConfig {
  HplConfig hpl;
  ckpt::Strategy strategy = ckpt::Strategy::kSelf;
  int group_size = 4;
  enc::CodecKind codec = enc::CodecKind::kXor;
  ckpt::Mapping mapping = ckpt::Mapping::kNeighbor;
  /// Checkpoint after every this many eliminated panels (0 = never).
  std::int64_t ckpt_every_panels = 8;
  std::string key_prefix = "skthpl";
  /// BLCR only:
  storage::Vault* vault = nullptr;
  storage::DeviceProfile device;
  /// Asynchronous commit pipeline: the elimination loop pays only the
  /// stage copy; encode + flush overlap the following panels on a
  /// background worker (bounded to one in-flight epoch).
  bool async = false;
  /// Multi-tenant operation: open the Session against this StoreService
  /// under `tenant` (both or neither; see ckpt/store_service.hpp). The
  /// service namespaces the keys, admits against the tenant quota, and
  /// fair-shares commit dispatch with the cluster's other jobs.
  ckpt::StoreService* service = nullptr;
  std::string tenant;
};

struct SktHplResult {
  HplResult hpl;
  bool restored = false;        ///< this run resumed from a checkpoint
  int checkpoints = 0;          ///< commits performed in this run
  double ckpt_total_s = 0.0;    ///< sum of commit times (encode+flush+device)
  double encode_total_s = 0.0;  ///< sum of encode wall times across commits
  double encode_virtual_total_s = 0.0;  ///< sum of modeled encode network time
  double encode_last_s = 0.0;   ///< encoding time of the last commit (Fig. 13)
  double restore_s = 0.0;       ///< recovery time when restored
  std::size_t ckpt_bytes = 0;   ///< per-process checkpoint size
  std::size_t checksum_bytes = 0;
  std::size_t memory_bytes = 0;  ///< protocol's total memory footprint
  /// Async mode only. In async runs ckpt_total_s is the CRITICAL-PATH
  /// commit cost (the stage copies alone); the encode/flush work the
  /// worker hid from the loop is accounted here.
  double ckpt_stage_total_s = 0.0;   ///< sum of stage() copies (== ckpt_total_s)
  double ckpt_worker_total_s = 0.0;  ///< sum of background pipeline times
  /// worker / (stage + worker): fraction of the full commit cost hidden
  /// from the elimination loop (0 in sync runs).
  double overlap_fraction = 0.0;
  /// Dirty-stripe footprint of the commits in this run (1.0 fraction =
  /// full-footprint epochs; less after incremental mark_dirty annotation).
  std::size_t dirty_bytes_last = 0;   ///< bytes encoded by the last commit
  std::size_t dirty_bytes_total = 0;  ///< summed over all commits
  double dirty_fraction_last = 1.0;
  double dirty_fraction_mean = 1.0;
};

/// Collective over `world`. Failpoints: protocol-internal "ckpt.*" plus
/// "hpl.panel" (after every panel) and "hpl.done" (before verification).
SktHplResult run_skt_hpl(mpi::Comm& world, const SktHplConfig& config);

}  // namespace skt::hpl
