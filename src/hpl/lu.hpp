// Distributed dense LU with partial pivoting on the augmented system
// [A | b] — the computational core of HPL (Section 5.1 of the paper):
//
//   generate     — fill the local blocks from the stateless hashed
//                  generator (HPL's fixed-seed random matrix);
//   lu_factorize — right-looking panel LU with row pivoting; a boundary
//                  hook fires after every panel so SKT-HPL can checkpoint
//                  at elimination-loop boundaries (Fig. 9);
//   back_substitute — distributed block back substitution producing the
//                  replicated solution x;
//   verify       — HPL's scaled residual, recomputed against the
//                  regenerated A so it works after any restart.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hpl/dist_matrix.hpp"
#include "mpi/comm.hpp"
#include "mpi/grid.hpp"

namespace skt::hpl {

/// Fill the local part of [A | b]: element (i, j) = hash(seed, i, j),
/// column N being b. Deterministic and location-independent.
void generate(DistMatrix& a, std::uint64_t seed);

/// Called after panel k completes (all collectives quiesced). Returning
/// false aborts factorization early (unused by HPL; available for tests).
using PanelHook = std::function<bool(std::int64_t next_panel)>;

/// Panel broadcast algorithm (HPL's BCAST tunable): binomial tree (low
/// latency) or pipelined increasing-ring (bandwidth-friendly for wide
/// panels). Both deliver identical bytes, so results are bit-equal.
enum class PanelBcast { kBinomial, kRing };

/// Eliminate columns [start_panel*nb, N) of the N x (N+1) augmented
/// matrix. All ranks of the grid must call collectively. Pivoting swaps
/// full trailing rows (including b); columns left of the current panel are
/// not swapped — the stored L is permuted, which back substitution never
/// reads. Throws std::runtime_error on a zero pivot.
///
/// When `pivot_values` is non-null it is extended with U(j,j) for every
/// eliminated column j, replicated on all ranks (ABFT's unscaled-L
/// correction needs them). Only meaningful with start_panel == 0 unless
/// the caller persisted earlier entries.
void lu_factorize(mpi::Grid& grid, DistMatrix& a, std::int64_t n, std::int64_t start_panel,
                  const PanelHook& hook = {}, std::vector<double>* pivot_values = nullptr,
                  PanelBcast panel_bcast = PanelBcast::kBinomial);

/// Solve U x = y (y = transformed b in column N). Returns the full
/// solution vector replicated on every rank. `world` is the grid's parent
/// communicator, used for the final replication.
std::vector<double> back_substitute(mpi::Comm& world, mpi::Grid& grid, DistMatrix& a,
                                    std::int64_t n);

struct Residual {
  double r_inf = 0.0;       ///< ||Ax - b||_inf
  double a_inf = 0.0;       ///< ||A||_inf
  double b_inf = 0.0;       ///< ||b||_inf
  double x_inf = 0.0;       ///< ||x||_inf
  double scaled = 0.0;      ///< HPL's scaled residual
  bool pass = false;        ///< scaled < 16 (HPL's acceptance threshold)
};

/// Recompute the HPL residual ||Ax-b|| / (eps (||A|| ||x|| + ||b||) N)
/// against the regenerated matrix. Collective over `world`.
Residual verify(mpi::Comm& world, const DistMatrix& a, std::int64_t n, std::uint64_t seed,
                const std::vector<double>& x);

/// HPL's flop count for factor + solve of an N x N system.
[[nodiscard]] constexpr double hpl_flops(std::int64_t n) {
  const double dn = static_cast<double>(n);
  return 2.0 / 3.0 * dn * dn * dn + 3.0 / 2.0 * dn * dn;
}

}  // namespace skt::hpl
