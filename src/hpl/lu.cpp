#include "hpl/lu.hpp"

#include <cfloat>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "hpl/blas.hpp"
#include "telemetry/trace.hpp"
#include "util/rng.hpp"

namespace skt::hpl {
namespace {

constexpr mpi::Tag kTagSwap = 101;
constexpr mpi::Tag kTagYToDiag = 102;
constexpr mpi::Tag kTagXToStore = 103;
constexpr mpi::Tag kTagPartial = 104;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// Swap global rows j and r over local columns [lc0, lc1) within this
/// rank's process column. Only the two owner process rows act; both ends
/// of the exchange share the same local column range because column
/// distribution is independent of the process row.
void swap_rows_range(mpi::Grid& grid, DistMatrix& a, std::int64_t j, std::int64_t r,
                     std::int64_t lc0, std::int64_t lc1) {
  if (j == r || lc1 <= lc0) return;
  const int pa = a.rows().owner(j);
  const int pb = a.rows().owner(r);
  const int me = grid.prow();
  const std::int64_t len = lc1 - lc0;
  if (pa == pb) {
    if (me == pa) {
      blas::swap_rows(len, &a.at(a.rows().local(j), lc0), &a.at(a.rows().local(r), lc0));
    }
    return;
  }
  if (me == pa) {
    double* rowj = &a.at(a.rows().local(j), lc0);
    const std::vector<double> tmp(rowj, rowj + len);
    grid.col().sendrecv<double>(pb, kTagSwap, tmp, pb, kTagSwap,
                                std::span<double>(rowj, static_cast<std::size_t>(len)));
  } else if (me == pb) {
    double* rowr = &a.at(a.rows().local(r), lc0);
    const std::vector<double> tmp(rowr, rowr + len);
    grid.col().sendrecv<double>(pa, kTagSwap, tmp, pa, kTagSwap,
                                std::span<double>(rowr, static_cast<std::size_t>(len)));
  }
}

/// Factor the w-wide panel starting at global column j0. Collective over
/// the owning process column's col communicator.
void factor_panel(mpi::Grid& grid, DistMatrix& a, std::int64_t j0, std::int64_t w,
                  std::vector<std::int64_t>& piv, std::vector<double>& pivvals) {
  const BlockCyclicDim& rows = a.rows();
  const int pr = grid.prow();
  const std::int64_t lc_panel = a.cols().local(j0);

  for (std::int64_t jj = 0; jj < w; ++jj) {
    const std::int64_t j = j0 + jj;

    // Pivot search: largest |A(i, j)| over global rows i >= j.
    mpi::ValueLoc best{-1.0, std::numeric_limits<std::int64_t>::max()};
    for (std::int64_t li = rows.local_lower_bound(pr, j); li < a.lrows(); ++li) {
      const double v = std::abs(a.at(li, lc_panel + jj));
      if (v > best.value) best = {v, rows.global(pr, li)};
    }
    const mpi::ValueLoc winner = grid.col().allreduce_value(best, mpi::MaxLoc{});
    if (winner.index < 0 || winner.value == 0.0) {
      throw std::runtime_error("lu_factorize: zero pivot at column " + std::to_string(j));
    }
    piv[static_cast<std::size_t>(jj)] = winner.index;

    // Swap rows j <-> pivot within the panel columns.
    swap_rows_range(grid, a, j, winner.index, lc_panel, lc_panel + w);

    // Broadcast the pivot row segment [j .. j0+w) down the column.
    std::vector<double> rowj(static_cast<std::size_t>(w - jj));
    const int owner_j = rows.owner(j);
    if (pr == owner_j) {
      std::memcpy(rowj.data(), &a.at(rows.local(j), lc_panel + jj),
                  rowj.size() * sizeof(double));
    }
    grid.col().bcast<double>(owner_j, rowj);
    const double pivot = rowj[0];
    pivvals[static_cast<std::size_t>(jj)] = pivot;

    // Scale the multipliers and apply the rank-1 update to the rest of
    // the panel.
    for (std::int64_t li = rows.local_lower_bound(pr, j + 1); li < a.lrows(); ++li) {
      double& lval = a.at(li, lc_panel + jj);
      lval /= pivot;
      const double l = lval;
      double* arow = &a.at(li, lc_panel + jj + 1);
      for (std::int64_t cc = 1; cc < w - jj; ++cc) arow[cc - 1] -= l * rowj[static_cast<std::size_t>(cc)];
    }
  }
}

}  // namespace

void generate(DistMatrix& a, std::uint64_t seed) {
  for (std::int64_t li = 0; li < a.lrows(); ++li) {
    const auto gi = static_cast<std::uint64_t>(a.rows().global(a.prow(), li));
    double* row = a.row_ptr(li);
    for (std::int64_t lj = 0; lj < a.lcols(); ++lj) {
      const auto gj = static_cast<std::uint64_t>(a.cols().global(a.pcol(), lj));
      row[lj] = util::element_value(seed, gi, gj);
    }
  }
}

void lu_factorize(mpi::Grid& grid, DistMatrix& a, std::int64_t n, std::int64_t start_panel,
                  const PanelHook& hook, std::vector<double>* pivot_values,
                  PanelBcast panel_bcast) {
  const std::int64_t nb = a.rows().nb();
  if (a.cols().nb() != nb) throw std::invalid_argument("lu_factorize: row/col nb must match");
  if (a.cols().n() < n + 1) {
    throw std::invalid_argument("lu_factorize: matrix must be augmented (>= n+1 columns)");
  }
  const std::int64_t nblk = ceil_div(n, nb);
  const int pr = grid.prow();
  const int pc = grid.pcol();

  for (std::int64_t k = start_panel; k < nblk; ++k) {
    const std::int64_t j0 = k * nb;
    const std::int64_t w = std::min(nb, n - j0);
    const int pcolk = static_cast<int>(k % grid.Q());
    const int prowk = static_cast<int>(k % grid.P());

    SKT_SPAN("hpl.iteration");

    // (a) Panel factorization within the owning process column.
    std::vector<std::int64_t> piv(static_cast<std::size_t>(w));
    std::vector<double> pivvals(static_cast<std::size_t>(w));
    {
      SKT_SPAN("hpl.panel");
      if (pc == pcolk) factor_panel(grid, a, j0, w, piv, pivvals);
    }

    // (b) Pivot list (and, when requested, pivot values) to every column.
    grid.row().bcast<std::int64_t>(pcolk, piv);
    if (pivot_values != nullptr) {
      grid.row().bcast<double>(pcolk, pivvals);
      pivot_values->resize(static_cast<std::size_t>(j0 + w));
      std::memcpy(pivot_values->data() + j0, pivvals.data(),
                  static_cast<std::size_t>(w) * sizeof(double));
    }

    // (c) Apply the swaps to the rest of the row — both the columns left
    // of the panel (the stored L, as HPL's laswp does; ABFT's row-sum
    // invariant depends on whole rows moving together) and the trailing
    // columns (b and any checksum columns included).
    const std::int64_t lc_left = a.cols().local_lower_bound(pc, j0);
    const std::int64_t lc1 = a.cols().local_lower_bound(pc, j0 + w);
    for (std::int64_t jj = 0; jj < w; ++jj) {
      swap_rows_range(grid, a, j0 + jj, piv[static_cast<std::size_t>(jj)], 0, lc_left);
      swap_rows_range(grid, a, j0 + jj, piv[static_cast<std::size_t>(jj)], lc1, a.lcols());
    }

    // (d) Broadcast the factored panel strip along process rows. Every
    // rank in a process row shares the same local row structure, so the
    // buffer size agrees without negotiation.
    const std::int64_t li0 = a.rows().local_lower_bound(pr, j0);
    const std::int64_t strip_rows = a.lrows() - li0;
    std::vector<double> strip(static_cast<std::size_t>(strip_rows * w));
    if (pc == pcolk && strip_rows > 0) {
      const std::int64_t lcp = a.cols().local(j0);
      for (std::int64_t i = 0; i < strip_rows; ++i) {
        std::memcpy(&strip[static_cast<std::size_t>(i * w)], &a.at(li0 + i, lcp),
                    static_cast<std::size_t>(w) * sizeof(double));
      }
    }
    if (!strip.empty()) {
      if (panel_bcast == PanelBcast::kRing) {
        grid.row().bcast_pipeline<double>(pcolk, strip);
      } else {
        grid.row().bcast<double>(pcolk, strip);
      }
    }

    // (e) U12 = L11^{-1} A12 on the diagonal-block process row, then
    // broadcast it down the columns.
    const std::int64_t tc = a.lcols() - lc1;
    std::vector<double> u12(static_cast<std::size_t>(w * tc));
    if (pr == prowk && tc > 0) {
      const std::int64_t lr0 = a.rows().local(j0);
      for (std::int64_t i = 0; i < w; ++i) {
        std::memcpy(&u12[static_cast<std::size_t>(i * tc)], &a.at(lr0 + i, lc1),
                    static_cast<std::size_t>(tc) * sizeof(double));
      }
      // L11 sits in the first w rows of the strip (its owner's local rows
      // start exactly at global row j0).
      blas::trsm_lower_unit(w, tc, strip.data(), w, u12.data(), tc);
      for (std::int64_t i = 0; i < w; ++i) {
        std::memcpy(&a.at(lr0 + i, lc1), &u12[static_cast<std::size_t>(i * tc)],
                    static_cast<std::size_t>(tc) * sizeof(double));
      }
    }
    if (!u12.empty()) grid.col().bcast<double>(prowk, u12);

    // (f) Trailing update A22 -= L21 U12.
    const std::int64_t li1 = a.rows().local_lower_bound(pr, j0 + w);
    const std::int64_t tr = a.lrows() - li1;
    if (tr > 0 && tc > 0) {
      SKT_SPAN("hpl.update");
      const double* l21 = strip.data() + static_cast<std::size_t>((li1 - li0) * w);
      blas::gemm_minus(tr, tc, w, l21, w, u12.data(), tc, &a.at(li1, lc1), a.ld());
    }

    if (hook && !hook(k + 1)) return;
  }
}

std::vector<double> back_substitute(mpi::Comm& world, mpi::Grid& grid, DistMatrix& a,
                                    std::int64_t n) {
  const BlockCyclicDim& rows = a.rows();
  const BlockCyclicDim& cols = a.cols();
  const std::int64_t nb = rows.nb();
  const int pr = grid.prow();
  const int pc = grid.pcol();
  const int qb = cols.owner(n);          // process column holding y/x (column N)
  const std::int64_t lcN = cols.local(n);  // meaningful when pc == qb
  const std::int64_t nblk = ceil_div(n, nb);

  for (std::int64_t kb = nblk - 1; kb >= 0; --kb) {
    const std::int64_t r0 = kb * nb;
    const std::int64_t w = std::min(nb, n - r0);
    const int prb = rows.owner(r0);
    const int pcb = cols.owner(r0);

    std::vector<double> xk(static_cast<std::size_t>(w));
    if (pr == prb) {
      const std::int64_t lr0 = rows.local(r0);
      if (pc == qb) {
        for (std::int64_t i = 0; i < w; ++i) xk[static_cast<std::size_t>(i)] = a.at(lr0 + i, lcN);
        if (qb != pcb) grid.row().send<double>(pcb, kTagYToDiag, xk);
      }
      if (pc == pcb) {
        if (qb != pcb) grid.row().recv<double>(qb, kTagYToDiag, xk);
        blas::trsv_upper(w, &a.at(lr0, cols.local(r0)), a.ld(), xk.data());
        if (qb != pcb) grid.row().send<double>(qb, kTagXToStore, xk);
      }
      if (pc == qb) {
        if (qb != pcb) grid.row().recv<double>(pcb, kTagXToStore, xk);
        for (std::int64_t i = 0; i < w; ++i) a.at(lr0 + i, lcN) = xk[static_cast<std::size_t>(i)];
      }
    }

    // Everyone in the diagonal block's process column needs x_kb for the
    // partial updates of the rows above.
    if (pc == pcb) grid.col().bcast<double>(prb, xk);

    const std::int64_t li_end = rows.local_lower_bound(pr, r0);
    if (pc == pcb) {
      std::vector<double> z(static_cast<std::size_t>(li_end), 0.0);
      const std::int64_t lc0 = cols.local(r0);
      for (std::int64_t li = 0; li < li_end; ++li) {
        double acc = 0.0;
        for (std::int64_t c = 0; c < w; ++c) acc += a.at(li, lc0 + c) * xk[static_cast<std::size_t>(c)];
        z[static_cast<std::size_t>(li)] = acc;
      }
      if (pcb == qb) {
        for (std::int64_t li = 0; li < li_end; ++li) a.at(li, lcN) -= z[static_cast<std::size_t>(li)];
      } else {
        grid.row().send<double>(qb, kTagPartial, z);
      }
    }
    if (pc == qb && pcb != qb) {
      std::vector<double> z(static_cast<std::size_t>(li_end));
      grid.row().recv<double>(pcb, kTagPartial, z);
      for (std::int64_t li = 0; li < li_end; ++li) a.at(li, lcN) -= z[static_cast<std::size_t>(li)];
    }
  }

  // Replicate x on every rank.
  std::vector<double> partial(static_cast<std::size_t>(n), 0.0);
  if (pc == qb) {
    for (std::int64_t li = 0; li < a.lrows(); ++li) {
      const std::int64_t gi = rows.global(pr, li);
      if (gi < n) partial[static_cast<std::size_t>(gi)] = a.at(li, lcN);
    }
  }
  std::vector<double> x(static_cast<std::size_t>(n));
  world.allreduce<double>(partial, x, mpi::Sum{});
  return x;
}

Residual verify(mpi::Comm& world, const DistMatrix& a, std::int64_t n, std::uint64_t seed,
                const std::vector<double>& x) {
  if (static_cast<std::int64_t>(x.size()) != n) {
    throw std::invalid_argument("verify: x must have n entries");
  }
  // Partial residual r = -A x and row-wise |A| sums over this rank's
  // original (regenerated) elements; one combined reduction.
  std::vector<double> partial(static_cast<std::size_t>(2 * n), 0.0);
  const std::span<double> r(partial.data(), static_cast<std::size_t>(n));
  const std::span<double> rowsum(partial.data() + n, static_cast<std::size_t>(n));
  for (std::int64_t li = 0; li < a.lrows(); ++li) {
    const std::int64_t gi = a.rows().global(a.prow(), li);
    double acc = 0.0;
    double asum = 0.0;
    for (std::int64_t lj = 0; lj < a.lcols(); ++lj) {
      const std::int64_t gj = a.cols().global(a.pcol(), lj);
      if (gj >= n) continue;
      const double val = util::element_value(seed, static_cast<std::uint64_t>(gi),
                                             static_cast<std::uint64_t>(gj));
      acc += val * x[static_cast<std::size_t>(gj)];
      asum += std::abs(val);
    }
    r[static_cast<std::size_t>(gi)] -= acc;
    rowsum[static_cast<std::size_t>(gi)] += asum;
  }
  std::vector<double> reduced(partial.size());
  world.allreduce<double>(partial, reduced, mpi::Sum{});

  Residual res;
  for (std::int64_t i = 0; i < n; ++i) {
    const double b = util::element_value(seed, static_cast<std::uint64_t>(i),
                                         static_cast<std::uint64_t>(n));
    const double ri = std::abs(reduced[static_cast<std::size_t>(i)] + b);
    res.r_inf = std::max(res.r_inf, ri);
    res.a_inf = std::max(res.a_inf, reduced[static_cast<std::size_t>(n + i)]);
    res.b_inf = std::max(res.b_inf, std::abs(b));
  }
  for (double v : x) res.x_inf = std::max(res.x_inf, std::abs(v));
  const double denom =
      DBL_EPSILON * (res.a_inf * res.x_inf + res.b_inf) * static_cast<double>(n);
  res.scaled = denom > 0 ? res.r_inf / denom : std::numeric_limits<double>::infinity();
  res.pass = res.scaled < 16.0;
  return res;
}

}  // namespace skt::hpl
