// ABFT-HPL baseline: checksum-augmented LU (Huang & Abraham / Yao et al.).
//
// The augmented system is [A | b | s] with s_i = sum_j A(i,j) + b_i. Row
// operations preserve the row-sum invariant, so corruption of the trailing
// matrix is detectable by re-summing — the classic algorithm-based fault
// tolerance for LU. The paper's point, which this repo reproduces in
// bench/table03: ABFT detects and can correct data errors while MPI keeps
// running, but a powered-off node aborts the whole MPI job and ABFT holds
// no persistent state, so it CANNOT recover from a real node loss.
#pragma once

#include <cstdint>

#include "hpl/driver.hpp"
#include "mpi/comm.hpp"

namespace skt::hpl {

struct AbftConfig {
  HplConfig hpl;
  /// Verify the row-sum invariant after every this many panels (the
  /// detection overhead ABFT pays); 0 disables checks.
  std::int64_t verify_every_panels = 4;
  /// Relative tolerance for the invariant (grows with accumulated
  /// floating-point error, scaled internally by n).
  double tolerance = 1e-9;
};

struct AbftResult {
  HplResult hpl;
  int checks = 0;          ///< invariant verifications performed
  bool checksum_ok = true; ///< all checks passed
};

/// Collective over `world`.
AbftResult run_abft_hpl(mpi::Comm& world, const AbftConfig& config);

}  // namespace skt::hpl
