// Minimal dense kernels (row-major, explicit leading dimension) backing
// the HPL substrate. Single-threaded per rank — parallelism comes from the
// process grid, exactly as in HPL itself.
#pragma once

#include <cstddef>
#include <cstdint>

namespace skt::hpl::blas {

/// C[m x n] -= A[m x k] * B[k x n]  (the trailing-matrix update).
/// Blocked over k and j with an unrolled inner loop; this is the kernel
/// whose throughput defines the "theoretical peak" of a simulated node.
void gemm_minus(std::int64_t m, std::int64_t n, std::int64_t k, const double* a,
                std::int64_t lda, const double* b, std::int64_t ldb, double* c,
                std::int64_t ldc);

/// Solve L X = B in place where L[m x m] is UNIT lower triangular;
/// B is m x n (the U12 panel update).
void trsm_lower_unit(std::int64_t m, std::int64_t n, const double* l, std::int64_t ldl,
                     double* b, std::int64_t ldb);

/// Solve U x = y in place where U[m x m] is upper triangular (non-unit),
/// y is a length-m vector (diagonal-block solve in back substitution).
void trsv_upper(std::int64_t m, const double* u, std::int64_t ldu, double* y);

/// y[0..m) -= A[m x n] * x[0..n)   (back-substitution partial updates).
void gemv_minus(std::int64_t m, std::int64_t n, const double* a, std::int64_t lda,
                const double* x, double* y);

/// Index of the element with the largest |value| in x[0..n) (stride 1);
/// -1 for n == 0.
[[nodiscard]] std::int64_t iamax(std::int64_t n, const double* x);

/// Swap two length-n rows.
void swap_rows(std::int64_t n, double* a, double* b);

/// x[0..n) *= alpha.
void scal(std::int64_t n, double alpha, double* x);

}  // namespace skt::hpl::blas
