// A dense matrix distributed 2-D block-cyclically over a process grid.
//
// Storage is EXTERNAL: the caller hands in the local buffer, because in
// SKT-HPL the local matrix must live inside the checkpoint protocol's
// SHM-resident data() region (the self-checkpoint's A1). Row-major local
// layout with ld == local_cols.
#pragma once

#include <span>
#include <stdexcept>

#include "hpl/block_cyclic.hpp"
#include "mpi/grid.hpp"

namespace skt::hpl {

class DistMatrix {
 public:
  DistMatrix(mpi::Grid& grid, std::int64_t global_rows, std::int64_t global_cols,
             std::int64_t nb, std::span<double> storage)
      : rows_(global_rows, nb, grid.P()),
        cols_(global_cols, nb, grid.Q()),
        prow_(grid.prow()),
        pcol_(grid.pcol()),
        lrows_(rows_.count(grid.prow())),
        lcols_(cols_.count(grid.pcol())),
        data_(storage) {
    if (storage.size() < static_cast<std::size_t>(lrows_ * lcols_)) {
      throw std::invalid_argument("DistMatrix: storage too small for local block");
    }
  }

  /// Local doubles needed on grid position (prow, pcol).
  [[nodiscard]] static std::int64_t local_elements(std::int64_t global_rows,
                                                   std::int64_t global_cols, std::int64_t nb,
                                                   int P, int Q, int prow, int pcol) {
    return BlockCyclicDim(global_rows, nb, P).count(prow) *
           BlockCyclicDim(global_cols, nb, Q).count(pcol);
  }

  /// Upper bound of local doubles over all grid positions (for sizing a
  /// uniform per-rank allocation).
  [[nodiscard]] static std::int64_t max_local_elements(std::int64_t global_rows,
                                                       std::int64_t global_cols,
                                                       std::int64_t nb, int P, int Q) {
    std::int64_t best = 0;
    for (int p = 0; p < P; ++p) {
      for (int q = 0; q < Q; ++q) {
        const std::int64_t e = local_elements(global_rows, global_cols, nb, P, Q, p, q);
        if (e > best) best = e;
      }
    }
    return best;
  }

  [[nodiscard]] const BlockCyclicDim& rows() const { return rows_; }
  [[nodiscard]] const BlockCyclicDim& cols() const { return cols_; }
  [[nodiscard]] std::int64_t lrows() const { return lrows_; }
  [[nodiscard]] std::int64_t lcols() const { return lcols_; }
  [[nodiscard]] std::int64_t ld() const { return lcols_; }
  [[nodiscard]] int prow() const { return prow_; }
  [[nodiscard]] int pcol() const { return pcol_; }

  [[nodiscard]] double& at(std::int64_t li, std::int64_t lj) {
    return data_[static_cast<std::size_t>(li * lcols_ + lj)];
  }
  [[nodiscard]] double at(std::int64_t li, std::int64_t lj) const {
    return data_[static_cast<std::size_t>(li * lcols_ + lj)];
  }
  [[nodiscard]] double* row_ptr(std::int64_t li) {
    return data_.data() + static_cast<std::size_t>(li * lcols_);
  }
  [[nodiscard]] std::span<double> local() { return data_.subspan(0, static_cast<std::size_t>(lrows_ * lcols_)); }

 private:
  BlockCyclicDim rows_;
  BlockCyclicDim cols_;
  int prow_;
  int pcol_;
  std::int64_t lrows_;
  std::int64_t lcols_;
  std::span<double> data_;
};

}  // namespace skt::hpl
