#include "ckpt/scrubber.hpp"

#include <chrono>
#include <cstring>

#include "telemetry/metrics.hpp"
#include "util/crc32c.hpp"

namespace skt::ckpt {
namespace {

std::size_t chunk_count(std::size_t bytes, std::size_t chunk) {
  return (bytes + chunk - 1) / chunk;
}

std::span<std::byte> chunk_of(std::span<std::byte> region, std::size_t index,
                              std::size_t chunk) {
  const std::size_t begin = index * chunk;
  return region.subspan(begin, std::min(chunk, region.size() - begin));
}

}  // namespace

Scrubber::Scrubber(CheckpointProtocol& protocol) : Scrubber(protocol, Options{}) {}

Scrubber::Scrubber(CheckpointProtocol& protocol, Options options)
    : protocol_(protocol), options_(options) {
  if (options_.chunk_bytes == 0) options_.chunk_bytes = 4096;
}

Scrubber::~Scrubber() { stop(); }

void Scrubber::start() {
  std::lock_guard lock(thread_mutex_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { thread_loop(); });
}

void Scrubber::stop() {
  {
    std::lock_guard lock(thread_mutex_);
    if (!running_) return;
    stop_ = true;
  }
  thread_cv_.notify_all();
  thread_.join();
  std::lock_guard lock(thread_mutex_);
  running_ = false;
}

void Scrubber::thread_loop() {
  std::unique_lock lock(thread_mutex_);
  while (!stop_) {
    thread_cv_.wait_for(lock, std::chrono::duration<double>(options_.interval_s),
                        [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    run_pass(/*blocking=*/false);
    lock.lock();
  }
}

ScrubStats Scrubber::scrub_now() { return run_pass(/*blocking=*/true); }

ScrubStats Scrubber::run_pass(bool blocking) {
  static telemetry::Counter& c_passes = telemetry::metrics().counter("scrub.passes");
  static telemetry::Counter& c_chunks =
      telemetry::metrics().counter("scrub.chunks_verified");
  static telemetry::Counter& c_detected =
      telemetry::metrics().counter("scrub.corruption_detected");
  static telemetry::Counter& c_repaired = telemetry::metrics().counter("scrub.repaired");
  static telemetry::Counter& c_unrepaired =
      telemetry::metrics().counter("scrub.unrepaired");

  // One pass at a time: scrub_now must not interleave with a cadence tick
  // now that the exclusion lock is released between chunks.
  std::lock_guard pass_guard(pass_mutex_);

  ScrubStats delta;
  // The spans in the view (base pointers, lengths) are fixed while the
  // protocol is open; only their *contents* move under a commit, so the
  // list itself can be fetched without the exclusion lock.
  const std::vector<ScrubRegion> view = protocol_.scrub_view();
  const std::size_t chunk = options_.chunk_bytes;

  // Per-chunk acquisition: a commit arriving mid-pass waits for at most one
  // chunk CRC. The cadence thread only try-locks (it must never delay a
  // commit); scrub_now blocks so tests get a deterministic full pass.
  const auto acquire = [&] {
    std::unique_lock g(exclusion_, std::defer_lock);
    if (blocking) {
      g.lock();
    } else {
      (void)g.try_lock();
    }
    return g;
  };

  std::uint64_t epoch = 0;
  {
    const std::unique_lock g = acquire();
    if (!g.owns_lock()) return delta;  // commit in flight: skip this tick
    epoch = protocol_.committed_epoch();
  }

  const bool capture = epoch != baseline_epoch_ || regions_.size() != view.size();
  if (capture) {
    // The buffers were just legitimately rewritten (or this is the first
    // pass): capture fresh baselines instead of verifying.
    regions_.assign(view.size(), {});
  }

  bool aborted = false;
  for (std::size_t r = 0; r < view.size() && !aborted; ++r) {
    const ScrubRegion& region = view[r];
    const std::size_t chunks = capture ? chunk_count(region.bytes.size(), chunk)
                                       : regions_[r].baseline.size();
    if (capture) regions_[r].baseline.resize(chunks);
    for (std::size_t i = 0; i < chunks; ++i) {
      const std::unique_lock g = acquire();
      if (!g.owns_lock() || protocol_.committed_epoch() != epoch) {
        // A commit overtook the pass — the bytes under scan were (or are
        // being) legitimately rewritten. Abandon the pass; the next one
        // recaptures baselines for the new epoch.
        aborted = true;
        break;
      }
      const std::span<std::byte> bytes = chunk_of(region.bytes, i, chunk);
      if (capture) {
        regions_[r].baseline[i] = util::crc32c(bytes);
        continue;
      }
      ++delta.chunks_verified;
      if (util::crc32c(bytes) == regions_[r].baseline[i]) continue;
      ++delta.corruption_detected;
      bool repaired = false;
      if (region.mirror.size() == region.bytes.size()) {
        // Trust the mirror only if it still matches the sealed baseline —
        // a double flip hitting both twins must not "repair" one corrupt
        // copy from the other.
        const std::span<std::byte> twin = chunk_of(region.mirror, i, chunk);
        if (util::crc32c(twin) == regions_[r].baseline[i]) {
          std::memcpy(bytes.data(), twin.data(), bytes.size());
          repaired = true;
        }
      }
      if (repaired) {
        ++delta.repaired;
      } else {
        ++delta.unrepaired;
      }
    }
  }

  if (aborted) {
    // A half-captured baseline set must never be verified against: force
    // the next pass to recapture from scratch.
    if (capture) {
      regions_.clear();
      baseline_epoch_ = ~std::uint64_t{0};
    }
  } else {
    if (capture) baseline_epoch_ = epoch;
    delta.passes = 1;
    c_passes.increment();
  }

  // Verification done before an abort still counts — every chunk was
  // checked (and repaired) under the lock at a consistent epoch.
  c_chunks.add(delta.chunks_verified);
  c_detected.add(delta.corruption_detected);
  c_repaired.add(delta.repaired);
  c_unrepaired.add(delta.unrepaired);
  std::lock_guard lock(stats_mutex_);
  stats_.passes += delta.passes;
  stats_.chunks_verified += delta.chunks_verified;
  stats_.corruption_detected += delta.corruption_detected;
  stats_.repaired += delta.repaired;
  stats_.unrepaired += delta.unrepaired;
  return delta;
}

ScrubStats Scrubber::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

}  // namespace skt::ckpt
