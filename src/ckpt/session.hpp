// ckpt::Session — the front door of the checkpoint library.
//
// A Session bundles everything an application previously wired by hand:
// the encoding-group communicator (split from world by group size), the
// concrete CheckpointProtocol (built through the make_protocol SPI,
// optionally wrapped in MultiLevelCheckpoint), restore-on-open, commit
// telemetry, and — in CommitMode::kAsync — the background commit pipeline.
//
//   auto session = ckpt::SessionBuilder{}
//                      .strategy(ckpt::Strategy::kSelf)
//                      .data_bytes(n)
//                      .user_bytes(sizeof(State))
//                      .mode(ckpt::CommitMode::kAsync)
//                      .build(world);
//   if (session.open() == ckpt::OpenOutcome::kRestored) { ...resume... }
//   ...mutate session.data()...
//   session.commit_async();   // critical path pays only the stage copy
//
// open() performs the restore itself: on a restart it rebuilds
// data()/user_state() from the newest consistent checkpoint and returns
// kRestored; the caller never sequences open/restore by hand.
//
// commit() and commit_async() are collective over the world communicator
// the Session was built from. In async mode at most ONE epoch is in
// flight: a second commit_async() first waits out the previous ticket
// (bounded staleness), and the destructor drains any in-flight commit
// before tearing the worker down.
//
// Multi-tenant operation: pointing the builder at a StoreService and a
// registered tenant (.service(&svc).tenant("hpl-a")) namespaces every
// segment and vault key under "ns/<tenant>/", owner-tags the segments so
// cross-tenant collisions fail loudly, admits the session against the
// tenant's quota BEFORE any segment is allocated (open() throws
// QuotaExceeded / AdmissionTimeout with nothing created), and routes all
// commits — sync and async — through the service's fair-share turnstile.
//
// Every builder misconfiguration throws ckpt::ConfigError (errors.hpp)
// carrying the offending field name; runtime misuse of a correctly built
// Session (commit before open, double open) stays std::logic_error.
//
// Strategy authors and embedders who need the raw state machine can still
// reach the SPI through unsafe_protocol(); see protocol.hpp for that
// contract.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "ckpt/async_engine.hpp"
#include "ckpt/errors.hpp"
#include "ckpt/factory.hpp"
#include "ckpt/protocol.hpp"
#include "ckpt/scrubber.hpp"
#include "ckpt/store_service.hpp"
#include "mpi/comm.hpp"

namespace skt::ckpt {

enum class CommitMode {
  kSync,   ///< commit() runs the full state machine on the calling thread
  kAsync,  ///< commit_async() stages locally; a worker thread encodes/flushes
};

enum class OpenOutcome {
  kFresh,     ///< no committed checkpoint anywhere; caller initializes data
  kRestored,  ///< data()/user_state() rebuilt from the newest checkpoint
};

class Session;

/// Fluent configuration for a Session. build() is collective (it splits
/// the encoding-group communicator off `world`), so every rank must call
/// it with identical settings.
class SessionBuilder {
 public:
  SessionBuilder& strategy(Strategy s) { strategy_ = s; return *this; }
  SessionBuilder& data_bytes(std::size_t n) { params_.data_bytes = n; return *this; }
  SessionBuilder& user_bytes(std::size_t n) { params_.user_bytes = n; return *this; }
  SessionBuilder& codec(enc::CodecKind c) { params_.codec = c; return *this; }
  /// Group-coded strategies: 1 = single erasure (default); m >= 2 keeps
  /// RS(k, m) wide-stripe parity so each group survives m concurrent
  /// losses. Requires group size >= m + 2.
  SessionBuilder& parity_degree(int d) { params_.parity_degree = d; return *this; }
  SessionBuilder& key_prefix(std::string p) { params_.key_prefix = std::move(p); return *this; }
  /// Durable store; required for Strategy::kBlcr and level2_flush_every.
  /// Accepts any Vault (SnapshotVault, or ShardedVault for a durable tier
  /// spread across node-local shards).
  SessionBuilder& vault(storage::Vault* v) { params_.vault = v; return *this; }
  SessionBuilder& device(storage::DeviceProfile d) { params_.device = d; return *this; }
  /// Ranks per encoding group (0 = one job-wide group). Must divide the
  /// world size.
  SessionBuilder& group_size(int n) { group_size_ = n; return *this; }
  /// Hand the Session a pre-built encoding-group communicator (e.g. a
  /// topology-aware one from ckpt::make_group_comm) instead of the plain
  /// rank/group_size split. The Session takes the communicator over; the
  /// caller must not keep using another handle to it.
  SessionBuilder& group(mpi::Comm g) { group_ = std::move(g); return *this; }
  SessionBuilder& mode(CommitMode m) { mode_ = m; return *this; }
  /// > 0 wraps the strategy in MultiLevelCheckpoint flushing to the vault
  /// every N commits (SCR/FTI-style level 2).
  SessionBuilder& level2_flush_every(int n) { level2_flush_every_ = n; return *this; }
  /// > 0 starts a background scrubber on open(): a low-priority thread
  /// re-verifying the CRC32C of every sealed checkpoint buffer each
  /// `seconds`, repairing mirror-backed corruption in place (scrubber.hpp).
  SessionBuilder& scrub_interval(double seconds) { scrub_interval_s_ = seconds; return *this; }
  /// Open against a shared StoreService (must outlive the Session). Pairs
  /// with tenant(): both or neither.
  SessionBuilder& service(StoreService* s) { service_ = s; return *this; }
  /// The service namespace this session belongs to; must be registered
  /// with the StoreService. Keys gain the "ns/<tenant>/" prefix, open()
  /// admits against the tenant quota, commits take fair-share slots.
  SessionBuilder& tenant(std::string name) { tenant_ = std::move(name); return *this; }

  /// Collective. `world` must outlive the Session. Every misconfiguration
  /// throws ConfigError naming the bad field.
  [[nodiscard]] Session build(mpi::Comm& world) const;

 private:
  Strategy strategy_ = Strategy::kSelf;
  FactoryParams params_;
  int group_size_ = 0;
  std::optional<mpi::Comm> group_;
  CommitMode mode_ = CommitMode::kSync;
  int level2_flush_every_ = 0;
  double scrub_interval_s_ = 0.0;
  StoreService* service_ = nullptr;
  std::string tenant_;
};

class Session {
 public:
  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  /// Drains any in-flight async commit, then stops the worker.
  ~Session() = default;

  /// Collective. Attaches/creates the checkpoint state; on a restart it
  /// ALSO restores data()/user_state() (recording restore telemetry) and
  /// returns kRestored. Must be called exactly once, before any commit.
  OpenOutcome open();

  /// The protected working buffer / small user-state area (see
  /// CheckpointProtocol). Valid after open().
  [[nodiscard]] std::span<std::byte> data() { return protocol_->data(); }
  [[nodiscard]] std::span<std::byte> user_state() { return protocol_->user_state(); }

  /// Collective synchronous commit. In async mode this first drains the
  /// in-flight epoch, so it is safe to mix the two (e.g. a final sync
  /// commit before shutdown).
  CommitStats commit();

  /// Collective asynchronous commit (CommitMode::kAsync only). Blocks for
  /// the previous epoch if one is still in flight — at most one epoch of
  /// staleness — then stages locally and returns a ticket for the
  /// background encode+flush.
  CommitTicket commit_async();

  /// Wait for any in-flight async commit; rethrows its failure. No-op in
  /// sync mode or when idle.
  void drain();

  /// Stats of the restore open() performed, when it returned kRestored.
  [[nodiscard]] const std::optional<RestoreStats>& last_restore() const {
    return last_restore_;
  }

  [[nodiscard]] CommitMode mode() const { return mode_; }
  [[nodiscard]] Strategy strategy() const { return protocol_->strategy(); }
  [[nodiscard]] std::size_t memory_bytes() const { return protocol_->memory_bytes(); }
  /// Newest locally committed epoch. In async mode call drain() first for
  /// a settled value — the worker publishes it mid-pipeline.
  [[nodiscard]] std::uint64_t committed_epoch() const { return protocol_->committed_epoch(); }

  /// The encoding-group communicator the Session owns (split from world).
  [[nodiscard]] mpi::Comm& group() { return *group_; }

  /// Declare [offset, offset+len) of data() modified since the last
  /// commit/stage so the next commit copies and encodes only the touched
  /// stripes. Optional: protocols treat un-annotated epochs as all-dirty.
  /// No-op for strategies without a dirty tracker.
  void mark_dirty(std::size_t offset, std::size_t len) {
    if (DirtyTracker* t = protocol_->dirty_tracker()) t->mark(offset, len);
  }

  /// Mark the whole working buffer dirty (full-footprint epochs of an
  /// otherwise-annotating application).
  void mark_all_dirty() {
    if (DirtyTracker* t = protocol_->dirty_tracker()) t->mark_all();
  }

  /// SPI escape hatch: the underlying protocol, for tests and embedders
  /// that need strategy-specific calls (e.g. incremental dirty marking).
  /// "unsafe" because calls on it bypass the Session's drain/scrub/tenant
  /// sequencing — the caller owns the consequences.
  [[nodiscard]] CheckpointProtocol& unsafe_protocol() { return *protocol_; }

  [[deprecated("renamed to unsafe_protocol()")]] [[nodiscard]] CheckpointProtocol&
  protocol() {
    return unsafe_protocol();
  }

  /// The tenant namespace this session runs under ("" single-tenant).
  [[nodiscard]] const std::string& tenant() const { return tenant_; }

  /// The background scrubber, or nullptr when scrub_interval was not set.
  /// Started by open(); tests can call scrubber()->scrub_now() for a
  /// deterministic pass.
  [[nodiscard]] Scrubber* scrubber() { return scrubber_.get(); }

 private:
  friend class SessionBuilder;
  Session(mpi::Comm& world, std::unique_ptr<mpi::Comm> group,
          std::unique_ptr<CheckpointProtocol> protocol,
          std::unique_ptr<AsyncCommitEngine> engine, CommitMode mode,
          double scrub_interval_s, StoreService* service, std::string tenant,
          std::size_t admit_bytes);

  void require_open() const;
  void start_scrubber();

  /// Releases the rank's admission lease on destruction (move-safe: the
  /// holder travels with the Session).
  struct LeaseHolder {
    StoreService* service = nullptr;
    std::uint64_t id = 0;
    ~LeaseHolder() {
      if (service != nullptr && id != 0) service->release(id);
    }
  };

  mpi::Comm* world_;                             // borrowed; outlives the Session
  std::unique_ptr<mpi::Comm> group_;             // owned encoding group
  std::unique_ptr<CheckpointProtocol> protocol_;
  // Teardown order (reverse of declaration): the engine joins its worker
  // first — it borrows the scrubber's exclusion mutex and the protocol —
  // then the scrubber stops its thread, then the protocol and comms go,
  // and the admission lease is released last.
  std::unique_ptr<LeaseHolder> lease_;
  std::unique_ptr<Scrubber> scrubber_;
  std::unique_ptr<AsyncCommitEngine> engine_;
  CommitMode mode_;
  double scrub_interval_s_ = 0.0;
  StoreService* service_ = nullptr;  // borrowed; outlives the Session
  std::string tenant_;
  std::size_t admit_bytes_ = 0;  ///< per-rank estimate admitted at open()
  bool opened_ = false;
  std::optional<RestoreStats> last_restore_;
};

}  // namespace skt::ckpt
