#include "ckpt/single_checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "ckpt/epoch.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"

namespace skt::ckpt {

SingleCheckpoint::SingleCheckpoint(Params params) : params_(std::move(params)) {
  if (params_.data_bytes == 0) throw std::invalid_argument("SingleCheckpoint: data_bytes == 0");
  if (params_.user_bytes == 0) throw std::invalid_argument("SingleCheckpoint: user_bytes == 0");
  combined_bytes_ = params_.data_bytes + params_.user_bytes;
  app_.assign(params_.data_bytes, std::byte{0});
  user_.assign(params_.user_bytes, std::byte{0});
}

std::string SingleCheckpoint::key(const char* part) const {
  return params_.key_prefix + ".r" + std::to_string(world_rank_) + ".single." + part;
}

void SingleCheckpoint::require_open() const {
  if (!ckpt_b_) throw std::logic_error("SingleCheckpoint: open() has not been called");
}

bool SingleCheckpoint::open(CommCtx ctx) {
  world_rank_ = ctx.group.world_rank();
  codec_.emplace(params_.codec, combined_bytes_, ctx.group.size());
  const std::size_t stripes = codec_->padded_bytes() / codec_->layout().stripe_bytes();
  tracker_.reset(params_.data_bytes, params_.user_bytes, codec_->layout().stripe_bytes(),
                 stripes);
  if (params_.async_staging) {
    image_.assign(codec_->padded_bytes(), std::byte{0});
    staged_dirty_.assign(stripes, 1);  // image_ != committed B until proven
  }

  sim::PersistentStore& store = ctx.group.store();
  const std::string hdr_key = key("hdr");
  survivor_ = false;
  if (sim::SegmentPtr existing = store.attach(hdr_key); existing != nullptr) {
    const Header h = load_header(existing);
    if (h.valid()) survivor_ = true;
  }

  ckpt_b_ = store.create(key("B"), codec_->padded_bytes(), params_.owner);
  check_c_ = store.create(key("C"), codec_->checksum_bytes(), params_.owner);
  header_ = store.create(hdr_key, sizeof(Header), params_.owner);

  const Header mine = load_header(header_);
  const EpochSummary global =
      summarize_epochs(ctx.world, survivor_, mine.bc_epoch, mine.d_epoch);
  if (!global.any_survivor) {
    store_header(header_, load_or_init(header_, params_.data_bytes, params_.user_bytes,
                                       static_cast<std::uint32_t>(ctx.group.size()),
                                       static_cast<std::uint32_t>(params_.codec)));
    survivor_ = true;
    return false;
  }
  return global.bc_max >= 1;
}

std::span<std::byte> SingleCheckpoint::data() {
  require_open();
  return app_;
}

std::span<std::byte> SingleCheckpoint::user_state() { return user_; }

void SingleCheckpoint::copy_stripe_to(std::size_t s, std::byte* dst) const {
  const std::size_t stripe = tracker_.stripe_bytes();
  const std::size_t begin = s * stripe;
  if (begin >= combined_bytes_) return;  // padding-only stripe
  const std::size_t end = std::min(begin + stripe, combined_bytes_);
  std::size_t pos = begin;
  if (pos < params_.data_bytes) {
    const std::size_t len = std::min(end, params_.data_bytes) - pos;
    std::memcpy(dst + pos, app_.data() + pos, len);
    pos += len;
  }
  if (pos < end) {
    std::memcpy(dst + pos, user_.data() + (pos - params_.data_bytes), end - pos);
  }
}

double SingleCheckpoint::stage() {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("SingleCheckpoint: stage() without async_staging");
  }
  SKT_SPAN("ckpt.stage");
  util::WallTimer timer;
  // image_ equals the working content as of the previous stage() on every
  // clean stripe, so only the stripes dirtied since then need copying.
  tracker_.mark_user_tail();
  const std::vector<std::uint8_t> eff = tracker_.effective();
  for (std::size_t s = 0; s < eff.size(); ++s) {
    if (!eff[s]) continue;
    copy_stripe_to(s, image_.data());
    staged_dirty_[s] = 1;
  }
  tracker_.clear();
  return timer.seconds();
}

std::span<const std::byte> SingleCheckpoint::staged() const {
  if (!params_.async_staging || image_.empty()) return {};
  return std::span<const std::byte>(image_.data(), combined_bytes_);
}

CommitStats SingleCheckpoint::commit(CommCtx ctx) {
  require_open();
  // With staging enabled even a synchronous commit snapshots through the
  // image so its dirty-mirror invariant survives interleaving with the
  // async pipeline (cf. SelfCheckpoint::commit).
  if (params_.async_staging) stage();
  return commit_impl(ctx, /*async=*/false);
}

CommitStats SingleCheckpoint::commit_staged(CommCtx ctx) {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("SingleCheckpoint: commit_staged() without async_staging");
  }
  return commit_impl(ctx, /*async=*/true);
}

CommitStats SingleCheckpoint::commit_impl(CommCtx ctx, bool async) {
  SKT_SPAN("ckpt.commit");
  Header h = load_or_init(header_, params_.data_bytes, params_.user_bytes,
                          static_cast<std::uint32_t>(ctx.group.size()),
                          static_cast<std::uint32_t>(params_.codec));
  // Globally agreed epoch (see the note in SelfCheckpoint::commit).
  const std::uint64_t next =
      ctx.world.allreduce_value<std::uint64_t>(h.bc_epoch, mpi::Max{}) + 1;

  ctx.group.failpoint(async ? "ckpt.async_begin" : "ckpt.begin");
  ctx.world.barrier();

  // What goes into B and which stripes differ from it: the staged image
  // with its accumulated set, or the live [A|A2] with the tracker's.
  const bool staging = params_.async_staging;
  std::vector<std::uint8_t> dirty;
  if (staging) {
    dirty = staged_dirty_;
  } else {
    tracker_.mark_user_tail();
    dirty = tracker_.effective();
  }
  std::size_t dirty_stripes = 0;
  for (std::uint8_t d : dirty) dirty_stripes += d;
  const std::size_t stripe = tracker_.stripe_bytes();

  // Mark the update window: from here until the final header write, (B, C)
  // is not a trustworthy pair.
  h.d_epoch = next;
  store_header(header_, h);

  CommitStats stats;
  stats.epoch = next;
  telemetry::set_epoch(next);

  // Save B's old content of the dirty stripes — the delta base the flush
  // overwrites. Deliberately uninitialized: the codec never reads the base
  // on clean stripes (its full-encode fallback reads only `next`).
  util::AlignedBuffer base(ckpt_b_->size());
  util::WallTimer flush_timer;
  std::size_t flushed = 0;
  {
    SKT_SPAN("ckpt.flush");
    for (std::size_t s = 0; s < dirty.size(); ++s) {
      if (!dirty[s]) continue;
      std::memcpy(base.data() + s * stripe, ckpt_b_->bytes().data() + s * stripe, stripe);
      if (staging) {
        std::memcpy(ckpt_b_->bytes().data() + s * stripe, image_.data() + s * stripe,
                    stripe);
      } else {
        copy_stripe_to(s, ckpt_b_->bytes().data());
      }
      flushed += stripe;
    }
  }
  stats.flush_s = flush_timer.seconds();
  ctx.group.failpoint(async ? "ckpt.async_mid_update" : "ckpt.mid_update");

  const double encode_virtual_before = ctx.group.virtual_seconds();
  util::WallTimer encode_timer;
  {
    SKT_SPAN("ckpt.encode");
    codec_->encode_delta(ctx.group, {base.data(), base.size()}, ckpt_b_->bytes(),
                         check_c_->bytes(), check_c_->bytes(), dirty);
  }
  stats.encode_s = encode_timer.seconds();
  stats.encode_virtual_s = ctx.group.virtual_seconds() - encode_virtual_before;
  ctx.group.failpoint(async ? "ckpt.async_encode_done" : "ckpt.encode_done");
  if (staging) {
    std::fill(staged_dirty_.begin(), staged_dirty_.end(), std::uint8_t{0});
  } else {
    tracker_.clear();
  }

  h.bc_epoch = next;
  h.d_epoch = next;
  store_header(header_, h);
  ctx.group.failpoint(async ? "ckpt.async_flushed" : "ckpt.flushed");
  ctx.world.barrier();

  stats.checkpoint_bytes = flushed;
  stats.checksum_bytes = check_c_->size();
  stats.dirty_bytes = dirty_stripes * stripe;
  stats.dirty_fraction = dirty.empty() ? 0.0
                                       : static_cast<double>(dirty_stripes) /
                                             static_cast<double>(dirty.size());
  if (!async) ctx.group.record_time("checkpoint", stats.total_s());
  return stats;
}

RestoreStats SingleCheckpoint::restore(CommCtx ctx) {
  require_open();
  SKT_SPAN("ckpt.restore");
  ctx.group.failpoint("ckpt.restore");

  const Header mine = load_header(header_);
  const EpochSummary global =
      summarize_epochs(ctx.world, survivor_, mine.bc_epoch, mine.d_epoch);
  const std::vector<int> missing = missing_members(ctx.group, survivor_);
  if (missing.size() > 1) {
    throw Unrecoverable("single-checkpoint: multiple members lost in one group");
  }
  // Recoverable only when no survivor was inside the update window.
  if (global.bc_min != global.bc_max || global.d_min != global.d_max ||
      global.d_min != global.bc_min) {
    throw Unrecoverable(
        "single-checkpoint: failure hit the checkpoint update window; (B, C) inconsistent "
        "(CASE 2 of Fig. 2)");
  }
  if (global.bc_min == 0) {
    throw Unrecoverable("single-checkpoint: no committed checkpoint to restore");
  }

  RestoreStats stats;
  stats.epoch = global.bc_min;
  util::WallTimer timer;

  if (!missing.empty()) {
    codec_->rebuild(ctx.group, missing.front(), ckpt_b_->bytes(), check_c_->bytes());
  }
  std::memcpy(app_.data(), ckpt_b_->bytes().data(), app_.size());
  std::memcpy(user_.data(), ckpt_b_->bytes().data() + app_.size(), user_.size());

  // Re-establish the dirty-mirror invariants: the working view (and the
  // staging image, if any) now equals B exactly.
  tracker_.clear();
  if (!image_.empty()) {
    std::memcpy(image_.data(), ckpt_b_->bytes().data(), image_.size());
    std::fill(staged_dirty_.begin(), staged_dirty_.end(), std::uint8_t{0});
  }

  Header h = load_header(header_);
  h.bc_epoch = stats.epoch;
  h.d_epoch = stats.epoch;
  h.data_bytes = params_.data_bytes;
  h.user_bytes = params_.user_bytes;
  h.group_size = static_cast<std::uint32_t>(ctx.group.size());
  h.codec = static_cast<std::uint32_t>(params_.codec);
  h.magic = Header::kMagic;
  store_header(header_, h);
  survivor_ = true;

  stats.rebuild_s = timer.seconds();
  stats.rebuilt_member = !missing.empty() && missing.front() == ctx.group.rank();
  ctx.group.record_time("recover", stats.rebuild_s);
  ctx.world.barrier();
  return stats;
}

std::size_t SingleCheckpoint::memory_bytes() const {
  if (!ckpt_b_) return 0;
  return app_.size() + user_.size() + image_.size() + ckpt_b_->size() + check_c_->size() +
         sizeof(Header) + tracker_.stripe_count() + staged_dirty_.size();
}

std::uint64_t SingleCheckpoint::committed_epoch() const {
  if (!header_) return 0;
  const Header h = load_header(header_);
  return h.valid() ? h.bc_epoch : 0;
}

}  // namespace skt::ckpt
