// Incremental self-checkpoint — the Plank-style incremental idea
// (paper Section 7) fused with the self-checkpoint state machine.
//
// With the XOR codec, the new working-side checksum is derivable from the
// old one and the *changes only*:
//
//   diff_p[s]  =  B_p[s] XOR work_p[s]          (dirty stripes only)
//   D_f        =  C_f  XOR  (XOR-reduce of diff_p[f] over the group)
//
// so both the encode (network) and the flush (memcpy) cost scale with the
// application's dirty footprint between checkpoints instead of its full
// memory. Families nobody dirtied are skipped entirely after one cheap
// flag reduction. Recovery is IDENTICAL to SelfCheckpoint — (B, C) and
// (work, D) are full erasure-coded sets at all times — so the Fig. 4 CASE
// 1/2 analysis carries over unchanged.
//
// The paper's point stands and is measured in bench/ablation_incremental:
// HPL dirties almost every byte between checkpoints, so incremental buys
// nothing there; for sparse-update applications it is a large win.
//
// Async staging (Params::async_staging): stage() copies only the stripes
// dirtied since the previous stage into the SHM-resident S — the critical
// path keeps the dirty-footprint scaling — and the background pipeline
// encodes/flushes from S using the staged dirty set. S always equals the
// working buffer as of the last stage(), so (S, D) is a full recovery set
// and the CASE 1/2 analysis again carries over unchanged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckpt/header.hpp"
#include "ckpt/protocol.hpp"
#include "encoding/group_codec.hpp"
#include "encoding/rs_group.hpp"

namespace skt::ckpt {

class IncrementalSelfCheckpoint final : public CheckpointProtocol {
 public:
  struct Params {
    std::string key_prefix = "skt";
    std::size_t data_bytes = 0;
    std::size_t user_bytes = 64;
    // XOR only: the incremental identity needs a self-inverse "+".
    /// 1 = plain-XOR single parity (the paper layout); m >= 2 routes the
    /// delta encode through the RS(k, m) group codec, whose GF-weighted
    /// parity obeys the same incremental identity (P' = P ^ sum c * diff)
    /// and tolerates m concurrent losses.
    int parity_degree = 1;
    /// Allocate the S staging segment and route every encode through it.
    /// Recorded in the checkpoint header; a restart must match.
    bool async_staging = false;
    /// Owner tag for every created segment (tenant namespace; may be "").
    std::string owner;
  };

  explicit IncrementalSelfCheckpoint(Params params);

  bool open(CommCtx ctx) override;
  [[nodiscard]] std::span<std::byte> data() override;
  [[nodiscard]] std::span<std::byte> user_state() override;
  CommitStats commit(CommCtx ctx) override;
  [[nodiscard]] bool restore_feasible(CommCtx ctx) override;
  void reseed_epoch(CommCtx ctx, std::uint64_t epoch) override;
  RestoreStats restore(CommCtx ctx) override;
  [[nodiscard]] bool supports_async() const override { return params_.async_staging; }
  double stage() override;
  CommitStats commit_staged(CommCtx ctx) override;
  [[nodiscard]] std::span<const std::byte> staged() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] Strategy strategy() const override { return Strategy::kSelf; }
  [[nodiscard]] std::uint64_t committed_epoch() const override;
  [[nodiscard]] DirtyTracker* dirty_tracker() override { return &tracker_; }
  [[nodiscard]] std::vector<ScrubRegion> scrub_view() override;
  [[nodiscard]] int max_failures() const override {
    return rs_ ? rs_->parity_count() : 1;
  }

  /// Declare [offset, offset+len) of data() modified since the last
  /// commit. Unmarked changes would silently corrupt the checkpoint, so
  /// open()/restore() conservatively mark everything dirty, and the
  /// harness-level tests kill mid-commit to prove the tracking.
  void mark_dirty(std::size_t offset, std::size_t len);

  /// Mark the whole working buffer dirty (full-footprint applications).
  void mark_all_dirty();

  /// Dirty payload bytes that the next commit will encode/flush. Counts the
  /// tracker's raw flags: unlike the non-incremental protocols, unmarked
  /// means clean here (the documented contract), so no all-dirty fallback.
  [[nodiscard]] std::size_t dirty_bytes() const;

  /// Families (stripes) the last commit actually encoded — the measure of
  /// the incremental saving.
  [[nodiscard]] int last_encoded_families() const { return last_encoded_families_; }

 private:
  [[nodiscard]] std::string key(const char* part) const;
  void require_open() const;
  [[nodiscard]] std::uint32_t codec_field() const;
  CommitStats commit_impl(CommCtx ctx, bool async);

  Params params_;
  std::size_t combined_bytes_ = 0;
  /// Exactly one of the two is live: the plain-XOR codec for parity 1
  /// (bit-compatible with the paper layout) or the RS(k, m) codec.
  std::unique_ptr<enc::GroupCodec> codec_;
  std::unique_ptr<enc::RSGroupCodec> rs_;
  std::vector<std::byte> user_;
  /// Stripes dirtied since the last commit (sync) / last stage() (async).
  /// Read through flags() — raw incremental semantics, N-1 local stripes.
  DirtyTracker tracker_;
  /// Stripes the staged copy S differs from B on — the encode/flush set of
  /// the in-flight staged commit. Populated by stage(), cleared by its
  /// flush. Async staging only.
  std::vector<std::uint8_t> staged_dirty_;
  int last_encoded_families_ = 0;

  int world_rank_ = -1;
  int group_size_ = 0;
  bool survivor_ = false;
  sim::SegmentPtr work_;
  sim::SegmentPtr ckpt_b_;
  sim::SegmentPtr check_c_;
  sim::SegmentPtr check_d_;
  sim::SegmentPtr stage_;  // S, async_staging only
  sim::SegmentPtr header_;
};

}  // namespace skt::ckpt
