#include "ckpt/plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace skt::ckpt {

std::string_view to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNone: return "none";
    case Strategy::kSingle: return "single-checkpoint";
    case Strategy::kDouble: return "double-checkpoint";
    case Strategy::kSelf: return "self-checkpoint";
    case Strategy::kBlcr: return "blcr";
    case Strategy::kSelfIncremental: return "self-incremental";
  }
  return "?";
}

namespace {

void check_group(Strategy strategy, int group_size) {
  if ((strategy == Strategy::kSingle || strategy == Strategy::kDouble ||
       strategy == Strategy::kSelf || strategy == Strategy::kSelfIncremental) &&
      group_size < 2) {
    throw std::invalid_argument("in-memory strategies need group_size >= 2");
  }
}

}  // namespace

double available_fraction(Strategy strategy, int group_size) {
  check_group(strategy, group_size);
  const double n = group_size;
  switch (strategy) {
    case Strategy::kNone:
    case Strategy::kBlcr:
      return 1.0;
    case Strategy::kSingle:
      return (n - 1.0) / (2.0 * n - 1.0);  // Eq. 4
    case Strategy::kDouble:
      return (n - 1.0) / (3.0 * n - 1.0);  // Eq. 3
    case Strategy::kSelf:
    case Strategy::kSelfIncremental:
      return (n - 1.0) / (2.0 * n);  // Eq. 2 (same layout, lazier updates)
  }
  return 0.0;
}

double available_fraction_dual(int group_size) {
  if (group_size < 4) {
    throw std::invalid_argument("dual-parity self-checkpoint needs group_size >= 4");
  }
  const double n = group_size;
  return (n - 2.0) / (2.0 * n);
}

double available_fraction_rs(int group_size, int parity_count) {
  if (parity_count < 1) {
    throw std::invalid_argument("RS self-checkpoint needs parity_count >= 1");
  }
  if (group_size < parity_count + 2) {
    throw std::invalid_argument("RS self-checkpoint needs group_size >= parity_count + 2");
  }
  const double n = group_size;
  const double m = parity_count;
  return (n - m) / (2.0 * n);
}

std::size_t estimate_session_bytes(Strategy strategy, std::size_t data_bytes,
                                   std::size_t user_bytes, int group_size,
                                   int parity_degree, bool async_staging,
                                   bool level2) {
  const double m = static_cast<double>(data_bytes + user_bytes);
  double total = m;
  switch (strategy) {
    case Strategy::kNone:
      return 0;
    case Strategy::kBlcr:
      total = m;  // work buffer only; images live in the vault
      break;
    case Strategy::kSingle:
    case Strategy::kDouble: {
      const double u = available_fraction(strategy, std::max(2, group_size));
      total = m / u;
      break;
    }
    case Strategy::kSelf:
    case Strategy::kSelfIncremental: {
      const int n = std::max(group_size, parity_degree + 2);
      const double u = parity_degree > 1 ? available_fraction_rs(n, parity_degree)
                                         : available_fraction(strategy, std::max(2, n));
      total = m / u;
      break;
    }
  }
  if (async_staging) total += m;  // the sealed S staging segment
  if (level2) total += m / 8.0;   // L2 manifest + transient flush image slack
  return static_cast<std::size_t>(total) + 4096;  // headers / padding slack
}

MemoryPlan plan_memory(Strategy strategy, std::size_t capacity_bytes, int group_size) {
  check_group(strategy, group_size);
  MemoryPlan plan;
  plan.strategy = strategy;
  plan.group_size = group_size;
  plan.capacity_bytes = capacity_bytes;

  const double fraction = available_fraction(strategy, group_size);
  std::size_t m = static_cast<std::size_t>(static_cast<double>(capacity_bytes) * fraction);
  m = m / 8 * 8;  // lane alignment
  plan.app_bytes = m;

  const double n = group_size;
  switch (strategy) {
    case Strategy::kNone:
      break;
    case Strategy::kBlcr:
      break;  // image lives on disk
    case Strategy::kSingle:
      plan.checkpoint_bytes = m;
      plan.checksum_bytes = static_cast<std::size_t>(static_cast<double>(m) / (n - 1.0));
      break;
    case Strategy::kDouble:
      plan.checkpoint_bytes = 2 * m;
      plan.checksum_bytes = static_cast<std::size_t>(2.0 * static_cast<double>(m) / (n - 1.0));
      break;
    case Strategy::kSelf:
    case Strategy::kSelfIncremental:
      plan.checkpoint_bytes = m;  // B — the only full copy
      plan.checksum_bytes = static_cast<std::size_t>(2.0 * static_cast<double>(m) / (n - 1.0));
      break;
  }
  return plan;
}

}  // namespace skt::ckpt
