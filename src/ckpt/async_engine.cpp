#include "ckpt/async_engine.hpp"

#include <string>
#include <utility>

#include "ckpt/store_service.hpp"
#include "telemetry/forensics.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace skt::ckpt {

bool CommitTicket::poll() const {
  if (!state_) return true;
  std::lock_guard lock(state_->mutex);
  return state_->done;
}

CommitStats CommitTicket::wait() const {
  if (!state_) return {};
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (state_->error) std::rethrow_exception(state_->error);
  return state_->stats;
}

AsyncCommitEngine::AsyncCommitEngine(CheckpointProtocol& protocol, mpi::Comm world,
                                     mpi::Comm group, int world_rank)
    : protocol_(protocol),
      world_(std::move(world)),
      group_(std::move(group)),
      world_rank_(world_rank),
      worker_([this] { worker_loop(); }) {}

AsyncCommitEngine::~AsyncCommitEngine() {
  // Drain without throwing: if the in-flight epoch failed the job is
  // aborting and the rank thread is already unwinding — the worker just
  // needs to reach its queue wait so the join below can't deadlock.
  try {
    last_ticket().wait();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

CommitTicket AsyncCommitEngine::last_ticket() const {
  std::lock_guard lock(mutex_);
  return last_;
}

void AsyncCommitEngine::drain() { last_ticket().wait(); }

CommitTicket AsyncCommitEngine::commit_async(mpi::Comm& sync_group) {
  // Bounded staleness: at most one epoch in flight. Waiting on the
  // previous ticket also protects the staging buffer — the worker is
  // done reading it before stage() overwrites it. A failed previous
  // epoch rethrows here, on the rank thread, where the launcher's
  // restart logic can see it.
  drain();

  double stage_s = 0.0;
  {
    SKT_SPAN("ckpt.async.stage");
    stage_s = protocol_.stage();
  }
  sync_group.failpoint("ckpt.async_stage");
  // The "checkpoint" timer is the application-visible critical-path cost;
  // for an async commit that is the stage copy alone.
  sync_group.record_time("checkpoint", stage_s);

  CommitTicket ticket;
  ticket.state_ = std::make_shared<CommitTicket::State>();
  ticket.state_->stage_s = stage_s;
  {
    std::lock_guard lock(mutex_);
    pending_ = ticket.state_;
    pending_stage_s_ = stage_s;
    last_ = ticket;
  }
  cv_.notify_all();
  return ticket;
}

void AsyncCommitEngine::worker_loop() {
  util::set_thread_label("ckpt-worker " + std::to_string(world_rank_));
  telemetry::set_thread_async_worker(world_rank_);
  for (;;) {
    std::shared_ptr<CommitTicket::State> state;
    double stage_s = 0.0;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || pending_ != nullptr; });
      if (pending_ == nullptr) return;  // stop with an empty queue
      state = std::exchange(pending_, nullptr);
      stage_s = pending_stage_s_;
    }
    run_job(state, stage_s);
    {
      std::lock_guard lock(state->mutex);
      if (state->error) {
        // The pipeline died (typically JobAborted from a node failure).
        // Stay alive so the destructor's join works, but accept no more
        // work: any queued ticket would observe torn collective state.
        break;
      }
    }
  }
  // Failure path: complete any job enqueued after the failure with the
  // same error so no ticket waits forever.
  for (;;) {
    std::shared_ptr<CommitTicket::State> state;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || pending_ != nullptr; });
      if (pending_ == nullptr) return;
      state = std::exchange(pending_, nullptr);
    }
    {
      std::lock_guard lock(state->mutex);
      state->error = std::make_exception_ptr(
          std::runtime_error("ckpt: async worker stopped after a failed epoch"));
      state->done = true;
    }
    state->cv.notify_all();
  }
}

void AsyncCommitEngine::run_job(const std::shared_ptr<CommitTicket::State>& state,
                                double stage_s) {
  util::WallTimer timer;
  CommitStats stats;
  std::exception_ptr error;
  try {
    SKT_SPAN("ckpt.async.pipeline");
    // Multi-tenant sessions take a fair-share turnstile slot first: the
    // service serializes commit windows across tenants, so concurrent
    // jobs' pipelines share the store bandwidth instead of piling up.
    CommitGate gate(store_service_, tenant_);
    util::WallTimer commit_timer;
    // Keep the scrubber out of the sealed buffers while the state machine
    // rewrites them (it only try-locks, so this never waits on a pass).
    std::unique_lock<std::mutex> scrub_lock;
    if (commit_exclusion_ != nullptr) {
      scrub_lock = std::unique_lock(*commit_exclusion_);
    }
    stats = protocol_.commit_staged({world_, group_});
    gate.account(stats.checkpoint_bytes + stats.checksum_bytes, commit_timer.seconds());
  } catch (...) {
    error = std::current_exception();
  }
  const double worker_s = timer.seconds();

  if (!error) {
    // Telemetry is the Session layer's job (protocols no longer publish
    // their own) — for async commits that layer is this worker.
    record_commit_telemetry(stats);
    telemetry::forensics::recorder().note_commit(
        world_rank_, {stats.epoch, stats.dirty_bytes, stats.dirty_fraction});
    group_.record_time("ckpt_worker", worker_s);
    auto& metrics = telemetry::metrics();
    metrics.histogram("ckpt.async.stage_s").record(stage_s);
    metrics.histogram("ckpt.async.worker_s").record(worker_s);
    // Fraction of the full commit hidden from the critical path.
    const double total = stage_s + worker_s;
    if (total > 0.0) {
      metrics.gauge("ckpt.async.overlap_fraction").set(worker_s / total);
    }
  }

  {
    std::lock_guard lock(state->mutex);
    state->stats = stats;
    state->error = error;
    state->done = true;
  }
  state->cv.notify_all();
}

}  // namespace skt::ckpt
