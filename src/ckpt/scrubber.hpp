// Background scrub-and-repair: a low-priority thread that re-verifies the
// CRC32C of every sealed checkpoint buffer between commits, catching the
// silent corruption (DRAM bit flips, wild writes) that an in-memory
// checkpoint is otherwise blind to until the restore that needed the bytes
// fails.
//
// Mechanics:
//
//   * The protocol exposes its sealed segments through scrub_view()
//     (protocol.hpp). Each region is split into fixed-size chunks; a
//     baseline CRC per chunk is captured whenever committed_epoch()
//     advances (the buffers were just rewritten) and re-verified on every
//     subsequent pass of the same epoch.
//
//   * Commits and scrub passes exclude each other through
//     commit_exclusion(): the Session locks it around commit()/restore()
//     (and hands it to the async engine for commit_staged()), while a
//     pass re-acquires it PER CHUNK — a commit arriving mid-pass waits at
//     most one 4 KiB CRC, not a full sweep, which is what keeps the scrub
//     overhead on an encode-like workload under the 3% bench gate. A pass
//     that observes the epoch advance between chunks abandons itself (the
//     buffers it was reading were legitimately rewritten) and the next
//     tick recaptures baselines. The cadence thread additionally only
//     TRY-locks each chunk, so a held lock skips work instead of queueing
//     behind the commit.
//
//   * A corrupt chunk whose region has a byte-identical mirror (e.g. the
//     C/D checksum pair after a flush) is repaired in place by copying the
//     mirror chunk, after checking the mirror itself still matches the
//     baseline. Mirror-less corruption is counted as unrepaired — the
//     next restore must route around it via the erasure code.
//
// Telemetry: scrub.passes, scrub.chunks_verified, scrub.corruption_detected,
// scrub.repaired, scrub.unrepaired counters, aggregated into the RunReport
// like every other metric.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/protocol.hpp"

namespace skt::ckpt {

struct ScrubStats {
  std::uint64_t passes = 0;               ///< completed scrub passes
  std::uint64_t chunks_verified = 0;      ///< chunk CRCs recomputed
  std::uint64_t corruption_detected = 0;  ///< chunks whose CRC diverged
  std::uint64_t repaired = 0;             ///< chunks restored from a mirror
  std::uint64_t unrepaired = 0;           ///< corrupt chunks with no mirror
};

class Scrubber {
 public:
  struct Options {
    /// Cadence of the background thread; each tick try-locks the commit
    /// exclusion and runs one full pass over every region.
    double interval_s = 0.002;
    /// Verification granularity. Smaller chunks localize repairs; larger
    /// ones amortize the table-driven CRC better.
    std::size_t chunk_bytes = 4096;
  };

  /// `protocol` must be open()ed already and outlive the scrubber.
  explicit Scrubber(CheckpointProtocol& protocol);
  Scrubber(CheckpointProtocol& protocol, Options options);

  /// Stops and joins the background thread.
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// The commit/scrub exclusion lock. Hold it for the duration of any
  /// commit or restore so a pass never reads a half-rewritten buffer.
  [[nodiscard]] std::mutex& commit_exclusion() { return exclusion_; }

  /// Start the cadence thread (idempotent).
  void start();

  /// Stop and join the cadence thread (idempotent; also run by ~Scrubber).
  void stop();

  /// One deterministic synchronous pass — blocks on each chunk's exclusion
  /// acquisition instead of try-locking, so tests can inject a fault and
  /// assert the very next pass catches it. Returns the stats delta of this
  /// pass.
  ScrubStats scrub_now();

  /// Lifetime totals across background and synchronous passes.
  [[nodiscard]] ScrubStats stats() const;

 private:
  struct RegionState {
    std::vector<std::uint32_t> baseline;  ///< per-chunk CRC32C
  };

  /// Runs one pass, re-acquiring exclusion_ per chunk. `blocking` selects
  /// lock() (scrub_now) vs try_lock() (cadence thread) per acquisition; a
  /// failed try or a mid-pass epoch change abandons the pass. Holds
  /// pass_mutex_ throughout, so passes themselves never interleave.
  ScrubStats run_pass(bool blocking);
  void thread_loop();

  CheckpointProtocol& protocol_;
  Options options_;

  std::mutex exclusion_;
  /// Serializes whole passes (cadence thread vs. scrub_now) now that
  /// exclusion_ is only held per chunk. Lock order: pass_mutex_ before
  /// exclusion_; commits take exclusion_ alone, so no cycle exists.
  std::mutex pass_mutex_;
  /// Epoch the baselines describe; re-captured when the protocol commits.
  std::uint64_t baseline_epoch_ = ~std::uint64_t{0};
  std::vector<RegionState> regions_;  // parallel to protocol_.scrub_view()

  mutable std::mutex stats_mutex_;
  ScrubStats stats_;

  std::mutex thread_mutex_;
  std::condition_variable thread_cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace skt::ckpt
