#include "ckpt/self_checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "ckpt/epoch.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace skt::ckpt {

SelfCheckpoint::SelfCheckpoint(Params params) : params_(std::move(params)) {
  if (params_.data_bytes == 0) throw std::invalid_argument("SelfCheckpoint: data_bytes == 0");
  if (params_.user_bytes == 0) throw std::invalid_argument("SelfCheckpoint: user_bytes == 0");
  combined_bytes_ = params_.data_bytes + params_.user_bytes;
  user_.assign(params_.user_bytes, std::byte{0});
}

std::string SelfCheckpoint::key(const char* part) const {
  return params_.key_prefix + ".r" + std::to_string(world_rank_) + ".self." + part;
}

std::uint32_t SelfCheckpoint::codec_field() const {
  return static_cast<std::uint32_t>(params_.codec) |
         static_cast<std::uint32_t>(params_.parity_degree) << 8 |
         (params_.async_staging ? 1u << 16 : 0u);
}

void SelfCheckpoint::require_open() const {
  if (!work_) throw std::logic_error("SelfCheckpoint: open() has not been called");
}

bool SelfCheckpoint::open(CommCtx ctx) {
  world_rank_ = ctx.group.world_rank();
  coder_ = enc::make_coder(params_.parity_degree, params_.codec, combined_bytes_,
                           ctx.group.size());

  sim::PersistentStore& store = ctx.group.store();
  const std::string hdr_key = key("hdr");
  survivor_ = false;
  if (sim::SegmentPtr existing = store.attach(hdr_key); existing != nullptr) {
    const Header h = load_header(existing);
    if (h.valid()) {
      if (h.data_bytes != params_.data_bytes || h.user_bytes != params_.user_bytes ||
          h.group_size != static_cast<std::uint32_t>(ctx.group.size()) ||
          h.codec != codec_field()) {
        throw std::logic_error("SelfCheckpoint: existing checkpoint layout mismatch");
      }
      survivor_ = true;
    }
  }

  const std::size_t padded = coder_->padded_bytes();
  const std::size_t stripe = coder_->redundancy_bytes();
  tracker_.reset(params_.data_bytes, params_.user_bytes, coder_->stripe_bytes(),
                 coder_->stripe_count());
  staged_dirty_.assign(coder_->stripe_count(), 1);
  work_ = store.create(key("work"), padded, params_.owner);
  ckpt_b_ = store.create(key("B"), padded, params_.owner);
  check_c_ = store.create(key("C"), stripe, params_.owner);
  check_d_ = store.create(key("D"), stripe, params_.owner);
  if (params_.async_staging) stage_ = store.create(key("S"), padded, params_.owner);
  header_ = store.create(hdr_key, sizeof(Header), params_.owner);

  const Header mine = load_header(header_);
  const EpochSummary global =
      summarize_epochs(ctx.world, survivor_, mine.bc_epoch, mine.d_epoch);
  if (!global.any_survivor) {
    // Globally fresh start: every rank initializes an epoch-0 header.
    // A blank node joining a job that has survivors must NOT write one —
    // it would masquerade as an epoch-0 survivor if a second failure hits
    // before its restore completes.
    store_header(header_, load_or_init(header_, params_.data_bytes, params_.user_bytes,
                                       static_cast<std::uint32_t>(ctx.group.size()),
                                       codec_field()));
    survivor_ = true;
    return false;
  }
  // A committed checkpoint exists iff some survivor sealed or flushed at
  // least one epoch.
  return global.bc_max >= 1 || global.d_max >= 1;
}

std::span<std::byte> SelfCheckpoint::data() {
  require_open();
  return work_->bytes().subspan(0, params_.data_bytes);
}

std::span<std::byte> SelfCheckpoint::user_state() { return user_; }

double SelfCheckpoint::stage() {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("SelfCheckpoint: stage() without async_staging");
  }
  SKT_SPAN("ckpt.stage");
  util::WallTimer timer;
  // Seal [A1|B2|pad] into S; the user-space A2 lands directly in S's B2
  // slot, so the staged domain is self-contained. S equals B (and work as
  // of the previous stage) on every clean stripe, so an annotated
  // application pays only its dirty footprint here — the whole critical
  // path of an async commit.
  tracker_.mark_user_tail();
  staged_dirty_ = tracker_.effective();
  const std::size_t stripe = tracker_.stripe_bytes();
  for (std::size_t s = 0; s < staged_dirty_.size(); ++s) {
    if (!staged_dirty_[s]) continue;
    std::memcpy(stage_->bytes().data() + s * stripe, work_->bytes().data() + s * stripe,
                stripe);
  }
  std::memcpy(stage_->bytes().data() + params_.data_bytes, user_.data(), params_.user_bytes);
  tracker_.clear();
  return timer.seconds();
}

std::span<const std::byte> SelfCheckpoint::staged() const {
  if (!stage_) return {};
  return std::span<const std::byte>(stage_->bytes()).subspan(0, combined_bytes_);
}

CommitStats SelfCheckpoint::commit(CommCtx ctx) {
  require_open();
  // With staging enabled even a synchronous commit encodes from S, so the
  // CASE-2 recovery set is (S, D) no matter which pipeline was interrupted.
  if (params_.async_staging) stage();
  return commit_impl(ctx, /*async=*/false);
}

CommitStats SelfCheckpoint::commit_staged(CommCtx ctx) {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("SelfCheckpoint: commit_staged() without async_staging");
  }
  return commit_impl(ctx, /*async=*/true);
}

CommitStats SelfCheckpoint::commit_impl(CommCtx ctx, bool async) {
  SKT_SPAN("ckpt.commit");
  // The encoded domain: the staged copy S when staging, else work itself.
  const std::span<std::byte> source =
      params_.async_staging ? stage_->bytes() : work_->bytes();
  Header h = load_or_init(header_, params_.data_bytes, params_.user_bytes,
                          static_cast<std::uint32_t>(ctx.group.size()), codec_field());
  // Agree on the epoch globally: after a disk-level fallback restore (see
  // MultiLevelCheckpoint) a replacement's header may lag the survivors'.
  const std::uint64_t next =
      ctx.world.allreduce_value<std::uint64_t>(h.bc_epoch, mpi::Max{}) + 1;

  ctx.group.failpoint(async ? "ckpt.async_begin" : "ckpt.begin");
  ctx.world.barrier();

  if (!params_.async_staging) {
    // Step 2 (Fig. 5): copy the user-space A2 into the SHM-resident B2 so
    // the encoded domain [A1|B2] is one contiguous buffer. (When staging,
    // stage() already placed A2 into S.)
    std::memcpy(work_->bytes().data() + params_.data_bytes, user_.data(), params_.user_bytes);
    tracker_.mark_user_tail();
    ctx.group.failpoint("ckpt.copy_a2");
  }

  // The stripes the source side differs from the committed B on: the
  // staged set captured by stage(), or the live tracker. Un-annotated
  // applications resolve to all-dirty (full encode + flush).
  const std::vector<std::uint8_t> dirty =
      params_.async_staging ? staged_dirty_ : tracker_.effective();
  std::size_t dirty_stripes = 0;
  for (std::uint8_t d : dirty) dirty_stripes += d;

  // Step 3: encode the source side's checksum D. The delta form reuses the
  // sealed (B, C) pair as the base — parity moves only for dirty families
  // and falls back to the full reduce-scatter when most of the image
  // changed, so this is never slower than a full encode.
  CommitStats stats;
  stats.epoch = next;
  stats.dirty_bytes = dirty_stripes * tracker_.stripe_bytes();
  stats.dirty_fraction =
      dirty.empty() ? 1.0 : static_cast<double>(dirty_stripes) / static_cast<double>(dirty.size());
  telemetry::set_epoch(next);
  ctx.group.failpoint(async ? "ckpt.async_encode_begin" : "ckpt.encode_begin");
  const double encode_virtual_before = ctx.group.virtual_seconds();
  const std::uint64_t wire_before = ctx.group.runtime().wire_bytes();
  util::WallTimer encode_timer;
  {
    SKT_SPAN("ckpt.encode");
    coder_->encode_delta(ctx.group, ckpt_b_->bytes(), source, check_c_->bytes(),
                         check_d_->bytes(), dirty);
  }
  stats.encode_s = encode_timer.seconds();
  stats.encode_virtual_s = ctx.group.virtual_seconds() - encode_virtual_before;
  stats.encode_wire_bytes = ctx.group.runtime().wire_bytes() - wire_before;
  ctx.group.failpoint(async ? "ckpt.async_encode_done" : "ckpt.encode_done");

  {
    // Seal: after this global barrier every rank knows D is complete
    // everywhere, so (source, D) becomes a valid recovery set.
    SKT_SPAN("ckpt.seal");
    ctx.world.barrier();
    h.d_epoch = next;
    store_header(header_, h);
    ctx.group.failpoint(async ? "ckpt.async_sealed" : "ckpt.sealed");
    ctx.world.barrier();
  }

  // Step 4: flush the source side over the old checkpoint. A failure here
  // is CASE 2 of Fig. 4 — recovery uses (source, D).
  util::WallTimer flush_timer;
  std::size_t flushed = 0;
  {
    SKT_SPAN("ckpt.flush");
    // B equals the source on every clean stripe (the previous flush made
    // them identical and clean means untouched since), so only dirty
    // stripes move.
    const std::size_t stripe = tracker_.stripe_bytes();
    for (std::size_t s = 0; s < dirty.size(); ++s) {
      if (!dirty[s]) continue;
      std::memcpy(ckpt_b_->bytes().data() + s * stripe, source.data() + s * stripe, stripe);
      flushed += stripe;
    }
    ctx.group.failpoint(async ? "ckpt.async_mid_flush" : "ckpt.mid_flush");
    std::memcpy(check_c_->bytes().data(), check_d_->bytes().data(), check_d_->size());
  }
  stats.flush_s = flush_timer.seconds();
  if (!params_.async_staging) tracker_.clear();
  h.bc_epoch = next;
  store_header(header_, h);
  ctx.group.failpoint(async ? "ckpt.async_flushed" : "ckpt.flushed");
  ctx.world.barrier();

  stats.checkpoint_bytes = flushed;
  stats.checksum_bytes = check_d_->size();
  // The async worker's pipeline time is recorded as "ckpt_worker" by the
  // engine; only a synchronous commit charges the critical-path slot here.
  if (!async) ctx.group.record_time("checkpoint", stats.encode_s + stats.flush_s);
  return stats;
}

bool SelfCheckpoint::restore_feasible(CommCtx ctx) {
  return static_cast<int>(missing_members(ctx.group, survivor_).size()) <=
         coder_->max_failures();
}

void SelfCheckpoint::reseed_epoch(CommCtx ctx, std::uint64_t epoch) {
  Header h = load_or_init(header_, params_.data_bytes, params_.user_bytes,
                          static_cast<std::uint32_t>(ctx.group.size()), codec_field());
  h.bc_epoch = epoch;
  h.d_epoch = epoch;
  store_header(header_, h);
  // The caller just reloaded this rank's state; it is a survivor for every
  // subsequent epoch summary.
  survivor_ = true;
}

RestoreStats SelfCheckpoint::restore(CommCtx ctx) {
  require_open();
  SKT_SPAN("ckpt.restore");
  ctx.group.failpoint("ckpt.restore");

  const Header mine = load_header(header_);
  const EpochSummary global =
      summarize_epochs(ctx.world, survivor_, mine.bc_epoch, mine.d_epoch);
  const std::vector<int> missing = missing_members(ctx.group, survivor_);
  if (static_cast<int>(missing.size()) > coder_->max_failures()) {
    throw Unrecoverable("self-checkpoint: " + std::to_string(missing.size()) +
                        " members lost in one group; the degree-" +
                        std::to_string(coder_->max_failures()) +
                        " erasure code cannot recover");
  }

  // Side selection. The commit's global barriers guarantee: if any rank
  // started flushing, every rank sealed D first — so a mixed bc range
  // implies a uniform d range one epoch ahead.
  bool use_a_side = false;
  std::uint64_t target = 0;
  if (global.d_min == global.d_max && global.d_min > global.bc_min) {
    use_a_side = true;
    target = global.d_min;
  } else if (global.bc_min == global.bc_max) {
    use_a_side = false;
    target = global.bc_min;
  } else {
    throw Unrecoverable("self-checkpoint: inconsistent epochs (bc " +
                        std::to_string(global.bc_min) + ".." + std::to_string(global.bc_max) +
                        ", d " + std::to_string(global.d_min) + ".." +
                        std::to_string(global.d_max) + ")");
  }
  if (target == 0) {
    throw Unrecoverable("self-checkpoint: no committed checkpoint to restore");
  }

  RestoreStats stats;
  stats.epoch = target;
  util::WallTimer timer;

  if (!use_a_side) {
    // CASE 1 (Fig. 4): roll back to (B, C). Survivors reload their working
    // buffer from B; the lost member's B and C are rebuilt first.
    if (survivor_) {
      std::memcpy(work_->bytes().data(), ckpt_b_->bytes().data(), work_->size());
      std::memcpy(check_d_->bytes().data(), check_c_->bytes().data(), check_c_->size());
    }
    if (!missing.empty()) {
      coder_->rebuild(ctx.group, missing, work_->bytes(), check_d_->bytes());
      if (!survivor_) {
        std::memcpy(ckpt_b_->bytes().data(), work_->bytes().data(), work_->size());
        std::memcpy(check_c_->bytes().data(), check_d_->bytes().data(), check_d_->size());
      }
    }
  } else if (params_.async_staging) {
    // CASE 2, staged: the newest consistent set is (S, D) — the staged
    // copy, not the live working buffer the application kept mutating.
    // Rebuild the lost member's S, complete the interrupted flush, then
    // roll the working buffer back to the staged image.
    if (!missing.empty()) {
      coder_->rebuild(ctx.group, missing, stage_->bytes(), check_d_->bytes());
    }
    std::memcpy(ckpt_b_->bytes().data(), stage_->bytes().data(), stage_->size());
    std::memcpy(check_c_->bytes().data(), check_d_->bytes().data(), check_d_->size());
    std::memcpy(work_->bytes().data(), stage_->bytes().data(), stage_->size());
  } else {
    // CASE 2 (Fig. 4): the working side (work, D) is the newest consistent
    // set. Rebuild the lost member, then complete the interrupted flush.
    if (!missing.empty()) {
      coder_->rebuild(ctx.group, missing, work_->bytes(), check_d_->bytes());
    }
    std::memcpy(ckpt_b_->bytes().data(), work_->bytes().data(), work_->size());
    std::memcpy(check_c_->bytes().data(), check_d_->bytes().data(), check_d_->size());
  }

  // Restore A2 from the checkpointed B2 area and re-sync the header.
  std::memcpy(user_.data(), work_->bytes().data() + params_.data_bytes, params_.user_bytes);
  if (params_.async_staging) {
    // Re-seed S from the restored state: the (S, D) recovery-set rule
    // requires S to match the encoded domain before the next commit.
    std::memcpy(stage_->bytes().data(), work_->bytes().data(), work_->size());
  }
  Header h = load_or_init(header_, params_.data_bytes, params_.user_bytes,
                          static_cast<std::uint32_t>(ctx.group.size()), codec_field());
  h.bc_epoch = target;
  h.d_epoch = target;
  store_header(header_, h);
  survivor_ = true;
  // work == B (== S) everywhere now, so nothing is dirty.
  tracker_.clear();
  std::fill(staged_dirty_.begin(), staged_dirty_.end(), std::uint8_t{0});

  stats.rebuild_s = timer.seconds();
  stats.rebuilt_member =
      std::find(missing.begin(), missing.end(), ctx.group.rank()) != missing.end();
  ctx.group.record_time("recover", stats.rebuild_s);
  ctx.world.barrier();
  return stats;
}

std::size_t SelfCheckpoint::memory_bytes() const {
  if (!work_) return 0;
  // work (A1+B2) + B + C + D + [S] + A2 + header
  return work_->size() + ckpt_b_->size() + check_c_->size() + check_d_->size() +
         (stage_ ? stage_->size() : 0) + user_.size() + sizeof(Header);
}

std::uint64_t SelfCheckpoint::committed_epoch() const {
  if (!header_) return 0;
  const Header h = load_header(header_);
  return h.valid() ? std::max(h.bc_epoch, h.d_epoch) : 0;
}

std::vector<ScrubRegion> SelfCheckpoint::scrub_view() {
  require_open();
  // After any flush C == D (the flush copies D over C) and both stay
  // untouched until the next encode, so each is the other's repair
  // mirror. B has no quiescent twin — the working buffer drifts and the
  // staging copy S is restaged off the commit lock — so a corrupt B
  // chunk is detectable but only repairable by the group (a restore).
  return {{"B", ckpt_b_->bytes(), {}},
          {"C", check_c_->bytes(), check_d_->bytes()},
          {"D", check_d_->bytes(), check_c_->bytes()}};
}

int SelfCheckpoint::max_failures() const {
  return coder_ ? coder_->max_failures() : params_.parity_degree;
}

}  // namespace skt::ckpt
