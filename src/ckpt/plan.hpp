// Memory-usage planning for the in-memory checkpoint strategies
// (Table 1 and Equations 2-4 of the paper).
//
// Given a per-process memory capacity and the encoding group size N, the
// planner answers "how much memory may the application itself use?" for
// each strategy:
//
//   single  : M + M + M/(N-1)            -> U = (N-1)/(2N-1)   (Eq. 4)
//   double  : M + 2M + 2M/(N-1)          -> U = (N-1)/(3N-1)   (Eq. 3)
//   self    : M + M + 2M/(N-1) = 2MN/(N-1) -> U = (N-1)/(2N)   (Eq. 2)
//   blcr    : M (checkpoints live on disk)
#pragma once

#include <cstddef>
#include <string_view>

namespace skt::ckpt {

enum class Strategy {
  kNone,    ///< no fault tolerance (original application)
  kSingle,  ///< single in-memory checkpoint (Fig. 2) — not fully fault-tolerant
  kDouble,  ///< double in-memory checkpoint (Fig. 3) — the SCR/Zheng baseline
  kSelf,    ///< self-checkpoint (Figs. 4-5) — the paper's contribution
  kBlcr,    ///< full-image checkpoint to a storage device (BLCR baseline)
  kSelfIncremental,  ///< self-checkpoint with dirty-stripe tracking (Sec. 7 extension)
};

[[nodiscard]] std::string_view to_string(Strategy strategy);

/// Fraction of per-process memory left for the application (Eqs. 2-4).
/// group_size must be >= 2 for the in-memory strategies.
[[nodiscard]] double available_fraction(Strategy strategy, int group_size);

/// Self-checkpoint with the dual-erasure extension: each member splits its
/// data into N-2 stripes and stores two parity stripes per side, so
///   total = M + M + 2*(2M/(N-2)) = 2MN/(N-2)  ->  U = (N-2)/2N.
/// Requires group_size >= 4.
[[nodiscard]] double available_fraction_dual(int group_size);

/// Self-checkpoint with RS(k, m) wide-stripe parity: each member splits
/// its data into k = N - m stripes and stores m parity stripes per side,
///   total = M + M + 2*(mM/(N-m)) = 2MN/(N-m)  ->  U = (N-m)/2N,
/// generalizing Eq. 2 (m = 1) and the dual extension (m = 2). Requires
/// group_size >= parity_count + 2.
[[nodiscard]] double available_fraction_rs(int group_size, int parity_count);

struct MemoryPlan {
  Strategy strategy = Strategy::kNone;
  int group_size = 0;
  std::size_t capacity_bytes = 0;   ///< per-process budget the plan fits in
  std::size_t app_bytes = 0;        ///< M — usable by the application (A1+A2)
  std::size_t checkpoint_bytes = 0; ///< full checkpoint copies (B [+ b])
  std::size_t checksum_bytes = 0;   ///< checksum stripes (C [+ D or c])
  [[nodiscard]] std::size_t total_bytes() const {
    return app_bytes + checkpoint_bytes + checksum_bytes;
  }
  [[nodiscard]] double fraction() const {
    return capacity_bytes == 0 ? 0.0
                               : static_cast<double>(app_bytes) /
                                     static_cast<double>(capacity_bytes);
  }
};

/// Largest application size M (8-byte aligned) whose strategy footprint
/// fits in `capacity_bytes`.
[[nodiscard]] MemoryPlan plan_memory(Strategy strategy, std::size_t capacity_bytes,
                                     int group_size);

/// Planning estimate of the PER-RANK persistent-store footprint a Session
/// with these parameters will allocate at open() — the Table 1 footprint
/// (M / U for the strategy's available fraction U) plus the async staging
/// segment and header slack. The StoreService admits a tenant against
/// this estimate BEFORE the protocol allocates anything, so an over-quota
/// open fails with zero segments created. `group_size` <= 0 means "one
/// job-wide group"; pass the world size. `level2` adds multilevel L2
/// slack.
[[nodiscard]] std::size_t estimate_session_bytes(Strategy strategy, std::size_t data_bytes,
                                                 std::size_t user_bytes, int group_size,
                                                 int parity_degree, bool async_staging,
                                                 bool level2);

}  // namespace skt::ckpt
