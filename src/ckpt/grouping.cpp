#include "ckpt/grouping.hpp"

#include <set>
#include <stdexcept>

namespace skt::ckpt {

GroupAssignment plan_groups(int world_size, int group_size, const std::vector<int>& node_ids,
                            const std::vector<int>& rack_ids, Mapping mapping) {
  if (group_size < 2) throw std::invalid_argument("plan_groups: group_size must be >= 2");
  if (world_size % group_size != 0) {
    throw std::invalid_argument("plan_groups: world size must be a multiple of group size");
  }
  if (static_cast<int>(node_ids.size()) != world_size ||
      static_cast<int>(rack_ids.size()) != world_size) {
    throw std::invalid_argument("plan_groups: node/rack arrays must have world size entries");
  }

  GroupAssignment assignment;
  assignment.group_size = group_size;
  assignment.num_groups = world_size / group_size;
  assignment.color.assign(static_cast<std::size_t>(world_size), -1);

  if (mapping == Mapping::kNeighbor) {
    // Consecutive ranks form a group. With k ranks per node and ranks laid
    // out node-major, group g takes ranks [g*G, (g+1)*G) — but consecutive
    // ranks can share a node, so interleave: rank r joins group
    // (r / k) % num_groups where k = ranks per node... Instead of guessing
    // the layout, greedily pack ranks into the lowest-numbered group that
    // has room and no member on the same node. For the common node-major
    // layouts this reproduces the neighbor mapping.
    std::vector<int> fill(static_cast<std::size_t>(assignment.num_groups), 0);
    std::vector<std::set<int>> nodes_in(static_cast<std::size_t>(assignment.num_groups));
    for (int r = 0; r < world_size; ++r) {
      int chosen = -1;
      for (int g = 0; g < assignment.num_groups; ++g) {
        if (fill[static_cast<std::size_t>(g)] == group_size) continue;
        if (nodes_in[static_cast<std::size_t>(g)].contains(node_ids[static_cast<std::size_t>(r)]))
          continue;
        chosen = g;
        break;
      }
      if (chosen < 0) {
        throw std::invalid_argument(
            "plan_groups: cannot satisfy distinct-node constraint (too few nodes for this "
            "group size)");
      }
      assignment.color[static_cast<std::size_t>(r)] = chosen;
      ++fill[static_cast<std::size_t>(chosen)];
      nodes_in[static_cast<std::size_t>(chosen)].insert(node_ids[static_cast<std::size_t>(r)]);
    }
  } else {
    // Spread: stride by num_groups so each group's members land far apart
    // (across racks when racks are contiguous node ranges).
    std::vector<int> fill(static_cast<std::size_t>(assignment.num_groups), 0);
    std::vector<std::set<int>> nodes_in(static_cast<std::size_t>(assignment.num_groups));
    for (int r = 0; r < world_size; ++r) {
      const int preferred = r % assignment.num_groups;
      int chosen = -1;
      for (int probe = 0; probe < assignment.num_groups; ++probe) {
        const int g = (preferred + probe) % assignment.num_groups;
        if (fill[static_cast<std::size_t>(g)] == group_size) continue;
        if (nodes_in[static_cast<std::size_t>(g)].contains(node_ids[static_cast<std::size_t>(r)]))
          continue;
        chosen = g;
        break;
      }
      if (chosen < 0) {
        throw std::invalid_argument(
            "plan_groups: cannot satisfy distinct-node constraint (too few nodes for this "
            "group size)");
      }
      assignment.color[static_cast<std::size_t>(r)] = chosen;
      ++fill[static_cast<std::size_t>(chosen)];
      nodes_in[static_cast<std::size_t>(chosen)].insert(node_ids[static_cast<std::size_t>(r)]);
    }
  }
  return assignment;
}

mpi::Comm make_group_comm(mpi::Comm& world, const GroupAssignment& assignment) {
  if (static_cast<int>(assignment.color.size()) != world.size()) {
    throw std::invalid_argument("make_group_comm: assignment size mismatch");
  }
  const int color = assignment.color[static_cast<std::size_t>(world.rank())];
  return world.split(color, world.rank());
}

bool distinct_nodes(const GroupAssignment& assignment, const std::vector<int>& node_ids) {
  std::vector<std::set<int>> nodes_in(static_cast<std::size_t>(assignment.num_groups));
  for (std::size_t r = 0; r < assignment.color.size(); ++r) {
    const int g = assignment.color[r];
    if (!nodes_in[static_cast<std::size_t>(g)].insert(node_ids[r]).second) return false;
  }
  return true;
}

int racks_spanned(const GroupAssignment& assignment, int group, const std::vector<int>& rack_ids) {
  std::set<int> racks;
  for (std::size_t r = 0; r < assignment.color.size(); ++r) {
    if (assignment.color[r] == group) racks.insert(rack_ids[r]);
  }
  return static_cast<int>(racks.size());
}

}  // namespace skt::ckpt
