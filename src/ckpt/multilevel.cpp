#include "ckpt/multilevel.hpp"

#include <cstring>
#include <stdexcept>

#include "ckpt/factory.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace skt::ckpt {

MultiLevelCheckpoint::MultiLevelCheckpoint(Params params)
    : params_(std::move(params)), device_(params_.device) {
  if (params_.vault == nullptr) {
    throw std::invalid_argument("MultiLevelCheckpoint: vault required");
  }
  if (params_.level1 == Strategy::kNone || params_.level1 == Strategy::kBlcr) {
    throw std::invalid_argument("MultiLevelCheckpoint: level 1 must be an in-memory strategy");
  }
  // Composition through the SPI: the level-1 protocol is built with the
  // same make_protocol entry point a Session uses, under a nested key
  // prefix so its store segments never collide with a sibling instance.
  FactoryParams inner;
  inner.key_prefix = params_.key_prefix + ".L1";
  inner.data_bytes = params_.data_bytes;
  inner.user_bytes = params_.user_bytes;
  inner.codec = params_.codec;
  inner.parity_degree = params_.parity_degree;
  inner.async_staging = params_.async_staging;
  inner.owner = params_.owner;
  inner_ = make_protocol(params_.level1, inner);
}

std::string MultiLevelCheckpoint::image_key(std::uint64_t epoch) const {
  return params_.key_prefix + ".r" + std::to_string(world_rank_) + ".L2.img.e" +
         std::to_string(epoch);
}

bool MultiLevelCheckpoint::open(CommCtx ctx) {
  world_rank_ = ctx.group.world_rank();
  const bool mem = inner_->open(ctx);
  disk_epoch_ = newest_disk_epoch();
  const std::uint64_t newest_disk =
      ctx.world.allreduce_value<std::uint64_t>(disk_epoch_, mpi::Min{});
  return mem || newest_disk >= 1;
}

std::string MultiLevelCheckpoint::manifest_key() const {
  return params_.key_prefix + ".r" + std::to_string(world_rank_) + ".L2.manifest";
}

MultiLevelCheckpoint::Manifest MultiLevelCheckpoint::load_manifest() const {
  const auto blob = params_.vault->get(manifest_key());
  Manifest manifest;
  if (blob.has_value() && blob->size() == sizeof(Manifest)) {
    std::memcpy(&manifest, blob->data(), sizeof(Manifest));
  }
  return manifest;
}

void MultiLevelCheckpoint::store_manifest(const Manifest& manifest) {
  params_.vault->put(manifest_key(),
                     std::span<const std::byte>(
                         reinterpret_cast<const std::byte*>(&manifest), sizeof(Manifest)));
}

std::uint64_t MultiLevelCheckpoint::newest_disk_epoch() const {
  const Manifest manifest = load_manifest();
  // Trust the manifest only as far as the images actually exist (a torn
  // flush may have written the image but not the manifest, or vice versa).
  if (manifest.newest >= 1 && params_.vault->exists(image_key(manifest.newest))) {
    return manifest.newest;
  }
  if (manifest.previous >= 1 && params_.vault->exists(image_key(manifest.previous))) {
    return manifest.previous;
  }
  return 0;
}

std::span<std::byte> MultiLevelCheckpoint::data() { return inner_->data(); }

std::span<std::byte> MultiLevelCheckpoint::user_state() { return inner_->user_state(); }

CommitStats MultiLevelCheckpoint::commit(CommCtx ctx) {
  return commit_impl(ctx, inner_->commit(ctx), /*from_staged=*/false);
}

CommitStats MultiLevelCheckpoint::commit_staged(CommCtx ctx) {
  // The async worker must not touch the live working buffer, so the
  // level-2 flush reads the staged image the level-1 commit just encoded.
  return commit_impl(ctx, inner_->commit_staged(ctx), /*from_staged=*/true);
}

CommitStats MultiLevelCheckpoint::commit_impl(CommCtx ctx, CommitStats stats,
                                              bool from_staged) {
  if (params_.flush_every > 0 && ++commits_since_flush_ >= params_.flush_every) {
    commits_since_flush_ = 0;
    flush_to_disk(ctx, stats.epoch, from_staged);
    const std::size_t image_bytes = params_.data_bytes + params_.user_bytes;
    stats.device_s = params_.vault->write_seconds(image_key(stats.epoch), image_bytes)
                         .value_or(device_.write_seconds(image_bytes));
  }
  return stats;
}

void MultiLevelCheckpoint::flush_to_disk(CommCtx ctx, std::uint64_t epoch,
                                         bool from_staged) {
  SKT_SPAN("ckpt.l2_flush");
  ctx.group.failpoint(from_staged ? "ckpt.async_l2_flush" : "ckpt.l2_flush");
  std::vector<std::byte> image(params_.data_bytes + params_.user_bytes);
  if (from_staged) {
    const std::span<const std::byte> staged = inner_->staged();
    std::memcpy(image.data(), staged.data(), image.size());
  } else {
    std::memcpy(image.data(), inner_->data().data(), params_.data_bytes);
    std::memcpy(image.data() + params_.data_bytes, inner_->user_state().data(),
                params_.user_bytes);
  }
  const std::string key = image_key(epoch);
  params_.vault->put(key, image);
  // Sharded vaults model the parallel-extent transfer themselves; plain
  // SnapshotVault has no opinion and we charge the configured device.
  ctx.group.charge_virtual(params_.vault->write_seconds(key, image.size())
                               .value_or(device_.write_seconds(image.size())));

  // Retain two generations so a torn flush always leaves one complete
  // generation on every rank; GC the grandparent only.
  Manifest manifest = load_manifest();
  if (manifest.previous >= 1) params_.vault->remove(image_key(manifest.previous));
  manifest.previous = manifest.newest;
  manifest.newest = epoch;
  store_manifest(manifest);

  disk_epoch_.store(epoch, std::memory_order_release);
  flushes_.fetch_add(1, std::memory_order_acq_rel);
  // A disk generation is only usable if every rank finished writing it.
  ctx.world.barrier();
}

RestoreStats MultiLevelCheckpoint::restore(CommCtx ctx) {
  used_disk_ = false;
  // Level-1 recoverability is a PER-GROUP verdict (did THIS group lose
  // more members than its code absorbs?), but a disk rollback changes the
  // restored epoch — so whether to attempt level 1 at all must be decided
  // unanimously, BEFORE anyone restores. A group that could rebuild
  // locally still rolls back with everyone else: letting it keep its
  // level-1 epoch while other groups reload an older disk generation
  // would resume the job on two different epochs (and desynchronise the
  // world collectives inside restore()).
  const std::uint64_t all_feasible = ctx.world.allreduce_value<std::uint64_t>(
      inner_->restore_feasible(ctx) ? 1u : 0u, mpi::Min{});
  if (all_feasible != 0) {
    try {
      return inner_->restore(ctx);
    } catch (const Unrecoverable& e) {
      // Reachable only by world-uniform verdicts (epoch disagreement, no
      // committed generation): every rank lands here together.
      SKT_LOG_WARN("multi-level: level 1 unrecoverable ({}); trying disk level", e.what());
    }
  } else {
    SKT_LOG_WARN(
        "multi-level: a group lost more members than level 1 absorbs; "
        "rolling every group back to the disk generation");
  }
  // Level 2: agree on the newest epoch present on every rank's disk.
  SKT_SPAN("ckpt.l2_restore");
  const std::uint64_t target =
      ctx.world.allreduce_value<std::uint64_t>(newest_disk_epoch(), mpi::Min{});
  if (target == 0) {
    throw Unrecoverable("multi-level: no complete disk generation either");
  }
  util::WallTimer timer;
  const auto image = params_.vault->get(image_key(target));
  if (!image.has_value() ||
      image->size() != params_.data_bytes + params_.user_bytes) {
    throw Unrecoverable("multi-level: disk image corrupt for epoch " + std::to_string(target));
  }
  std::memcpy(inner_->data().data(), image->data(), params_.data_bytes);
  std::memcpy(inner_->user_state().data(), image->data() + params_.data_bytes,
              params_.user_bytes);
  const double read_s = params_.vault->read_seconds(image_key(target), image->size())
                            .value_or(device_.read_seconds(image->size()));
  ctx.group.charge_virtual(read_s);

  // Re-establish level-1 redundancy immediately: the restored data gets a
  // fresh in-memory checkpoint so the next failure is cheap again. Reseed
  // the epoch counters first so this commit re-mints exactly `target`
  // (commits agree on Max(epoch)+1 world-wide, and survivors' headers
  // still carry their pre-rollback epochs) — the epoch counter stays in
  // lock-step with the application's progress counter across rollbacks.
  inner_->reseed_epoch(ctx, target - 1);
  inner_->commit(ctx);

  RestoreStats stats;
  stats.epoch = target;
  stats.rebuild_s = timer.seconds() + read_s;
  used_disk_ = true;
  disk_epoch_.store(target, std::memory_order_release);
  ctx.group.record_time("recover", stats.rebuild_s);
  return stats;
}

std::size_t MultiLevelCheckpoint::memory_bytes() const { return inner_->memory_bytes(); }

std::uint64_t MultiLevelCheckpoint::committed_epoch() const {
  return std::max(inner_->committed_epoch(), disk_epoch_.load(std::memory_order_acquire));
}

}  // namespace skt::ckpt
