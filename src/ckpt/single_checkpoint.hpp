// Single in-memory checkpoint (Fig. 2): one (B, C) pair in SHM and the
// application data A in ordinary memory. Cheapest on memory among the
// encoded strategies, but a failure inside the update window leaves B and
// C inconsistent — restore() then throws Unrecoverable, exactly the
// limitation the paper's CASE 2 illustrates.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ckpt/header.hpp"
#include "ckpt/protocol.hpp"
#include "encoding/group_codec.hpp"
#include "util/aligned.hpp"

namespace skt::ckpt {

class SingleCheckpoint final : public CheckpointProtocol {
 public:
  struct Params {
    std::string key_prefix = "skt";
    std::size_t data_bytes = 0;
    std::size_t user_bytes = 64;
    enc::CodecKind codec = enc::CodecKind::kXor;
    /// Allocate a heap staging buffer for stage()/commit_staged(). Unlike
    /// the self-checkpoint S it is NOT in SHM: this strategy's recovery
    /// never reads the staging copy (a failure inside the update window is
    /// unrecoverable either way), so nothing persistent changes.
    bool async_staging = false;
    /// Owner tag for every created segment (tenant namespace; may be "").
    std::string owner;
  };

  explicit SingleCheckpoint(Params params);

  bool open(CommCtx ctx) override;
  [[nodiscard]] std::span<std::byte> data() override;
  [[nodiscard]] std::span<std::byte> user_state() override;
  CommitStats commit(CommCtx ctx) override;
  RestoreStats restore(CommCtx ctx) override;
  [[nodiscard]] bool supports_async() const override { return params_.async_staging; }
  double stage() override;
  CommitStats commit_staged(CommCtx ctx) override;
  [[nodiscard]] std::span<const std::byte> staged() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] Strategy strategy() const override { return Strategy::kSingle; }
  [[nodiscard]] std::uint64_t committed_epoch() const override;
  [[nodiscard]] DirtyTracker* dirty_tracker() override { return &tracker_; }

 private:
  [[nodiscard]] std::string key(const char* part) const;
  void require_open() const;
  /// Copy stripe `s` of the split [app_ | user_] view into `dst` (a padded
  /// combined-layout buffer); a stripe may straddle the boundary.
  void copy_stripe_to(std::size_t s, std::byte* dst) const;
  CommitStats commit_impl(CommCtx ctx, bool async);

  Params params_;
  std::size_t combined_bytes_ = 0;
  std::optional<enc::GroupCodec> codec_;

  std::vector<std::byte> app_;   // A — ordinary memory
  std::vector<std::byte> user_;  // A2
  /// Padded [A|A2] snapshot mirror — the staged commit source, allocated
  /// only with async_staging; stage() refreshes dirty stripes only.
  util::AlignedBytes image_;
  /// Stripes dirtied since the last snapshot (stage() or sync commit).
  DirtyTracker tracker_;
  /// Stripes where image_ may differ from the committed B (accumulates
  /// across stage() calls, cleared by the staged commit's flush).
  std::vector<std::uint8_t> staged_dirty_;

  int world_rank_ = -1;
  bool survivor_ = false;
  sim::SegmentPtr ckpt_b_;   // [A|A2|pad] copy
  sim::SegmentPtr check_c_;  // checksum stripe of B
  sim::SegmentPtr header_;   // bc_epoch = committed, d_epoch = in-progress
};

}  // namespace skt::ckpt
