#include "ckpt/factory.hpp"

#include <stdexcept>

#include "ckpt/blcr_checkpoint.hpp"
#include "ckpt/double_checkpoint.hpp"
#include "ckpt/self_checkpoint.hpp"
#include "ckpt/incremental.hpp"
#include "ckpt/single_checkpoint.hpp"

namespace skt::ckpt {

std::unique_ptr<CheckpointProtocol> make_protocol(Strategy strategy,
                                                  const FactoryParams& params) {
  switch (strategy) {
    case Strategy::kSelf:
      return std::make_unique<SelfCheckpoint>(
          SelfCheckpoint::Params{params.key_prefix, params.data_bytes, params.user_bytes,
                                 params.codec, params.parity_degree, params.async_staging,
                                 params.owner});
    case Strategy::kSingle:
      return std::make_unique<SingleCheckpoint>(
          SingleCheckpoint::Params{params.key_prefix, params.data_bytes, params.user_bytes,
                                   params.codec, params.async_staging, params.owner});
    case Strategy::kDouble:
      return std::make_unique<DoubleCheckpoint>(
          DoubleCheckpoint::Params{params.key_prefix, params.data_bytes, params.user_bytes,
                                   params.codec, params.parity_degree,
                                   params.async_staging, params.owner});
    case Strategy::kBlcr:
      return std::make_unique<BlcrCheckpoint>(
          BlcrCheckpoint::Params{params.key_prefix, params.data_bytes, params.user_bytes,
                                 params.vault, params.device, params.async_staging});
    case Strategy::kSelfIncremental:
      return std::make_unique<IncrementalSelfCheckpoint>(IncrementalSelfCheckpoint::Params{
          params.key_prefix, params.data_bytes, params.user_bytes, params.parity_degree,
          params.async_staging, params.owner});
    case Strategy::kNone:
      break;
  }
  throw std::invalid_argument("make_protocol: no protocol for this strategy");
}

}  // namespace skt::ckpt
