#include "ckpt/protocol.hpp"

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace skt::ckpt {

void record_commit_telemetry(const CommitStats& stats) {
  telemetry::set_epoch(stats.epoch);
  auto& reg = telemetry::metrics();
  static telemetry::Counter& commits = reg.counter("ckpt.commits");
  static telemetry::Counter& ckpt_bytes = reg.counter("ckpt.checkpoint_bytes");
  static telemetry::Counter& sum_bytes = reg.counter("ckpt.checksum_bytes");
  static telemetry::Histogram& h_encode = reg.histogram("ckpt.encode_s");
  static telemetry::Histogram& h_flush = reg.histogram("ckpt.flush_s");
  static telemetry::Histogram& h_device = reg.histogram("ckpt.device_s");
  static telemetry::Histogram& h_total = reg.histogram("ckpt.commit_s");
  static telemetry::Gauge& g_dirty = reg.gauge("ckpt.dirty_bytes");
  static telemetry::Histogram& h_dirty_frac = reg.histogram("ckpt.dirty_fraction", 1.0);
  commits.increment();
  ckpt_bytes.add(stats.checkpoint_bytes);
  sum_bytes.add(stats.checksum_bytes);
  g_dirty.set(static_cast<double>(stats.dirty_bytes));
  h_dirty_frac.record(stats.dirty_fraction);
  h_encode.record(stats.encode_s + stats.encode_virtual_s);
  h_flush.record(stats.flush_s);
  if (stats.device_s > 0.0) h_device.record(stats.device_s);
  h_total.record(stats.total_s());
}

void record_restore_telemetry(const RestoreStats& stats) {
  telemetry::set_epoch(stats.epoch);
  auto& reg = telemetry::metrics();
  static telemetry::Counter& restores = reg.counter("ckpt.restores");
  static telemetry::Counter& rebuilds = reg.counter("ckpt.rebuilt_members");
  static telemetry::Histogram& h_rebuild = reg.histogram("ckpt.restore_s");
  restores.increment();
  if (stats.rebuilt_member) rebuilds.increment();
  h_rebuild.record(stats.rebuild_s);
}

}  // namespace skt::ckpt
