// BLCR-style full-image checkpoint to a storage device (Table 3 baselines
// BLCR+HDD and BLCR+SSD).
//
// Every commit serializes [A|A2] into the SnapshotVault — the simulation's
// durable disk — and charges the device's transfer time to the rank's
// virtual clock. Two image generations are retained so a failure during a
// write always leaves a complete previous image, and restore() agrees on
// the newest epoch present on every rank.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "ckpt/protocol.hpp"
#include "storage/device.hpp"
#include "storage/vault.hpp"

namespace skt::ckpt {

class BlcrCheckpoint final : public CheckpointProtocol {
 public:
  struct Params {
    std::string key_prefix = "skt";
    std::size_t data_bytes = 0;
    std::size_t user_bytes = 64;
    /// Required. Any Vault implementation (SnapshotVault or ShardedVault).
    storage::Vault* vault = nullptr;
    /// Fallback device model for vaults without one of their own,
    /// e.g. hdd_profile(ranks_per_node).
    storage::DeviceProfile device;
    /// Heap staging buffer for stage()/commit_staged(); the vault keeps a
    /// complete previous image either way, so recovery is unchanged.
    bool async_staging = false;
  };

  explicit BlcrCheckpoint(Params params);

  bool open(CommCtx ctx) override;
  [[nodiscard]] std::span<std::byte> data() override;
  [[nodiscard]] std::span<std::byte> user_state() override;
  CommitStats commit(CommCtx ctx) override;
  RestoreStats restore(CommCtx ctx) override;
  [[nodiscard]] bool supports_async() const override { return params_.async_staging; }
  double stage() override;
  CommitStats commit_staged(CommCtx ctx) override;
  [[nodiscard]] std::span<const std::byte> staged() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] Strategy strategy() const override { return Strategy::kBlcr; }
  [[nodiscard]] std::uint64_t committed_epoch() const override;
  [[nodiscard]] DirtyTracker* dirty_tracker() override { return &tracker_; }

 private:
  /// No codec dictates a stripe size here, so dirty tracking uses a fixed
  /// page-like granule.
  static constexpr std::size_t kStripeBytes = 4096;

  [[nodiscard]] std::string image_key(std::uint64_t epoch) const;
  void require_open() const;
  CommitStats commit_impl(CommCtx ctx, bool async);

  Params params_;
  storage::Device device_;
  std::vector<std::byte> app_;
  std::vector<std::byte> user_;
  std::vector<std::byte> stage_;  // [A|A2] snapshot, async_staging only
  /// Stripes dirtied since the last stage()/sync commit. The vault write
  /// is a full image either way (the strategy's defining cost), but the
  /// stage() copy is dirty-stripes-only and commits report dirty stats.
  DirtyTracker tracker_;
  std::size_t staged_dirty_bytes_ = 0;
  double staged_dirty_fraction_ = 1.0;
  int world_rank_ = -1;
  /// Newest image this rank has written/read. Atomic: the async worker
  /// publishes it while the rank thread may poll committed_epoch().
  std::atomic<std::uint64_t> epoch_ = 0;
};

}  // namespace skt::ckpt
