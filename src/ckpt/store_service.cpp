#include "ckpt/store_service.hpp"

#include <algorithm>
#include <chrono>

#include "telemetry/metrics.hpp"

namespace skt::ckpt {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Attained commit bandwidth: committed bytes over the tenant's DEMAND
/// time — the seconds it spent waiting at the turnstile plus the seconds
/// its commits ran. Idle gaps (the app computing, a job restarting) don't
/// count, so the number measures what the dispatcher gave the tenant when
/// the tenant actually wanted service — comparable across tenants with
/// different lifetimes and epoch cadences. A starved tenant's wait time
/// balloons and its bandwidth collapses.
double tenant_throughput(std::uint64_t commits, std::uint64_t committed_bytes,
                         double busy_s, double gate_wait_s) {
  if (commits == 0) return 0.0;
  return static_cast<double>(committed_bytes) / std::max(busy_s + gate_wait_s, 1e-9);
}

}  // namespace

StoreService::StoreService(StoreServiceConfig config) : config_(config) {
  if (config_.max_concurrent_commits < 1) {
    throw ConfigError("max_concurrent_commits", "must be >= 1");
  }
  if (config_.admission_timeout_s <= 0.0) {
    throw ConfigError("admission_timeout_s", "must be positive");
  }
}

StoreService::~StoreService() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_ = true;
  // Queued admissions fail loudly (their waiters throw AdmissionTimeout);
  // the waiters themselves clean their lease up on wake.
  for (const std::uint64_t id : admission_queue_) {
    auto it = leases_.find(id);
    if (it != leases_.end()) it->second.failed = true;
  }
  admission_cv_.notify_all();
  dispatch_cv_.notify_all();
  // Drain every thread still inside an admission/dispatch wait and every
  // in-flight commit window, so no rank touches this object's mutex or
  // condition variables after they die. Bounded: a wedged tenant cannot
  // hang teardown forever.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  dispatch_cv_.wait_until(lock, deadline, [this] {
    return waiters_ == 0 &&
           std::all_of(tenants_.begin(), tenants_.end(),
                       [](const auto& kv) { return kv.second.in_flight == 0; });
  });
}

// -------------------------------------------------------------- tenants --

void StoreService::register_tenant(const TenantConfig& config) {
  if (config.name.empty()) {
    throw ConfigError("tenant", "tenant name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (tenants_.contains(config.name)) {
    throw ConfigError("tenant", "duplicate tenant '" + config.name + "'");
  }
  tenants_[config.name].config = config;
  publish_tenant_gauges_locked(config.name, tenants_[config.name]);
  publish_service_gauges_locked();
}

bool StoreService::has_tenant(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.contains(name);
}

std::string StoreService::namespace_prefix(const std::string& tenant) {
  return "ns/" + tenant + "/";
}

StoreService::Tenant& StoreService::tenant_ref(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    throw ConfigError("tenant", "unknown tenant '" + name + "'");
  }
  return it->second;
}

const StoreService::Tenant* StoreService::find_tenant(const std::string& name) const {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : &it->second;
}

// ------------------------------------------------------------ admission --

std::uint64_t StoreService::admit(const std::string& tenant, std::size_t per_rank_bytes,
                                  int expected_ranks) {
  if (expected_ranks < 1) {
    throw ConfigError("expected_ranks", "must be >= 1");
  }
  const double t0 = steady_seconds();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.admission_timeout_s));

  std::unique_lock<std::mutex> lock(mutex_);
  Tenant& t = tenant_ref(tenant);

  // A job admits collectively: the first rank to arrive creates a lease
  // reserving the WHOLE job's footprint atomically; the others join it.
  // Partial reservations never block waiting on each other, so two
  // concurrently opening jobs cannot deadlock on a half-granted capacity.
  for (auto& [id, lease] : leases_) {
    if (lease.tenant != tenant || lease.failed ||
        lease.attached >= lease.expected_ranks) {
      continue;
    }
    if (lease.per_rank_bytes != per_rank_bytes ||
        lease.expected_ranks != expected_ranks) {
      continue;
    }
    ++lease.attached;
    const std::uint64_t lease_id = id;
    Lease& joined = lease;
    ++waiters_;
    const bool ok = admission_cv_.wait_until(lock, deadline, [&joined, this] {
      return joined.granted || joined.failed || shutdown_;
    });
    --waiters_;
    dispatch_cv_.notify_all();
    if (!ok || joined.failed || (!joined.granted && shutdown_)) {
      joined.failed = true;
      ++joined.released;
      if (joined.released >= joined.attached && !joined.granted) {
        leases_.erase(lease_id);
      }
      admission_cv_.notify_all();
      telemetry::metrics().counter("store.admission_rejections").increment();
      throw AdmissionTimeout(tenant, per_rank_bytes * static_cast<std::size_t>(expected_ranks),
                             config_.capacity_bytes);
    }
    ++t.open_sessions;
    telemetry::metrics().histogram("store.admission_wait_s").record(steady_seconds() - t0);
    publish_tenant_gauges_locked(tenant, t);
    return lease_id;
  }

  const std::size_t job_bytes =
      per_rank_bytes * static_cast<std::size_t>(expected_ranks);

  // Quota is a per-tenant property: exceeding it is an immediate, loud
  // rejection — waiting could never help.
  if (t.config.quota_bytes > 0 && t.reserved_bytes + job_bytes > t.config.quota_bytes) {
    telemetry::metrics().counter("store.quota_rejections").increment();
    throw QuotaExceeded(tenant, job_bytes, t.config.quota_bytes);
  }

  const std::uint64_t id = next_lease_id_++;
  Lease& lease = leases_[id];
  lease.id = id;
  lease.tenant = tenant;
  lease.per_rank_bytes = per_rank_bytes;
  lease.expected_ranks = expected_ranks;
  lease.attached = 1;

  const auto fits = [this, job_bytes] {
    return config_.capacity_bytes == 0 ||
           reserved_total_ + job_bytes <= config_.capacity_bytes;
  };

  bool queued = false;
  if (shutdown_ || !fits() || !admission_queue_.empty()) {
    // Over capacity (or behind earlier waiters): queue FIFO. Only the
    // front waiter may grant, so a stream of small jobs cannot starve a
    // large one indefinitely.
    admission_queue_.push_back(id);
    queued = true;
    ++waiters_;
    const bool ok = admission_cv_.wait_until(lock, deadline, [&] {
      return shutdown_ ||
             (!admission_queue_.empty() && admission_queue_.front() == id && fits());
    });
    --waiters_;
    dispatch_cv_.notify_all();
    admission_queue_.erase(
        std::find(admission_queue_.begin(), admission_queue_.end(), id));
    admission_cv_.notify_all();  // let the next FIFO waiter re-check
    if (!ok || shutdown_) {
      lease.failed = true;
      ++lease.released;
      if (lease.released >= lease.attached) leases_.erase(id);
      admission_cv_.notify_all();
      telemetry::metrics().counter("store.admission_rejections").increment();
      throw AdmissionTimeout(tenant, job_bytes, config_.capacity_bytes);
    }
  }

  lease.granted = true;
  lease.reserved_bytes = job_bytes;
  reserved_total_ += job_bytes;
  t.reserved_bytes += job_bytes;
  ++t.open_sessions;
  admission_cv_.notify_all();  // joiners wake on granted

  auto& metrics = telemetry::metrics();
  metrics.counter("store.admissions").increment();
  if (queued) metrics.counter("store.admission_waits").increment();
  metrics.histogram("store.admission_wait_s").record(steady_seconds() - t0);
  publish_tenant_gauges_locked(tenant, t);
  publish_service_gauges_locked();
  return id;
}

void StoreService::release(std::uint64_t lease_id) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return;
  Lease& lease = it->second;
  ++lease.released;

  auto tenant_it = tenants_.find(lease.tenant);
  Tenant* t = tenant_it == tenants_.end() ? nullptr : &tenant_it->second;

  if (lease.granted) {
    const std::size_t share = std::min(lease.per_rank_bytes, lease.reserved_bytes);
    lease.reserved_bytes -= share;
    reserved_total_ -= std::min(share, reserved_total_);
    if (t != nullptr) {
      t->reserved_bytes -= std::min(share, t->reserved_bytes);
      if (t->open_sessions > 0) --t->open_sessions;
    }
  }
  if (lease.released >= lease.attached) {
    // Last participant out: ranks that never attached (job died during
    // open) leave a remainder — free it so a relaunch is not starved by
    // a ghost reservation.
    reserved_total_ -= std::min(lease.reserved_bytes, reserved_total_);
    if (t != nullptr) {
      t->reserved_bytes -= std::min(lease.reserved_bytes, t->reserved_bytes);
    }
    leases_.erase(it);
  }
  admission_cv_.notify_all();
  if (t != nullptr) {
    if (t->open_sessions == 0) maybe_close_window_locked(*t);
    publish_tenant_gauges_locked(tenant_it->first, *t);
  }
  publish_service_gauges_locked();
}

// --------------------------------------------------- fair-share dispatch --

void StoreService::begin_commit(const std::string& tenant) {
  const double t0 = steady_seconds();
  std::unique_lock<std::mutex> lock(mutex_);
  Tenant& t = tenant_ref(tenant);
  ++waiters_;
  for (;;) {
    // During shutdown the turnstile opens wide so draining collectives
    // can always finish.
    if (shutdown_) break;
    if (t.active && t.entered < std::max(1, t.open_sessions)) break;
    if (!t.active && !t.queued) {
      t.queued = true;
      dispatch_queue_.push_back(tenant);
      schedule_locked();
      continue;  // may have been activated right away
    }
    dispatch_cv_.wait(lock);
  }
  --waiters_;
  ++t.entered;
  ++t.in_flight;
  const double waited = steady_seconds() - t0;
  t.gate_wait_s += waited;
  telemetry::metrics().histogram("store.commit_gate_wait_s").record(waited);
}

void StoreService::end_commit(const std::string& tenant, std::size_t bytes,
                              double seconds) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  Tenant& t = it->second;
  if (t.in_flight > 0) --t.in_flight;
  if (bytes > 0) {
    ++t.commits;
    t.committed_bytes += bytes;
    t.busy_s += std::max(seconds, 0.0);
    telemetry::metrics().counter("store.commits").increment();
  }
  maybe_close_window_locked(t);
  dispatch_cv_.notify_all();
  publish_tenant_gauges_locked(tenant, t);
  publish_service_gauges_locked();
}

void StoreService::schedule_locked() {
  while (active_windows_ < config_.max_concurrent_commits && !dispatch_queue_.empty()) {
    const std::string name = dispatch_queue_.front();
    dispatch_queue_.pop_front();
    const auto it = tenants_.find(name);
    if (it == tenants_.end()) continue;
    Tenant& t = it->second;
    t.queued = false;
    if (t.active) continue;
    t.active = true;
    t.entered = 0;
    ++active_windows_;
  }
  dispatch_cv_.notify_all();
}

void StoreService::maybe_close_window_locked(Tenant& t) {
  if (!t.active || t.in_flight != 0) return;
  // A window covers exactly one collective epoch: one entry per open
  // session. Keep it open while the epoch is still filling (unless the
  // tenant has no sessions left at all — e.g. its job died mid-epoch).
  if (t.open_sessions > 0 && t.entered < t.open_sessions) return;
  t.active = false;
  t.entered = 0;
  ++t.windows;
  if (active_windows_ > 0) --active_windows_;
  schedule_locked();
}

// --------------------------------------------------------- introspection --

std::size_t StoreService::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reserved_total_;
}

std::size_t StoreService::tenant_bytes(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Tenant* t = find_tenant(name);
  return t == nullptr ? 0 : t->reserved_bytes;
}

int StoreService::tenant_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(tenants_.size());
}

TenantStats StoreService::tenant_stats(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantStats stats;
  stats.name = name;
  const Tenant* t = find_tenant(name);
  if (t == nullptr) return stats;
  stats.quota_bytes = t->config.quota_bytes;
  stats.reserved_bytes = t->reserved_bytes;
  stats.open_sessions = t->open_sessions;
  stats.commits = t->commits;
  stats.committed_bytes = t->committed_bytes;
  stats.windows = t->windows;
  stats.gate_wait_s = t->gate_wait_s;
  stats.busy_s = t->busy_s;
  stats.throughput_Bps =
      tenant_throughput(t->commits, t->committed_bytes, t->busy_s, t->gate_wait_s);
  return stats;
}

std::vector<TenantStats> StoreService::all_tenant_stats() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    names.reserve(tenants_.size());
    for (const auto& [name, t] : tenants_) names.push_back(name);
  }
  std::vector<TenantStats> all;
  all.reserve(names.size());
  for (const auto& name : names) all.push_back(tenant_stats(name));
  return all;
}

double StoreService::fairness_ratio() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fairness_ratio_locked();
}

double StoreService::fairness_ratio_locked() const {
  // min/max of per-tenant commit SLOWDOWN — demand time (gate wait +
  // busy) over busy time, the scheduling-theory fairness measure. Each
  // tenant is normalized by its own service time, so slow and fast
  // commit paths compare on equal footing: fair dispatch keeps every
  // slowdown near the same value (ratio → 1), a starved tenant's wait
  // balloons its slowdown (ratio → 0). Tenants with fewer than two
  // closed windows (one-epoch bystanders) have no sustained demand to
  // compare and are excluded.
  double min_rate = 0.0;
  double max_rate = 0.0;
  int n = 0;
  for (const auto& [name, t] : tenants_) {
    if (t.windows < 2 || t.busy_s <= 0.0) continue;
    // Invert the slowdown so "bigger = better served", matching the
    // min/max ratio convention below.
    const double rate = t.busy_s / (t.busy_s + t.gate_wait_s);
    if (n == 0) {
      min_rate = max_rate = rate;
    } else {
      min_rate = std::min(min_rate, rate);
      max_rate = std::max(max_rate, rate);
    }
    ++n;
  }
  if (n <= 1 || max_rate <= 0.0) return 1.0;
  return min_rate / max_rate;
}

void StoreService::publish_gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, t] : tenants_) publish_tenant_gauges_locked(name, t);
  publish_service_gauges_locked();
}

void StoreService::publish_tenant_gauges_locked(const std::string& name,
                                                const Tenant& t) const {
  auto& metrics = telemetry::metrics();
  const std::string prefix = "store.tenant." + name + ".";
  metrics.gauge(prefix + "bytes").set(static_cast<double>(t.reserved_bytes));
  metrics.gauge(prefix + "quota_bytes").set(static_cast<double>(t.config.quota_bytes));
  metrics.gauge(prefix + "open_sessions").set(static_cast<double>(t.open_sessions));
  metrics.gauge(prefix + "commits").set(static_cast<double>(t.commits));
  metrics.gauge(prefix + "committed_bytes").set(static_cast<double>(t.committed_bytes));
  metrics.gauge(prefix + "throughput_Bps")
      .set(tenant_throughput(t.commits, t.committed_bytes, t.busy_s, t.gate_wait_s));
}

void StoreService::publish_service_gauges_locked() const {
  auto& metrics = telemetry::metrics();
  metrics.gauge("store.capacity_bytes").set(static_cast<double>(config_.capacity_bytes));
  metrics.gauge("store.bytes_in_use").set(static_cast<double>(reserved_total_));
  metrics.gauge("store.tenants").set(static_cast<double>(tenants_.size()));
  metrics.gauge("store.fairness_ratio").set(fairness_ratio_locked());
}

}  // namespace skt::ckpt
