// Epoch agreement helpers shared by the in-memory strategies.
//
// After a restart, every rank reports whether it still holds checkpoint
// state (survivor) and at which epochs. The side/epoch decision must be
// global — the commit state machine is globally barriered — while member
// rebuild happens per encoding group.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "ckpt/protocol.hpp"
#include "mpi/comm.hpp"

namespace skt::ckpt {

/// Global min/max of the two header epochs across surviving ranks.
struct EpochSummary {
  bool any_survivor = false;
  std::uint64_t bc_min = 0;
  std::uint64_t bc_max = 0;
  std::uint64_t d_min = 0;
  std::uint64_t d_max = 0;
};

/// Collective over `world`. Ranks with has == false (blank replacement
/// nodes) contribute neutral elements.
inline EpochSummary summarize_epochs(mpi::Comm& world, bool has, std::uint64_t bc,
                                     std::uint64_t d) {
  constexpr std::uint64_t kHuge = std::numeric_limits<std::uint64_t>::max();
  struct Payload {
    std::uint64_t survivors;
    std::uint64_t bc_min, bc_max, d_min, d_max;
  };
  const Payload mine{has ? 1ull : 0ull, has ? bc : kHuge, has ? bc : 0, has ? d : kHuge,
                     has ? d : 0};
  Payload out{};
  // One allgather instead of five allreduces keeps the round count low.
  struct Entry {
    Payload p;
  };
  const std::vector<Entry> all = world.allgather<Entry>(
      std::span<const Entry>(reinterpret_cast<const Entry*>(&mine), 1));
  out = Payload{0, kHuge, 0, kHuge, 0};
  for (const Entry& e : all) {
    out.survivors += e.p.survivors;
    out.bc_min = std::min(out.bc_min, e.p.bc_min);
    out.bc_max = std::max(out.bc_max, e.p.bc_max);
    out.d_min = std::min(out.d_min, e.p.d_min);
    out.d_max = std::max(out.d_max, e.p.d_max);
  }
  EpochSummary s;
  s.any_survivor = out.survivors > 0;
  if (s.any_survivor) {
    s.bc_min = out.bc_min;
    s.bc_max = out.bc_max;
    s.d_min = out.d_min;
    s.d_max = out.d_max;
  }
  return s;
}

/// Collective over `group`: ranks of this group that lost their state.
inline std::vector<int> missing_members(mpi::Comm& group, bool has) {
  const std::uint8_t mine = has ? 1 : 0;
  const std::vector<std::uint8_t> flags =
      group.allgather<std::uint8_t>(std::span<const std::uint8_t>(&mine, 1));
  std::vector<int> missing;
  for (int r = 0; r < group.size(); ++r) {
    if (flags[static_cast<std::size_t>(r)] == 0) missing.push_back(r);
  }
  return missing;
}

}  // namespace skt::ckpt
