// Asynchronous commit pipeline: a per-process worker thread that drives
// the collective encode/seal/flush state machine off the application's
// critical path.
//
// The split follows the paper's observation that the dominant commit cost
// is the encode + flush, not the snapshot copy: commit_async() pays only
// stage() — a local memcpy into the sealed staging buffer — and hands the
// rest to the worker, which runs CheckpointProtocol::commit_staged() on
// communicators dup()'d for its exclusive use (sim::Comm is not
// thread-safe; per-thread dups give the worker its own collective
// sequence space).
//
// Staleness is bounded to ONE in-flight epoch: a second commit_async()
// first wait()s the previous ticket, so the staging buffer is never
// overwritten while the worker still reads it, and a failure can only
// ever lose the single epoch currently in the pipe.
//
// Because commit_async() is collective (every rank stages, every worker
// runs the same collectives), the drain in the destructor is collectively
// symmetric: either all workers finish the epoch or the job aborts and
// the mailbox interrupts wake every blocked worker with JobAborted.
#pragma once

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "ckpt/protocol.hpp"
#include "mpi/comm.hpp"

namespace skt::ckpt {

class StoreService;

/// Completion handle for one asynchronous commit epoch. Copyable; all
/// copies observe the same completion.
class CommitTicket {
 public:
  CommitTicket() = default;

  /// True once the pipeline finished (successfully or not). Never blocks.
  [[nodiscard]] bool poll() const;

  /// Block until the pipeline finishes. Returns the commit's stats on
  /// success; rethrows the worker's exception (e.g. mpi::JobAborted when
  /// a node died mid-pipeline) on failure. Idempotent.
  CommitStats wait() const;

  /// True when this ticket refers to a real in-flight commit (default
  /// constructed tickets are empty and poll() as done).
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Seconds the critical-path stage() copy took for this epoch (known at
  /// issue time; 0 for an empty ticket).
  [[nodiscard]] double stage_seconds() const { return state_ ? state_->stage_s : 0.0; }

 private:
  friend class AsyncCommitEngine;
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    double stage_s = 0.0;  // immutable after construction
    CommitStats stats;
    std::exception_ptr error;
  };
  std::shared_ptr<State> state_;
};

/// Owns the worker thread and the single-slot job queue. One engine per
/// Session; constructed only when the Session runs in CommitMode::kAsync.
class AsyncCommitEngine {
 public:
  /// `protocol` must outlive the engine. `world`/`group` are the worker's
  /// private communicators (pass dup()s — the worker runs collectives on
  /// them concurrently with the rank thread's own traffic).
  AsyncCommitEngine(CheckpointProtocol& protocol, mpi::Comm world, mpi::Comm group,
                    int world_rank);

  /// Drains the in-flight ticket (swallowing its failure — the job is
  /// tearing down anyway), then stops and joins the worker.
  ~AsyncCommitEngine();

  AsyncCommitEngine(const AsyncCommitEngine&) = delete;
  AsyncCommitEngine& operator=(const AsyncCommitEngine&) = delete;

  /// Collective across the job. Backpressure: waits for the previous
  /// ticket first (rethrowing its failure), then stages on the calling
  /// thread and enqueues the collective remainder for the worker.
  /// `sync_group` is the rank thread's own group comm, used for the
  /// ckpt.async_stage failpoint and the "checkpoint" critical-path timer.
  CommitTicket commit_async(mpi::Comm& sync_group);

  /// Wait for the in-flight commit, if any, rethrowing its failure.
  void drain();

  /// Serialize the worker's commit_staged() against a background scrubber
  /// (see scrubber.hpp). `mutex` must outlive the engine; nullptr (the
  /// default) disables the exclusion. Set before the first commit_async().
  void set_commit_exclusion(std::mutex* mutex) { commit_exclusion_ = mutex; }

  /// Route the worker's commits through a StoreService's fair-share
  /// turnstile as `tenant` (multi-tenant sessions; see store_service.hpp).
  /// `service` must outlive the engine; set before the first commit_async().
  void set_store_dispatch(StoreService* service, std::string tenant) {
    store_service_ = service;
    tenant_ = std::move(tenant);
  }

  /// The last ticket handed out (empty before the first commit_async).
  [[nodiscard]] CommitTicket last_ticket() const;

 private:
  void worker_loop();
  void run_job(const std::shared_ptr<CommitTicket::State>& state, double stage_s);

  CheckpointProtocol& protocol_;
  mpi::Comm world_;
  mpi::Comm group_;
  int world_rank_ = 0;
  std::mutex* commit_exclusion_ = nullptr;   // borrowed from the Session
  StoreService* store_service_ = nullptr;    // borrowed; multi-tenant only
  std::string tenant_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  /// Single-slot queue: the staged epoch waiting for (or being run by)
  /// the worker. Cleared by the worker when it picks the job up.
  std::shared_ptr<CommitTicket::State> pending_;
  double pending_stage_s_ = 0.0;
  CommitTicket last_;

  std::thread worker_;  // last member: starts after everything is ready
};

}  // namespace skt::ckpt
