// The checkpoint protocol SPI (service-provider interface) shared by every
// strategy. Applications should NOT program against this header directly:
// the front door is ckpt::Session (session.hpp), which owns the group
// communicator, drives restore-on-open, publishes telemetry, and runs the
// async commit pipeline. CheckpointProtocol is what a new *strategy*
// implements, and what layered strategies (MultiLevelCheckpoint) compose.
//
// Lifecycle (all calls are collective):
//
//   open()    — attach/create state; tells the caller whether a committed
//               checkpoint exists (restart) or the run is fresh.
//   data()    — the protected working buffer. For self-checkpoint this IS
//               the SHM-resident A1; the application computes in place.
//   user_state() — small POD area for loop counters etc. (A2 in Fig. 5).
//   commit()  — make a new checkpoint of the current contents.
//   restore() — after a restart, reconstruct data()/user_state() from the
//               newest consistent checkpoint, rebuilding any member whose
//               node was lost.
//
// Strategies that support the asynchronous pipeline additionally implement
// the staged pair:
//
//   stage()         — LOCAL, non-collective: seal a point-in-time copy of
//                     data()+user_state() into a staging buffer. This is
//                     the only step the application's critical path pays.
//   commit_staged() — collective: run the full encode/seal/flush state
//                     machine from the staged copy. Called from the async
//                     worker thread; plants "ckpt.async_*" failpoints in
//                     place of the synchronous "ckpt.*" ones.
//
// Between stage() and the end of commit_staged() the application may keep
// mutating data(); the staged copy is immutable. Strategies whose recovery
// reads the staging buffer (self, incremental) place it in the persistent
// store so a failure inside commit_staged() still recovers.
//
// Encoding happens inside a small *group* communicator (Section 2.1), but
// the commit state machine is synchronized over the *world* communicator:
// without global barriers between the seal and flush steps, two groups
// could roll back to different epochs after a failure. CommCtx carries
// both.
//
// Failpoints named "ckpt.*" (sync) / "ckpt.async_*" (staged) are planted
// between protocol steps so tests and benches can kill a node at every
// stage of the commit state machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/dirty_tracker.hpp"
#include "ckpt/plan.hpp"
#include "mpi/comm.hpp"

namespace skt::ckpt {

/// World + encoding-group communicators. When the application runs as a
/// single group, both references may point at the same Comm.
struct CommCtx {
  mpi::Comm& world;
  mpi::Comm& group;
};

struct CommitStats {
  std::uint64_t epoch = 0;     ///< epoch the commit produced
  double encode_s = 0.0;       ///< checksum calculation, wall time
  double encode_virtual_s = 0.0;  ///< modeled network time of the encode
  double flush_s = 0.0;        ///< local overwrite of the old checkpoint
  double device_s = 0.0;       ///< virtual device time (disk strategies)
  std::size_t checkpoint_bytes = 0;  ///< full-copy bytes written
  std::size_t checksum_bytes = 0;    ///< checksum bytes written
  /// Payload bytes the encode collective put on the (simulated) wire,
  /// job-wide; 0 for strategies that encode nothing.
  std::uint64_t encode_wire_bytes = 0;
  /// Dirty payload this commit actually had to move (stripe-granular).
  /// Equals the full image for un-annotated applications.
  std::size_t dirty_bytes = 0;
  /// dirty_bytes over the tracked image size; 1.0 when untracked.
  double dirty_fraction = 1.0;
  [[nodiscard]] double total_s() const {
    return encode_s + encode_virtual_s + flush_s + device_s;
  }
};

struct RestoreStats {
  std::uint64_t epoch = 0;  ///< epoch restored to
  double rebuild_s = 0.0;   ///< decoding / device read time
  bool rebuilt_member = false;  ///< true on the rank that was reconstructed
};

/// Publish a finished commit into the process-wide telemetry registry:
/// ckpt.* phase histograms (encode/flush/device/total seconds), byte
/// counters, and the commit counter. Also stamps the epoch onto this
/// thread's subsequent trace spans.
///
/// SPI hook: ckpt::Session (and its async engine) calls this once per
/// completed commit, so protocols themselves must NOT. Embedders that
/// drive a CheckpointProtocol directly should call it after each commit
/// if they want run reports to aggregate identically across strategies.
void record_commit_telemetry(const CommitStats& stats);

/// Restore-side counterpart: ckpt.restore_s histogram, restore/rebuild
/// counters, and the trace epoch. Same contract: called by the Session
/// layer, or by embedders driving the SPI directly.
void record_restore_telemetry(const RestoreStats& stats);

/// One sealed buffer a background scrubber may re-verify between commits
/// (see scrub_view()). `mirror`, when non-empty, is a same-size twin the
/// protocol guarantees byte-identical to `bytes` whenever no commit or
/// restore is in flight — e.g. self-checkpoint's C/D checksum pair after a
/// flush — so a corrupt chunk of one side can be repaired from the other.
struct ScrubRegion {
  std::string name;             ///< segment label for telemetry ("B", "C", ...)
  std::span<std::byte> bytes;   ///< the sealed contents
  std::span<std::byte> mirror;  ///< byte-identical twin, or empty
};

/// Thrown when no consistent checkpoint can recover the data (e.g. the
/// single-checkpoint strategy killed inside its update window, or two
/// failures in one group).
class Unrecoverable : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CheckpointProtocol {
 public:
  virtual ~CheckpointProtocol() = default;

  /// Collective. Returns true when a committed checkpoint exists anywhere
  /// (=> the caller must restore() instead of regenerating its data).
  virtual bool open(CommCtx ctx) = 0;

  /// The protected bulk buffer (A1). Stable address between open() and
  /// destruction. Size equals the data_bytes requested at construction.
  [[nodiscard]] virtual std::span<std::byte> data() = 0;

  /// Small user-state area (A2); checkpointed together with data().
  [[nodiscard]] virtual std::span<std::byte> user_state() = 0;

  /// Collective: checkpoint the current contents.
  virtual CommitStats commit(CommCtx ctx) = 0;

  /// True when this strategy implements the staged (asynchronous) commit
  /// pair below. Construct the protocol with async staging enabled (see
  /// FactoryParams::async_staging) before relying on it.
  [[nodiscard]] virtual bool supports_async() const { return false; }

  /// LOCAL, non-collective: copy the current data()+user_state() into the
  /// staging buffer. Returns the seconds the copy took (the critical-path
  /// cost of an async commit). Precondition: no commit_staged() in flight.
  virtual double stage() {
    throw std::logic_error("stage(): strategy does not support async commit");
  }

  /// Collective: run the encode/seal/flush state machine over the staged
  /// copy, planting ckpt.async_* failpoints. Called from the async worker
  /// thread; must not touch data()/user_state().
  virtual CommitStats commit_staged(CommCtx ctx) {
    (void)ctx;
    throw std::logic_error("commit_staged(): strategy does not support async commit");
  }

  /// The sealed staging copy, laid out [data | user_state]. Valid between
  /// stage() and the next stage(). Layered strategies (multilevel) use
  /// this to flush the staged image instead of the live buffers.
  [[nodiscard]] virtual std::span<const std::byte> staged() const { return {}; }

  /// Sealed buffers a background scrubber may verify and repair between
  /// commits. Only valid after open(); spans stay stable until the
  /// protocol is destroyed, but their CONTENTS are only quiescent while no
  /// commit/restore runs — callers must exclude commits (the Session's
  /// scrub lock) before reading. Default: nothing to scrub.
  [[nodiscard]] virtual std::vector<ScrubRegion> scrub_view() { return {}; }

  /// Largest number of concurrently lost group members this strategy's
  /// encoding can rebuild (0 = none, m for RS(k, m) layouts). Recorded in
  /// the postmortem geometry.
  [[nodiscard]] virtual int max_failures() const { return 0; }

  /// The strategy's dirty tracker, or nullptr when it tracks nothing.
  /// Valid after open(). Applications annotate writes through it (usually
  /// via Session::mark_dirty) so stage()/commit() copy and encode only the
  /// dirty stripes; an un-annotated tracker degrades to full-cost commits.
  [[nodiscard]] virtual DirtyTracker* dirty_tracker() { return nullptr; }

  /// Collective over ctx.group: can THIS group's level-1 state be rebuilt
  /// (did it lose no more members than its erasure code absorbs)? Member
  /// loss is a per-group verdict, so a multi-level session agrees on this
  /// world-wide BEFORE attempting restore(): when any group is infeasible,
  /// every group must skip level 1 and roll back to the same disk
  /// generation together — a locally successful level-1 restore would
  /// resume on a different epoch than the groups forced onto disk. The
  /// default claims feasibility; strategies that can be defeated by group
  /// member loss override it.
  [[nodiscard]] virtual bool restore_feasible(CommCtx ctx) {
    (void)ctx;
    return true;
  }

  /// Rewind this rank's stored epoch counters to `epoch`, so the next
  /// commit mints `epoch + 1` (commits agree on Max(epoch)+1 world-wide).
  /// A multi-level session calls this with the reloaded disk generation
  /// before its redundancy-re-establishing commit: that commit then
  /// re-mints exactly the restored epoch instead of a drifted one, keeping
  /// the epoch counter in lock-step with the application's own progress
  /// counter across disk rollbacks. Default: no-op.
  virtual void reseed_epoch(CommCtx ctx, std::uint64_t epoch) {
    (void)ctx;
    (void)epoch;
  }

  /// Collective: recover after a restart. Throws Unrecoverable when no
  /// consistent checkpoint exists.
  virtual RestoreStats restore(CommCtx ctx) = 0;

  /// Total per-process memory footprint (app + checkpoints + checksums),
  /// for the Table 1 accounting.
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  [[nodiscard]] virtual Strategy strategy() const = 0;

  /// Epoch of the newest locally committed checkpoint (0 = none).
  [[nodiscard]] virtual std::uint64_t committed_epoch() const = 0;
};

}  // namespace skt::ckpt
