// StoreService — checkpoint storage as a shared, multi-tenant service.
//
// One StoreService per cluster owns the checkpoint-memory budget that the
// per-node PersistentStores and the (optional) shared SnapshotVault
// provide, and serves many concurrent jobs. Each job registers as a named
// TENANT and opens its ckpt::Sessions against that namespace
// (SessionBuilder::tenant("hpl-a").service(&svc)):
//
//   * Namespace isolation — every segment key and vault key the tenant's
//     protocols create is prefixed with "ns/<tenant>/" and the segment is
//     owner-tagged in the PersistentStore, so one tenant's restore or
//     scrub can never read (or silently overwrite) another tenant's
//     stripes. Collisions fail loudly (persistent_store.hpp).
//
//   * Admission control — Session::open() asks the service for a lease
//     BEFORE the protocol allocates anything, against the Table 1
//     footprint estimate (plan.hpp). Over the tenant's quota → an
//     immediate, loud QuotaExceeded. Over the service-wide capacity →
//     the open QUEUES (FIFO of whole-job reservations, so two half-
//     admitted jobs can never deadlock on each other) and fails with
//     AdmissionTimeout when capacity never frees up.
//
//   * Fair-share commit dispatch — independent jobs' commit pipelines
//     (sync commits on rank threads, async commits on AsyncCommitEngine
//     workers) multiplex over the shared memory/NIC. The service runs a
//     tenant-granularity turnstile: at most `max_concurrent_commits`
//     tenants hold an active commit window, a window admits exactly one
//     entry per open session (one collective epoch), and the tenant then
//     re-queues behind the others — round-robin over epochs. Entry for a
//     rank of an ACTIVE tenant never blocks, so a collective commit can
//     always complete once its tenant holds the window (no cross-tenant
//     deadlock by construction).
//
// Telemetry: the service publishes store.* metrics (per-tenant reserved
// bytes, quotas, commit counts/bytes/throughput, admission waits, and a
// min/max per-tenant commit-slowdown fairness ratio) into the
// process-wide registry, so every RunReport carries the multi-tenant
// picture.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/errors.hpp"

namespace skt::storage {
class Vault;
}

namespace skt::ckpt {

struct TenantConfig {
  std::string name;
  /// Reserved-byte ceiling across ALL of this tenant's open sessions
  /// (estimates, per plan.hpp); 0 = unlimited.
  std::size_t quota_bytes = 0;
};

struct StoreServiceConfig {
  /// Service-wide checkpoint-memory budget the admission queue enforces;
  /// 0 = unbounded (quotas still apply).
  std::size_t capacity_bytes = 0;
  /// Tenants allowed to run commit pipelines concurrently (the fair-share
  /// window width). 1 = strict round-robin over epochs.
  int max_concurrent_commits = 2;
  /// A queued open gives up (AdmissionTimeout) after this long.
  double admission_timeout_s = 30.0;
  /// Shared durable tier handed to every tenant Session (level-2 flushes,
  /// BLCR images) under its namespace prefix; may be nullptr. Accepts any
  /// Vault implementation — a SnapshotVault or a node-sharded ShardedVault.
  storage::Vault* vault = nullptr;
};

/// Per-tenant service statistics (a snapshot; see tenant_stats()).
struct TenantStats {
  std::string name;
  std::size_t quota_bytes = 0;
  std::size_t reserved_bytes = 0;  ///< admitted estimate currently held
  int open_sessions = 0;           ///< admitted, not yet released
  std::uint64_t commits = 0;       ///< rank-commits completed
  std::uint64_t committed_bytes = 0;
  std::uint64_t windows = 0;       ///< commit windows completed (epochs dispatched)
  double gate_wait_s = 0.0;        ///< total seconds spent blocked at the turnstile
  double busy_s = 0.0;             ///< total accounted commit seconds
  /// Attained commit bandwidth: committed_bytes over the tenant's demand
  /// time (gate_wait_s + commit busy seconds). Idle/compute/restart gaps
  /// don't count, so the figure is comparable across tenants with
  /// different lifetimes.
  double throughput_Bps = 0.0;
};

class StoreService {
 public:
  explicit StoreService(StoreServiceConfig config = {});

  /// Force-fails queued admissions (their opens throw AdmissionTimeout),
  /// waits out in-flight commit windows and blocked waiters, then tears
  /// down. The service must outlive its Sessions' release() calls — hold
  /// leases only while the service exists.
  ~StoreService();

  StoreService(const StoreService&) = delete;
  StoreService& operator=(const StoreService&) = delete;

  // ---------------------------------------------------------- tenants --
  /// Throws ConfigError("tenant", ...) on an empty or duplicate name.
  void register_tenant(const TenantConfig& config);

  [[nodiscard]] bool has_tenant(const std::string& name) const;

  /// "ns/<tenant>/" — prepended to every segment/vault key of the tenant
  /// and used as the PersistentStore owner tag.
  [[nodiscard]] static std::string namespace_prefix(const std::string& tenant);

  [[nodiscard]] storage::Vault* vault() const { return config_.vault; }
  [[nodiscard]] const StoreServiceConfig& config() const { return config_; }

  // -------------------------------------------------------- admission --
  /// Called by Session::open() on every rank, collectively. The first
  /// rank of a job to arrive reserves `per_rank_bytes * expected_ranks`
  /// as one atomic whole-job lease (queueing FIFO while the service is
  /// over capacity); the job's other ranks join that lease without
  /// reserving again. Returns a lease id for release().
  /// Throws ConfigError (unknown tenant), QuotaExceeded (tenant quota),
  /// or AdmissionTimeout (capacity never freed / service shut down).
  std::uint64_t admit(const std::string& tenant, std::size_t per_rank_bytes,
                      int expected_ranks);

  /// Release one rank's admission (Session teardown). Frees that rank's
  /// share; when every attached rank has released, any remainder of the
  /// whole-job reservation is freed too.
  void release(std::uint64_t lease_id) noexcept;

  // ----------------------------------------------- fair-share dispatch --
  /// Blocks until `tenant` holds an active commit window with entry slots
  /// left, then takes one slot. Ranks of an already-active tenant pass
  /// straight through (a collective epoch can always complete).
  void begin_commit(const std::string& tenant);

  /// Returns the slot taken by begin_commit and accounts the commit.
  /// `bytes` is the payload the epoch moved (0 for a failed commit).
  void end_commit(const std::string& tenant, std::size_t bytes, double seconds) noexcept;

  // ---------------------------------------------------- introspection --
  [[nodiscard]] std::size_t capacity_bytes() const { return config_.capacity_bytes; }
  [[nodiscard]] std::size_t bytes_in_use() const;
  [[nodiscard]] std::size_t tenant_bytes(const std::string& name) const;
  [[nodiscard]] int tenant_count() const;
  [[nodiscard]] TenantStats tenant_stats(const std::string& name) const;
  [[nodiscard]] std::vector<TenantStats> all_tenant_stats() const;

  /// min / max of per-tenant commit slowdown — demand time (gate wait +
  /// busy) over busy time — across tenants that completed at least two
  /// commit windows; one-epoch bystanders have no sustained demand to
  /// compare and are excluded. Each tenant is normalized by its own
  /// service time, so slow and fast commit paths compare on equal
  /// footing. 1.0 with fewer than two such tenants; fair dispatch keeps
  /// the ratio well above 0.5, while a starved tenant's gate-wait
  /// balloons its slowdown and drags the ratio toward 0.
  [[nodiscard]] double fairness_ratio() const;

  /// Re-publish every store.* gauge into telemetry::metrics() (also done
  /// incrementally on admit/release/end_commit).
  void publish_gauges() const;

 private:
  struct Tenant {
    TenantConfig config;
    std::size_t reserved_bytes = 0;
    int open_sessions = 0;
    std::uint64_t commits = 0;
    std::uint64_t committed_bytes = 0;
    std::uint64_t windows = 0;  ///< commit windows closed
    double busy_s = 0.0;        ///< accounted commit seconds
    double gate_wait_s = 0.0;   ///< seconds blocked in begin_commit
    // Dispatch turnstile state.
    bool active = false;   ///< holds a commit window
    bool queued = false;   ///< waiting in dispatch_queue_
    int entered = 0;       ///< entries taken in this activation
    int in_flight = 0;     ///< entries not yet ended
  };

  struct Lease {
    std::uint64_t id = 0;
    std::string tenant;
    std::size_t per_rank_bytes = 0;
    int expected_ranks = 0;
    int attached = 0;
    int released = 0;
    std::size_t reserved_bytes = 0;  ///< remaining whole-job reservation
    bool granted = false;
    bool failed = false;  ///< timed out / service shut down
  };

  [[nodiscard]] Tenant& tenant_ref(const std::string& name);
  [[nodiscard]] const Tenant* find_tenant(const std::string& name) const;
  /// Activate queued tenants while window slots are free. Lock held.
  void schedule_locked();
  /// Deactivate `t` when its activation is spent. Lock held.
  void maybe_close_window_locked(Tenant& t);
  [[nodiscard]] double fairness_ratio_locked() const;
  void publish_tenant_gauges_locked(const std::string& name, const Tenant& t) const;
  void publish_service_gauges_locked() const;

  StoreServiceConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable admission_cv_;
  std::condition_variable dispatch_cv_;
  bool shutdown_ = false;

  std::map<std::string, Tenant> tenants_;
  std::map<std::uint64_t, Lease> leases_;  ///< open (not fully released)
  std::deque<std::uint64_t> admission_queue_;  ///< lease ids waiting FIFO
  std::deque<std::string> dispatch_queue_;     ///< tenants waiting for a window
  std::uint64_t next_lease_id_ = 1;
  std::size_t reserved_total_ = 0;
  int active_windows_ = 0;
  int waiters_ = 0;  ///< threads blocked in admit()/begin_commit() waits
};

/// RAII commit-gate guard used by Session / AsyncCommitEngine around one
/// collective commit. Tolerates a null service (single-tenant sessions).
class CommitGate {
 public:
  CommitGate(StoreService* service, const std::string& tenant)
      : service_(service), tenant_(tenant) {
    if (service_ != nullptr) service_->begin_commit(tenant_);
  }
  ~CommitGate() {
    if (service_ != nullptr) service_->end_commit(tenant_, bytes_, seconds_);
  }
  CommitGate(const CommitGate&) = delete;
  CommitGate& operator=(const CommitGate&) = delete;

  /// Account the epoch's payload before the gate closes.
  void account(std::size_t bytes, double seconds) {
    bytes_ = bytes;
    seconds_ = seconds;
  }

 private:
  StoreService* service_;
  std::string tenant_;
  std::size_t bytes_ = 0;
  double seconds_ = 0.0;
};

}  // namespace skt::ckpt
