#include "ckpt/dirty_tracker.hpp"

#include <algorithm>
#include <stdexcept>

namespace skt::ckpt {

void DirtyTracker::reset(std::size_t data_bytes, std::size_t user_bytes,
                         std::size_t stripe_bytes, std::size_t stripe_count) {
  if (stripe_bytes == 0 || stripe_count == 0) {
    throw std::invalid_argument("DirtyTracker: zero stripe geometry");
  }
  if (stripe_bytes * stripe_count < data_bytes + user_bytes) {
    throw std::invalid_argument("DirtyTracker: stripes do not cover data + user state");
  }
  data_bytes_ = data_bytes;
  user_bytes_ = user_bytes;
  stripe_bytes_ = stripe_bytes;
  flags_.assign(stripe_count, 0);
  shadow_.clear();
  annotated_ = false;
}

void DirtyTracker::mark_stripes(std::size_t offset, std::size_t len) {
  if (len == 0) return;
  // offset/len were validated against the tracked image by the caller, so
  // `last` cannot pass the flag vector — the silent `s < size()` clamp the
  // old incremental tracker used (which could drop a tail stripe without a
  // trace) is replaced by a loud invariant.
  const std::size_t first = offset / stripe_bytes_;
  const std::size_t last = (offset + len - 1) / stripe_bytes_;
  if (last >= flags_.size()) {
    throw std::out_of_range("DirtyTracker: marked range exceeds tracked stripes");
  }
  for (std::size_t s = first; s <= last; ++s) flags_[s] = 1;
  annotated_ = true;
}

void DirtyTracker::mark(std::size_t offset, std::size_t len) {
  if (!configured()) throw std::logic_error("DirtyTracker: not configured");
  if (len > data_bytes_ || offset > data_bytes_ - len) {
    throw std::out_of_range("DirtyTracker::mark: range exceeds data()");
  }
  mark_stripes(offset, len);
}

void DirtyTracker::mark_all() {
  if (!configured()) throw std::logic_error("DirtyTracker: not configured");
  std::fill(flags_.begin(), flags_.end(), std::uint8_t{1});
  annotated_ = true;
}

void DirtyTracker::mark_user_tail() {
  if (!configured()) throw std::logic_error("DirtyTracker: not configured");
  // The tail being rewritten every commit is a protocol invariant, not an
  // application annotation — it must not flip an un-annotated tracker
  // (whose effective() is all-dirty) into a tail-only one.
  const bool was = annotated_;
  mark_stripes(data_bytes_, user_bytes_);
  annotated_ = was;
}

std::vector<std::uint8_t> DirtyTracker::effective() const {
  if (!annotated_) return std::vector<std::uint8_t>(flags_.size(), 1);
  return flags_;
}

std::size_t DirtyTracker::dirty_stripes() const {
  if (!annotated_) return flags_.size();
  std::size_t n = 0;
  for (std::uint8_t f : flags_) n += f;
  return n;
}

double DirtyTracker::dirty_fraction() const {
  if (flags_.empty()) return 0.0;
  return static_cast<double>(dirty_stripes()) / static_cast<double>(flags_.size());
}

void DirtyTracker::clear() {
  std::fill(flags_.begin(), flags_.end(), std::uint8_t{0});
  annotated_ = false;
}

std::uint64_t DirtyTracker::stripe_hash(std::span<const std::byte> image,
                                        std::size_t s) const {
  // FNV-1a over the stripe; bytes past image.size() count as zero so a
  // combined [data|user] view shorter than the padded image hashes as if
  // zero-padded (matching what the codecs encode).
  std::uint64_t h = 1469598103934665603ULL;
  const std::size_t begin = s * stripe_bytes_;
  const std::size_t end = std::min(begin + stripe_bytes_, image.size());
  for (std::size_t i = begin; i < end; ++i) {
    h ^= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(image[i]));
    h *= 1099511628211ULL;
  }
  for (std::size_t i = end; i < begin + stripe_bytes_; ++i) h *= 1099511628211ULL;
  return h;
}

void DirtyTracker::capture_shadow(std::span<const std::byte> image) {
  if (!configured()) throw std::logic_error("DirtyTracker: not configured");
  shadow_.resize(flags_.size());
  for (std::size_t s = 0; s < flags_.size(); ++s) shadow_[s] = stripe_hash(image, s);
}

void DirtyTracker::detect(std::span<const std::byte> image) {
  if (!has_shadow()) throw std::logic_error("DirtyTracker::detect: no shadow captured");
  for (std::size_t s = 0; s < flags_.size(); ++s) {
    const std::uint64_t h = stripe_hash(image, s);
    if (h != shadow_[s]) {
      flags_[s] = 1;
      shadow_[s] = h;
    }
  }
  annotated_ = true;
}

}  // namespace skt::ckpt
