#include "ckpt/session.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "ckpt/multilevel.hpp"
#include "ckpt/plan.hpp"
#include "telemetry/forensics.hpp"
#include "util/clock.hpp"

namespace skt::ckpt {
namespace {

/// Leave the forensic note a postmortem reads group membership and stripe
/// geometry from. Cheap (one map insert) and always on: the recorder is
/// what makes a kill diagnosable after the rank thread is gone.
void note_session_geometry(mpi::Comm& group, CheckpointProtocol& protocol) {
  telemetry::GroupGeometry geo;
  geo.strategy = std::string(to_string(protocol.strategy()));
  geo.group_size = group.size();
  geo.parity_count = protocol.max_failures();
  geo.members.reserve(static_cast<std::size_t>(group.size()));
  for (int i = 0; i < group.size(); ++i) {
    geo.members.push_back(group.translate(i));
    geo.nodes.push_back(group.node_id_of(i));
  }
  if (!geo.members.empty() && group.size() > 0) {
    geo.group_index = geo.members.front() / group.size();
  }
  geo.data_bytes = protocol.data().size();
  if (const DirtyTracker* t = protocol.dirty_tracker()) {
    geo.stripe_bytes = t->stripe_bytes();
    geo.stripe_count = t->stripe_count();
  }
  const int me = group.world_rank();
  telemetry::forensics::recorder().note_geometry(me, std::move(geo));
}

}  // namespace

Session SessionBuilder::build(mpi::Comm& world) const {
  // Unified configuration validation: every misconfigured knob reports
  // through ConfigError with its field name, before anything is built.
  if (params_.data_bytes == 0) {
    throw ConfigError("data_bytes", "must be > 0");
  }
  if (group_size_ < 0) {
    throw ConfigError("group_size", "must be >= 0 (0 = one job-wide group)");
  }
  if (group_.has_value() && group_size_ > 0) {
    throw ConfigError("group_size", "mutually exclusive with group(): pass one, not both");
  }
  if (group_size_ > 0 && world.size() % group_size_ != 0) {
    throw ConfigError("group_size", "must divide the world size (world " +
                                        std::to_string(world.size()) + ", group size " +
                                        std::to_string(group_size_) + ")");
  }
  if (params_.parity_degree < 1) {
    throw ConfigError("parity_degree", "must be >= 1");
  }
  const int effective_group = group_.has_value() ? group_->size()
                              : group_size_ > 0  ? group_size_
                                                 : world.size();
  const bool group_coded = strategy_ == Strategy::kSelf ||
                           strategy_ == Strategy::kDouble ||
                           strategy_ == Strategy::kSelfIncremental;
  if (group_coded && params_.parity_degree >= 2 &&
      effective_group < params_.parity_degree + 2) {
    throw ConfigError("parity_degree",
                      "RS(k, m) parity needs group size >= parity_degree + 2 (group size " +
                          std::to_string(effective_group) + ", parity_degree " +
                          std::to_string(params_.parity_degree) + ")");
  }
  if (service_ != nullptr && tenant_.empty()) {
    throw ConfigError("tenant", "service() is set but no tenant() name was given");
  }
  if (service_ == nullptr && !tenant_.empty()) {
    throw ConfigError("service", "tenant() is set but no StoreService was given");
  }
  if (service_ != nullptr && !service_->has_tenant(tenant_)) {
    throw ConfigError("tenant",
                      "unknown tenant '" + tenant_ + "' (register it with the StoreService first)");
  }

  FactoryParams params = params_;
  params.async_staging = (mode_ == CommitMode::kAsync);
  if (service_ != nullptr) {
    // Namespace isolation: every segment and vault key this session
    // creates lives under the tenant prefix, and the segments carry the
    // namespace as their owner tag — a colliding key from another tenant
    // is refused by the PersistentStore instead of silently shared.
    const std::string ns = StoreService::namespace_prefix(tenant_);
    params.key_prefix = ns + params.key_prefix;
    params.owner = ns;
    if (params.vault == nullptr) params.vault = service_->vault();
  }
  if (strategy_ == Strategy::kBlcr && params.vault == nullptr) {
    throw ConfigError("vault", "required for Strategy::kBlcr");
  }
  if (level2_flush_every_ > 0 && params.vault == nullptr) {
    throw ConfigError("vault", "required for level2_flush_every");
  }

  std::unique_ptr<mpi::Comm> group;
  if (group_.has_value()) {
    group = std::make_unique<mpi::Comm>(*group_);
  } else {
    const int color = group_size_ > 0 ? world.rank() / group_size_ : 0;
    group = std::make_unique<mpi::Comm>(world.split(color, world.rank()));
  }

  std::unique_ptr<CheckpointProtocol> protocol;
  if (level2_flush_every_ > 0) {
    MultiLevelCheckpoint::Params ml;
    ml.key_prefix = params.key_prefix;
    ml.data_bytes = params.data_bytes;
    ml.user_bytes = params.user_bytes;
    ml.codec = params.codec;
    ml.parity_degree = params.parity_degree;
    ml.level1 = strategy_;
    ml.flush_every = level2_flush_every_;
    ml.vault = params.vault;
    ml.device = params.device;
    ml.async_staging = params.async_staging;
    ml.owner = params.owner;
    protocol = std::make_unique<MultiLevelCheckpoint>(ml);
  } else {
    protocol = make_protocol(strategy_, params);
  }

  std::unique_ptr<AsyncCommitEngine> engine;
  if (mode_ == CommitMode::kAsync) {
    if (!protocol->supports_async()) {
      throw ConfigError("mode", "strategy does not support async commit");
    }
    // The worker thread gets private communicators: sim::Comm is not
    // thread-safe, so it must not share the rank thread's handles. dup()
    // is communication-free but the derivation is ordered — every rank
    // dups world first, then its group.
    engine = std::make_unique<AsyncCommitEngine>(*protocol, world.dup(), group->dup(),
                                                 world.world_rank());
    if (service_ != nullptr) engine->set_store_dispatch(service_, tenant_);
  }

  // Admission is against the planning estimate of the session's
  // persistent footprint (Table 1 math), computed identically on every
  // rank so the collective admit sees one consistent job reservation.
  std::size_t admit_bytes = 0;
  if (service_ != nullptr) {
    admit_bytes = estimate_session_bytes(strategy_, params.data_bytes, params.user_bytes,
                                         effective_group, params.parity_degree,
                                         params.async_staging, level2_flush_every_ > 0);
  }

  return Session(world, std::move(group), std::move(protocol), std::move(engine), mode_,
                 scrub_interval_s_, service_, tenant_, admit_bytes);
}

Session::Session(mpi::Comm& world, std::unique_ptr<mpi::Comm> group,
                 std::unique_ptr<CheckpointProtocol> protocol,
                 std::unique_ptr<AsyncCommitEngine> engine, CommitMode mode,
                 double scrub_interval_s, StoreService* service, std::string tenant,
                 std::size_t admit_bytes)
    : world_(&world),
      group_(std::move(group)),
      protocol_(std::move(protocol)),
      engine_(std::move(engine)),
      mode_(mode),
      scrub_interval_s_(scrub_interval_s),
      service_(service),
      tenant_(std::move(tenant)),
      admit_bytes_(admit_bytes) {}

void Session::require_open() const {
  if (!opened_) throw std::logic_error("Session: open() has not been called");
}

OpenOutcome Session::open() {
  if (opened_) throw std::logic_error("Session: open() called twice");
  if (service_ != nullptr) {
    // Admission precedes allocation: an over-quota or timed-out open
    // throws here with ZERO segments created, and the lease is released
    // automatically when the Session goes away.
    auto lease = std::make_unique<LeaseHolder>();
    lease->service = service_;
    lease->id = service_->admit(tenant_, admit_bytes_, world_->size());
    lease_ = std::move(lease);
  }
  opened_ = true;
  CommCtx ctx{*world_, *group_};
  if (!protocol_->open(ctx)) {
    note_session_geometry(*group_, *protocol_);
    start_scrubber();
    return OpenOutcome::kFresh;
  }
  const RestoreStats stats = protocol_->restore(ctx);
  note_session_geometry(*group_, *protocol_);
  start_scrubber();
  last_restore_ = stats;
  record_restore_telemetry(stats);
  telemetry::forensics::RestoreNote note;
  note.rank = world_->world_rank();
  note.epoch = stats.epoch;
  note.rebuilt_member = stats.rebuilt_member;
  note.rebuild_s = stats.rebuild_s;
  telemetry::forensics::recorder().note_restore(note);
  return OpenOutcome::kRestored;
}

void Session::start_scrubber() {
  if (scrub_interval_s_ <= 0.0) return;
  Scrubber::Options options;
  options.interval_s = scrub_interval_s_;
  scrubber_ = std::make_unique<Scrubber>(*protocol_, options);
  if (engine_ != nullptr) {
    engine_->set_commit_exclusion(&scrubber_->commit_exclusion());
  }
  scrubber_->start();
}

CommitStats Session::commit() {
  require_open();
  drain();
  // Multi-tenant sessions take their fair-share turnstile slot first (a
  // no-op without a service), then exclude the scrubber while the state
  // machine rewrites the sealed buffers it verifies.
  CommitGate gate(service_, tenant_);
  util::WallTimer timer;
  std::unique_lock<std::mutex> scrub_lock;
  if (scrubber_ != nullptr) {
    scrub_lock = std::unique_lock(scrubber_->commit_exclusion());
  }
  const CommitStats stats = protocol_->commit({*world_, *group_});
  gate.account(stats.checkpoint_bytes + stats.checksum_bytes, timer.seconds());
  record_commit_telemetry(stats);
  telemetry::forensics::recorder().note_commit(
      world_->world_rank(), {stats.epoch, stats.dirty_bytes, stats.dirty_fraction});
  return stats;
}

CommitTicket Session::commit_async() {
  require_open();
  if (engine_ == nullptr) {
    throw std::logic_error("Session: commit_async() requires CommitMode::kAsync");
  }
  return engine_->commit_async(*group_);
}

void Session::drain() {
  if (engine_ != nullptr) engine_->drain();
}

}  // namespace skt::ckpt
