#include "ckpt/double_checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "ckpt/epoch.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"

namespace skt::ckpt {

DoubleCheckpoint::DoubleCheckpoint(Params params) : params_(std::move(params)) {
  if (params_.data_bytes == 0) throw std::invalid_argument("DoubleCheckpoint: data_bytes == 0");
  if (params_.user_bytes == 0) throw std::invalid_argument("DoubleCheckpoint: user_bytes == 0");
  combined_bytes_ = params_.data_bytes + params_.user_bytes;
  app_.assign(params_.data_bytes, std::byte{0});
  user_.assign(params_.user_bytes, std::byte{0});
}

std::string DoubleCheckpoint::key(const char* part, int pair) const {
  return params_.key_prefix + ".r" + std::to_string(world_rank_) + ".double." + part +
         std::to_string(pair);
}

std::string DoubleCheckpoint::key(const char* part) const {
  return params_.key_prefix + ".r" + std::to_string(world_rank_) + ".double." + part;
}

void DoubleCheckpoint::require_open() const {
  if (!ckpt_[0]) throw std::logic_error("DoubleCheckpoint: open() has not been called");
}

bool DoubleCheckpoint::open(CommCtx ctx) {
  world_rank_ = ctx.group.world_rank();
  coder_ = enc::make_coder(params_.parity_degree, params_.codec, combined_bytes_,
                           ctx.group.size());
  const std::size_t stripes = coder_->stripe_count();
  tracker_.reset(params_.data_bytes, params_.user_bytes, coder_->stripe_bytes(), stripes);
  if (params_.async_staging) image_.assign(coder_->padded_bytes(), std::byte{0});
  // Until a commit establishes the pair-content invariant, every stripe of
  // both pairs must be treated as stale.
  pair_dirty_[0].assign(stripes, 1);
  pair_dirty_[1].assign(stripes, 1);

  sim::PersistentStore& store = ctx.group.store();
  const std::string hdr_key = key("hdr");
  survivor_ = false;
  if (sim::SegmentPtr existing = store.attach(hdr_key); existing != nullptr) {
    if (load_header(existing).valid()) survivor_ = true;
  }

  for (int p = 0; p < 2; ++p) {
    ckpt_[p] = store.create(key("B", p), coder_->padded_bytes(), params_.owner);
    check_[p] = store.create(key("C", p), coder_->redundancy_bytes(), params_.owner);
  }
  header_ = store.create(hdr_key, sizeof(Header), params_.owner);

  const Header mine = load_header(header_);
  const EpochSummary global =
      summarize_epochs(ctx.world, survivor_, mine.bc_epoch, mine.d_epoch);
  if (!global.any_survivor) {
    store_header(header_, load_or_init(header_, params_.data_bytes, params_.user_bytes,
                                       static_cast<std::uint32_t>(ctx.group.size()),
                                       static_cast<std::uint32_t>(params_.codec)));
    survivor_ = true;
    return false;
  }
  return global.bc_max >= 1 || global.d_max >= 1;
}

std::span<std::byte> DoubleCheckpoint::data() {
  require_open();
  return app_;
}

std::span<std::byte> DoubleCheckpoint::user_state() { return user_; }

std::vector<std::uint8_t> DoubleCheckpoint::fold_dirty() {
  // The user-state tail is part of every snapshot.
  tracker_.mark_user_tail();
  std::vector<std::uint8_t> eff = tracker_.effective();
  for (std::size_t s = 0; s < eff.size(); ++s) {
    if (!eff[s]) continue;
    pair_dirty_[0][s] = 1;
    pair_dirty_[1][s] = 1;
  }
  tracker_.clear();
  return eff;
}

void DoubleCheckpoint::copy_stripe_to(std::size_t s, std::byte* dst) const {
  const std::size_t stripe = tracker_.stripe_bytes();
  const std::size_t begin = s * stripe;
  if (begin >= combined_bytes_) return;  // padding-only stripe
  const std::size_t end = std::min(begin + stripe, combined_bytes_);
  std::size_t pos = begin;
  if (pos < params_.data_bytes) {
    const std::size_t len = std::min(end, params_.data_bytes) - pos;
    std::memcpy(dst + pos, app_.data() + pos, len);
    pos += len;
  }
  if (pos < end) {
    std::memcpy(dst + pos, user_.data() + (pos - params_.data_bytes), end - pos);
  }
}

double DoubleCheckpoint::stage() {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("DoubleCheckpoint: stage() without async_staging");
  }
  SKT_SPAN("ckpt.stage");
  util::WallTimer timer;
  // image_ equals the working content as of the previous stage() on every
  // clean stripe, so only the stripes dirtied since then need copying.
  const std::vector<std::uint8_t> eff = fold_dirty();
  for (std::size_t s = 0; s < eff.size(); ++s) {
    if (eff[s]) copy_stripe_to(s, image_.data());
  }
  return timer.seconds();
}

std::span<const std::byte> DoubleCheckpoint::staged() const {
  if (!params_.async_staging || image_.empty()) return {};
  return std::span<const std::byte>(image_.data(), combined_bytes_);
}

CommitStats DoubleCheckpoint::commit(CommCtx ctx) {
  require_open();
  // With staging enabled even a synchronous commit snapshots through the
  // image so its dirty-mirror invariant survives interleaving with the
  // async pipeline (cf. SelfCheckpoint::commit).
  if (params_.async_staging) stage();
  return commit_impl(ctx, /*async=*/false);
}

CommitStats DoubleCheckpoint::commit_staged(CommCtx ctx) {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("DoubleCheckpoint: commit_staged() without async_staging");
  }
  return commit_impl(ctx, /*async=*/true);
}

CommitStats DoubleCheckpoint::commit_impl(CommCtx ctx, bool async) {
  SKT_SPAN("ckpt.commit");
  Header h = load_or_init(header_, params_.data_bytes, params_.user_bytes,
                          static_cast<std::uint32_t>(ctx.group.size()),
                          static_cast<std::uint32_t>(params_.codec));
  // Globally agreed epoch (see the note in SelfCheckpoint::commit).
  const std::uint64_t next = ctx.world.allreduce_value<std::uint64_t>(
                                 std::max(h.bc_epoch, h.d_epoch), mpi::Max{}) +
                             1;
  // Alternate targets: epoch e lives in pair e % 2, so the commit always
  // overwrites the older pair and the newer one stays intact throughout.
  const int target = static_cast<int>(next % 2);

  ctx.group.failpoint(async ? "ckpt.async_begin" : "ckpt.begin");
  ctx.world.barrier();

  // Staged commits snapshotted (flags + image) in stage(); synchronous
  // ones fold the live flags here.
  const bool staging = params_.async_staging;
  if (!staging) fold_dirty();
  std::vector<std::uint8_t>& dirty = pair_dirty_[target];
  std::size_t dirty_stripes = 0;
  for (std::uint8_t d : dirty) dirty_stripes += d;
  const std::size_t stripe = tracker_.stripe_bytes();

  CommitStats stats;
  stats.epoch = next;
  telemetry::set_epoch(next);

  // Save the target pair's OLD content of the dirty stripes — the delta
  // base the flush is about to overwrite. Deliberately uninitialized: the
  // codec never reads the base on clean stripes (and its full-encode
  // fallback reads only `next`, the fully flushed pair).
  util::AlignedBuffer base(ckpt_[target]->size());
  util::WallTimer flush_timer;
  std::size_t flushed = 0;
  {
    SKT_SPAN("ckpt.flush");
    for (std::size_t s = 0; s < dirty.size(); ++s) {
      if (!dirty[s]) continue;
      std::memcpy(base.data() + s * stripe, ckpt_[target]->bytes().data() + s * stripe,
                  stripe);
      if (staging) {
        std::memcpy(ckpt_[target]->bytes().data() + s * stripe, image_.data() + s * stripe,
                    stripe);
      } else {
        copy_stripe_to(s, ckpt_[target]->bytes().data());
      }
      flushed += stripe;
    }
  }
  stats.flush_s = flush_timer.seconds();
  ctx.group.failpoint(async ? "ckpt.async_mid_update" : "ckpt.mid_update");

  const double encode_virtual_before = ctx.group.virtual_seconds();
  util::WallTimer encode_timer;
  {
    SKT_SPAN("ckpt.encode");
    coder_->encode_delta(ctx.group, {base.data(), base.size()}, ckpt_[target]->bytes(),
                         check_[target]->bytes(), check_[target]->bytes(), dirty);
  }
  stats.encode_s = encode_timer.seconds();
  stats.encode_virtual_s = ctx.group.virtual_seconds() - encode_virtual_before;
  ctx.group.failpoint(async ? "ckpt.async_encode_done" : "ckpt.encode_done");
  std::fill(dirty.begin(), dirty.end(), std::uint8_t{0});

  // Global barrier before publication: no rank may declare the new pair
  // committed until every rank finished writing it.
  ctx.world.barrier();
  if (target == 0) {
    h.bc_epoch = next;
  } else {
    h.d_epoch = next;
  }
  store_header(header_, h);
  ctx.group.failpoint(async ? "ckpt.async_flushed" : "ckpt.flushed");
  ctx.world.barrier();

  stats.checkpoint_bytes = flushed;
  stats.checksum_bytes = check_[target]->size();
  stats.dirty_bytes = dirty_stripes * stripe;
  stats.dirty_fraction = dirty.empty() ? 0.0
                                       : static_cast<double>(dirty_stripes) /
                                             static_cast<double>(dirty.size());
  if (!async) ctx.group.record_time("checkpoint", stats.total_s());
  return stats;
}

bool DoubleCheckpoint::restore_feasible(CommCtx ctx) {
  return static_cast<int>(missing_members(ctx.group, survivor_).size()) <=
         coder_->max_failures();
}

RestoreStats DoubleCheckpoint::restore(CommCtx ctx) {
  require_open();
  SKT_SPAN("ckpt.restore");
  ctx.group.failpoint("ckpt.restore");

  const Header mine = load_header(header_);
  const EpochSummary global =
      summarize_epochs(ctx.world, survivor_, mine.bc_epoch, mine.d_epoch);
  const std::vector<int> missing = missing_members(ctx.group, survivor_);
  if (static_cast<int>(missing.size()) > coder_->max_failures()) {
    throw Unrecoverable("double-checkpoint: " + std::to_string(missing.size()) +
                        " members lost in one group; the degree-" +
                        std::to_string(coder_->max_failures()) +
                        " erasure code cannot recover");
  }

  // A pair is usable when its epoch is uniform across survivors (a pair
  // under active overwrite at failure time has mixed epochs). Choose the
  // newest usable one.
  const bool pair0_ok = global.bc_min == global.bc_max && global.bc_min >= 1;
  const bool pair1_ok = global.d_min == global.d_max && global.d_min >= 1;
  int pair = -1;
  std::uint64_t target = 0;
  if (pair0_ok && global.bc_min > target) {
    pair = 0;
    target = global.bc_min;
  }
  if (pair1_ok && global.d_min > target) {
    pair = 1;
    target = global.d_min;
  }
  if (pair < 0) {
    throw Unrecoverable("double-checkpoint: no complete pair to restore");
  }

  RestoreStats stats;
  stats.epoch = target;
  util::WallTimer timer;

  if (!missing.empty()) {
    coder_->rebuild(ctx.group, missing, ckpt_[pair]->bytes(), check_[pair]->bytes());
  }
  std::memcpy(app_.data(), ckpt_[pair]->bytes().data(), app_.size());
  std::memcpy(user_.data(), ckpt_[pair]->bytes().data() + app_.size(), user_.size());

  // Re-establish the dirty-accumulation invariants: the staging image (if
  // any) mirrors the restored pair exactly, the other pair's content is
  // unknown (a rebuilt member's is zeros), and nothing is dirty relative
  // to the snapshot.
  if (!image_.empty()) {
    std::memcpy(image_.data(), ckpt_[pair]->bytes().data(), image_.size());
  }
  std::fill(pair_dirty_[pair].begin(), pair_dirty_[pair].end(), std::uint8_t{0});
  std::fill(pair_dirty_[1 - pair].begin(), pair_dirty_[1 - pair].end(), std::uint8_t{1});
  tracker_.clear();

  // Re-sync the header. A rebuilt member only holds the restored pair; its
  // other pair reads epoch 0 until the next commit overwrites it, which the
  // newest-usable-pair rule tolerates.
  Header h = load_header(header_);
  h.magic = Header::kMagic;
  h.data_bytes = params_.data_bytes;
  h.user_bytes = params_.user_bytes;
  h.group_size = static_cast<std::uint32_t>(ctx.group.size());
  h.codec = static_cast<std::uint32_t>(params_.codec);
  if (!survivor_) {
    h.bc_epoch = pair == 0 ? target : 0;
    h.d_epoch = pair == 1 ? target : 0;
  }
  store_header(header_, h);
  survivor_ = true;

  stats.rebuild_s = timer.seconds();
  stats.rebuilt_member =
      std::find(missing.begin(), missing.end(), ctx.group.rank()) != missing.end();
  ctx.group.record_time("recover", stats.rebuild_s);
  ctx.world.barrier();
  return stats;
}

std::size_t DoubleCheckpoint::memory_bytes() const {
  if (!ckpt_[0]) return 0;
  return app_.size() + user_.size() + image_.size() + ckpt_[0]->size() + ckpt_[1]->size() +
         check_[0]->size() + check_[1]->size() + sizeof(Header) + pair_dirty_[0].size() +
         pair_dirty_[1].size() + tracker_.stripe_count();
}

std::uint64_t DoubleCheckpoint::committed_epoch() const {
  if (!header_) return 0;
  const Header h = load_header(header_);
  return h.valid() ? std::max(h.bc_epoch, h.d_epoch) : 0;
}

std::vector<ScrubRegion> DoubleCheckpoint::scrub_view() {
  require_open();
  // The two pairs hold different epochs, so no segment has a
  // byte-identical twin: corruption is detectable, repair needs the group.
  return {{"B0", ckpt_[0]->bytes(), {}},
          {"B1", ckpt_[1]->bytes(), {}},
          {"C0", check_[0]->bytes(), {}},
          {"C1", check_[1]->bytes(), {}}};
}

int DoubleCheckpoint::max_failures() const {
  return coder_ ? coder_->max_failures() : params_.parity_degree;
}

}  // namespace skt::ckpt
