#include "ckpt/double_checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "ckpt/epoch.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"

namespace skt::ckpt {

DoubleCheckpoint::DoubleCheckpoint(Params params) : params_(std::move(params)) {
  if (params_.data_bytes == 0) throw std::invalid_argument("DoubleCheckpoint: data_bytes == 0");
  if (params_.user_bytes == 0) throw std::invalid_argument("DoubleCheckpoint: user_bytes == 0");
  combined_bytes_ = params_.data_bytes + params_.user_bytes;
  app_.assign(params_.data_bytes, std::byte{0});
  user_.assign(params_.user_bytes, std::byte{0});
  if (params_.async_staging) stage_.assign(combined_bytes_, std::byte{0});
}

std::string DoubleCheckpoint::key(const char* part, int pair) const {
  return params_.key_prefix + ".r" + std::to_string(world_rank_) + ".double." + part +
         std::to_string(pair);
}

std::string DoubleCheckpoint::key(const char* part) const {
  return params_.key_prefix + ".r" + std::to_string(world_rank_) + ".double." + part;
}

void DoubleCheckpoint::require_open() const {
  if (!ckpt_[0]) throw std::logic_error("DoubleCheckpoint: open() has not been called");
}

bool DoubleCheckpoint::open(CommCtx ctx) {
  world_rank_ = ctx.group.world_rank();
  codec_.emplace(params_.codec, combined_bytes_, ctx.group.size());

  sim::PersistentStore& store = ctx.group.store();
  const std::string hdr_key = key("hdr");
  survivor_ = false;
  if (sim::SegmentPtr existing = store.attach(hdr_key); existing != nullptr) {
    if (load_header(existing).valid()) survivor_ = true;
  }

  for (int p = 0; p < 2; ++p) {
    ckpt_[p] = store.create(key("B", p), codec_->padded_bytes());
    check_[p] = store.create(key("C", p), codec_->checksum_bytes());
  }
  header_ = store.create(hdr_key, sizeof(Header));

  const Header mine = load_header(header_);
  const EpochSummary global =
      summarize_epochs(ctx.world, survivor_, mine.bc_epoch, mine.d_epoch);
  if (!global.any_survivor) {
    store_header(header_, load_or_init(header_, params_.data_bytes, params_.user_bytes,
                                       static_cast<std::uint32_t>(ctx.group.size()),
                                       static_cast<std::uint32_t>(params_.codec)));
    survivor_ = true;
    return false;
  }
  return global.bc_max >= 1 || global.d_max >= 1;
}

std::span<std::byte> DoubleCheckpoint::data() {
  require_open();
  return app_;
}

std::span<std::byte> DoubleCheckpoint::user_state() { return user_; }

double DoubleCheckpoint::stage() {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("DoubleCheckpoint: stage() without async_staging");
  }
  SKT_SPAN("ckpt.stage");
  util::WallTimer timer;
  std::memcpy(stage_.data(), app_.data(), app_.size());
  std::memcpy(stage_.data() + app_.size(), user_.data(), user_.size());
  return timer.seconds();
}

std::span<const std::byte> DoubleCheckpoint::staged() const { return stage_; }

CommitStats DoubleCheckpoint::commit(CommCtx ctx) {
  require_open();
  return commit_impl(ctx, /*async=*/false);
}

CommitStats DoubleCheckpoint::commit_staged(CommCtx ctx) {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("DoubleCheckpoint: commit_staged() without async_staging");
  }
  return commit_impl(ctx, /*async=*/true);
}

CommitStats DoubleCheckpoint::commit_impl(CommCtx ctx, bool async) {
  SKT_SPAN("ckpt.commit");
  const std::byte* data_src = async ? stage_.data() : app_.data();
  const std::byte* user_src = async ? stage_.data() + app_.size() : user_.data();
  Header h = load_or_init(header_, params_.data_bytes, params_.user_bytes,
                          static_cast<std::uint32_t>(ctx.group.size()),
                          static_cast<std::uint32_t>(params_.codec));
  // Globally agreed epoch (see the note in SelfCheckpoint::commit).
  const std::uint64_t next = ctx.world.allreduce_value<std::uint64_t>(
                                 std::max(h.bc_epoch, h.d_epoch), mpi::Max{}) +
                             1;
  // Alternate targets: epoch e lives in pair e % 2, so the commit always
  // overwrites the older pair and the newer one stays intact throughout.
  const int target = static_cast<int>(next % 2);

  ctx.group.failpoint(async ? "ckpt.async_begin" : "ckpt.begin");
  ctx.world.barrier();

  CommitStats stats;
  stats.epoch = next;
  telemetry::set_epoch(next);
  util::WallTimer flush_timer;
  {
    SKT_SPAN("ckpt.flush");
    std::memcpy(ckpt_[target]->bytes().data(), data_src, app_.size());
    std::memcpy(ckpt_[target]->bytes().data() + app_.size(), user_src, user_.size());
  }
  stats.flush_s = flush_timer.seconds();
  ctx.group.failpoint(async ? "ckpt.async_mid_update" : "ckpt.mid_update");

  const double encode_virtual_before = ctx.group.virtual_seconds();
  util::WallTimer encode_timer;
  {
    SKT_SPAN("ckpt.encode");
    codec_->encode(ctx.group, ckpt_[target]->bytes(), check_[target]->bytes());
  }
  stats.encode_s = encode_timer.seconds();
  stats.encode_virtual_s = ctx.group.virtual_seconds() - encode_virtual_before;
  ctx.group.failpoint(async ? "ckpt.async_encode_done" : "ckpt.encode_done");

  // Global barrier before publication: no rank may declare the new pair
  // committed until every rank finished writing it.
  ctx.world.barrier();
  if (target == 0) {
    h.bc_epoch = next;
  } else {
    h.d_epoch = next;
  }
  store_header(header_, h);
  ctx.group.failpoint(async ? "ckpt.async_flushed" : "ckpt.flushed");
  ctx.world.barrier();

  stats.checkpoint_bytes = ckpt_[target]->size();
  stats.checksum_bytes = check_[target]->size();
  if (!async) ctx.group.record_time("checkpoint", stats.total_s());
  return stats;
}

RestoreStats DoubleCheckpoint::restore(CommCtx ctx) {
  require_open();
  SKT_SPAN("ckpt.restore");
  ctx.group.failpoint("ckpt.restore");

  const Header mine = load_header(header_);
  const EpochSummary global =
      summarize_epochs(ctx.world, survivor_, mine.bc_epoch, mine.d_epoch);
  const std::vector<int> missing = missing_members(ctx.group, survivor_);
  if (missing.size() > 1) {
    throw Unrecoverable("double-checkpoint: multiple members lost in one group");
  }

  // A pair is usable when its epoch is uniform across survivors (a pair
  // under active overwrite at failure time has mixed epochs). Choose the
  // newest usable one.
  const bool pair0_ok = global.bc_min == global.bc_max && global.bc_min >= 1;
  const bool pair1_ok = global.d_min == global.d_max && global.d_min >= 1;
  int pair = -1;
  std::uint64_t target = 0;
  if (pair0_ok && global.bc_min > target) {
    pair = 0;
    target = global.bc_min;
  }
  if (pair1_ok && global.d_min > target) {
    pair = 1;
    target = global.d_min;
  }
  if (pair < 0) {
    throw Unrecoverable("double-checkpoint: no complete pair to restore");
  }

  RestoreStats stats;
  stats.epoch = target;
  util::WallTimer timer;

  if (!missing.empty()) {
    codec_->rebuild(ctx.group, missing.front(), ckpt_[pair]->bytes(), check_[pair]->bytes());
  }
  std::memcpy(app_.data(), ckpt_[pair]->bytes().data(), app_.size());
  std::memcpy(user_.data(), ckpt_[pair]->bytes().data() + app_.size(), user_.size());

  // Re-sync the header. A rebuilt member only holds the restored pair; its
  // other pair reads epoch 0 until the next commit overwrites it, which the
  // newest-usable-pair rule tolerates.
  Header h = load_header(header_);
  h.magic = Header::kMagic;
  h.data_bytes = params_.data_bytes;
  h.user_bytes = params_.user_bytes;
  h.group_size = static_cast<std::uint32_t>(ctx.group.size());
  h.codec = static_cast<std::uint32_t>(params_.codec);
  if (!survivor_) {
    h.bc_epoch = pair == 0 ? target : 0;
    h.d_epoch = pair == 1 ? target : 0;
  }
  store_header(header_, h);
  survivor_ = true;

  stats.rebuild_s = timer.seconds();
  stats.rebuilt_member = !missing.empty() && missing.front() == ctx.group.rank();
  ctx.group.record_time("recover", stats.rebuild_s);
  ctx.world.barrier();
  return stats;
}

std::size_t DoubleCheckpoint::memory_bytes() const {
  if (!ckpt_[0]) return 0;
  return app_.size() + user_.size() + stage_.size() + ckpt_[0]->size() + ckpt_[1]->size() +
         check_[0]->size() + check_[1]->size() + sizeof(Header);
}

std::uint64_t DoubleCheckpoint::committed_epoch() const {
  if (!header_) return 0;
  const Header h = load_header(header_);
  return h.valid() ? std::max(h.bc_epoch, h.d_epoch) : 0;
}

}  // namespace skt::ckpt
