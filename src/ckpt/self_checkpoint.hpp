// Self-checkpoint — the paper's contribution (Section 3).
//
// Memory layout per rank, all in SHM except A2:
//
//   work = [ A1 (data_bytes) | B2 (user_bytes) | pad ]   — the application
//          computes directly in A1; B2 receives a copy of the user-space
//          A2 at every commit so the encoded domain is contiguous.
//   B    = full copy of work (the committed checkpoint)
//   C    = checksum stripe protecting B            (epoch bc_epoch)
//   D    = checksum stripe protecting work         (epoch d_epoch)
//   hdr  = commit state machine record
//
// Commit (Fig. 5):  copy A2→B2,  encode D,  seal (d_epoch+1),  flush
// work→B and D→C,  finalize (bc_epoch+1).  Global barriers separate the
// phases, so after any single node failure either (B, C) or (work, D) is
// a consistent erasure-coded set across the whole job — CASE 1 / CASE 2
// of Fig. 4.
//
// Async staging (Params::async_staging): a fifth SHM segment S receives a
// sealed point-in-time copy of [A1|B2] at stage(); the whole state machine
// above then runs from S on the async worker (commit_staged), while the
// application keeps mutating A1. Because S lives in the persistent store,
// CASE 2 simply swaps (work, D) for (S, D): a failure anywhere in the
// background pipeline recovers from the staged copy. In this mode even a
// synchronous commit() encodes from S, so the recovery-set rule never
// depends on which pipeline the interrupted commit used.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckpt/header.hpp"
#include "ckpt/protocol.hpp"
#include "encoding/erasure_coder.hpp"

namespace skt::ckpt {

class SelfCheckpoint final : public CheckpointProtocol {
 public:
  struct Params {
    std::string key_prefix = "skt";
    std::size_t data_bytes = 0;
    std::size_t user_bytes = 64;
    enc::CodecKind codec = enc::CodecKind::kXor;
    /// 1 = the paper's single-erasure encoding; 2 = the RAID-6-style
    /// extension tolerating two simultaneous node losses per group (needs
    /// group size >= 4; codec is GF(2^8)-based regardless of `codec`).
    int parity_degree = 1;
    /// Allocate the S staging segment and route every encode through it
    /// (see the header comment). Recorded in the checkpoint header, so a
    /// restart must use the same setting.
    bool async_staging = false;
    /// Owner tag for every created segment (tenant namespace; may be "").
    std::string owner;
  };

  explicit SelfCheckpoint(Params params);

  bool open(CommCtx ctx) override;
  [[nodiscard]] std::span<std::byte> data() override;
  [[nodiscard]] std::span<std::byte> user_state() override;
  CommitStats commit(CommCtx ctx) override;
  [[nodiscard]] bool restore_feasible(CommCtx ctx) override;
  void reseed_epoch(CommCtx ctx, std::uint64_t epoch) override;
  RestoreStats restore(CommCtx ctx) override;
  [[nodiscard]] bool supports_async() const override { return params_.async_staging; }
  double stage() override;
  CommitStats commit_staged(CommCtx ctx) override;
  [[nodiscard]] std::span<const std::byte> staged() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] Strategy strategy() const override { return Strategy::kSelf; }
  [[nodiscard]] std::uint64_t committed_epoch() const override;
  [[nodiscard]] DirtyTracker* dirty_tracker() override { return &tracker_; }
  [[nodiscard]] std::vector<ScrubRegion> scrub_view() override;
  [[nodiscard]] int max_failures() const override;

 private:
  [[nodiscard]] std::string key(const char* part) const;
  void require_open() const;
  [[nodiscard]] std::span<std::byte> work_span() { return work_->bytes(); }
  [[nodiscard]] std::uint32_t codec_field() const;
  CommitStats commit_impl(CommCtx ctx, bool async);

  Params params_;
  std::size_t combined_bytes_ = 0;  // A1 + B2 payload
  std::unique_ptr<enc::ErasureCoder> coder_;
  std::vector<std::byte> user_;  // A2, ordinary (non-SHM) memory
  /// Stripes dirtied since the last commit (sync) / last stage() (async).
  DirtyTracker tracker_;
  /// Stripes the staged copy S differs from B on — the encode/flush set of
  /// the in-flight staged commit. Populated by stage(). Async only.
  std::vector<std::uint8_t> staged_dirty_;

  int world_rank_ = -1;
  bool survivor_ = false;  // header existed at open()
  sim::SegmentPtr work_;
  sim::SegmentPtr ckpt_b_;
  sim::SegmentPtr check_c_;
  sim::SegmentPtr check_d_;
  sim::SegmentPtr stage_;  // S, async_staging only
  sim::SegmentPtr header_;
};

}  // namespace skt::ckpt
