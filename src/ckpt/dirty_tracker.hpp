// Stripe-granular dirty tracking shared by every checkpoint protocol.
//
// A tracker covers the protocol's padded image [data | user_state | pad]
// at the granularity of the erasure code's stripes (or a fixed block size
// for strategies without an encoder). Applications that annotate their
// writes with mark() get commits whose copy/encode/flush cost scales with
// the dirty footprint; applications that never annotate fall back to
// all-dirty — full cost, always correct.
//
// The contract mirrors the incremental protocol's: once an application
// opts in by calling mark()/mark_all(), UNMARKED mutations would silently
// corrupt the next checkpoint, so the effective() accessor reports every
// stripe dirty until the first mark after a clear(). A hash shadow
// (capture_shadow()/detect()) offers a third mode for apps that cannot
// annotate: per-stripe FNV-1a fingerprints of the last committed image
// classify stripes by comparison instead of bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace skt::ckpt {

class DirtyTracker {
 public:
  DirtyTracker() = default;

  /// Configure geometry: the tracked image is `stripe_count` stripes of
  /// `stripe_bytes`, covering data [0, data_bytes), the user tail
  /// [data_bytes, data_bytes + user_bytes), and zero padding beyond.
  /// Resets all flags and drops any shadow.
  void reset(std::size_t data_bytes, std::size_t user_bytes, std::size_t stripe_bytes,
             std::size_t stripe_count);

  [[nodiscard]] bool configured() const { return stripe_bytes_ != 0; }
  [[nodiscard]] std::size_t stripe_bytes() const { return stripe_bytes_; }
  [[nodiscard]] std::size_t stripe_count() const { return flags_.size(); }
  [[nodiscard]] std::size_t tracked_bytes() const { return stripe_bytes_ * flags_.size(); }

  /// Declare [offset, offset + len) of data() modified. Throws
  /// std::out_of_range past data_bytes; len == 0 is a no-op.
  void mark(std::size_t offset, std::size_t len);

  /// Mark every stripe (full-footprint applications).
  void mark_all();

  /// Mark the stripes covering the user-state tail. Every commit calls
  /// this: the small A2 area is rewritten unconditionally, and its bytes
  /// share stripes with the end of the data region.
  void mark_user_tail();

  /// True once mark()/mark_all()/detect() ran since the last clear().
  [[nodiscard]] bool annotated() const { return annotated_; }

  /// Raw per-stripe flags — incremental semantics: unmarked means clean.
  [[nodiscard]] const std::vector<std::uint8_t>& flags() const { return flags_; }

  /// Safe per-stripe flags: an un-annotated tracker reports every stripe
  /// dirty, so protocols degrade to full-cost commits, never to silent
  /// corruption.
  [[nodiscard]] std::vector<std::uint8_t> effective() const;

  [[nodiscard]] std::size_t dirty_stripes() const;
  [[nodiscard]] std::size_t dirty_bytes() const { return dirty_stripes() * stripe_bytes_; }
  /// Dirty fraction of the tracked image; an un-annotated tracker is 1.0.
  [[nodiscard]] double dirty_fraction() const;

  /// All clean, not annotated. The shadow (if captured) is kept.
  void clear();

  // --- hash-shadow fallback ---------------------------------------------

  /// Fingerprint `image` (the padded [data|user|pad] view, tracked_bytes()
  /// long; a shorter span treats the missing tail as zeros) so a later
  /// detect() can classify stripes without annotations.
  void capture_shadow(std::span<const std::byte> image);

  [[nodiscard]] bool has_shadow() const { return !shadow_.empty(); }

  /// Compare `image` against the captured shadow, mark the stripes whose
  /// fingerprint changed, and update the shadow to `image`. Marks the
  /// tracker annotated. Requires a prior capture_shadow(). A 64-bit
  /// collision would leave a changed stripe clean — acceptable for
  /// opportunistic diffing, not for applications that can annotate.
  void detect(std::span<const std::byte> image);

 private:
  [[nodiscard]] std::uint64_t stripe_hash(std::span<const std::byte> image,
                                          std::size_t s) const;
  void mark_stripes(std::size_t offset, std::size_t len);

  std::size_t data_bytes_ = 0;
  std::size_t user_bytes_ = 0;
  std::size_t stripe_bytes_ = 0;
  bool annotated_ = false;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint64_t> shadow_;
};

}  // namespace skt::ckpt
