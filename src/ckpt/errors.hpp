// Typed errors of the checkpoint layer's configuration and admission
// surfaces.
//
// ConfigError unifies every SessionBuilder/StoreService misconfiguration
// behind one type carrying the offending FIELD NAME, so callers (and
// tests) can assert on which knob was wrong instead of string-matching a
// zoo of ad-hoc invalid_argument messages. It still derives from
// std::invalid_argument: pre-existing catch sites keep working.
//
// QuotaExceeded is the loud per-tenant admission failure of the
// StoreService; AdmissionTimeout is its queued-open variant (the open
// waited for capacity and gave up). Both derive from std::runtime_error —
// they are runtime conditions of a correctly configured system, not
// configuration bugs.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace skt::ckpt {

/// A misconfigured builder/service field. `field()` names the knob
/// (e.g. "group_size", "parity_degree", "tenant").
class ConfigError : public std::invalid_argument {
 public:
  ConfigError(std::string field, const std::string& message)
      : std::invalid_argument("ckpt config: " + field + ": " + message),
        field_(std::move(field)) {}

  [[nodiscard]] const std::string& field() const noexcept { return field_; }

 private:
  std::string field_;
};

/// A tenant asked for more checkpoint memory than its registered quota
/// allows. Thrown by StoreService admission before any segment is created.
class QuotaExceeded : public std::runtime_error {
 public:
  QuotaExceeded(std::string tenant, std::size_t requested_bytes, std::size_t limit_bytes,
                const std::string& what_suffix = "")
      : std::runtime_error("ckpt store: tenant '" + tenant + "' over quota: requested " +
                           std::to_string(requested_bytes) + " B against a limit of " +
                           std::to_string(limit_bytes) + " B" + what_suffix),
        tenant_(std::move(tenant)),
        requested_bytes_(requested_bytes),
        limit_bytes_(limit_bytes) {}

  [[nodiscard]] const std::string& tenant() const noexcept { return tenant_; }
  [[nodiscard]] std::size_t requested_bytes() const noexcept { return requested_bytes_; }
  [[nodiscard]] std::size_t limit_bytes() const noexcept { return limit_bytes_; }

 private:
  std::string tenant_;
  std::size_t requested_bytes_ = 0;
  std::size_t limit_bytes_ = 0;
};

/// A queued open waited for service capacity past the configured admission
/// timeout (or the service shut down while the open was still queued).
class AdmissionTimeout : public QuotaExceeded {
 public:
  AdmissionTimeout(std::string tenant, std::size_t requested_bytes,
                   std::size_t capacity_bytes)
      : QuotaExceeded(std::move(tenant), requested_bytes, capacity_bytes,
                      " (admission queue timed out)") {}
};

}  // namespace skt::ckpt
