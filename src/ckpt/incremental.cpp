#include "ckpt/incremental.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "ckpt/epoch.hpp"
#include "encoding/kernels.hpp"
#include "telemetry/trace.hpp"
#include "util/aligned.hpp"
#include "util/clock.hpp"

namespace skt::ckpt {
namespace {

/// Header "codec" tag distinguishing the incremental layout.
constexpr std::uint32_t kIncrementalTag = 0x1000;

void xor_reduce(mpi::Comm& group, int root, std::span<const std::byte> in,
                std::span<std::byte> out) {
  const std::span<const std::uint64_t> in64{
      reinterpret_cast<const std::uint64_t*>(in.data()), in.size() / sizeof(std::uint64_t)};
  const std::span<std::uint64_t> out64{reinterpret_cast<std::uint64_t*>(out.data()),
                                       out.size() / sizeof(std::uint64_t)};
  group.reduce<std::uint64_t>(root, in64, out64, mpi::BXor{});
}

}  // namespace

IncrementalSelfCheckpoint::IncrementalSelfCheckpoint(Params params)
    : params_(std::move(params)) {
  if (params_.data_bytes == 0) {
    throw std::invalid_argument("IncrementalSelfCheckpoint: data_bytes == 0");
  }
  if (params_.user_bytes == 0) {
    throw std::invalid_argument("IncrementalSelfCheckpoint: user_bytes == 0");
  }
  combined_bytes_ = params_.data_bytes + params_.user_bytes;
  user_.assign(params_.user_bytes, std::byte{0});
}

std::string IncrementalSelfCheckpoint::key(const char* part) const {
  return params_.key_prefix + ".r" + std::to_string(world_rank_) + ".incr." + part;
}

std::uint32_t IncrementalSelfCheckpoint::codec_field() const {
  return kIncrementalTag | (static_cast<std::uint32_t>(params_.parity_degree) << 8) |
         (params_.async_staging ? 1u << 16 : 0u);
}

void IncrementalSelfCheckpoint::require_open() const {
  if (!work_) throw std::logic_error("IncrementalSelfCheckpoint: open() not called");
}

bool IncrementalSelfCheckpoint::open(CommCtx ctx) {
  world_rank_ = ctx.group.world_rank();
  group_size_ = ctx.group.size();
  if (params_.parity_degree <= 1) {
    codec_ = std::make_unique<enc::GroupCodec>(enc::CodecKind::kXor, combined_bytes_,
                                               group_size_);
    tracker_.reset(params_.data_bytes, params_.user_bytes, codec_->layout().stripe_bytes(),
                   static_cast<std::size_t>(group_size_ - 1));
  } else {
    rs_ = std::make_unique<enc::RSGroupCodec>(combined_bytes_, group_size_,
                                              params_.parity_degree);
    tracker_.reset(params_.data_bytes, params_.user_bytes, rs_->stripe_bytes(),
                   static_cast<std::size_t>(group_size_ - params_.parity_degree));
  }
  tracker_.mark_all();  // first commit is full

  sim::PersistentStore& store = ctx.group.store();
  const std::string hdr_key = key("hdr");
  survivor_ = false;
  if (sim::SegmentPtr existing = store.attach(hdr_key); existing != nullptr) {
    const Header h = load_header(existing);
    if (h.valid()) {
      if (h.data_bytes != params_.data_bytes || h.user_bytes != params_.user_bytes ||
          h.group_size != static_cast<std::uint32_t>(group_size_) ||
          h.codec != codec_field()) {
        throw std::logic_error("IncrementalSelfCheckpoint: layout mismatch");
      }
      survivor_ = true;
    }
  }

  const std::size_t padded = codec_ ? codec_->padded_bytes() : rs_->padded_bytes();
  const std::size_t redundancy = codec_ ? codec_->checksum_bytes() : rs_->parity_bytes();
  work_ = store.create(key("work"), padded, params_.owner);
  ckpt_b_ = store.create(key("B"), padded, params_.owner);
  check_c_ = store.create(key("C"), redundancy, params_.owner);
  check_d_ = store.create(key("D"), redundancy, params_.owner);
  if (params_.async_staging) {
    stage_ = store.create(key("S"), padded, params_.owner);
    staged_dirty_.assign(tracker_.stripe_count(), 0);
  }
  header_ = store.create(hdr_key, sizeof(Header), params_.owner);

  const Header mine = load_header(header_);
  const EpochSummary global =
      summarize_epochs(ctx.world, survivor_, mine.bc_epoch, mine.d_epoch);
  if (!global.any_survivor) {
    store_header(header_, load_or_init(header_, params_.data_bytes, params_.user_bytes,
                                       static_cast<std::uint32_t>(group_size_),
                                       codec_field()));
    survivor_ = true;
    return false;
  }
  return global.bc_max >= 1 || global.d_max >= 1;
}

std::span<std::byte> IncrementalSelfCheckpoint::data() {
  require_open();
  return work_->bytes().subspan(0, params_.data_bytes);
}

std::span<std::byte> IncrementalSelfCheckpoint::user_state() { return user_; }

void IncrementalSelfCheckpoint::mark_dirty(std::size_t offset, std::size_t len) {
  require_open();
  tracker_.mark(offset, len);
}

void IncrementalSelfCheckpoint::mark_all_dirty() {
  require_open();
  tracker_.mark_all();
}

std::size_t IncrementalSelfCheckpoint::dirty_bytes() const {
  if (!tracker_.configured()) return 0;
  std::size_t stripes = 0;
  for (std::uint8_t d : tracker_.flags()) stripes += d;
  return stripes * tracker_.stripe_bytes();
}

double IncrementalSelfCheckpoint::stage() {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("IncrementalSelfCheckpoint: stage() without async_staging");
  }
  SKT_SPAN("ckpt.stage");
  util::WallTimer timer;
  const std::size_t stripe = tracker_.stripe_bytes();
  // The user-state tail is part of every snapshot.
  tracker_.mark_user_tail();
  // S already equals the working buffer as of the previous stage() on every
  // clean stripe, so only the stripes dirtied since then need copying — the
  // critical path keeps the dirty-footprint scaling.
  staged_dirty_ = tracker_.flags();
  for (std::size_t s = 0; s < staged_dirty_.size(); ++s) {
    if (!staged_dirty_[s]) continue;
    std::memcpy(stage_->bytes().data() + s * stripe, work_->bytes().data() + s * stripe,
                stripe);
  }
  std::memcpy(stage_->bytes().data() + params_.data_bytes, user_.data(), params_.user_bytes);
  tracker_.clear();
  return timer.seconds();
}

std::span<const std::byte> IncrementalSelfCheckpoint::staged() const {
  if (!stage_) return {};
  return std::span<const std::byte>(stage_->bytes()).subspan(0, combined_bytes_);
}

CommitStats IncrementalSelfCheckpoint::commit(CommCtx ctx) {
  require_open();
  // With staging enabled even a synchronous commit encodes from S (see
  // SelfCheckpoint::commit).
  if (params_.async_staging) stage();
  return commit_impl(ctx, /*async=*/false);
}

CommitStats IncrementalSelfCheckpoint::commit_staged(CommCtx ctx) {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("IncrementalSelfCheckpoint: commit_staged() without async_staging");
  }
  return commit_impl(ctx, /*async=*/true);
}

CommitStats IncrementalSelfCheckpoint::commit_impl(CommCtx ctx, bool async) {
  SKT_SPAN("ckpt.commit");
  // The encoded side and its dirty set: the staged copy S with the stripes
  // stage() captured, or the working buffer with the live dirty set.
  const bool staging = params_.async_staging;
  const std::span<std::byte> source = staging ? stage_->bytes() : work_->bytes();
  Header h = load_or_init(header_, params_.data_bytes, params_.user_bytes,
                          static_cast<std::uint32_t>(group_size_), codec_field());
  const std::uint64_t next =
      ctx.world.allreduce_value<std::uint64_t>(h.bc_epoch, mpi::Max{}) + 1;

  ctx.group.failpoint(async ? "ckpt.async_begin" : "ckpt.begin");
  ctx.world.barrier();

  if (!staging) {
    // A2 -> B2; the user-state tail always counts as dirty. (When staging,
    // stage() already folded A2 into S and its dirty set.)
    std::memcpy(work_->bytes().data() + params_.data_bytes, user_.data(), params_.user_bytes);
    tracker_.mark_user_tail();
    ctx.group.failpoint("ckpt.copy_a2");
  }
  // Raw flags on purpose: incremental's contract is that unmarked means
  // clean, so no unannotated all-dirty fallback here.
  const std::vector<std::uint8_t> dset = staging ? staged_dirty_ : tracker_.flags();

  const std::size_t stripe = tracker_.stripe_bytes();
  const int me = ctx.group.rank();
  const int n = group_size_;

  // Which families does anyone need re-encoded? For the XOR layout, my
  // local stripe s belongs to family f = s < me ? s : s + 1 (the inverse
  // of stripe_index); the RS layout exposes the mapping directly.
  std::vector<std::uint8_t> family_dirty(static_cast<std::size_t>(n), 0);
  for (int f = 0; f < n; ++f) {
    if (codec_) {
      if (me != f) family_dirty[static_cast<std::size_t>(f)] = dset[codec_->layout().stripe_index(me, f)];
    } else if (rs_->contributes(me, f)) {
      family_dirty[static_cast<std::size_t>(f)] = dset[rs_->stripe_index(me, f)];
    }
  }
  std::vector<std::uint8_t> global_dirty(static_cast<std::size_t>(n));
  ctx.group.allreduce<std::uint8_t>(family_dirty, global_dirty, mpi::Max{});
  last_encoded_families_ = 0;
  for (std::uint8_t d : global_dirty) last_encoded_families_ += d;

  CommitStats stats;
  stats.epoch = next;
  telemetry::set_epoch(next);
  ctx.group.failpoint(async ? "ckpt.async_encode_begin" : "ckpt.encode_begin");
  const double encode_virtual_before = ctx.group.virtual_seconds();
  util::WallTimer encode_timer;
  std::optional<telemetry::Span> encode_span{std::in_place, "ckpt.encode"};
  if (rs_) {
    // The GF-weighted incremental identity P' = P ^ sum c * (old ^ new),
    // one fold per dirty family per parity row, clean families copied
    // through — all inside the RS codec's delta path.
    rs_->encode_delta(ctx.group, ckpt_b_->bytes(), source, check_c_->bytes(),
                      check_d_->bytes(), dset);
  } else {
    util::AlignedBytes diff(stripe);
    util::AlignedBytes reduced(stripe);
    for (int f = 0; f < n; ++f) {
      if (!global_dirty[static_cast<std::size_t>(f)]) {
        // Nobody touched this family: the old checksum still describes the
        // working side.
        if (me == f) {
          std::memcpy(check_d_->bytes().data() + static_cast<std::size_t>(0),
                      check_c_->bytes().data(), stripe);
        }
        continue;
      }
      std::fill(diff.begin(), diff.end(), std::byte{0});
      if (me != f) {
        const std::size_t s = codec_->layout().stripe_index(me, f);
        if (dset[s]) {
          enc::kernels::xor_delta(diff, {ckpt_b_->bytes().data() + s * stripe, stripe},
                                  {source.data() + s * stripe, stripe});
        }
      }
      xor_reduce(ctx.group, f, diff,
                 me == f ? std::span<std::byte>(reduced) : std::span<std::byte>{});
      if (me == f) {
        enc::kernels::xor_delta(check_d_->bytes().subspan(0, stripe),
                                check_c_->bytes().subspan(0, stripe), reduced);
      }
    }
  }
  encode_span.reset();
  stats.encode_s = encode_timer.seconds();
  stats.encode_virtual_s = ctx.group.virtual_seconds() - encode_virtual_before;
  ctx.group.failpoint(async ? "ckpt.async_encode_done" : "ckpt.encode_done");

  ctx.world.barrier();
  h.d_epoch = next;
  store_header(header_, h);
  ctx.group.failpoint(async ? "ckpt.async_sealed" : "ckpt.sealed");
  ctx.world.barrier();

  // Flush only the dirty stripes (plus the small checksum).
  util::WallTimer flush_timer;
  std::size_t flushed = 0;
  {
    SKT_SPAN("ckpt.flush");
    for (std::size_t s = 0; s < dset.size(); ++s) {
      if (!dset[s]) continue;
      std::memcpy(ckpt_b_->bytes().data() + s * stripe, source.data() + s * stripe, stripe);
      flushed += stripe;
    }
    ctx.group.failpoint(async ? "ckpt.async_mid_flush" : "ckpt.mid_flush");
    std::memcpy(check_c_->bytes().data(), check_d_->bytes().data(), check_d_->size());
  }
  stats.flush_s = flush_timer.seconds();
  if (staging) {
    std::fill(staged_dirty_.begin(), staged_dirty_.end(), std::uint8_t{0});
  } else {
    tracker_.clear();
  }
  h.bc_epoch = next;
  store_header(header_, h);
  ctx.group.failpoint(async ? "ckpt.async_flushed" : "ckpt.flushed");
  ctx.world.barrier();

  stats.checkpoint_bytes = flushed;
  stats.checksum_bytes = check_d_->size();
  stats.dirty_bytes = flushed;
  stats.dirty_fraction = dset.empty() ? 0.0
                                      : static_cast<double>(flushed) /
                                            static_cast<double>(dset.size() * stripe);
  if (!async) ctx.group.record_time("checkpoint", stats.encode_s + stats.flush_s);
  return stats;
}

bool IncrementalSelfCheckpoint::restore_feasible(CommCtx ctx) {
  return static_cast<int>(missing_members(ctx.group, survivor_).size()) <=
         max_failures();
}

void IncrementalSelfCheckpoint::reseed_epoch(CommCtx ctx, std::uint64_t epoch) {
  (void)ctx;
  Header h = load_or_init(header_, params_.data_bytes, params_.user_bytes,
                          static_cast<std::uint32_t>(group_size_), codec_field());
  h.bc_epoch = epoch;
  h.d_epoch = epoch;
  store_header(header_, h);
  survivor_ = true;
}

RestoreStats IncrementalSelfCheckpoint::restore(CommCtx ctx) {
  require_open();
  SKT_SPAN("ckpt.restore");
  ctx.group.failpoint("ckpt.restore");

  const Header mine = load_header(header_);
  const EpochSummary global =
      summarize_epochs(ctx.world, survivor_, mine.bc_epoch, mine.d_epoch);
  const std::vector<int> missing = missing_members(ctx.group, survivor_);
  const int max_failures = rs_ ? rs_->parity_count() : 1;
  if (static_cast<int>(missing.size()) > max_failures) {
    throw Unrecoverable("incremental self-checkpoint: " + std::to_string(missing.size()) +
                        " members lost in one group; the degree-" +
                        std::to_string(max_failures) + " erasure code cannot recover");
  }

  bool use_a_side = false;
  std::uint64_t target = 0;
  if (global.d_min == global.d_max && global.d_min > global.bc_min) {
    use_a_side = true;
    target = global.d_min;
  } else if (global.bc_min == global.bc_max) {
    target = global.bc_min;
  } else {
    throw Unrecoverable("incremental self-checkpoint: inconsistent epochs");
  }
  if (target == 0) {
    throw Unrecoverable("incremental self-checkpoint: no committed checkpoint");
  }

  RestoreStats stats;
  stats.epoch = target;
  util::WallTimer timer;

  const auto rebuild = [&](std::span<std::byte> data, std::span<std::byte> parity) {
    if (rs_) {
      rs_->rebuild(ctx.group, missing, data, parity);
    } else {
      codec_->rebuild(ctx.group, missing.front(), data, parity);
    }
  };
  if (!use_a_side) {
    if (survivor_) {
      std::memcpy(work_->bytes().data(), ckpt_b_->bytes().data(), work_->size());
      std::memcpy(check_d_->bytes().data(), check_c_->bytes().data(), check_c_->size());
    }
    if (!missing.empty()) {
      rebuild(work_->bytes(), check_d_->bytes());
      if (!survivor_) {
        std::memcpy(ckpt_b_->bytes().data(), work_->bytes().data(), work_->size());
        std::memcpy(check_c_->bytes().data(), check_d_->bytes().data(), check_d_->size());
      }
    }
  } else if (params_.async_staging) {
    // CASE 2, staged: the newest consistent set is (S, D). Rebuild the
    // lost member's S, complete the interrupted flush, and roll the
    // working buffer back to the staged image.
    if (!missing.empty()) {
      rebuild(stage_->bytes(), check_d_->bytes());
    }
    std::memcpy(ckpt_b_->bytes().data(), stage_->bytes().data(), stage_->size());
    std::memcpy(check_c_->bytes().data(), check_d_->bytes().data(), check_d_->size());
    std::memcpy(work_->bytes().data(), stage_->bytes().data(), stage_->size());
  } else {
    if (!missing.empty()) {
      rebuild(work_->bytes(), check_d_->bytes());
    }
    std::memcpy(ckpt_b_->bytes().data(), work_->bytes().data(), work_->size());
    std::memcpy(check_c_->bytes().data(), check_d_->bytes().data(), check_d_->size());
  }

  std::memcpy(user_.data(), work_->bytes().data() + params_.data_bytes, params_.user_bytes);
  if (params_.async_staging) {
    // Re-establish the staging invariant S == B == work so the next
    // stage() may copy dirty stripes only.
    std::memcpy(stage_->bytes().data(), work_->bytes().data(), work_->size());
    std::fill(staged_dirty_.begin(), staged_dirty_.end(), std::uint8_t{0});
  }
  Header h = load_or_init(header_, params_.data_bytes, params_.user_bytes,
                          static_cast<std::uint32_t>(group_size_), codec_field());
  h.bc_epoch = target;
  h.d_epoch = target;
  store_header(header_, h);
  survivor_ = true;
  // B == work everywhere now, so nothing is dirty.
  tracker_.clear();

  stats.rebuild_s = timer.seconds();
  stats.rebuilt_member =
      std::find(missing.begin(), missing.end(), ctx.group.rank()) != missing.end();
  ctx.group.record_time("recover", stats.rebuild_s);
  ctx.world.barrier();
  return stats;
}

std::size_t IncrementalSelfCheckpoint::memory_bytes() const {
  if (!work_) return 0;
  return work_->size() + ckpt_b_->size() + check_c_->size() + check_d_->size() +
         (stage_ ? stage_->size() : 0) + user_.size() + sizeof(Header) +
         tracker_.stripe_count() + staged_dirty_.size();
}

std::uint64_t IncrementalSelfCheckpoint::committed_epoch() const {
  if (!header_) return 0;
  const Header h = load_header(header_);
  return h.valid() ? std::max(h.bc_epoch, h.d_epoch) : 0;
}

std::vector<ScrubRegion> IncrementalSelfCheckpoint::scrub_view() {
  require_open();
  // Same invariants as SelfCheckpoint: C == D between commits, B has no
  // quiescent twin (see self_checkpoint.cpp).
  return {{"B", ckpt_b_->bytes(), {}},
          {"C", check_c_->bytes(), check_d_->bytes()},
          {"D", check_d_->bytes(), check_c_->bytes()}};
}

}  // namespace skt::ckpt
