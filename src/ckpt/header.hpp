// On-SHM checkpoint header: the per-rank commit state machine record.
//
// Two epoch counters drive recovery-side selection (Section 3.1):
//   bc_epoch — epoch of the committed (checkpoint B, checksum C) pair
//   d_epoch  — epoch of the sealed working-side checksum D; d_epoch ==
//              bc_epoch + 1 between "seal" and "flush complete".
// The double-checkpoint strategy reuses the two counters as the epochs of
// its two (checkpoint, checksum) pairs.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "sim/persistent_store.hpp"

namespace skt::ckpt {

struct Header {
  static constexpr std::uint64_t kMagic = 0x534b54434b505431ULL;  // "SKTCKPT1"

  std::uint64_t magic = kMagic;
  std::uint64_t bc_epoch = 0;
  std::uint64_t d_epoch = 0;
  std::uint64_t data_bytes = 0;   ///< layout sanity check on re-attach
  std::uint64_t user_bytes = 0;
  std::uint32_t group_size = 0;
  std::uint32_t codec = 0;

  [[nodiscard]] bool valid() const { return magic == kMagic; }
};

static_assert(sizeof(Header) % 8 == 0);

/// Read the header out of its segment (headers are small; a memcpy is the
/// simulation analogue of an atomic, ordered header write).
inline Header load_header(const sim::SegmentPtr& segment) {
  Header h{};
  std::memcpy(&h, segment->bytes().data(), sizeof(Header));
  return h;
}

inline void store_header(const sim::SegmentPtr& segment, const Header& h) {
  std::memcpy(segment->bytes().data(), &h, sizeof(Header));
}

/// Load the header, or initialize an epoch-0 one with the given layout when
/// the segment holds no valid header yet (a replacement node committing for
/// the first time after a globally-fresh restart path).
inline Header load_or_init(const sim::SegmentPtr& segment, std::uint64_t data_bytes,
                           std::uint64_t user_bytes, std::uint32_t group_size,
                           std::uint32_t codec) {
  Header h = load_header(segment);
  if (!h.valid()) {
    h = Header{};
    h.data_bytes = data_bytes;
    h.user_bytes = user_bytes;
    h.group_size = group_size;
    h.codec = codec;
  }
  return h;
}

}  // namespace skt::ckpt
