#include "ckpt/blcr_checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "telemetry/trace.hpp"
#include "util/clock.hpp"

namespace skt::ckpt {

BlcrCheckpoint::BlcrCheckpoint(Params params)
    : params_(std::move(params)), device_(params_.device) {
  if (params_.data_bytes == 0) throw std::invalid_argument("BlcrCheckpoint: data_bytes == 0");
  if (params_.user_bytes == 0) throw std::invalid_argument("BlcrCheckpoint: user_bytes == 0");
  if (params_.vault == nullptr) throw std::invalid_argument("BlcrCheckpoint: vault required");
  app_.assign(params_.data_bytes, std::byte{0});
  user_.assign(params_.user_bytes, std::byte{0});
  if (params_.async_staging) {
    stage_.assign(params_.data_bytes + params_.user_bytes, std::byte{0});
  }
}

std::string BlcrCheckpoint::image_key(std::uint64_t epoch) const {
  return params_.key_prefix + ".r" + std::to_string(world_rank_) + ".blcr.img.e" +
         std::to_string(epoch);
}

void BlcrCheckpoint::require_open() const {
  if (world_rank_ < 0) throw std::logic_error("BlcrCheckpoint: open() has not been called");
}

bool BlcrCheckpoint::open(CommCtx ctx) {
  world_rank_ = ctx.group.world_rank();
  const std::size_t combined = params_.data_bytes + params_.user_bytes;
  tracker_.reset(params_.data_bytes, params_.user_bytes, kStripeBytes,
                 (combined + kStripeBytes - 1) / kStripeBytes);
  // Find this rank's newest image on disk (disk survives node loss).
  epoch_ = 0;
  for (std::uint64_t e = 1;; ++e) {
    if (!params_.vault->exists(image_key(e))) break;
    epoch_ = e;
  }
  const std::uint64_t newest = ctx.world.allreduce_value<std::uint64_t>(epoch_, mpi::Max{});
  return newest >= 1;
}

std::span<std::byte> BlcrCheckpoint::data() {
  require_open();
  return app_;
}

std::span<std::byte> BlcrCheckpoint::user_state() { return user_; }

double BlcrCheckpoint::stage() {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("BlcrCheckpoint: stage() without async_staging");
  }
  SKT_SPAN("ckpt.stage");
  util::WallTimer timer;
  // stage_ equals [A|A2] as of the previous stage() on every clean stripe,
  // so only the stripes dirtied since then need copying.
  tracker_.mark_user_tail();
  const std::vector<std::uint8_t> eff = tracker_.effective();
  std::size_t dirty_stripes = 0;
  for (std::size_t s = 0; s < eff.size(); ++s) {
    if (!eff[s]) continue;
    ++dirty_stripes;
    const std::size_t begin = s * kStripeBytes;
    const std::size_t end = std::min(begin + kStripeBytes, stage_.size());
    std::size_t pos = begin;
    if (pos < app_.size()) {
      const std::size_t len = std::min(end, app_.size()) - pos;
      std::memcpy(stage_.data() + pos, app_.data() + pos, len);
      pos += len;
    }
    if (pos < end) {
      std::memcpy(stage_.data() + pos, user_.data() + (pos - app_.size()), end - pos);
    }
  }
  staged_dirty_bytes_ = dirty_stripes * kStripeBytes;
  staged_dirty_fraction_ =
      eff.empty() ? 0.0
                  : static_cast<double>(dirty_stripes) / static_cast<double>(eff.size());
  tracker_.clear();
  return timer.seconds();
}

std::span<const std::byte> BlcrCheckpoint::staged() const { return stage_; }

CommitStats BlcrCheckpoint::commit(CommCtx ctx) {
  require_open();
  return commit_impl(ctx, /*async=*/false);
}

CommitStats BlcrCheckpoint::commit_staged(CommCtx ctx) {
  require_open();
  if (!params_.async_staging) {
    throw std::logic_error("BlcrCheckpoint: commit_staged() without async_staging");
  }
  return commit_impl(ctx, /*async=*/true);
}

CommitStats BlcrCheckpoint::commit_impl(CommCtx ctx, bool async) {
  SKT_SPAN("ckpt.commit");
  ctx.group.failpoint(async ? "ckpt.async_begin" : "ckpt.begin");
  ctx.world.barrier();

  CommitStats stats;
  stats.epoch = epoch_.load(std::memory_order_relaxed) + 1;
  telemetry::set_epoch(stats.epoch);

  std::vector<std::byte> image(app_.size() + user_.size());
  if (async) {
    std::memcpy(image.data(), stage_.data(), image.size());
    stats.dirty_bytes = staged_dirty_bytes_;
    stats.dirty_fraction = staged_dirty_fraction_;
  } else {
    std::memcpy(image.data(), app_.data(), app_.size());
    std::memcpy(image.data() + app_.size(), user_.data(), user_.size());
    tracker_.mark_user_tail();
    stats.dirty_bytes = tracker_.dirty_stripes() * kStripeBytes;
    stats.dirty_fraction = tracker_.dirty_fraction();
    tracker_.clear();
  }
  ctx.group.failpoint(async ? "ckpt.async_mid_update" : "ckpt.mid_update");

  util::WallTimer timer;
  {
    SKT_SPAN("ckpt.flush");
    const std::string key = image_key(stats.epoch);
    params_.vault->put(key, image);
    stats.device_s = params_.vault->write_seconds(key, image.size())
                         .value_or(device_.write_seconds(image.size()));
    ctx.group.charge_virtual(stats.device_s);
  }
  stats.flush_s = timer.seconds();
  ctx.group.failpoint(async ? "ckpt.async_flushed" : "ckpt.flushed");

  // Garbage-collect the grandparent image; parent is kept so a failure
  // during the next write still has a complete fallback.
  if (stats.epoch >= 2) params_.vault->remove(image_key(stats.epoch - 2));

  epoch_.store(stats.epoch, std::memory_order_release);
  stats.checkpoint_bytes = image.size();
  if (!async) ctx.group.record_time("checkpoint", stats.device_s + stats.flush_s);
  ctx.world.barrier();
  return stats;
}

RestoreStats BlcrCheckpoint::restore(CommCtx ctx) {
  require_open();
  SKT_SPAN("ckpt.restore");
  ctx.group.failpoint("ckpt.restore");

  // The restart set is the newest epoch every rank has on disk.
  const std::uint64_t target = ctx.world.allreduce_value<std::uint64_t>(epoch_, mpi::Min{});
  if (target == 0) {
    throw Unrecoverable("blcr: some rank has no checkpoint image on disk");
  }

  RestoreStats stats;
  stats.epoch = target;
  util::WallTimer timer;
  const auto image = params_.vault->get(image_key(target));
  if (!image.has_value() || image->size() != app_.size() + user_.size()) {
    throw Unrecoverable("blcr: image for epoch " + std::to_string(target) + " missing/corrupt");
  }
  const double read_s = params_.vault->read_seconds(image_key(target), image->size())
                            .value_or(device_.read_seconds(image->size()));
  ctx.group.charge_virtual(read_s);
  std::memcpy(app_.data(), image->data(), app_.size());
  std::memcpy(user_.data(), image->data() + app_.size(), user_.size());
  if (params_.async_staging) std::memcpy(stage_.data(), image->data(), stage_.size());
  tracker_.clear();
  epoch_ = target;

  stats.rebuild_s = timer.seconds() + read_s;
  ctx.group.record_time("recover", stats.rebuild_s);
  ctx.world.barrier();
  return stats;
}

std::size_t BlcrCheckpoint::memory_bytes() const {
  return app_.size() + user_.size() + stage_.size();  // images live on disk
}

std::uint64_t BlcrCheckpoint::committed_epoch() const {
  return epoch_.load(std::memory_order_acquire);
}

}  // namespace skt::ckpt
