// Strategy factory: one place that maps a Strategy enum plus common
// parameters onto a concrete CheckpointProtocol.
//
// SPI note: make_protocol is the service-provider entry point. Application
// code should build a ckpt::Session (session.hpp) instead; the Session —
// and layered strategies like MultiLevelCheckpoint — call make_protocol
// internally.
#pragma once

#include <memory>
#include <string>

#include "ckpt/protocol.hpp"
#include "encoding/codec.hpp"
#include "storage/device.hpp"
#include "storage/vault.hpp"

namespace skt::ckpt {

struct FactoryParams {
  std::string key_prefix = "skt";
  std::size_t data_bytes = 0;
  std::size_t user_bytes = 64;
  enc::CodecKind codec = enc::CodecKind::kXor;
  /// Group-coded strategies (self, double, incremental): 1 = single
  /// erasure (paper default), 2 = the RAID-6-style dual-erasure layout,
  /// m >= 2 in general = RS(k, m) wide-stripe groups surviving m
  /// concurrent losses per group.
  int parity_degree = 1;
  /// BLCR only:
  storage::Vault* vault = nullptr;
  storage::DeviceProfile device;
  /// Allocate the staging buffer for stage()/commit_staged(). Changes the
  /// persistent-store layout for the SHM strategies (self, incremental),
  /// so a run cannot restart with a different setting than it committed
  /// with — the header codec field records it.
  bool async_staging = false;
  /// PersistentStore owner tag for every segment the protocol creates —
  /// the tenant namespace under a StoreService ("ns/<tenant>/"). Empty for
  /// single-tenant sessions. A key registered to one owner is refused to
  /// any other, so cross-tenant collisions fail loudly at open().
  std::string owner;
};

/// Strategy::kNone is rejected (there is no protocol object for it).
[[nodiscard]] std::unique_ptr<CheckpointProtocol> make_protocol(Strategy strategy,
                                                                const FactoryParams& params);

}  // namespace skt::ckpt
