// Strategy factory: one place that maps a Strategy enum plus common
// parameters onto a concrete CheckpointProtocol.
#pragma once

#include <memory>
#include <string>

#include "ckpt/protocol.hpp"
#include "encoding/codec.hpp"
#include "storage/device.hpp"
#include "storage/snapshot_vault.hpp"

namespace skt::ckpt {

struct FactoryParams {
  std::string key_prefix = "skt";
  std::size_t data_bytes = 0;
  std::size_t user_bytes = 64;
  enc::CodecKind codec = enc::CodecKind::kXor;
  /// Self-checkpoint only: 1 = single-erasure (paper default), 2 = the
  /// RAID-6-style dual-erasure extension.
  int parity_degree = 1;
  /// BLCR only:
  storage::SnapshotVault* vault = nullptr;
  storage::DeviceProfile device;
};

/// Strategy::kNone is rejected (there is no protocol object for it).
[[nodiscard]] std::unique_ptr<CheckpointProtocol> make_protocol(Strategy strategy,
                                                                const FactoryParams& params);

}  // namespace skt::ckpt
