// Double in-memory checkpoint (Fig. 3) — the state-of-the-art baseline
// (SCR's in-memory level; Zheng et al.'s buddy scheme generalized to
// groups). Two (checkpoint, checksum) pairs alternate as commit targets,
// so one complete pair always exists; the price is a second full copy,
// leaving less than 1/3 of memory for the application (Eq. 3).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ckpt/header.hpp"
#include "ckpt/protocol.hpp"
#include "encoding/group_codec.hpp"

namespace skt::ckpt {

class DoubleCheckpoint final : public CheckpointProtocol {
 public:
  struct Params {
    std::string key_prefix = "skt";
    std::size_t data_bytes = 0;
    std::size_t user_bytes = 64;
    enc::CodecKind codec = enc::CodecKind::kXor;
    /// Heap staging buffer for stage()/commit_staged(); recovery never
    /// reads it (the untouched pair covers every failure window).
    bool async_staging = false;
  };

  explicit DoubleCheckpoint(Params params);

  bool open(CommCtx ctx) override;
  [[nodiscard]] std::span<std::byte> data() override;
  [[nodiscard]] std::span<std::byte> user_state() override;
  CommitStats commit(CommCtx ctx) override;
  RestoreStats restore(CommCtx ctx) override;
  [[nodiscard]] bool supports_async() const override { return params_.async_staging; }
  double stage() override;
  CommitStats commit_staged(CommCtx ctx) override;
  [[nodiscard]] std::span<const std::byte> staged() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] Strategy strategy() const override { return Strategy::kDouble; }
  [[nodiscard]] std::uint64_t committed_epoch() const override;

 private:
  [[nodiscard]] std::string key(const char* part, int pair) const;
  [[nodiscard]] std::string key(const char* part) const;
  void require_open() const;
  CommitStats commit_impl(CommCtx ctx, bool async);

  Params params_;
  std::size_t combined_bytes_ = 0;
  std::optional<enc::GroupCodec> codec_;

  std::vector<std::byte> app_;
  std::vector<std::byte> user_;
  std::vector<std::byte> stage_;  // [A|A2] snapshot, async_staging only

  int world_rank_ = -1;
  bool survivor_ = false;
  sim::SegmentPtr ckpt_[2];   // B, b
  sim::SegmentPtr check_[2];  // C, c
  sim::SegmentPtr header_;    // bc_epoch = pair 0's epoch, d_epoch = pair 1's
};

}  // namespace skt::ckpt
