// Double in-memory checkpoint (Fig. 3) — the state-of-the-art baseline
// (SCR's in-memory level; Zheng et al.'s buddy scheme generalized to
// groups). Two (checkpoint, checksum) pairs alternate as commit targets,
// so one complete pair always exists; the price is a second full copy,
// leaving less than 1/3 of memory for the application (Eq. 3).
//
// Dirty-stripe commits: because epoch e overwrites pair e % 2, the target
// pair's content is two commits old, so each pair carries its own
// accumulated dirty set (`pair_dirty_`): every snapshot's dirty flags fold
// into BOTH pairs, and a pair's set is cleared only when that pair
// commits. A clean stripe of the target pair therefore already equals the
// content to commit, so the flush copies only dirty stripes and the
// encode goes through GroupCodec::encode_delta — the old content of the
// dirty stripes (the delta base) is saved into a transient scratch just
// before the flush overwrites them. With async staging, the padded
// aligned `image_` mirror (the old full-copy stage buffer) is refreshed
// dirty-stripes-only by stage() and serves as the commit source.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckpt/header.hpp"
#include "ckpt/protocol.hpp"
#include "encoding/erasure_coder.hpp"
#include "util/aligned.hpp"

namespace skt::ckpt {

class DoubleCheckpoint final : public CheckpointProtocol {
 public:
  struct Params {
    std::string key_prefix = "skt";
    std::size_t data_bytes = 0;
    std::size_t user_bytes = 64;
    enc::CodecKind codec = enc::CodecKind::kXor;
    /// 1 = single parity (the paper layout); m >= 2 = RS(k, m) groups
    /// tolerating m concurrent losses per group.
    int parity_degree = 1;
    /// Heap staging buffer for stage()/commit_staged(); recovery never
    /// reads it (the untouched pair covers every failure window).
    bool async_staging = false;
    /// Owner tag for every created segment (tenant namespace; may be "").
    std::string owner;
  };

  explicit DoubleCheckpoint(Params params);

  bool open(CommCtx ctx) override;
  [[nodiscard]] std::span<std::byte> data() override;
  [[nodiscard]] std::span<std::byte> user_state() override;
  CommitStats commit(CommCtx ctx) override;
  [[nodiscard]] bool restore_feasible(CommCtx ctx) override;
  RestoreStats restore(CommCtx ctx) override;
  [[nodiscard]] bool supports_async() const override { return params_.async_staging; }
  double stage() override;
  CommitStats commit_staged(CommCtx ctx) override;
  [[nodiscard]] std::span<const std::byte> staged() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] Strategy strategy() const override { return Strategy::kDouble; }
  [[nodiscard]] std::uint64_t committed_epoch() const override;
  [[nodiscard]] DirtyTracker* dirty_tracker() override { return &tracker_; }
  [[nodiscard]] std::vector<ScrubRegion> scrub_view() override;
  [[nodiscard]] int max_failures() const override;

 private:
  [[nodiscard]] std::string key(const char* part, int pair) const;
  [[nodiscard]] std::string key(const char* part) const;
  void require_open() const;
  /// Fold the tracker's effective dirty set (tail included) into both
  /// pairs' accumulated sets, clear the tracker, and return the set.
  std::vector<std::uint8_t> fold_dirty();
  /// Copy stripe `s` of the split [app_ | user_] view into `dst` (a padded
  /// combined-layout buffer); a stripe may straddle the boundary.
  void copy_stripe_to(std::size_t s, std::byte* dst) const;
  CommitStats commit_impl(CommCtx ctx, bool async);

  Params params_;
  std::size_t combined_bytes_ = 0;
  std::unique_ptr<enc::ErasureCoder> coder_;

  std::vector<std::byte> app_;
  std::vector<std::byte> user_;
  /// Padded [A|A2] snapshot mirror — the staged commit source, allocated
  /// only with async_staging. Outside a commit it equals the content of
  /// the last stage(), so stage() refreshes dirty stripes only.
  util::AlignedBytes image_;
  /// Stripes dirtied since the last snapshot (stage() or sync commit).
  DirtyTracker tracker_;
  /// Per pair: stripes where image_ may differ from that pair's committed
  /// content. Cleared only when the pair commits.
  std::vector<std::uint8_t> pair_dirty_[2];

  int world_rank_ = -1;
  bool survivor_ = false;
  sim::SegmentPtr ckpt_[2];   // B, b
  sim::SegmentPtr check_[2];  // C, c
  sim::SegmentPtr header_;    // bc_epoch = pair 0's epoch, d_epoch = pair 1's
};

}  // namespace skt::ckpt
