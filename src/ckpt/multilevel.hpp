// Multi-level checkpointing (SCR / FTI style), the composition the paper
// points at in Sections 2.1 and 7: "in-memory checkpoint methods can be
// also combined with a multi-level checkpoint framework for a higher
// degree of fault tolerance".
//
// Level 1 is any in-memory CheckpointProtocol (self-checkpoint by
// default); level 2 periodically flushes the *committed* image to a
// durable device (parallel file system model). Restore first tries the
// fast in-memory path; when that is unrecoverable — e.g. two nodes of one
// encoding group lost at once — it falls back to the newest complete disk
// generation, trading recovery time for coverage.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "ckpt/protocol.hpp"
#include "encoding/codec.hpp"
#include "storage/device.hpp"
#include "storage/vault.hpp"

namespace skt::ckpt {

class MultiLevelCheckpoint final : public CheckpointProtocol {
 public:
  struct Params {
    std::string key_prefix = "skt";
    std::size_t data_bytes = 0;
    std::size_t user_bytes = 64;
    enc::CodecKind codec = enc::CodecKind::kXor;
    /// Forwarded to the level-1 protocol: 1 = single parity, m >= 2 =
    /// RS(k, m) groups surviving m concurrent in-memory losses before the
    /// disk fallback has to take over.
    int parity_degree = 1;
    /// Level-1 strategy (must be an in-memory one).
    Strategy level1 = Strategy::kSelf;
    /// Flush to disk every `flush_every` level-1 commits (0 = never).
    int flush_every = 4;
    /// Required. Any Vault implementation: a single SnapshotVault or a
    /// ShardedVault spreading the flush across node-local shards.
    storage::Vault* vault = nullptr;
    /// Fallback device model for vaults without one of their own
    /// (SnapshotVault), e.g. pfs_profile(ranks).
    storage::DeviceProfile device;
    /// Forwarded to the level-1 protocol; the level-2 flush then reads the
    /// staged image instead of the live working buffer.
    bool async_staging = false;
    /// Owner tag forwarded to the level-1 protocol's segments (tenant
    /// namespace; may be ""). Vault keys are namespaced via key_prefix.
    std::string owner;
  };

  explicit MultiLevelCheckpoint(Params params);

  bool open(CommCtx ctx) override;
  [[nodiscard]] std::span<std::byte> data() override;
  [[nodiscard]] std::span<std::byte> user_state() override;
  CommitStats commit(CommCtx ctx) override;
  RestoreStats restore(CommCtx ctx) override;
  [[nodiscard]] bool supports_async() const override { return inner_->supports_async(); }
  double stage() override { return inner_->stage(); }
  CommitStats commit_staged(CommCtx ctx) override;
  [[nodiscard]] std::span<const std::byte> staged() const override {
    return inner_->staged();
  }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] Strategy strategy() const override { return inner_->strategy(); }
  [[nodiscard]] std::uint64_t committed_epoch() const override;
  [[nodiscard]] DirtyTracker* dirty_tracker() override { return inner_->dirty_tracker(); }

  /// Epoch of the newest complete disk generation (0 = none).
  [[nodiscard]] std::uint64_t disk_epoch() const {
    return disk_epoch_.load(std::memory_order_acquire);
  }
  /// Number of level-2 flushes performed by this instance.
  [[nodiscard]] int flushes() const { return flushes_.load(std::memory_order_acquire); }
  /// True when the last restore() had to fall back to the disk level.
  [[nodiscard]] bool last_restore_used_disk() const { return used_disk_; }

 private:
  /// Per-rank manifest: the two disk generations currently retained.
  /// Written after the image, so a torn flush leaves the manifest pointing
  /// at the previous complete generation.
  struct Manifest {
    std::uint64_t newest = 0;
    std::uint64_t previous = 0;
  };

  [[nodiscard]] std::string image_key(std::uint64_t epoch) const;
  [[nodiscard]] std::string manifest_key() const;
  void flush_to_disk(CommCtx ctx, std::uint64_t epoch, bool from_staged);
  [[nodiscard]] Manifest load_manifest() const;
  void store_manifest(const Manifest& manifest);
  [[nodiscard]] std::uint64_t newest_disk_epoch() const;
  CommitStats commit_impl(CommCtx ctx, CommitStats stats, bool from_staged);

  Params params_;
  storage::Device device_;
  std::unique_ptr<CheckpointProtocol> inner_;
  int world_rank_ = -1;
  /// Flush cadence counter. Touched by whichever thread runs the commit;
  /// the async engine's ticket hand-off orders those accesses.
  int commits_since_flush_ = 0;
  /// Atomic: the async worker publishes flush results while the rank
  /// thread may poll disk_epoch()/flushes().
  std::atomic<std::uint64_t> disk_epoch_ = 0;
  std::atomic<int> flushes_ = 0;
  bool used_disk_ = false;
};

}  // namespace skt::ckpt
