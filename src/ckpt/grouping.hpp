// Group partitioning and process-mapping strategies (Section 3.3).
//
// Constraints and trade-offs from the paper:
//  * members of one group MUST sit on distinct physical nodes, or a node
//    loss takes out several stripes of one code word;
//  * neighboring nodes give faster encoding (the paper's default);
//  * spreading a group across racks additionally survives a rack/switch
//    failure, at some communication cost (left as the explored alternative).
#pragma once

#include <string_view>
#include <vector>

#include "mpi/comm.hpp"

namespace skt::ckpt {

enum class Mapping {
  kNeighbor,  ///< consecutive ranks — fastest encoding (paper's default)
  kSpread,    ///< stride placement — groups span racks for rack-failure tolerance
};

[[nodiscard]] constexpr std::string_view to_string(Mapping m) {
  return m == Mapping::kNeighbor ? "neighbor" : "spread";
}

struct GroupAssignment {
  std::vector<int> color;  ///< group id per world rank
  int num_groups = 0;
  int group_size = 0;
};

/// Plan groups of `group_size` over `world.size()` ranks given each rank's
/// node id (node_ids[r]) and rack id (rack_ids[r]). world.size() must be a
/// multiple of group_size. Throws std::invalid_argument when the
/// distinct-node constraint cannot be met.
[[nodiscard]] GroupAssignment plan_groups(int world_size, int group_size,
                                          const std::vector<int>& node_ids,
                                          const std::vector<int>& rack_ids, Mapping mapping);

/// Collective: build this rank's group communicator from an assignment.
[[nodiscard]] mpi::Comm make_group_comm(mpi::Comm& world, const GroupAssignment& assignment);

/// Validation used by tests: true iff every group's members are on
/// pairwise-distinct nodes.
[[nodiscard]] bool distinct_nodes(const GroupAssignment& assignment,
                                  const std::vector<int>& node_ids);

/// Number of racks the members of `group` span (reliability metric for the
/// mapping ablation bench).
[[nodiscard]] int racks_spanned(const GroupAssignment& assignment, int group,
                                const std::vector<int>& rack_ids);

}  // namespace skt::ckpt
