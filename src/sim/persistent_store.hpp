// Simulation of Linux SHM (shmget) segment lifetime, per Section 2.3 of the
// paper: a segment survives the exit of every process attached to it, so a
// restarted job on a healthy node can re-attach and find its checkpoint.
// A node power-off destroys the store — exactly the failure the encoding
// must recover from.
//
// Multi-tenancy: every segment carries an OWNER tag (a namespace string,
// e.g. "hpl-a"; empty = legacy single-job use). Re-creating a key under a
// different owner, or under the same owner with a different size, fails
// loudly instead of silently handing one tenant another tenant's bytes —
// the isolation guarantee the StoreService builds on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace skt::sim {

/// A named persistent memory segment. Holders keep it alive via shared_ptr,
/// so wiping the store while a doomed rank still writes is memory-safe; the
/// rank's writes just land in an orphaned buffer, as they would on real
/// hardware that lost power mid-write.
class Segment {
 public:
  explicit Segment(std::size_t size) : data_(size) {}

  [[nodiscard]] std::span<std::byte> bytes() { return data_; }
  [[nodiscard]] std::span<const std::byte> bytes() const { return data_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Typed view; size() must be a multiple of sizeof(T).
  template <typename T>
  [[nodiscard]] std::span<T> as() {
    return {reinterpret_cast<T*>(data_.data()), data_.size() / sizeof(T)};
  }

 private:
  std::vector<std::byte> data_;
};

using SegmentPtr = std::shared_ptr<Segment>;

/// Node-local key → segment map with SHM lifetime semantics.
/// Thread-safe: multiple ranks of the same node attach concurrently.
class PersistentStore {
 public:
  /// Create a segment registered to `owner` (a tenant namespace; "" for
  /// single-job use). Attaching to an existing segment with the SAME owner
  /// and size returns it (shmget(key, size, IPC_CREAT) semantics).
  /// Throws std::invalid_argument — loudly, never a silent overwrite —
  /// when the key already exists with a different size OR a different
  /// owner (a cross-tenant collision).
  SegmentPtr create(const std::string& key, std::size_t size,
                    const std::string& owner = "");

  /// Attach to an existing segment; nullptr if the key is unknown (e.g. a
  /// replacement node after power-off).
  [[nodiscard]] SegmentPtr attach(const std::string& key) const;

  [[nodiscard]] bool exists(const std::string& key) const;

  /// Owner tag a key was created under; nullopt if the key is unknown.
  [[nodiscard]] std::optional<std::string> owner_of(const std::string& key) const;

  /// Remove one segment (shmctl IPC_RMID). No-op if absent.
  void remove(const std::string& key);

  /// Power-off: drop every segment. Attached holders keep their buffers
  /// alive but the data is unreachable by any future job.
  void clear();

  /// Total bytes across live segments (memory accounting for Table 1).
  [[nodiscard]] std::size_t bytes_in_use() const;

  /// Bytes across segments registered to `owner` (per-tenant accounting).
  [[nodiscard]] std::size_t owner_bytes(const std::string& owner) const;

  [[nodiscard]] std::size_t segment_count() const;

  /// Stable snapshot of `owner`'s segments, key-ordered — what the
  /// isolation tests checksum to prove another tenant's kill/restore left
  /// these stripes bit-identical.
  [[nodiscard]] std::vector<std::pair<std::string, SegmentPtr>> segments_of(
      const std::string& owner) const;

 private:
  struct Entry {
    SegmentPtr segment;
    std::string owner;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> segments_;
};

}  // namespace skt::sim
