#include "sim/failure.hpp"

#include <chrono>

#include "sim/cluster.hpp"
#include "util/log.hpp"

namespace skt::sim {

void FailureInjector::add_rule(FailureRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(Armed{std::move(rule), 0, false});
}

void FailureInjector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
}

std::optional<KillOrder> FailureInjector::should_kill(std::string_view point, int world_rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Armed& armed : rules_) {
    if (armed.done) continue;
    if (armed.rule.point != point) continue;
    if (armed.rule.world_rank != -1 && armed.rule.world_rank != world_rank) continue;
    if (++armed.hits < armed.rule.hit) continue;
    if (armed.rule.repeat) {
      armed.hits = 0;
    } else {
      armed.done = true;
    }
    triggered_.fetch_add(1, std::memory_order_relaxed);
    KillOrder order;
    order.victim_world_ranks.push_back(armed.rule.victim_world_rank);
    order.victim_world_ranks.insert(order.victim_world_ranks.end(),
                                    armed.rule.extra_victims.begin(),
                                    armed.rule.extra_victims.end());
    order.whole_rack = armed.rule.kill_rack;
    return order;
  }
  return std::nullopt;
}

TimedFailure::TimedFailure(Cluster& cluster, int node_id, double delay_s, std::string reason) {
  thread_ = std::thread([this, &cluster, node_id, delay_s, reason = std::move(reason)] {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(delay_s));
    cv_.wait_until(lock, deadline, [this] { return cancelled_; });
    if (cancelled_) return;
    lock.unlock();
    fired_.store(true, std::memory_order_release);
    cluster.power_off(node_id, reason);
  });
}

TimedFailure::~TimedFailure() {
  cancel();
  if (thread_.joinable()) thread_.join();
}

void TimedFailure::cancel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
  }
  cv_.notify_all();
}

}  // namespace skt::sim
