// Failure injection.
//
// Two triggers:
//  * FailureInjector — deterministic: protocol code is instrumented with
//    named failpoints (Comm::failpoint("ckpt.encode")); a rule kills the
//    calling rank's node on the k-th hit. Tests sweep rules over every
//    protocol step to prove the recovery matrix of Figures 2-4.
//  * TimedFailure — wall-clock: powers a node off after a delay, modelling
//    the paper's physical power-off experiments (Section 6.2).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace skt::sim {

class Cluster;

struct FailureRule {
  std::string point;  ///< failpoint name, exact match
  int world_rank = -1;  ///< rank that must hit it; -1 matches any rank
  int hit = 1;          ///< trigger on the k-th matching hit (1-based)
  bool repeat = false;  ///< re-arm after triggering (hit counts anew)
  /// Node of this world rank is powered off; -1 = the triggering rank's
  /// own node. A survivor-triggered kill pins the victim's death to a
  /// known point in the SURVIVOR's execution — the deterministic way to
  /// hit interleaving-dependent windows (e.g. "a survivor has already
  /// started overwriting its checkpoint").
  int victim_world_rank = -1;
  /// Additional world ranks whose nodes die in the SAME instant as the
  /// victim — the correlated-failure model (shared PDU, blown breaker).
  /// Entries follow the victim_world_rank convention (-1 = triggering
  /// rank); duplicates and already-dead nodes are harmless.
  std::vector<int> extra_victims;
  /// Escalate to a whole-rack failure: every primary node sharing a rack
  /// with any resolved victim is powered off in the same instant (top-of-
  /// rack switch / rack PDU loss). The m-concurrent-death stress test for
  /// RS(k, m) groups that span racks.
  bool kill_rack = false;
};

/// A fired rule, resolved by the caller: which world ranks' nodes die
/// (possibly several — correlated failure) and whether each victim's whole
/// rack goes with it.
struct KillOrder {
  std::vector<int> victim_world_ranks;  ///< -1 entries = the triggering rank
  bool whole_rack = false;
};

class FailureInjector {
 public:
  void add_rule(FailureRule rule);
  void clear();

  /// Called from rank threads at each failpoint. Engaged exactly when a
  /// rule fires for this (point, rank); the order lists every world rank
  /// whose node must be powered off (-1 = the caller's own node).
  std::optional<KillOrder> should_kill(std::string_view point, int world_rank);

  [[nodiscard]] std::uint64_t triggered_count() const {
    return triggered_.load(std::memory_order_relaxed);
  }

 private:
  struct Armed {
    FailureRule rule;
    int hits = 0;
    bool done = false;
  };
  std::mutex mutex_;
  std::vector<Armed> rules_;
  std::atomic<std::uint64_t> triggered_{0};
};

/// RAII background thread that powers off `node_id` after `delay_s` seconds
/// unless cancelled (destroyed) first.
class TimedFailure {
 public:
  TimedFailure(Cluster& cluster, int node_id, double delay_s, std::string reason);
  ~TimedFailure();

  TimedFailure(const TimedFailure&) = delete;
  TimedFailure& operator=(const TimedFailure&) = delete;

  /// Cancel without firing (no-op if already fired).
  void cancel();

  [[nodiscard]] bool fired() const { return fired_.load(std::memory_order_acquire); }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool cancelled_ = false;
  std::atomic<bool> fired_{false};
  std::thread thread_;
};

}  // namespace skt::sim
