// A simulated compute node: identity, hardware profile, rack placement,
// liveness, and its SHM-model persistent store.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/persistent_store.hpp"

namespace skt::sim {

/// Hardware parameters of one node. Defaults model a generic commodity
/// server; the bench harnesses install Tianhe-1A / Tianhe-2 profiles from
/// Table 2 of the paper.
struct NodeProfile {
  double peak_gflops = 100.0;          ///< theoretical peak, per node
  std::size_t memory_bytes = 8ull << 30;  ///< DRAM capacity
  double nic_bandwidth_Bps = 7.0e9;    ///< node NIC bandwidth (shared by ranks)
  double nic_latency_s = 2.0e-6;       ///< per-message latency, same rack
  double inter_rack_latency_s = 6.0e-6;  ///< per-message latency across racks
  int ranks_per_port = 1;              ///< ranks sharing one network port
};

class Node {
 public:
  Node(int id, int rack, NodeProfile profile)
      : id_(id), rack_(rack), profile_(profile) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int rack() const { return rack_; }
  [[nodiscard]] const NodeProfile& profile() const { return profile_; }

  [[nodiscard]] bool alive() const { return alive_.load(std::memory_order_acquire); }

  /// Permanent power-off: wipes the persistent store and marks the node
  /// dead. Idempotent. The Cluster is responsible for aborting any job
  /// that has ranks here.
  void power_off() {
    bool expected = true;
    if (alive_.compare_exchange_strong(expected, false, std::memory_order_acq_rel)) {
      store_.clear();
      ++boot_generation_;
    }
  }

  /// Bring a repaired node back as a blank machine (repaired nodes rejoin
  /// the spare pool in the paper's recovery story). The store stays empty.
  void reboot() { alive_.store(true, std::memory_order_release); }

  /// Counts power cycles; lets tests assert a node was actually lost.
  [[nodiscard]] std::uint64_t boot_generation() const { return boot_generation_.load(); }

  [[nodiscard]] PersistentStore& store() { return store_; }
  [[nodiscard]] const PersistentStore& store() const { return store_; }

 private:
  int id_;
  int rack_;
  NodeProfile profile_;
  std::atomic<bool> alive_{true};
  std::atomic<std::uint64_t> boot_generation_{0};
  PersistentStore store_;
};

}  // namespace skt::sim
