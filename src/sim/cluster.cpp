#include "sim/cluster.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace skt::sim {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  if (config_.num_nodes <= 0) throw std::invalid_argument("Cluster: num_nodes must be positive");
  if (config_.spare_nodes < 0) throw std::invalid_argument("Cluster: spare_nodes must be >= 0");
  if (config_.nodes_per_rack <= 0) {
    throw std::invalid_argument("Cluster: nodes_per_rack must be positive");
  }
  const int total = config_.num_nodes + config_.spare_nodes;
  nodes_.reserve(static_cast<std::size_t>(total));
  for (int id = 0; id < total; ++id) {
    nodes_.push_back(std::make_unique<Node>(id, id / config_.nodes_per_rack, config_.profile));
  }
  for (int id = config_.num_nodes; id < total; ++id) spare_pool_.push_back(id);
}

Node& Cluster::node(int id) {
  if (id < 0 || id >= total_nodes()) throw std::out_of_range("Cluster::node: bad id");
  return *nodes_[static_cast<std::size_t>(id)];
}

const Node& Cluster::node(int id) const {
  if (id < 0 || id >= total_nodes()) throw std::out_of_range("Cluster::node: bad id");
  return *nodes_[static_cast<std::size_t>(id)];
}

std::vector<int> Cluster::primary_nodes() const {
  std::vector<int> ids;
  for (int id = 0; id < config_.num_nodes; ++id) {
    if (nodes_[static_cast<std::size_t>(id)]->alive()) ids.push_back(id);
  }
  return ids;
}

std::optional<int> Cluster::take_spare() {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!spare_pool_.empty()) {
    const int id = spare_pool_.back();
    spare_pool_.pop_back();
    if (nodes_[static_cast<std::size_t>(id)]->alive()) return id;
  }
  return std::nullopt;
}

int Cluster::spares_remaining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int alive = 0;
  for (int id : spare_pool_) {
    if (nodes_[static_cast<std::size_t>(id)]->alive()) ++alive;
  }
  return alive;
}

void Cluster::power_off(int node_id, const std::string& reason) {
  Node& victim = node(node_id);
  if (!victim.alive()) return;
  SKT_LOG_WARN("power-off node {} ({})", node_id, reason);
  victim.power_off();
  // Snapshot the registries so hooks run outside the lock (a hook may
  // re-enter the cluster, e.g. a launcher taking a spare). The in-flight
  // counter keeps detach_job/remove_power_off_observer from returning —
  // and the hooks' captures from being destroyed — while a snapshot is
  // still being dispatched.
  std::vector<JobAbortHook> hooks;
  std::vector<PowerOffObserver> observers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hooks.reserve(abort_hooks_.size());
    for (const auto& [token, hook] : abort_hooks_) hooks.push_back(hook);
    observers.reserve(power_off_observers_.size());
    for (const auto& [token, obs] : power_off_observers_) observers.push_back(obs);
    ++callbacks_in_flight_;
  }
  // Stamp the death before the abort hooks tear jobs down, so detection
  // latency is measured from the true failure instant.
  for (const PowerOffObserver& observer : observers) observer(node_id, reason);
  const std::string message = "node " + std::to_string(node_id) + " powered off: " + reason;
  for (const JobAbortHook& hook : hooks) hook(node_id, message);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --callbacks_in_flight_;
  }
  callbacks_cv_.notify_all();
}

int Cluster::attach_job(JobAbortHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int token = next_token_++;
  abort_hooks_.emplace(token, std::move(hook));
  return token;
}

void Cluster::detach_job(int token) {
  // Erase, then wait out any power_off dispatch that snapshotted the hook
  // before the erase: the caller destroys the hook's captures (its
  // Runtime) right after this returns.
  std::unique_lock<std::mutex> lock(mutex_);
  abort_hooks_.erase(token);
  callbacks_cv_.wait(lock, [this] { return callbacks_in_flight_ == 0; });
}

int Cluster::add_power_off_observer(PowerOffObserver observer) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int token = next_token_++;
  power_off_observers_.emplace(token, std::move(observer));
  return token;
}

void Cluster::remove_power_off_observer(int token) {
  std::unique_lock<std::mutex> lock(mutex_);
  power_off_observers_.erase(token);
  callbacks_cv_.wait(lock, [this] { return callbacks_in_flight_ == 0; });
}

}  // namespace skt::sim
