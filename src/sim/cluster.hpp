// The simulated machine: a set of nodes (some of them spares), rack
// topology, and the hooks that abort running jobs when a node they use is
// powered off — mirroring the observation in the paper that "almost all
// current MPI implementations force the whole program to abort after a node
// failure is detected".
//
// Multi-job: any number of concurrent jobs (and observers, e.g. launcher
// health boards) may register. Each hook receives the dead NODE id so a
// job whose ranklist does not include that node can ignore the event —
// one tenant's failure must not abort another tenant's job.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/node.hpp"

namespace skt::sim {

struct ClusterConfig {
  int num_nodes = 8;       ///< nodes available to jobs
  int spare_nodes = 2;     ///< held back for failure replacement
  int nodes_per_rack = 4;  ///< rack topology for mapping strategies
  NodeProfile profile;     ///< uniform hardware profile
};

/// Callback a running job registers so that node power-off can abort it.
/// Receives the dead node's id plus a human-readable reason
/// ("node 3 powered off: ..."); the job decides whether the node is one
/// of its own.
using JobAbortHook = std::function<void(int node_id, const std::string& reason)>;

/// Observer of node deaths, independent of the abort hooks: called once per
/// actual power-off with the node id and reason. The launcher uses it to
/// timestamp the real failure instant for detection-latency measurement.
using PowerOffObserver = std::function<void(int node_id, const std::string& reason)>;

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] int total_nodes() const { return static_cast<int>(nodes_.size()); }

  [[nodiscard]] Node& node(int id);
  [[nodiscard]] const Node& node(int id) const;

  /// Node ids currently alive and not reserved as spares.
  [[nodiscard]] std::vector<int> primary_nodes() const;

  /// Claim one alive spare node for failure replacement; nullopt when the
  /// spare pool is exhausted (the job then cannot be restarted).
  [[nodiscard]] std::optional<int> take_spare();

  [[nodiscard]] int spares_remaining() const;

  /// Permanently power off a node: wipes its SHM store, marks it dead and
  /// notifies every observer and registered job. Safe to call from any
  /// thread, including a rank thread running on the victim node.
  void power_off(int node_id, const std::string& reason);

  /// Register the abort hook of a running job; returns a token for
  /// detach_job(). Any number of jobs may be attached concurrently.
  /// detach_job blocks until no power_off dispatch is mid-flight, so the
  /// hook's captures may be destroyed the moment it returns — never call
  /// it from inside a hook or observer (it would wait on itself).
  [[nodiscard]] int attach_job(JobAbortHook hook);
  void detach_job(int token);

  /// Register a power-off observer; returns a token for
  /// remove_power_off_observer(). Observers run before the abort hooks,
  /// on the thread that triggered the power-off. Removal has the same
  /// drain guarantee (and the same no-reentrancy rule) as detach_job.
  [[nodiscard]] int add_power_off_observer(PowerOffObserver observer);
  void remove_power_off_observer(int token);

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<int> spare_pool_;  // ids not yet handed out
  mutable std::mutex mutex_;
  std::condition_variable callbacks_cv_;
  int callbacks_in_flight_ = 0;  ///< power_off snapshot batches mid-dispatch
  int next_token_ = 1;
  std::map<int, JobAbortHook> abort_hooks_;
  std::map<int, PowerOffObserver> power_off_observers_;
};

}  // namespace skt::sim
