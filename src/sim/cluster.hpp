// The simulated machine: a set of nodes (some of them spares), rack
// topology, and the hook that aborts a running job when a node it uses is
// powered off — mirroring the observation in the paper that "almost all
// current MPI implementations force the whole program to abort after a node
// failure is detected".
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/node.hpp"

namespace skt::sim {

struct ClusterConfig {
  int num_nodes = 8;       ///< nodes available to the initial job
  int spare_nodes = 2;     ///< held back for failure replacement
  int nodes_per_rack = 4;  ///< rack topology for mapping strategies
  NodeProfile profile;     ///< uniform hardware profile
};

/// Callback a running job registers so that node power-off can abort it.
/// Receives a human-readable reason ("node 3 powered off").
using JobAbortHook = std::function<void(const std::string&)>;

/// Observer of node deaths, independent of the abort hook: called once per
/// actual power-off with the node id and reason. The launcher uses it to
/// timestamp the real failure instant for detection-latency measurement.
using PowerOffObserver = std::function<void(int node_id, const std::string& reason)>;

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] int total_nodes() const { return static_cast<int>(nodes_.size()); }

  [[nodiscard]] Node& node(int id);
  [[nodiscard]] const Node& node(int id) const;

  /// Node ids currently alive and not reserved as spares.
  [[nodiscard]] std::vector<int> primary_nodes() const;

  /// Claim one alive spare node for failure replacement; nullopt when the
  /// spare pool is exhausted (the job then cannot be restarted).
  [[nodiscard]] std::optional<int> take_spare();

  [[nodiscard]] int spares_remaining() const;

  /// Permanently power off a node: wipes its SHM store, marks it dead and
  /// aborts the registered job, if any. Safe to call from any thread,
  /// including a rank thread running on the victim node.
  void power_off(int node_id, const std::string& reason);

  /// Register/unregister the abort hook of the currently running job.
  void attach_job(JobAbortHook hook);
  void detach_job();

  /// Register/clear the power-off observer (nullptr clears). Runs before
  /// the abort hook, on the thread that triggered the power-off.
  void set_power_off_observer(PowerOffObserver observer);

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<int> spare_pool_;  // ids not yet handed out
  mutable std::mutex mutex_;
  JobAbortHook abort_hook_;
  PowerOffObserver power_off_observer_;
};

}  // namespace skt::sim
