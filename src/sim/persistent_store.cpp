#include "sim/persistent_store.hpp"

#include <stdexcept>

namespace skt::sim {

SegmentPtr PersistentStore::create(const std::string& key, std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = segments_.find(key); it != segments_.end()) {
    if (it->second->size() != size) {
      throw std::invalid_argument("PersistentStore::create: key '" + key +
                                  "' exists with a different size");
    }
    return it->second;
  }
  auto seg = std::make_shared<Segment>(size);
  segments_.emplace(key, seg);
  return seg;
}

SegmentPtr PersistentStore::attach(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = segments_.find(key);
  return it == segments_.end() ? nullptr : it->second;
}

bool PersistentStore::exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.contains(key);
}

void PersistentStore::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  segments_.erase(key);
}

void PersistentStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  segments_.clear();
}

std::size_t PersistentStore::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, seg] : segments_) total += seg->size();
  return total;
}

std::size_t PersistentStore::segment_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.size();
}

}  // namespace skt::sim
