#include "sim/persistent_store.hpp"

#include <stdexcept>

namespace skt::sim {

SegmentPtr PersistentStore::create(const std::string& key, std::size_t size,
                                   const std::string& owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = segments_.find(key); it != segments_.end()) {
    if (it->second.owner != owner) {
      throw std::invalid_argument(
          "PersistentStore::create: key '" + key + "' is registered to namespace '" +
          it->second.owner + "', refused for namespace '" + owner + "'");
    }
    if (it->second.segment->size() != size) {
      throw std::invalid_argument("PersistentStore::create: key '" + key +
                                  "' exists with a different size");
    }
    return it->second.segment;
  }
  auto seg = std::make_shared<Segment>(size);
  segments_.emplace(key, Entry{seg, owner});
  return seg;
}

SegmentPtr PersistentStore::attach(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = segments_.find(key);
  return it == segments_.end() ? nullptr : it->second.segment;
}

bool PersistentStore::exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.contains(key);
}

std::optional<std::string> PersistentStore::owner_of(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = segments_.find(key);
  if (it == segments_.end()) return std::nullopt;
  return it->second.owner;
}

void PersistentStore::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  segments_.erase(key);
}

void PersistentStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  segments_.clear();
}

std::size_t PersistentStore::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, entry] : segments_) total += entry.segment->size();
  return total;
}

std::size_t PersistentStore::owner_bytes(const std::string& owner) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, entry] : segments_) {
    if (entry.owner == owner) total += entry.segment->size();
  }
  return total;
}

std::size_t PersistentStore::segment_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.size();
}

std::vector<std::pair<std::string, SegmentPtr>> PersistentStore::segments_of(
    const std::string& owner) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, SegmentPtr>> out;
  for (const auto& [key, entry] : segments_) {
    if (entry.owner == owner) out.emplace_back(key, entry.segment);
  }
  return out;
}

}  // namespace skt::sim
