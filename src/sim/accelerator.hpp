// Simulated accelerator (Section 5.1): a device with its own volatile
// memory attached to a node. Checkpoint and recovery operate on HOST
// memory only, so — exactly as the paper prescribes for accelerator HPL —
// updated device data must be explicitly transferred back to the host
// before a new checkpoint, and re-uploaded after a restore.
//
// Device memory is ordinary process memory here (not in the node's
// PersistentStore): it dies with the job, never mind the node — which is
// what makes forgetting the download an observable bug in tests.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/clock.hpp"

namespace skt::sim {

struct AcceleratorProfile {
  double h2d_bandwidth_Bps = 12.0e9;  ///< host -> device (PCIe-ish)
  double d2h_bandwidth_Bps = 12.0e9;  ///< device -> host
  double transfer_latency_s = 10.0e-6;
  /// Device speedup over the host for offloaded kernels (only used by
  /// examples to model compute time).
  double speedup = 8.0;
};

class Accelerator {
 public:
  explicit Accelerator(std::size_t memory_bytes, AcceleratorProfile profile = {})
      : profile_(profile), memory_(memory_bytes) {}

  [[nodiscard]] const AcceleratorProfile& profile() const { return profile_; }
  [[nodiscard]] std::size_t memory_bytes() const { return memory_.size(); }

  /// Device-resident buffer, directly addressable by "kernels" (plain
  /// host code in the simulation).
  [[nodiscard]] std::span<std::byte> memory() { return memory_; }

  /// Copy host -> device. Returns the modeled transfer seconds (charge
  /// them to the rank's virtual clock for timing-accurate benches).
  double upload(std::span<const std::byte> host, std::size_t device_offset = 0) {
    check_range(device_offset, host.size());
    std::memcpy(memory_.data() + device_offset, host.data(), host.size());
    return profile_.transfer_latency_s +
           static_cast<double>(host.size()) / profile_.h2d_bandwidth_Bps;
  }

  /// Copy device -> host (the mandatory pre-checkpoint staging step).
  double download(std::span<std::byte> host, std::size_t device_offset = 0) {
    check_range(device_offset, host.size());
    std::memcpy(host.data(), memory_.data() + device_offset, host.size());
    return profile_.transfer_latency_s +
           static_cast<double>(host.size()) / profile_.d2h_bandwidth_Bps;
  }

 private:
  void check_range(std::size_t offset, std::size_t len) const {
    if (offset + len > memory_.size()) {
      throw std::out_of_range("Accelerator: transfer exceeds device memory");
    }
  }

  AcceleratorProfile profile_;
  std::vector<std::byte> memory_;
};

}  // namespace skt::sim
