// Machine-readable run reports.
//
// A RunReport is the exit artifact of one run: scalar facts set by the
// driver (matrix size, iterations, residual, verdict) plus a snapshot of
// the metrics registry — wire/copied-byte counters and the per-phase
// timing histograms with p50/p90/p99 — serialized as one JSON document.
// Examples and benches write `RUN_<name>.json` / `BENCH_<name>.json`
// next to the binary so sweeps can be diffed and plotted without scraping
// logs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace skt::telemetry {

class RunReport {
 public:
  explicit RunReport(std::string name);

  /// Record a scalar fact. Insertion order is preserved; setting an
  /// existing key overwrites its value in place.
  void set(const std::string& key, double v);
  void set(const std::string& key, std::int64_t v);
  void set(const std::string& key, std::uint64_t v);
  void set(const std::string& key, bool v);
  void set(const std::string& key, std::string_view v);
  void set(const std::string& key, const char* v);

  /// Include the metrics registry snapshot in the document (default on).
  /// Benches that only publish their own scalars can switch it off.
  void set_include_metrics(bool on) { include_metrics_ = on; }

  [[nodiscard]] const std::string& name() const { return name_; }

  /// The full report as a JSON document.
  [[nodiscard]] std::string json() const;

  /// json() to `path`; false (with a stderr warning) on I/O error.
  bool write(const std::string& path) const;

  /// write() to the conventional "RUN_<name>.json" in the working directory.
  bool write() const;

 private:
  using Value = std::variant<double, std::int64_t, std::uint64_t, bool, std::string>;
  std::string name_;
  bool include_metrics_ = true;
  std::vector<std::pair<std::string, Value>> values_;

  void set_value(const std::string& key, Value v);
};

}  // namespace skt::telemetry
