// RAII span tracing of the commit/restore state machine.
//
//   void commit() {
//     SKT_SPAN("ckpt.commit");
//     { SKT_SPAN("ckpt.encode"); coder_->encode(...); }
//     ...
//   }
//
// Each completed span is pushed into a per-rank ring buffer owned by the
// process-wide Tracer — NOT by the rank thread — so the spans recorded up
// to a node kill survive the thread's JobAborted unwind and still appear
// in the exported trace. Ring capacity is fixed; when a rank overflows it,
// the oldest spans are overwritten and total_dropped() says how many.
//
// Span names use the same dotted stems as the ckpt.* failpoints, and a
// triggered failpoint is recorded as an instant event named
// "fail:<failpoint>", so an exported timeline shows exactly which protocol
// step an injected failure landed in.
//
// Export is Chrome trace_event JSON: open chrome://tracing or
// https://ui.perfetto.dev and load the file. One row (tid) per rank; the
// launcher daemon gets its own row.
//
// Everything is a no-op while telemetry::enabled() is false — a disabled
// SKT_SPAN costs one relaxed atomic load.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace skt::telemetry {

struct SpanRecord {
  static constexpr std::size_t kNameBytes = 48;
  char name[kNameBytes] = {};
  char parent[kNameBytes] = {};  ///< enclosing span on the same thread, if any
  double t0_us = 0.0;            ///< microseconds since tracer start
  double dur_us = 0.0;           ///< < 0 marks an instant event
  int rank = -1;                 ///< world rank; -1 = non-rank (launcher) thread
  std::uint64_t epoch = 0;       ///< checkpoint epoch active when the span closed
  std::uint16_t depth = 0;       ///< nesting depth at record time

  [[nodiscard]] bool instant() const { return dur_us < 0.0; }
};

/// Declare this thread's world rank for span attribution; called by the
/// Runtime next to util::set_thread_context. Rank < 0 re-attaches the
/// thread to the shared non-rank row.
void set_thread_rank(int rank);

/// Attribute this thread's spans to rank `rank`'s async checkpoint WORKER
/// row instead of the rank row itself, so overlap between the rank thread
/// and its background commit pipeline is visible as two parallel rows in
/// the exported timeline ("ckpt-worker <r>").
void set_thread_async_worker(int rank);

/// Checkpoint epoch stamped onto spans closed by this thread from now on.
void set_epoch(std::uint64_t epoch);

/// RAII span; records on destruction. Name must outlive the span (string
/// literals via SKT_SPAN always do).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  double t0_us_;  ///< < 0 when telemetry was disabled at construction
};

/// Zero-duration marker (failpoint hits, aborts).
void instant(std::string_view name);

class Tracer {
 public:
  /// Ring capacity per rank row (newest kept on overflow).
  static constexpr std::size_t kRingCapacity = 4096;

  static Tracer& instance();

  void push(const SpanRecord& rec);

  /// All recorded spans, every rank merged, sorted by start time.
  [[nodiscard]] std::vector<SpanRecord> collect() const;

  /// Spans overwritten by ring wrap-around, summed over ranks.
  [[nodiscard]] std::uint64_t total_dropped() const;

  /// Ring overflow per row (rank, worker, or -1 launcher row), nonzero
  /// entries only — RunReports carry this so a truncated rank timeline is
  /// attributable from the artifact alone.
  [[nodiscard]] std::map<int, std::uint64_t> dropped_by_rank() const;

  /// The whole timeline as Chrome trace_event JSON.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// chrome_trace_json() to `path`; false (with a stderr warning) on I/O error.
  bool export_chrome_trace(const std::string& path) const;

  /// Drop every recorded span (test isolation). Rings stay registered.
  void clear();

  /// Microseconds since tracer start (the trace time base).
  [[nodiscard]] double now_us() const;

 private:
  Tracer();
  struct Impl;
  Impl* impl_;
};

#define SKT_SPAN_CAT2(a, b) a##b
#define SKT_SPAN_CAT(a, b) SKT_SPAN_CAT2(a, b)
/// Trace the enclosing scope as a span named `name` (a string literal).
#define SKT_SPAN(name) ::skt::telemetry::Span SKT_SPAN_CAT(skt_span_, __LINE__)(name)

}  // namespace skt::telemetry
