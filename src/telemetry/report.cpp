#include "telemetry/report.hpp"

#include <chrono>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/json_writer.hpp"
#include "util/log.hpp"

namespace skt::telemetry {
namespace {

void write_histogram(util::JsonWriter& w, const HistogramSummary& h) {
  w.begin_object();
  w.field("count", h.count);
  w.field("min", h.min);
  w.field("max", h.max);
  w.field("mean", h.mean);
  w.field("p50", h.quantiles.p50);
  w.field("p90", h.quantiles.p90);
  w.field("p99", h.quantiles.p99);
  // Sparse bucket occupancy: [bucket index, count] pairs, zeros omitted.
  w.key("buckets");
  w.begin_array();
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    if (h.buckets[b] == 0) continue;
    w.begin_array();
    w.value(static_cast<std::uint64_t>(b));
    w.value(h.buckets[b]);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

RunReport::RunReport(std::string name) : name_(std::move(name)) {}

void RunReport::set_value(const std::string& key, Value v) {
  for (auto& [k, existing] : values_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  values_.emplace_back(key, std::move(v));
}

void RunReport::set(const std::string& key, double v) { set_value(key, v); }
void RunReport::set(const std::string& key, std::int64_t v) { set_value(key, v); }
void RunReport::set(const std::string& key, std::uint64_t v) { set_value(key, v); }
void RunReport::set(const std::string& key, bool v) { set_value(key, v); }
void RunReport::set(const std::string& key, std::string_view v) {
  set_value(key, std::string(v));
}
void RunReport::set(const std::string& key, const char* v) {
  set_value(key, std::string(v));
}

std::string RunReport::json() const {
  util::JsonWriter w;
  w.begin_object();
  w.field("report", name_);
  const double unix_seconds =
      std::chrono::duration<double>(std::chrono::system_clock::now().time_since_epoch())
          .count();
  w.field("ts_unix", unix_seconds);

  w.key("values");
  w.begin_object();
  for (const auto& [key, value] : values_) {
    w.key(key);
    std::visit([&w](const auto& v) { w.value(v); }, value);
  }
  w.end_object();

  if (include_metrics_) {
    const MetricsSnapshot snap = metrics().snapshot();
    w.key("metrics");
    w.begin_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, v] : snap.counters) w.field(name, v);
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, v] : snap.gauges) w.field(name, v);
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const auto& [name, h] : snap.histograms) {
      w.key(name);
      write_histogram(w, h);
    }
    w.end_object();
    w.end_object();
    w.field("trace_spans_dropped", Tracer::instance().total_dropped());
    // Which rows overflowed their rings (nonzero only): a truncated rank
    // timeline is diagnosable from the report without re-running.
    w.key("trace_dropped_by_rank");
    w.begin_object();
    for (const auto& [rank, dropped] : Tracer::instance().dropped_by_rank()) {
      w.field(std::to_string(rank), dropped);
    }
    w.end_object();
  }

  w.end_object();
  return w.str();
}

bool RunReport::write(const std::string& path) const {
  if (!util::write_json_file(path, json())) {
    SKT_LOG_WARN("telemetry: cannot write run report {}", path);
    return false;
  }
  return true;
}

bool RunReport::write() const { return write("RUN_" + name_ + ".json"); }

}  // namespace skt::telemetry
