#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace skt::telemetry {
namespace {

std::atomic<bool> g_enabled{false};

/// CAS-free would be nicer but fetch_min/fetch_max for doubles don't exist;
/// the loop is contested only when two threads race a new extreme.
void atomic_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Histogram::record(double sample) {
  if (!enabled()) return;
  if (sample < 0.0 || !std::isfinite(sample)) sample = 0.0;

  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  if (n == 0) {
    // First sample seeds min/max; racing later samples still converge via
    // the CAS loops below.
    min_.store(sample, std::memory_order_relaxed);
    max_.store(sample, std::memory_order_relaxed);
  } else {
    atomic_min(min_, sample);
    atomic_max(max_, sample);
  }

  const double scaled = sample / unit_;
  std::size_t bucket = 0;
  if (scaled >= 1.0) {
    bucket = std::min<std::size_t>(kBuckets - 1,
                                   1 + static_cast<std::size_t>(std::log2(scaled)));
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t slot = reservoir_next_.fetch_add(1, std::memory_order_relaxed);
  reservoir_[slot % kReservoir].store(sample, std::memory_order_relaxed);
}

HistogramSummary Histogram::summarize() const {
  HistogramSummary s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.mean = sum_.load(std::memory_order_relaxed) / static_cast<double>(s.count);
  s.buckets.resize(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  const std::size_t held =
      static_cast<std::size_t>(std::min<std::uint64_t>(s.count, kReservoir));
  std::vector<double> samples(held);
  for (std::size_t i = 0; i < held; ++i) {
    samples[i] = reservoir_[i].load(std::memory_order_relaxed);
  }
  std::sort(samples.begin(), samples.end());
  s.quantiles = util::quantiles(samples);
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  reservoir_next_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(unit);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->summarize();
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace skt::telemetry
