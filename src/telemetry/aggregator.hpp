// Live metrics aggregator: turns the registry's monotone counters into
// rates an operator can watch while the job runs.
//
// A background thread (or a test calling tick() by hand) samples the
// MetricsRegistry on a fixed interval and derives, from consecutive
// snapshots:
//
//   * commit throughput   (ckpt.commits delta / dt)
//   * wire bandwidth      (mpi.wire_bytes delta / dt)
//   * failure arrival rate (launcher.failures delta / dt)
//   * current dirty fraction and commit-latency p99
//
// each smoothed with a light EWMA. The derived values are published BACK
// into the registry as `monitor.*` gauges, so any RunReport written after
// a monitored run carries the last observed rates for free, and appended
// as one compact JSON object per tick to an optional JSON-lines feed
// (`scripts/monitor_demo.sh` tails it).
//
// Watchdogs run on the same cadence:
//   * stalled rank — a rank whose HealthBoard phi crosses `stall_phi`
//     while the job is supposedly running (edge-triggered per rank);
//   * commit p99 regression — commit latency p99 exceeds
//     `commit_p99_baseline_s * regression_factor` (latched once).
//
// Anomalies go to the feed, the `monitor.anomalies` counter, and an
// in-memory list tests can assert on. The aggregator owns no references
// into sim/ckpt — everything arrives through the registry and the board.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace skt::telemetry {

struct AggregatorConfig {
  double interval_s = 0.05;   ///< sampling period of the background thread
  std::string feed_path;      ///< JSON-lines feed; empty = no file output
  /// Suspicion score past which a silent rank is reported as stalled.
  /// <= 0 disables the stall watchdog (useful when heartbeats are off).
  double stall_phi = 3.0;
  /// Committed baseline for ckpt.commit_s p99, in seconds. 0 disables the
  /// regression watchdog.
  double commit_p99_baseline_s = 0.0;
  double regression_factor = 2.0;  ///< p99 > baseline * factor => anomaly
};

/// One watchdog firing.
struct Anomaly {
  std::string kind;    ///< "stalled_rank" | "commit_p99_regression"
  int rank = -1;       ///< offending rank, or -1 when not rank-specific
  double t_us = 0.0;   ///< trace-clock time of detection
  std::string detail;  ///< human-readable one-liner
};

/// Rates derived at the newest tick (also published as monitor.* gauges).
struct MonitorSample {
  std::uint64_t tick = 0;
  double t_us = 0.0;
  double commit_hz = 0.0;
  double wire_bps = 0.0;     ///< bytes per second
  double failure_hz = 0.0;
  double dirty_fraction = 0.0;
  double commit_p99_s = 0.0;
  double max_phi = 0.0;      ///< worst suspicion score across beating ranks
};

class Aggregator {
 public:
  explicit Aggregator(AggregatorConfig config);
  ~Aggregator();  ///< stops and joins the thread, closes the feed
  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Launch the periodic sampling thread. Idempotent.
  void start();

  /// Stop and join the thread; a final tick drains the last interval so
  /// short runs still produce at least one feed line.
  void stop();

  /// One sampling step, callable without start() for deterministic tests.
  void tick();

  [[nodiscard]] std::uint64_t ticks() const;
  [[nodiscard]] MonitorSample last_sample() const;
  [[nodiscard]] std::vector<Anomaly> anomalies() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace skt::telemetry
