#include "telemetry/forensics.hpp"

#include <mutex>
#include <utility>

#include "util/json_writer.hpp"

namespace skt::telemetry {
namespace {

void write_geometry(util::JsonWriter& w, const GroupGeometry& g) {
  w.begin_object();
  w.field("strategy", g.strategy);
  w.field("group_index", static_cast<std::int64_t>(g.group_index));
  w.field("group_size", static_cast<std::int64_t>(g.group_size));
  w.field("parity_count", static_cast<std::int64_t>(g.parity_count));
  w.key("members");
  w.begin_array();
  for (const int m : g.members) w.value(static_cast<std::int64_t>(m));
  w.end_array();
  w.key("nodes");
  w.begin_array();
  for (const int n : g.nodes) w.value(static_cast<std::int64_t>(n));
  w.end_array();
  w.field("data_bytes", static_cast<std::uint64_t>(g.data_bytes));
  w.field("stripe_bytes", static_cast<std::uint64_t>(g.stripe_bytes));
  w.field("stripe_count", static_cast<std::uint64_t>(g.stripe_count));
  w.end_object();
}

}  // namespace

std::string Postmortem::json() const {
  util::JsonWriter w;
  w.begin_object();
  // v2 adds geometry.parity_count, rebuilds[].concurrent_lost, and the
  // scrub.* block; every v1 field is kept with unchanged meaning, so v1
  // readers that ignore unknown keys keep working.
  w.field("schema", "skt-postmortem-v2");
  w.field("name", name);
  w.field("incident", static_cast<std::int64_t>(incident));
  w.field("attempt", static_cast<std::int64_t>(attempt));
  w.field("reason", reason);

  w.key("lost_ranks");
  w.begin_array();
  for (const int r : lost_ranks) w.value(static_cast<std::int64_t>(r));
  w.end_array();
  w.key("lost_nodes");
  w.begin_array();
  for (const int n : lost_nodes) w.value(static_cast<std::int64_t>(n));
  w.end_array();

  w.field("lost_epoch", lost_epoch);
  w.key("committed_epochs");
  w.begin_object();
  for (const auto& [rank, epoch] : committed_epochs) {
    w.field(std::to_string(rank), epoch);
  }
  w.end_object();

  w.field("recovered", recovered);
  w.field("restored_epoch", restored_epoch);

  w.key("geometry");
  write_geometry(w, geometry);

  w.key("rebuilds");
  w.begin_array();
  for (const RebuildInfo& rb : rebuilds) {
    w.begin_object();
    w.field("rank", static_cast<std::int64_t>(rb.rank));
    w.field("epoch", rb.epoch);
    w.field("rebuild_s", rb.rebuild_s);
    w.key("stripes");
    w.begin_object();
    w.field("begin", static_cast<std::uint64_t>(rb.stripe_begin));
    w.field("count", static_cast<std::uint64_t>(rb.stripe_count));
    w.field("stripe_bytes", static_cast<std::uint64_t>(rb.stripe_bytes));
    w.end_object();
    w.key("peers");
    w.begin_array();
    for (const int p : rb.peers) w.value(static_cast<std::int64_t>(p));
    w.end_array();
    w.key("concurrent_lost");
    w.begin_array();
    for (const int r : rb.concurrent_lost) w.value(static_cast<std::int64_t>(r));
    w.end_array();
    w.end_object();
  }
  w.end_array();

  // Fig. 10's recovery phases, in wall order: detect -> replace -> restart
  // (-> restore, once the relaunch reaches Session::open).
  w.key("timeline");
  w.begin_array();
  for (const PhaseTiming& p : timeline) {
    w.begin_object();
    w.field("phase", p.phase);
    w.field("seconds", p.seconds);
    w.end_object();
  }
  w.end_array();

  w.field("detect_latency_s", detect_latency_s);
  w.field("detect_phi", detect_phi);
  w.field("last_dirty_bytes", static_cast<std::uint64_t>(last_dirty_bytes));
  w.field("last_dirty_fraction", last_dirty_fraction);
  w.field("trace_spans", trace_spans);
  w.field("trace_dropped", trace_dropped);
  w.key("scrub");
  w.begin_object();
  w.field("passes", scrub_passes);
  w.field("corruption_detected", scrub_corruption_detected);
  w.field("repaired", scrub_repaired);
  w.field("unrepaired", scrub_unrepaired);
  w.end_object();
  w.end_object();
  return w.str();
}

bool Postmortem::write(const std::string& path) const {
  return util::write_json_file(path, json());
}

namespace forensics {

struct Recorder::Impl {
  mutable std::mutex mutex;
  std::map<int, GroupGeometry> geometries;
  std::map<int, CommitNote> commits;
  std::vector<RestoreNote> restores;
  std::vector<Postmortem> history;
};

Recorder::Recorder() : impl_(new Impl) {}

Recorder& Recorder::instance() {
  static Recorder rec;
  return rec;
}

Recorder& recorder() { return Recorder::instance(); }

void Recorder::begin_job() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->geometries.clear();
  impl_->commits.clear();
  impl_->restores.clear();
}

void Recorder::note_geometry(int world_rank, GroupGeometry geometry) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->geometries[world_rank] = std::move(geometry);
}

void Recorder::note_commit(int world_rank, const CommitNote& note) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  CommitNote& slot = impl_->commits[world_rank];
  // Async pipelines can complete epochs slightly out of order relative to
  // other ranks' notes; keep the newest epoch we have seen for this rank.
  if (note.epoch >= slot.epoch) slot = note;
}

void Recorder::note_restore(const RestoreNote& note) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->restores.push_back(note);
}

std::optional<GroupGeometry> Recorder::geometry_of(int world_rank) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->geometries.find(world_rank);
  if (it == impl_->geometries.end()) return std::nullopt;
  return it->second;
}

std::optional<CommitNote> Recorder::last_commit(int world_rank) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->commits.find(world_rank);
  if (it == impl_->commits.end()) return std::nullopt;
  return it->second;
}

std::map<int, std::uint64_t> Recorder::committed_epochs() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::map<int, std::uint64_t> out;
  for (const auto& [rank, note] : impl_->commits) out[rank] = note.epoch;
  return out;
}

std::uint64_t Recorder::restore_marker() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->restores.size();
}

std::vector<RestoreNote> Recorder::restores_since(std::uint64_t marker) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (marker >= impl_->restores.size()) return {};
  return {impl_->restores.begin() + static_cast<std::ptrdiff_t>(marker),
          impl_->restores.end()};
}

void Recorder::add_postmortem(Postmortem pm) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->history.push_back(std::move(pm));
}

std::vector<Postmortem> Recorder::postmortems() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->history;
}

void Recorder::clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->geometries.clear();
  impl_->commits.clear();
  impl_->restores.clear();
  impl_->history.clear();
}

}  // namespace forensics
}  // namespace skt::telemetry
