// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms shared by every rank thread of a simulated job.
//
// Recording is lock-free (relaxed atomics) so rank threads pay nanoseconds
// per event; aggregation happens only at collection points (RunReport
// emission, tests) via snapshot(). Because SimMPI runs all ranks as threads
// of one process, a single registry IS the job-wide aggregate — per-rank
// contributions merge in the atomics instead of over a network.
//
// Hot paths keep a `static Histogram&` so the name lookup (a mutex-guarded
// map) happens once per call site, not per event. Metric objects are never
// deleted; references stay valid for the process lifetime. reset_values()
// zeroes every metric in place for test isolation.
//
// Histogram recording is additionally gated on telemetry::enabled(): when
// telemetry is off (the default) a record() is one relaxed load + branch,
// which keeps the telemetry-off overhead of hot loops within noise.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace skt::telemetry {

/// Global on/off switch for event recording (spans, histogram samples).
/// Counters and gauges always record — they are already how the runtime
/// accounts wire bytes, and a relaxed add is cheaper than a branch misses.
void set_enabled(bool on);
bool enabled();

class Counter {
 public:
  void add(std::uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void increment() { add(1); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSummary {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  util::Quantiles quantiles;  ///< from the sample reservoir (exact until it wraps)
  /// Occupancy of the 64 power-of-two buckets; bucket b counts samples in
  /// [2^(b-1), 2^b) after scaling, bucket 0 counts samples < 1 unit.
  std::vector<std::uint64_t> buckets;
};

/// Fixed-bucket histogram over non-negative samples (seconds, bytes).
/// Buckets are powers of two of a configurable unit (default 1 µs for
/// seconds-valued phases, so bucket 40 ≈ 9 minutes); quantile summaries
/// come from a bounded sample reservoir sorted at collection time.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  static constexpr std::size_t kReservoir = 4096;

  /// `unit` is the sample magnitude mapped to bucket 1 (default 1e-6: one
  /// microsecond when recording seconds, one byte when recording bytes
  /// scaled by callers).
  explicit Histogram(double unit = 1e-6) : unit_(unit) {}

  /// No-op unless telemetry::enabled().
  void record(double sample);

  [[nodiscard]] HistogramSummary summarize() const;
  void reset();

 private:
  double unit_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  // Overwrite-on-wrap reservoir; slots are atomics so concurrent writers
  // and the summarizing reader stay race-free without a lock.
  std::atomic<std::uint64_t> reservoir_next_{0};
  std::atomic<double> reservoir_[kReservoir]{};
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

class MetricsRegistry {
 public:
  /// Find-or-create by name. Returned references live forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double unit = 1e-6);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every metric in place (names and references survive).
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry.
MetricsRegistry& metrics();

}  // namespace skt::telemetry
