// Per-rank liveness board: heartbeats in, suspicion scores out.
//
// Every rank thread publishes a heartbeat whenever it passes a failpoint
// (Comm::failpoint calls heartbeat() — one steady-clock read plus a few
// relaxed atomics, and nothing at all while the board is disabled). The
// board keeps, per world rank, the time of the last beat and an EWMA of
// the inter-beat interval, so any observer can ask "how overdue is rank
// r?" without talking to the rank.
//
// Suspicion is phi-accrual style (Hayashibara et al.): assuming
// exponentially distributed inter-beat gaps with the observed mean m, the
// probability that a silent rank is still alive after `elapsed` seconds is
// exp(-elapsed/m), and
//
//   phi(rank) = -log10 P(still alive) = elapsed / (m * ln 10)
//
// phi ~ 1 means "would be this late 10% of the time", phi ~ 3 "0.1%".
// The launcher's detect phase polls the board until the dead node's ranks
// cross the configured threshold — turning failure-detection latency from
// an implicit constant into a measured quantity — and the live aggregator
// uses the same scores to flag stalled-but-alive ranks.
//
// Death bookkeeping: the cluster's power-off observer stamps the real
// power-off instant per node (note_death), so detection latency can be
// measured as (suspicion crossed) - (node actually died).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace skt::telemetry {

/// One rank's liveness as seen by the board at a sample instant.
struct RankHealth {
  int rank = -1;
  std::uint64_t beats = 0;        ///< heartbeats observed so far
  double last_beat_us = 0.0;      ///< trace-clock time of the newest beat
  double mean_interval_us = 0.0;  ///< EWMA of inter-beat gaps
  double phi = 0.0;               ///< suspicion score at the sample instant
};

class HealthBoard {
 public:
  /// Suspicion level the launcher and watchdogs treat as "failed" unless
  /// configured otherwise: the rank is ~99.9% overdue.
  static constexpr double kDefaultPhiThreshold = 3.0;

  static HealthBoard& instance();

  /// Master switch. While off, heartbeat() is one relaxed load + branch.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  /// Record a beat for `rank` (world rank, >= 0) at the trace clock's now.
  void heartbeat(int rank);

  /// Stamp the real power-off instant of `node_id` (cluster observer).
  void note_death(int node_id);
  [[nodiscard]] std::optional<double> death_time_us(int node_id) const;

  /// Suspicion score for `rank` at trace time `now_us`. Ranks that never
  /// beat score +infinity (nothing to be overdue against — immediately
  /// suspect); ranks that beat exactly once use the floor interval.
  [[nodiscard]] double phi(int rank, double now_us) const;

  [[nodiscard]] RankHealth sample(int rank, double now_us) const;

  /// Health of every rank that ever beat, ascending by rank.
  [[nodiscard]] std::vector<RankHealth> snapshot(double now_us) const;

  [[nodiscard]] std::uint64_t total_beats() const;

  /// Smallest mean interval used in phi (guards division by ~0 for ranks
  /// observed only once or beating faster than the clock resolves).
  [[nodiscard]] double floor_interval_us() const { return floor_interval_us_; }
  void set_floor_interval_us(double us) { floor_interval_us_ = us; }

  /// Drop all beats and death stamps (test isolation / job boundaries).
  void reset();

 private:
  HealthBoard();
  struct Impl;
  Impl* impl_;
  double floor_interval_us_ = 10.0;
};

/// The process-wide board.
HealthBoard& health();

}  // namespace skt::telemetry
