// Failure forensics: a flight recorder for the facts a postmortem needs.
//
// The paper's Fig. 10 restart cycle treats diagnosis as out of scope; at
// production scale "which rank died, holding which epoch, and who rebuilt
// what from whom" is the first question an operator asks. This module
// collects exactly that, with two halves:
//
//  * Rank threads (via ckpt::Session and the async engine) leave NOTES as
//    they go: the encoding-group geometry at open(), every commit's epoch
//    and dirty footprint, every restore's epoch and rebuilt-member flag.
//    Notes are plain data — the recorder never reaches back into protocol
//    objects, so it can be read safely after the rank threads are gone.
//
//  * The launcher, when an attempt aborts, opens an INCIDENT: it snapshots
//    the notes (lost ranks/nodes, newest committed epoch anywhere), times
//    the Fig. 10 phases (detect / replace / restart) into the incident's
//    timeline, and after the relaunch attaches the restore notes the
//    surviving job produced (restored epoch, rebuilt stripe set, peers).
//    The finished Postmortem serializes to POSTMORTEM_<name>.json.
//
// Recording is always on (a mutex-guarded map update per commit — commits
// are seconds apart) so every launcher-driven run, tests included, yields
// a postmortem for every kill without opting in. JobLauncher::run() calls
// begin_job() to drop the previous job's notes; the postmortem history
// itself is append-only until clear().
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace skt::telemetry {

/// Encoding-group geometry of one rank's session, captured at open().
struct GroupGeometry {
  std::string strategy;        ///< ckpt::to_string of the strategy
  int group_index = -1;        ///< group ordinal when derivable, else -1
  int group_size = 0;
  /// Concurrent losses the group's erasure code tolerates (m of RS(k, m);
  /// 1 for the paper's single-parity layout, 0 for uncoded strategies).
  int parity_count = 0;
  std::vector<int> members;    ///< world ranks, group order
  std::vector<int> nodes;      ///< node id per member
  std::size_t data_bytes = 0;  ///< protected image per member
  std::size_t stripe_bytes = 0;
  std::size_t stripe_count = 0;  ///< stripes per member (dirty tracker's view)
};

/// One member rebuilt during a restore: the stripes it recovered and the
/// surviving peers they were decoded from.
struct RebuildInfo {
  int rank = -1;                ///< world rank of the rebuilt member
  std::uint64_t epoch = 0;      ///< epoch restored to
  double rebuild_s = 0.0;
  std::size_t stripe_begin = 0;  ///< member-local stripe range rebuilt
  std::size_t stripe_count = 0;
  std::size_t stripe_bytes = 0;
  std::vector<int> peers;       ///< surviving world ranks the data came from
  /// World ranks rebuilt in the SAME restore (this one included) — the
  /// concurrently lost set a wide-stripe RS(k, m) decode recovered at once.
  std::vector<int> concurrent_lost;
};

/// One Fig. 10 phase of the recovery cycle.
struct PhaseTiming {
  std::string phase;  ///< "detect" | "replace" | "restart" | "restore"
  double seconds = 0.0;
};

struct Postmortem {
  std::string name;       ///< job name; file is POSTMORTEM_<name>[_k].json
  int incident = 0;       ///< ordinal within the job (0 = first failure)
  int attempt = 0;        ///< launcher attempt that aborted
  std::string reason;     ///< abort reason string
  std::vector<int> lost_ranks;  ///< world ranks whose nodes died
  std::vector<int> lost_nodes;  ///< the node ids, matching lost_ranks
  /// Newest epoch any rank had committed when the job aborted: the epoch
  /// whose successor (if a commit was in flight) is the work at risk.
  std::uint64_t lost_epoch = 0;
  std::map<int, std::uint64_t> committed_epochs;  ///< per-rank, at abort
  bool recovered = false;        ///< a later attempt restored successfully
  std::uint64_t restored_epoch = 0;  ///< epoch the job resumed from
  GroupGeometry geometry;        ///< the (first) lost rank's group
  std::vector<RebuildInfo> rebuilds;
  std::vector<PhaseTiming> timeline;  ///< Fig. 10 phases, in order
  double detect_latency_s = -1.0;  ///< measured via HealthBoard; -1 = unmeasured
  double detect_phi = 0.0;         ///< suspicion score at detection
  std::size_t last_dirty_bytes = 0;      ///< of the newest commit anywhere
  double last_dirty_fraction = 1.0;
  std::uint64_t trace_spans = 0;    ///< spans surviving in the rank rings
  std::uint64_t trace_dropped = 0;  ///< spans lost to ring wrap-around
  /// Background scrubber activity up to the incident (scrub.* counters):
  /// silent-corruption events the job survived before/while it failed.
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_corruption_detected = 0;
  std::uint64_t scrub_repaired = 0;
  std::uint64_t scrub_unrepaired = 0;

  /// The whole record as one JSON document.
  [[nodiscard]] std::string json() const;

  /// json() to `path`; false (with a stderr warning) on I/O error.
  bool write(const std::string& path) const;
};

namespace forensics {

/// Per-rank note content; see Recorder.
struct CommitNote {
  std::uint64_t epoch = 0;
  std::size_t dirty_bytes = 0;
  double dirty_fraction = 1.0;
};

struct RestoreNote {
  int rank = -1;
  std::uint64_t epoch = 0;
  bool rebuilt_member = false;
  double rebuild_s = 0.0;
};

class Recorder {
 public:
  static Recorder& instance();

  /// Forget the previous job's notes (geometry, commits, restores). The
  /// launcher calls this once per run(); postmortem history survives.
  void begin_job();

  // --- notes from rank threads ------------------------------------------
  void note_geometry(int world_rank, GroupGeometry geometry);
  void note_commit(int world_rank, const CommitNote& note);
  void note_restore(const RestoreNote& note);

  // --- queries the launcher assembles postmortems from ------------------
  [[nodiscard]] std::optional<GroupGeometry> geometry_of(int world_rank) const;
  [[nodiscard]] std::optional<CommitNote> last_commit(int world_rank) const;
  [[nodiscard]] std::map<int, std::uint64_t> committed_epochs() const;
  /// Monotone count of restore notes; pass a previous value to
  /// restores_since() to read only the notes a relaunch produced.
  [[nodiscard]] std::uint64_t restore_marker() const;
  [[nodiscard]] std::vector<RestoreNote> restores_since(std::uint64_t marker) const;

  // --- postmortem history -----------------------------------------------
  void add_postmortem(Postmortem pm);
  [[nodiscard]] std::vector<Postmortem> postmortems() const;
  void clear();  ///< history AND notes (test isolation)

 private:
  Recorder();
  struct Impl;
  Impl* impl_;
};

/// The process-wide recorder.
Recorder& recorder();

}  // namespace forensics
}  // namespace skt::telemetry
