#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "telemetry/metrics.hpp"
#include "util/json_writer.hpp"
#include "util/log.hpp"

namespace skt::telemetry {
namespace {

thread_local int t_rank = -1;
thread_local std::uint64_t t_epoch = 0;
thread_local std::uint16_t t_depth = 0;
// Names of the open spans on this thread, innermost last; parent attribution
// only, so raw pointers to the string literals are enough.
thread_local const char* t_stack[64] = {};

void copy_name(char (&dst)[SpanRecord::kNameBytes], std::string_view src) {
  const std::size_t n = std::min(src.size(), sizeof(dst) - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// Fixed-capacity overwrite-on-wrap buffer for one rank row. Rank threads of
/// successive launcher attempts reuse the same row, and the Tracer keeps the
/// ring after the thread dies, so spans recorded before a node kill survive.
class SpanRing {
 public:
  void push(const SpanRecord& rec) {
    std::lock_guard<std::mutex> lock(mutex_);
    records_[next_ % Tracer::kRingCapacity] = rec;
    ++next_;
  }

  void append_to(std::vector<SpanRecord>& out) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t held = std::min<std::uint64_t>(next_, Tracer::kRingCapacity);
    const std::uint64_t first = next_ - held;
    for (std::uint64_t i = first; i < next_; ++i) {
      out.push_back(records_[i % Tracer::kRingCapacity]);
    }
  }

  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_ > Tracer::kRingCapacity ? next_ - Tracer::kRingCapacity : 0;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    next_ = 0;
  }

 private:
  mutable std::mutex mutex_;
  std::uint64_t next_ = 0;
  std::vector<SpanRecord> records_{Tracer::kRingCapacity};
};

}  // namespace

struct Tracer::Impl {
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  mutable std::mutex registry_mutex;
  // Keyed by rank (-1 = shared non-rank row). Attempts run sequentially, so
  // reusing one ring per rank bounds memory across restarts.
  std::map<int, std::unique_ptr<SpanRing>> rings;

  SpanRing& ring_for(int rank) {
    std::lock_guard<std::mutex> lock(registry_mutex);
    auto& slot = rings[rank];
    if (!slot) slot = std::make_unique<SpanRing>();
    return *slot;
  }
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   impl_->start)
      .count();
}

void Tracer::push(const SpanRecord& rec) { impl_->ring_for(rec.rank).push(rec); }

std::vector<SpanRecord> Tracer::collect() const {
  std::vector<const SpanRing*> rings;
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mutex);
    rings.reserve(impl_->rings.size());
    for (const auto& [rank, ring] : impl_->rings) rings.push_back(ring.get());
  }
  std::vector<SpanRecord> out;
  for (const SpanRing* ring : rings) ring->append_to(out);
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) { return a.t0_us < b.t0_us; });
  return out;
}

std::map<int, std::uint64_t> Tracer::dropped_by_rank() const {
  std::vector<std::pair<int, const SpanRing*>> rings;
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mutex);
    for (const auto& [rank, ring] : impl_->rings) rings.emplace_back(rank, ring.get());
  }
  std::map<int, std::uint64_t> out;
  for (const auto& [rank, ring] : rings) {
    const std::uint64_t d = ring->dropped();
    if (d > 0) out[rank] = d;
  }
  return out;
}

std::uint64_t Tracer::total_dropped() const {
  std::vector<const SpanRing*> rings;
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mutex);
    for (const auto& [rank, ring] : impl_->rings) rings.push_back(ring.get());
  }
  std::uint64_t dropped = 0;
  for (const SpanRing* ring : rings) dropped += ring->dropped();
  return dropped;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  for (const auto& [rank, ring] : impl_->rings) ring->clear();
}

namespace {

/// Async checkpoint workers get rows of their own: worker of rank r is
/// registered under kWorkerRowBase + r (see set_thread_async_worker).
constexpr int kWorkerRowBase = 1'000'000;

/// Trace rows: rank r maps to tid r, the shared non-rank row to a high tid so
/// it sorts below the ranks in the viewer; worker rows sort below that.
int row_tid(int rank) { return rank >= 0 ? rank : 999; }

/// Event category from the dotted name prefix ("ckpt.encode" -> "ckpt").
std::string_view category_of(std::string_view name) {
  const std::size_t dot = name.find('.');
  if (dot != std::string_view::npos) return name.substr(0, dot);
  const std::size_t colon = name.find(':');
  if (colon != std::string_view::npos) return name.substr(0, colon);
  return name;
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanRecord> records = collect();

  util::JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  std::vector<int> rows;
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mutex);
    for (const auto& [rank, ring] : impl_->rings) rows.push_back(rank);
  }
  for (const int rank : rows) {
    w.begin_object();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", static_cast<std::int64_t>(0));
    w.field("tid", static_cast<std::int64_t>(row_tid(rank)));
    w.key("args");
    w.begin_object();
    if (rank >= kWorkerRowBase) {
      w.field("name", "ckpt-worker " + std::to_string(rank - kWorkerRowBase));
    } else if (rank >= 0) {
      w.field("name", "rank " + std::to_string(rank));
    } else {
      w.field("name", "launcher");
    }
    w.end_object();
    w.end_object();
  }

  for (const SpanRecord& rec : records) {
    w.begin_object();
    w.field("name", rec.name);
    w.field("cat", category_of(rec.name));
    w.field("ph", rec.instant() ? "i" : "X");
    w.field("ts", rec.t0_us);
    if (rec.instant()) {
      w.field("s", "t");  // thread-scoped instant
    } else {
      w.field("dur", rec.dur_us);
    }
    w.field("pid", static_cast<std::int64_t>(0));
    w.field("tid", static_cast<std::int64_t>(row_tid(rec.rank)));
    w.key("args");
    w.begin_object();
    w.field("epoch", static_cast<std::uint64_t>(rec.epoch));
    if (rec.parent[0] != '\0') w.field("parent", rec.parent);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

bool Tracer::export_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    SKT_LOG_WARN("telemetry: cannot write trace file {}", path);
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) SKT_LOG_WARN("telemetry: short write on trace file {}", path);
  return ok;
}

void set_thread_rank(int rank) { t_rank = rank; }

void set_thread_async_worker(int rank) {
  t_rank = rank >= 0 ? kWorkerRowBase + rank : -1;
}

void set_epoch(std::uint64_t epoch) { t_epoch = epoch; }

Span::Span(const char* name) : name_(name), t0_us_(-1.0) {
  if (!enabled()) return;
  t0_us_ = Tracer::instance().now_us();
  if (t_depth < std::size(t_stack)) t_stack[t_depth] = name_;
  ++t_depth;
}

Span::~Span() {
  if (t0_us_ < 0.0) return;
  if (t_depth > 0) --t_depth;
  SpanRecord rec;
  copy_name(rec.name, name_);
  // After the pop, t_stack[t_depth] is this span; the slot below is its parent.
  if (t_depth > 0 && t_depth <= std::size(t_stack)) {
    copy_name(rec.parent, t_stack[t_depth - 1]);
  }
  rec.t0_us = t0_us_;
  rec.dur_us = std::max(0.0, Tracer::instance().now_us() - t0_us_);
  rec.rank = t_rank;
  rec.epoch = t_epoch;
  rec.depth = t_depth;
  Tracer::instance().push(rec);
}

void instant(std::string_view name) {
  if (!enabled()) return;
  SpanRecord rec;
  copy_name(rec.name, name);
  if (t_depth > 0 && t_depth <= std::size(t_stack)) {
    copy_name(rec.parent, t_stack[t_depth - 1]);
  }
  rec.t0_us = Tracer::instance().now_us();
  rec.dur_us = -1.0;
  rec.rank = t_rank;
  rec.epoch = t_epoch;
  rec.depth = t_depth;
  Tracer::instance().push(rec);
}

}  // namespace skt::telemetry
