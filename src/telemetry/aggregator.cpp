#include "telemetry/aggregator.hpp"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "telemetry/health.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/json_writer.hpp"
#include "util/log.hpp"

namespace skt::telemetry {
namespace {

/// EWMA weight of the newest rate sample. Heavier than the health board's:
/// the feed should feel live, not over-damped.
constexpr double kRateAlpha = 0.3;

double blend(double prev, double sample, bool first) {
  return first ? sample : prev + kRateAlpha * (sample - prev);
}

std::uint64_t counter_value(const MetricsSnapshot& snap, const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

}  // namespace

struct Aggregator::Impl {
  AggregatorConfig config;
  std::FILE* feed = nullptr;

  std::thread thread;
  std::mutex wake_mutex;
  std::condition_variable wake;
  bool running = false;
  bool stop_requested = false;

  mutable std::mutex mutex;  // guards everything below
  std::uint64_t tick_count = 0;
  double prev_t_us = 0.0;
  std::uint64_t prev_commits = 0;
  std::uint64_t prev_wire_bytes = 0;
  std::uint64_t prev_failures = 0;
  bool rates_seeded = false;  // first dt>0 tick seeds the EWMAs directly
  MonitorSample last;
  std::vector<Anomaly> anomalies;
  std::set<int> stalled_ranks;  // edge-trigger state for the stall watchdog
  bool regression_latched = false;

  void run_loop() {
    std::unique_lock<std::mutex> lock(wake_mutex);
    while (!stop_requested) {
      const auto period = std::chrono::duration<double>(config.interval_s);
      wake.wait_for(lock, period, [this] { return stop_requested; });
      if (stop_requested) break;
      lock.unlock();
      do_tick();
      lock.lock();
    }
  }

  void do_tick() {
    const double now_us = Tracer::instance().now_us();
    const MetricsSnapshot snap = metrics().snapshot();

    const std::uint64_t commits = counter_value(snap, "ckpt.commits");
    const std::uint64_t wire_bytes = counter_value(snap, "mpi.wire_bytes");
    const std::uint64_t failures = counter_value(snap, "launcher.failures");

    double commit_p99 = 0.0;
    if (const auto it = snap.histograms.find("ckpt.commit_s");
        it != snap.histograms.end()) {
      commit_p99 = it->second.quantiles.p99;
    }
    double dirty_fraction = 0.0;
    if (const auto it = snap.histograms.find("ckpt.dirty_fraction");
        it != snap.histograms.end() && it->second.count > 0) {
      dirty_fraction = it->second.quantiles.p50;
    }

    std::vector<RankHealth> ranks;
    if (health().enabled()) ranks = health().snapshot(now_us);
    double max_phi = 0.0;
    for (const RankHealth& rh : ranks) {
      if (std::isfinite(rh.phi)) max_phi = std::max(max_phi, rh.phi);
    }

    std::vector<Anomaly> fired;
    MonitorSample sample;
    {
      std::lock_guard<std::mutex> lock(mutex);
      const bool first = tick_count == 0;
      const double dt_s = first ? 0.0 : (now_us - prev_t_us) * 1e-6;

      sample.tick = ++tick_count;
      sample.t_us = now_us;
      sample.commit_p99_s = commit_p99;
      sample.dirty_fraction = dirty_fraction;
      sample.max_phi = max_phi;
      if (dt_s > 0.0) {
        const bool seed = !rates_seeded;
        rates_seeded = true;
        sample.commit_hz = blend(
            last.commit_hz, static_cast<double>(commits - prev_commits) / dt_s, seed);
        sample.wire_bps = blend(
            last.wire_bps, static_cast<double>(wire_bytes - prev_wire_bytes) / dt_s,
            seed);
        sample.failure_hz = blend(
            last.failure_hz, static_cast<double>(failures - prev_failures) / dt_s, seed);
      } else {
        sample.commit_hz = last.commit_hz;
        sample.wire_bps = last.wire_bps;
        sample.failure_hz = last.failure_hz;
      }
      prev_t_us = now_us;
      prev_commits = commits;
      prev_wire_bytes = wire_bytes;
      prev_failures = failures;

      // Stall watchdog: edge-triggered so a dead-and-detected rank yields
      // one anomaly, not one per tick.
      if (config.stall_phi > 0.0) {
        std::set<int> now_stalled;
        for (const RankHealth& rh : ranks) {
          if (!std::isfinite(rh.phi) || rh.phi < config.stall_phi) continue;
          now_stalled.insert(rh.rank);
          if (stalled_ranks.count(rh.rank) != 0) continue;
          Anomaly a;
          a.kind = "stalled_rank";
          a.rank = rh.rank;
          a.t_us = now_us;
          std::ostringstream os;
          os << "rank " << rh.rank << " silent for phi=" << rh.phi << " (threshold "
             << config.stall_phi << ")";
          a.detail = os.str();
          fired.push_back(a);
        }
        stalled_ranks.swap(now_stalled);
      }

      if (config.commit_p99_baseline_s > 0.0 && !regression_latched &&
          commit_p99 > config.commit_p99_baseline_s * config.regression_factor) {
        regression_latched = true;
        Anomaly a;
        a.kind = "commit_p99_regression";
        a.t_us = now_us;
        std::ostringstream os;
        os << "ckpt.commit_s p99=" << commit_p99 << "s exceeds baseline "
           << config.commit_p99_baseline_s << "s x" << config.regression_factor;
        a.detail = os.str();
        fired.push_back(a);
      }

      for (const Anomaly& a : fired) anomalies.push_back(a);
      last = sample;
    }

    publish(sample, fired);
    if (feed != nullptr) write_feed_line(sample, fired);
  }

  /// Mirror the derived rates into the registry so RunReports capture them.
  static void publish(const MonitorSample& s, const std::vector<Anomaly>& fired) {
    MetricsRegistry& reg = metrics();
    reg.gauge("monitor.commit_hz").set(s.commit_hz);
    reg.gauge("monitor.wire_bytes_per_s").set(s.wire_bps);
    reg.gauge("monitor.failure_hz").set(s.failure_hz);
    reg.gauge("monitor.dirty_fraction").set(s.dirty_fraction);
    reg.gauge("monitor.commit_p99_s").set(s.commit_p99_s);
    reg.gauge("monitor.max_phi").set(s.max_phi);
    reg.counter("monitor.ticks").increment();
    if (!fired.empty()) reg.counter("monitor.anomalies").add(fired.size());
  }

  // The JsonWriter pretty-prints; the feed needs one object per line, so
  // format compactly by hand (json_escape covers the only strings).
  void write_feed_line(const MonitorSample& s, const std::vector<Anomaly>& fired) {
    std::ostringstream os;
    os << "{\"tick\":" << s.tick << ",\"t_us\":" << s.t_us
       << ",\"commit_hz\":" << s.commit_hz << ",\"wire_bytes_per_s\":" << s.wire_bps
       << ",\"failure_hz\":" << s.failure_hz
       << ",\"dirty_fraction\":" << s.dirty_fraction
       << ",\"commit_p99_s\":" << s.commit_p99_s << ",\"max_phi\":" << s.max_phi
       << ",\"anomalies\":[";
    for (std::size_t i = 0; i < fired.size(); ++i) {
      if (i > 0) os << ',';
      os << "{\"kind\":\"" << util::json_escape(fired[i].kind)
         << "\",\"rank\":" << fired[i].rank << ",\"detail\":\""
         << util::json_escape(fired[i].detail) << "\"}";
    }
    os << "]}\n";
    const std::string line = os.str();
    std::fwrite(line.data(), 1, line.size(), feed);
    std::fflush(feed);  // tail -f friendliness
  }
};

Aggregator::Aggregator(AggregatorConfig config) : impl_(new Impl) {
  impl_->config = std::move(config);
  if (!impl_->config.feed_path.empty()) {
    impl_->feed = std::fopen(impl_->config.feed_path.c_str(), "w");
    if (impl_->feed == nullptr) {
      SKT_LOG_WARN("monitor: cannot open feed {}", impl_->config.feed_path);
    }
  }
}

Aggregator::~Aggregator() {
  stop();
  if (impl_->feed != nullptr) std::fclose(impl_->feed);
  delete impl_;
}

void Aggregator::start() {
  if (impl_->running) return;
  impl_->running = true;
  impl_->stop_requested = false;
  impl_->thread = std::thread([this] { impl_->run_loop(); });
}

void Aggregator::stop() {
  if (impl_->running) {
    {
      std::lock_guard<std::mutex> lock(impl_->wake_mutex);
      impl_->stop_requested = true;
    }
    impl_->wake.notify_all();
    impl_->thread.join();
    impl_->running = false;
    impl_->do_tick();  // drain the final partial interval
  }
}

void Aggregator::tick() { impl_->do_tick(); }

std::uint64_t Aggregator::ticks() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->tick_count;
}

MonitorSample Aggregator::last_sample() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->last;
}

std::vector<Anomaly> Aggregator::anomalies() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->anomalies;
}

}  // namespace skt::telemetry
