#include "telemetry/health.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/trace.hpp"

namespace skt::telemetry {
namespace {

constexpr double kLn10 = 2.302585092994046;

/// EWMA weight of the newest inter-beat gap. Light smoothing: the score
/// should follow cadence changes (per-iteration beats vs. per-commit
/// beats) within a handful of beats.
constexpr double kEwmaAlpha = 0.125;

struct Slot {
  std::atomic<std::uint64_t> beats{0};
  std::atomic<double> last_us{0.0};
  std::atomic<double> ewma_us{0.0};
};

}  // namespace

struct HealthBoard::Impl {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> total_beats{0};
  mutable std::mutex mutex;  // guards slot creation and the death map
  std::map<int, std::unique_ptr<Slot>> slots;
  std::map<int, double> deaths_us;

  Slot& slot_for(int rank) {
    std::lock_guard<std::mutex> lock(mutex);
    auto& s = slots[rank];
    if (!s) s = std::make_unique<Slot>();
    return *s;
  }

  const Slot* find(int rank) const {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = slots.find(rank);
    return it == slots.end() ? nullptr : it->second.get();
  }
};

HealthBoard::HealthBoard() : impl_(new Impl) {}

HealthBoard& HealthBoard::instance() {
  static HealthBoard board;
  return board;
}

HealthBoard& health() { return HealthBoard::instance(); }

void HealthBoard::set_enabled(bool on) { impl_->enabled.store(on, std::memory_order_relaxed); }

bool HealthBoard::enabled() const { return impl_->enabled.load(std::memory_order_relaxed); }

void HealthBoard::heartbeat(int rank) {
  if (!enabled() || rank < 0) return;
  const double now = Tracer::instance().now_us();
  Slot& slot = impl_->slot_for(rank);
  const std::uint64_t n = slot.beats.fetch_add(1, std::memory_order_relaxed);
  const double last = slot.last_us.load(std::memory_order_relaxed);
  slot.last_us.store(now, std::memory_order_relaxed);
  if (n > 0) {
    // Load/blend/store instead of a CAS loop: the rank thread and (rarely)
    // its async worker may race here, and losing one blend is fine — the
    // EWMA is a statistic, not an invariant.
    const double gap = now - last;
    const double prev = slot.ewma_us.load(std::memory_order_relaxed);
    const double next = prev == 0.0 ? gap : prev + kEwmaAlpha * (gap - prev);
    slot.ewma_us.store(next, std::memory_order_relaxed);
  }
  impl_->total_beats.fetch_add(1, std::memory_order_relaxed);
}

void HealthBoard::note_death(int node_id) {
  const double now = Tracer::instance().now_us();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  // Keep the FIRST stamp: power_off is idempotent but the observer may be
  // told twice, and detection latency is measured from the original death.
  impl_->deaths_us.emplace(node_id, now);
}

std::optional<double> HealthBoard::death_time_us(int node_id) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->deaths_us.find(node_id);
  if (it == impl_->deaths_us.end()) return std::nullopt;
  return it->second;
}

double HealthBoard::phi(int rank, double now_us) const {
  const Slot* slot = impl_->find(rank);
  if (slot == nullptr || slot->beats.load(std::memory_order_relaxed) == 0) {
    return std::numeric_limits<double>::infinity();
  }
  const double last = slot->last_us.load(std::memory_order_relaxed);
  const double mean =
      std::max(slot->ewma_us.load(std::memory_order_relaxed), floor_interval_us_);
  const double elapsed = std::max(0.0, now_us - last);
  return elapsed / (mean * kLn10);
}

RankHealth HealthBoard::sample(int rank, double now_us) const {
  RankHealth h;
  h.rank = rank;
  if (const Slot* slot = impl_->find(rank)) {
    h.beats = slot->beats.load(std::memory_order_relaxed);
    h.last_beat_us = slot->last_us.load(std::memory_order_relaxed);
    h.mean_interval_us = slot->ewma_us.load(std::memory_order_relaxed);
  }
  h.phi = phi(rank, now_us);
  return h;
}

std::vector<RankHealth> HealthBoard::snapshot(double now_us) const {
  std::vector<int> ranks;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    ranks.reserve(impl_->slots.size());
    for (const auto& [rank, slot] : impl_->slots) ranks.push_back(rank);
  }
  std::vector<RankHealth> out;
  out.reserve(ranks.size());
  for (const int r : ranks) out.push_back(sample(r, now_us));
  return out;
}

std::uint64_t HealthBoard::total_beats() const {
  return impl_->total_beats.load(std::memory_order_relaxed);
}

void HealthBoard::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->slots.clear();
  impl_->deaths_us.clear();
  impl_->total_beats.store(0, std::memory_order_relaxed);
}

}  // namespace skt::telemetry
