#include "util/crc32c.hpp"

#include <array>

namespace skt::util {
namespace {

/// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> bytes, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (const std::byte b : bytes) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu];
  }
  return ~crc;
}

}  // namespace skt::util
