// Streaming JSON writer with correct string escaping and nested
// objects/arrays — the promoted replacement for the flat bench/json_report
// emitter. Output is pretty-printed (2-space indent) so BENCH_*.json and
// telemetry reports stay diffable in review.
//
//   JsonWriter w;
//   w.begin_object();
//   w.field("name", "micro_encoding");
//   w.key("histograms");
//   w.begin_object();
//   ...
//   w.end_object();
//   w.end_object();
//   write_json_file("BENCH_micro_encoding.json", w);
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace skt::util {

/// Escape the characters JSON strings cannot hold verbatim (quote,
/// backslash, control bytes) per RFC 8259.
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key for the next value inside an object. Must be followed by a value
  /// or a begin_object/begin_array.
  void key(std::string_view name);

  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(bool v);
  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }

  /// key() + value() in one call.
  template <typename T>
  void field(std::string_view name, T v) {
    key(name);
    value(v);
  }

  /// The serialized document. Valid once every container is closed.
  [[nodiscard]] const std::string& str() const;

  [[nodiscard]] bool complete() const { return depth_ == 0 && !out_.empty(); }

 private:
  void begin_value();
  void indent();

  std::string out_;
  int depth_ = 0;
  bool need_comma_ = false;
  bool after_key_ = false;
};

/// Write a completed document to `path`; returns false (and logs a warning
/// to stderr) on I/O failure so callers can keep going.
bool write_json_file(const std::string& path, std::string_view doc);
bool write_json_file(const std::string& path, const JsonWriter& w);

/// Directory every generated report (BENCH_*.json, RunReports) lands in:
/// $SKT_REPORT_DIR when set, else "out" under the current directory.
/// Created on first use.
std::string report_dir();

/// report_dir() + "/" + filename — the canonical destination for a
/// generated artifact. Benches pass a bare filename here instead of
/// scattering outputs across the build tree and repo root.
std::string report_path(const std::string& filename);

}  // namespace skt::util
