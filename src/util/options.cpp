#include "util/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace skt::util {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Options::has(const std::string& key) const { return values_.contains(key); }

std::string Options::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace skt::util
