#include "util/clock.hpp"

// Header-only today; this TU pins the library's symbols and keeps the
// build target non-empty for tooling that dislikes header-only libs.
namespace skt::util {
static_assert(sizeof(VirtualClock) >= sizeof(std::int64_t));
}  // namespace skt::util
