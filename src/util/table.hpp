// Fixed-width console table printer used by the bench harnesses to emit
// the paper's tables/series in a readable, diffable form.
#pragma once

#include <string>
#include <vector>

namespace skt::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; missing trailing cells render empty, extras throw.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Convenience: render straight to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a byte count with binary units ("1.50 GiB").
std::string format_bytes(std::size_t bytes);

/// Format seconds adaptively ("312 ms", "4.21 s").
std::string format_seconds(double seconds);

}  // namespace skt::util
