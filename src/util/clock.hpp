// Wall-clock timing plus a virtual clock used to charge simulated device
// latencies (disk/SSD checkpoint flushes) to a job's reported runtime
// without actually sleeping.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace skt::util {

/// Simple RAII-free stopwatch over std::chrono::steady_clock.
class WallTimer {
 public:
  WallTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  static Clock::time_point now() { return Clock::now(); }
  Clock::time_point start_;
};

/// Accumulates simulated time (nanoseconds) contributed by modelled devices.
/// Thread-safe: ranks charge delays concurrently; a job-level reduction
/// decides how much of the charge is on the critical path (typically the
/// max across ranks at a collective checkpoint, added once by rank 0).
class VirtualClock {
 public:
  void charge_seconds(double s) {
    charge_nanos(static_cast<std::int64_t>(s * 1e9));
  }
  void charge_nanos(std::int64_t ns) { nanos_.fetch_add(ns, std::memory_order_relaxed); }

  [[nodiscard]] double seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }

  void reset() { nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> nanos_{0};
};

}  // namespace skt::util
