#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace skt::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_io_mutex;

thread_local int t_rank = -1;
thread_local int t_size = 0;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

bool set_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") set_log_level(LogLevel::kTrace);
  else if (lower == "debug") set_log_level(LogLevel::kDebug);
  else if (lower == "info") set_log_level(LogLevel::kInfo);
  else if (lower == "warn") set_log_level(LogLevel::kWarn);
  else if (lower == "error") set_log_level(LogLevel::kError);
  else if (lower == "off") set_log_level(LogLevel::kOff);
  else return false;
  return true;
}

void set_thread_context(int rank, int size) {
  t_rank = rank;
  t_size = size;
}

void log_line(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - process_start()).count();
  std::lock_guard<std::mutex> lock(g_io_mutex);
  if (t_rank >= 0) {
    std::fprintf(stderr, "[%8.3fs] [%s] [rank %d/%d] %.*s\n", elapsed, level_tag(level), t_rank,
                 t_size, static_cast<int>(msg.size()), msg.data());
  } else {
    std::fprintf(stderr, "[%8.3fs] [%s] %.*s\n", elapsed, level_tag(level),
                 static_cast<int>(msg.size()), msg.data());
  }
}

}  // namespace skt::util
