#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include "util/json_writer.hpp"

namespace skt::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_io_mutex;

thread_local int t_rank = -1;
thread_local int t_size = 0;
thread_local std::string t_label;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

/// Wall-clock "HH:MM:SS.mmm" (local time) for the human sink.
void format_wall_clock(char* buf, std::size_t len, double* unix_seconds) {
  const auto now = std::chrono::system_clock::now();
  const auto since_epoch = now.time_since_epoch();
  const auto secs = std::chrono::duration_cast<std::chrono::seconds>(since_epoch);
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(since_epoch - secs).count();
  if (unix_seconds != nullptr) {
    *unix_seconds = static_cast<double>(secs.count()) + static_cast<double>(ms) * 1e-3;
  }
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm{};
  localtime_r(&tt, &tm);
  std::snprintf(buf, len, "%02d:%02d:%02d.%03d", tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(ms));
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

bool set_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") set_log_level(LogLevel::kTrace);
  else if (lower == "debug") set_log_level(LogLevel::kDebug);
  else if (lower == "info") set_log_level(LogLevel::kInfo);
  else if (lower == "warn") set_log_level(LogLevel::kWarn);
  else if (lower == "error") set_log_level(LogLevel::kError);
  else if (lower == "off") set_log_level(LogLevel::kOff);
  else return false;
  return true;
}

void set_thread_context(int rank, int size) {
  t_rank = rank;
  t_size = size;
}

void set_thread_label(std::string_view label) { t_label.assign(label); }

bool log_json_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("SKT_LOG_JSON");
    return v != nullptr && std::strcmp(v, "0") != 0 && *v != '\0';
  }();
  return enabled;
}

void log_line(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - process_start()).count();
  char wall[16];
  double unix_seconds = 0.0;
  format_wall_clock(wall, sizeof(wall), &unix_seconds);

  if (log_json_enabled()) {
    JsonWriter w;
    w.begin_object();
    w.field("ts", unix_seconds);
    w.field("elapsed_s", elapsed);
    w.field("level", level_name(level));
    if (t_rank >= 0) {
      w.field("rank", static_cast<std::int64_t>(t_rank));
      w.field("size", static_cast<std::int64_t>(t_size));
    } else if (!t_label.empty()) {
      w.field("label", t_label);
    }
    w.field("msg", msg);
    w.end_object();
    // Re-serialize compactly: JsonWriter pretty-prints; JSON-lines must be
    // one record per line, so strip the newlines it inserted.
    std::string line;
    line.reserve(w.str().size());
    bool skip_indent = false;
    for (const char c : w.str()) {
      if (c == '\n') {
        skip_indent = true;
        continue;
      }
      if (skip_indent && c == ' ') continue;
      skip_indent = false;
      line += c;
    }
    std::lock_guard<std::mutex> lock(g_io_mutex);
    std::fprintf(stderr, "%s\n", line.c_str());
    return;
  }

  std::lock_guard<std::mutex> lock(g_io_mutex);
  if (t_rank >= 0) {
    std::fprintf(stderr, "[%s] [%8.3fs] [%s] [rank %d/%d] %.*s\n", wall, elapsed,
                 level_tag(level), t_rank, t_size, static_cast<int>(msg.size()), msg.data());
  } else if (!t_label.empty()) {
    std::fprintf(stderr, "[%s] [%8.3fs] [%s] [%s] %.*s\n", wall, elapsed, level_tag(level),
                 t_label.c_str(), static_cast<int>(msg.size()), msg.data());
  } else {
    std::fprintf(stderr, "[%s] [%8.3fs] [%s] %.*s\n", wall, elapsed, level_tag(level),
                 static_cast<int>(msg.size()), msg.data());
  }
}

}  // namespace skt::util
