#include "util/format.hpp"

#include <cctype>
#include <cstring>

namespace skt::util::detail {

std::string render_arithmetic(double value, long long ivalue, bool is_integral,
                              std::string_view spec) {
  char buf[64];
  if (spec.empty()) {
    if (is_integral) {
      std::snprintf(buf, sizeof(buf), "%lld", ivalue);
    } else {
      std::snprintf(buf, sizeof(buf), "%g", value);
    }
    return buf;
  }
  // Validate spec: optional width/precision digits plus one conversion char.
  for (char c : spec) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '+' && c != '-' &&
        !std::strchr("fegdx%", c)) {
      throw std::invalid_argument("format: bad spec '" + std::string(spec) + "'");
    }
  }
  const char conv = spec.back();
  std::string body(spec.substr(0, spec.size() - 1));
  char fmt[32];
  switch (conv) {
    case 'f':
    case 'e':
    case 'g':
      std::snprintf(fmt, sizeof(fmt), "%%%s%c", body.c_str(), conv);
      std::snprintf(buf, sizeof(buf), fmt, is_integral ? static_cast<double>(ivalue) : value);
      return buf;
    case 'd':
      std::snprintf(fmt, sizeof(fmt), "%%%slld", body.c_str());
      std::snprintf(buf, sizeof(buf), fmt, is_integral ? ivalue : static_cast<long long>(value));
      return buf;
    case 'x':
      std::snprintf(fmt, sizeof(fmt), "%%%sllx", body.c_str());
      std::snprintf(buf, sizeof(buf), fmt, is_integral ? ivalue : static_cast<long long>(value));
      return buf;
    case '%': {
      // "{:.1%}" renders a ratio as a percentage.
      std::snprintf(fmt, sizeof(fmt), "%%%sf%%%%", body.empty() ? ".1" : body.c_str());
      std::snprintf(buf, sizeof(buf), fmt,
                    (is_integral ? static_cast<double>(ivalue) : value) * 100.0);
      return buf;
    }
    default:
      throw std::invalid_argument("format: bad conversion in spec");
  }
}

std::string vformat(std::string_view fmt, const std::vector<Renderer>& args) {
  std::string out;
  out.reserve(fmt.size() + args.size() * 8);
  std::size_t next_arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out.push_back('{');
        ++i;
        continue;
      }
      const std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) {
        throw std::invalid_argument("format: unmatched '{'");
      }
      std::string_view inner = fmt.substr(i + 1, close - i - 1);
      std::string_view spec;
      if (const auto colon = inner.find(':'); colon != std::string_view::npos) {
        spec = inner.substr(colon + 1);
        inner = inner.substr(0, colon);
      }
      if (!inner.empty()) throw std::invalid_argument("format: positional args unsupported");
      if (next_arg >= args.size()) throw std::invalid_argument("format: too few arguments");
      out += args[next_arg++](spec);
      i = close;
    } else if (c == '}') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '}') ++i;
      out.push_back('}');
    } else {
      out.push_back(c);
    }
  }
  if (next_arg != args.size()) throw std::invalid_argument("format: too many arguments");
  return out;
}

}  // namespace skt::util::detail
