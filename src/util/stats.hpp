// Small statistics helpers: summary stats and the least-squares fits used
// by the HPL efficiency model (Section 4 of the paper).
#pragma once

#include <cstddef>
#include <span>

namespace skt::util {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
};

/// Summary statistics of a sample; all-zero Summary for an empty span.
Summary summarize(std::span<const double> xs);

struct Quantiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Linear-interpolated quantile of an ascending-sorted sample; q in [0, 1].
/// Returns 0 for an empty span. Requires `sorted` to be sorted ascending.
double quantile(std::span<const double> sorted, double q);

/// p50/p90/p99 of an ascending-sorted sample (all-zero for an empty span).
Quantiles quantiles(std::span<const double> sorted);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination
};

/// Ordinary least squares y = slope * x + intercept.
/// Requires xs.size() == ys.size() and at least two points.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

}  // namespace skt::util
