// CRC32C (Castagnoli) — the checksum the scrubber uses to detect silent
// corruption in sealed checkpoint buffers. Table-driven, byte-at-a-time:
// the scrubber runs off the critical path at low priority, so portability
// beats peak throughput here (the SSE4.2 instruction would tie the build
// to x86 for a background thread that is idle 99% of the time).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace skt::util {

/// CRC32C of `bytes`, seeded with `seed` (pass a previous result to chain
/// chunks). The empty span returns the seed unchanged.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> bytes,
                                   std::uint32_t seed = 0);

}  // namespace skt::util
