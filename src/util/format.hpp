// Minimal std::format stand-in (libstdc++ 12 ships no <format>).
//
// Supports "{}" and "{:spec}" placeholders where spec is a printf-style
// conversion for arithmetic arguments: [width][.precision][f|e|g|d|x|%].
// "{{" and "}}" escape literal braces. Unmatched placeholders/arguments
// throw std::invalid_argument — format strings in this codebase are all
// compile-time literals, so a throw is a programming error surfaced early.
#pragma once

#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace skt::util {
namespace detail {

using Renderer = std::function<std::string(std::string_view spec)>;

std::string render_arithmetic(double value, long long ivalue, bool is_integral,
                              std::string_view spec);

template <typename T>
Renderer make_renderer(const T& value) {
  if constexpr (std::is_same_v<std::decay_t<T>, bool>) {
    return [v = value](std::string_view) -> std::string { return v ? "true" : "false"; };
  } else if constexpr (std::is_arithmetic_v<std::decay_t<T>>) {
    return [v = value](std::string_view spec) -> std::string {
      if constexpr (std::is_integral_v<std::decay_t<T>>) {
        return render_arithmetic(static_cast<double>(v), static_cast<long long>(v), true, spec);
      } else {
        return render_arithmetic(static_cast<double>(v), 0, false, spec);
      }
    };
  } else if constexpr (std::is_convertible_v<T, std::string_view>) {
    return [s = std::string(std::string_view(value))](std::string_view) { return s; };
  } else {
    static_assert(std::is_convertible_v<T, std::string_view> || std::is_arithmetic_v<T>,
                  "format: unsupported argument type (add a std::string conversion)");
    return {};
  }
}

std::string vformat(std::string_view fmt, const std::vector<Renderer>& args);

}  // namespace detail

template <typename... Args>
std::string format(std::string_view fmt, Args&&... args) {
  std::vector<detail::Renderer> renderers;
  renderers.reserve(sizeof...(args));
  (renderers.push_back(detail::make_renderer(args)), ...);
  return detail::vformat(fmt, renderers);
}

}  // namespace skt::util
