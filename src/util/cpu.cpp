#include "util/cpu.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace skt::util {
namespace {

struct Features {
  bool avx2 = false;
  bool ssse3 = false;

  Features() {
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports consults cpuid AND xgetbv, so AVX2 is only
    // reported when the OS actually saves the ymm state.
    __builtin_cpu_init();
    avx2 = __builtin_cpu_supports("avx2") != 0;
    ssse3 = __builtin_cpu_supports("ssse3") != 0;
#endif
  }
};

const Features& features() {
  static const Features f;
  return f;
}

}  // namespace

bool cpu_has_avx2() { return features().avx2; }

bool cpu_has_ssse3() { return features().ssse3; }

std::string kernel_override() {
  const char* env = std::getenv("SKT_KERNELS");
  if (env == nullptr) return {};
  std::string v(env);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return v;
}

std::string cpu_simd_summary() {
  std::string s;
  if (cpu_has_avx2()) s += "avx2";
  if (cpu_has_ssse3()) s += s.empty() ? "ssse3" : "+ssse3";
  if (s.empty()) s = "scalar-only";
  return s;
}

}  // namespace skt::util
