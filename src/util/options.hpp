// Minimal CLI option parsing for examples and bench binaries.
// Accepts "--key value", "--key=value" and bare "--flag" forms.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace skt::util {

class Options {
 public:
  Options(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Arguments that were not --options, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace skt::util
