// Leveled, thread-safe logger with an optional per-thread rank prefix.
//
// Every rank thread spawned by the simulator registers itself via
// set_thread_context(), so log lines read like mpirun output:
//   [12:34:56.789] [ 0.123s] [rank 3/16] checkpoint epoch 2 committed
// Non-rank daemon threads (the launcher) register a label instead:
//   [12:34:56.790] [ 0.124s] [launcher node 0] replacing dead node 2
//
// Set SKT_LOG_JSON=1 in the environment to switch the sink to one JSON
// object per line (wall-clock `ts` in Unix seconds, `elapsed_s`, `level`,
// `rank`/`label`, `msg`), so log lines join trace spans and RunReports in
// the same machine-readable pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/format.hpp"

namespace skt::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Unknown strings leave the level unchanged and return false.
bool set_log_level(std::string_view name);

/// Attach "[rank r/n]" to all subsequent messages from this thread.
/// Pass rank < 0 to clear the prefix (e.g. for the launcher daemon).
void set_thread_context(int rank, int size);

/// Attach a "[label]" prefix to this thread's messages instead of a rank —
/// used by non-rank daemons (the launcher logs "launcher node <id>").
/// An empty label clears it. A rank context takes precedence when both set.
void set_thread_label(std::string_view label);

/// True when the JSON-lines sink is active (SKT_LOG_JSON=1).
bool log_json_enabled();

/// Emit one formatted line (already-formatted payload).
void log_line(LogLevel level, std::string_view msg);

template <typename... Args>
void log(LogLevel level, std::string_view fmt, Args&&... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  log_line(level, format(fmt, std::forward<Args>(args)...));
}

#define SKT_LOG_TRACE(...) ::skt::util::log(::skt::util::LogLevel::kTrace, __VA_ARGS__)
#define SKT_LOG_DEBUG(...) ::skt::util::log(::skt::util::LogLevel::kDebug, __VA_ARGS__)
#define SKT_LOG_INFO(...) ::skt::util::log(::skt::util::LogLevel::kInfo, __VA_ARGS__)
#define SKT_LOG_WARN(...) ::skt::util::log(::skt::util::LogLevel::kWarn, __VA_ARGS__)
#define SKT_LOG_ERROR(...) ::skt::util::log(::skt::util::LogLevel::kError, __VA_ARGS__)

}  // namespace skt::util
