// Leveled, thread-safe logger with an optional per-thread rank prefix.
//
// Every rank thread spawned by the simulator registers itself via
// set_thread_context(), so log lines read like mpirun output:
//   [ 0.123s] [rank 3/16] checkpoint epoch 2 committed
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/format.hpp"

namespace skt::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Unknown strings leave the level unchanged and return false.
bool set_log_level(std::string_view name);

/// Attach "[rank r/n]" to all subsequent messages from this thread.
/// Pass rank < 0 to clear the prefix (e.g. for the launcher daemon).
void set_thread_context(int rank, int size);

/// Emit one formatted line (already-formatted payload).
void log_line(LogLevel level, std::string_view msg);

template <typename... Args>
void log(LogLevel level, std::string_view fmt, Args&&... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  log_line(level, format(fmt, std::forward<Args>(args)...));
}

#define SKT_LOG_TRACE(...) ::skt::util::log(::skt::util::LogLevel::kTrace, __VA_ARGS__)
#define SKT_LOG_DEBUG(...) ::skt::util::log(::skt::util::LogLevel::kDebug, __VA_ARGS__)
#define SKT_LOG_INFO(...) ::skt::util::log(::skt::util::LogLevel::kInfo, __VA_ARGS__)
#define SKT_LOG_WARN(...) ::skt::util::log(::skt::util::LogLevel::kWarn, __VA_ARGS__)
#define SKT_LOG_ERROR(...) ::skt::util::log(::skt::util::LogLevel::kError, __VA_ARGS__)

}  // namespace skt::util
