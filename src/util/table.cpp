#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/format.hpp"

namespace skt::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) throw std::invalid_argument("Table: too many cells");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
      out += (c + 1 < row.size()) ? "  " : "";
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out.append(widths[c], '-');
    out += (c + 1 < widths.size()) ? "  " : "";
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string format_bytes(std::size_t bytes) {
  constexpr const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return u == 0 ? format("{} B", bytes) : format("{:.2f} {}", v, units[u]);
}

std::string format_seconds(double seconds) {
  if (seconds < 0) return format("-{}", format_seconds(-seconds));
  if (seconds < 1e-6) return format("{:.0f} ns", seconds * 1e9);
  if (seconds < 1e-3) return format("{:.1f} us", seconds * 1e6);
  if (seconds < 1.0) return format("{:.1f} ms", seconds * 1e3);
  return format("{:.2f} s", seconds);
}

}  // namespace skt::util
