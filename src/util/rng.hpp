// Deterministic random number generation.
//
// Two tools:
//  * SplitMix64 / Xoshiro256** — fast sequential PRNGs for workload setup.
//  * element_hash()            — a stateless, location-addressed generator:
//    HPL regenerates matrix element (i, j) from (seed, i, j) alone, so a
//    restarted rank on a fresh node can rebuild or verify data without
//    replaying any sequential stream.
#pragma once

#include <cstdint>

namespace skt::util {

/// One step of the SplitMix64 sequence starting at `x`. Also usable as a
/// 64-bit finalizer/hash of `x`.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** by Blackman & Vigna: small, fast, high-quality.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x = splitmix64(x);
      s = x;
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [-0.5, 0.5), matching HPL's matrix fill distribution.
  double next_centered() { return next_double() - 0.5; }

  /// Uniform integer in [0, bound) without modulo bias for small bounds.
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;  // bias negligible for bound << 2^64
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Stateless hash of (seed, i, j) to a uint64.
constexpr std::uint64_t element_hash(std::uint64_t seed, std::uint64_t i, std::uint64_t j) {
  return splitmix64(splitmix64(seed ^ (i * 0x9e3779b97f4a7c15ULL)) ^
                    (j * 0xc2b2ae3d27d4eb4fULL));
}

/// Matrix element A(i, j) in [-0.5, 0.5), regenerable anywhere.
constexpr double element_value(std::uint64_t seed, std::uint64_t i, std::uint64_t j) {
  return static_cast<double>(element_hash(seed, i, j) >> 11) * 0x1.0p-53 - 0.5;
}

}  // namespace skt::util
