// Runtime CPU feature detection for the SIMD kernel dispatch
// (encoding/kernels.hpp). Queries are answered once via cpuid and cached;
// the SKT_KERNELS environment variable ("scalar" / "avx2") can force a
// tier downward for A/B measurement without rebuilding.
#pragma once

#include <string>

namespace skt::util {

/// True when the CPU (and OS-saved state) supports AVX2.
[[nodiscard]] bool cpu_has_avx2();

/// True when the CPU supports SSSE3 (PSHUFB, the table-lookup workhorse).
[[nodiscard]] bool cpu_has_ssse3();

/// Value of the SKT_KERNELS override, lower-cased ("" when unset).
[[nodiscard]] std::string kernel_override();

/// Human-readable summary for logs/bench reports, e.g. "avx2+ssse3".
[[nodiscard]] std::string cpu_simd_summary();

}  // namespace skt::util
