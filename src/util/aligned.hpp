// 64-byte-aligned allocation for staging and parity buffers.
//
// The vectorized kernels (encoding/kernels.hpp) use unaligned loads, so
// alignment is a performance contract, not a correctness one: a 64-byte
// start keeps every 32-byte AVX2 access inside one cache line and lets the
// store half of xor/mul-accumulate hit aligned paths on the common case of
// whole-buffer operations.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace skt::util {

/// Cache-line / AVX-512-friendly alignment for bulk byte buffers.
inline constexpr std::size_t kBufferAlign = 64;

template <typename T, std::size_t Align = kBufferAlign>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T), "AlignedAllocator: alignment below alignof(T)");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) { return false; }
};

/// std::vector whose data() is 64-byte aligned. Drop-in for the staging /
/// parity / scratch buffers the codecs and protocols own on the heap.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

using AlignedBytes = aligned_vector<std::byte>;

/// UNINITIALIZED 64-byte-aligned byte buffer (RAII). For transient
/// commit-time scratch where zero-filling the whole allocation would
/// defeat O(dirty-bytes) scaling — the caller writes the ranges it will
/// read and must never read the rest.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n) : size_(n) {
    if (n != 0) {
      data_ = static_cast<std::byte*>(::operator new(n, std::align_val_t{kBufferAlign}));
    }
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ~AlignedBuffer() { release(); }

  [[nodiscard]] std::byte* data() { return data_; }
  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  void release() noexcept {
    if (data_ != nullptr) ::operator delete(data_, std::align_val_t{kBufferAlign});
    data_ = nullptr;
  }

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace skt::util
