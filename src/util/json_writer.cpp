#include "util/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <system_error>

namespace skt::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  out_ += '\n';
  out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
}

void JsonWriter::begin_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) out_ += ',';
  if (depth_ > 0) indent();
}

void JsonWriter::begin_object() {
  begin_value();
  out_ += '{';
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::end_object() {
  if (depth_ == 0) throw std::logic_error("JsonWriter: end_object without begin_object");
  --depth_;
  if (need_comma_) indent();  // had members: close on its own line
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  begin_value();
  out_ += '[';
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::end_array() {
  if (depth_ == 0) throw std::logic_error("JsonWriter: end_array without begin_array");
  --depth_;
  if (need_comma_) indent();
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::key(std::string_view name) {
  if (need_comma_) out_ += ',';
  indent();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\": ";
  after_key_ = true;
  need_comma_ = false;
}

void JsonWriter::value(double v) {
  begin_value();
  if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no Inf/NaN
  }
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t v) {
  begin_value();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  begin_value();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::value(bool v) {
  begin_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::value(std::string_view v) {
  begin_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  need_comma_ = true;
}

const std::string& JsonWriter::str() const {
  if (depth_ != 0) throw std::logic_error("JsonWriter: document has unclosed containers");
  return out_;
}

bool write_json_file(const std::string& path, std::string_view doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fputc('\n', f);
  std::fclose(f);
  return ok;
}

bool write_json_file(const std::string& path, const JsonWriter& w) {
  return write_json_file(path, std::string_view(w.str()));
}

std::string report_dir() {
  const char* env = std::getenv("SKT_REPORT_DIR");
  const std::string dir = (env != nullptr && *env != '\0') ? env : "out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "warning: cannot create report dir %s: %s\n", dir.c_str(),
                 ec.message().c_str());
  }
  return dir;
}

std::string report_path(const std::string& filename) {
  return report_dir() + "/" + filename;
}

}  // namespace skt::util
