#include "util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace skt::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    if (x < s.min) s.min = x;
    if (x > s.max) s.max = x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

double quantile(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q must be in [0, 1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Quantiles quantiles(std::span<const double> sorted) {
  Quantiles q;
  q.p50 = quantile(sorted, 0.50);
  q.p90 = quantile(sorted, 0.90);
  q.p99 = quantile(sorted, 0.99);
  return q;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("fit_linear: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("fit_linear: need >= 2 points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("fit_linear: degenerate x values");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;

  const double ymean = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = f.slope * xs[i] + f.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  f.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

}  // namespace skt::util
