// The master-node daemon of Section 5.2: launches the job, watches for
// aborts, health-checks the ranklist, replaces lost nodes with spares, and
// relaunches. Survivor ranks keep their nodes (and their SHM checkpoints);
// a replacement rank starts on a blank node and must be rebuilt from the
// group's checksums.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "sim/cluster.hpp"
#include "sim/failure.hpp"
#include "telemetry/forensics.hpp"
#include "telemetry/health.hpp"

namespace skt::storage {
class ShardedVault;
}

namespace skt::mpi {

/// Heartbeat-driven failure detection for the launcher's detect phase.
/// When enabled, the launcher resets and arms the HealthBoard, registers a
/// cluster power-off observer to stamp true death instants, and on abort
/// POLLS the board until every lost rank's suspicion crosses
/// `phi_threshold` — so detection latency becomes a measured histogram
/// (`launcher.detect_latency_s`) instead of the implicit `detect_delay_s`.
struct HealthConfig {
  bool enabled = false;
  double phi_threshold = telemetry::HealthBoard::kDefaultPhiThreshold;
  double poll_interval_s = 0.0002;  ///< detect-phase polling cadence (real)
  double max_wait_s = 2.0;          ///< give up polling after this (real)
};

struct LauncherConfig {
  int max_restarts = 8;
  int ranks_per_node = 1;
  /// First primary node of this job's contiguous placement. Concurrent
  /// launchers sharing one cluster (multi-tenant scenarios) give each job
  /// a disjoint node range by offsetting here; spares stay shared.
  int first_node = 0;
  /// Failure-detection latency charged as virtual time per cycle (the
  /// paper measures ~63 s on Tianhe-2, ~30 s on Tianhe-1A).
  double detect_delay_s = 0.0;
  /// Extra virtual seconds modelling job-manager replace/restart latency
  /// (10 s and 9 s respectively in Fig. 10). Real measured time is added
  /// on top.
  double replace_delay_s = 0.0;
  double restart_delay_s = 0.0;
  HealthConfig health;
  /// When set, every incident's postmortem is also written to
  /// `POSTMORTEM_<name>.json` (incident k > 0 appends `_<k>`).
  std::string postmortem_name;
  /// When the job's durable tier is sharded across its own nodes, the
  /// replace phase reshards it: each dead node that hosts a shard gets
  /// ShardedVault::replace_node(dead, spare), which hands the spare the
  /// dead node's placement slot and re-homes its extents from surviving
  /// replicas before the relaunch reads anything back.
  storage::ShardedVault* sharded_vault = nullptr;
  RuntimeConfig runtime;
};

/// Timing of one work-fail-detect-restart cycle (Fig. 10).
struct CycleTiming {
  std::string reason;      ///< abort reason from the failed run
  double detect_s = 0.0;   ///< failure detection (virtual)
  double replace_s = 0.0;  ///< ranklist health check + spare substitution
  double restart_s = 0.0;  ///< job relaunch
  /// Measured (suspicion crossed) - (node died); -1 when health monitoring
  /// was off or no death stamp existed.
  double detect_latency_s = -1.0;
  double detect_phi = 0.0;     ///< worst lost-rank suspicion at detection
  std::vector<int> lost_ranks; ///< world ranks that died this cycle
};

struct LaunchResult {
  bool success = false;
  int restarts = 0;
  std::string failure;  ///< reason when success == false
  double total_real_s = 0.0;
  double total_virtual_s = 0.0;
  std::vector<CycleTiming> cycles;
  /// Named durations recorded by ranks, e.g. "checkpoint" (critical-path
  /// commit cost: the full sync commit, or only the staging copy in async
  /// mode), "ckpt_worker" (one async worker pipeline, off the critical
  /// path), and "recover". Max-merge semantics, at both levels: within an
  /// attempt each value is the largest single observation across ranks and
  /// calls (JobResult::times), and across attempts the per-attempt maxima
  /// are max-merged again. So times["checkpoint"] is the worst-case cost
  /// of ONE commit anywhere in the whole launch — not a total, not an
  /// average, and not summed over restarts.
  std::map<std::string, double> times;
  std::vector<int> final_ranklist;
  /// One forensic record per incident (also appended to the process-wide
  /// forensics::recorder() history, and to POSTMORTEM_*.json files when
  /// LauncherConfig::postmortem_name is set).
  std::vector<telemetry::Postmortem> postmortems;
};

class JobLauncher {
 public:
  JobLauncher(sim::Cluster& cluster, sim::FailureInjector* injector = nullptr,
              LauncherConfig config = {});

  /// Run `fn` over `nranks` ranks with restart-on-failure. Returns once the
  /// job completes, spares run out, or max_restarts is exceeded.
  LaunchResult run(int nranks, const std::function<void(Comm&)>& fn);

  /// Contiguous fill: rank r lands on primary node
  /// first_node + r / ranks_per_node.
  static std::vector<int> default_ranklist(const sim::Cluster& cluster, int nranks,
                                           int ranks_per_node, int first_node = 0);

 private:
  sim::Cluster& cluster_;
  sim::FailureInjector* injector_;
  LauncherConfig config_;
};

}  // namespace skt::mpi
