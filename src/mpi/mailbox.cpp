#include "mpi/mailbox.hpp"

namespace skt::mpi {

void Mailbox::push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    messages_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

std::optional<Message> Mailbox::pop(int src_world, Tag tag, std::uint64_t comm_id,
                                    const std::atomic<bool>& aborted) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // FIFO within the match class: take the first matching message in
    // arrival order, as MPI's non-overtaking rule requires.
    for (auto it = messages_.begin(); it != messages_.end(); ++it) {
      if (it->src_world == src_world && it->tag == tag && it->comm_id == comm_id) {
        Message msg = std::move(*it);
        messages_.erase(it);
        return msg;
      }
    }
    if (aborted.load(std::memory_order_acquire)) return std::nullopt;
    cv_.wait(lock);
  }
}

void Mailbox::interrupt() {
  // Take the lock so a receiver between its match scan and cv_.wait cannot
  // miss the wakeup.
  std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return messages_.size();
}

}  // namespace skt::mpi
