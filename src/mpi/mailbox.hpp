// Per-rank mailbox: an unordered message pool with (source, tag, comm)
// matching and FIFO delivery within a match class, mirroring MPI ordering
// guarantees. Receives block until a match arrives or the job aborts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <list>
#include <mutex>
#include <optional>

#include "mpi/message.hpp"

namespace skt::mpi {

class Mailbox {
 public:
  void push(Message msg);

  /// Block until a message matching (src_world, tag, comm_id) is available,
  /// or `aborted` becomes true. Returns nullopt on abort.
  std::optional<Message> pop(int src_world, Tag tag, std::uint64_t comm_id,
                             const std::atomic<bool>& aborted);

  /// Wake all blocked receivers so they can observe an abort flag.
  void interrupt();

  /// Number of queued (unmatched) messages; used by tests.
  [[nodiscard]] std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::list<Message> messages_;
};

}  // namespace skt::mpi
