// Communicator: the application-facing API of the SimMPI runtime.
//
// Matches the MPI subset the paper's systems need: blocking point-to-point
// with tags, barrier / bcast / reduce / allreduce / gather / allgather /
// scatter built as binomial-tree or dissemination algorithms over p2p, and
// communicator splitting (HPL row/column communicators, encoding group
// communicators). Every entry point checks node liveness, so a powered-off
// node unwinds the whole job just like a production MPI.
#pragma once

#include <bit>
#include <cstring>
#include <memory>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "mpi/ops.hpp"
#include "mpi/runtime.hpp"
#include "sim/node.hpp"
#include "telemetry/metrics.hpp"

namespace skt::mpi {

/// Default pipeline segment for the chunked collectives: large payloads are
/// moved in segments of this size so combining overlaps communication.
inline constexpr std::size_t kCollectiveChunkBytes = 64 << 10;

/// Payloads at least this large take the ring (bandwidth-optimal) allreduce
/// when the element count divides the communicator size; smaller ones keep
/// the binomial tree, whose log2(n) latency steps beat the ring's n-1.
inline constexpr std::size_t kRingMinBytes = 32 << 10;

class Comm {
 public:
  /// The world communicator for one rank thread; called by Runtime only.
  static Comm world(Runtime& rt, int my_world_rank);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(group_->members.size()); }
  [[nodiscard]] int world_rank() const { return group_->members[static_cast<std::size_t>(rank_)]; }

  /// World rank of communicator member `member`.
  [[nodiscard]] int translate(int member) const {
    return group_->members.at(static_cast<std::size_t>(member));
  }

  /// Node id hosting communicator member `member`.
  [[nodiscard]] int node_id_of(int member) const {
    return rt_->node_id_of(translate(member));
  }

  // --- point-to-point ---------------------------------------------------

  /// Blocking send of raw bytes to member `dst` (rank within this comm).
  /// `tag` must be below kUserTagLimit.
  void send_bytes(int dst, Tag tag, std::span<const std::byte> payload);

  /// Zero-copy send: the buffer is moved into the mailbox instead of being
  /// copied. `payload` is left in the usual moved-from (valid, unspecified)
  /// state. Preferred for large stripe messages on the encode path.
  void send_bytes(int dst, Tag tag, std::vector<std::byte>&& payload);

  /// Blocking receive into `out`; the message size must equal out.size().
  void recv_bytes(int src, Tag tag, std::span<std::byte> out);

  /// Blocking receive of a message of unknown size.
  std::vector<std::byte> recv_any(int src, Tag tag);

  /// Zero-copy receive: returns the mailbox buffer itself after checking the
  /// size, so the caller can consume (or forward) it without another copy.
  std::vector<std::byte> recv_take(int src, Tag tag, std::size_t expected_bytes);

  template <typename T>
  void send(int dst, Tag tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, std::as_bytes(data));
  }

  /// Typed rvalue overload: moves byte buffers into the mailbox; for other
  /// trivially-copyable T the payload is still serialized with one copy.
  template <typename T>
  void send(int dst, Tag tag, std::vector<T>&& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    if constexpr (std::is_same_v<T, std::byte>) {
      send_bytes(dst, tag, std::move(data));
    } else {
      send_bytes(dst, tag, std::as_bytes(std::span<const T>(data)));
    }
  }

  template <typename T>
  void recv(int src, Tag tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(src, tag, std::as_writable_bytes(out));
  }

  template <typename T>
  void send_value(int dst, Tag tag, const T& value) {
    send<T>(dst, tag, std::span<const T>(&value, 1));
  }

  template <typename T>
  [[nodiscard]] T recv_value(int src, Tag tag) {
    T value{};
    recv<T>(src, tag, std::span<T>(&value, 1));
    return value;
  }

  /// Combined exchange; safe against head-of-line deadlock because sends
  /// never block in this runtime.
  template <typename T>
  void sendrecv(int dst, Tag send_tag, std::span<const T> out, int src, Tag recv_tag,
                std::span<T> in) {
    send<T>(dst, send_tag, out);
    recv<T>(src, recv_tag, in);
  }

  // --- collectives --------------------------------------------------------
  // All members must call each collective in the same order; rounds are
  // stamped with a per-communicator sequence number.

  void barrier();

  void bcast_bytes(int root, std::span<std::byte> data);

  template <typename T>
  void bcast(int root, std::span<T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_bytes(root, std::as_writable_bytes(data));
  }

  /// Pipelined ring broadcast (HPL's "increasing-ring" panel broadcast):
  /// the payload moves root -> root+1 -> ... in `chunk_bytes` segments, so
  /// every link carries the full payload once and forwarding overlaps with
  /// reception. Latency-heavier than the binomial tree for small messages,
  /// bandwidth-friendlier for wide panels on congested networks.
  void bcast_pipeline(int root, std::span<std::byte> data, std::size_t chunk_bytes = 64 << 10);

  template <typename T>
  void bcast_pipeline(int root, std::span<T> data, std::size_t chunk_bytes = 64 << 10) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_pipeline(root, std::as_writable_bytes(data), chunk_bytes);
  }

  template <typename T>
  void bcast_value(int root, T& value) {
    bcast<T>(root, std::span<T>(&value, 1));
  }

  /// Element-wise reduction to `root`. `out` must alias or equal-size `in`
  /// at the root; it may be empty elsewhere. In-place (out.data()==in.data())
  /// is allowed.
  ///
  /// Binomial tree, pipelined in `chunk_bytes` segments so a parent combines
  /// chunk c while its children already transmit chunk c+1. Ranks that send
  /// without combining (odd relative rank) stream straight out of `in`;
  /// combining ranks consume the mailbox buffers in place and hand their
  /// accumulator to the mailbox by move when it fits one segment.
  template <typename T, typename Op>
  void reduce(int root, std::span<const T> in, std::span<T> out, Op op,
              std::size_t chunk_bytes = kCollectiveChunkBytes) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (root < 0 || root >= size()) throw std::invalid_argument("reduce: bad root");
    if (chunk_bytes == 0) throw std::invalid_argument("reduce: zero chunk size");
    // Payload-size histogram per collective; the registry reference is
    // resolved once per call site (see telemetry/metrics.hpp).
    static telemetry::Histogram& h_bytes =
        telemetry::metrics().histogram("mpi.coll.reduce_bytes", 1.0);
    h_bytes.record(static_cast<double>(in.size() * sizeof(T)));
    if (rank_ == root && out.size() != in.size()) {
      throw std::invalid_argument("reduce: bad out size at root");
    }
    const Tag seq = next_seq();
    const int n = size();
    const int relr = relative_rank(root);
    if (n == 1) {
      if (out.data() != in.data()) std::memcpy(out.data(), in.data(), in.size() * sizeof(T));
      return;
    }
    // Odd relative ranks send to their parent before ever combining, so
    // they need no local accumulator copy at all.
    const bool pure_sender = (relr & 1) != 0;
    std::vector<std::byte> accum;
    if (!pure_sender) {
      accum.resize(in.size() * sizeof(T));
      if (!in.empty()) std::memcpy(accum.data(), in.data(), accum.size());
    }
    const std::size_t chunk_elems = std::max<std::size_t>(1, chunk_bytes / sizeof(T));
    const std::size_t chunks = in.empty() ? 1 : (in.size() + chunk_elems - 1) / chunk_elems;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t off = c * chunk_elems;
      const std::size_t len = in.empty() ? 0 : std::min(chunk_elems, in.size() - off);
      for (int mask = 1; mask < n; mask <<= 1) {
        const Tag tag = collective_tag(seq, std::countr_zero(static_cast<unsigned>(mask)));
        if (relr & mask) {
          const int dst = absolute_rank(relr - mask, root);
          if (pure_sender) {
            send<T>(dst, tag, in.subspan(off, len));
          } else if (chunks == 1) {
            send_bytes(dst, tag, std::move(accum));
          } else {
            send_bytes(dst, tag, std::span<const std::byte>(accum.data() + off * sizeof(T),
                                                            len * sizeof(T)));
          }
          break;
        }
        const int src_rel = relr + mask;
        if (src_rel < n) {
          const int src = absolute_rank(src_rel, root);
          const std::vector<std::byte> incoming = recv_take(src, tag, len * sizeof(T));
          combine_inplace<T, Op>(
              std::span<T>(reinterpret_cast<T*>(accum.data()) + off, len),
              std::span<const T>(reinterpret_cast<const T*>(incoming.data()), len), op);
        }
      }
    }
    if (rank_ == root && !in.empty()) {
      std::memcpy(out.data(), accum.data(), out.size() * sizeof(T));
    }
  }

  /// Ring reduce-scatter over equal blocks. `blocks` holds size() spans of
  /// out.size() elements each — blocks[r] is this member's contribution to
  /// the result that lands on rank r — and `out` receives the fully combined
  /// block for this rank. Bandwidth-optimal: every rank moves (n-1) blocks
  /// once, in `chunk_bytes` segments, and partially-reduced mailbox buffers
  /// are forwarded hop to hop by move. `op` must be commutative (all the
  /// built-in ones are); SUM combines in ring order, so floating-point
  /// results are tolerance-equal, not bit-equal, to the binomial reduce.
  template <typename T, typename Op>
  void reduce_scatter_blocks(std::span<const std::span<const T>> blocks, std::span<T> out,
                             Op op, std::size_t chunk_bytes = kCollectiveChunkBytes) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int n = size();
    if (static_cast<int>(blocks.size()) != n) {
      throw std::invalid_argument("reduce_scatter: need one block per member");
    }
    const std::size_t count = out.size();
    for (const std::span<const T>& b : blocks) {
      if (b.size() != count) throw std::invalid_argument("reduce_scatter: unequal block sizes");
    }
    if (chunk_bytes == 0) throw std::invalid_argument("reduce_scatter: zero chunk size");
    static telemetry::Histogram& h_bytes =
        telemetry::metrics().histogram("mpi.coll.reduce_scatter_bytes", 1.0);
    h_bytes.record(static_cast<double>(static_cast<std::size_t>(n) * count * sizeof(T)));
    const Tag seq = next_seq();
    if (n == 1) {
      if (out.data() != blocks[0].data() && count > 0) {
        std::memcpy(out.data(), blocks[0].data(), count * sizeof(T));
      }
      return;
    }
    const int next = (rank_ + 1) % n;
    const int prev = (rank_ - 1 + n) % n;
    const std::size_t chunk_elems = std::max<std::size_t>(1, chunk_bytes / sizeof(T));
    const std::size_t chunks = count == 0 ? 1 : (count + chunk_elems - 1) / chunk_elems;
    // Segments of the partially-reduced block passing through this rank;
    // each mailbox buffer is combined in place and forwarded by move.
    std::vector<std::vector<std::byte>> acc(chunks);
    for (int s = 0; s < n - 1; ++s) {
      // Block b travels rank b+1 -> b+2 -> ... -> b, gaining one
      // contribution per hop; at step s this rank emits block r-s-1 and
      // absorbs its own contribution into incoming block r-s-2.
      const int send_block = (rank_ - s - 1 + 2 * n) % n;
      const int recv_block = (rank_ - s - 2 + 2 * n) % n;
      const Tag tag = collective_tag(seq, static_cast<int>(s % 250));
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t off = c * chunk_elems;
        const std::size_t len = count == 0 ? 0 : std::min(chunk_elems, count - off);
        if (s == 0) {
          send<T>(next, tag, blocks[static_cast<std::size_t>(send_block)].subspan(off, len));
        } else {
          send_bytes(next, tag, std::move(acc[c]));
        }
        std::vector<std::byte> incoming = recv_take(prev, tag, len * sizeof(T));
        combine_inplace<T, Op>(
            std::span<T>(reinterpret_cast<T*>(incoming.data()), len),
            blocks[static_cast<std::size_t>(recv_block)].subspan(off, len), op);
        acc[c] = std::move(incoming);
      }
    }
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t off = c * chunk_elems;
      const std::size_t len = count == 0 ? 0 : std::min(chunk_elems, count - off);
      if (len > 0) std::memcpy(out.data() + off, acc[c].data(), len * sizeof(T));
    }
  }

  /// Contiguous-input reduce-scatter: `in` holds size() blocks of
  /// out.size() elements in rank order.
  template <typename T, typename Op>
  void reduce_scatter(std::span<const T> in, std::span<T> out, Op op,
                      std::size_t chunk_bytes = kCollectiveChunkBytes) {
    const std::size_t count = out.size();
    if (in.size() != count * static_cast<std::size_t>(size())) {
      throw std::invalid_argument("reduce_scatter: in must hold size() blocks of out.size()");
    }
    std::vector<std::span<const T>> blocks(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      blocks[static_cast<std::size_t>(r)] = in.subspan(static_cast<std::size_t>(r) * count, count);
    }
    reduce_scatter_blocks<T, Op>(blocks, out, op, chunk_bytes);
  }

  /// Ring allreduce: reduce-scatter followed by a ring allgather. Each rank
  /// moves 2(n-1)/n of the payload regardless of n — the bandwidth-optimal
  /// schedule — at the price of 2(n-1) latency steps. Requires
  /// in.size() % size() == 0; allreduce() falls back to the binomial tree
  /// otherwise. In-place (out aliasing in) is allowed.
  template <typename T, typename Op>
  void allreduce_ring(std::span<const T> in, std::span<T> out, Op op,
                      std::size_t chunk_bytes = kCollectiveChunkBytes) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int n = size();
    if (out.size() != in.size()) throw std::invalid_argument("allreduce_ring: size mismatch");
    if (in.size() % static_cast<std::size_t>(n) != 0) {
      throw std::invalid_argument("allreduce_ring: element count must divide comm size");
    }
    const std::size_t count = in.size() / static_cast<std::size_t>(n);
    reduce_scatter<T, Op>(in, out.subspan(static_cast<std::size_t>(rank_) * count, count), op,
                          chunk_bytes);
    if (n == 1) return;
    const Tag seq = next_seq();
    const int next = (rank_ + 1) % n;
    const int prev = (rank_ - 1 + n) % n;
    const std::size_t chunk_elems = std::max<std::size_t>(1, chunk_bytes / sizeof(T));
    const std::size_t chunks = count == 0 ? 1 : (count + chunk_elems - 1) / chunk_elems;
    for (int s = 0; s < n - 1; ++s) {
      const int send_block = (rank_ - s + 2 * n) % n;
      const int recv_block = (rank_ - s - 1 + 2 * n) % n;
      const Tag tag = collective_tag(seq, static_cast<int>(s % 250));
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t off = c * chunk_elems;
        const std::size_t len = count == 0 ? 0 : std::min(chunk_elems, count - off);
        send<T>(next, tag,
                std::span<const T>(out.subspan(
                    static_cast<std::size_t>(send_block) * count + off, len)));
        recv<T>(prev, tag,
                out.subspan(static_cast<std::size_t>(recv_block) * count + off, len));
      }
    }
  }

  /// Algorithm-selecting allreduce: ring for large evenly-divisible
  /// payloads, binomial reduce + bcast otherwise (see kRingMinBytes).
  template <typename T, typename Op>
  void allreduce(std::span<const T> in, std::span<T> out, Op op) {
    if (out.size() != in.size()) throw std::invalid_argument("allreduce: size mismatch");
    static telemetry::Histogram& h_bytes =
        telemetry::metrics().histogram("mpi.coll.allreduce_bytes", 1.0);
    h_bytes.record(static_cast<double>(in.size() * sizeof(T)));
    if (size() > 2 && in.size() % static_cast<std::size_t>(size()) == 0 &&
        in.size() * sizeof(T) >= kRingMinBytes) {
      allreduce_ring<T, Op>(in, out, op);
      return;
    }
    reduce<T, Op>(0, in, out, op);
    bcast<T>(0, out);
  }

  template <typename T, typename Op>
  [[nodiscard]] T allreduce_value(const T& value, Op op) {
    T in = value;
    T out{};
    allreduce<T, Op>(std::span<const T>(&in, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// Equal-contribution gather: every member contributes in.size() elements;
  /// the root's return value holds size()*in.size() elements in rank order.
  /// Non-roots receive an empty vector.
  template <typename T>
  [[nodiscard]] std::vector<T> gather(int root, std::span<const T> in) {
    static_assert(std::is_trivially_copyable_v<T>);
    static telemetry::Histogram& h_bytes =
        telemetry::metrics().histogram("mpi.coll.gather_bytes", 1.0);
    h_bytes.record(static_cast<double>(in.size() * sizeof(T)));
    const Tag seq = next_seq();
    const Tag tag = collective_tag(seq, 0);
    if (rank_ != root) {
      send<T>(root, tag, in);
      return {};
    }
    std::vector<T> all(static_cast<std::size_t>(size()) * in.size());
    for (int r = 0; r < size(); ++r) {
      std::span<T> slot(all.data() + static_cast<std::size_t>(r) * in.size(), in.size());
      if (r == root) {
        std::memcpy(slot.data(), in.data(), in.size() * sizeof(T));
      } else {
        recv<T>(r, tag, slot);
      }
    }
    return all;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> allgather(std::span<const T> in) {
    std::vector<T> all = gather<T>(0, in);
    if (rank_ != 0) all.resize(static_cast<std::size_t>(size()) * in.size());
    bcast<T>(0, std::span<T>(all));
    return all;
  }

  /// Equal-share scatter from root: `all` holds size()*chunk elements at the
  /// root; every member receives its chunk into `out`.
  template <typename T>
  void scatter(int root, std::span<const T> all, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    static telemetry::Histogram& h_bytes =
        telemetry::metrics().histogram("mpi.coll.scatter_bytes", 1.0);
    h_bytes.record(static_cast<double>(out.size() * sizeof(T)));
    const Tag seq = next_seq();
    const Tag tag = collective_tag(seq, 0);
    if (rank_ == root) {
      if (all.size() != out.size() * static_cast<std::size_t>(size())) {
        throw std::invalid_argument("scatter: bad buffer size at root");
      }
      for (int r = 0; r < size(); ++r) {
        std::span<const T> slot(all.data() + static_cast<std::size_t>(r) * out.size(), out.size());
        if (r == root) {
          std::memcpy(out.data(), slot.data(), out.size() * sizeof(T));
        } else {
          send<T>(r, tag, slot);
        }
      }
    } else {
      recv<T>(root, tag, out);
    }
  }

  /// MPI_Comm_split: members with the same color form a new communicator,
  /// ordered by (key, parent rank). color must be >= 0.
  [[nodiscard]] Comm split(int color, int key);

  /// MPI_Comm_dup, communication-free: same members and ranks, but a fresh
  /// communicator id and collective sequence, so traffic on the duplicate
  /// never matches traffic on the parent. This is how a second thread of
  /// the same rank (the async checkpoint worker) gets communicators it can
  /// use concurrently with the rank thread: a Comm object is NOT
  /// thread-safe, but two Comms of the same rank with distinct ids are —
  /// the mailbox keys every message by (source, tag, comm id).
  ///
  /// Determinism contract (like any collective): all members must call
  /// dup() on their handle of this communicator the same number of times,
  /// in the same order relative to other dup() calls on it. The n-th dup
  /// of a given communicator yields the same id on every member.
  [[nodiscard]] Comm dup();

  // --- environment --------------------------------------------------------

  [[nodiscard]] sim::Node& node() { return rt_->node_of(world_rank()); }
  [[nodiscard]] sim::PersistentStore& store() { return node().store(); }
  [[nodiscard]] Runtime& runtime() { return *rt_; }

  /// Deterministic failure hook; may power off this rank's node and throw
  /// JobAborted. Also a cancellation point for external aborts.
  void failpoint(std::string_view name);

  /// Charge simulated seconds to this rank's virtual clock.
  void charge_virtual(double seconds) { rt_->charge_rank_virtual(world_rank(), seconds); }
  [[nodiscard]] double virtual_seconds() const { return rt_->rank_virtual(world_rank()); }

  void record_time(const std::string& name, double seconds) { rt_->record_time(name, seconds); }

 private:
  struct Group {
    std::uint64_t id = 0;
    std::vector<int> members;  // world ranks
  };

  Comm(Runtime& rt, std::shared_ptr<const Group> group, int rank)
      : rt_(&rt), group_(std::move(group)), rank_(rank) {}

  [[nodiscard]] Tag next_seq() { return collective_seq_++; }
  [[nodiscard]] static Tag collective_tag(Tag seq, int round) {
    return kUserTagLimit + seq * 256 + round;
  }
  [[nodiscard]] int relative_rank(int root) const { return (rank_ - root + size()) % size(); }
  [[nodiscard]] int absolute_rank(int rel, int root) const { return (rel + root) % size(); }

  Runtime* rt_;
  std::shared_ptr<const Group> group_;
  int rank_;
  Tag collective_seq_ = 0;
  int dup_count_ = 0;  ///< how many times dup() was called on this handle
};

}  // namespace skt::mpi
