// Communicator: the application-facing API of the SimMPI runtime.
//
// Matches the MPI subset the paper's systems need: blocking point-to-point
// with tags, barrier / bcast / reduce / allreduce / gather / allgather /
// scatter built as binomial-tree or dissemination algorithms over p2p, and
// communicator splitting (HPL row/column communicators, encoding group
// communicators). Every entry point checks node liveness, so a powered-off
// node unwinds the whole job just like a production MPI.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "mpi/ops.hpp"
#include "mpi/runtime.hpp"
#include "sim/node.hpp"

namespace skt::mpi {

class Comm {
 public:
  /// The world communicator for one rank thread; called by Runtime only.
  static Comm world(Runtime& rt, int my_world_rank);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(group_->members.size()); }
  [[nodiscard]] int world_rank() const { return group_->members[static_cast<std::size_t>(rank_)]; }

  /// World rank of communicator member `member`.
  [[nodiscard]] int translate(int member) const {
    return group_->members.at(static_cast<std::size_t>(member));
  }

  /// Node id hosting communicator member `member`.
  [[nodiscard]] int node_id_of(int member) const {
    return rt_->node_id_of(translate(member));
  }

  // --- point-to-point ---------------------------------------------------

  /// Blocking send of raw bytes to member `dst` (rank within this comm).
  /// `tag` must be below kUserTagLimit.
  void send_bytes(int dst, Tag tag, std::span<const std::byte> payload);

  /// Blocking receive into `out`; the message size must equal out.size().
  void recv_bytes(int src, Tag tag, std::span<std::byte> out);

  /// Blocking receive of a message of unknown size.
  std::vector<std::byte> recv_any(int src, Tag tag);

  template <typename T>
  void send(int dst, Tag tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag, std::as_bytes(data));
  }

  template <typename T>
  void recv(int src, Tag tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(src, tag, std::as_writable_bytes(out));
  }

  template <typename T>
  void send_value(int dst, Tag tag, const T& value) {
    send<T>(dst, tag, std::span<const T>(&value, 1));
  }

  template <typename T>
  [[nodiscard]] T recv_value(int src, Tag tag) {
    T value{};
    recv<T>(src, tag, std::span<T>(&value, 1));
    return value;
  }

  /// Combined exchange; safe against head-of-line deadlock because sends
  /// never block in this runtime.
  template <typename T>
  void sendrecv(int dst, Tag send_tag, std::span<const T> out, int src, Tag recv_tag,
                std::span<T> in) {
    send<T>(dst, send_tag, out);
    recv<T>(src, recv_tag, in);
  }

  // --- collectives --------------------------------------------------------
  // All members must call each collective in the same order; rounds are
  // stamped with a per-communicator sequence number.

  void barrier();

  void bcast_bytes(int root, std::span<std::byte> data);

  template <typename T>
  void bcast(int root, std::span<T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_bytes(root, std::as_writable_bytes(data));
  }

  /// Pipelined ring broadcast (HPL's "increasing-ring" panel broadcast):
  /// the payload moves root -> root+1 -> ... in `chunk_bytes` segments, so
  /// every link carries the full payload once and forwarding overlaps with
  /// reception. Latency-heavier than the binomial tree for small messages,
  /// bandwidth-friendlier for wide panels on congested networks.
  void bcast_pipeline(int root, std::span<std::byte> data, std::size_t chunk_bytes = 64 << 10);

  template <typename T>
  void bcast_pipeline(int root, std::span<T> data, std::size_t chunk_bytes = 64 << 10) {
    static_assert(std::is_trivially_copyable_v<T>);
    bcast_pipeline(root, std::as_writable_bytes(data), chunk_bytes);
  }

  template <typename T>
  void bcast_value(int root, T& value) {
    bcast<T>(root, std::span<T>(&value, 1));
  }

  /// Element-wise reduction to `root`. `out` must alias or equal-size `in`
  /// at the root; it may be empty elsewhere. In-place (out.data()==in.data())
  /// is allowed.
  template <typename T, typename Op>
  void reduce(int root, std::span<const T> in, std::span<T> out, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Tag seq = next_seq();
    std::vector<T> accum(in.begin(), in.end());
    std::vector<T> incoming(in.size());
    const int n = size();
    const int relr = relative_rank(root);
    for (int mask = 1; mask < n; mask <<= 1) {
      if (relr & mask) {
        const int dst = absolute_rank((relr - mask), root);
        send<T>(dst, collective_tag(seq, mask), accum);
        break;
      }
      const int src_rel = relr + mask;
      if (src_rel < n) {
        const int src = absolute_rank(src_rel, root);
        recv<T>(src, collective_tag(seq, mask), std::span<T>(incoming));
        for (std::size_t i = 0; i < accum.size(); ++i) accum[i] = op(accum[i], incoming[i]);
      }
    }
    if (rank_ == root) {
      if (out.size() != in.size()) throw std::invalid_argument("reduce: bad out size at root");
      std::memcpy(out.data(), accum.data(), accum.size() * sizeof(T));
    }
  }

  template <typename T, typename Op>
  void allreduce(std::span<const T> in, std::span<T> out, Op op) {
    if (out.size() != in.size()) throw std::invalid_argument("allreduce: size mismatch");
    reduce<T, Op>(0, in, out, op);
    bcast<T>(0, out);
  }

  template <typename T, typename Op>
  [[nodiscard]] T allreduce_value(const T& value, Op op) {
    T in = value;
    T out{};
    allreduce<T, Op>(std::span<const T>(&in, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// Equal-contribution gather: every member contributes in.size() elements;
  /// the root's return value holds size()*in.size() elements in rank order.
  /// Non-roots receive an empty vector.
  template <typename T>
  [[nodiscard]] std::vector<T> gather(int root, std::span<const T> in) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Tag seq = next_seq();
    const Tag tag = collective_tag(seq, 0);
    if (rank_ != root) {
      send<T>(root, tag, in);
      return {};
    }
    std::vector<T> all(static_cast<std::size_t>(size()) * in.size());
    for (int r = 0; r < size(); ++r) {
      std::span<T> slot(all.data() + static_cast<std::size_t>(r) * in.size(), in.size());
      if (r == root) {
        std::memcpy(slot.data(), in.data(), in.size() * sizeof(T));
      } else {
        recv<T>(r, tag, slot);
      }
    }
    return all;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> allgather(std::span<const T> in) {
    std::vector<T> all = gather<T>(0, in);
    if (rank_ != 0) all.resize(static_cast<std::size_t>(size()) * in.size());
    bcast<T>(0, std::span<T>(all));
    return all;
  }

  /// Equal-share scatter from root: `all` holds size()*chunk elements at the
  /// root; every member receives its chunk into `out`.
  template <typename T>
  void scatter(int root, std::span<const T> all, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Tag seq = next_seq();
    const Tag tag = collective_tag(seq, 0);
    if (rank_ == root) {
      if (all.size() != out.size() * static_cast<std::size_t>(size())) {
        throw std::invalid_argument("scatter: bad buffer size at root");
      }
      for (int r = 0; r < size(); ++r) {
        std::span<const T> slot(all.data() + static_cast<std::size_t>(r) * out.size(), out.size());
        if (r == root) {
          std::memcpy(out.data(), slot.data(), out.size() * sizeof(T));
        } else {
          send<T>(r, tag, slot);
        }
      }
    } else {
      recv<T>(root, tag, out);
    }
  }

  /// MPI_Comm_split: members with the same color form a new communicator,
  /// ordered by (key, parent rank). color must be >= 0.
  [[nodiscard]] Comm split(int color, int key);

  // --- environment --------------------------------------------------------

  [[nodiscard]] sim::Node& node() { return rt_->node_of(world_rank()); }
  [[nodiscard]] sim::PersistentStore& store() { return node().store(); }
  [[nodiscard]] Runtime& runtime() { return *rt_; }

  /// Deterministic failure hook; may power off this rank's node and throw
  /// JobAborted. Also a cancellation point for external aborts.
  void failpoint(std::string_view name);

  /// Charge simulated seconds to this rank's virtual clock.
  void charge_virtual(double seconds) { rt_->charge_rank_virtual(world_rank(), seconds); }
  [[nodiscard]] double virtual_seconds() const { return rt_->rank_virtual(world_rank()); }

  void record_time(const std::string& name, double seconds) { rt_->record_time(name, seconds); }

 private:
  struct Group {
    std::uint64_t id = 0;
    std::vector<int> members;  // world ranks
  };

  Comm(Runtime& rt, std::shared_ptr<const Group> group, int rank)
      : rt_(&rt), group_(std::move(group)), rank_(rank) {}

  [[nodiscard]] Tag next_seq() { return collective_seq_++; }
  [[nodiscard]] static Tag collective_tag(Tag seq, int round) {
    return kUserTagLimit + seq * 256 + round;
  }
  [[nodiscard]] int relative_rank(int root) const { return (rank_ - root + size()) % size(); }
  [[nodiscard]] int absolute_rank(int rel, int root) const { return (rel + root) % size(); }

  Runtime* rt_;
  std::shared_ptr<const Group> group_;
  int rank_;
  Tag collective_seq_ = 0;
};

}  // namespace skt::mpi
