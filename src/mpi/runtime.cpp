#include "mpi/runtime.hpp"

#include <algorithm>
#include <thread>

#include "mpi/comm.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace skt::mpi {

Runtime::Runtime(sim::Cluster& cluster, std::vector<int> ranklist,
                 sim::FailureInjector* injector, RuntimeConfig config)
    : cluster_(cluster), ranklist_(std::move(ranklist)), injector_(injector), config_(config) {
  if (ranklist_.empty()) throw std::invalid_argument("Runtime: empty ranklist");
  for (int node_id : ranklist_) {
    if (node_id < 0 || node_id >= cluster_.total_nodes()) {
      throw std::invalid_argument("Runtime: ranklist references unknown node");
    }
  }
  mailboxes_.reserve(ranklist_.size());
  for (std::size_t i = 0; i < ranklist_.size(); ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  rank_virtual_s_ = std::make_unique<std::atomic<double>[]>(ranklist_.size());
  for (std::size_t i = 0; i < ranklist_.size(); ++i) rank_virtual_s_[i].store(0.0);
}

JobResult Runtime::run(const std::function<void(Comm&)>& fn) {
  if (ran_) throw std::logic_error("Runtime::run: a Runtime is single-use");
  ran_ = true;

  // Refuse to launch onto dead nodes, like a job manager would.
  for (std::size_t r = 0; r < ranklist_.size(); ++r) {
    if (!cluster_.node(ranklist_[r]).alive()) {
      JobResult result;
      result.completed = false;
      result.abort_reason = "launch failed: node " + std::to_string(ranklist_[r]) + " is down";
      return result;
    }
  }

  // Node-aware abort: with several jobs sharing the cluster, only a death
  // inside THIS job's ranklist may abort it — another tenant's node loss
  // is not our failure.
  const int job_token = cluster_.attach_job([this](int node_id, const std::string& reason) {
    if (uses_node(node_id)) abort(reason);
  });

  util::WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(ranklist_.size());
  for (int r = 0; r < world_size(); ++r) {
    threads.emplace_back([this, r, &fn] {
      util::set_thread_context(r, world_size());
      telemetry::set_thread_rank(r);
      try {
        Comm world = Comm::world(*this, r);
        fn(world);
      } catch (const JobAborted&) {
        // Expected unwinding path after a node failure; the launcher
        // decides whether to restart.
      } catch (const std::exception& e) {
        abort(std::string("rank ") + std::to_string(r) + " failed: " + e.what());
      }
      util::set_thread_context(-1, 0);
      telemetry::set_thread_rank(-1);
    });
  }
  for (auto& t : threads) t.join();
  cluster_.detach_job(job_token);

  JobResult result;
  result.completed = !aborted_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(abort_mutex_);
    result.abort_reason = abort_reason_;
  }
  result.elapsed_real_s = timer.seconds();
  double max_rank_virtual = 0.0;
  for (std::size_t i = 0; i < ranklist_.size(); ++i) {
    max_rank_virtual = std::max(max_rank_virtual, rank_virtual_s_[i].load());
  }
  result.virtual_s =
      max_rank_virtual + static_cast<double>(job_virtual_ns_.load(std::memory_order_relaxed)) * 1e-9;
  {
    std::lock_guard<std::mutex> lock(times_mutex_);
    result.times = times_;
  }
  result.wire_bytes = wire_bytes();
  result.wire_messages = wire_messages();
  result.copied_bytes = copied_bytes();
  return result;
}

bool Runtime::uses_node(int node_id) const {
  for (const int id : ranklist_) {
    if (id == node_id) return true;
  }
  return false;
}

void Runtime::abort(const std::string& reason) {
  bool expected = false;
  if (aborted_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    {
      std::lock_guard<std::mutex> lock(abort_mutex_);
      abort_reason_ = reason;
    }
    SKT_LOG_WARN("job aborted: {}", reason);
  }
  for (auto& mb : mailboxes_) mb->interrupt();
}

Mailbox& Runtime::mailbox(int world_rank) {
  return *mailboxes_.at(static_cast<std::size_t>(world_rank));
}

sim::Node& Runtime::node_of(int world_rank) {
  return cluster_.node(ranklist_.at(static_cast<std::size_t>(world_rank)));
}

int Runtime::node_id_of(int world_rank) const {
  return ranklist_.at(static_cast<std::size_t>(world_rank));
}

void Runtime::check_alive(int world_rank) const {
  if (aborted_.load(std::memory_order_acquire)) {
    throw JobAborted("job aborted");
  }
  if (!cluster_.node(ranklist_.at(static_cast<std::size_t>(world_rank))).alive()) {
    throw JobAborted("local node powered off");
  }
}

double Runtime::message_cost(int src_world, int dst_world, std::size_t bytes) const {
  if (!config_.model_network) return 0.0;
  const int src_node = ranklist_.at(static_cast<std::size_t>(src_world));
  const int dst_node = ranklist_.at(static_cast<std::size_t>(dst_world));
  if (src_node == dst_node) return 0.0;  // intra-node copies are ~free at this fidelity
  const sim::NodeProfile& src_prof = cluster_.node(src_node).profile();
  const sim::NodeProfile& dst_prof = cluster_.node(dst_node).profile();
  // Each node's NIC is shared by `ranks_per_port` ranks (the Tianhe-2
  // effect in Fig. 13); the slower end bounds the transfer. Crossing a
  // rack boundary pays the higher switch-hop latency — what makes the
  // Section 3.3 neighbor mapping faster than the spread mapping.
  const double src_bw = src_prof.nic_bandwidth_Bps / std::max(1, src_prof.ranks_per_port);
  const double dst_bw = dst_prof.nic_bandwidth_Bps / std::max(1, dst_prof.ranks_per_port);
  const double bw = std::min(src_bw, dst_bw);
  const bool same_rack = cluster_.node(src_node).rack() == cluster_.node(dst_node).rack();
  const double latency = same_rack
                             ? std::max(src_prof.nic_latency_s, dst_prof.nic_latency_s)
                             : std::max(src_prof.inter_rack_latency_s,
                                        dst_prof.inter_rack_latency_s);
  return latency + static_cast<double>(bytes) / bw;
}

void Runtime::charge_rank_virtual(int world_rank, double seconds) {
  if (world_rank < 0 || world_rank >= world_size()) {
    throw std::out_of_range("charge_rank_virtual: bad rank");
  }
  rank_virtual_s_[static_cast<std::size_t>(world_rank)].fetch_add(seconds,
                                                                  std::memory_order_relaxed);
}

double Runtime::rank_virtual(int world_rank) const {
  if (world_rank < 0 || world_rank >= world_size()) {
    throw std::out_of_range("rank_virtual: bad rank");
  }
  return rank_virtual_s_[static_cast<std::size_t>(world_rank)].load(std::memory_order_relaxed);
}

void Runtime::charge_job_virtual(double seconds) {
  job_virtual_ns_.fetch_add(static_cast<std::int64_t>(seconds * 1e9), std::memory_order_relaxed);
}

void Runtime::record_time(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(times_mutex_);
  double& slot = times_[name];
  slot = std::max(slot, seconds);
}

}  // namespace skt::mpi
