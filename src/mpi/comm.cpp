#include "mpi/comm.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "telemetry/health.hpp"
#include "telemetry/trace.hpp"
#include "util/rng.hpp"

namespace skt::mpi {

Comm Comm::world(Runtime& rt, int my_world_rank) {
  auto group = std::make_shared<Group>();
  group->id = 0;
  group->members.resize(static_cast<std::size_t>(rt.world_size()));
  for (int r = 0; r < rt.world_size(); ++r) group->members[static_cast<std::size_t>(r)] = r;
  return Comm(rt, std::move(group), my_world_rank);
}

void Comm::send_bytes(int dst, Tag tag, std::span<const std::byte> payload) {
  rt_->count_copy(payload.size());
  send_bytes(dst, tag, std::vector<std::byte>(payload.begin(), payload.end()));
}

void Comm::send_bytes(int dst, Tag tag, std::vector<std::byte>&& payload) {
  if (dst < 0 || dst >= size()) throw std::invalid_argument("send: bad destination rank");
  rt_->check_alive(world_rank());
  const int dst_world = translate(dst);
  const double cost = rt_->message_cost(world_rank(), dst_world, payload.size());
  if (cost > 0) charge_virtual(cost);
  rt_->count_message(payload.size());
  Message msg;
  msg.src_world = world_rank();
  msg.tag = tag;
  msg.comm_id = group_->id;
  msg.payload = std::move(payload);
  rt_->mailbox(dst_world).push(std::move(msg));
}

void Comm::recv_bytes(int src, Tag tag, std::span<std::byte> out) {
  const std::vector<std::byte> payload = recv_take(src, tag, out.size());
  rt_->count_copy(payload.size());
  if (!payload.empty()) std::memcpy(out.data(), payload.data(), payload.size());
}

std::vector<std::byte> Comm::recv_take(int src, Tag tag, std::size_t expected_bytes) {
  std::vector<std::byte> payload = recv_any(src, tag);
  if (payload.size() != expected_bytes) {
    throw std::logic_error("recv: message size mismatch (expected " +
                           std::to_string(expected_bytes) + ", got " +
                           std::to_string(payload.size()) + ")");
  }
  return payload;
}

std::vector<std::byte> Comm::recv_any(int src, Tag tag) {
  if (src < 0 || src >= size()) throw std::invalid_argument("recv: bad source rank");
  rt_->check_alive(world_rank());
  const int src_world = translate(src);
  auto msg = rt_->mailbox(world_rank()).pop(src_world, tag, group_->id, rt_->aborted_flag());
  if (!msg.has_value()) throw JobAborted("receive interrupted by job abort");
  rt_->check_alive(world_rank());
  const double cost = rt_->message_cost(src_world, world_rank(), msg->payload.size());
  if (cost > 0) charge_virtual(cost);
  return std::move(msg->payload);
}

void Comm::barrier() {
  static telemetry::Counter& calls = telemetry::metrics().counter("mpi.coll.barriers");
  calls.increment();
  const Tag seq = next_seq();
  const int n = size();
  const std::byte token{0};
  for (int mask = 1, round = 0; mask < n; mask <<= 1, ++round) {
    const int dst = (rank_ + mask) % n;
    const int src = (rank_ - mask + n) % n;
    send_bytes(dst, collective_tag(seq, round), std::span<const std::byte>(&token, 1));
    std::byte in{};
    recv_bytes(src, collective_tag(seq, round), std::span<std::byte>(&in, 1));
  }
}

void Comm::bcast_bytes(int root, std::span<std::byte> data) {
  if (root < 0 || root >= size()) throw std::invalid_argument("bcast: bad root");
  static telemetry::Histogram& h_bytes =
      telemetry::metrics().histogram("mpi.coll.bcast_bytes", 1.0);
  h_bytes.record(static_cast<double>(data.size()));
  const Tag seq = next_seq();
  const int n = size();
  const int relr = relative_rank(root);
  // MPICH-style binomial tree: receive from the parent (relative rank with
  // the lowest set bit cleared), then fan out to children.
  int mask = 1;
  while (mask < n) {
    if (relr & mask) {
      recv_bytes(absolute_rank(relr - mask, root), collective_tag(seq, 0), data);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relr + mask < n) {
      send_bytes(absolute_rank(relr + mask, root), collective_tag(seq, 0), data);
    }
    mask >>= 1;
  }
}

void Comm::bcast_pipeline(int root, std::span<std::byte> data, std::size_t chunk_bytes) {
  if (root < 0 || root >= size()) throw std::invalid_argument("bcast_pipeline: bad root");
  if (chunk_bytes == 0) throw std::invalid_argument("bcast_pipeline: zero chunk size");
  static telemetry::Histogram& h_bytes =
      telemetry::metrics().histogram("mpi.coll.bcast_pipeline_bytes", 1.0);
  h_bytes.record(static_cast<double>(data.size()));
  const int n = size();
  if (n == 1 || data.empty()) return;
  const Tag seq = next_seq();
  const int relr = relative_rank(root);
  const int prev = relr > 0 ? absolute_rank(relr - 1, root) : -1;
  const int next = absolute_rank(relr + 1, root);
  const bool is_last = relr == n - 1;

  for (std::size_t offset = 0, round = 0; offset < data.size();
       offset += chunk_bytes, ++round) {
    const std::size_t len = std::min(chunk_bytes, data.size() - offset);
    const std::span<std::byte> chunk = data.subspan(offset, len);
    const Tag tag = collective_tag(seq, static_cast<int>(round % 250));
    if (relr != 0) recv_bytes(prev, tag, chunk);
    if (!is_last) send_bytes(next, tag, chunk);
  }
}

Comm Comm::split(int color, int key) {
  if (color < 0) throw std::invalid_argument("split: color must be >= 0");
  struct Entry {
    int color;
    int key;
    int member;  // rank in parent comm
  };
  const Entry mine{color, key, rank_};
  const std::vector<Entry> all = allgather<Entry>(std::span<const Entry>(&mine, 1));

  std::vector<Entry> same_color;
  for (const Entry& e : all) {
    if (e.color == color) same_color.push_back(e);
  }
  std::sort(same_color.begin(), same_color.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.member) < std::tie(b.key, b.member);
  });

  auto group = std::make_shared<Group>();
  group->id = util::splitmix64(util::splitmix64(group_->id + 0x9e3779b97f4a7c15ULL *
                                                                 static_cast<std::uint64_t>(
                                                                     collective_seq_)) ^
                               static_cast<std::uint64_t>(color + 1));
  int my_new_rank = -1;
  group->members.reserve(same_color.size());
  for (std::size_t i = 0; i < same_color.size(); ++i) {
    group->members.push_back(translate(same_color[i].member));
    if (same_color[i].member == rank_) my_new_rank = static_cast<int>(i);
  }
  return Comm(*rt_, std::move(group), my_new_rank);
}

Comm Comm::dup() {
  auto group = std::make_shared<Group>();
  // Derived purely from (parent id, per-handle dup ordinal): every member
  // computes the same id without communication, and successive dups of the
  // same parent get distinct ids.
  group->id = util::splitmix64(
      util::splitmix64(group_->id ^ 0xd5b4'7c3a'9e11'f06bULL) +
      static_cast<std::uint64_t>(dup_count_));
  ++dup_count_;
  group->members = group_->members;
  return Comm(*rt_, std::move(group), rank_);
}

void Comm::failpoint(std::string_view name) {
  rt_->check_alive(world_rank());
  // Failpoints double as the heartbeat sites of the health monitor: every
  // rank passes one at least once per iteration and per protocol step, and
  // check_alive above guarantees a dead rank never beats again.
  telemetry::health().heartbeat(world_rank());
  sim::FailureInjector* injector = rt_->injector();
  if (injector == nullptr) return;
  const std::optional<sim::KillOrder> order = injector->should_kill(name, world_rank());
  if (!order.has_value()) return;
  // Mark the kill on the triggering rank's trace row before it unwinds, so
  // the exported timeline shows which protocol step the failure landed in.
  telemetry::instant("fail:" + std::string(name));
  // Resolve the victim set to node ids, expanding a whole-rack order to
  // every primary node sharing a rack with a named victim — all of them
  // die in this one instant (the correlated-failure model).
  std::vector<int> node_ids;
  for (const int v : order->victim_world_ranks) {
    node_ids.push_back(rt_->node_id_of(v < 0 ? world_rank() : v));
  }
  if (order->whole_rack) {
    sim::Cluster& cluster = rt_->cluster();
    std::vector<int> racks;
    for (const int id : node_ids) racks.push_back(cluster.node(id).rack());
    for (const int id : cluster.primary_nodes()) {
      const int rack = cluster.node(id).rack();
      if (std::find(racks.begin(), racks.end(), rack) != racks.end()) {
        node_ids.push_back(id);
      }
    }
  }
  std::sort(node_ids.begin(), node_ids.end());
  node_ids.erase(std::unique(node_ids.begin(), node_ids.end()), node_ids.end());
  for (const int id : node_ids) {
    rt_->cluster().power_off(id, "failpoint '" + std::string(name) +
                                     "' (triggered by rank " +
                                     std::to_string(world_rank()) + ")");
  }
  // Either way the job is aborting; unwind this rank immediately so its
  // state is frozen exactly at the failpoint.
  throw JobAborted("killed/triggered at failpoint '" + std::string(name) + "'");
}

}  // namespace skt::mpi
