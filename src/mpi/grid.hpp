// 2-D process grid over a communicator, as used by HPL: rank r sits at
// grid position (r / Q, r % Q) and gets row/column sub-communicators.
#pragma once

#include <stdexcept>

#include "mpi/comm.hpp"

namespace skt::mpi {

class Grid {
 public:
  /// Requires world.size() == P * Q.
  Grid(Comm& world, int P, int Q)
      : P_(validated(world, P, Q)),
        Q_(Q),
        prow_(world.rank() / Q),
        pcol_(world.rank() % Q),
        row_(world.split(prow_, pcol_)),
        col_(world.split(Q + pcol_, prow_)) {}

  [[nodiscard]] int P() const { return P_; }
  [[nodiscard]] int Q() const { return Q_; }
  [[nodiscard]] int prow() const { return prow_; }
  [[nodiscard]] int pcol() const { return pcol_; }

  /// Communicator across this process row (size Q; rank == pcol).
  [[nodiscard]] Comm& row() { return row_; }
  /// Communicator down this process column (size P; rank == prow).
  [[nodiscard]] Comm& col() { return col_; }

 private:
  static int validated(const Comm& world, int P, int Q) {
    if (P <= 0 || Q <= 0 || world.size() != P * Q) {
      throw std::invalid_argument("Grid: world size must equal P*Q");
    }
    return P;
  }

  int P_;
  int Q_;
  int prow_;
  int pcol_;
  Comm row_;
  Comm col_;
};

}  // namespace skt::mpi
