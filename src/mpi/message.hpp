// Wire-level message representation for the SimMPI runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace skt::mpi {

using Tag = std::int64_t;

/// Tags below this are reserved for user point-to-point traffic; internal
/// collective rounds are stamped above it with a per-communicator sequence
/// number so overlapping collectives on split communicators cannot cross.
inline constexpr Tag kUserTagLimit = Tag{1} << 20;

struct Message {
  int src_world = -1;        ///< sender's world rank
  Tag tag = 0;
  std::uint64_t comm_id = 0; ///< communicator the message belongs to
  std::vector<std::byte> payload;
};

}  // namespace skt::mpi
