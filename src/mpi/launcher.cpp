#include "mpi/launcher.hpp"

#include <stdexcept>

#include "telemetry/trace.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace skt::mpi {

JobLauncher::JobLauncher(sim::Cluster& cluster, sim::FailureInjector* injector,
                         LauncherConfig config)
    : cluster_(cluster), injector_(injector), config_(config) {
  if (config_.ranks_per_node <= 0) {
    throw std::invalid_argument("JobLauncher: ranks_per_node must be positive");
  }
}

std::vector<int> JobLauncher::default_ranklist(const sim::Cluster& cluster, int nranks,
                                               int ranks_per_node) {
  if (nranks <= 0) throw std::invalid_argument("default_ranklist: nranks must be positive");
  const int nodes_needed = (nranks + ranks_per_node - 1) / ranks_per_node;
  if (nodes_needed > cluster.config().num_nodes) {
    throw std::invalid_argument("default_ranklist: not enough primary nodes");
  }
  std::vector<int> ranklist(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) ranklist[static_cast<std::size_t>(r)] = r / ranks_per_node;
  return ranklist;
}

LaunchResult JobLauncher::run(int nranks, const std::function<void(Comm&)>& fn) {
  LaunchResult result;
  std::vector<int> ranklist = default_ranklist(cluster_, nranks, config_.ranks_per_node);

  // The launcher daemon is not a rank; label its log lines (and trace row)
  // so they don't appear prefix-less between the rank lines.
  util::set_thread_label("launcher");
  util::WallTimer total_timer;
  for (int attempt = 0; attempt <= config_.max_restarts; ++attempt) {
    JobResult job;
    {
      SKT_SPAN("launcher.attempt");
      Runtime runtime(cluster_, ranklist, injector_, config_.runtime);
      job = runtime.run(fn);
    }
    result.total_virtual_s += job.virtual_s;
    for (const auto& [name, seconds] : job.times) {
      double& slot = result.times[name];
      slot = std::max(slot, seconds);
    }
    if (job.completed) {
      result.success = true;
      result.restarts = attempt;
      result.final_ranklist = ranklist;
      result.total_real_s = total_timer.seconds();
      return result;
    }

    SKT_LOG_INFO("launcher: attempt {} aborted ({}), entering recovery cycle", attempt,
                 job.abort_reason);
    CycleTiming cycle;
    cycle.reason = job.abort_reason;

    {
      // Phase 1: failure detection (job-manager polling latency, virtual).
      SKT_SPAN("launcher.detect");
      cycle.detect_s = config_.detect_delay_s;
      result.total_virtual_s += config_.detect_delay_s;
    }

    // Phase 2: health-check the ranklist and swap dead nodes for spares.
    util::WallTimer replace_timer;
    bool replaced_ok = true;
    {
      SKT_SPAN("launcher.replace");
      std::vector<int> replacement(static_cast<std::size_t>(cluster_.total_nodes()), -1);
      for (int& node_id : ranklist) {
        if (cluster_.node(node_id).alive()) continue;
        int& subst = replacement[static_cast<std::size_t>(node_id)];
        if (subst < 0) {
          const auto spare = cluster_.take_spare();
          if (!spare.has_value()) {
            result.failure =
                "spare pool exhausted while replacing node " + std::to_string(node_id);
            replaced_ok = false;
            break;
          }
          subst = *spare;
          SKT_LOG_INFO("launcher: replacing dead node {} with spare node {}", node_id, subst);
        }
        node_id = subst;
      }
    }
    cycle.replace_s = replace_timer.seconds() + config_.replace_delay_s;
    result.total_virtual_s += config_.replace_delay_s;

    {
      // Phase 3: relaunch (charged; the real spawn happens at loop top).
      SKT_SPAN("launcher.restart");
      cycle.restart_s = config_.restart_delay_s;
      result.total_virtual_s += config_.restart_delay_s;
    }

    result.cycles.push_back(std::move(cycle));
    if (!replaced_ok) break;
  }

  if (result.failure.empty()) {
    result.failure = "max restarts (" + std::to_string(config_.max_restarts) + ") exceeded";
  }
  result.restarts = static_cast<int>(result.cycles.size());
  result.final_ranklist = ranklist;
  result.total_real_s = total_timer.seconds();
  return result;
}

}  // namespace skt::mpi
