#include "mpi/launcher.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <thread>

#include "storage/sharded_vault.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace skt::mpi {
namespace {

/// Stand-in suspicion for a rank that never heartbeat: phi is +inf there
/// (immediately suspect), which JSON cannot hold.
constexpr double kNeverBeatPhi = 999.0;

/// Disarms the health board and death observer on every exit path.
struct MonitorScope {
  sim::Cluster& cluster;
  bool health_on;
  int observer_token;
  ~MonitorScope() {
    cluster.remove_power_off_observer(observer_token);
    if (health_on) telemetry::health().set_enabled(false);
  }
};

}  // namespace

JobLauncher::JobLauncher(sim::Cluster& cluster, sim::FailureInjector* injector,
                         LauncherConfig config)
    : cluster_(cluster), injector_(injector), config_(config) {
  if (config_.ranks_per_node <= 0) {
    throw std::invalid_argument("JobLauncher: ranks_per_node must be positive");
  }
}

std::vector<int> JobLauncher::default_ranklist(const sim::Cluster& cluster, int nranks,
                                               int ranks_per_node, int first_node) {
  if (nranks <= 0) throw std::invalid_argument("default_ranklist: nranks must be positive");
  if (first_node < 0) throw std::invalid_argument("default_ranklist: first_node must be >= 0");
  const int nodes_needed = (nranks + ranks_per_node - 1) / ranks_per_node;
  if (first_node + nodes_needed > cluster.config().num_nodes) {
    throw std::invalid_argument("default_ranklist: not enough primary nodes");
  }
  std::vector<int> ranklist(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranklist[static_cast<std::size_t>(r)] = first_node + r / ranks_per_node;
  }
  return ranklist;
}

LaunchResult JobLauncher::run(int nranks, const std::function<void(Comm&)>& fn) {
  LaunchResult result;
  std::vector<int> ranklist =
      default_ranklist(cluster_, nranks, config_.ranks_per_node, config_.first_node);

  // The launcher daemon is not a rank; label its log lines (and trace row)
  // so they don't appear prefix-less between the rank lines.
  util::set_thread_label("launcher");
  util::WallTimer total_timer;

  telemetry::forensics::Recorder& recorder = telemetry::forensics::recorder();
  recorder.begin_job();
  telemetry::HealthBoard& board = telemetry::health();
  if (config_.health.enabled) {
    board.reset();
    board.set_enabled(true);
  }
  // Death stamps feed detection-latency measurement even with heartbeats
  // off (the stamp alone costs one map insert per power-off).
  const int observer_token = cluster_.add_power_off_observer(
      [&board](int node_id, const std::string&) { board.note_death(node_id); });
  MonitorScope scope{cluster_, config_.health.enabled, observer_token};

  // Incident bookkeeping: the postmortem of incident k stays open until the
  // relaunched attempt k+1 finishes, because that attempt produces the
  // restore notes (restored epoch, rebuilt members) the record needs.
  std::optional<telemetry::Postmortem> pending;
  int incidents = 0;
  std::uint64_t restore_marker = recorder.restore_marker();

  const auto finalize_pending = [&](bool attempt_completed) {
    if (!pending) return;
    const std::vector<telemetry::forensics::RestoreNote> notes =
        recorder.restores_since(restore_marker);
    // All members this restore pass rebuilt, so each RebuildInfo can name
    // the set that was lost concurrently (the wide-stripe RS(k, m) case)
    // and exclude those members from its peer list.
    std::vector<int> rebuilt_ranks;
    for (const telemetry::forensics::RestoreNote& note : notes) {
      if (note.rebuilt_member) rebuilt_ranks.push_back(note.rank);
    }
    double restore_s = 0.0;
    for (const telemetry::forensics::RestoreNote& note : notes) {
      pending->restored_epoch = std::max(pending->restored_epoch, note.epoch);
      restore_s = std::max(restore_s, note.rebuild_s);
      if (!note.rebuilt_member) continue;
      telemetry::RebuildInfo rb;
      rb.rank = note.rank;
      rb.epoch = note.epoch;
      rb.rebuild_s = note.rebuild_s;
      if (const auto geo = recorder.geometry_of(note.rank)) {
        // Dirty tracking is stripe-granular but rebuild is whole-image: a
        // lost member re-decodes every stripe from its surviving peers.
        rb.stripe_begin = 0;
        rb.stripe_count = geo->stripe_count;
        rb.stripe_bytes = geo->stripe_bytes;
        for (const int m : geo->members) {
          const bool lost = std::find(rebuilt_ranks.begin(), rebuilt_ranks.end(), m) !=
                            rebuilt_ranks.end();
          if (lost) {
            rb.concurrent_lost.push_back(m);
          } else {
            rb.peers.push_back(m);
          }
        }
      } else {
        rb.concurrent_lost.push_back(note.rank);
      }
      pending->rebuilds.push_back(std::move(rb));
    }
    pending->recovered = !notes.empty() || attempt_completed;
    if (!notes.empty()) pending->timeline.push_back({"restore", restore_s});
    if (!config_.postmortem_name.empty()) {
      std::string path = "POSTMORTEM_" + config_.postmortem_name;
      if (pending->incident > 0) path += "_" + std::to_string(pending->incident);
      path += ".json";
      pending->write(path);
    }
    result.postmortems.push_back(*pending);
    recorder.add_postmortem(std::move(*pending));
    pending.reset();
  };

  for (int attempt = 0; attempt <= config_.max_restarts; ++attempt) {
    JobResult job;
    {
      SKT_SPAN("launcher.attempt");
      Runtime runtime(cluster_, ranklist, injector_, config_.runtime);
      job = runtime.run(fn);
    }
    // Restore notes recorded by this attempt close the previous incident.
    finalize_pending(job.completed);
    restore_marker = recorder.restore_marker();

    result.total_virtual_s += job.virtual_s;
    for (const auto& [name, seconds] : job.times) {
      double& slot = result.times[name];
      slot = std::max(slot, seconds);
    }
    if (job.completed) {
      result.success = true;
      result.restarts = attempt;
      result.final_ranklist = ranklist;
      result.total_real_s = total_timer.seconds();
      return result;
    }

    SKT_LOG_INFO("launcher: attempt {} aborted ({}), entering recovery cycle", attempt,
                 job.abort_reason);
    telemetry::metrics().counter("launcher.failures").increment();
    CycleTiming cycle;
    cycle.reason = job.abort_reason;

    // Who died: ranklist entries sitting on dead nodes (captured before the
    // replace phase rewrites them).
    std::vector<int> lost_ranks;
    std::vector<int> lost_nodes;
    for (int r = 0; r < nranks; ++r) {
      const int node_id = ranklist[static_cast<std::size_t>(r)];
      if (cluster_.node(node_id).alive()) continue;
      lost_ranks.push_back(r);
      lost_nodes.push_back(node_id);
    }
    cycle.lost_ranks = lost_ranks;

    {
      // Phase 1: failure detection. With health monitoring on, poll the
      // board until every lost rank's suspicion crosses the threshold —
      // the measured gap between the node's true power-off instant and
      // that crossing IS the detection latency. The configured
      // detect_delay_s stays a purely virtual charge, as before.
      SKT_SPAN("launcher.detect");
      if (config_.health.enabled && !lost_ranks.empty()) {
        const double deadline_us = telemetry::Tracer::instance().now_us() +
                                   config_.health.max_wait_s * 1e6;
        for (;;) {
          const double now_us = telemetry::Tracer::instance().now_us();
          bool all_suspect = true;
          double worst_phi = 0.0;
          for (const int r : lost_ranks) {
            const double p = board.phi(r, now_us);
            worst_phi = std::max(worst_phi, std::isfinite(p) ? p : kNeverBeatPhi);
            if (p < config_.health.phi_threshold) all_suspect = false;
          }
          if (all_suspect || now_us >= deadline_us) {
            cycle.detect_phi = worst_phi;
            double death_us = std::numeric_limits<double>::infinity();
            for (const int node_id : lost_nodes) {
              if (const auto d = board.death_time_us(node_id)) {
                death_us = std::min(death_us, *d);
              }
            }
            if (std::isfinite(death_us)) {
              cycle.detect_latency_s = std::max(0.0, now_us - death_us) * 1e-6;
              telemetry::metrics()
                  .histogram("launcher.detect_latency_s")
                  .record(cycle.detect_latency_s);
            }
            break;
          }
          std::this_thread::sleep_for(
              std::chrono::duration<double>(config_.health.poll_interval_s));
        }
      }
      cycle.detect_s = config_.detect_delay_s;
      result.total_virtual_s += config_.detect_delay_s;
    }

    // Open this incident's postmortem from the recorder's notes. It stays
    // pending until the relaunch reports what it restored.
    telemetry::Postmortem pm;
    pm.name = config_.postmortem_name.empty() ? "job" : config_.postmortem_name;
    pm.incident = incidents++;
    pm.attempt = attempt;
    pm.reason = job.abort_reason;
    pm.lost_ranks = lost_ranks;
    pm.lost_nodes = lost_nodes;
    pm.committed_epochs = recorder.committed_epochs();
    int newest_rank = -1;
    for (const auto& [rank, epoch] : pm.committed_epochs) {
      if (epoch >= pm.lost_epoch) {
        pm.lost_epoch = epoch;
        newest_rank = rank;
      }
    }
    if (newest_rank >= 0) {
      if (const auto note = recorder.last_commit(newest_rank)) {
        pm.last_dirty_bytes = note->dirty_bytes;
        pm.last_dirty_fraction = note->dirty_fraction;
      }
    }
    if (!lost_ranks.empty()) {
      if (const auto geo = recorder.geometry_of(lost_ranks.front())) pm.geometry = *geo;
    }
    pm.detect_latency_s = cycle.detect_latency_s;
    pm.detect_phi = cycle.detect_phi;
    pm.trace_spans = telemetry::Tracer::instance().collect().size();
    pm.trace_dropped = telemetry::Tracer::instance().total_dropped();
    auto& metrics = telemetry::metrics();
    pm.scrub_passes = metrics.counter("scrub.passes").value();
    pm.scrub_corruption_detected = metrics.counter("scrub.corruption_detected").value();
    pm.scrub_repaired = metrics.counter("scrub.repaired").value();
    pm.scrub_unrepaired = metrics.counter("scrub.unrepaired").value();
    pm.timeline.push_back(
        {"detect", cycle.detect_latency_s >= 0.0 ? cycle.detect_latency_s
                                                 : cycle.detect_s});

    // Phase 2: health-check the ranklist and swap dead nodes for spares.
    util::WallTimer replace_timer;
    bool replaced_ok = true;
    {
      SKT_SPAN("launcher.replace");
      // A dead node's shard bytes are gone the moment the node is. Wipe
      // EVERY dead shard before the first replace_node so a correlated
      // multi-node loss can never re-home an extent out of another dead
      // (but not yet replaced) shard — that would resurrect lost data and
      // hide a genuine hole in the replica invariant.
      if (config_.sharded_vault != nullptr) {
        for (const int node_id : lost_nodes) {
          config_.sharded_vault->wipe_shard(node_id);
        }
      }
      std::vector<int> replacement(static_cast<std::size_t>(cluster_.total_nodes()), -1);
      for (int& node_id : ranklist) {
        if (cluster_.node(node_id).alive()) continue;
        int& subst = replacement[static_cast<std::size_t>(node_id)];
        if (subst < 0) {
          const auto spare = cluster_.take_spare();
          if (!spare.has_value()) {
            result.failure =
                "spare pool exhausted while replacing node " + std::to_string(node_id);
            replaced_ok = false;
            break;
          }
          subst = *spare;
          SKT_LOG_INFO("launcher: replacing dead node {} with spare node {}", node_id, subst);
          // Reshard the durable tier before relaunch: the spare inherits
          // the dead node's placement slot and its extents are re-homed
          // from surviving replica shards, so the restarted job's L2
          // restore finds every extent where the placement map says.
          if (config_.sharded_vault != nullptr &&
              config_.sharded_vault->has_shard(node_id)) {
            config_.sharded_vault->replace_node(node_id, subst);
            const storage::ShardedVaultStats vs = config_.sharded_vault->stats();
            SKT_LOG_INFO(
                "launcher: resharded vault (shard {} -> {}, {} extents re-homed, "
                "{} lost)",
                node_id, subst, vs.extents_rehomed, vs.extents_lost);
          }
        }
        node_id = subst;
      }
    }
    cycle.replace_s = replace_timer.seconds() + config_.replace_delay_s;
    result.total_virtual_s += config_.replace_delay_s;
    pm.timeline.push_back({"replace", cycle.replace_s});

    {
      // Phase 3: relaunch (charged; the real spawn happens at loop top).
      SKT_SPAN("launcher.restart");
      cycle.restart_s = config_.restart_delay_s;
      result.total_virtual_s += config_.restart_delay_s;
    }
    pm.timeline.push_back({"restart", cycle.restart_s});
    pending = std::move(pm);

    result.cycles.push_back(std::move(cycle));
    if (!replaced_ok) break;
  }

  // Terminal failure: close the last incident without restore notes.
  finalize_pending(false);

  if (result.failure.empty()) {
    result.failure = "max restarts (" + std::to_string(config_.max_restarts) + ") exceeded";
  }
  result.restarts = static_cast<int>(result.cycles.size());
  result.final_ranklist = ranklist;
  result.total_real_s = total_timer.seconds();
  return result;
}

}  // namespace skt::mpi
